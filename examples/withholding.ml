(* Withholding (Sec. V-D, Fig. 10): the enhanced removal attack locates GK
   structures by pattern matching and remodels them as plain key-gates —
   unless the GK is absorbed into a withheld LUT, which hides its netlist
   and explodes the attacker's modelling space.

   Run with: dune exec examples/withholding.exe *)

let () =
  let net = Benchmarks.tiny () in
  let clock_ps = Sta.clock_for net ~margin:4.5 in
  let design = Insertion.lock ~seed:3 net ~clock_ps ~n_gks:2 in
  let stripped, _gk_keys = Insertion.strip_keygens design in
  let locked_comb, _ = Combinationalize.run stripped in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist ~partial:true oracle_comb in

  (* --- bare GKs: the enhanced removal attack works --- *)
  let located = Enhanced_removal.locate locked_comb in
  Format.printf "bare GKs: structural locator finds %d GK(s)@." (List.length located);
  let remodelled, outcome = Enhanced_removal.attack locked_comb ~oracle in
  (match outcome.Sat_attack.status with
  | Sat_attack.Key_recovered k ->
    Format.printf
      "after remodelling each GK as XOR(x, k): SAT recovers %s in %d DIPs;@.\
       the decrypted netlist matches the chip on all %d/64 samples@."
      (Key.to_string k) outcome.Sat_attack.iterations
      (64
      - Sat_attack.verify_key ~locked:remodelled.Enhanced_removal.net
          ~key_inputs:remodelled.Enhanced_removal.new_key_inputs ~oracle k)
  | Sat_attack.Unsat_at_first_iteration _ | Sat_attack.Budget_exhausted ->
    Format.printf "remodelled attack failed@.");

  (* --- GKs hidden in withheld LUTs: the locator goes blind --- *)
  let hidden = Netlist.copy locked_comb in
  List.iter
    (fun gk ->
      let interior =
        List.filter (fun id -> id <> gk.Enhanced_removal.mux)
          gk.Enhanced_removal.branch_nodes
      in
      match Withhold.absorb hidden ~root:gk.Enhanced_removal.mux ~interior with
      | absorbed ->
        Format.printf "absorbed GK %d into a %d-input withheld LUT@."
          gk.Enhanced_removal.mux
          (List.length absorbed.Withhold.lut_inputs)
      | exception Invalid_argument msg ->
        Format.printf "could not absorb one GK: %s@." msg)
    located;
  let relocated = Enhanced_removal.locate hidden in
  Format.printf "after withholding: locator finds %d GK(s)@." (List.length relocated);

  (* What the attacker faces instead: every withheld k-input LUT can hold
     any of 2^(2^k) functions. *)
  List.iter
    (fun k ->
      Format.printf
        "modelling one withheld %d-input LUT: %.3g candidate functions@." k
        (Withhold.candidate_functions k))
    [ 2; 3; 4; 5; 6 ];
  Format.printf
    "with %d GKs hidden in 4-input LUTs the key space grows by 2^%.0f@."
    (List.length located)
    (Enhanced_removal.withheld_search_space_log2
       ~n_gks:(List.length located) ~lut_inputs:4);

  (* Fig. 10(b): reuse an AND gate from the encrypted path inside the LUT.
     We emulate it on a fresh little netlist. *)
  let demo = Netlist.create "fig10" in
  let a = Netlist.add_input demo "a" in
  let b = Netlist.add_input demo "b" in
  let key = Netlist.add_input demo "key" in
  let andg = Netlist.add_gate demo ~name:"and0" Cell.And [| a; b |] in
  let gk =
    Gk.insert demo ~profile:`Custom ~name:"gk" ~x:andg ~key
      ~variant:Gk.Invert_on_const ~d_path_a_ps:910 ~d_path_b_ps:910 ()
  in
  Netlist.add_output demo "y" gk.Gk.out;
  let interior = andg :: List.filter (fun id -> id <> gk.Gk.out) gk.Gk.nodes in
  let absorbed = Withhold.absorb demo ~root:gk.Gk.out ~interior in
  Format.printf
    "Fig. 10: GK + reused AND absorbed into one %d-input LUT (%d nodes hidden)@."
    (List.length absorbed.Withhold.lut_inputs)
    (List.length absorbed.Withhold.hidden_nodes)
