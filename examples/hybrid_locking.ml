(* Hybrid locking (Sec. VI, Table II last column): 8 GKs protect against
   SAT attack while 16 conventional XOR key-gates protect the GK-encrypted
   paths against scan/BIST observation — at lower overhead than 16 GKs.

   Run with: dune exec examples/hybrid_locking.exe *)

let () =
  let spec = Option.get (Benchmarks.find_spec "s13207") in
  let net = Benchmarks.load spec in
  let clock_ps = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in

  let pure16 = Insertion.lock ~seed:4 net ~clock_ps ~n_gks:16 in
  let c16, a16 = Insertion.overhead pure16 in
  Format.printf "16 GKs (32 key-inputs):        cell +%.2f%%  area +%.2f%%@." c16 a16;

  let hybrid = Hybrid.lock ~seed:4 net ~clock_ps ~n_gks:8 ~n_xors:16 in
  let ch, ah = Hybrid.overhead hybrid in
  Format.printf "8 GKs + 16 XORs (32 key-inputs): cell +%.2f%%  area +%.2f%%@." ch ah;
  Format.printf "overhead saved by the hybrid:   cell %.2f points, area %.2f points@."
    (c16 -. ch) (a16 -. ah);

  (* The hybrid's combinational view still starves the SAT attack: the XOR
     half alone would fall, but each locked path also runs through a GK. *)
  let stripped, gk_keys = Insertion.strip_keygens hybrid.Hybrid.design in
  let locked_comb, _ = Combinationalize.run stripped in
  let all_keys = gk_keys @ hybrid.Hybrid.xor_key_inputs in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist oracle_comb in
  let o =
    Sat_attack.run ~locked:locked_comb ~key_inputs:all_keys ~oracle ()
  in
  (match o.Sat_attack.status with
  | Sat_attack.Unsat_at_first_iteration k | Sat_attack.Key_recovered k ->
    let label =
      if o.Sat_attack.iterations = 0 then "unsatisfiable at first DIP"
      else Printf.sprintf "stopped after %d DIPs" o.Sat_attack.iterations
    in
    Format.printf
      "@.SAT attack on the hybrid (%d key-inputs): %s;@.\
       the surviving key still disagrees with the chip on %d/64 samples@."
      (List.length all_keys) label
      (Sat_attack.verify_key ~locked:locked_comb ~key_inputs:all_keys ~oracle k)
  | Sat_attack.Budget_exhausted ->
    Format.printf "SAT attack exhausted its budget (%d DIPs)@."
      o.Sat_attack.iterations);

  (* Correct-key check on the timing-true simulator. *)
  let cycles = 10 in
  let cfg = { Timing_sim.clock_ps; cycles } in
  let stim n = Stimuli.edge_aligned ~seed:2 n ~clock_ps ~cycles in
  let baseline =
    Timing_sim.run ~drive:(stim net) ~captures_from:(fun _ -> 1) net cfg
  in
  let lnet = hybrid.Hybrid.design.Insertion.lnet in
  let locked_run =
    Timing_sim.run
      ~drive:
        (Insertion.timing_drive ~other:(stim lnet) hybrid.Hybrid.design
           hybrid.Hybrid.all_correct_key)
      ~captures_from:(Insertion.capture_policy hybrid.Hybrid.design)
      lnet cfg
  in
  let mism, total = Stimuli.po_agreement ~skip:1 baseline locked_run in
  Format.printf "correct combined key: %d/%d corrupted samples, %d violations@."
    mism total
    (List.length locked_run.Timing_sim.violations)
