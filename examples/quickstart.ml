(* Quickstart: lock a small sequential design with two glitch key-gates,
   then watch the correct transitional key reproduce the original
   behaviour while wrong keys corrupt it.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A ~40-cell sequential circuit. *)
  let net = Benchmarks.tiny () in
  Format.printf "original: %a@." Stats.pp (Stats.of_netlist net);

  (* Pick a clock with room for a 1 ns glitch, then lock two flip-flops. *)
  let clock_ps = Sta.clock_for net ~margin:4.5 in
  let design = Insertion.lock ~seed:3 net ~clock_ps ~n_gks:2 in
  let cell_oh, area_oh = Insertion.overhead design in
  Format.printf "locked: 2 GKs, 4 key-inputs, clock %d ps, overhead %.1f%% cells / %.1f%% area@."
    clock_ps cell_oh area_oh;
  Format.printf "correct key: %s@." (Key.to_string design.Insertion.correct_key);

  (* Timing-accurate simulation: drive the same input pattern through the
     original and the locked design. *)
  let cycles = 16 in
  let cfg = { Timing_sim.clock_ps; cycles } in
  let stim n = Stimuli.edge_aligned ~seed:7 n ~clock_ps ~cycles in
  (* Both designs hold their reset state through cycle 0 (synchronous
     reset); the locked design's KEYGEN toggles are free-running, so its
     first data capture is already glitch-covered. *)
  let baseline =
    Timing_sim.run ~drive:(stim net) ~captures_from:(fun _ -> 1) net cfg
  in
  let run key =
    Timing_sim.run
      ~drive:(Insertion.timing_drive ~other:(stim design.Insertion.lnet) design key)
      ~captures_from:(Insertion.capture_policy design) design.Insertion.lnet cfg
  in
  let show label key =
    let r = run key in
    let mism, total = Stimuli.po_agreement ~skip:1 baseline r in
    Format.printf "%-22s -> %d/%d corrupted output samples, %d timing violations@."
      label mism total
      (List.length r.Timing_sim.violations)
  in
  show "correct key" design.Insertion.correct_key;
  show "random wrong key" (Key.random_wrong ~seed:1 design.Insertion.correct_key);
  show "all-constant key"
    (List.map (fun (n, _) -> (n, false)) design.Insertion.correct_key);

  (* The attacker's stable-logic view: with any constant key the GK is just
     an inverter, so a SAT solver finds no distinguishing input at all. *)
  let stripped, gk_keys = Insertion.strip_keygens design in
  let locked_comb, _ = Combinationalize.run stripped in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist oracle_comb in
  (match
     (Sat_attack.run ~locked:locked_comb ~key_inputs:gk_keys ~oracle ()).Sat_attack.status
   with
  | Sat_attack.Unsat_at_first_iteration _ ->
    Format.printf "SAT attack: unsatisfiable at the first DIP search — it learned nothing@."
  | Sat_attack.Key_recovered _ -> Format.printf "SAT attack unexpectedly succeeded?!@."
  | Sat_attack.Budget_exhausted -> Format.printf "SAT attack ran out of budget@.");
  Format.printf "done.@."
