(* Attack resilience: the same design locked with conventional XOR
   key-gates and with glitch key-gates, attacked with the same SAT attack.

   XOR locking falls in a handful of DIP iterations; GK locking leaves the
   miter unsatisfiable from the start, and the attacker's "recovered" key
   produces a netlist the real (timing-true) chip contradicts.

   Run with: dune exec examples/attack_resilience.exe *)

let () =
  let net = Benchmarks.by_name "s5378" in
  let spec = Option.get (Benchmarks.find_spec "s5378") in
  let clock_ps = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist oracle_comb in

  (* --- conventional XOR/XNOR locking, 16 key bits --- *)
  let comb, _ = Combinationalize.run net in
  let xor = Xor_lock.lock ~seed:5 comb ~n_keys:16 in
  Format.printf "[xor] 16 key-gates inserted@.";
  let o =
    Sat_attack.run ~locked:xor.Locked.net ~key_inputs:xor.Locked.key_inputs
      ~oracle ()
  in
  (match o.Sat_attack.status with
  | Sat_attack.Key_recovered k ->
    Format.printf "[xor] key recovered after %d DIPs (%d CDCL conflicts)@."
      o.Sat_attack.iterations o.Sat_attack.conflicts;
    (match Equiv.check ~fixed_b:k comb xor.Locked.net with
    | Equiv.Equivalent ->
      Format.printf "[xor] decrypted netlist proven equivalent to the original@."
    | Equiv.Different _ -> Format.printf "[xor] equivalence check FAILED?!@.")
  | Sat_attack.Unsat_at_first_iteration _ | Sat_attack.Budget_exhausted ->
    Format.printf "[xor] attack failed?!@.");

  (* --- glitch key-gate locking, 8 GKs = 16 key bits --- *)
  let design = Insertion.lock ~seed:5 net ~clock_ps ~n_gks:8 in
  Format.printf "@.[gk] 8 GKs inserted (16 key-inputs via KEYGENs)@.";
  let stripped, gk_keys = Insertion.strip_keygens design in
  let locked_comb, _ = Combinationalize.run stripped in
  let o = Sat_attack.run ~locked:locked_comb ~key_inputs:gk_keys ~oracle () in
  (match o.Sat_attack.status with
  | Sat_attack.Unsat_at_first_iteration k ->
    Format.printf
      "[gk] miter unsatisfiable at the first DIP search: no input pattern can@.\
      \     distinguish any two keys in the stable-logic model@.";
    let mismatches =
      Sat_attack.verify_key ~locked:locked_comb ~key_inputs:gk_keys ~oracle k
    in
    Format.printf
      "[gk] the arbitrary key the attacker is left with disagrees with the@.\
      \     functioning chip on %d of 64 sampled input vectors@."
      mismatches
  | Sat_attack.Key_recovered _ -> Format.printf "[gk] unexpectedly recovered a key?!@."
  | Sat_attack.Budget_exhausted -> Format.printf "[gk] budget exhausted?!@.");

  (* --- and the timing-true ground truth --- *)
  let cycles = 12 in
  let cfg = { Timing_sim.clock_ps; cycles } in
  let stim n = Stimuli.edge_aligned ~seed:9 n ~clock_ps ~cycles in
  let baseline =
    Timing_sim.run ~drive:(stim net) ~captures_from:(fun _ -> 1) net cfg
  in
  let locked_ok =
    Timing_sim.run
      ~drive:
        (Insertion.timing_drive ~other:(stim design.Insertion.lnet) design
           design.Insertion.correct_key)
      ~captures_from:(Insertion.capture_policy design)
      design.Insertion.lnet cfg
  in
  let mism, total = Stimuli.po_agreement ~skip:1 baseline locked_ok in
  Format.printf
    "@.[gk] with the correct transitional key the locked chip matches the@.\
    \     original on %d/%d output samples (%d violations)@."
    (total - mism) total
    (List.length locked_ok.Timing_sim.violations)
