(* Timing exploration: regenerate the paper's mechanism figures and walk
   one real flip-flop's GK timing budget.

   Run with: dune exec examples/timing_exploration.exe *)

let () =
  print_string (Experiments.fig4 ());
  print_newline ();
  print_string (Experiments.fig6 ());
  print_newline ();
  print_string (Experiments.fig7 ());
  print_newline ();
  print_string (Experiments.fig9 ());
  print_newline ();

  (* Now the same analysis on a real endpoint of s5378. *)
  let spec = Option.get (Benchmarks.find_spec "s5378") in
  let net = Benchmarks.load spec in
  let clock_ps = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
  let sta = Sta.analyze net ~clock_ps in
  let d_mux = (Cell_lib.bind Cell.Mux 3).Cell.delay_ps in
  let l_glitch = 1000 in
  Format.printf "s5378 @ %d ps clock — per-endpoint GK budget (first 8 FFs):@." clock_ps;
  Format.printf "%-8s %9s %6s %6s %11s %22s@." "FF" "arrival" "LB" "UB"
    "Eq.(3) ok" "Eq.(5) trigger window";
  List.iteri
    (fun i ff ->
      if i < 8 then begin
        let site = Gk_timing.site_of_sta sta ff in
        let ok = Gk_timing.feasible_on_level site ~l_glitch ~d_mux in
        let window =
          match Gk_timing.trigger_window_on_level site ~l_glitch ~d_mux with
          | Some (lo, hi) -> Printf.sprintf "(%d, %d) ps" lo hi
          | None -> "empty"
        in
        Format.printf "%-8s %9d %6d %6d %11s %22s@."
          (Netlist.node net ff).Netlist.name site.Gk_timing.t_arrival
          site.Gk_timing.lb site.Gk_timing.ub
          (if ok then "yes" else "no")
          window
      end)
    (Netlist.ffs net);
  let sites = Insertion.available_sites net ~clock_ps ~l_glitch_ps:l_glitch in
  Format.printf "total feasible endpoints: %d / %d@." (List.length sites)
    (List.length (Netlist.ffs net));

  (* Sweep the glitch-length requirement: longer glitches need more slack. *)
  Format.printf "@.glitch length vs feasible endpoints on s5378:@.";
  List.iter
    (fun l ->
      Format.printf "  L_glitch = %4d ps -> %d sites@." l
        (List.length (Insertion.available_sites net ~clock_ps ~l_glitch_ps:l)))
    [ 300; 500; 1000; 1500; 2000; 2500; 3000 ]
