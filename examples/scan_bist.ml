(* Scan/BIST weakness and the hybrid counter-measure (Sec. VI).

   The paper concedes: "our GK may has a weakness when there are built-in
   self-test (BIST) structures such as scan-chain in the circuit [...]
   the GK that works solely to encrypt the input of FF at the end of the
   path can provide only limited security."  This example makes that
   concrete: scan access turns the chip into a next-state oracle, and a
   GK-only design is read out like a book — no SAT solver involved.
   Mixing conventional XOR key-gates into the encrypted cones (the
   paper's hybrid) takes the attacker's reference values away.

   Run with: dune exec examples/scan_bist.exe *)

let pf = Format.printf

let show_verdicts verdicts =
  List.iter
    (fun v ->
      pf "  %-12s -> %-8s (buffer fits %d/%d samples, inverter %d/%d)@."
        v.Scan_attack.v_ppo
        (match v.Scan_attack.v_behaviour with
        | `Buffer -> "BUFFER"
        | `Inverter -> "INVERTER"
        | `Unknown -> "unknown")
        v.Scan_attack.v_agree_buffer v.Scan_attack.v_samples
        v.Scan_attack.v_agree_inverter v.Scan_attack.v_samples)
    verdicts

let () =
  (* Scan insertion itself: functional transparency. *)
  let net = Benchmarks.tiny () in
  let scanned, chain = Scan.insert net in
  pf "scan chain over %d flip-flops (%s -> ... -> %s)@."
    (List.length chain.Scan.order) chain.Scan.scan_in chain.Scan.scan_out;
  let view = Scan.functional_view scanned chain in
  let c1, _ = Combinationalize.run net in
  let c2, _ = Combinationalize.run view in
  (match Equiv.check c1 c2 with
  | Equiv.Equivalent -> pf "scan_enable=0: design proven unchanged@."
  | Equiv.Different _ -> pf "scan broke the design?!@.");

  (* --- GK-only: scan reads the key-gate behaviour directly --- *)
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, _ = Insertion.strip_keygens d in
  let stripped_comb, _ = Combinationalize.run stripped in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist ~partial:true oracle_comb in
  pf "@.[gk-only] scan-capture hypothesis test per located GK:@.";
  let verdicts = Scan_attack.run ~stripped_comb ~oracle () in
  show_verdicts verdicts;
  (match Scan_attack.decrypt ~stripped_comb verdicts with
  | Some recovered ->
    pf "[gk-only] decrypted WITHOUT SAT: %d/64 oracle mismatches@."
      (Sat_attack.verify_key ~locked:recovered ~key_inputs:[] ~oracle [])
  | None -> pf "[gk-only] unexpectedly blinded@.");

  (* --- hybrid: XOR keys inside the cones blind the test --- *)
  let spec = Option.get (Benchmarks.find_spec "s5378") in
  let big = Benchmarks.load spec in
  let bclock = Sta.clock_for big ~margin:spec.Benchmarks.clk_margin in
  let h = Hybrid.lock ~seed:4 big ~clock_ps:bclock ~n_gks:4 ~n_xors:8 in
  let hstripped, _ = Insertion.strip_keygens h.Hybrid.design in
  let hcomb, _ = Combinationalize.run hstripped in
  let horacle_comb, _ = Combinationalize.run big in
  let horacle = Sat_attack.oracle_of_netlist ~partial:true horacle_comb in
  pf "@.[hybrid] same attack, with %d XOR key bits the attacker cannot drive:@."
    (List.length h.Hybrid.xor_key_inputs);
  let hv =
    Scan_attack.run ~unknown:h.Hybrid.xor_key_inputs ~stripped_comb:hcomb
      ~oracle:horacle ()
  in
  show_verdicts hv;
  (match Scan_attack.decrypt ~stripped_comb:hcomb hv with
  | Some _ -> pf "[hybrid] decrypted anyway?!@."
  | None ->
    pf
      "[hybrid] no trusted decryption: the unknown key bits corrupt the@.\
      \         attacker's reference values input-dependently@.");
  pf "@.conclusion: GKs need the hybrid (or withholding) once scan is present —@.";
  pf "exactly the mutual-reinforcement argument of the paper's Sec. VI.@."
