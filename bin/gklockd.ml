(* gklockd — the oracle-as-a-service daemon, as a standalone binary.
   `gklock serve` is the same term mounted as a subcommand. *)

open Cmdliner

let () =
  let info =
    Cmd.info "gklockd" ~version:"1.0.0" ~doc:Cli_common.serve_doc
      ~man:Cli_common.serve_man
  in
  exit (Cmd.eval (Cmd.v info Cli_common.serve_term))
