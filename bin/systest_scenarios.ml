(* The scenario catalogue: end-to-end flows against the real binaries.

   Each scenario runs in its own sandbox (ctx.dir is the spawned
   processes' working directory), talks to the gklock / gklockd
   executables the build produced, and asserts on exit codes, captured
   logs and the files the binaries leave behind.  Daemon interactions
   additionally use the Remote_oracle client library in-process — the
   same wire protocol a third-party client would speak. *)

open Systest

let status_str = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s

(* Spawn [ctx.gklock args] in the sandbox and wait; returns (status,
   proc) so callers can assert whatever they need. *)
let gklock_any ?(timeout_s = 90.0) (ctx : ctx) name args =
  let p =
    Systest_proc.spawn ~cwd:ctx.dir ~logs_dir:ctx.logs_dir ~name ctx.gklock
      args
  in
  let st = Systest_proc.wait ~timeout_s p in
  (st, p)

(* Same, but the common case: must exit 0; returns captured stdout. *)
let gklock_ok ?timeout_s ctx name args =
  match gklock_any ?timeout_s ctx name args with
  | Unix.WEXITED 0, p -> Systest_proc.stdout p
  | st, p ->
    fail "%s: gklock %s → %s (wanted exit 0)\n--- stderr tail ---\n%s" name
      (String.concat " " args) (status_str st)
      (Systest_proc.tail (Systest_proc.stderr_path p))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* First line of [s] containing [sub]. *)
let line_with ~what s sub =
  match
    List.find_opt (fun l -> contains l sub) (String.split_on_char '\n' s)
  with
  | Some l -> l
  | None -> fail "%s: no line containing %S in:\n%s" what sub s

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let in_dir (ctx : ctx) f = Filename.concat ctx.dir f

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

(* ----- daemon helpers ----- *)

let spawn_daemon ?(args = []) (ctx : ctx) name listen =
  let d =
    Systest_proc.spawn ~cwd:ctx.dir ~logs_dir:ctx.logs_dir ~name ctx.gklockd
      ([ "s27"; "--listen"; listen ] @ args)
  in
  let addr = Load_gen.bound_addr d in
  (d, addr)

let daemon_pins r =
  match Remote_oracle.designs r with
  | [ d ] -> d.Wire.d_inputs
  | ds -> fail "expected one hosted design, daemon lists %d" (List.length ds)

(* The i-th exhaustive input assignment over [pins]. *)
let asg pins i = List.mapi (fun b p -> (p, (i lsr b) land 1 = 1)) pins

(* ----- 1. cli_basics ----- *)

let () =
  register ~name:"cli_basics" ~tags:[ "cli" ] (fun ctx ->
      let out = gklock_ok ctx "info" [ "info"; "s27" ] in
      check (contains out "critical path") "info: no critical-path line";
      let out = gklock_ok ctx "gen" [ "gen"; "tiny"; "-o"; "tiny.bench" ] in
      check (contains out "wrote tiny.bench") "gen: no wrote line";
      check (Sys.file_exists (in_dir ctx "tiny.bench")) "gen: no output file";
      (* the generated file round-trips through the parser *)
      let out = gklock_ok ctx "info_gen" [ "info"; "tiny.bench" ] in
      check (contains out "tiny") "info on generated file";
      let out = gklock_ok ctx "attacks" [ "attacks" ] in
      check (contains out "sat") "attacks: registry does not list sat")

(* ----- 2. lock_attack_roundtrip ----- *)

let () =
  register ~name:"lock_attack_roundtrip" ~tags:[ "cli"; "attack" ] (fun ctx ->
      let _ = gklock_ok ctx "gen" [ "gen"; "s27"; "-o"; "chip.bench" ] in
      let out =
        gklock_ok ctx "encrypt"
          [
            "encrypt"; "chip.bench"; "--scheme"; "xor"; "-n"; "4"; "--seed";
            "7"; "-o"; "locked.bench";
          ]
      in
      let key_line = line_with ~what:"encrypt" out "key: " in
      let correct =
        String.sub key_line 5 (String.length key_line - 5) |> String.trim
      in
      let attack_args =
        [
          "attack"; "locked.bench"; "--keys"; "xk0,xk1,xk2,xk3"; "--oracle";
          "chip.bench"; "--method"; "sat"; "--seed"; "5";
        ]
      in
      let out = gklock_ok ctx "attack" attack_args in
      let rec_line = line_with ~what:"attack" out "key recovered" in
      check
        (contains rec_line correct)
        (Printf.sprintf "SAT attack recovered %S, encrypt printed key %s"
           rec_line correct);
      (* same seed, same locked design → the attack's key line is
         deterministic across runs *)
      let out2 = gklock_ok ctx "attack_again" attack_args in
      let rec_line2 = line_with ~what:"attack rerun" out2 "key recovered" in
      check (rec_line = rec_line2) "attack is not deterministic per seed")

(* ----- 3. attack_trace_metrics ----- *)

let () =
  register ~name:"attack_trace_metrics" ~tags:[ "cli"; "obs" ] (fun ctx ->
      let _ = gklock_ok ctx "gen" [ "gen"; "tiny"; "-o"; "chip.bench" ] in
      let _ =
        gklock_ok ctx "encrypt"
          [
            "encrypt"; "chip.bench"; "--scheme"; "xor"; "-n"; "4"; "--seed";
            "3"; "-o"; "locked.bench";
          ]
      in
      let out =
        gklock_ok ctx "trace_attack"
          [
            "trace"; "--out"; "t.jsonl"; "attack"; "locked.bench"; "--keys";
            "xk0,xk1,xk2,xk3"; "--oracle"; "chip.bench"; "--metrics-out";
            "m.json";
          ]
      in
      check (contains out "valid") "trace: no validation line";
      (* re-validate the trace file through the CLI *)
      let out = gklock_ok ctx "trace_check" [ "trace"; "--check"; "t.jsonl" ] in
      check (contains out "valid") "trace --check: not valid";
      (* the metrics snapshot recorded real oracle traffic *)
      let m =
        match Cjson.of_string (read_file (in_dir ctx "m.json")) with
        | Ok j -> j
        | Error e -> fail "m.json: %s" e
      in
      match Cjson.mem_int "oracle.queries" m with
      | Some q when q > 0 -> ()
      | Some q -> fail "metrics: oracle.queries = %d" q
      | None -> fail "metrics: no oracle.queries counter in m.json")

(* ----- 4. campaign_run_resume ----- *)

let () =
  register ~name:"campaign_run_resume" ~tags:[ "campaign" ] (fun ctx ->
      let args =
        [ "campaign"; "run"; "--name"; "smoke"; "--dir"; "c"; "--workers"; "2" ]
      in
      let out = gklock_ok ~timeout_s:120.0 ctx "run1" args in
      check (contains out " 0 skipped") "first run skipped jobs";
      check (not (contains out "failed: ")) "first run had failures";
      let report1 = read_file (in_dir ctx "c/report.txt") in
      check (contains report1 "Attack matrix") "report has no attack matrix";
      (* resume over a complete store: everything skips, same report *)
      let out = gklock_ok ctx "run2" args in
      check
        (contains out "0 ran (0 ok, 0 failed, 0 timed out)")
        "resume re-ran jobs";
      let report2 = read_file (in_dir ctx "c/report.txt") in
      check (report1 = report2) "resume changed report.txt bytes")

(* ----- 5. campaign_interrupt_resume ----- *)

(* A 36-job matrix run twice: once to completion, once interrupted with
   SIGINT after the first few checkpoints and then resumed.  The
   interrupted-and-resumed campaign must converge on the byte-identical
   report.txt of the uninterrupted one. *)
let interrupt_matrix =
  {
    Campaign_job.m_name = "interrupt";
    m_tables = [];
    m_benches = [ "s27"; "tiny" ];
    m_schemes = [ "xor"; "mux"; "sarlock" ];
    m_widths = [ 4 ];
    m_attacks = [ "sat"; "brute" ];
    m_seeds = [ 1; 2; 3 ];
  }

let () =
  register ~name:"campaign_interrupt_resume" ~tags:[ "campaign"; "signals" ]
    (fun ctx ->
      let total = List.length (Campaign_job.expand interrupt_matrix) in
      let spec = in_dir ctx "spec.json" in
      let oc = open_out_bin spec in
      output_string oc
        (Cjson.to_string (Campaign_job.matrix_to_json interrupt_matrix));
      close_out oc;
      (* the two runs live under separate parents so each gets its own
         sibling store — with a shared store the second run would adopt
         the first run's results and the interrupt would never land *)
      let args dir =
        [
          "campaign"; "run"; "--spec"; "spec.json"; "--dir"; dir; "--workers";
          "1";
        ]
      in
      (* reference: one uninterrupted run *)
      let _ = gklock_ok ~timeout_s:180.0 ctx "full" (args "runA/c") in
      let report_a = read_file (in_dir ctx "runA/c/report.txt") in
      (* interrupted run: SIGINT once a few results are checkpointed (the
         store index grows one 32-byte entry per checkpointed job) *)
      let index_entries c =
        if String.length c < 8 then 0 else (String.length c - 8) / 32
      in
      let p =
        Systest_proc.spawn ~cwd:ctx.dir ~logs_dir:ctx.logs_dir ~name:"interrupted"
          ctx.gklock (args "runB/c")
      in
      let _ =
        Systest_proc.wait_for_file ~timeout_s:60.0
          (in_dir ctx "runB/store/index.bin")
          (fun c -> index_entries c >= 3)
      in
      Systest_proc.signal p Sys.sigint;
      (match Systest_proc.wait ~timeout_s:60.0 p with
      | Unix.WEXITED 3 -> ()
      | st -> fail "interrupted run: %s (wanted exit 3)" (status_str st));
      check
        (contains (Systest_proc.stderr p) "SIGINT")
        "no SIGINT acknowledgement on stderr";
      check
        (contains (Systest_proc.stdout p) "[aborted]")
        "no [aborted] marker in the stats line";
      let done_b =
        index_entries (read_file (in_dir ctx "runB/store/index.bin"))
      in
      if done_b >= total then
        fail "campaign finished (%d/%d jobs) before the interrupt landed"
          done_b total;
      (* the abort still wrote a (partial) report *)
      check
        (Sys.file_exists (in_dir ctx "runB/c/report.txt"))
        "aborted run wrote no report.txt";
      check
        (contains (read_file (in_dir ctx "runB/c/report.txt")) "pending")
        "partial report lists no pending jobs";
      (* resume: the skipped count proves the checkpoints were honoured *)
      let out = gklock_ok ~timeout_s:180.0 ctx "resume" (args "runB/c") in
      let expect = Printf.sprintf "%d skipped" done_b in
      check (contains out expect)
        (Printf.sprintf "resume: expected %S in stats line:\n%s" expect out);
      let report_b = read_file (in_dir ctx "runB/c/report.txt") in
      check (report_a = report_b)
        "interrupt→resume report.txt differs from the uninterrupted run")

(* ----- 5b. campaign_store_delta ----- *)

(* The content-addressed store end to end: a legacy results.jsonl
   migrates without changing report bytes, a widened matrix re-run
   executes only the unseen jobs (adopting the rest from the shared
   store), and gc + fsck leave the store clean. *)
let () =
  register ~name:"campaign_store_delta" ~tags:[ "campaign"; "store" ]
    (fun ctx ->
      let run ?(timeout_s = 180.0) name extra =
        gklock_ok ~timeout_s ctx name ([ "campaign"; "run" ] @ extra)
      in
      (* 1. a smoke campaign, store shared under mig/ *)
      let out1 =
        run "seed_run" [ "--name"; "smoke"; "--dir"; "mig/c"; "--workers"; "2" ]
      in
      check (contains out1 " 0 skipped") "seed run skipped jobs";
      let report1 = read_file (in_dir ctx "mig/c/report.txt") in
      (* 2. rebuild the same results as a legacy pre-CAS store *)
      let records = Job_store.load ~dir:(in_dir ctx "mig/c") in
      check (records <> []) "no records load from the seeded store";
      mkdir_p (in_dir ctx "leg/c");
      let oc = open_out_bin (in_dir ctx "leg/c/results.jsonl") in
      List.iter
        (fun r ->
          output_string oc
            (Cjson.to_string (Job_store.record_to_json r) ^ "\n"))
        records;
      close_out oc;
      (* a run over the legacy dir migrates in place: nothing executes,
         the report stays byte-identical, the JSONL is moved aside *)
      let out =
        run "migrate" [ "--name"; "smoke"; "--dir"; "leg/c"; "--workers"; "2" ]
      in
      check
        (contains out "0 ran (0 ok, 0 failed, 0 timed out)")
        "migration re-ran jobs";
      check
        (read_file (in_dir ctx "leg/c/report.txt") = report1)
        "report bytes changed across the legacy migration";
      check
        (not (Sys.file_exists (in_dir ctx "leg/c/results.jsonl")))
        "results.jsonl still present after migration";
      check
        (Sys.file_exists (in_dir ctx "leg/c/results.jsonl.migrated"))
        "migrated results.jsonl not kept";
      (* 3. widen the matrix by one seed: a sibling campaign re-runs only
         the delta and adopts the rest from the shared store *)
      let smoke =
        match Campaign_job.builtin "smoke" with
        | Some m -> m
        | None -> fail "no smoke builtin"
      in
      let old_jobs = List.length (Campaign_job.expand smoke) in
      let wide =
        { smoke with Campaign_job.m_seeds = smoke.Campaign_job.m_seeds @ [ 99 ] }
      in
      let new_jobs = List.length (Campaign_job.expand wide) - old_jobs in
      let oc = open_out_bin (in_dir ctx "wide.json") in
      output_string oc (Cjson.to_string (Campaign_job.matrix_to_json wide));
      close_out oc;
      let out =
        run "widened"
          [ "--spec"; "wide.json"; "--dir"; "mig/c2"; "--workers"; "2" ]
      in
      let expect =
        Printf.sprintf "%d ran (%d ok, 0 failed, 0 timed out), %d skipped"
          new_jobs new_jobs old_jobs
      in
      check (contains out expect)
        (Printf.sprintf "widened run: expected %S in:\n%s" expect out);
      (* 4. maintenance: gc sweeps nothing live, fsck is clean *)
      let gc_out =
        gklock_ok ctx "gc" [ "campaign"; "gc"; "--store"; "mig/store" ]
      in
      check (contains gc_out "swept") "gc printed no summary";
      let fsck_out =
        gklock_ok ctx "fsck" [ "campaign"; "fsck"; "--store"; "mig/store" ]
      in
      check (contains fsck_out "clean") "fsck not clean";
      (* the store survived gc: a re-run still executes nothing *)
      let out =
        run "rerun_after_gc"
          [ "--spec"; "wide.json"; "--dir"; "mig/c2"; "--workers"; "2" ]
      in
      check
        (contains out "0 ran (0 ok, 0 failed, 0 timed out)")
        "gc broke the store: jobs re-ran";
      let dedup_out =
        gklock_ok ctx "dedup" [ "campaign"; "dedup"; "--store"; "mig/store" ]
      in
      check (contains dedup_out "objects") "dedup printed no object counts")

(* ----- 6. serve_unix_parity ----- *)

(* A remote attack through a live daemon must reach the same key as the
   same attack against a local oracle, and a unix-socket client may shut
   the daemon down (that right is only gated on TCP). *)
let () =
  register ~name:"serve_unix_parity" ~tags:[ "daemon" ] (fun ctx ->
      let _ = gklock_ok ctx "gen" [ "gen"; "s27"; "-o"; "chip.bench" ] in
      let _ =
        gklock_ok ctx "encrypt"
          [
            "encrypt"; "chip.bench"; "--scheme"; "mux"; "-n"; "4"; "--seed";
            "11"; "-o"; "locked.bench";
          ]
      in
      let sock = in_dir ctx "oracle.sock" in
      let daemon, addr = spawn_daemon ctx "daemon" ("unix:" ^ sock) in
      check (addr = Frame_io.Unix_path sock) "daemon advertises a odd address";
      let attack oracle name =
        let out =
          gklock_ok ctx name
            [
              "attack"; "locked.bench"; "--keys"; "mk0,mk1,mk2,mk3";
              "--oracle"; oracle; "--seed"; "2";
            ]
        in
        line_with ~what:name out "key recovered"
      in
      let local = attack "chip.bench" "attack_local" in
      let remote = attack ("unix:" ^ sock) "attack_remote" in
      check (local = remote)
        (Printf.sprintf "local %S vs remote %S key lines differ" local remote);
      (* clean client-driven shutdown over unix *)
      let r = Remote_oracle.connect ~client:"systest" addr in
      Remote_oracle.shutdown_server r;
      Remote_oracle.close r;
      (match Systest_proc.wait ~timeout_s:30.0 daemon with
      | Unix.WEXITED 0 -> ()
      | st -> fail "daemon after shutdown frame: %s (wanted exit 0)"
                (status_str st));
      check (not (Sys.file_exists sock)) "daemon left its socket file behind")

(* ----- 7. serve_tcp_shutdown_gating ----- *)

let () =
  register ~name:"serve_tcp_shutdown_gating" ~tags:[ "daemon"; "security" ]
    (fun ctx ->
      (* default: a TCP client may query but not stop the service *)
      let daemon, addr = spawn_daemon ctx "daemon_gated" "tcp:127.0.0.1:0" in
      (match addr with
      | Frame_io.Tcp (_, p) -> check (p > 0) "daemon advertises port 0"
      | a -> fail "expected a tcp address, got %s" (Frame_io.addr_to_string a));
      let r = Remote_oracle.connect ~client:"systest" addr in
      check (Remote_oracle.ping r >= 0.0) "ping failed";
      (match Remote_oracle.shutdown_server r with
      | () -> fail "tcp shutdown succeeded without --allow-tcp-shutdown"
      | exception Remote_oracle.Remote_error (Wire.Not_permitted, _) -> ());
      (* the refusal must not have cost us the connection or the daemon *)
      check (Remote_oracle.ping r >= 0.0) "connection dead after refusal";
      let pins = daemon_pins r in
      let o = Remote_oracle.oracle r in
      check (Oracle.query o (asg pins 5) <> []) "query after refusal";
      Remote_oracle.close r;
      check (Systest_proc.alive daemon) "daemon died on a refused shutdown";
      Systest_proc.kill daemon;
      (* opt-in: --allow-tcp-shutdown honours the frame *)
      let daemon, addr =
        spawn_daemon ~args:[ "--allow-tcp-shutdown" ] ctx "daemon_open"
          "tcp:127.0.0.1:0"
      in
      let r = Remote_oracle.connect ~client:"systest" addr in
      Remote_oracle.shutdown_server r;
      Remote_oracle.close r;
      match Systest_proc.wait ~timeout_s:30.0 daemon with
      | Unix.WEXITED 0 -> ()
      | st -> fail "permitted tcp shutdown: %s (wanted exit 0)" (status_str st))

(* ----- 8. serve_multi_client_quota ----- *)

let () =
  register ~name:"serve_multi_client_quota" ~tags:[ "daemon"; "quota" ]
    (fun ctx ->
      let sock = in_dir ctx "oracle.sock" in
      let daemon, addr =
        spawn_daemon
          ~args:[ "--max-queries-per-client"; "5" ]
          ctx "daemon" ("unix:" ^ sock)
      in
      let a = Remote_oracle.connect ~client:"greedy" ~memo:false addr in
      let pins = daemon_pins a in
      let oa = Remote_oracle.oracle a in
      for i = 0 to 4 do
        check (Oracle.query oa (asg pins i) <> [])
          (Printf.sprintf "query %d within quota failed" i)
      done;
      (match Oracle.query oa (asg pins 5) with
      | _ -> fail "6th query exceeded the quota but was answered"
      | exception Budget.Exhausted Budget.Queries -> ());
      (* quotas are per client: a second connection is unaffected *)
      let b = Remote_oracle.connect ~client:"honest" ~memo:false addr in
      let ob = Remote_oracle.oracle b in
      for i = 0 to 4 do
        check (Oracle.query ob (asg pins i) <> [])
          (Printf.sprintf "honest client query %d failed" i)
      done;
      Remote_oracle.close a;
      Remote_oracle.close b;
      let c = Remote_oracle.connect ~client:"admin" addr in
      Remote_oracle.shutdown_server c;
      Remote_oracle.close c;
      match Systest_proc.wait ~timeout_s:30.0 daemon with
      | Unix.WEXITED 0 -> ()
      | st -> fail "daemon shutdown: %s (wanted exit 0)" (status_str st))

(* ----- 9. serve_concurrent_parity ----- *)

(* Eight concurrent clients, each with its own connection, replaying
   disjoint slices of the exhaustive s27 input space; every remote
   answer must equal the local engine's.  This drives the daemon's
   cross-client scalar coalescing from genuinely parallel sockets. *)
let () =
  register ~name:"serve_concurrent_parity" ~tags:[ "daemon"; "concurrency" ]
    (fun ctx ->
      let sock = in_dir ctx "oracle.sock" in
      let daemon, addr = spawn_daemon ctx "daemon" ("unix:" ^ sock) in
      let local =
        Oracle.of_netlist (fst (Combinationalize.run (Benchmarks.s27 ())))
      in
      let probe = Remote_oracle.connect ~client:"probe" addr in
      let pins = daemon_pins probe in
      Remote_oracle.close probe;
      let sort = List.sort compare in
      let errors = Atomic.make 0 in
      let mu = Mutex.create () in
      let messages = ref [] in
      let clients = 8 and per_client = 16 in
      let worker c () =
        try
          let r =
            Remote_oracle.connect
              ~client:(Printf.sprintf "c%d" c)
              ~memo:false addr
          in
          let o = Remote_oracle.oracle r in
          for i = 0 to per_client - 1 do
            let q = asg pins ((c * per_client) + i) in
            let got = sort (Oracle.query o q) in
            let want = sort (Oracle.query local q) in
            if got <> want then begin
              Atomic.incr errors;
              Mutex.protect mu (fun () ->
                  messages :=
                    Printf.sprintf "client %d query %d: remote ≠ local" c i
                    :: !messages)
            end
          done;
          Remote_oracle.close r
        with e ->
          Atomic.incr errors;
          Mutex.protect mu (fun () ->
              messages :=
                Printf.sprintf "client %d: %s" c (Printexc.to_string e)
                :: !messages)
      in
      let threads =
        List.init clients (fun c -> Thread.create (worker c) ())
      in
      List.iter Thread.join threads;
      if Atomic.get errors > 0 then
        fail "%d parity errors:\n%s" (Atomic.get errors)
          (String.concat "\n" !messages);
      let r = Remote_oracle.connect ~client:"admin" addr in
      Remote_oracle.shutdown_server r;
      Remote_oracle.close r;
      match Systest_proc.wait ~timeout_s:30.0 daemon with
      | Unix.WEXITED 0 -> ()
      | st -> fail "daemon shutdown: %s (wanted exit 0)" (status_str st))

(* ----- 10. gate_self_check ----- *)

(* The perf gate compared against the committed baselines must pass on
   the identity comparison and fail once a synthetic 2x slowdown is
   injected — proof that the gate actually trips. *)
let () =
  register ~name:"gate_self_check" ~tags:[ "gate" ] (fun ctx ->
      let missing =
        List.filter
          (fun f -> not (Sys.file_exists (Filename.concat ctx.repo_root f)))
          [ "BENCH_eval.json"; "BENCH_attacks.json"; "BENCH_load.json" ]
      in
      if missing <> [] then
        fail "committed baselines missing from %s: %s" ctx.repo_root
          (String.concat ", " missing);
      let gate name extra =
        let p =
          Systest_proc.spawn ~cwd:ctx.dir ~logs_dir:ctx.logs_dir ~name
            ctx.systest
            ([
               "gate"; "--baseline-dir"; ctx.repo_root; "--fresh-dir";
               ctx.repo_root;
             ]
            @ extra)
        in
        (Systest_proc.wait ~timeout_s:30.0 p, p)
      in
      (match gate "gate_identity" [] with
      | Unix.WEXITED 0, p ->
        check
          (contains (Systest_proc.stdout p) "gate:")
          "no gate summary line"
      | st, p ->
        fail "identity gate: %s (wanted exit 0)\n%s" (status_str st)
          (Systest_proc.tail (Systest_proc.stdout_path p)));
      match gate "gate_slow" [ "--inject-slowdown"; "2.0" ] with
      | Unix.WEXITED 1, p ->
        check
          (contains (Systest_proc.stdout p) "FAIL")
          "failing gate prints no FAIL rows"
      | st, _ ->
        fail "injected 2x slowdown: %s (wanted exit 1)" (status_str st))

(* ----- 11. cli_errors ----- *)

let () =
  register ~name:"cli_errors" ~tags:[ "cli" ] (fun ctx ->
      let nonzero name args =
        match gklock_any ctx name args with
        | Unix.WEXITED 0, _ ->
          fail "%s: gklock %s succeeded (wanted a failure)" name
            (String.concat " " args)
        | Unix.WEXITED _, p -> Systest_proc.stderr p
        | st, _ -> fail "%s: %s (wanted a clean nonzero exit)" name
                     (status_str st)
      in
      let err = nonzero "bad_design" [ "info"; "no_such_design" ] in
      check (err <> "") "bad design: empty stderr";
      let _ = gklock_ok ctx "gen" [ "gen"; "tiny"; "-o"; "chip.bench" ] in
      let _ =
        gklock_ok ctx "encrypt"
          [
            "encrypt"; "chip.bench"; "--scheme"; "xor"; "-n"; "2"; "--seed";
            "1"; "-o"; "locked.bench";
          ]
      in
      let err =
        nonzero "bad_method"
          [
            "attack"; "locked.bench"; "--keys"; "xk0,xk1"; "--oracle";
            "chip.bench"; "--method"; "no_such_attack";
          ]
      in
      check (contains err "unknown attack") "bad method: no diagnostic";
      let err =
        nonzero "bad_campaign" [ "campaign"; "run"; "--name"; "no_such" ]
      in
      check (contains err "unknown campaign") "bad campaign: no diagnostic";
      let err =
        nonzero "dead_oracle"
          [
            "attack"; "locked.bench"; "--keys"; "xk0,xk1"; "--oracle";
            "unix:" ^ in_dir ctx "no_daemon.sock";
          ]
      in
      check (err <> "") "dead oracle: empty stderr")
