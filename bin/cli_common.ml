(* Helpers shared by the gklock CLI and the gklockd daemon binary
   (every module in bin/ is linked into both executables). *)

open Cmdliner

let load_design path =
  match Benchmarks.find_spec path with
  | Some spec -> Benchmarks.load spec
  | None ->
    if path = "s27" then Benchmarks.s27 ()
    else if path = "tiny" then Benchmarks.tiny ()
    else if Filename.check_suffix path ".v" then Verilog.parse_file path
    else Bench_format.parse_file path

let die fmt = Printf.ksprintf (fun msg -> Printf.eprintf "%s\n" msg; exit 1) fmt

(* "NAME=PATH" picks the advertised design name; a bare PATH advertises
   its basename without extension (so `gklockd locked.bench` serves
   design "locked", and `gklockd s27` serves "s27"). *)
let split_design_spec s =
  match String.index_opt s '=' with
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> (Filename.remove_extension (Filename.basename s), s)

let parse_listen s =
  match Frame_io.parse_addr s with
  | Ok a -> a
  | Error e -> die "gklockd: %s" e

(* ----- the serve term, shared by `gklock serve` and `gklockd` ----- *)

let serve_doc = "Serve oracle queries for locked designs over a socket"

let serve_man =
  [
    `S Manpage.s_description;
    `P
      "Loads each DESIGN (a .bench/.v file or builtin name; NAME=PATH picks \
       the advertised name), compiles one oracle per design, and answers \
       queries over the binary wire protocol (DESIGN.md \xc2\xa76h) until a \
       client sends a shutdown frame.  Scalar queries from all clients are \
       coalesced into 63-lane engine words; explicit batch queries evaluate \
       in one pass.";
    `P
      "Attack through it from another process with: $(b,gklock attack LOCKED \
       --keys ... --oracle unix:PATH) (or $(b,tcp:HOST:PORT)).";
  ]

let serve_term =
  let designs_arg =
    let doc =
      "Designs to host: .bench or structural-Verilog files, builtin names, \
       or NAME=PATH to choose the advertised design name."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"DESIGN" ~doc)
  in
  let listen_arg =
    let doc = "Listen address: unix:PATH, tcp:HOST:PORT, or a bare socket path." in
    Arg.(
      value & opt string "unix:gklockd.sock"
      & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let max_queries_arg =
    let doc = "Per-client oracle-query quota (over-quota requests get a \
               structured error frame)." in
    Arg.(
      value & opt (some int) None
      & info [ "max-queries-per-client" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Per-client wall-clock quota in seconds, from connect time." in
    Arg.(
      value & opt (some float) None
      & info [ "client-deadline" ] ~docv:"S" ~doc)
  in
  let flush_lanes_arg =
    let doc = "Coalesced scalar queries that force a flush (default: one \
               63-lane engine word)." in
    Arg.(
      value & opt int Gkd_server.default_config.Gkd_server.flush_lanes
      & info [ "flush-lanes" ] ~docv:"N" ~doc)
  in
  let flush_delay_arg =
    let doc = "Max seconds a pending scalar query waits for lane-mates." in
    Arg.(
      value & opt float Gkd_server.default_config.Gkd_server.flush_delay_s
      & info [ "flush-delay" ] ~docv:"S" ~doc)
  in
  let no_memo_arg =
    let doc = "Disable the server-side oracle memo (every query evaluates)." in
    Arg.(value & flag & info [ "no-memo" ] ~doc)
  in
  let strict_arg =
    let doc = "Reject assignments naming unknown pins instead of reading \
               undriven pins as 0." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let tcp_shutdown_arg =
    let doc = "Honor shutdown frames on a TCP listener (off by default: \
               any host that can reach the port could kill the daemon; \
               unix-socket listeners always honor them)." in
    Arg.(value & flag & info [ "allow-tcp-shutdown" ] ~doc)
  in
  let metrics_out_arg =
    let doc = "Dump the metrics registry (queue depth, batch fill, per-client \
               queries, oracle memo stats) to $(docv) periodically and on \
               shutdown." in
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_interval_arg =
    let doc = "Seconds between periodic metrics dumps." in
    Arg.(
      value
      & opt float Gkd_server.default_config.Gkd_server.metrics_interval_s
      & info [ "metrics-interval" ] ~docv:"S" ~doc)
  in
  let run listen designs max_queries deadline flush_lanes flush_delay no_memo
      strict tcp_shutdown metrics_out metrics_interval =
    let addr = parse_listen listen in
    let designs =
      List.map
        (fun spec ->
          let name, path = split_design_spec spec in
          (name, load_design path))
        designs
    in
    let config =
      {
        Gkd_server.default_config with
        Gkd_server.flush_lanes;
        flush_delay_s = flush_delay;
        max_queries_per_client = max_queries;
        client_deadline_s = deadline;
        oracle_memo = not no_memo;
        strict_queries = strict;
        allow_tcp_shutdown = tcp_shutdown;
        metrics_out;
        metrics_interval_s = metrics_interval;
      }
    in
    let t = Gkd_server.create ~config ~listen:addr designs in
    Printf.printf "gklockd: listening on %s\n"
      (Frame_io.addr_to_string (Gkd_server.address t));
    List.iter
      (fun (name, net) ->
        Printf.printf "gklockd: serving %s (%d nodes)\n" name
          (Netlist.num_nodes net))
      designs;
    print_string "gklockd: send a shutdown frame to stop\n";
    flush stdout;
    Gkd_server.start t;
    Gkd_server.wait t;
    print_endline "gklockd: shut down cleanly"
  in
  Term.(
    const run $ listen_arg $ designs_arg $ max_queries_arg $ deadline_arg
    $ flush_lanes_arg $ flush_delay_arg $ no_memo_arg $ strict_arg
    $ tcp_shutdown_arg $ metrics_out_arg $ metrics_interval_arg)
