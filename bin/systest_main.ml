(* systest — the system-test front end.

   Subcommands:
     run    execute the scenario catalogue against the built binaries
     list   print the catalogue
     load   sustained-load measurement of gklockd (writes BENCH_load.json)
     gate   perf regression gate: committed BENCH_*.json vs fresh numbers

   The scenario catalogue lives in Systest_scenarios (linked into this
   executable; registration happens at module-initialization time). *)

open Cmdliner

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "systest: %s\n" msg;
      exit 2)
    fmt

let abs p =
  if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p

(* The built binaries normally sit next to this executable in
   _build/default/bin; --gklock / --gklockd override for odd layouts. *)
let sibling name = Filename.concat (Filename.dirname Sys.executable_name) name

let binary_arg name ~default ~doc =
  Arg.(value & opt string default & info [ name ] ~docv:"BIN" ~doc)

let gklock_arg =
  binary_arg "gklock" ~default:(sibling "gklock_cli.exe")
    ~doc:"Path of the gklock CLI binary under test."

let gklockd_arg =
  binary_arg "gklockd" ~default:(sibling "gklockd.exe")
    ~doc:"Path of the gklockd daemon binary under test."

let resolve_binary what path =
  let path = abs path in
  if not (Sys.file_exists path) then
    die "%s binary not found at %s (build first, or pass --%s)" what path what;
  path

(* ----- run ----- *)

let profile_arg =
  let doc = "Scenario profile: $(b,smoke) (CI default) or $(b,full)." in
  Arg.(value & opt string "smoke" & info [ "profile" ] ~docv:"NAME" ~doc)

let only_arg =
  let doc =
    "Run only scenarios whose name contains $(docv) (repeatable, \
     comma-separable)."
  in
  Arg.(value & opt_all string [] & info [ "only" ] ~docv:"SUBSTR" ~doc)

let dir_arg =
  let doc =
    "Sandbox root for scenario directories (default: a fresh directory under \
     the system temp dir)."
  in
  Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)

let keep_arg =
  let doc = "Keep the sandboxes of passing scenarios too." in
  Arg.(value & flag & info [ "keep" ] ~doc)

let scenario_timeout_arg =
  let doc = "Per-scenario wall-clock watchdog in seconds." in
  Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let repo_root_arg =
  let doc =
    "Repository root — where the committed BENCH_*.json baselines live."
  in
  Arg.(value & opt string "." & info [ "repo-root" ] ~docv:"DIR" ~doc)

let run_cmd =
  let run profile only dir keep timeout gklock gklockd repo_root =
    let profile =
      match Systest.profile_of_string profile with
      | Ok p -> p
      | Error e -> die "%s" e
    in
    let filter =
      List.concat_map (String.split_on_char ',') only
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let _results, ok =
      Systest.run_all ~filter ?root:(Option.map abs dir) ~keep
        ~timeout_s:timeout
        ~gklock:(resolve_binary "gklock" gklock)
        ~gklockd:(resolve_binary "gklockd" gklockd)
        ~systest:(abs Sys.executable_name)
        ~repo_root:(abs repo_root) ~profile ()
    in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run the end-to-end scenario catalogue against the real binaries")
    Term.(const run $ profile_arg $ only_arg $ dir_arg $ keep_arg
          $ scenario_timeout_arg $ gklock_arg $ gklockd_arg $ repo_root_arg)

(* ----- list ----- *)

let list_cmd =
  let run () =
    List.iter
      (fun (name, tags, full_only) ->
        Printf.printf "%-28s %s%s\n" name (String.concat "," tags)
          (if full_only then " [full]" else ""))
      (Systest.scenarios ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the scenario catalogue")
    Term.(const run $ const ())

(* ----- load ----- *)

let load_design_arg =
  let doc = "Builtin benchmark the daemon serves." in
  Arg.(value & opt string Load_gen.default_cfg.Load_gen.l_design
       & info [ "design" ] ~docv:"NAME" ~doc)

let clients_arg =
  let doc = "Concurrent closed-loop clients." in
  Arg.(value & opt int Load_gen.default_cfg.Load_gen.l_clients
       & info [ "clients" ] ~docv:"N" ~doc)

let duration_arg =
  let doc =
    "Measured window per (transport x mode) row in seconds (default: 5, or \
     1 with $(b,--smoke))."
  in
  Arg.(value & opt (some float) None & info [ "duration" ] ~docv:"SECONDS" ~doc)

let flush_lanes_arg =
  let doc = "Daemon scalar-coalescing flush threshold (lanes)." in
  Arg.(value & opt int Load_gen.default_cfg.Load_gen.l_flush_lanes
       & info [ "flush-lanes" ] ~docv:"N" ~doc)

let flush_delay_arg =
  let doc = "Daemon max coalescing delay in seconds." in
  Arg.(value & opt float Load_gen.default_cfg.Load_gen.l_flush_delay_s
       & info [ "flush-delay" ] ~docv:"SECONDS" ~doc)

let smoke_arg =
  let doc =
    "Smoke profile: short windows, for the regression gate — not for \
     refreshing the committed baseline."
  in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let out_arg =
  let doc = "Write the load document to $(docv)." in
  Arg.(value & opt string "BENCH_load.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let load_dir_arg =
  let doc = "Scratch directory (default: fresh under the system temp dir)." in
  Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)

let load_cmd =
  let run design clients duration flush_lanes flush_delay smoke out dir gklockd
      =
    let gklockd = resolve_binary "gklockd" gklockd in
    let cfg =
      {
        Load_gen.l_design = design;
        l_clients = clients;
        l_duration_s =
          (match duration with
          | Some d -> d
          | None -> if smoke then 1.0 else 5.0);
        l_flush_lanes = flush_lanes;
        l_flush_delay_s = flush_delay;
      }
    in
    let dir =
      match dir with
      | Some d ->
        let d = abs d in
        Systest.mkdir_p d;
        d
      | None ->
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "gklock-load-%d" (Unix.getpid ()))
        in
        Systest.rm_rf d;
        Systest.mkdir_p d;
        d
    in
    let rows =
      List.concat_map
        (fun transport ->
          List.map
            (fun mode ->
              let row = Load_gen.run ~gklockd ~dir cfg transport mode in
              Printf.printf
                "%-5s %-8s %8.0f q/s   p50 %7.1f us   p99 %8.1f us   %d \
                 queries%s\n%!"
                (Load_gen.transport_name transport)
                (Load_gen.mode_name mode) row.Load_gen.r_qps
                row.Load_gen.r_p50_us row.Load_gen.r_p99_us
                row.Load_gen.r_queries
                (if row.Load_gen.r_errors > 0 then
                   Printf.sprintf "   %d ERRORS" row.Load_gen.r_errors
                 else "");
              row)
            [ `Scalar; `Batch ])
        [ `Unix; `Tcp ]
    in
    let doc = Load_gen.to_json ~smoke cfg rows in
    let oc = open_out_bin out in
    output_string oc (Cjson.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" out;
    Systest.rm_rf dir;
    if List.exists (fun r -> r.Load_gen.r_errors > 0) rows then exit 1
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Sustained-load measurement: spawn gklockd and hammer it with \
          concurrent clients over unix and tcp, scalar and batch")
    Term.(const run $ load_design_arg $ clients_arg $ duration_arg
          $ flush_lanes_arg $ flush_delay_arg $ smoke_arg $ out_arg
          $ load_dir_arg $ gklockd_arg)

(* ----- gate ----- *)

let baseline_dir_arg =
  let doc = "Directory holding the committed BENCH_*.json baselines." in
  Arg.(value & opt string "." & info [ "baseline-dir" ] ~docv:"DIR" ~doc)

let fresh_dir_arg =
  let doc =
    "Directory holding freshly measured BENCH_*.json documents (individual \
     $(b,--fresh-*) flags override per file)."
  in
  Arg.(value & opt (some string) None & info [ "fresh-dir" ] ~docv:"DIR" ~doc)

let fresh_file_arg which =
  let doc = Printf.sprintf "Freshly measured %s." which in
  let name = "fresh-" ^ which in
  Arg.(value & opt (some string) None & info [ name ] ~docv:"FILE" ~doc)

let max_slowdown_arg =
  let doc =
    "Fail when a fresh throughput (latency) is worse than baseline / $(docv) \
     (baseline x $(docv))."
  in
  Arg.(value & opt float 1.5 & info [ "max-slowdown" ] ~docv:"FACTOR" ~doc)

let ratio_tolerance_arg =
  let doc =
    "Tolerance factor for dimensionless speedup ratios (machine-independent \
     checks)."
  in
  Arg.(value & opt float 2.0 & info [ "ratio-tolerance" ] ~docv:"FACTOR" ~doc)

let inject_slowdown_arg =
  let doc =
    "Self-test hook: pretend every fresh throughput is $(docv)x slower (and \
     every latency $(docv)x higher) before comparing."
  in
  Arg.(value & opt float 1.0 & info [ "inject-slowdown" ] ~docv:"FACTOR" ~doc)

let read_json what path =
  if not (Sys.file_exists path) then die "%s: %s does not exist" what path;
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Cjson.of_string s with
  | Ok j -> j
  | Error e -> die "%s: %s: invalid JSON: %s" what path e

let gate_cmd =
  let run baseline_dir fresh_dir fresh_eval fresh_attacks fresh_load
      max_slowdown ratio_tolerance inject_slowdown =
    let fresh_path name = function
      | Some f -> Some f
      | None -> (
        match fresh_dir with
        | None -> None
        | Some d ->
          let p = Filename.concat d name in
          if Sys.file_exists p then Some p else None)
    in
    let pair file name fresh =
      match fresh_path name fresh with
      | None -> None
      | Some fresh_file ->
        let base_file = Filename.concat baseline_dir name in
        if not (Sys.file_exists base_file) then begin
          Printf.printf "gate: no baseline %s — skipping %s\n" base_file name;
          None
        end
        else
          Some
            ( file,
              read_json "baseline" base_file,
              read_json "fresh" fresh_file )
    in
    let pairs =
      List.filter_map Fun.id
        [
          pair `Eval "BENCH_eval.json" fresh_eval;
          pair `Attacks "BENCH_attacks.json" fresh_attacks;
          pair `Load "BENCH_load.json" fresh_load;
        ]
    in
    if pairs = [] then
      die
        "nothing to gate: give --fresh-dir or --fresh-eval/--fresh-attacks/\
         --fresh-load";
    let report =
      Perf_gate.compare_docs ~max_slowdown ~ratio_tolerance ~inject_slowdown
        pairs
    in
    print_string (Perf_gate.render report);
    if not report.Perf_gate.g_ok then exit 1
  in
  Cmd.v
    (Cmd.info "gate"
       ~doc:
         "Perf regression gate: compare fresh BENCH_*.json measurements \
          against the committed baselines")
    Term.(const run $ baseline_dir_arg $ fresh_dir_arg
          $ fresh_file_arg "eval" $ fresh_file_arg "attacks"
          $ fresh_file_arg "load" $ max_slowdown_arg $ ratio_tolerance_arg
          $ inject_slowdown_arg)

(* ----- main ----- *)

let () =
  (* scenario registration lives in its own module; make sure the
     linker keeps it *)
  Systest_scenarios.status_str (Unix.WEXITED 0) |> ignore;
  let doc = "gklock system tests, load generator and perf regression gate" in
  let info = Cmd.info "systest" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; list_cmd; load_cmd; gate_cmd ]))
