(* gklock — command-line front end.

   Subcommands:
     info     print netlist statistics
     gen      materialize a built-in benchmark as a .bench file
     opt      strash/rewrite optimization pass (pin interface preserved)
     encrypt  lock a design (gk / xor / mux / sarlock / antisat / tdk / hybrid)
     attack   run the SAT attack against a locked .bench
     serve    run the oracle-as-a-service daemon (also built as gklockd)
     sim      timing-simulate a design and report captures/violations
     sta      static timing report
     tables   regenerate the paper's tables
     figs     regenerate the paper's figures *)

open Cmdliner

(* ----- shared arguments and helpers ----- *)

let load_design = Cli_common.load_design

let design_arg =
  let doc =
    "Input design: a .bench or structural-Verilog (.v) file, a built-in \
     benchmark name (s1238, s5378, s9234, s13207, s15850, s38417, s38584), \
     or 's27' / 'tiny'."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc)

let output_arg =
  let doc = "Write the resulting netlist to $(docv) (.bench format)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let seed_arg =
  let doc = "Random seed (experiments are deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let clock_arg =
  let doc =
    "Clock period in ps.  Default: critical path with a 1.3x margin."
  in
  Arg.(value & opt (some int) None & info [ "clock" ] ~docv:"PS" ~doc)

let clock_of net = function
  | Some ps -> ps
  | None -> Sta.clock_for net ~margin:1.3

let emit output net =
  match output with
  | None -> print_string (Bench_format.print net)
  | Some path ->
    if Filename.check_suffix path ".v" then Verilog.write_file net path
    else Bench_format.write_file net path;
    Printf.printf "wrote %s\n" path

(* ----- info ----- *)

let info_cmd =
  let run design =
    let net = load_design design in
    let st = Stats.of_netlist net in
    Format.printf "%s: %a@." (Netlist.name net) Stats.pp st;
    Format.printf "critical path: %d ps; min clock: %d ps@."
      (Sta.critical_path_ps net) (Sta.min_clock_ps net);
    let groups = Topo.group_ffs_by_cone net in
    Format.printf "FF cone groups: %d (largest %d)@." (List.length groups)
      (match groups with g :: _ -> List.length g | [] -> 0)
  in
  Cmd.v (Cmd.info "info" ~doc:"Print netlist statistics")
    Term.(const run $ design_arg)

(* ----- gen ----- *)

let gen_cmd =
  let run design output =
    let net = load_design design in
    emit output net
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Materialize a built-in benchmark as .bench text")
    Term.(const run $ design_arg $ output_arg)

(* ----- opt ----- *)

let opt_cmd =
  let check_arg =
    let doc =
      "Verify the optimized netlist against the original with a SAT miter \
       (combinational designs only; sequential designs are compared on \
       their combinationalized view)."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run design check output =
    let net = load_design design in
    let opt, stats = Opt.run net in
    Format.printf "%a@." Opt.pp_stats stats;
    Printf.printf "reduction: %.1f%% of combinational nodes removed\n"
      (100. *. Opt.reduction stats);
    if check then begin
      let comb n = if Netlist.ffs n = [] then n else fst (Combinationalize.run n) in
      match Equiv.check (comb net) (comb opt) with
      | Equiv.Equivalent -> print_endline "check: SAT miter equivalent"
      | Equiv.Different w ->
        Printf.eprintf "check FAILED: functions differ at %s\n"
          (String.concat ","
             (List.map (fun (n, v) -> Printf.sprintf "%s=%b" n v) w));
        exit 1
    end;
    emit output opt
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:
         "Optimize a netlist (strash, constant folding, rewrites, dead \
          sweep); the pin interface is preserved")
    Term.(const run $ design_arg $ check_arg $ output_arg)

(* ----- encrypt ----- *)

let scheme_arg =
  let schemes =
    [
      ("gk", `Gk); ("xor", `Xor); ("mux", `Mux); ("sarlock", `Sarlock);
      ("antisat", `Antisat); ("tdk", `Tdk); ("hybrid", `Hybrid);
      ("fault", `Fault);
    ]
  in
  let doc =
    "Locking scheme: gk, xor, mux, sarlock, antisat, tdk, hybrid or fault \
     (fault-impact-guided XOR insertion)."
  in
  Arg.(value & opt (enum schemes) `Gk & info [ "scheme" ] ~docv:"SCHEME" ~doc)

let nkeys_arg =
  let doc =
    "Number of key-gates (GKs count two key-inputs each; hybrid splits \
     between 8 GKs and N XORs)."
  in
  Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc)

let encrypt_cmd =
  let run design scheme n seed clock output =
    let net = load_design design in
    let clock_ps = clock_of net clock in
    let print_key correct = Printf.printf "key: %s\n" (Key.to_string correct) in
    match scheme with
    | `Gk ->
      let d = Insertion.lock ~seed net ~clock_ps ~n_gks:n in
      let c, a = Insertion.overhead d in
      Printf.printf "gk: %d GKs @ clock %d ps; overhead cell %.2f%% area %.2f%%\n"
        n clock_ps c a;
      print_key d.Insertion.correct_key;
      emit output d.Insertion.lnet
    | `Hybrid ->
      let h = Hybrid.lock ~seed net ~clock_ps ~n_gks:8 ~n_xors:n in
      let c, a = Hybrid.overhead h in
      Printf.printf "hybrid: 8 GKs + %d XORs; overhead cell %.2f%% area %.2f%%\n"
        n c a;
      print_key h.Hybrid.all_correct_key;
      emit output h.Hybrid.design.Insertion.lnet
    | `Tdk ->
      let t = Tdk.lock ~seed net ~clock_ps ~n_sites:n in
      print_key t.Tdk.locked.Locked.correct_key;
      emit output t.Tdk.locked.Locked.net
    | (`Xor | `Mux | `Sarlock | `Antisat | `Fault) as s ->
      let comb, _ = Combinationalize.run net in
      let lk =
        match s with
        | `Xor -> Xor_lock.lock ~seed comb ~n_keys:n
        | `Mux -> Mux_lock.lock ~seed comb ~n_keys:n
        | `Sarlock -> Sarlock.lock ~seed comb ~n_keys:n
        | `Antisat -> Antisat.lock ~seed comb ~n:n
        | `Fault -> Fault_lock.lock ~seed comb ~n_keys:n
      in
      Printf.printf "%s: %d key-inputs (combinational view)\n"
        lk.Locked.scheme (List.length lk.Locked.key_inputs);
      print_key lk.Locked.correct_key;
      emit output lk.Locked.net
  in
  Cmd.v
    (Cmd.info "encrypt" ~doc:"Lock a design with a chosen scheme")
    Term.(const run $ design_arg $ scheme_arg $ nkeys_arg $ seed_arg
          $ clock_arg $ output_arg)

(* ----- attack ----- *)

let keys_arg =
  let doc = "Comma-separated key-input names of the locked design." in
  Arg.(required & opt (some string) None & info [ "keys" ] ~docv:"K0,K1,.." ~doc)

let oracle_arg =
  let doc =
    "The functionally correct chip: a design (.bench or builtin), or a \
     running gklockd daemon as $(b,unix:PATH) / $(b,tcp:HOST:PORT)."
  in
  Arg.(required & opt (some string) None & info [ "oracle" ] ~docv:"DESIGN" ~doc)

let oracle_design_arg =
  let doc =
    "Design name on the remote oracle daemon (default: the only design it \
     hosts).  Ignored for local oracles."
  in
  Arg.(
    value & opt (some string) None
    & info [ "oracle-design" ] ~docv:"NAME" ~doc)

let remote_oracle_addr s =
  let pre p =
    String.length s > String.length p && String.sub s 0 (String.length p) = p
  in
  if pre "unix:" || pre "tcp:" then
    match Frame_io.parse_addr s with
    | Ok a -> Some a
    | Error e -> Cli_common.die "--oracle %s: %s" s e
  else None

let method_arg =
  let doc =
    "Attack name from the registry (see $(b,gklock attacks) for the list)."
  in
  Arg.(value & opt string "sat" & info [ "method" ] ~docv:"NAME" ~doc)

let max_iterations_arg =
  let doc = "Budget: maximum attack iterations (DIPs, candidates, ...)." in
  Arg.(value & opt int 4096 & info [ "max-iterations" ] ~docv:"N" ~doc)

let max_queries_arg =
  let doc = "Budget: maximum chip (oracle) queries." in
  Arg.(value & opt (some int) None & info [ "max-queries" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Budget: wall-clock deadline in seconds." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S" ~doc)

let metrics_out_arg =
  let doc =
    "Write the process-global metrics registry (oracle queries, memo hits, \
     engine evals, budget trips, ...) as one JSON object to $(docv) after \
     the run."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let write_metrics = function
  | None -> ()
  | Some path ->
    Obs.Metrics.write_file path;
    Printf.printf "wrote %s\n" path

let attack_cmd =
  let run design keys oracle_path oracle_design name max_iterations max_queries
      deadline seed metrics_out =
    let locked = load_design design in
    let locked, _ =
      if Netlist.ffs locked = [] then (locked, [])
      else Combinationalize.run locked
    in
    let remote, oracle =
      match remote_oracle_addr oracle_path with
      | Some addr ->
        let r = Remote_oracle.connect ?design:oracle_design addr in
        Printf.printf "oracle: %s design %s via %s\n"
          (Remote_oracle.server_name r)
          (Remote_oracle.design r) oracle_path;
        (Some r, Remote_oracle.oracle r)
      | None ->
        let oracle_net = load_design oracle_path in
        let oracle_net, _ =
          if Netlist.ffs oracle_net = [] then (oracle_net, [])
          else Combinationalize.run oracle_net
        in
        (None, Oracle.of_netlist oracle_net)
    in
    let key_inputs = String.split_on_char ',' keys in
    let budget =
      Budget.create ~max_iterations ?max_queries ?deadline_s:deadline ()
    in
    let o = Attack.run ~budget ~seed ~name ~locked ~key_inputs ~oracle () in
    Option.iter Remote_oracle.close remote;
    Printf.printf "%s: %s\n" name (Attack.verdict_name o.Attack.verdict);
    (match o.Attack.verdict with
    | Attack.Key_recovered k ->
      Printf.printf "key recovered after %d iterations: %s\n"
        o.Attack.iterations (Key.to_string k)
    | Attack.Wrong_key { key; mismatches } ->
      Printf.printf "claimed key %s refuted by the chip on %d/64 samples\n"
        (Key.to_string key) mismatches
    | Attack.No_dip { key; mismatches } ->
      Printf.printf
        "unsatisfiable at the first DIP search — the attack learned nothing\n";
      Printf.printf
        "an arbitrary consistent key (%s) mismatches the chip on %d/64 \
         samples\n"
        (Key.to_string key) mismatches
    | Attack.Approx_key { key; error_rate } ->
      Printf.printf "approximate key (error %.3f): %s\n" error_rate
        (Key.to_string key)
    | Attack.Partial_key { recovered; unresolved } ->
      Printf.printf "%d bits recovered, %d unresolved\n"
        (List.length recovered) unresolved;
      if recovered <> [] then
        Printf.printf "bits: %s\n" (Key.to_string recovered)
    | Attack.Recovered_netlist net ->
      Printf.printf "recovered a key-free netlist (%d nodes)\n"
        (Netlist.num_nodes net)
    | Attack.Gave_up r ->
      Printf.printf "the attack gave up (%s)\n" (Attack.gave_up_reason_name r)
    | Attack.Skipped -> ()
    | Attack.Out_of_budget r ->
      Printf.printf "budget exhausted (%s) after %d iterations\n"
        (Budget.reason_name r) o.Attack.iterations);
    Printf.printf
      "iterations: %d   oracle queries: %d   CDCL conflicts: %d   %.2fs\n"
      o.Attack.iterations o.Attack.queries o.Attack.conflicts
      o.Attack.elapsed_s;
    Printf.printf "replay with: --seed %d\n" seed;
    write_metrics metrics_out
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Run a registered oracle-guided attack against a locked design")
    Term.(const run $ design_arg $ keys_arg $ oracle_arg $ oracle_design_arg
          $ method_arg $ max_iterations_arg $ max_queries_arg $ deadline_arg
          $ seed_arg $ metrics_out_arg)

let attacks_cmd =
  let run markdown =
    if markdown then print_string (Attack.markdown_table ())
    else
      List.iter
        (fun (e : Attack.entry) ->
          Printf.printf "%-17s %-55s budget unit: %s\n" e.Attack.name
            e.Attack.threat_model e.Attack.budget_unit)
        Attack.registry
  in
  let markdown_arg =
    let doc = "Emit the registry as a markdown table (README format)." in
    Arg.(value & flag & info [ "markdown" ] ~doc)
  in
  Cmd.v
    (Cmd.info "attacks" ~doc:"List the attack registry")
    Term.(const run $ markdown_arg)

(* ----- serve (the oracle daemon, also built standalone as gklockd) ----- *)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve" ~doc:Cli_common.serve_doc ~man:Cli_common.serve_man)
    Cli_common.serve_term

(* ----- sim ----- *)

let cycles_arg =
  let doc = "Number of clock cycles to simulate." in
  Arg.(value & opt int 16 & info [ "cycles" ] ~docv:"N" ~doc)

let vcd_arg =
  let doc = "Also dump the named signals' waveforms (all nets when the list \
             is empty) to $(docv) in VCD format." in
  Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc)

let sim_cmd =
  let run design cycles clock seed vcd =
    let net = load_design design in
    let clock_ps = clock_of net clock in
    let drive = Stimuli.edge_aligned ~seed net ~clock_ps ~cycles in
    let r = Timing_sim.run ~drive net { Timing_sim.clock_ps; cycles } in
    Printf.printf "%s: %d cycles @ %d ps\n" (Netlist.name net) cycles clock_ps;
    List.iter
      (fun (po, samples) ->
        Printf.printf "%-12s %s\n" po
          (String.init (Array.length samples) (fun i ->
               Logic.to_char samples.(i))))
      r.Timing_sim.po_samples;
    Printf.printf "violations: %d\n" (List.length r.Timing_sim.violations);
    List.iteri
      (fun i v ->
        if i < 10 then
          Printf.printf "  %s cycle %d %s @ %d ps\n" v.Timing_sim.v_ff_name
            v.Timing_sim.v_cycle
            (match v.Timing_sim.v_kind with
            | Timing_sim.Setup_violation -> "setup"
            | Timing_sim.Hold_violation -> "hold")
            v.Timing_sim.v_time)
      r.Timing_sim.violations;
    match vcd with
    | None -> ()
    | Some path ->
      Vcd.write_file net r ~signals:[] path;
      Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Timing-accurate simulation with glitch propagation")
    Term.(const run $ design_arg $ cycles_arg $ clock_arg $ seed_arg $ vcd_arg)

(* ----- sta ----- *)

let sta_cmd =
  let run design clock =
    let net = load_design design in
    let clock_ps = clock_of net clock in
    let sta = Sta.analyze net ~clock_ps in
    Printf.printf "%s @ %d ps (critical %d ps)\n" (Netlist.name net) clock_ps
      (Sta.critical_path_ps net);
    let worst =
      List.sort
        (fun a b -> compare (Sta.setup_slack sta a) (Sta.setup_slack sta b))
        (Netlist.ffs net)
    in
    List.iteri
      (fun i ff ->
        if i < 15 then
          let arr = Sta.ff_d_arrival sta ff in
          Printf.printf "%-12s arrival [%d, %d] ps  setup slack %d  hold slack %d\n"
            (Netlist.node net ff).Netlist.name arr.Sta.amin arr.Sta.amax
            (Sta.setup_slack sta ff) (Sta.hold_slack sta ff))
      worst;
    let sites = Insertion.available_sites net ~clock_ps ~l_glitch_ps:1000 in
    Printf.printf "GK sites (1 ns glitch): %d / %d FFs\n" (List.length sites)
      (List.length (Netlist.ffs net))
  in
  Cmd.v (Cmd.info "sta" ~doc:"Static timing report and GK site feasibility")
    Term.(const run $ design_arg $ clock_arg)

(* ----- flow ----- *)

let flow_cmd =
  let run design n seed =
    let net = load_design design in
    let margin = if Stats.(of_netlist net).Stats.cells < 100 then 4.5 else 1.2 in
    let design', report = Design_flow.run ~seed ~clock_margin:margin net ~n_gks:n in
    Format.printf "%a@." Design_flow.pp_report report;
    Format.printf "key: %s@." (Key.to_string design'.Insertion.correct_key)
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:"Run the full Sec. IV-B design flow (synthesize, place, insert, audit)")
    Term.(const run $ design_arg $ nkeys_arg $ seed_arg)

(* ----- fuzz ----- *)

let die fmt = Printf.ksprintf (fun msg -> Printf.eprintf "%s\n" msg; exit 1) fmt

let fuzz_cmd =
  let cases_arg =
    let doc = "Number of fuzz cases to run." in
    Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let time_arg =
    let doc = "Wall-clock budget in seconds (checked between batches)." in
    Arg.(value & opt (some float) None & info [ "time" ] ~docv:"SECONDS" ~doc)
  in
  let fuzz_seed_arg =
    let doc = "Run seed (default: GKLOCK_SEED, else 42)." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)
  in
  let corpus_arg =
    let doc = "Persist shrunk failures as .bench/.stim pairs into $(docv)." in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let fuzz_workers_arg =
    let doc = "Worker domains (default: GKLOCK_DOMAINS or cores)." in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let inject_arg =
    let doc =
      "Mutation-testing mode: inject a known bug into the reference \
       interpreter ("
      ^ String.concat ", " (List.map Ref_sim.fault_name Ref_sim.all_faults)
      ^ ") — the fuzzer must then find and shrink failures."
    in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"FAULT" ~doc)
  in
  let families_arg =
    let doc =
      "Comma-separated case families ("
      ^ String.concat ", " (List.map Fuzz.family_name Fuzz.all_families)
      ^ ").  Default: all."
    in
    Arg.(value & opt (some string) None & info [ "families" ] ~docv:"LIST" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress the per-batch progress line." in
    Arg.(value & flag & info [ "quiet" ] ~doc)
  in
  let run cases time seed corpus workers inject families quiet =
    let seed = match seed with Some s -> s | None -> Fuzz_seed.value () in
    let fault =
      match inject with
      | None -> None
      | Some name -> (
        match Ref_sim.fault_of_string name with
        | Some f -> Some f
        | None ->
          die "unknown fault %S (known: %s)" name
            (String.concat ", " (List.map Ref_sim.fault_name Ref_sim.all_faults)))
    in
    let families =
      match families with
      | None -> None
      | Some spec ->
        Some
          (String.split_on_char ',' spec
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
          |> List.map (fun s ->
                 match
                   List.find_opt
                     (fun f -> Fuzz.family_name f = s)
                     Fuzz.all_families
                 with
                 | Some f -> f
                 | None ->
                   die "unknown family %S (known: %s)" s
                     (String.concat ", "
                        (List.map Fuzz.family_name Fuzz.all_families))))
    in
    let progress n =
      if not quiet then (
        Printf.printf "\rfuzz: %d/%d cases%!" n cases;
        if n = cases then print_newline ())
    in
    let report =
      Fuzz.run ?fault ?families ?corpus_dir:corpus ?workers
        ?time_budget_s:time ~progress ~seed ~cases ()
    in
    if (not quiet) && report.Fuzz.r_cases_run < cases then print_newline ();
    Printf.printf "fuzz: seed %d, %d/%d cases in %.1fs, %d failure(s)\n"
      report.Fuzz.r_seed report.Fuzz.r_cases_run cases
      report.Fuzz.r_elapsed_s
      (List.length report.Fuzz.r_failures);
    List.iter
      (fun f ->
        Format.printf "@[<v>%a@]@." Fuzz.pp_failure f;
        Printf.printf "  replay: %s\n" (Fuzz.replay_command report f))
      report.Fuzz.r_failures;
    if report.Fuzz.r_failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random/adversarial/mutated netlists and \
          locking-scheme properties checked across the engine, the naive \
          reference, the timing simulator, SAT miters and BDDs; failures \
          are shrunk to replayable .bench + .stim counterexamples")
    Term.(const run $ cases_arg $ time_arg $ fuzz_seed_arg $ corpus_arg
          $ fuzz_workers_arg $ inject_arg $ families_arg $ quiet_arg)

(* ----- campaign ----- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let campaign_name_arg =
  let doc =
    "Built-in campaign matrix: " ^ String.concat ", " Campaign_job.builtin_names
    ^ "."
  in
  Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME" ~doc)

let campaign_spec_arg =
  let doc = "Campaign matrix as a JSON file (see DESIGN.md §6c)." in
  Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE" ~doc)

let campaign_dir_arg =
  let doc =
    "Campaign directory (default: campaigns/<name>).  Holds the job store, \
     telemetry and report; re-running against the same directory resumes."
  in
  Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)

let workers_arg =
  let doc = "Concurrent worker domains (default: GKLOCK_DOMAINS or cores)." in
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc = "Per-job wall-clock timeout in seconds (0 = none)." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let retries_arg =
  let doc = "Extra attempts for transient job failures." in
  Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N" ~doc)

(* A matrix comes from --spec (JSON file), --name (built-in), or — for
   status/report — the matrix.json a previous run left in --dir. *)
let campaign_matrix name spec dir =
  match spec with
  | Some path -> (
    match Cjson.of_string (read_file path) with
    | Error e -> die "%s: invalid JSON: %s" path e
    | Ok j -> (
      match Campaign_job.matrix_of_json j with
      | Ok m -> m
      | Error e -> die "%s: %s" path e))
  | None -> (
    match name with
    | Some n -> (
      match Campaign_job.builtin n with
      | Some m -> m
      | None ->
        die "unknown campaign %S (built-ins: %s)" n
          (String.concat ", " Campaign_job.builtin_names))
    | None -> (
      match dir with
      | Some d -> (
        match Campaign.load_matrix ~dir:d with
        | Ok m -> m
        | Error e -> die "%s" e)
      | None -> die "campaign: need --name, --spec or --dir"))

let campaign_dir dir (m : Campaign_job.matrix) =
  match dir with
  | Some d -> d
  | None -> Campaign.dir_for m.Campaign_job.m_name

(* SIGINT stops a campaign gracefully: the handler only flips a flag,
   the scheduler drains in-flight jobs, checkpoints them and writes the
   report, and the process exits 3 — so a resumed run converges on the
   byte-identical report an uninterrupted run produces.  A second ^C
   while draining kills immediately. *)
let interrupted = Atomic.make false

let install_sigint_abort () =
  match
    Sys.signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           if Atomic.get interrupted then exit 130;
           Atomic.set interrupted true;
           prerr_endline
             "gklock: SIGINT — draining in-flight jobs, checkpointing (^C \
              again to kill)"))
  with
  | _ -> ()
  | exception Invalid_argument _ -> ()

let campaign_run_cmd =
  let run name spec dir workers timeout retries metrics_out =
    let m = campaign_matrix name spec dir in
    let dir = campaign_dir dir m in
    install_sigint_abort ();
    let stats =
      Campaign.run ?workers ?timeout_s:timeout ?retries
        ~should_abort:(fun () -> Atomic.get interrupted)
        ~dir m
    in
    Printf.printf
      "campaign %s in %s: %d ran (%d ok, %d failed, %d timed out), %d \
       skipped, %d retries%s\n"
      m.Campaign_job.m_name dir stats.Campaign_runner.ran
      stats.Campaign_runner.ok stats.Campaign_runner.failed
      stats.Campaign_runner.timed_out stats.Campaign_runner.skipped
      stats.Campaign_runner.retries
      (if stats.Campaign_runner.aborted then " [aborted]" else "");
    print_string (Campaign.report ~dir m);
    write_metrics metrics_out;
    if stats.Campaign_runner.aborted then exit 3
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run (or resume) a campaign: completed jobs are skipped, failures \
          and timeouts are recorded as data")
    Term.(const run $ campaign_name_arg $ campaign_spec_arg $ campaign_dir_arg
          $ workers_arg $ timeout_arg $ retries_arg $ metrics_out_arg)

let campaign_status_cmd =
  let run name spec dir =
    let m = campaign_matrix name spec dir in
    print_string (Campaign.status ~dir:(campaign_dir dir m) m)
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Progress and failure summary of a campaign")
    Term.(const run $ campaign_name_arg $ campaign_spec_arg $ campaign_dir_arg)

let campaign_report_cmd =
  let run name spec dir =
    let m = campaign_matrix name spec dir in
    print_string (Campaign.report ~dir:(campaign_dir dir m) m)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Deterministic report of the stored results (tables + matrix)")
    Term.(const run $ campaign_name_arg $ campaign_spec_arg $ campaign_dir_arg)

(* ----- campaign store maintenance ----- *)

let store_arg =
  let doc =
    "Content-addressed store root (default: campaigns/store, the store \
     shared by every campaign under campaigns/; GKLOCK_STORE overrides the \
     default)."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let resolve_store store =
  match store with
  | Some s -> s
  | None -> (
    match Sys.getenv_opt "GKLOCK_STORE" with
    | Some s when s <> "" -> s
    | _ -> Filename.concat Campaign.default_root "store")

let bytes_human n =
  if n >= 1 lsl 20 then Printf.sprintf "%.1f MiB" (float_of_int n /. 1048576.0)
  else if n >= 1 lsl 10 then
    Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.0)
  else Printf.sprintf "%d B" n

let open_store store =
  let root = resolve_store store in
  if not (Sys.file_exists root) then die "no store at %s" root;
  Cas.open_ root

let campaign_gc_cmd =
  let run store =
    let cas = open_store store in
    let g = Cas.gc cas in
    Cas.close cas;
    print_string
      (Report.kv_table
         ~title:(Printf.sprintf "store gc — %s" (resolve_store store))
         ([
            ("live objects", string_of_int g.Cas.gc_live_objects);
            ("swept objects", string_of_int g.Cas.gc_swept_objects);
            ("swept bytes", bytes_human g.Cas.gc_swept_bytes);
            ("index entries", string_of_int g.Cas.gc_index_entries);
          ]
         @ List.map
             (fun m -> ("dropped manifest", m))
             g.Cas.gc_dropped_manifests))
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Sweep store objects unreachable from any live campaign manifest \
          (manifests of deleted campaign directories are dropped first)")
    Term.(const run $ store_arg)

let campaign_fsck_cmd =
  let run store =
    let cas = open_store store in
    let f = Cas.fsck cas in
    Cas.close cas;
    print_string
      (Report.kv_table
         ~title:(Printf.sprintf "store fsck — %s" (resolve_store store))
         ([
            ("objects scanned", string_of_int f.Cas.f_objects);
            ("corrupt (quarantined)", string_of_int (List.length f.Cas.f_corrupt));
            ("index entries dropped", string_of_int f.Cas.f_index_dropped);
            ("index torn bytes", string_of_int f.Cas.f_index_torn_bytes);
            ("verdict", if f.Cas.f_ok then "clean" else "repaired");
          ]
         @ List.map (fun (p, why) -> ("quarantined", p ^ ": " ^ why))
             f.Cas.f_corrupt
         @ List.map
             (fun (m, n) -> ("manifest " ^ m, Printf.sprintf "%d dropped" n))
             f.Cas.f_manifest_dropped));
    if not f.Cas.f_ok then exit 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify every store object against its digest (corrupt objects are \
          quarantined), repair a torn index and drop dangling entries; exits \
          1 when anything needed repair")
    Term.(const run $ store_arg)

let campaign_dedup_cmd =
  let run store =
    let cas = open_store store in
    let s = Cas.stats cas in
    Cas.close cas;
    print_string
      (Report.kv_table
         ~title:(Printf.sprintf "store — %s" (resolve_store store))
         ([
            ("objects", string_of_int s.Cas.st_objects);
            ("bytes", bytes_human s.Cas.st_bytes);
            ("index entries", string_of_int s.Cas.st_index_entries);
            ("blobs", string_of_int s.Cas.st_blobs);
            ("blob refs", string_of_int s.Cas.st_blob_refs);
            ("shared blobs", string_of_int s.Cas.st_shared_blobs);
            ("bytes saved by sharing", bytes_human s.Cas.st_saved_bytes);
          ]
         @ List.map
             (fun (name, n) ->
               ("manifest " ^ name, Printf.sprintf "%d results" n))
             s.Cas.st_manifests))
  in
  Cmd.v
    (Cmd.info "dedup"
       ~doc:
         "Structural-sharing view of the store: object counts, per-campaign \
          manifests, and the bytes blob sharing avoided writing")
    Term.(const run $ store_arg)

let campaign_cmd =
  Cmd.group
    (Cmd.info "campaign"
       ~doc:
         "Resumable experiment campaigns: a declarative job matrix executed \
          by a worker pool with per-job timeouts, checkpointed to a \
          content-addressed result store shared across campaigns, with a \
          telemetry trace")
    [
      campaign_run_cmd;
      campaign_status_cmd;
      campaign_report_cmd;
      campaign_gc_cmd;
      campaign_fsck_cmd;
      campaign_dedup_cmd;
    ]

(* ----- tables / figs ----- *)

let table_arg =
  let doc = "Which table: 1, 2, sat, comparison, ablation, corruption, all." in
  Arg.(value & opt string "all" & info [ "table" ] ~docv:"WHICH" ~doc)

let tables_campaign_arg =
  let doc =
    "Render tables 1 and 2 as views over a campaign store in $(docv) \
     instead of recomputing them (populate it with 'gklock campaign run \
     --name paper')."
  in
  Arg.(value & opt (some string) None & info [ "campaign" ] ~docv:"DIR" ~doc)

let tables_cmd =
  let run which campaign =
    let t1 () =
      match campaign with
      | None -> print_string (Report.table1 (Experiments.table1 ()))
      | Some dir -> (
        match Campaign.table1_view dir with
        | [] -> die "%s: no completed table1 jobs in the store" dir
        | rows -> print_string (Report.table1 rows))
    in
    let t2 () =
      match campaign with
      | None -> print_string (Report.table2 (Experiments.table2 ()))
      | Some dir -> (
        match Campaign.table2_view dir with
        | [] -> die "%s: no completed table2 jobs in the store" dir
        | rows -> print_string (Report.table2 rows))
    in
    let sat () = print_string (Report.sat_attack (Experiments.sat_attack_table ())) in
    let cmp () = print_string (Report.comparison (Experiments.attack_comparison ())) in
    let abl () =
      print_string (Report.ablation_glitch (Experiments.ablation_glitch_length ()));
      print_string (Report.ablation_profile (Experiments.ablation_delay_profile ()))
    in
    let cor () = print_string (Report.corruptibility (Experiments.corruptibility ())) in
    match which with
    | "1" -> t1 ()
    | "2" -> t2 ()
    | "sat" -> sat ()
    | "comparison" -> cmp ()
    | "ablation" -> abl ()
    | "corruption" -> cor ()
    | "all" -> t1 (); t2 (); sat (); cmp (); abl (); cor ()
    | other -> Printf.eprintf "unknown table %S\n" other; exit 1
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's tables (and ablations)")
    Term.(const run $ table_arg $ tables_campaign_arg)

let figs_cmd =
  let run () =
    print_string (Experiments.fig4 ());
    print_newline ();
    print_string (Experiments.fig6 ());
    print_newline ();
    print_string (Experiments.fig7 ());
    print_newline ();
    print_string (Experiments.fig9 ())
  in
  Cmd.v (Cmd.info "figs" ~doc:"Regenerate the paper's figures")
    Term.(const run $ const ())

(* ----- trace ----- *)

(* `gklock trace [--out FILE] CMD ARGS...` wraps any other subcommand
   under tracing, then validates the file it wrote.  The wrapped
   command's arguments must pass through untouched (including its own
   --flags), which cmdliner's positional parsing does not allow, so this
   subcommand is dispatched by hand from [main]: flags before the first
   positional token belong to trace, everything from that token on is
   re-evaluated as a fresh gklock command line.  [trace_stub_cmd] exists
   so `gklock --help` documents the subcommand. *)
let trace_stub_cmd =
  let run () =
    prerr_endline
      "gklock trace: give a subcommand to run under tracing, e.g.\n\
      \  gklock trace --out run.jsonl attack LOCKED --keys k0,k1 --oracle \
       CHIP\n\
      \  gklock trace --check run.jsonl";
    exit 2
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run any gklock subcommand under span tracing (JSONL, Chrome Trace \
          Event schema), or validate a trace file with --check")
    Term.(const run $ const ())

let run_trace eval args =
  let out = ref "gklock_trace.jsonl" in
  let check = ref None in
  let rec parse = function
    | "--out" :: v :: rest | "-o" :: v :: rest ->
      out := v;
      parse rest
    | "--check" :: v :: rest ->
      check := Some v;
      parse rest
    | rest -> rest
  in
  let rest = parse args in
  let report path =
    match Obs.Trace.validate_file path with
    | Ok c ->
      Printf.printf "%s: valid — %d events, %d spans, max depth %d\n" path
        c.Obs.Trace.v_events c.Obs.Trace.v_spans c.Obs.Trace.v_max_depth;
      0
    | Error e ->
      Printf.eprintf "%s: INVALID trace: %s\n" path e;
      1
  in
  match !check with
  | Some path -> report path
  | None ->
    if rest = [] then (
      Printf.eprintf
        "gklock trace: nothing to run (expected a subcommand, e.g. `gklock \
         trace attack ...`)\n";
      2)
    else begin
      Obs.Trace.enable ~file:!out ();
      let code = eval (Array.of_list ("gklock" :: rest)) in
      Obs.Trace.disable ();
      let vcode = report !out in
      if code <> 0 then code else vcode
    end

let () =
  let doc = "Glitch key-gate logic locking — paper reproduction toolkit" in
  let info = Cmd.info "gklock" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        info_cmd; gen_cmd; opt_cmd; encrypt_cmd; attack_cmd; attacks_cmd;
        serve_cmd;
        sim_cmd; sta_cmd; flow_cmd; tables_cmd; figs_cmd; campaign_cmd;
        fuzz_cmd; trace_stub_cmd;
      ]
  in
  let argv = Sys.argv in
  if Array.length argv > 1 && argv.(1) = "trace" then
    exit
      (run_trace
         (fun argv -> Cmd.eval ~argv group)
         (Array.to_list (Array.sub argv 2 (Array.length argv - 2))))
  else exit (Cmd.eval group)
