(* Micro-benchmarks for the bit-parallel evaluation engine: scalar
   vs. word-parallel evaluation and cached vs. uncached topological
   ordering, on three seed benchmarks.  Prints a human-readable table and
   writes machine-readable results to BENCH_eval.json (or the path given
   as the last argument) so later PRs can track the perf trajectory:

     dune exec bench/bench_eval.exe            # or: make bench-eval
     dune exec bench/bench_eval.exe -- --smoke # CI-sized, seconds

   The "legacy" rows re-measure the pre-engine eval_comb (a fresh DFS
   topological sort and per-gate fanin array per call) as a fixed baseline
   that survives further optimization of the library itself. *)

(* ----- the seed evaluation path, reproduced verbatim ----- *)

let legacy_topo net =
  let n = Netlist.num_nodes net in
  let state = Array.make n 0 in
  let order = ref [] in
  let rec visit id =
    let nd = Netlist.node net id in
    if not (Netlist.is_comb nd) then ()
    else
      match state.(id) with
      | 2 -> ()
      | 1 -> failwith "cycle"
      | _ ->
        state.(id) <- 1;
        Array.iter visit nd.Netlist.fanins;
        state.(id) <- 2;
        order := id :: !order
  in
  for id = 0 to n - 1 do
    visit id
  done;
  List.rev !order

let legacy_eval net assignment =
  let values = Array.make (Netlist.num_nodes net) false in
  for id = 0 to Netlist.num_nodes net - 1 do
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Input | Netlist.Ff -> values.(id) <- assignment id
    | Netlist.Const b -> values.(id) <- b
    | Netlist.Gate _ | Netlist.Lut _ | Netlist.Dead -> ()
  done;
  List.iter
    (fun id ->
      let n = Netlist.node net id in
      let ins = Array.map (fun f -> values.(f)) n.Netlist.fanins in
      match n.Netlist.kind with
      | Netlist.Gate fn -> values.(id) <- Cell.eval fn ins
      | Netlist.Lut truth ->
        let idx = ref 0 in
        Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) ins;
        values.(id) <- truth.(!idx)
      | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead ->
        assert false)
    (legacy_topo net);
  values

(* ----- measurement ----- *)

let time_reps ?(min_time = 0.3) f =
  (* warm up once, then repeat until [min_time] elapsed *)
  f ();
  Gc.compact ();
  let reps = ref 0 in
  let t0 = Unix.gettimeofday () in
  let elapsed = ref 0.0 in
  while !elapsed < min_time do
    f ();
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  (!reps, !elapsed)

let throughput ?min_time ~patterns_per_call f =
  let reps, elapsed = time_reps ?min_time f in
  float_of_int (reps * patterns_per_call) /. elapsed

let micros ?min_time f =
  let reps, elapsed = time_reps ?min_time f in
  1e6 *. elapsed /. float_of_int reps

(* Interleaved best-of-N windows: single-vCPU CI boxes show wall-clock
   noise of tens of percent, so when two paths are compared head to head
   they are timed in alternating windows and each reports its best one —
   steady-state throughput rather than scheduler luck. *)
let throughput_pair ?(windows = 6) ~reps ~patterns_per_call f g =
  f ();
  g ();
  Gc.compact ();
  let best = [| 0.0; 0.0 |] in
  for _w = 1 to windows do
    List.iteri
      (fun i fn ->
        let t0 = Unix.gettimeofday () in
        for _r = 1 to reps do
          fn ()
        done;
        let dt = Unix.gettimeofday () -. t0 in
        let pps = float_of_int (reps * patterns_per_call) /. dt in
        if pps > best.(i) then best.(i) <- pps)
      [ f; g ]
  done;
  (best.(0), best.(1))

(* words per block on the throughput row — the oracle's default *)
let block_words = 8

type row = {
  r_name : string;
  r_cells : int;
  r_legacy_pps : float;
  r_scalar_pps : float;
  r_word_pps : float;
  r_block_pps : float;
  r_sharded_pps : float;
  r_strash_reduction : float;
  r_topo_uncached_us : float;
  r_topo_cached_us : float;
}

let bench_spec ?min_time spec =
  let net = Benchmarks.load spec in
  let n = Netlist.num_nodes net in
  let rng = Random.State.make [| 0xB17; Hashtbl.hash spec.Benchmarks.bname |] in
  let stim = Array.init n (fun _ -> Random.State.bool rng) in
  let stim_words = Array.init n (fun _ -> Netlist.Engine.random_word rng) in
  let eng = Netlist.Engine.get net in
  let n_srcs = Array.length (Netlist.Engine.sources eng) in
  let block_stim =
    Array.init (n_srcs * block_words) (fun _ -> Netlist.Engine.random_word rng)
  in
  let scratch = Netlist.Engine.create_scratch eng in
  let legacy_pps =
    throughput ?min_time ~patterns_per_call:1 (fun () ->
        ignore (legacy_eval net (Array.get stim)))
  in
  let scalar_pps =
    throughput ?min_time ~patterns_per_call:1 (fun () ->
        ignore (Netlist.eval_comb net (Array.get stim)))
  in
  (* the word row drives the engine the way the library's hot paths do
     (reused scratch, slot-dense result); the id-indexed compat wrapper
     [eval_words] pays an extra allocation + scatter per call *)
  let word_pps =
    throughput ?min_time ~patterns_per_call:Netlist.Engine.word_bits (fun () ->
        ignore (Netlist.Engine.eval_words_into ~scratch eng (Array.get stim_words)))
  in
  (* the multi-word engine path as the oracle drives it (reused scratch,
     sources filled straight into the slot-dense block buffer), measured
     head to head against the sharded plan over the same stimulus *)
  let fill buf = Array.blit block_stim 0 buf 0 (n_srcs * block_words) in
  let pln = Netlist.Engine.plan net in
  let reps =
    match min_time with
    | Some t when t < 0.1 -> Stdlib.max 10 (500 / block_words)
    | _ -> Stdlib.max 20 (2000 / block_words)
  in
  let block_pps, sharded_pps =
    throughput_pair ~reps
      ~patterns_per_call:(block_words * Netlist.Engine.word_bits)
      (fun () ->
        ignore
          (Netlist.Engine.eval_block ~scratch eng ~n_words:block_words ~fill))
      (fun () ->
        Netlist.Engine.eval_block_sharded pln ~n_words:block_words ~fill)
  in
  let strash_reduction = Opt.reduction (snd (Opt.run net)) in
  let topo_uncached_us = micros ?min_time (fun () -> ignore (legacy_topo net)) in
  let topo_cached_us =
    micros ?min_time (fun () -> ignore (Netlist.comb_topo_order net))
  in
  {
    r_name = spec.Benchmarks.bname;
    r_cells = spec.Benchmarks.cells;
    r_legacy_pps = legacy_pps;
    r_scalar_pps = scalar_pps;
    r_word_pps = word_pps;
    r_block_pps = block_pps;
    r_sharded_pps = sharded_pps;
    r_strash_reduction = strash_reduction;
    r_topo_uncached_us = topo_uncached_us;
    r_topo_cached_us = topo_cached_us;
  }

(* ----- equivalence: engine vs. the seed path, all seed benchmarks ----- *)

let check_equivalence specs =
  List.iter
    (fun spec ->
      let net = Benchmarks.load spec in
      let eng = Netlist.Engine.get net in
      let n = Netlist.num_nodes net in
      let rng = Random.State.make [| 0xE9; spec.Benchmarks.config.Generator.seed |] in
      let vectors =
        Array.init Netlist.Engine.word_bits (fun _ ->
            Array.init n (fun _ -> Random.State.bool rng))
      in
      (* word per source id packing vector v into lane v *)
      let words =
        Array.init n (fun id ->
            let w = ref 0 in
            Array.iteri (fun v vec -> if vec.(id) then w := !w lor (1 lsl v)) vectors;
            !w)
      in
      let word_values = Netlist.Engine.eval_words eng (Array.get words) in
      Array.iteri
        (fun v vec ->
          let scalar = Netlist.eval_comb net (Array.get vec) in
          let legacy = legacy_eval net (Array.get vec) in
          for id = 0 to n - 1 do
            if scalar.(id) <> legacy.(id) then
              failwith
                (Printf.sprintf "%s: scalar engine disagrees with seed eval at node %d"
                   spec.Benchmarks.bname id);
            if word_values.(id) land (1 lsl v) <> 0 <> scalar.(id) then
              failwith
                (Printf.sprintf "%s: lane %d disagrees with scalar eval at node %d"
                   spec.Benchmarks.bname v id)
          done)
        vectors;
      Printf.printf "equivalence %-8s OK (%d lanes x %d nodes)\n%!"
        spec.Benchmarks.bname Netlist.Engine.word_bits n)
    specs

(* ----- output ----- *)

let json_of_row r =
  Printf.sprintf
    "    {\"name\": %S, \"cells\": %d, \"legacy_patterns_per_sec\": %.1f, \
     \"scalar_patterns_per_sec\": %.1f, \"word_patterns_per_sec\": %.1f, \
     \"block_patterns_per_sec\": %.1f, \"sharded_patterns_per_sec\": %.1f, \
     \"word_speedup_vs_legacy\": %.2f, \"scalar_speedup_vs_legacy\": %.2f, \
     \"block_speedup_vs_word\": %.2f, \"sharded_speedup_vs_block\": %.2f, \
     \"strash_reduction\": %.4f, \"topo_uncached_us\": %.2f, \
     \"topo_cached_us\": %.2f}"
    r.r_name r.r_cells r.r_legacy_pps r.r_scalar_pps r.r_word_pps
    r.r_block_pps r.r_sharded_pps
    (r.r_word_pps /. r.r_legacy_pps)
    (r.r_scalar_pps /. r.r_legacy_pps)
    (r.r_block_pps /. r.r_word_pps)
    (r.r_sharded_pps /. r.r_block_pps)
    r.r_strash_reduction r.r_topo_uncached_us r.r_topo_cached_us

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out_path =
    let last = Sys.argv.(Array.length Sys.argv - 1) in
    if Array.length Sys.argv > 1 && last <> "--smoke" then last
    else "BENCH_eval.json"
  in
  let min_time = if smoke then 0.05 else 0.3 in
  let names =
    if smoke then [ "s1238"; "s5378" ] else [ "s1238"; "s5378"; "s38417" ]
  in
  let specs = List.filter_map Benchmarks.find_spec names in
  check_equivalence (if smoke then specs else Benchmarks.specs);
  let rows = List.map (bench_spec ~min_time) specs in
  Printf.printf "\n%-8s %6s %13s %13s %13s %13s %13s %8s %7s\n" "bench"
    "cells" "legacy p/s" "scalar p/s" "word p/s" "block p/s" "shard p/s"
    "sh/blk" "strash";
  List.iter
    (fun r ->
      Printf.printf
        "%-8s %6d %13.0f %13.0f %13.0f %13.0f %13.0f %7.2fx %6.1f%%\n"
        r.r_name r.r_cells r.r_legacy_pps r.r_scalar_pps r.r_word_pps
        r.r_block_pps r.r_sharded_pps
        (r.r_sharded_pps /. r.r_block_pps)
        (100. *. r.r_strash_reduction))
    rows;
  (* the block path exists to amortize per-pass overhead; it must not
     lose to the single-word path it generalizes *)
  List.iter
    (fun r ->
      if r.r_block_pps < r.r_word_pps then
        failwith
          (Printf.sprintf
             "%s: block path regressed below single-word path (%.2fx)"
             r.r_name
             (r.r_block_pps /. r.r_word_pps)))
    rows;
  (* the sharded plan's fused kernels exist to beat the multi-pass block
     interpreter; on the largest circuit in a full run they must win by
     at least 2x (the tentpole claim committed in BENCH_eval.json) *)
  (match List.rev rows with
  | largest :: _ when not smoke ->
    if largest.r_sharded_pps < 2.0 *. largest.r_block_pps then
      failwith
        (Printf.sprintf
           "%s: sharded plan only %.2fx over the block path (need >= 2x)"
           largest.r_name
           (largest.r_sharded_pps /. largest.r_block_pps))
  | _ -> ());
  let doc =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"gklock/bench_eval/v1\",\n\
      \  \"smoke\": %b,\n\
      \  \"word_bits\": %d,\n\
      \  \"block_words\": %d,\n\
      \  \"benchmarks\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      smoke Netlist.Engine.word_bits block_words
      (String.concat ",\n" (List.map json_of_row rows))
  in
  (* round-trip the hand-rolled printer through the repo's JSON parser *)
  (match Cjson.of_string doc with
  | Ok (Cjson.Obj _) -> ()
  | Ok _ -> failwith (out_path ^ ": emitted JSON is not an object")
  | Error e -> failwith (out_path ^ ": emitted invalid JSON: " ^ e));
  let oc = open_out out_path in
  output_string oc doc;
  close_out oc;
  Printf.printf "\nwrote %s\n" out_path
