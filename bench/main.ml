(* Regenerates every table and figure of the paper, the ablations of
   DESIGN.md, and finishes with bechamel micro-benchmarks of the core
   machinery.  `dune exec bench/main.exe` prints everything; pass
   `--quick` to skip the two slowest sections (full Table II and the
   attack comparison). *)

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let tables () =
  section "Table I — available flip-flops for GK encryption";
  print_string (Report.table1 (Experiments.table1 ()));
  section "Table II — cell/area overhead of GK encryption";
  if quick then
    print_string
      (Report.table2 [ Experiments.table2_row (List.nth Benchmarks.specs 1) ])
  else print_string (Report.table2 (Experiments.table2 ()));
  section "SAT attack on GK-encrypted benchmarks (Sec. VI)";
  print_string (Report.sat_attack (Experiments.sat_attack_table ()));
  if not quick then begin
    section "Attack comparison across schemes (Secs. I & V)";
    print_string (Report.comparison (Experiments.attack_comparison ()))
  end

let figures () =
  section "Figure reproductions";
  print_string (Experiments.fig4 ());
  print_newline ();
  print_string (Experiments.fig6 ());
  print_newline ();
  print_string (Experiments.fig7 ());
  print_newline ();
  print_string (Experiments.fig9 ())

let scan_section () =
  section "Scan attack (Sec. VI BIST discussion)";
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, _ = Insertion.strip_keygens d in
  let stripped_comb, _ = Combinationalize.run stripped in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist ~partial:true oracle_comb in
  let verdicts = Scan_attack.run ~stripped_comb ~oracle () in
  let show tag vs decrypted =
    Printf.printf "%-28s located=%d decided=%d decrypted=%s\n" tag
      (List.length vs)
      (List.length
         (List.filter (fun v -> v.Scan_attack.v_behaviour <> `Unknown) vs))
      decrypted
  in
  show "GK-only (tiny, 2 GKs)" verdicts
    (match Scan_attack.decrypt ~stripped_comb verdicts with
    | Some _ -> "yes (no SAT needed)"
    | None -> "no");
  let spec = List.nth Benchmarks.specs 1 in
  let big = Benchmarks.load spec in
  let bclock = Sta.clock_for big ~margin:spec.Benchmarks.clk_margin in
  let h = Hybrid.lock ~seed:4 big ~clock_ps:bclock ~n_gks:4 ~n_xors:8 in
  let hstripped, _ = Insertion.strip_keygens h.Hybrid.design in
  let hcomb, _ = Combinationalize.run hstripped in
  let horacle_comb, _ = Combinationalize.run big in
  let horacle = Sat_attack.oracle_of_netlist ~partial:true horacle_comb in
  let hv =
    Scan_attack.run ~unknown:h.Hybrid.xor_key_inputs ~stripped_comb:hcomb
      ~oracle:horacle ()
  in
  show "hybrid 4GK+8XOR (s5378)" hv
    (match Scan_attack.decrypt ~stripped_comb:hcomb hv with
    | Some _ -> "yes"
    | None -> "NO (verdicts blinded)")

let extended_attacks () =
  section "Extended attack zoo (no-scan sequential SAT, AppSAT, sensitization)";
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, gk_keys = Insertion.strip_keygens d in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist oracle_comb in
  (* sequential SAT (unrolled, no scan access) *)
  let xor_seq = Xor_lock.lock ~seed:2 net ~n_keys:5 in
  let sxor =
    Seq_attack.run ~k:4 ~locked:xor_seq.Locked.net
      ~key_inputs:xor_seq.Locked.key_inputs
      ~oracle_step:(Seq_attack.oracle_of_netlist net) ()
  in
  let sgk =
    Seq_attack.run ~k:4 ~locked:stripped ~key_inputs:gk_keys
      ~oracle_step:(Seq_attack.oracle_of_netlist net) ()
  in
  let status o =
    match o.Seq_attack.sat.Sat_attack.status with
    | Sat_attack.Key_recovered _ ->
      Printf.sprintf "key recovered in %d DIPs" o.Seq_attack.sat.Sat_attack.iterations
    | Sat_attack.Unsat_at_first_iteration _ -> "UNSAT at first DIP"
    | Sat_attack.Budget_exhausted -> "budget exhausted"
  in
  Printf.printf "%-44s %s\n" "seq-SAT (k=4, no scan) on XOR locking:" (status sxor);
  Printf.printf "%-44s %s\n" "seq-SAT (k=4, no scan) on GK locking:" (status sgk);
  (* AppSAT vs a SARLock + XOR compound *)
  let cmp =
    Generator.generate
      { Generator.gen_name = "bx"; seed = 22; n_pi = 12; n_po = 5; n_ff = 0;
        n_gates = 40; depth = 5; ff_depth_bias = 0.0 }
  in
  let sar = Sarlock.lock ~seed:23 cmp ~n_keys:8 in
  let compound = Xor_lock.lock ~seed:22 sar.Locked.net ~n_keys:6 in
  let keys = sar.Locked.key_inputs @ compound.Locked.key_inputs in
  let coracle = Sat_attack.oracle_of_netlist cmp in
  let a = Appsat.run ~locked:compound.Locked.net ~key_inputs:keys ~oracle:coracle () in
  let p =
    Sat_attack.run ~max_iterations:400 ~locked:compound.Locked.net
      ~key_inputs:keys ~oracle:coracle ()
  in
  Printf.printf
    "%-44s %d DIPs + %d queries (error %.3f)\n"
    "AppSAT on SARLock(8)+XOR(6) compound:" a.Appsat.dips a.Appsat.random_queries
    a.Appsat.error_rate;
  Printf.printf "%-44s %d DIPs\n" "exact SAT on the same compound:"
    p.Sat_attack.iterations;
  (* sensitization *)
  let scomb, _ = Combinationalize.run stripped in
  let sens_gk =
    Sensitization.run ~locked:scomb ~key_inputs:gk_keys ~oracle ()
  in
  Printf.printf "%-44s %d recovered / %d unresolved\n"
    "sensitization on GK locking:"
    (List.length sens_gk.Sensitization.recovered)
    (List.length sens_gk.Sensitization.unresolved)

let corruptibility_ber () =
  section "Wrong-key corruptibility (bit-error rate, stable logic)";
  let net =
    Generator.generate
      { Generator.gen_name = "ber"; seed = 22; n_pi = 12; n_po = 8; n_ff = 0;
        n_gates = 60; depth = 6; ff_depth_bias = 0.0 }
  in
  let show label lk =
    let p = Metrics.wrong_key_profile ~reference:net lk in
    Format.printf "%-28s %a@." label Metrics.pp_profile p
  in
  show "XOR/XNOR (8 keys)" (Xor_lock.lock ~seed:3 net ~n_keys:8);
  show "fault-guided XOR (8 keys)" (Fault_lock.lock ~seed:3 ~samples:32 net ~n_keys:8);
  show "MUX (8 keys)" (Mux_lock.lock ~seed:3 net ~n_keys:8);
  show "SARLock (8 keys)" (Sarlock.lock ~seed:3 net ~n_keys:8);
  show "Anti-SAT (2x8 keys)" (Antisat.lock ~seed:3 net ~n:8);
  print_endline
    "(SARLock/Anti-SAT corrupt a vanishing fraction of outputs — the low\n\
     corruptibility the paper's Sec. I criticises; GK corruptibility is\n\
     timing-borne, see the timing-true table below)"

let ablations () =
  section "Ablation A1 — glitch length vs available sites";
  print_string (Report.ablation_glitch (Experiments.ablation_glitch_length ()));
  section "Ablation A2 — delay-element composition";
  print_string (Report.ablation_profile (Experiments.ablation_delay_profile ()));
  section "Corruptibility of wrong keys (timing-true simulation)";
  print_string (Report.corruptibility (Experiments.corruptibility ()))

(* ----- bechamel micro-benchmarks ----- *)

let micro () =
  section "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let open Toolkit in
  let spec = List.nth Benchmarks.specs 1 (* s5378 *) in
  let net = Benchmarks.load spec in
  let clock = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
  let comb, _ = Combinationalize.run net in
  let locked = Xor_lock.lock ~seed:1 comb ~n_keys:16 in
  let oracle = Sat_attack.oracle_of_netlist comb in
  let design = Insertion.lock ~seed:1 net ~clock_ps:clock ~n_gks:4 in
  let cfg_sim = { Timing_sim.clock_ps = clock; cycles = 4 } in
  let drive = Stimuli.edge_aligned ~seed:2 net ~clock_ps:clock ~cycles:4 in
  let tests =
    Test.make_grouped ~name:"gklock" ~fmt:"%s %s"
      [
        Test.make ~name:"generate-s5378"
          (Staged.stage (fun () -> ignore (Benchmarks.load spec)));
        Test.make ~name:"sta-s5378"
          (Staged.stage (fun () -> ignore (Sta.analyze net ~clock_ps:clock)));
        Test.make ~name:"timing-sim-4cy-s5378"
          (Staged.stage (fun () -> ignore (Timing_sim.run ~drive net cfg_sim)));
        Test.make ~name:"lock-4gk-s5378"
          (Staged.stage (fun () ->
               ignore (Insertion.lock ~seed:1 net ~clock_ps:clock ~n_gks:4)));
        Test.make ~name:"sat-attack-xor16-s5378"
          (Staged.stage (fun () ->
               ignore
                 (Sat_attack.run ~locked:locked.Locked.net
                    ~key_inputs:locked.Locked.key_inputs ~oracle ())));
        Test.make ~name:"strip-keygens"
          (Staged.stage (fun () -> ignore (Insertion.strip_keygens design)));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure per_test ->
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_test [] in
      List.iter
        (fun (name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Printf.printf "%-40s %12.1f ns/run (%s)\n" name est measure
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
        (List.sort compare rows))
    merged

let () =
  tables ();
  figures ();
  scan_section ();
  extended_attacks ();
  corruptibility_ber ();
  ablations ();
  micro ();
  print_newline ();
  print_endline "bench: all sections completed"
