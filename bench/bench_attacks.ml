(* Attack-framework benchmarks: oracle query throughput (batched
   63-lane engine path vs. scalar engine path vs. the pre-framework
   assoc-list oracle, plus both remote paths through an in-process
   gklockd over a loopback unix socket) and per-attack wall time for
   every registry entry on two benchmarks.  Prints human-readable tables
   and writes machine-readable results to BENCH_attacks.json (or the
   path given as the last argument):

     dune exec bench/bench_attacks.exe              # or: make bench-attacks
     dune exec bench/bench_attacks.exe -- --smoke   # CI-sized, seconds

   All five oracle paths are equivalence-checked on the same query set
   before being timed, and the run fails unless the batched path beats
   the assoc-list baseline by at least 10x. *)

(* ----- the pre-framework oracle, reproduced as a fixed baseline -----

   One scalar evaluation per query on the seed evaluation path (a fresh
   DFS topological sort and per-gate fanin array per call — see
   bench_eval.ml), with every source resolved by an assoc-list lookup on
   the query (unmentioned sources read false) — exactly the closure the
   attacks module used to build before the instrumented [Oracle.t]. *)

let legacy_topo net =
  let n = Netlist.num_nodes net in
  let state = Array.make n 0 in
  let order = ref [] in
  let rec visit id =
    let nd = Netlist.node net id in
    if not (Netlist.is_comb nd) then ()
    else
      match state.(id) with
      | 2 -> ()
      | 1 -> failwith "cycle"
      | _ ->
        state.(id) <- 1;
        Array.iter visit nd.Netlist.fanins;
        state.(id) <- 2;
        order := id :: !order
  in
  for id = 0 to n - 1 do
    visit id
  done;
  List.rev !order

let assoc_query net q =
  let values = Array.make (Netlist.num_nodes net) false in
  for id = 0 to Netlist.num_nodes net - 1 do
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Input | Netlist.Ff ->
      values.(id) <-
        (match List.assoc_opt (Netlist.node net id).Netlist.name q with
        | Some v -> v
        | None -> false)
    | Netlist.Const b -> values.(id) <- b
    | Netlist.Gate _ | Netlist.Lut _ | Netlist.Dead -> ()
  done;
  List.iter
    (fun id ->
      let n = Netlist.node net id in
      let ins = Array.map (fun f -> values.(f)) n.Netlist.fanins in
      match n.Netlist.kind with
      | Netlist.Gate fn -> values.(id) <- Cell.eval fn ins
      | Netlist.Lut truth ->
        let idx = ref 0 in
        Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) ins;
        values.(id) <- truth.(!idx)
      | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead ->
        assert false)
    (legacy_topo net);
  List.map (fun (po, d) -> (po, values.(d))) (Netlist.outputs net)

(* ----- measurement ----- *)

(* Answering 1008 queries on a 1.7k-output circuit materializes tens of
   megabytes of response lists per call, whichever oracle path builds
   them.  Left at the default 256k-word nursery, every call devolves
   into promotion work and major-GC slices whose timing swamps the
   engine difference being measured, so the bench (a) sizes the nursery
   to the workload once at startup and (b) reports the median rep, which
   a stray major slice cannot drag around. *)
let () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 23 }

let median_rep_s ?(min_reps = 1) ~min_time f =
  f ();
  (* warm-up *)
  let samples = ref [] in
  let reps = ref 0 in
  let t0 = Unix.gettimeofday () in
  let elapsed = ref 0.0 in
  while !elapsed < min_time || !reps < min_reps do
    (* each rep starts from an identical heap: nursery empty, major heap
       holding live data only.  The previous rep's garbage is collected
       off the clock, instead of as a pseudo-random major slice landing
       inside whichever rep the pacing happens to pick *)
    Gc.compact ();
    let t1 = Unix.gettimeofday () in
    f ();
    incr reps;
    let t2 = Unix.gettimeofday () in
    samples := (t2 -. t1) :: !samples;
    elapsed := t2 -. t0
  done;
  let sorted = List.sort compare !samples in
  List.nth sorted (List.length sorted / 2)

(* The remote columns cross the OS scheduler twice per query (client
   blocks, server thread wakes, and back).  On a contended or single-CPU
   host the handoff is bimodal — a rep either gets fast wakeups
   throughout or eats scheduling delay on most round trips — and the
   median tracks whichever mode the run happened to land in, which made
   the perf gate flap.  Scheduling can only ever ADD time, so the
   fastest rep is the measurement; same reasoning as the interleaved
   best-of windows in bench_eval. *)
let best_rep_s ?(min_reps = 1) ~min_time f =
  f ();
  (* warm-up *)
  let best = ref Float.infinity in
  let reps = ref 0 in
  let t0 = Unix.gettimeofday () in
  let elapsed = ref 0.0 in
  while !elapsed < min_time || !reps < min_reps do
    Gc.compact ();
    let t1 = Unix.gettimeofday () in
    f ();
    incr reps;
    let t2 = Unix.gettimeofday () in
    if t2 -. t1 < !best then best := t2 -. t1;
    elapsed := t2 -. t0
  done;
  !best

type oracle_row = {
  o_bench : string;
  o_cells : int;
  o_queries : int;
  o_assoc_qps : float;
  o_scalar_qps : float;
  o_batch_qps : float;
  o_remote_scalar_qps : float;  (* one Query frame round trip per query *)
  o_remote_batch_qps : float;  (* whole query set in one Query_batch frame *)
}

let bench_oracle ~min_time ~n_queries net name cells =
  let comb, _ = Combinationalize.run net in
  (* memoization off: every timed query is a real evaluation *)
  let oracle = Oracle.of_netlist ~memo:false comb in
  let names = Oracle.input_names oracle in
  let rng = Random.State.make [| 0xA77; Hashtbl.hash name |] in
  let dips =
    List.init n_queries (fun _ ->
        List.map (fun n -> (n, Random.State.bool rng)) names)
  in
  (* equivalence first: all three paths must agree on every query *)
  let batch_results = Oracle.query_batch oracle dips in
  List.iter2
    (fun dip batched ->
      if assoc_query comb dip <> batched then
        failwith (name ^ ": batched oracle disagrees with assoc-list eval");
      if Oracle.query oracle dip <> batched then
        failwith (name ^ ": batched oracle disagrees with scalar query"))
    dips batch_results;
  (* the same query set through an in-process gklockd over a loopback
     unix socket: memoization off on both ends so every timed query
     crosses the wire and really evaluates.  flush_lanes = 1 because a
     single serial client never has lane-mates to coalesce with — with
     the default word-sized flush the scalar column would time the
     coalescing delay, not the round trip *)
  let sock = Filename.temp_file "gklockd_bench" ".sock" in
  Sys.remove sock;
  let server =
    Gkd_server.create
      ~config:
        {
          Gkd_server.default_config with
          Gkd_server.oracle_memo = false;
          flush_lanes = 1;
        }
      ~listen:(Frame_io.Unix_path sock)
      [ (name, comb) ]
  in
  Gkd_server.start server;
  let remote_handle =
    Remote_oracle.connect ~client:"bench" ~memo:false
      (Frame_io.Unix_path sock)
  in
  let remote = Remote_oracle.oracle remote_handle in
  List.iter2
    (fun dip batched ->
      if Oracle.query remote dip <> batched then
        failwith (name ^ ": remote oracle disagrees with batched eval"))
    dips batch_results;
  if Oracle.query_batch remote dips <> batch_results then
    failwith (name ^ ": remote batched oracle disagrees with batched eval");
  Printf.printf "equivalence %-8s OK (%d queries x 5 paths)\n%!" name
    n_queries;
  (* on large circuits one engine-path call takes about as long as a
     major-GC slice, so a single rep is a coin flip on whether it pays
     one; take the median of at least [min_reps] calls.  The assoc
     baseline is orders of magnitude slower per call, so one rep already
     averages its GC noise away *)
  let qps ?min_reps f =
    float_of_int n_queries /. median_rep_s ?min_reps ~min_time f
  in
  let min_reps = 7 in
  let row =
    {
      o_bench = name;
      o_cells = cells;
      o_queries = n_queries;
    (* all three paths are timed producing the full response set
       ([List.map], not [List.iter]+[ignore]): [query_batch] necessarily
       keeps every response live until it returns, so a scalar loop that
       dropped each response as it went would be measured doing strictly
       less retention work than the batch it is compared against *)
      o_assoc_qps =
        qps (fun () -> ignore (List.map (fun d -> assoc_query comb d) dips));
      o_scalar_qps =
        qps ~min_reps (fun () ->
            ignore (List.map (fun d -> Oracle.query oracle d) dips));
      o_batch_qps =
        qps ~min_reps (fun () -> ignore (Oracle.query_batch oracle dips));
      o_remote_scalar_qps =
        (let s =
           best_rep_s ~min_reps ~min_time (fun () ->
               ignore (List.map (fun d -> Oracle.query remote d) dips))
         in
         float_of_int n_queries /. s);
      o_remote_batch_qps =
        (let s =
           best_rep_s ~min_reps ~min_time (fun () ->
               ignore (Oracle.query_batch remote dips))
         in
         float_of_int n_queries /. s);
    }
  in
  Remote_oracle.close remote_handle;
  Gkd_server.stop server;
  if Sys.file_exists sock then Sys.remove sock;
  row

(* ----- per-attack wall time ----- *)

type attack_row = {
  a_bench : string;
  a_attack : string;
  a_verdict : string;
  a_iterations : int;
  a_queries : int;
  a_conflicts : int;
  a_elapsed_s : float;
  a_gave_up_reason : string option;
}

let bench_attacks ~max_iterations ~deadline_s net name =
  let comb, _ = Combinationalize.run net in
  let lk = Xor_lock.lock ~seed:42 comb ~n_keys:6 in
  List.map
    (fun attack ->
      let o =
        Attack.run
          ~budget:(Budget.create ~max_iterations ~deadline_s ())
          ~seed:42 ~name:attack ~locked:lk.Locked.net
          ~key_inputs:lk.Locked.key_inputs
          (* fresh oracle per attack: the memo must not let one attack's
             queries answer the next one's for free *)
          ~oracle:(Oracle.of_netlist comb)
          ()
      in
      {
        a_bench = name;
        a_attack = attack;
        a_verdict = Attack.verdict_name o.Attack.verdict;
        a_iterations = o.Attack.iterations;
        a_queries = o.Attack.queries;
        a_conflicts = o.Attack.conflicts;
        a_elapsed_s = o.Attack.elapsed_s;
        a_gave_up_reason = Attack.gave_up_reason_of_verdict o.Attack.verdict;
      })
    (Attack.names ())

(* ----- output ----- *)

let json_of_oracle r =
  Printf.sprintf
    "    {\"name\": %S, \"cells\": %d, \"queries\": %d, \
     \"assoc_queries_per_sec\": %.1f, \"scalar_queries_per_sec\": %.1f, \
     \"batch_queries_per_sec\": %.1f, \"remote_scalar_queries_per_sec\": \
     %.1f, \"remote_batch_queries_per_sec\": %.1f, \
     \"batch_speedup_vs_assoc\": %.2f, \"batch_speedup_vs_scalar\": %.2f, \
     \"remote_batch_speedup_vs_remote_scalar\": %.2f}"
    r.o_bench r.o_cells r.o_queries r.o_assoc_qps r.o_scalar_qps r.o_batch_qps
    r.o_remote_scalar_qps r.o_remote_batch_qps
    (r.o_batch_qps /. r.o_assoc_qps)
    (r.o_batch_qps /. r.o_scalar_qps)
    (r.o_remote_batch_qps /. r.o_remote_scalar_qps)

let json_of_attack r =
  (* %.6f matches the elapsed clamp in [Attack.run]: a bail-before-first-
     iteration run records 1e-6 s, which %.4f used to flatten to 0.0000 —
     indistinguishable from a missing measurement. *)
  Printf.sprintf
    "    {\"bench\": %S, \"attack\": %S, \"verdict\": %S, \
     \"gave_up_reason\": %s, \"iterations\": %d, \"queries\": %d, \
     \"conflicts\": %d, \"elapsed_s\": %.6f}"
    r.a_bench r.a_attack r.a_verdict
    (match r.a_gave_up_reason with
    | Some s -> Printf.sprintf "%S" s
    | None -> "null")
    r.a_iterations r.a_queries r.a_conflicts r.a_elapsed_s

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out_path =
    let last = Sys.argv.(Array.length Sys.argv - 1) in
    if Array.length Sys.argv > 1 && last <> "--smoke" then last
    else "BENCH_attacks.json"
  in
  let min_time = if smoke then 0.05 else 0.3 in
  let n_queries = Netlist.Engine.word_bits * if smoke then 2 else 16 in
  (* throughput needs circuits large enough that evaluation, not
     per-query bookkeeping, is the cost being amortized; the lists run
     smallest to largest so the final row is the stress case *)
  let oracle_benches =
    List.filter_map
      (fun n ->
        Option.map (fun s -> (n, Benchmarks.load s)) (Benchmarks.find_spec n))
      (if smoke then [ "s1238"; "s5378" ]
       else [ "s1238"; "s5378"; "s38417" ])
  in
  let oracle_rows =
    List.map
      (fun (n, net) ->
        bench_oracle ~min_time ~n_queries net n (Netlist.num_nodes net))
      oracle_benches
  in
  Printf.printf "\n%-8s %6s %12s %12s %12s %12s %12s %9s %9s\n" "bench"
    "cells" "assoc q/s" "scalar q/s" "batch q/s" "rmt-sc q/s" "rmt-bat q/s"
    "vs-assoc" "vs-scalar";
  List.iter
    (fun r ->
      Printf.printf "%-8s %6d %12.0f %12.0f %12.0f %12.0f %12.0f %8.1fx %8.1fx\n"
        r.o_bench r.o_cells r.o_assoc_qps r.o_scalar_qps r.o_batch_qps
        r.o_remote_scalar_qps r.o_remote_batch_qps
        (r.o_batch_qps /. r.o_assoc_qps)
        (r.o_batch_qps /. r.o_scalar_qps))
    oracle_rows;
  List.iter
    (fun r ->
      if r.o_batch_qps < 10.0 *. r.o_assoc_qps then
        failwith
          (Printf.sprintf
             "%s: batched oracle only %.1fx over the assoc-list baseline \
              (need >= 10x)"
             r.o_bench
             (r.o_batch_qps /. r.o_assoc_qps)))
    oracle_rows;
  (* the regression this file exists to catch: on the largest circuit in
     the run, the batched path must not lose to per-query scalar eval *)
  (match List.rev oracle_rows with
  | largest :: _ ->
    if largest.o_batch_qps < largest.o_scalar_qps then
      failwith
        (Printf.sprintf
           "%s: batched oracle regressed below scalar (%.2fx, need >= 1.0x)"
           largest.o_bench
           (largest.o_batch_qps /. largest.o_scalar_qps));
    (* one frame per word must beat one frame per query *)
    if largest.o_remote_batch_qps < largest.o_remote_scalar_qps then
      failwith
        (Printf.sprintf
           "%s: remote batched path regressed below remote scalar (%.2fx)"
           largest.o_bench
           (largest.o_remote_batch_qps /. largest.o_remote_scalar_qps))
  | [] -> ());
  let max_iterations = if smoke then 64 else 256 in
  let deadline_s = if smoke then 5.0 else 30.0 in
  let attack_rows =
    List.concat_map
      (fun (n, net) -> bench_attacks ~max_iterations ~deadline_s net n)
      [ ("tiny", Benchmarks.tiny ()); ("s27", Benchmarks.s27 ()) ]
  in
  Printf.printf "\n%-6s %-17s %-22s %6s %8s %9s %9s\n" "bench" "attack"
    "verdict" "iters" "queries" "conflicts" "time s";
  List.iter
    (fun r ->
      let verdict =
        match r.a_gave_up_reason with
        | Some reason -> r.a_verdict ^ "(" ^ reason ^ ")"
        | None -> r.a_verdict
      in
      Printf.printf "%-6s %-17s %-22s %6d %8d %9d %9.3f\n" r.a_bench
        r.a_attack verdict r.a_iterations r.a_queries r.a_conflicts
        r.a_elapsed_s)
    attack_rows;
  let doc =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"gklock/bench_attacks/v2\",\n\
      \  \"smoke\": %b,\n\
      \  \"word_bits\": %d,\n\
      \  \"oracle\": [\n\
       %s\n\
      \  ],\n\
      \  \"attacks\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      smoke Netlist.Engine.word_bits
      (String.concat ",\n" (List.map json_of_oracle oracle_rows))
      (String.concat ",\n" (List.map json_of_attack attack_rows))
  in
  (* the hand-rolled printer above is only trusted after a round-trip
     through the repo's own JSON parser *)
  (match Cjson.of_string doc with
  | Ok (Cjson.Obj _) -> ()
  | Ok _ -> failwith (out_path ^ ": emitted JSON is not an object")
  | Error e -> failwith (out_path ^ ": emitted invalid JSON: " ^ e));
  let oc = open_out out_path in
  output_string oc doc;
  close_out oc;
  Printf.printf "\nwrote %s\n" out_path
