(* Attack-framework benchmarks: oracle query throughput (batched
   63-lane engine path vs. scalar engine path vs. the pre-framework
   assoc-list oracle) plus per-attack wall time for every registry entry
   on two benchmarks.  Prints human-readable tables and writes
   machine-readable results to BENCH_attacks.json (or the path given as
   the last argument):

     dune exec bench/bench_attacks.exe              # or: make bench-attacks
     dune exec bench/bench_attacks.exe -- --smoke   # CI-sized, seconds

   All three oracle paths are equivalence-checked on the same query set
   before being timed, and the run fails unless the batched path beats
   the assoc-list baseline by at least 10x. *)

(* ----- the pre-framework oracle, reproduced as a fixed baseline -----

   One scalar evaluation per query on the seed evaluation path (a fresh
   DFS topological sort and per-gate fanin array per call — see
   bench_eval.ml), with every source resolved by an assoc-list lookup on
   the query (unmentioned sources read false) — exactly the closure the
   attacks module used to build before the instrumented [Oracle.t]. *)

let legacy_topo net =
  let n = Netlist.num_nodes net in
  let state = Array.make n 0 in
  let order = ref [] in
  let rec visit id =
    let nd = Netlist.node net id in
    if not (Netlist.is_comb nd) then ()
    else
      match state.(id) with
      | 2 -> ()
      | 1 -> failwith "cycle"
      | _ ->
        state.(id) <- 1;
        Array.iter visit nd.Netlist.fanins;
        state.(id) <- 2;
        order := id :: !order
  in
  for id = 0 to n - 1 do
    visit id
  done;
  List.rev !order

let assoc_query net q =
  let values = Array.make (Netlist.num_nodes net) false in
  for id = 0 to Netlist.num_nodes net - 1 do
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Input | Netlist.Ff ->
      values.(id) <-
        (match List.assoc_opt (Netlist.node net id).Netlist.name q with
        | Some v -> v
        | None -> false)
    | Netlist.Const b -> values.(id) <- b
    | Netlist.Gate _ | Netlist.Lut _ | Netlist.Dead -> ()
  done;
  List.iter
    (fun id ->
      let n = Netlist.node net id in
      let ins = Array.map (fun f -> values.(f)) n.Netlist.fanins in
      match n.Netlist.kind with
      | Netlist.Gate fn -> values.(id) <- Cell.eval fn ins
      | Netlist.Lut truth ->
        let idx = ref 0 in
        Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) ins;
        values.(id) <- truth.(!idx)
      | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead ->
        assert false)
    (legacy_topo net);
  List.map (fun (po, d) -> (po, values.(d))) (Netlist.outputs net)

(* ----- measurement ----- *)

let time_reps ~min_time f =
  f ();
  (* warm-up *)
  let reps = ref 0 in
  let t0 = Unix.gettimeofday () in
  let elapsed = ref 0.0 in
  while !elapsed < min_time do
    f ();
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  (!reps, !elapsed)

type oracle_row = {
  o_bench : string;
  o_cells : int;
  o_queries : int;
  o_assoc_qps : float;
  o_scalar_qps : float;
  o_batch_qps : float;
}

let bench_oracle ~min_time ~n_queries net name cells =
  let comb, _ = Combinationalize.run net in
  (* memoization off: every timed query is a real evaluation *)
  let oracle = Oracle.of_netlist ~memo:false comb in
  let names = Oracle.input_names oracle in
  let rng = Random.State.make [| 0xA77; Hashtbl.hash name |] in
  let dips =
    List.init n_queries (fun _ ->
        List.map (fun n -> (n, Random.State.bool rng)) names)
  in
  (* equivalence first: all three paths must agree on every query *)
  let batch_results = Oracle.query_batch oracle dips in
  List.iter2
    (fun dip batched ->
      if assoc_query comb dip <> batched then
        failwith (name ^ ": batched oracle disagrees with assoc-list eval");
      if Oracle.query oracle dip <> batched then
        failwith (name ^ ": batched oracle disagrees with scalar query"))
    dips batch_results;
  Printf.printf "equivalence %-8s OK (%d queries x 3 paths)\n%!" name
    n_queries;
  let qps f =
    let reps, elapsed = time_reps ~min_time f in
    float_of_int (reps * n_queries) /. elapsed
  in
  {
    o_bench = name;
    o_cells = cells;
    o_queries = n_queries;
    o_assoc_qps =
      qps (fun () -> List.iter (fun d -> ignore (assoc_query comb d)) dips);
    o_scalar_qps =
      qps (fun () -> List.iter (fun d -> ignore (Oracle.query oracle d)) dips);
    o_batch_qps = qps (fun () -> ignore (Oracle.query_batch oracle dips));
  }

(* ----- per-attack wall time ----- *)

type attack_row = {
  a_bench : string;
  a_attack : string;
  a_verdict : string;
  a_iterations : int;
  a_queries : int;
  a_conflicts : int;
  a_elapsed_s : float;
}

let bench_attacks ~max_iterations ~deadline_s net name =
  let comb, _ = Combinationalize.run net in
  let lk = Xor_lock.lock ~seed:42 comb ~n_keys:6 in
  List.map
    (fun attack ->
      let o =
        Attack.run
          ~budget:(Budget.create ~max_iterations ~deadline_s ())
          ~seed:42 ~name:attack ~locked:lk.Locked.net
          ~key_inputs:lk.Locked.key_inputs
          (* fresh oracle per attack: the memo must not let one attack's
             queries answer the next one's for free *)
          ~oracle:(Oracle.of_netlist comb)
          ()
      in
      {
        a_bench = name;
        a_attack = attack;
        a_verdict = Attack.verdict_name o.Attack.verdict;
        a_iterations = o.Attack.iterations;
        a_queries = o.Attack.queries;
        a_conflicts = o.Attack.conflicts;
        a_elapsed_s = o.Attack.elapsed_s;
      })
    (Attack.names ())

(* ----- output ----- *)

let json_of_oracle r =
  Printf.sprintf
    "    {\"name\": %S, \"cells\": %d, \"queries\": %d, \
     \"assoc_queries_per_sec\": %.1f, \"scalar_queries_per_sec\": %.1f, \
     \"batch_queries_per_sec\": %.1f, \"batch_speedup_vs_assoc\": %.2f, \
     \"batch_speedup_vs_scalar\": %.2f}"
    r.o_bench r.o_cells r.o_queries r.o_assoc_qps r.o_scalar_qps r.o_batch_qps
    (r.o_batch_qps /. r.o_assoc_qps)
    (r.o_batch_qps /. r.o_scalar_qps)

let json_of_attack r =
  Printf.sprintf
    "    {\"bench\": %S, \"attack\": %S, \"verdict\": %S, \"iterations\": \
     %d, \"queries\": %d, \"conflicts\": %d, \"elapsed_s\": %.4f}"
    r.a_bench r.a_attack r.a_verdict r.a_iterations r.a_queries r.a_conflicts
    r.a_elapsed_s

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out_path =
    let last = Sys.argv.(Array.length Sys.argv - 1) in
    if Array.length Sys.argv > 1 && last <> "--smoke" then last
    else "BENCH_attacks.json"
  in
  let min_time = if smoke then 0.05 else 0.3 in
  let n_queries = Netlist.Engine.word_bits * if smoke then 2 else 16 in
  (* throughput needs circuits large enough that evaluation, not
     per-query bookkeeping, is the cost being amortized *)
  let oracle_benches =
    List.filter_map
      (fun n ->
        Option.map (fun s -> (n, Benchmarks.load s)) (Benchmarks.find_spec n))
      (if smoke then [ "s1238" ] else [ "s1238"; "s5378"; "s38417" ])
  in
  let oracle_rows =
    List.map
      (fun (n, net) ->
        bench_oracle ~min_time ~n_queries net n (Netlist.num_nodes net))
      oracle_benches
  in
  Printf.printf "\n%-8s %6s %12s %12s %12s %9s %9s\n" "bench" "cells"
    "assoc q/s" "scalar q/s" "batch q/s" "vs-assoc" "vs-scalar";
  List.iter
    (fun r ->
      Printf.printf "%-8s %6d %12.0f %12.0f %12.0f %8.1fx %8.1fx\n" r.o_bench
        r.o_cells r.o_assoc_qps r.o_scalar_qps r.o_batch_qps
        (r.o_batch_qps /. r.o_assoc_qps)
        (r.o_batch_qps /. r.o_scalar_qps))
    oracle_rows;
  List.iter
    (fun r ->
      if r.o_batch_qps < 10.0 *. r.o_assoc_qps then
        failwith
          (Printf.sprintf
             "%s: batched oracle only %.1fx over the assoc-list baseline \
              (need >= 10x)"
             r.o_bench
             (r.o_batch_qps /. r.o_assoc_qps)))
    oracle_rows;
  let max_iterations = if smoke then 64 else 256 in
  let deadline_s = if smoke then 5.0 else 30.0 in
  let attack_rows =
    List.concat_map
      (fun (n, net) -> bench_attacks ~max_iterations ~deadline_s net n)
      [ ("tiny", Benchmarks.tiny ()); ("s27", Benchmarks.s27 ()) ]
  in
  Printf.printf "\n%-6s %-17s %-22s %6s %8s %9s %9s\n" "bench" "attack"
    "verdict" "iters" "queries" "conflicts" "time s";
  List.iter
    (fun r ->
      Printf.printf "%-6s %-17s %-22s %6d %8d %9d %9.3f\n" r.a_bench
        r.a_attack r.a_verdict r.a_iterations r.a_queries r.a_conflicts
        r.a_elapsed_s)
    attack_rows;
  let oc = open_out out_path in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"gklock/bench_attacks/v1\",\n\
    \  \"smoke\": %b,\n\
    \  \"word_bits\": %d,\n\
    \  \"oracle\": [\n\
     %s\n\
    \  ],\n\
    \  \"attacks\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    smoke Netlist.Engine.word_bits
    (String.concat ",\n" (List.map json_of_oracle oracle_rows))
    (String.concat ",\n" (List.map json_of_attack attack_rows));
  close_out oc;
  Printf.printf "\nwrote %s\n" out_path
