(* End-to-end smoke test for the oracle daemon, run by `make serve-smoke`
   and CI.  Unlike test/test_net.ml (which exercises Gkd_server
   in-process), this spawns the REAL gklockd binary, talks to it over an
   ephemeral unix socket, runs the SAT attack through Remote_oracle, and
   checks the verdict and recovered key are byte-identical to the
   in-process run.  It then asks the daemon to shut down and verifies a
   clean exit: status 0 and the socket file removed.

     dune exec bench/serve_smoke.exe [-- path/to/gklockd.exe]          *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let key_repr (o : Attack.outcome) =
  match o.Attack.verdict with
  | Attack.Key_recovered k -> Key.to_string k
  | v -> fail "sat verdict %s (expected key_recovered)" (Attack.verdict_name v)

let retry_connect path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match
      Remote_oracle.connect ~client:"serve-smoke" ~design:"s27"
        (Frame_io.Unix_path path)
    with
    | r -> r
    | exception (Unix.Unix_error _ | Sys_error _) when Unix.gettimeofday () < deadline ->
      Thread.delay 0.05;
      go ()
  in
  go ()

let () =
  let exe =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else Filename.concat "_build/default/bin" "gklockd.exe"
  in
  if not (Sys.file_exists exe) then fail "daemon binary %s not built" exe;
  let sock = Filename.temp_file "gklockd_smoke" ".sock" in
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "s27"; "--listen"; "unix:" ^ sock |]
      Unix.stdin dev_null Unix.stderr
  in
  Unix.close dev_null;
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !finished then (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      if Sys.file_exists sock then Sys.remove sock)
  @@ fun () ->
  (* the same attack, locally and through the daemon *)
  let net = Benchmarks.s27 () in
  let comb = fst (Combinationalize.run net) in
  let lk = Xor_lock.lock ~seed:11 comb ~n_keys:4 in
  let go oracle =
    Attack.run ~seed:3 ~name:"sat" ~locked:lk.Locked.net
      ~key_inputs:lk.Locked.key_inputs ~oracle ()
  in
  let local = go (Oracle.of_netlist comb) in
  let r = retry_connect sock in
  let remote = go (Remote_oracle.oracle r) in
  if key_repr local <> key_repr remote then
    fail "key mismatch: local %s vs remote %s" (key_repr local) (key_repr remote);
  if Attack.verdict_name local.Attack.verdict
     <> Attack.verdict_name remote.Attack.verdict
  then
    fail "verdict mismatch: %s vs %s"
      (Attack.verdict_name local.Attack.verdict)
      (Attack.verdict_name remote.Attack.verdict);
  Printf.printf "serve-smoke: sat via %s OK (key %s, %d queries)\n%!"
    (Remote_oracle.server_name r) (key_repr remote) remote.Attack.queries;
  Remote_oracle.shutdown_server r;
  Remote_oracle.close r;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "daemon exited with status %d" n
  | _, Unix.WSIGNALED s -> fail "daemon killed by signal %d" s
  | _, Unix.WSTOPPED s -> fail "daemon stopped by signal %d" s);
  finished := true;
  if Sys.file_exists sock then fail "daemon left socket %s behind" sock;
  print_endline "serve-smoke: clean shutdown, socket removed"
