(* End-to-end smoke of the campaign subsystem with the real executor:
   runs the builtin "smoke" matrix (s27 + tiny, xor + mux, SAT attack,
   two seeds — a few seconds) into a scratch directory, then runs it
   again and checks the second pass is a pure resume.  Exits non-zero if
   any job fails or the resume re-executes work, so `make campaign-smoke`
   is a CI gate. *)

let () =
  let dir =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "gklock_campaign_smoke_%d" (Unix.getpid ()))
  in
  let matrix =
    match Campaign_job.builtin "smoke" with
    | Some m -> m
    | None -> failwith "builtin smoke campaign missing"
  in
  let n_jobs = List.length (Campaign_job.expand matrix) in
  Printf.printf "smoke campaign: %d jobs -> %s\n%!" n_jobs dir;
  let t0 = Unix.gettimeofday () in
  let stats = Campaign.run ~timeout_s:120.0 ~dir matrix in
  Printf.printf "first pass: %d ok, %d failed, %d timed out (%.2fs)\n%!"
    stats.Campaign_runner.ok stats.Campaign_runner.failed
    stats.Campaign_runner.timed_out
    (Unix.gettimeofday () -. t0);
  let resume = Campaign.run ~timeout_s:120.0 ~dir matrix in
  Printf.printf "resume: %d skipped, %d ran\n%!"
    resume.Campaign_runner.skipped resume.Campaign_runner.ran;
  print_newline ();
  print_string (Campaign.report ~dir matrix);
  let ok =
    stats.Campaign_runner.ok = n_jobs
    && resume.Campaign_runner.skipped = n_jobs
    && resume.Campaign_runner.ran = 0
  in
  if not ok then begin
    prerr_endline "campaign smoke FAILED";
    exit 1
  end
