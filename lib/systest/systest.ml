type profile = Smoke | Full

let profile_name = function Smoke -> "smoke" | Full -> "full"

let profile_of_string = function
  | "smoke" -> Ok Smoke
  | "full" -> Ok Full
  | s -> Error (Printf.sprintf "unknown profile %S (smoke, full)" s)

type ctx = {
  dir : string;
  logs_dir : string;
  gklock : string;
  gklockd : string;
  systest : string;
  repo_root : string;
  profile : profile;
}

exception Failed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Failed m)) fmt
let check cond msg = if not cond then fail "%s" msg

type scenario = {
  s_name : string;
  s_tags : string list;
  s_full_only : bool;
  s_run : ctx -> unit;
}

let registry : scenario list ref = ref []

let register ?(tags = []) ?(full_only = false) ~name run =
  if List.exists (fun s -> s.s_name = name) !registry then
    invalid_arg (Printf.sprintf "Systest.register: duplicate scenario %S" name);
  registry :=
    !registry @ [ { s_name = name; s_tags = tags; s_full_only = full_only; s_run = run } ]

let scenarios () =
  List.map (fun s -> (s.s_name, s.s_tags, s.s_full_only)) !registry

type result = {
  r_name : string;
  r_ok : bool;
  r_skipped : bool;
  r_time_s : float;
  r_error : string option;
  r_dir : string;
}

let mkdir_p = Fs.mkdir_p
let rm_rf = Fs.rm_rf

let contains_sub line sub =
  let ll = String.length line and ls = String.length sub in
  ls = 0
  || (ll >= ls
      &&
      let found = ref false in
      for i = 0 to ll - ls do
        if (not !found) && String.sub line i ls = sub then found := true
      done;
      !found)

(* Per-scenario watchdog: a scenario runs arbitrary in-process code we
   cannot interrupt, so the only safe enforcement is a monitor thread
   that aborts the whole run when the generation counter stalls.  Every
   wait primitive a scenario uses has its own (shorter) timeout; the
   watchdog is the backstop that keeps CI from hanging. *)
let watchdog_gen = Atomic.make 0

let start_watchdog ~timeout_s ~name_of =
  let my_gen = Atomic.get watchdog_gen in
  ignore
    (Thread.create
       (fun () ->
         Thread.delay timeout_s;
         if Atomic.get watchdog_gen = my_gen then begin
           Printf.eprintf
             "systest: WATCHDOG — scenario %s exceeded %.0fs; aborting run\n%!"
             (name_of ()) timeout_s;
           exit 124
         end)
       ())

let print_process_logs logs_dir =
  if Sys.file_exists logs_dir then
    Array.iter
      (fun entry ->
        let path = Filename.concat logs_dir entry in
        let t = Systest_proc.tail path in
        if String.trim t <> "" then
          Printf.printf "    --- %s (tail) ---\n    %s\n" entry
            (String.concat "\n    " (String.split_on_char '\n' (String.trim t))))
      (let es = Sys.readdir logs_dir in
       Array.sort compare es;
       es)

let run_one ~root ~keep ~timeout_s ctx0 s =
  let dir = Filename.concat root s.s_name in
  rm_rf dir;
  let logs_dir = Filename.concat dir "logs" in
  mkdir_p logs_dir;
  let ctx = { ctx0 with dir; logs_dir } in
  let t0 = Unix.gettimeofday () in
  Printf.printf "systest: %-32s " s.s_name;
  flush Stdlib.stdout;
  Atomic.incr watchdog_gen;
  start_watchdog ~timeout_s ~name_of:(fun () -> s.s_name);
  let error =
    match s.s_run ctx with
    | () -> None
    | exception Failed m -> Some m
    | exception Systest_proc.Timeout m -> Some ("timeout: " ^ m)
    | exception e ->
      Some
        (Printf.sprintf "%s\n%s" (Printexc.to_string e)
           (Printexc.get_backtrace ()))
  in
  Atomic.incr watchdog_gen;
  let stray = Systest_proc.kill_stragglers () in
  let time_s = Unix.gettimeofday () -. t0 in
  (match error with
  | None ->
    Printf.printf "ok      (%.2fs)%s\n" time_s
      (if stray > 0 then Printf.sprintf "  [%d straggler(s) killed]" stray
       else "");
    if not keep then rm_rf dir
  | Some m ->
    Printf.printf "FAILED  (%.2fs)\n" time_s;
    Printf.printf "  %s\n" (String.concat "\n  " (String.split_on_char '\n' m));
    Printf.printf "  sandbox kept: %s\n" dir;
    print_process_logs logs_dir);
  flush Stdlib.stdout;
  {
    r_name = s.s_name;
    r_ok = error = None;
    r_skipped = false;
    r_time_s = time_s;
    r_error = error;
    r_dir = dir;
  }

let run_all ?(filter = []) ?root ?(keep = false) ?(timeout_s = 120.0) ~gklock
    ~gklockd ~systest ~repo_root ~profile () =
  Printexc.record_backtrace true;
  let root =
    match root with
    | Some r -> r
    | None ->
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "gklock_systest_%d" (Unix.getpid ()))
  in
  mkdir_p root;
  let ctx0 =
    {
      dir = root;
      logs_dir = root;
      gklock;
      gklockd;
      systest;
      repo_root;
      profile;
    }
  in
  let selected s =
    filter = [] || List.exists (fun f -> contains_sub s.s_name f) filter
  in
  let t0 = Unix.gettimeofday () in
  let results =
    List.map
      (fun s ->
        if not (selected s) then None
        else if s.s_full_only && profile = Smoke then begin
          Printf.printf "systest: %-32s skipped (full profile only)\n" s.s_name;
          Some
            {
              r_name = s.s_name;
              r_ok = true;
              r_skipped = true;
              r_time_s = 0.0;
              r_error = None;
              r_dir = "";
            }
        end
        else Some (run_one ~root ~keep ~timeout_s ctx0 s))
      !registry
    |> List.filter_map Fun.id
  in
  let ran = List.filter (fun r -> not r.r_skipped) results in
  let failed = List.filter (fun r -> not r.r_ok) ran in
  let all_ok = failed = [] in
  Printf.printf "systest: %d/%d scenarios passed (profile %s) in %.1fs\n"
    (List.length ran - List.length failed)
    (List.length ran) (profile_name profile)
    (Unix.gettimeofday () -. t0);
  List.iter (fun r -> Printf.printf "systest: FAILED %s\n" r.r_name) failed;
  if all_ok && not keep then rm_rf root;
  flush Stdlib.stdout;
  (results, all_ok)
