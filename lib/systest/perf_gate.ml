type kind = Throughput | Latency | Ratio | Verdict

let kind_name = function
  | Throughput -> "throughput"
  | Latency -> "latency"
  | Ratio -> "ratio"
  | Verdict -> "verdict"

type check = {
  c_id : string;
  c_kind : kind;
  c_base : float;
  c_fresh : float;
  c_base_s : string;
  c_fresh_s : string;
  c_ok : bool;
}

type report = { g_checks : check list; g_skipped : string list; g_ok : bool }

(* ----- metric extraction per schema ----- *)

let num row field = Cjson.mem_float field row

let rows_of j field =
  match Cjson.mem_list field j with Some l -> l | None -> []

let keyed prefix row name_field fields ratios =
  match Cjson.mem_str name_field row with
  | None -> []
  | Some name ->
    List.filter_map
      (fun (field, kind) ->
        Option.map
          (fun v -> (Printf.sprintf "%s.%s.%s" prefix name field, kind, `Num v))
          (num row field))
      (List.map (fun f -> (f, Throughput)) fields
      @ List.map (fun f -> (f, Ratio)) ratios)

let metrics_of ~file j =
  match file with
  | `Eval ->
    List.concat_map
      (fun row ->
        keyed "eval" row "name"
          [
            "scalar_patterns_per_sec"; "word_patterns_per_sec";
            "block_patterns_per_sec"; "sharded_patterns_per_sec";
          ]
          [
            "word_speedup_vs_legacy"; "block_speedup_vs_word";
            "sharded_speedup_vs_block"; "strash_reduction";
          ])
      (rows_of j "benchmarks")
  | `Attacks ->
    List.concat_map
      (fun row ->
        keyed "attacks" row "name"
          [
            "scalar_queries_per_sec"; "batch_queries_per_sec";
            "remote_scalar_queries_per_sec"; "remote_batch_queries_per_sec";
          ]
          [
            "batch_speedup_vs_assoc"; "batch_speedup_vs_scalar";
            "remote_batch_speedup_vs_remote_scalar";
          ])
      (rows_of j "oracle")
    @ List.filter_map
        (fun row ->
          match
            ( Cjson.mem_str "bench" row,
              Cjson.mem_str "attack" row,
              Cjson.mem_str "verdict" row )
          with
          | Some bench, Some attack, Some verdict ->
            Some
              ( Printf.sprintf "attacks.%s.%s.verdict" bench attack,
                Verdict,
                `Verdict verdict )
          | _ -> None)
        (rows_of j "attacks")
  | `Load ->
    List.concat_map
      (fun row ->
        match (Cjson.mem_str "transport" row, Cjson.mem_str "mode" row) with
        | Some t, Some m ->
          let id field = Printf.sprintf "load.%s.%s.%s" t m field in
          List.filter_map
            (fun (field, kind) ->
              Option.map (fun v -> (id field, kind, `Num v)) (num row field))
            [ ("qps", Throughput); ("p50_us", Latency); ("p99_us", Latency) ]
        | _ -> [])
      (rows_of j "rows")

(* ----- comparison ----- *)

let compare_docs ?(max_slowdown = 1.5) ?(ratio_tolerance = 2.0)
    ?(inject_slowdown = 1.0) pairs =
  if max_slowdown < 1.0 then
    invalid_arg "Perf_gate.compare_docs: max_slowdown must be >= 1";
  if ratio_tolerance < 1.0 then
    invalid_arg "Perf_gate.compare_docs: ratio_tolerance must be >= 1";
  let checks = ref [] and skipped = ref [] in
  List.iter
    (fun (file, base_j, fresh_j) ->
      let base = metrics_of ~file base_j in
      let fresh = metrics_of ~file fresh_j in
      let fresh_tbl = Hashtbl.create 64 in
      List.iter (fun (id, _, v) -> Hashtbl.replace fresh_tbl id v) fresh;
      (* fresh-only metrics: report as skipped so a widened fresh run is
         visible, not silently ignored *)
      let base_ids = List.map (fun (id, _, _) -> id) base in
      List.iter
        (fun (id, _, _) ->
          if not (List.mem id base_ids) then
            skipped := (id ^ " (fresh only)") :: !skipped)
        fresh;
      List.iter
        (fun (id, kind, base_v) ->
          match (base_v, Hashtbl.find_opt fresh_tbl id) with
          | _, None -> skipped := (id ^ " (baseline only)") :: !skipped
          | `Num b, Some (`Num f) ->
            if b <= 0.0 then skipped := (id ^ " (non-positive baseline)") :: !skipped
            else begin
              (* the synthetic-slowdown hook scales only the
                 machine-dependent kinds: a uniform slowdown leaves
                 dimensionless ratios untouched, and the gate's job is
                 to model exactly that uniform slowdown *)
              let f =
                match kind with
                | Throughput -> f /. inject_slowdown
                | Latency -> f *. inject_slowdown
                | Ratio | Verdict -> f
              in
              let ok =
                match kind with
                | Throughput -> f *. max_slowdown >= b
                | Latency -> f <= b *. max_slowdown
                | Ratio -> f *. ratio_tolerance >= b
                | Verdict -> true
              in
              checks :=
                {
                  c_id = id;
                  c_kind = kind;
                  c_base = b;
                  c_fresh = f;
                  c_base_s = "";
                  c_fresh_s = "";
                  c_ok = ok;
                }
                :: !checks
            end
          | `Verdict b, Some (`Verdict f) ->
            checks :=
              {
                c_id = id;
                c_kind = Verdict;
                c_base = 0.0;
                c_fresh = 0.0;
                c_base_s = b;
                c_fresh_s = f;
                c_ok = b = f;
              }
              :: !checks
          | `Num _, Some (`Verdict _) | `Verdict _, Some (`Num _) ->
            skipped := (id ^ " (kind mismatch)") :: !skipped)
        base)
    pairs;
  let checks = List.rev !checks in
  {
    g_checks = checks;
    g_skipped = List.rev !skipped;
    g_ok = List.for_all (fun c -> c.c_ok) checks;
  }

(* ----- rendering ----- *)

let fmt_num kind v =
  match kind with
  | Ratio -> Printf.sprintf "%.2fx" v
  | Latency -> Printf.sprintf "%.0fus" v
  | _ -> Printf.sprintf "%.1f" v

let render r =
  let t =
    Ascii_table.create ~title:"Perf gate"
      ~columns:
        [
          ("metric", Ascii_table.Left);
          ("kind", Ascii_table.Left);
          ("baseline", Ascii_table.Right);
          ("fresh", Ascii_table.Right);
          ("change", Ascii_table.Right);
          ("status", Ascii_table.Left);
        ]
  in
  List.iter
    (fun c ->
      let base, fresh, change =
        if c.c_kind = Verdict then
          (c.c_base_s, c.c_fresh_s, if c.c_ok then "same" else "FLIPPED")
        else
          ( fmt_num c.c_kind c.c_base,
            fmt_num c.c_kind c.c_fresh,
            Printf.sprintf "%.2fx" (c.c_fresh /. c.c_base) )
      in
      Ascii_table.add_row t
        [
          c.c_id; kind_name c.c_kind; base; fresh; change;
          (if c.c_ok then "ok" else "FAIL");
        ])
    r.g_checks;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Ascii_table.render t);
  if r.g_skipped <> [] then
    Buffer.add_string buf
      (Printf.sprintf "skipped (one-sided): %s\n"
         (String.concat ", " r.g_skipped));
  let failed = List.filter (fun c -> not c.c_ok) r.g_checks in
  if failed = [] then
    Buffer.add_string buf
      (Printf.sprintf "gate: %d metrics OK\n" (List.length r.g_checks))
  else begin
    Buffer.add_string buf
      (Printf.sprintf "gate: %d/%d metrics FAILED:\n" (List.length failed)
         (List.length r.g_checks));
    List.iter
      (fun c ->
        Buffer.add_string buf
          (if c.c_kind = Verdict then
             Printf.sprintf "  %s: verdict flipped %s -> %s\n" c.c_id
               c.c_base_s c.c_fresh_s
           else
             Printf.sprintf "  %s: %s -> %s (%.2fx)\n" c.c_id
               (fmt_num c.c_kind c.c_base)
               (fmt_num c.c_kind c.c_fresh)
               (c.c_fresh /. c.c_base)))
      failed
  end;
  Buffer.contents buf
