type transport = [ `Unix | `Tcp ]
type mode = [ `Scalar | `Batch ]

let transport_name = function `Unix -> "unix" | `Tcp -> "tcp"
let mode_name = function `Scalar -> "scalar" | `Batch -> "batch63"

type cfg = {
  l_design : string;
  l_clients : int;
  l_duration_s : float;
  l_flush_lanes : int;
  l_flush_delay_s : float;
}

let default_cfg =
  {
    l_design = "s27";
    l_clients = 8;
    l_duration_s = 5.0;
    l_flush_lanes = 63;
    l_flush_delay_s = 0.001;
  }

type row = {
  r_transport : transport;
  r_mode : mode;
  r_clients : int;
  r_duration_s : float;
  r_queries : int;
  r_qps : float;
  r_p50_us : float;
  r_p90_us : float;
  r_p99_us : float;
  r_max_us : float;
  r_errors : int;
}

(* ----- latency accumulation (per-client, merged afterwards) ----- *)

type acc = { mutable buf : float array; mutable n : int }

let acc_create () = { buf = Array.make 4096 0.0; n = 0 }

let acc_add a v =
  if a.n = Array.length a.buf then begin
    let bigger = Array.make (2 * a.n) 0.0 in
    Array.blit a.buf 0 bigger 0 a.n;
    a.buf <- bigger
  end;
  a.buf.(a.n) <- v;
  a.n <- a.n + 1

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* ----- design inputs and stimulus ----- *)

let design_net name =
  match Benchmarks.find_spec name with
  | Some spec -> Benchmarks.load spec
  | None ->
    if name = "s27" then Benchmarks.s27 ()
    else if name = "tiny" then Benchmarks.tiny ()
    else invalid_arg (Printf.sprintf "Load_gen: unknown builtin design %S" name)

let design_inputs name =
  let net = design_net name in
  let comb = if Netlist.ffs net = [] then net else fst (Combinationalize.run net) in
  Oracle.input_names (Oracle.of_netlist comb)

(* Distinct-ish random vectors, regenerated per client from its own
   seed: with the server memo off every call costs an evaluation, so
   repeats would not skew the numbers, but distinct vectors also keep
   any future memo-on comparison honest. *)
let make_vectors ~seed ~inputs n =
  let rng = Random.State.make [| 0x10ad; seed |] in
  Array.init n (fun _ ->
      List.map (fun name -> (name, Random.State.bool rng)) inputs)

(* ----- daemon address discovery ----- *)

(* The daemon prints "gklockd: listening on ADDR" after binding — with
   the real port read back from the listener when it was asked for tcp
   port 0.  Waiting for that line and parsing it is the race-free way
   to learn where to connect. *)
let bound_addr ?timeout_s daemon =
  let ready = Systest_proc.wait_for_log ?timeout_s daemon "listening on " in
  let marker = "listening on " in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length ready then
      Systest.fail "malformed listen line %S" ready
    else if String.sub ready i mlen = marker then i + mlen
    else find (i + 1)
  in
  let i = find 0 in
  match
    Frame_io.parse_addr
      (String.trim (String.sub ready i (String.length ready - i)))
  with
  | Ok a -> a
  | Error e -> Systest.fail "bad daemon address in %S: %s" ready e

(* ----- one measured row ----- *)

let run ~gklockd ~dir cfg transport mode =
  if cfg.l_clients < 1 then invalid_arg "Load_gen.run: clients must be >= 1";
  let tname = transport_name transport and mname = mode_name mode in
  let label = Printf.sprintf "gklockd_load_%s_%s" tname mname in
  let listen =
    match transport with
    | `Unix -> "unix:" ^ Filename.concat dir (label ^ ".sock")
    | `Tcp -> "tcp:127.0.0.1:0"
  in
  let daemon =
    Systest_proc.spawn ~logs_dir:dir ~name:label gklockd
      ([
         cfg.l_design;
         "--listen"; listen;
         "--no-memo";
         "--flush-lanes"; string_of_int cfg.l_flush_lanes;
         "--flush-delay"; Printf.sprintf "%g" cfg.l_flush_delay_s;
       ]
      @ match transport with `Tcp -> [ "--allow-tcp-shutdown" ] | `Unix -> [])
  in
  let addr = bound_addr daemon in
  let inputs = design_inputs cfg.l_design in
  let h_latency =
    Obs.Metrics.histogram
      (Printf.sprintf "systest.load.latency_us.%s.%s" tname mname)
  in
  let c_queries = Obs.Metrics.counter "systest.load.queries" in
  (* warm up: connections, engine, coalescing path *)
  let warm = Remote_oracle.connect ~client:"load-warmup" ~memo:false addr in
  let warm_o = Remote_oracle.oracle warm in
  let warm_vecs = make_vectors ~seed:0 ~inputs 16 in
  Array.iter (fun v -> ignore (Oracle.query warm_o v)) warm_vecs;
  Remote_oracle.close warm;
  (* measured window: every client runs a closed loop until the shared
     deadline, timing each call *)
  let start_t = Unix.gettimeofday () +. 0.05 in
  let deadline = start_t +. cfg.l_duration_s in
  let accs = Array.init cfg.l_clients (fun _ -> acc_create ()) in
  let calls = Array.make cfg.l_clients 0 in
  let errors = Array.make cfg.l_clients 0 in
  let client i () =
    let r =
      Remote_oracle.connect
        ~client:(Printf.sprintf "load-%d" i)
        ~memo:false addr
    in
    Fun.protect ~finally:(fun () -> Remote_oracle.close r) @@ fun () ->
    let o = Remote_oracle.oracle r in
    let vecs = make_vectors ~seed:(i + 1) ~inputs 1024 in
    let nv = Array.length vecs in
    let k = ref 0 in
    while Unix.gettimeofday () < start_t do
      Thread.delay 0.001
    done;
    while Unix.gettimeofday () < deadline do
      let t0 = Unix.gettimeofday () in
      (try
         (match mode with
         | `Scalar -> ignore (Oracle.query o vecs.(!k mod nv))
         | `Batch ->
           let qs = List.init 63 (fun j -> vecs.((!k + j) mod nv)) in
           ignore (Oracle.query_batch o qs));
         let dt_us = (Unix.gettimeofday () -. t0) *. 1e6 in
         acc_add accs.(i) dt_us;
         Obs.Metrics.observe h_latency dt_us;
         calls.(i) <- calls.(i) + 1
       with
      | Remote_oracle.Remote_error _ | Unix.Unix_error _ | Sys_error _ ->
        errors.(i) <- errors.(i) + 1;
        Thread.delay 0.005);
      k := !k + (match mode with `Scalar -> 1 | `Batch -> 63)
    done
  in
  let threads =
    List.init cfg.l_clients (fun i -> Thread.create (client i) ())
  in
  List.iter Thread.join threads;
  let measured_s =
    (* the last call may run past the deadline; measure what happened *)
    Unix.gettimeofday () -. start_t
  in
  (* clean daemon shutdown is part of the measurement contract: a row
     from a daemon that then wedges or crashes is not a result *)
  let fin = Remote_oracle.connect ~client:"load-shutdown" ~memo:false addr in
  Remote_oracle.shutdown_server fin;
  Remote_oracle.close fin;
  (match Systest_proc.wait ~timeout_s:30.0 daemon with
  | Unix.WEXITED 0 -> ()
  | st ->
    Systest.fail "load daemon %s did not exit cleanly (%s)" label
      (match st with
      | Unix.WEXITED n -> Printf.sprintf "exit %d" n
      | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
      | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
  let all = Array.concat (Array.to_list (Array.map (fun a -> Array.sub a.buf 0 a.n) accs)) in
  Array.sort compare all;
  let total_calls = Array.fold_left ( + ) 0 calls in
  let lanes_per_call = match mode with `Scalar -> 1 | `Batch -> 63 in
  let queries = total_calls * lanes_per_call in
  Obs.Metrics.add c_queries queries;
  {
    r_transport = transport;
    r_mode = mode;
    r_clients = cfg.l_clients;
    r_duration_s = measured_s;
    r_queries = queries;
    r_qps = (if measured_s > 0.0 then float_of_int queries /. measured_s else 0.0);
    r_p50_us = percentile all 0.50;
    r_p90_us = percentile all 0.90;
    r_p99_us = percentile all 0.99;
    r_max_us = (if Array.length all = 0 then 0.0 else all.(Array.length all - 1));
    r_errors = Array.fold_left ( + ) 0 errors;
  }

(* ----- JSON ----- *)

let row_histogram row =
  let name =
    Printf.sprintf "systest.load.latency_us.%s.%s"
      (transport_name row.r_transport)
      (mode_name row.r_mode)
  in
  match Cjson.member name (Obs.Metrics.snapshot ()) with
  | Some h -> h
  | None -> Cjson.Null

let to_json ~smoke cfg rows =
  Cjson.Obj
    [
      ("schema", Cjson.Str "gklock/bench_load/v1");
      ("smoke", Cjson.Bool smoke);
      ("design", Cjson.Str cfg.l_design);
      ("clients", Cjson.Int cfg.l_clients);
      ("flush_lanes", Cjson.Int cfg.l_flush_lanes);
      ("flush_delay_s", Cjson.Float cfg.l_flush_delay_s);
      ( "rows",
        Cjson.List
          (List.map
             (fun r ->
               Cjson.Obj
                 [
                   ("transport", Cjson.Str (transport_name r.r_transport));
                   ("mode", Cjson.Str (mode_name r.r_mode));
                   ("clients", Cjson.Int r.r_clients);
                   ("duration_s", Cjson.Float r.r_duration_s);
                   ("queries", Cjson.Int r.r_queries);
                   ("qps", Cjson.Float r.r_qps);
                   ("p50_us", Cjson.Float r.r_p50_us);
                   ("p90_us", Cjson.Float r.r_p90_us);
                   ("p99_us", Cjson.Float r.r_p99_us);
                   ("max_us", Cjson.Float r.r_max_us);
                   ("errors", Cjson.Int r.r_errors);
                   ("latency_hist", row_histogram r);
                 ])
             rows) );
    ]
