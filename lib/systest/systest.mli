(** The system-test harness: named scenarios against the real binaries.

    A {e scenario} is a named function from a {!ctx} — a fresh sandbox
    directory plus the paths of the built [gklock] / [gklockd] /
    [systest] executables — to unit; it fails by raising ({!fail},
    {!check}, or any exception).  Scenarios {!register} themselves at
    module-initialization time; the runner ({!run_all}, i.e. [systest
    run]) executes a filtered set sequentially, each in its own sandbox
    with its own [logs/] directory, under a hard wall-clock watchdog.

    Conventions scenarios follow:
    - every spawned process goes through {!Systest_proc} (captured
      logs, timeouts, log-pattern waits — never bare sleeps);
    - everything they write lives under [ctx.dir];
    - on success the sandbox is deleted, on failure it is kept and the
      runner prints the log tails of every process the scenario spawned.

    See DESIGN.md §6i for the architecture and README "System tests &
    load" for the testing taxonomy. *)

type profile = Smoke | Full

val profile_name : profile -> string
val profile_of_string : string -> (profile, string) result

type ctx = {
  dir : string;  (** this scenario's sandbox (absolute, empty at start) *)
  logs_dir : string;  (** [dir/logs] — give this to {!Systest_proc.spawn} *)
  gklock : string;  (** absolute path of the gklock CLI binary *)
  gklockd : string;  (** absolute path of the daemon binary *)
  systest : string;  (** absolute path of the systest binary itself *)
  repo_root : string;  (** where the committed BENCH_*.json live *)
  profile : profile;
}

exception Failed of string

(** [fail fmt ...] aborts the scenario. *)
val fail : ('a, unit, string, 'b) format4 -> 'a

(** [check cond msg] is [if not cond then fail "%s" msg]. *)
val check : bool -> string -> unit

(** [register ~name run] adds a scenario.  [full_only] scenarios are
    skipped under the [Smoke] profile.  Names must be unique.
    [tags] are informational ([systest list]). *)
val register :
  ?tags:string list -> ?full_only:bool -> name:string -> (ctx -> unit) -> unit

(** Registered scenarios in registration order: name, tags, full_only. *)
val scenarios : unit -> (string * string list * bool) list

type result = {
  r_name : string;
  r_ok : bool;
  r_skipped : bool;  (** filtered out by profile *)
  r_time_s : float;
  r_error : string option;
  r_dir : string;
}

(** [run_all ~binaries ~profile ()] executes every registered scenario
    whose name contains one of [filter] (all when [filter] is []),
    sequentially.  [root] is the sandbox root (default: a fresh
    directory under the system temp dir); [keep] keeps sandboxes of
    passing scenarios too.  [timeout_s] is the per-scenario watchdog
    (default 120): a scenario that exceeds it aborts the whole run with
    exit code 124 — a stuck system test must never hang CI.

    Returns the per-scenario results and [true] iff none failed. *)
val run_all :
  ?filter:string list ->
  ?root:string ->
  ?keep:bool ->
  ?timeout_s:float ->
  gklock:string ->
  gklockd:string ->
  systest:string ->
  repo_root:string ->
  profile:profile ->
  unit ->
  result list * bool

(** Recursively delete a directory tree (used by the runner; exposed
    for scenarios that want mid-scenario cleanup). *)
val rm_rf : string -> unit

(** [mkdir_p dir] creates [dir] and parents. *)
val mkdir_p : string -> unit
