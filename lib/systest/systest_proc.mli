(** Supervised child processes for the system-test harness.

    Every binary a scenario spawns goes through this module: stdout and
    stderr are captured to files under the scenario's log directory,
    waits carry timeouts, and readiness is expressed as {e log-pattern
    waits} ({!wait_for_log}) instead of sleeps — a scenario never races
    a daemon's startup, it waits for the daemon to say it is ready.

    Spawned processes are tracked in a process-global registry so the
    runner can {!kill_stragglers} after a scenario ends, whatever state
    the scenario left them in.  All paths should be absolute: children
    may be started with a different working directory ([~cwd]).

    {!spawn} uses [Unix.fork], which OCaml 5 forbids once any other
    domain has been created.  The systest binary never creates domains
    itself; a host that does (e.g. the tier-1 test runner, whose
    campaign suites abandon timed-out domains) must run its
    process-spawning tests before its domain-creating ones. *)

type t

exception Timeout of string
(** A wait outlived its [timeout_s]; the payload names the process and
    what was being waited for. *)

(** [spawn ~logs_dir ~name prog args] forks and execs [prog args]
    (argv.(0) is set to [prog]), with stdin from [/dev/null] and
    stdout/stderr captured to [logs_dir/name.stdout] /
    [logs_dir/name.stderr].  [cwd] sets the child's working directory.
    [env] replaces the environment (default: inherit). *)
val spawn :
  ?env:string array ->
  ?cwd:string ->
  logs_dir:string ->
  name:string ->
  string ->
  string list ->
  t

val pid : t -> int
val name : t -> string
val stdout_path : t -> string
val stderr_path : t -> string

(** Current contents of the captured streams (the child may still be
    writing). *)
val stdout : t -> string

val stderr : t -> string

(** [poll t] reaps the child if it has exited; [None] while running. *)
val poll : t -> Unix.process_status option

(** [wait ?timeout_s t] blocks (polling) until the child exits.
    @raise Timeout after [timeout_s] (default 60 s) — the child is
    still running and untouched. *)
val wait : ?timeout_s:float -> t -> Unix.process_status

val alive : t -> bool

(** [signal t s] sends signal [s]; no-op once the child was reaped. *)
val signal : t -> int -> unit

(** SIGKILL then reap.  Idempotent. *)
val kill : t -> unit

(** [wait_for_log ?timeout_s ?stream t sub] polls the captured stream
    (default stdout) until a line containing substring [sub] appears and
    returns that line.  If the child exits first and the pattern never
    shows up, raises {!Timeout} immediately with the log tail.
    @raise Timeout after [timeout_s] (default 30 s). *)
val wait_for_log :
  ?timeout_s:float -> ?stream:[ `Stdout | `Stderr ] -> t -> string -> string

(** [wait_for_file ?timeout_s path pred] polls [path] until it exists
    and [pred contents] is true; returns the contents.  Used e.g. to
    wait for a campaign's first checkpointed result.
    @raise Timeout after [timeout_s] (default 30 s). *)
val wait_for_file : ?timeout_s:float -> string -> (string -> bool) -> string

(** Kill (SIGKILL) and reap every process spawned through this module
    that is still alive; returns how many were killed.  The runner calls
    this between scenarios. *)
val kill_stragglers : unit -> int

(** Last [n] lines of a file, for failure diagnostics ([""] if the file
    does not exist). *)
val tail : ?lines:int -> string -> string
