(** The perf regression gate: committed BENCH_*.json trajectory vs a
    fresh measurement.

    The repo commits its performance record — [BENCH_eval.json]
    (engine throughput), [BENCH_attacks.json] (oracle/attack
    throughput and verdicts) and [BENCH_load.json] (daemon sustained
    load).  [systest gate] re-measures smoke-profile versions of the
    same numbers and compares, so a refactor that silently loses the
    speed those files record fails [make check] / CI instead of
    landing.

    Metrics come in four kinds, each with its own comparison rule:

    - {b Throughput} (queries/sec, patterns/sec): fresh must be at
      least [baseline / max_slowdown];
    - {b Latency} (p50/p99 µs): fresh must be at most
      [baseline * max_slowdown];
    - {b Ratio} (dimensionless speedups, e.g. batch-vs-scalar): fresh
      must be at least [baseline / ratio_tolerance].  Ratios are
      machine-independent, so they stay meaningful even when absolute
      numbers are measured on different hardware than the baseline;
    - {b Verdict} (attack outcomes): must match exactly — an attack
      whose verdict flips is a correctness regression wearing a perf
      benchmark's clothes.

    A metric present in only one file (e.g. a benchmark the smoke
    profile skips) is reported as skipped, never failed.
    [inject_slowdown] divides fresh throughputs and multiplies fresh
    latencies before comparison — the self-test hook that proves the
    gate actually trips ([systest gate --inject-slowdown 2]). *)

type kind = Throughput | Latency | Ratio | Verdict

val kind_name : kind -> string

type check = {
  c_id : string;  (** e.g. ["attacks.s5378.batch_queries_per_sec"] *)
  c_kind : kind;
  c_base : float;  (** for [Verdict], 0.0 — see [c_base_s] *)
  c_fresh : float;
  c_base_s : string;  (** verdict strings ([""] for numeric kinds) *)
  c_fresh_s : string;
  c_ok : bool;
}

type report = {
  g_checks : check list;
  g_skipped : string list;  (** metric ids present on only one side *)
  g_ok : bool;
}

(** [metrics_of ~file j] extracts [(id, kind, number-or-verdict)]
    triples from one BENCH document.  [file] selects the schema:
    [`Eval], [`Attacks] or [`Load]. *)
val metrics_of :
  file:[ `Eval | `Attacks | `Load ] ->
  Cjson.t ->
  (string * kind * [ `Num of float | `Verdict of string ]) list

(** [compare_docs ?max_slowdown ?ratio_tolerance ?inject_slowdown
    pairs] gates every [(file, baseline_json, fresh_json)] pair.
    Defaults: [max_slowdown = 1.5] (fail on >50% throughput loss or
    latency growth), [ratio_tolerance = 2.0], [inject_slowdown = 1.0]
    (off). *)
val compare_docs :
  ?max_slowdown:float ->
  ?ratio_tolerance:float ->
  ?inject_slowdown:float ->
  ([ `Eval | `Attacks | `Load ] * Cjson.t * Cjson.t) list ->
  report

(** Human-readable gate report (ASCII table + failure lines). *)
val render : report -> string
