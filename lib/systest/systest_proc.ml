type t = {
  p_name : string;
  p_pid : int;
  p_stdout : string;
  p_stderr : string;
  mutable p_status : Unix.process_status option;
}

exception Timeout of string

(* Registry of everything spawned, so the runner can reap stragglers
   after a scenario — whatever state the scenario left them in. *)
let registry : t list ref = ref []
let registry_mu = Mutex.create ()

let track p =
  Mutex.lock registry_mu;
  registry := p :: !registry;
  Mutex.unlock registry_mu

let read_file path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  end

let tail ?(lines = 15) path =
  let s = read_file path in
  let all = String.split_on_char '\n' s in
  let n = List.length all in
  if n <= lines then s
  else String.concat "\n" (List.filteri (fun i _ -> i >= n - lines) all)

let spawn ?env ?cwd ~logs_dir ~name prog args =
  if not (Sys.file_exists prog) then
    invalid_arg (Printf.sprintf "Systest_proc.spawn: no such binary %s" prog);
  let stdout_path = Filename.concat logs_dir (name ^ ".stdout") in
  let stderr_path = Filename.concat logs_dir (name ^ ".stderr") in
  (* Flush our own buffers: the child inherits them across fork and
     would otherwise replay pending output into its log files. *)
  flush Stdlib.stdout;
  flush Stdlib.stderr;
  let argv = Array.of_list (prog :: args) in
  match Unix.fork () with
  | 0 ->
    (* child: no OCaml work beyond redirect + exec *)
    (try
       Option.iter Unix.chdir cwd;
       let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
       let out =
         Unix.openfile stdout_path
           [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
           0o644
       in
       let err =
         Unix.openfile stderr_path
           [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
           0o644
       in
       Unix.dup2 devnull Unix.stdin;
       Unix.dup2 out Unix.stdout;
       Unix.dup2 err Unix.stderr;
       match env with
       | Some e -> Unix.execve prog argv e
       | None -> Unix.execv prog argv
     with _ -> ());
    exit 127
  | pid ->
    let p =
      {
        p_name = name;
        p_pid = pid;
        p_stdout = stdout_path;
        p_stderr = stderr_path;
        p_status = None;
      }
    in
    track p;
    p

let pid t = t.p_pid
let name t = t.p_name
let stdout_path t = t.p_stdout
let stderr_path t = t.p_stderr
let stdout t = read_file t.p_stdout
let stderr t = read_file t.p_stderr

let poll t =
  match t.p_status with
  | Some _ as s -> s
  | None -> (
    match Unix.waitpid [ Unix.WNOHANG ] t.p_pid with
    | 0, _ -> None
    | _, st ->
      t.p_status <- Some st;
      Some st
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> None)

let alive t = poll t = None

let wait ?(timeout_s = 60.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match poll t with
    | Some st -> st
    | None ->
      if Unix.gettimeofday () > deadline then
        raise
          (Timeout
             (Printf.sprintf "process %s (pid %d) still running after %.1fs"
                t.p_name t.p_pid timeout_s));
      Thread.delay 0.01;
      go ()
  in
  go ()

let signal t s =
  if t.p_status = None then
    try Unix.kill t.p_pid s with Unix.Unix_error _ -> ()

let kill t =
  if poll t = None then begin
    signal t Sys.sigkill;
    (* a SIGKILLed child reaps promptly; no timeout needed *)
    match Unix.waitpid [] t.p_pid with
    | _, st -> t.p_status <- Some st
    | exception Unix.Unix_error _ -> ()
  end

let kill_stragglers () =
  Mutex.lock registry_mu;
  let ps = !registry in
  registry := [];
  Mutex.unlock registry_mu;
  List.fold_left
    (fun n p ->
      if alive p then begin
        kill p;
        n + 1
      end
      else n)
    0 ps

(* Line-oriented substring search over a captured stream.  Re-reading
   the whole file each poll is fine at system-test sizes, and keeps the
   semantics trivial: a match is a complete line containing [sub]. *)
let find_line contents sub =
  List.find_opt
    (fun line ->
      let ll = String.length line and ls = String.length sub in
      ll >= ls
      && (let found = ref false in
          for i = 0 to ll - ls do
            if (not !found) && String.sub line i ls = sub then found := true
          done;
          !found))
    (String.split_on_char '\n' contents)

let wait_for_log ?(timeout_s = 30.0) ?(stream = `Stdout) t sub =
  let path = match stream with `Stdout -> t.p_stdout | `Stderr -> t.p_stderr in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let diag why =
    raise
      (Timeout
         (Printf.sprintf "%s waiting for %S in %s logs of %s:\n%s" why sub
            (match stream with `Stdout -> "stdout" | `Stderr -> "stderr")
            t.p_name (tail path)))
  in
  let rec go () =
    match find_line (read_file path) sub with
    | Some line -> line
    | None ->
      let exited = poll t <> None in
      (* one more read after exit: the pattern may have landed between
         the last read and the process going away *)
      if exited then (
        match find_line (read_file path) sub with
        | Some line -> line
        | None -> diag "process exited")
      else if Unix.gettimeofday () > deadline then diag "timed out"
      else begin
        Thread.delay 0.02;
        go ()
      end
  in
  go ()

let wait_for_file ?(timeout_s = 30.0) path pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let contents = read_file path in
    if Sys.file_exists path && pred contents then contents
    else if Unix.gettimeofday () > deadline then
      raise
        (Timeout (Printf.sprintf "timed out waiting for file %s" path))
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()
