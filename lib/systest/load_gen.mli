(** Sustained-load generator for the oracle service.

    Spawns the {e real} [gklockd] binary on a private socket, hammers it
    with [clients] concurrent closed-loop clients for [duration_s], and
    reports sustained queries/sec plus client-observed latency
    percentiles.  One {!row} is measured per (transport × mode):

    - transport [`Unix] / [`Tcp] — the daemon listens on a sandboxed
      unix socket or an ephemeral TCP port (bound as port 0 and read
      back from the daemon's "listening on" log line, so runs never
      race over a guessed port);
    - mode [`Scalar] — one [Query] frame per call, exercising the
      server's cross-client 63-lane coalescing;
    - mode [`Batch] — 63-query [Query_batch] frames, the bulk path.

    The server-side memo is disabled so every query reaches the engine;
    client memos are off too.  Latencies are recorded per query (per
    frame in [`Batch] mode) both exactly — for the percentile fields —
    and into [Obs.Metrics] histograms
    ([systest.load.latency_us.<transport>.<mode>]), whose snapshots are
    embedded in the JSON ({!to_json}) that [systest load] writes to
    [BENCH_load.json]. *)

type transport = [ `Unix | `Tcp ]
type mode = [ `Scalar | `Batch ]

val transport_name : transport -> string
val mode_name : mode -> string

type cfg = {
  l_design : string;  (** builtin benchmark name served by the daemon *)
  l_clients : int;
  l_duration_s : float;  (** measured window per row *)
  l_flush_lanes : int;  (** daemon scalar-coalescing flush threshold *)
  l_flush_delay_s : float;  (** daemon max coalescing delay *)
}

val default_cfg : cfg

type row = {
  r_transport : transport;
  r_mode : mode;
  r_clients : int;
  r_duration_s : float;  (** actual measured wall time *)
  r_queries : int;  (** oracle queries answered (lanes, not frames) *)
  r_qps : float;  (** sustained queries/sec over the window *)
  r_p50_us : float;  (** per-call latency percentiles (per frame in
                         [`Batch] mode), microseconds *)
  r_p90_us : float;
  r_p99_us : float;
  r_max_us : float;
  r_errors : int;  (** failed calls (transport or server errors) *)
}

(** [bound_addr daemon] waits for a spawned [gklockd]'s
    ["listening on"] stdout line and parses the advertised address —
    the actual bound port when the daemon was started on [tcp:...:0].
    Shared by the load generator and the daemon scenarios.
    @raise Systest_proc.Timeout if the line never appears.
    @raise Systest.Failed on an unparsable line. *)
val bound_addr : ?timeout_s:float -> Systest_proc.t -> Frame_io.addr

(** [run ~gklockd ~dir cfg transport mode] measures one row.  [dir] is
    a scratch directory for the socket and the daemon's captured logs.
    The daemon is shut down (and its clean exit asserted) before the
    row is returned.
    @raise Systest.Failed on daemon startup/shutdown problems. *)
val run :
  gklockd:string -> dir:string -> cfg -> transport -> mode -> row

(** [to_json ~smoke cfg rows] is the [BENCH_load.json] document
    (schema ["gklock/bench_load/v1"]), including the [Obs.Metrics]
    latency-histogram snapshot for each row. *)
val to_json : smoke:bool -> cfg -> row list -> Cjson.t
