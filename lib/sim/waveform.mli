(** Signal waveforms: a value over time, as an initial value plus a sorted
    list of transitions.

    Waveforms are the currency of the glitch analysis: the timing simulator
    records one per net, {!pulses} extracts the glitches a GK generates, and
    {!render} draws the ASCII timing diagrams that regenerate the paper's
    Figs. 4, 6, 7 and 9. *)

type t

(** [constant v] never changes. *)
val constant : Logic.t -> t

(** [make ~initial transitions] normalizes a transition list: sorts by time,
    drops non-changes, keeps the last value for duplicate timestamps.
    Negative times are illegal. *)
val make : initial:Logic.t -> (int * Logic.t) list -> t

val initial : t -> Logic.t

(** Transitions, strictly increasing in time, each changing the value. *)
val transitions : t -> (int * Logic.t) list

(** [value_at w t] is the value at time [t] (transitions take effect at
    their timestamp). *)
val value_at : t -> int -> Logic.t

(** [stable_in w ~from_ ~until] holds when no transition occurs in the
    closed interval [[from_, until]] — the setup/hold stability test. *)
val stable_in : t -> from_:int -> until:int -> bool

(** [changes_in w ~from_ ~until] lists transitions inside [[from_, until]]. *)
val changes_in : t -> from_:int -> until:int -> (int * Logic.t) list

(** A maximal interval during which the signal held a value different from
    the values around it. *)
type pulse = { start_ps : int; stop_ps : int; level : Logic.t }

(** [pulses ?max_width w ~until] lists the pulses of [w] that start at or
    before [until] and whose width is at most [max_width] (default: no
    limit) — with a small [max_width] these are the glitches.  A pulse
    whose closing transition lies past [until] keeps its true
    [stop_ps]; a pulse with {e no} recorded closing transition (still
    open at the end of the trace) is reported with [stop_ps = until],
    its width measured up to the boundary, so boundary-touching glitches
    are never silently dropped. *)
val pulses : ?max_width:int -> t -> until:int -> pulse list

(** [toggle ~t0 ~period ~start] is the square-ish wave that starts at
    [start] and flips at [t0], [t0+period], [t0+2*period], ... —
    the shape a KEYGEN emits on its key output. *)
val toggle : t0:int -> period:int -> start:Logic.t -> until:int -> t

(** [delay w d] shifts every transition [d] ps later (a pure transport
    delay element). *)
val delay : t -> int -> t

(** [map2 f a b] combines two waveforms pointwise with zero delay. *)
val map2 : (Logic.t -> Logic.t -> Logic.t) -> t -> t -> t

(** [render ~t0 ~t1 ~step rows] draws labelled waveforms as an ASCII
    timing diagram, one row per (label, waveform), sampling every [step]
    ps.  Looks like:

    {v
    key   ___/~~~~~~~~\____
    y     ~~~\__/~~\_______
    v} *)
val render : t0:int -> t1:int -> step:int -> (string * t) list -> string

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
