type t = F | T | X

let of_bool b = if b then T else F

let to_bool = function F -> Some false | T -> Some true | X -> None

let equal a b =
  match (a, b) with F, F | T, T | X, X -> true | _, _ -> false

let lnot = function F -> T | T -> F | X -> X

let land_ a b =
  match (a, b) with
  | F, _ | _, F -> F
  | T, T -> T
  | X, _ | _, X -> X

let lor_ a b =
  match (a, b) with
  | T, _ | _, T -> T
  | F, F -> F
  | X, _ | _, X -> X

let lxor_ a b =
  match (a, b) with
  | X, _ | _, X -> X
  | _, _ -> of_bool (a <> b)

let mux sel a b =
  match sel with
  | F -> a
  | T -> b
  | X -> if equal a b then a else X

let eval_fn fn ins =
  let n = Array.length ins in
  if not (Cell.arity_ok fn n) then
    invalid_arg "Logic.eval_fn: illegal arity";
  let fold op seed = Array.fold_left op seed ins in
  match fn with
  | Cell.Not -> lnot ins.(0)
  | Cell.Buf -> ins.(0)
  | Cell.And -> fold land_ T
  | Cell.Nand -> lnot (fold land_ T)
  | Cell.Or -> fold lor_ F
  | Cell.Nor -> lnot (fold lor_ F)
  | Cell.Xor -> fold lxor_ F
  | Cell.Xnor -> lnot (fold lxor_ F)
  | Cell.Mux -> mux ins.(0) ins.(1) ins.(2)

let eval_lut truth ins =
  let n = Array.length ins in
  if Array.length truth <> 1 lsl n then
    invalid_arg "Logic.eval_lut: truth-table size mismatch";
  (* Enumerate rows compatible with the (possibly unknown) inputs. *)
  let result = ref None in
  let conflict = ref false in
  for row = 0 to Array.length truth - 1 do
    if not !conflict then begin
      let compatible = ref true in
      for i = 0 to n - 1 do
        let bit = row land (1 lsl i) <> 0 in
        match ins.(i) with
        | X -> ()
        | T -> if not bit then compatible := false
        | F -> if bit then compatible := false
      done;
      if !compatible then
        match !result with
        | None -> result := Some truth.(row)
        | Some v -> if v <> truth.(row) then conflict := true
    end
  done;
  if !conflict then X
  else match !result with Some v -> of_bool v | None -> X

let to_char = function F -> '0' | T -> '1' | X -> 'x'

let pp ppf v = Format.pp_print_char ppf (to_char v)
