(* Per-run instrumentation: counters are bumped once per run (cheap,
   always on); per-pulse trace records are emitted only when tracing. *)
let m_sim_runs = Obs.Metrics.counter "sim.runs"
let m_sim_events = Obs.Metrics.counter "sim.events_popped"
let m_sim_trans = Obs.Metrics.counter "sim.transitions"
let m_sim_viol = Obs.Metrics.counter "sim.violations"
let m_sim_glitch = Obs.Metrics.counter "sim.glitch_pulses"

type drive = Const of bool | Wave of Waveform.t

type config = { clock_ps : int; cycles : int }

type violation_kind = Setup_violation | Hold_violation

type violation = {
  v_ff : int;
  v_ff_name : string;
  v_cycle : int;
  v_kind : violation_kind;
  v_time : int;
}

type result = {
  waves : Waveform.t array;
  ff_ids : int array;
  ff_samples : Logic.t array array;
  violations : violation list;
  po_samples : (string * Logic.t array) list;
}

type ev = Set of int * Logic.t | Latch of int * int

let node_delay net id =
  let n = Netlist.node net id in
  match n.Netlist.kind with
  | Netlist.Gate _ -> (
    match n.Netlist.cell with
    | Some c -> c.Cell.delay_ps
    | None -> 0)
  | Netlist.Lut truth ->
    let rec log2 k = if 1 lsl k >= Array.length truth then k else log2 (k + 1) in
    Cell_lib.lut_delay_ps (log2 0)
  | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead -> 0

let run ?(init = fun _ -> false) ?(drive = fun _ -> Const false)
    ?(captures_from = fun _ -> 0) net config =
  if config.clock_ps <= 0 then invalid_arg "Timing_sim.run: clock must be positive";
  if config.cycles <= 0 then invalid_arg "Timing_sim.run: need at least one cycle";
  let setup = Cell_lib.dff_setup_ps
  and hold = Cell_lib.dff_hold_ps
  and clk2q = Cell_lib.dff_clk2q_ps in
  assert (clk2q >= hold);
  if config.clock_ps <= setup + hold + clk2q then
    invalid_arg "Timing_sim.run: clock period shorter than FF timing arcs";
  Obs.Metrics.incr m_sim_runs;
  let sp =
    Obs.Trace.span_begin
      ~args:
        [
          ("netlist", Cjson.Str (Netlist.name net));
          ("cycles", Cjson.Int config.cycles);
          ("clock_ps", Cjson.Int config.clock_ps);
          ("nodes", Cjson.Int (Netlist.num_nodes net));
        ]
      "sim.run"
  in
  Fun.protect ~finally:(fun () -> Obs.Trace.span_end sp) @@ fun () ->
  let events_popped = ref 0 and n_trans = ref 0 in
  let n = Netlist.num_nodes net in
  let values = Array.make n Logic.X in
  let trans : (int * Logic.t) Vec.t array = Array.init n (fun _ -> Vec.create ()) in
  let fanouts = Netlist.fanout_table net in
  let delays = Array.init n (node_delay net) in
  (* Initial settle at t = 0: three-valued topological evaluation. *)
  let drive_of = Array.make n (Const false) in
  List.iter (fun pi -> drive_of.(pi) <- drive pi) (Netlist.inputs net);
  for id = 0 to n - 1 do
    let nd = Netlist.node net id in
    match nd.Netlist.kind with
    | Netlist.Input ->
      values.(id) <-
        (match drive_of.(id) with
        | Const b -> Logic.of_bool b
        | Wave w -> Waveform.value_at w 0)
    | Netlist.Const b -> values.(id) <- Logic.of_bool b
    | Netlist.Ff -> values.(id) <- Logic.of_bool (init id)
    | Netlist.Gate _ | Netlist.Lut _ | Netlist.Dead -> ()
  done;
  List.iter
    (fun id ->
      let nd = Netlist.node net id in
      let ins = Array.map (fun f -> values.(f)) nd.Netlist.fanins in
      values.(id) <-
        (match nd.Netlist.kind with
        | Netlist.Gate fn -> Logic.eval_fn fn ins
        | Netlist.Lut truth -> Logic.eval_lut truth ins
        | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead ->
          assert false))
    (Netlist.comb_topo_order net);
  let initials = Array.copy values in
  let queue = Event_queue.create () in
  (* Stimulus transitions. *)
  List.iter
    (fun pi ->
      match drive_of.(pi) with
      | Const _ -> ()
      | Wave w ->
        List.iter
          (fun (t, v) -> Event_queue.add queue ~time:t (Set (pi, v)))
          (Waveform.transitions w))
    (Netlist.inputs net);
  (* Latch events: active edges at k * clock for k = 0..cycles, Q updates
     clk2q later.  Edge 0 launches the initial state (and in particular
     starts any KEYGEN toggle inside cycle 0); its captures are not
     recorded — recorded sample k corresponds to the edge at
     (k+1) * clock. *)
  let ff_ids = Array.of_list (Netlist.ffs net) in
  for k = 0 to config.cycles do
    Array.iter
      (fun ff ->
        Event_queue.add queue
          ~time:((k * config.clock_ps) + clk2q)
          (Latch (ff, k - 1)))
      ff_ids
  done;
  let ff_index = Hashtbl.create 16 in
  Array.iteri (fun i ff -> Hashtbl.replace ff_index ff i) ff_ids;
  let ff_samples =
    Array.map (fun _ -> Array.make config.cycles Logic.X) ff_ids
  in
  let violations = ref [] in
  let value_of_at id t =
    (* Last recorded transition of [id] at or before [t]. *)
    let v = ref initials.(id) in
    (try
       Vec.iter
         (fun (tt, vv) -> if tt <= t then v := vv else raise Exit)
         trans.(id)
     with Exit -> ());
    !v
  in
  let set_value time id v =
    if not (Logic.equal values.(id) v) then begin
      values.(id) <- v;
      incr n_trans;
      Vec.push trans.(id) (time, v);
      List.iter
        (fun (consumer, _pin) ->
          let c = Netlist.node net consumer in
          match c.Netlist.kind with
          | Netlist.Gate fn ->
            let ins = Array.map (fun f -> values.(f)) c.Netlist.fanins in
            Event_queue.add queue
              ~time:(time + delays.(consumer))
              (Set (consumer, Logic.eval_fn fn ins))
          | Netlist.Lut truth ->
            let ins = Array.map (fun f -> values.(f)) c.Netlist.fanins in
            Event_queue.add queue
              ~time:(time + delays.(consumer))
              (Set (consumer, Logic.eval_lut truth ins))
          | Netlist.Ff | Netlist.Input | Netlist.Const _ | Netlist.Dead -> ())
        fanouts.(id)
    end
  in
  let latch time ff cycle =
    (* cycle = -1 is the launching edge at t = 0: not recorded.  A
       flip-flop whose capture policy starts later holds its state through
       the early edges (synchronous-reset semantics). *)
    if cycle + 1 < captures_from ff then ()
    else
    let edge = time - clk2q in
    let d = (Netlist.node net ff).Netlist.fanins.(0) in
    let window = Vec.to_list trans.(d) in
    let offending =
      List.filter (fun (t, _) -> t >= edge - setup && t <= edge + hold) window
    in
    let sampled =
      if offending = [] then value_of_at d edge
      else begin
        if cycle >= 0 then
          List.iter
            (fun (t, _) ->
              let v_kind = if t < edge then Setup_violation else Hold_violation in
              violations :=
                {
                  v_ff = ff;
                  v_ff_name = (Netlist.node net ff).Netlist.name;
                  v_cycle = cycle;
                  v_kind;
                  v_time = t;
                }
                :: !violations)
            offending;
        Logic.X
      end
    in
    if cycle >= 0 then ff_samples.(Hashtbl.find ff_index ff).(cycle) <- sampled;
    set_value time ff sampled
  in
  let horizon = ((config.cycles + 1) * config.clock_ps) + clk2q in
  let rec pump () =
    match Event_queue.pop_min queue with
    | None -> ()
    | Some (time, _) when time > horizon -> incr events_popped
    | Some (time, Set (id, v)) ->
      incr events_popped;
      set_value time id v;
      pump ()
    | Some (time, Latch (ff, cycle)) ->
      incr events_popped;
      latch time ff cycle;
      pump ()
  in
  pump ();
  let waves =
    Array.init n (fun id ->
        Waveform.make ~initial:initials.(id) (Vec.to_list trans.(id)))
  in
  Obs.Metrics.add m_sim_events !events_popped;
  Obs.Metrics.add m_sim_trans !n_trans;
  Obs.Metrics.add m_sim_viol (List.length !violations);
  if Obs.Trace.enabled () then begin
    (* Glitch pulses per Eq. 2 on every FF data pin: any value interval
       narrower than the clock period is a capture hazard; start/stop
       are simulation picoseconds carried as attributes (the trace
       timeline itself stays wall-clock). *)
    Array.iter
      (fun ff ->
        let ffn = (Netlist.node net ff).Netlist.name in
        let d = (Netlist.node net ff).Netlist.fanins.(0) in
        List.iter
          (fun p ->
            Obs.Metrics.incr m_sim_glitch;
            Obs.Trace.instant
              ~args:
                [
                  ("ff", Cjson.Str ffn);
                  ("signal", Cjson.Str (Netlist.node net d).Netlist.name);
                  ("start_ps", Cjson.Int p.Waveform.start_ps);
                  ("stop_ps", Cjson.Int p.Waveform.stop_ps);
                  ("width_ps", Cjson.Int (p.Waveform.stop_ps - p.Waveform.start_ps));
                  ( "level",
                    Cjson.Str (String.make 1 (Logic.to_char p.Waveform.level)) );
                ]
              "sim.glitch")
          (Waveform.pulses ~max_width:(config.clock_ps - 1) waves.(d)
             ~until:horizon))
      ff_ids;
    Obs.Trace.instant
      ~args:
        [
          ("events_popped", Cjson.Int !events_popped);
          ("transitions", Cjson.Int !n_trans);
          ("violations", Cjson.Int (List.length !violations));
        ]
      "sim.stats"
  end;
  let po_samples =
    List.map
      (fun (po, driver) ->
        ( po,
          Array.init config.cycles (fun k ->
              Waveform.value_at waves.(driver) ((k + 1) * config.clock_ps)) ))
      (Netlist.outputs net)
  in
  { waves; ff_ids; ff_samples; violations = List.rev !violations; po_samples }

let wave_of result net name =
  match Netlist.find net name with
  | Some id -> result.waves.(id)
  | None -> raise Not_found
