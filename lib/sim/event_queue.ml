(* Popped-event accounting is probe-gated: one boolean load per pop when
   tracing is off. *)
let m_pops = Obs.Metrics.counter "event_queue.pops"

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = { heap : 'a entry Vec.t; mutable next_seq : int }

let create () = { heap = Vec.create (); next_seq = 0 }

let is_empty q = Vec.length q.heap = 0

let size q = Vec.length q.heap

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = Vec.get q.heap i in
  Vec.set q.heap i (Vec.get q.heap j);
  Vec.set q.heap j tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (Vec.get q.heap i) (Vec.get q.heap parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let n = Vec.length q.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && less (Vec.get q.heap l) (Vec.get q.heap !smallest) then smallest := l;
  if r < n && less (Vec.get q.heap r) (Vec.get q.heap !smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let add q ~time payload =
  if time < 0 then invalid_arg "Event_queue.add: negative time";
  Vec.push q.heap { time; seq = q.next_seq; payload };
  q.next_seq <- q.next_seq + 1;
  sift_up q (Vec.length q.heap - 1)

let pop_min q =
  if is_empty q then None
  else begin
    Obs.Probe.incr m_pops;
    let top = Vec.get q.heap 0 in
    let last = Vec.pop q.heap in
    if Vec.length q.heap > 0 then begin
      Vec.set q.heap 0 last;
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if is_empty q then None else Some (Vec.get q.heap 0).time
