(** Value-change-dump (VCD) export of timing-simulation results.

    Lets the recorded waveforms — including the glitches — be inspected in
    GTKWave or any other standard waveform viewer.  Timescale is 1 ps to
    match the simulator's unit. *)

(** [of_result net result ~signals] renders a VCD document for the named
    nets (every named net when [signals] is empty).  Unknown names raise
    [Invalid_argument]. *)
val of_result : Netlist.t -> Timing_sim.result -> signals:string list -> string

(** [write_file net result ~signals path]. *)
val write_file :
  Netlist.t -> Timing_sim.result -> signals:string list -> string -> unit
