(** Event-driven transport-delay timing simulation.

    Every gate propagates input changes to its output after its bound
    cell's pin-to-pin delay, so narrow pulses — glitches — travel through
    the netlist exactly as the paper's Sec. II describes.  All flip-flops
    share one implicit clock with active edges at [k × clock_ps] for
    k = 0..cycles — the edge at t = 0 launches the initial state (it is
    what starts a KEYGEN's toggle inside cycle 0) and is not recorded, so
    recorded sample k belongs to the edge at [(k+1) × clock_ps].  At each
    recorded edge a flip-flop latches its D value provided
    D was stable over the closed window [edge − setup, edge + hold],
    otherwise a setup or hold violation is recorded and the latch captures
    [X].  The "transmit data on the level of the glitch" scenario of
    Fig. 7(a) is a glitch that covers that whole window.

    The locked netlists produced by {!Gklock_locking} contain their GK and
    KEYGEN structures as plain cells, so glitch generation is emergent: no
    GK-specific code exists in this simulator. *)

(** How a primary input is driven. *)
type drive =
  | Const of bool
  | Wave of Waveform.t

type config = {
  clock_ps : int;  (** clock period *)
  cycles : int;    (** number of active edges simulated *)
}

type violation_kind = Setup_violation | Hold_violation

type violation = {
  v_ff : int;            (** flip-flop node id *)
  v_ff_name : string;
  v_cycle : int;         (** 0-based index of the offending edge *)
  v_kind : violation_kind;
  v_time : int;          (** time of the offending D transition *)
}

type result = {
  waves : Waveform.t array;          (** per node id *)
  ff_ids : int array;
  ff_samples : Logic.t array array;  (** ff_samples.(i).(k): FF [ff_ids.(i)] at edge k+1 *)
  violations : violation list;
  po_samples : (string * Logic.t array) list;
      (** primary outputs sampled at each active edge *)
}

(** [run ?init ?drive ?captures_from net config] simulates.  [init ff_id]
    seeds flip-flop states (default all-0); [drive pi_id] describes each
    primary input (default [Const false]).  [captures_from ff_id] is the
    first edge index (edge k sits at [k × clock_ps]) at which that
    flip-flop captures; before it the flip-flop holds its state —
    synchronous-reset semantics.  Locked designs use this to hold data
    flip-flops through cycle 0 while their free-running KEYGEN toggles
    start up, so the first real capture is already glitch-covered (see
    {!Gklock_locking.Insertion}); the default 0 captures from the launch
    edge.
    @raise Invalid_argument on a non-positive clock or cycle count. *)
val run :
  ?init:(int -> bool) ->
  ?drive:(int -> drive) ->
  ?captures_from:(int -> int) ->
  Netlist.t ->
  config ->
  result

(** [wave_of result net name] looks a recorded waveform up by node name.
    @raise Not_found for unknown names. *)
val wave_of : result -> Netlist.t -> string -> Waveform.t
