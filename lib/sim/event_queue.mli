(** Time-ordered event queue for the timing simulator.

    A binary min-heap on (time, insertion sequence): events at the same
    timestamp pop in insertion order, which keeps the transport-delay
    simulation deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

(** [add q ~time ev] schedules [ev].  @raise Invalid_argument on a negative
    time. *)
val add : 'a t -> time:int -> 'a -> unit

(** [pop_min q] removes and returns the earliest event. *)
val pop_min : 'a t -> (int * 'a) option

(** [peek_time q] is the earliest timestamp without removing anything. *)
val peek_time : 'a t -> int option
