type t = { init : Logic.t; trans : (int * Logic.t) list }

let constant v = { init = v; trans = [] }

let make ~initial transitions =
  List.iter
    (fun (t, _) -> if t < 0 then invalid_arg "Waveform.make: negative time")
    transitions;
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) transitions
  in
  (* For duplicate timestamps the last write wins. *)
  let rec last_per_time = function
    | (t1, _) :: ((t2, _) :: _ as rest) when t1 = t2 -> last_per_time rest
    | x :: rest -> x :: last_per_time rest
    | [] -> []
  in
  let deduped = last_per_time sorted in
  let _, rev =
    List.fold_left
      (fun (cur, acc) (t, v) ->
        if Logic.equal v cur then (cur, acc) else (v, (t, v) :: acc))
      (initial, []) deduped
  in
  { init = initial; trans = List.rev rev }

let initial w = w.init

let transitions w = w.trans

let value_at w t =
  let rec go cur = function
    | (tt, v) :: rest when tt <= t -> go v rest
    | _ -> cur
  in
  go w.init w.trans

let changes_in w ~from_ ~until =
  List.filter (fun (t, _) -> t >= from_ && t <= until) w.trans

let stable_in w ~from_ ~until = changes_in w ~from_ ~until = []

type pulse = { start_ps : int; stop_ps : int; level : Logic.t }

let pulses ?max_width w ~until =
  let fits width =
    match max_width with None -> true | Some m -> width <= m
  in
  (* A pulse is a value interval opened by a transition at [t1 <= until].
     It closes at the next transition — even one recorded past [until],
     so a glitch straddling the boundary keeps its true width — or, when
     no further transition was recorded, at [until] itself: a pulse still
     open at the end of the trace is reported clipped rather than
     silently dropped. *)
  let rec go acc = function
    | (t1, v) :: (((t2, _) :: _) as rest) ->
      let acc =
        if t1 <= until && fits (t2 - t1) then
          { start_ps = t1; stop_ps = t2; level = v } :: acc
        else acc
      in
      go acc rest
    | [ (t1, v) ] ->
      let acc =
        if t1 < until && fits (until - t1) then
          { start_ps = t1; stop_ps = until; level = v } :: acc
        else acc
      in
      List.rev acc
    | [] -> List.rev acc
  in
  go [] w.trans

let toggle ~t0 ~period ~start ~until =
  if period <= 0 then invalid_arg "Waveform.toggle: period must be positive";
  let rec go t v acc =
    if t > until then List.rev acc else go (t + period) (Logic.lnot v) ((t, Logic.lnot v) :: acc)
  in
  { init = start; trans = go t0 start [] }

let delay w d =
  if d < 0 then invalid_arg "Waveform.delay: negative delay";
  { w with trans = List.map (fun (t, v) -> (t + d, v)) w.trans }

let map2 f a b =
  let times =
    List.sort_uniq compare (List.map fst a.trans @ List.map fst b.trans)
  in
  let init = f a.init b.init in
  make ~initial:init
    (List.map (fun t -> (t, f (value_at a t) (value_at b t))) times)

let render ~t0 ~t1 ~step rows =
  if step <= 0 then invalid_arg "Waveform.render: step must be positive";
  let width = ((t1 - t0) / step) + 1 in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, w) ->
      Buffer.add_string buf label;
      Buffer.add_string buf (String.make (label_w - String.length label + 2) ' ');
      for i = 0 to width - 1 do
        let t = t0 + (i * step) in
        let v = value_at w t in
        let prev = if i = 0 then v else value_at w (t - step) in
        let c =
          match v with
          | Logic.T -> if Logic.equal prev Logic.F then '/' else '~'
          | Logic.F -> if Logic.equal prev Logic.T then '\\' else '_'
          | Logic.X -> 'x'
        in
        Buffer.add_char buf c
      done;
      Buffer.add_char buf '\n')
    rows;
  (* Time ruler: a tick every 10 columns. *)
  Buffer.add_string buf (String.make (label_w + 2) ' ');
  let i = ref 0 in
  while !i < width do
    let t = t0 + (!i * step) in
    let mark = Printf.sprintf "|%d" t in
    if !i + String.length mark <= width then begin
      Buffer.add_string buf mark;
      i := !i + String.length mark
    end
    else incr i;
    let pad = min (10 - String.length mark) (width - !i) in
    if pad > 0 then begin
      Buffer.add_string buf (String.make pad ' ');
      i := !i + pad
    end
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let equal a b =
  Logic.equal a.init b.init
  && List.length a.trans = List.length b.trans
  && List.for_all2
       (fun (t1, v1) (t2, v2) -> t1 = t2 && Logic.equal v1 v2)
       a.trans b.trans

let pp ppf w =
  Format.fprintf ppf "%c" (Logic.to_char w.init);
  List.iter (fun (t, v) -> Format.fprintf ppf " %d:%c" t (Logic.to_char v)) w.trans
