(** Zero-delay cycle-accurate functional simulation.

    This is the stable-logic semantics a SAT attacker reasons in: each cycle
    the combinational cloud settles instantaneously and flip-flops latch
    their D values.  Glitches do not exist at this abstraction level — the
    gap between this simulator and {!Timing_sim} is precisely the paper's
    security argument. *)

type t

(** [create ?init net] starts a simulation; [init ff_id] seeds the flip-flop
    states (default all-0). *)
val create : ?init:(int -> bool) -> Netlist.t -> t

val netlist : t -> Netlist.t

(** Current flip-flop states, by node id. *)
val state : t -> (int * bool) list

(** [step t ~inputs] evaluates one cycle with [inputs pi_id] driving the
    primary inputs, advances the flip-flops, and returns every node's
    settled value (indexed by id). *)
val step : t -> inputs:(int -> bool) -> bool array

(** [run net ~cycles ~stimulus] simulates from the all-0 state;
    [stimulus cycle pi_id] drives the inputs.  Returns the per-cycle
    primary-output values. *)
val run :
  ?init:(int -> bool) ->
  Netlist.t ->
  cycles:int ->
  stimulus:(int -> int -> bool) ->
  (string * bool) list array

(** [run_batch net ~cycles ~stimulus] simulates
    {!Netlist.Engine.word_bits} independent stimulus sequences at once,
    one per bit lane: [stimulus cycle pi_id] packs that cycle's input bit
    for every lane, [init ff_id] (default all-0) packs the initial state,
    and each returned word packs a primary output's value per lane.  One
    pass of the bit-parallel engine per cycle. *)
val run_batch :
  ?init:(int -> int) ->
  Netlist.t ->
  cycles:int ->
  stimulus:(int -> int -> int) ->
  (string * int) list array

(** [comb_outputs net ~inputs] evaluates a purely combinational netlist
    (the SAT-attack oracle).  [inputs] is consulted for [Input] nodes only;
    @raise Invalid_argument if the netlist still contains flip-flops. *)
val comb_outputs : Netlist.t -> inputs:(int -> bool) -> (string * bool) list

(** Word-parallel {!comb_outputs}: evaluates {!Netlist.Engine.word_bits}
    input patterns per call, one per bit lane. *)
val comb_outputs_batch : Netlist.t -> inputs:(int -> int) -> (string * int) list
