(** Three-valued logic: 0, 1 and unknown.

    The timing simulator needs an explicit unknown to model what a flip-flop
    latches when its setup/hold window is violated — exactly the situation a
    mistimed GK key transition produces. *)

type t = F | T | X

val of_bool : bool -> t

(** [to_bool v] is [Some b] for a determinate value. *)
val to_bool : t -> bool option

val equal : t -> t -> bool

val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t

(** [mux sel a b] is [a] when [sel = F], [b] when [sel = T]; with an unknown
    select it is the common value of [a] and [b] if they agree, else [X]. *)
val mux : t -> t -> t -> t

(** Evaluate a gate function over three-valued inputs, with the usual
    dominance rules (e.g. a 0 input forces an AND low regardless of X). *)
val eval_fn : Cell.gate_fn -> t array -> t

(** Evaluate a LUT: a determinate input vector indexes the table; any
    unknown input makes the output [X] unless every reachable row agrees. *)
val eval_lut : bool array -> t array -> t

val to_char : t -> char
val pp : Format.formatter -> t -> unit
