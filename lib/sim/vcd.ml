(* Short identifier codes: printable ASCII 33..126, then two-character
   codes — the standard scheme. *)
let code i =
  let base = 94 in
  if i < base then String.make 1 (Char.chr (33 + i))
  else
    String.make 1 (Char.chr (33 + (i / base - 1)))
    ^ String.make 1 (Char.chr (33 + (i mod base)))

let char_of = function
  | Logic.F -> '0'
  | Logic.T -> '1'
  | Logic.X -> 'x'

let of_result net result ~signals =
  let ids =
    match signals with
    | [] ->
      List.filter_map
        (fun id ->
          let nd = Netlist.node net id in
          match nd.Netlist.kind with
          | Netlist.Dead -> None
          | _ -> Some (nd.Netlist.name, id))
        (List.init (Netlist.num_nodes net) Fun.id)
    | names ->
      List.map
        (fun name ->
          match Netlist.find net name with
          | Some id -> (name, id)
          | None -> invalid_arg ("Vcd.of_result: unknown signal " ^ name))
        names
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date gklock $end\n";
  Buffer.add_string buf "$version gklock timing simulator $end\n";
  Buffer.add_string buf "$timescale 1ps $end\n";
  Printf.bprintf buf "$scope module %s $end\n" (Netlist.name net);
  List.iteri
    (fun i (name, _) ->
      Printf.bprintf buf "$var wire 1 %s %s $end\n" (code i) name)
    ids;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* initial values *)
  Buffer.add_string buf "#0\n";
  List.iteri
    (fun i (_, id) ->
      Printf.bprintf buf "%c%s\n"
        (char_of (Waveform.initial result.Timing_sim.waves.(id)))
        (code i))
    ids;
  (* merge all transitions in time order *)
  let events =
    List.concat
      (List.mapi
         (fun i (_, id) ->
           List.map
             (fun (t, v) -> (t, i, v))
             (Waveform.transitions result.Timing_sim.waves.(id)))
         ids)
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let current_time = ref (-1) in
  List.iter
    (fun (t, i, v) ->
      if t <> !current_time then begin
        Printf.bprintf buf "#%d\n" t;
        current_time := t
      end;
      Printf.bprintf buf "%c%s\n" (char_of v) (code i))
    events;
  Buffer.contents buf

let write_file net result ~signals path =
  let oc = open_out path in
  output_string oc (of_result net result ~signals);
  close_out oc
