(* Short identifier codes: printable ASCII 33..126, then two-character
   codes — the standard scheme. *)
let code i =
  let base = 94 in
  if i < base then String.make 1 (Char.chr (33 + i))
  else
    String.make 1 (Char.chr (33 + (i / base - 1)))
    ^ String.make 1 (Char.chr (33 + (i mod base)))

let char_of = function
  | Logic.F -> '0'
  | Logic.T -> '1'
  | Logic.X -> 'x'

(* $var reference names must be single whitespace-free tokens, and a
   leading '$' collides with the keyword namespace some readers use.
   Netlist_gen's adversarial shapes produce names with spaces and '$';
   map every offending character to '_' (keeping printable ASCII
   otherwise) and uniquify collisions with a numeric suffix. *)
let sanitize_names names =
  let clean name =
    let s =
      String.map
        (fun c ->
          match c with
          | ' ' | '\t' | '\n' | '\r' | '$' -> '_'
          | c when Char.code c < 0x21 || Char.code c > 0x7e -> '_'
          | c -> c)
        name
    in
    if s = "" then "_" else s
  in
  let used = Hashtbl.create 16 in
  List.map
    (fun name ->
      let base = clean name in
      let unique =
        if not (Hashtbl.mem used base) then base
        else
          let rec probe k =
            let candidate = Printf.sprintf "%s_%d" base k in
            if Hashtbl.mem used candidate then probe (k + 1) else candidate
          in
          probe 2
      in
      Hashtbl.replace used unique ();
      unique)
    names

let of_result net result ~signals =
  let ids =
    match signals with
    | [] ->
      List.filter_map
        (fun id ->
          let nd = Netlist.node net id in
          match nd.Netlist.kind with
          | Netlist.Dead -> None
          | _ -> Some (nd.Netlist.name, id))
        (List.init (Netlist.num_nodes net) Fun.id)
    | names ->
      List.map
        (fun name ->
          match Netlist.find net name with
          | Some id -> (name, id)
          | None -> invalid_arg ("Vcd.of_result: unknown signal " ^ name))
        names
  in
  let var_names = sanitize_names (List.map fst ids) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date gklock $end\n";
  Buffer.add_string buf "$version gklock timing simulator $end\n";
  Buffer.add_string buf "$timescale 1ps $end\n";
  Printf.bprintf buf "$scope module %s $end\n"
    (match sanitize_names [ Netlist.name net ] with
    | [ m ] -> m
    | _ -> assert false);
  List.iteri
    (fun i name -> Printf.bprintf buf "$var wire 1 %s %s $end\n" (code i) name)
    var_names;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* initial values *)
  Buffer.add_string buf "#0\n";
  List.iteri
    (fun i (_, id) ->
      Printf.bprintf buf "%c%s\n"
        (char_of (Waveform.initial result.Timing_sim.waves.(id)))
        (code i))
    ids;
  (* merge all transitions in time order *)
  let events =
    List.concat
      (List.mapi
         (fun i (_, id) ->
           List.map
             (fun (t, v) -> (t, i, v))
             (Waveform.transitions result.Timing_sim.waves.(id)))
         ids)
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let current_time = ref (-1) in
  List.iter
    (fun (t, i, v) ->
      if t <> !current_time then begin
        Printf.bprintf buf "#%d\n" t;
        current_time := t
      end;
      Printf.bprintf buf "%c%s\n" (char_of v) (code i))
    events;
  Buffer.contents buf

let write_file net result ~signals path =
  let oc = open_out path in
  output_string oc (of_result net result ~signals);
  close_out oc
