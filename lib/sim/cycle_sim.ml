type t = {
  net : Netlist.t;
  ff_ids : int array;
  (* dense flip-flop index: ff_slot.(node id) = position in ff_state, -1
     for every other node *)
  ff_slot : int array;
  ff_state : bool array;
}

let create ?(init = fun _ -> false) net =
  let ff_ids = Array.of_list (Netlist.ffs net) in
  let ff_slot = Array.make (max 1 (Netlist.num_nodes net)) (-1) in
  Array.iteri (fun i ff -> ff_slot.(ff) <- i) ff_ids;
  { net; ff_ids; ff_slot; ff_state = Array.map init ff_ids }

let netlist t = t.net

let state t =
  Array.to_list (Array.mapi (fun i ff -> (ff, t.ff_state.(i))) t.ff_ids)

let step t ~inputs =
  let eng = Netlist.Engine.get t.net in
  let values =
    Netlist.Engine.eval eng (fun id ->
        let s = if id < Array.length t.ff_slot then t.ff_slot.(id) else -1 in
        if s >= 0 then t.ff_state.(s) else inputs id)
  in
  Array.iteri
    (fun i ff -> t.ff_state.(i) <- values.((Netlist.node t.net ff).Netlist.fanins.(0)))
    t.ff_ids;
  values

let outputs_of net values =
  List.map (fun (po, driver) -> (po, values.(driver))) (Netlist.outputs net)

let run ?init net ~cycles ~stimulus =
  let sim = create ?init net in
  Array.init cycles (fun cycle ->
      outputs_of net (step sim ~inputs:(stimulus cycle)))

let run_batch ?(init = fun _ -> 0) net ~cycles ~stimulus =
  let eng = Netlist.Engine.get net in
  (* private scratch: run_batch may run inside a Parallel.map worker, so
     it must not share the engine-owned buffers with another domain *)
  let scratch = Netlist.Engine.create_scratch eng in
  let slot_of = Netlist.Engine.slot_of_id eng in
  let ff_ids = Array.of_list (Netlist.ffs net) in
  let ff_slot = Array.make (max 1 (Netlist.num_nodes net)) (-1) in
  Array.iteri (fun i ff -> ff_slot.(ff) <- i) ff_ids;
  (* pre-resolved slot of each flip-flop's D pin and each output driver:
     the per-cycle loop never touches node records again *)
  let ff_d_slot =
    Array.map (fun ff -> slot_of.((Netlist.node net ff).Netlist.fanins.(0))) ff_ids
  in
  let out_slots =
    List.map (fun (po, d) -> (po, slot_of.(d))) (Netlist.outputs net)
  in
  let state = Array.map init ff_ids in
  Array.init cycles (fun cycle ->
      let values =
        Netlist.Engine.eval_words_into ~scratch eng (fun id ->
            let s = ff_slot.(id) in
            if s >= 0 then state.(s) else stimulus cycle id)
      in
      Array.iteri (fun i ds -> state.(i) <- values.(ds)) ff_d_slot;
      List.map (fun (po, s) -> (po, values.(s))) out_slots)

let comb_outputs net ~inputs =
  if Netlist.ffs net <> [] then
    invalid_arg "Cycle_sim.comb_outputs: netlist has flip-flops";
  outputs_of net (Netlist.eval_comb net inputs)

let comb_outputs_batch net ~inputs =
  if Netlist.ffs net <> [] then
    invalid_arg "Cycle_sim.comb_outputs_batch: netlist has flip-flops";
  let eng = Netlist.Engine.get net in
  let scratch = Netlist.Engine.create_scratch eng in
  let values = Netlist.Engine.eval_words_into ~scratch eng inputs in
  let slot_of = Netlist.Engine.slot_of_id eng in
  List.map (fun (po, d) -> (po, values.(slot_of.(d)))) (Netlist.outputs net)
