type t = {
  net : Netlist.t;
  ff_ids : int list;
  mutable ff_state : (int * bool) list;
}

let create ?(init = fun _ -> false) net =
  let ff_ids = Netlist.ffs net in
  { net; ff_ids; ff_state = List.map (fun ff -> (ff, init ff)) ff_ids }

let netlist t = t.net

let state t = t.ff_state

let step t ~inputs =
  let values =
    Netlist.eval_comb t.net (fun id ->
        match List.assoc_opt id t.ff_state with
        | Some v -> v
        | None -> inputs id)
  in
  t.ff_state <-
    List.map
      (fun ff -> (ff, values.((Netlist.node t.net ff).Netlist.fanins.(0))))
      t.ff_ids;
  values

let outputs_of net values =
  List.map (fun (po, driver) -> (po, values.(driver))) (Netlist.outputs net)

let run ?init net ~cycles ~stimulus =
  let sim = create ?init net in
  Array.init cycles (fun cycle ->
      outputs_of net (step sim ~inputs:(stimulus cycle)))

let comb_outputs net ~inputs =
  if Netlist.ffs net <> [] then
    invalid_arg "Cycle_sim.comb_outputs: netlist has flip-flops";
  outputs_of net (Netlist.eval_comb net inputs)
