type t = {
  net : Netlist.t;
  ff_ids : int array;
  (* dense flip-flop index: ff_slot.(node id) = position in ff_state, -1
     for every other node *)
  ff_slot : int array;
  ff_state : bool array;
}

let create ?(init = fun _ -> false) net =
  let ff_ids = Array.of_list (Netlist.ffs net) in
  let ff_slot = Array.make (max 1 (Netlist.num_nodes net)) (-1) in
  Array.iteri (fun i ff -> ff_slot.(ff) <- i) ff_ids;
  { net; ff_ids; ff_slot; ff_state = Array.map init ff_ids }

let netlist t = t.net

let state t =
  Array.to_list (Array.mapi (fun i ff -> (ff, t.ff_state.(i))) t.ff_ids)

let step t ~inputs =
  let eng = Netlist.Engine.get t.net in
  let values =
    Netlist.Engine.eval eng (fun id ->
        let s = if id < Array.length t.ff_slot then t.ff_slot.(id) else -1 in
        if s >= 0 then t.ff_state.(s) else inputs id)
  in
  Array.iteri
    (fun i ff -> t.ff_state.(i) <- values.((Netlist.node t.net ff).Netlist.fanins.(0)))
    t.ff_ids;
  values

let outputs_of net values =
  List.map (fun (po, driver) -> (po, values.(driver))) (Netlist.outputs net)

let run ?init net ~cycles ~stimulus =
  let sim = create ?init net in
  Array.init cycles (fun cycle ->
      outputs_of net (step sim ~inputs:(stimulus cycle)))

let run_batch ?(init = fun _ -> 0) net ~cycles ~stimulus =
  let eng = Netlist.Engine.get net in
  let ff_ids = Array.of_list (Netlist.ffs net) in
  let ff_slot = Array.make (max 1 (Netlist.num_nodes net)) (-1) in
  Array.iteri (fun i ff -> ff_slot.(ff) <- i) ff_ids;
  let state = Array.map init ff_ids in
  Array.init cycles (fun cycle ->
      let values =
        Netlist.Engine.eval_words eng (fun id ->
            let s = ff_slot.(id) in
            if s >= 0 then state.(s) else stimulus cycle id)
      in
      Array.iteri
        (fun i ff -> state.(i) <- values.((Netlist.node net ff).Netlist.fanins.(0)))
        ff_ids;
      List.map (fun (po, d) -> (po, values.(d))) (Netlist.outputs net))

let comb_outputs net ~inputs =
  if Netlist.ffs net <> [] then
    invalid_arg "Cycle_sim.comb_outputs: netlist has flip-flops";
  outputs_of net (Netlist.eval_comb net inputs)

let comb_outputs_batch net ~inputs =
  if Netlist.ffs net <> [] then
    invalid_arg "Cycle_sim.comb_outputs_batch: netlist has flip-flops";
  let values = Netlist.Engine.eval_words (Netlist.Engine.get net) inputs in
  List.map (fun (po, d) -> (po, values.(d))) (Netlist.outputs net)
