(** Hybrid GK + XOR encryption (Sec. VI, Table II last column).

    "We insert XOR gates to the paths encrypted by GK to defend against the
    attack from BIST.  We randomly used one half of the key-inputs to
    control the XOR key-gates, and the other half is for GKs."  XOR
    key-gates land on wires inside the fanin cones of the GK-encrypted
    flip-flops, {i before} the GKs are placed (so the GK timing windows are
    computed on the final arrival times). *)

type t = {
  design : Insertion.design;      (** GK placements over the XOR-locked net *)
  xor_key_inputs : string list;
  all_key_inputs : string list;
  all_correct_key : Key.assignment;
}

(** [lock ?seed ?profile net ~clock_ps ~n_gks ~n_xors].  The combined key
    has [2*n_gks + n_xors] bits.
    @raise Invalid_argument when sites run out. *)
val lock :
  ?seed:int ->
  ?profile:Delay_synth.profile ->
  ?l_glitch_ps:int ->
  Netlist.t ->
  clock_ps:int ->
  n_gks:int ->
  n_xors:int ->
  t

(** Cell/area overhead vs the original (pre-XOR) baseline. *)
val overhead : t -> float * float
