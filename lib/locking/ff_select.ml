let groups net ~among =
  let member = Hashtbl.create 64 in
  List.iter (fun ff -> Hashtbl.replace member ff ()) among;
  Topo.group_ffs_by_cone net
  |> List.map (List.filter (Hashtbl.mem member))
  |> List.filter (fun g -> g <> [])
  |> List.sort (fun a b -> compare (List.length b) (List.length a))

let selected_count net ~among =
  match groups net ~among with [] -> 0 | g :: _ -> List.length g

let pick net ~among ~n ~seed =
  if n > List.length among then
    invalid_arg "Ff_select.pick: not enough flip-flops";
  let rng = Random.State.make [| seed; 0x4646 |] in
  let rec take acc k = function
    | _ when k = 0 -> List.rev acc
    | [] -> List.rev acc
    | g :: rest ->
      let g = Locked.pick_distinct rng (List.length g) g in
      let took = min k (List.length g) in
      let chosen = List.filteri (fun i _ -> i < took) g in
      take (List.rev_append chosen acc) (k - took) rest
  in
  take [] n (groups net ~among)
