type t = {
  design : Insertion.design;
  xor_key_inputs : string list;
  all_key_inputs : string list;
  all_correct_key : Key.assignment;
}

let lock ?(seed = 1) ?(profile = `Standard) ?(l_glitch_ps = 1000) net ~clock_ps
    ~n_gks ~n_xors =
  let rng = Random.State.make [| seed; 0x4859 |] in
  let baseline = Stats.of_netlist net in
  (* Choose the GK flip-flops first so the XOR key-gates can target their
     D cones. *)
  let sites = Insertion.available_sites net ~clock_ps ~l_glitch_ps in
  if List.length sites < n_gks then
    invalid_arg "Hybrid.lock: not enough GK sites";
  let gk_ffs =
    Ff_select.pick net
      ~among:(List.map (fun s -> s.Insertion.si_ff) sites)
      ~n:n_gks ~seed
  in
  (* Candidate XOR wires: shallow gates in the chosen flip-flops' fanin
     cones, so the extra XOR delay rarely pushes an endpoint out of its
     window. *)
  let levels = Topo.levels net in
  let cone_wires =
    List.concat_map
      (fun ff ->
        Topo.fanin_cone net (Netlist.node net ff).Netlist.fanins.(0)
        |> List.filter (fun id ->
               Netlist.is_comb (Netlist.node net id) && levels.(id) <= 3))
      gk_ffs
    |> List.sort_uniq compare
  in
  let cone_wires =
    if List.length cone_wires >= n_xors then cone_wires
    else
      (* Fall back to any shallow wire when the cones are too small. *)
      List.sort_uniq compare
        (cone_wires
        @ List.filter
            (fun id -> Netlist.is_comb (Netlist.node net id) && levels.(id) <= 3)
            (Locked.gate_wires net))
  in
  let wires = Locked.pick_distinct rng n_xors cone_wires in
  let xor_locked = Xor_lock.lock_on ~seed ~name_prefix:"hxk" net ~wires in
  (* Now place the GKs on the XOR-locked netlist, pinning the same FFs by
     name through a fresh site computation. *)
  let design =
    Insertion.lock ~seed ~profile ~l_glitch_ps ~prefer_ff4_groups:true
      xor_locked.Locked.net ~clock_ps ~n_gks
  in
  let design = { design with Insertion.baseline } in
  {
    design;
    xor_key_inputs = xor_locked.Locked.key_inputs;
    all_key_inputs = design.Insertion.key_inputs @ xor_locked.Locked.key_inputs;
    all_correct_key =
      design.Insertion.correct_key @ xor_locked.Locked.correct_key;
  }

let overhead t = Insertion.overhead t.design
