(** GK insertion: site feasibility (Table I) and full encryption
    (Table II).

    A flip-flop qualifies as a GK site when, at the design's own clock
    period (the paper keeps the original period, so the encryption has no
    performance overhead), a glitch of the target length can be generated
    and triggered legally: Eq. (3) holds at the endpoint, the on-level
    trigger window of Eq. (5) is non-empty, and the trigger is late enough
    for a KEYGEN to produce it (clk-to-Q plus two MUX levels).

    Encryption follows the paper's Sec. VI setup: every inserted GK
    transmits the data {i on the level} of a 1 ns glitch (the strictest
    scenario), uses the Fig. 3(a) variant (stable behaviour: inverter), and
    gets a private KEYGEN contributing two key-inputs.  One ADB branch is
    timed inside the legal window (the correct key selects it); the other
    lands its transition on the capture edge, so the three wrong keys
    yield either a stable inversion (constants) or a setup/hold violation
    (wrong branch). *)

type site_info = {
  si_ff : int;
  si_ff_name : string;
  si_site : Gk_timing.site;
  si_window : int * int;  (** Eq. (5) window, already KEYGEN-reachable *)
}

(** [available_sites net ~clock_ps ~l_glitch_ps] — Table I's "Ava. FF". *)
val available_sites :
  Netlist.t -> clock_ps:int -> l_glitch_ps:int -> site_info list

type placement = {
  p_ff : int;
  p_gk : Gk.instance;
  p_keygen : Keygen.instance;
  p_k1_name : string;
  p_k2_name : string;
  p_correct : bool * bool;      (** correct (k1, k2) *)
  p_t_trigger : int;            (** correct-branch trigger time, ps *)
  p_glitch : int * int;         (** intended glitch interval within a cycle *)
}

type design = {
  lnet : Netlist.t;
  source : string;              (** baseline netlist name *)
  clock_ps : int;
  placements : placement list;
  key_inputs : string list;     (** all key-input names, GKs first *)
  correct_key : Key.assignment;
  baseline : Stats.t;
  l_glitch_ps : int;
}

(** [lock ?seed ?profile ?l_glitch_ps ?prefer_ff4_groups net ~clock_ps
    ~n_gks] encrypts [n_gks] flip-flops.  Sites come from
    {!available_sites}; with [prefer_ff4_groups] (default true) they are
    drawn from the largest same-PO-cone groups per [4].  Key inputs are
    named [gk<i>_k1]/[gk<i>_k2].

    Flip-flops in [exclude] are never selected (the flow's retry loop
    drops endpoints whose violations turned out true).
    @raise Invalid_argument when fewer than [n_gks] sites are available —
    the "-" entries of Table II. *)
val lock :
  ?seed:int ->
  ?profile:Delay_synth.profile ->
  ?l_glitch_ps:int ->
  ?prefer_ff4_groups:bool ->
  ?exclude:int list ->
  Netlist.t ->
  clock_ps:int ->
  n_gks:int ->
  design

(** [overhead design] is Table II's (cell %, area %) for this design. *)
val overhead : design -> float * float

(** [intended_glitches design] is the per-FF intended glitch interval —
    feed to {!Timing_report.discriminate} to separate true from false
    violations. *)
val intended_glitches : design -> int -> (int * int) option

(** [strip_keygens design] is the attacker's preprocessing from Sec. VI:
    "We removed the KEYGEN of each GK and treated its key-input as the
    key-input of the design."  Each GK's key net becomes a fresh primary
    input [gkkey<i>]; KEYGEN logic is swept.  Returns the netlist (still
    sequential) and the new key-input names in placement order. *)
val strip_keygens : design -> Netlist.t * string list

(** [capture_policy design] is the per-FF first-capture-edge map for
    {!Timing_sim.run}: KEYGEN toggle flip-flops are free-running (capture
    from edge 0), every data flip-flop holds through cycle 0 (synchronous
    reset) so that its first capture, at edge 1, is already covered by a
    glitch.  Compare against a baseline simulated with
    [~captures_from:(fun _ -> 1)]. *)
val capture_policy : design -> int -> int

(** [timing_drive design key] produces the {!Timing_sim} drive function
    realising a key assignment on the locked netlist's inputs: key bits
    are constants and every other input gets [other] (default: constant
    false). *)
val timing_drive :
  ?other:(int -> Timing_sim.drive) ->
  design ->
  Key.assignment ->
  int ->
  Timing_sim.drive
