(** MUX-based logic locking.

    Each key-gate is a 2:1 multiplexer whose key bit selects between the
    true signal and a decoy signal sampled elsewhere in the circuit.  Used
    as a second conventional baseline, and as the structure the enhanced
    removal attack (Sec. V-D) substitutes for located security blocks. *)

(** [lock ?seed net ~n_keys] inserts [n_keys] MUX key-gates.  Key inputs
    are named [mk0], [mk1], ...; decoys are drawn from wires outside the
    target's own fanout cone (no combinational cycles).  Each target/decoy
    pair is checked by random simulation to actually corrupt a primary
    output when the key bit is flipped — unobservable targets (masked or
    redundant wires) are skipped while observable candidates remain, so a
    wrong key is not silently transparent. *)
val lock : ?seed:int -> Netlist.t -> n_keys:int -> Locked.t
