(** SARLock (Yasin et al. [14]).

    A point-function comparator flips one primary output exactly when the
    applied primary-input pattern equals the applied (wrong) key, and a
    mask built from the correct key ensures the correct key never flips
    anything.  Consequence: every DIP the SAT attack finds eliminates only
    a single wrong key, so the attack needs ~2^n iterations — but the
    comparator's flip signal is 1 for a 2^-n fraction of the space, the
    probability skew the removal attack of [15,16] homes in on. *)

(** [lock ?seed net ~n_keys] attaches a SARLock block over [n_keys]
    primary inputs (requires at least that many PIs) and flips the first
    primary output.  Key inputs are named [sk0], ... *)
val lock : ?seed:int -> Netlist.t -> n_keys:int -> Locked.t

(** Node names of the security structure (comparator / mask / flip gates),
    for removal-attack evaluation. *)
val structure_names : n_keys:int -> string list
