(** The Tunable Delay Key-gate baseline (Xie et al. [12], the paper's
    Fig. 2).

    Each TDK couples a functional key-gate (XOR, key [k1]) with a Tunable
    Delay Buffer on a flip-flop's D path, modelled as a MUX (key [k2])
    choosing between the direct path and a delay chain sized past the
    endpoint's slack.  The wrong [k2] therefore violates setup timing;
    the correct one meets it.

    The paper's criticism, which {!Removal_attack.strip_tdbs} reproduces:
    the TDB is {i removable} — delete it, re-synthesize, and the leftover
    is plain XOR locking that the SAT attack cracks. *)

type site = {
  ff : int;
  func_key : string;          (** k1 name *)
  delay_key : string;         (** k2 name *)
  tdb_mux : int;              (** the tunable-delay MUX node *)
  tdb_nodes : int list;       (** delay-chain nodes *)
  tdb_delay_ps : int;
}

type t = {
  locked : Locked.t;
  sites : site list;
  clock_ps : int;
}

(** [lock ?seed ?profile net ~clock_ps ~n_sites] inserts [n_sites] TDKs on
    the flip-flops with the largest setup slack.  Key inputs are
    [tdkf0]/[tdkd0], ...; correct delay keys select the direct path. *)
val lock :
  ?seed:int ->
  ?profile:Delay_synth.profile ->
  Netlist.t ->
  clock_ps:int ->
  n_sites:int ->
  t
