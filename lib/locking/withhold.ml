type absorbed = {
  lut : int;
  lut_inputs : int list;
  hidden_nodes : int list;
}

let candidate_functions k = 2.0 ** (2.0 ** float_of_int k)

let absorb net ~root ~interior =
  let cone = root :: List.filter (fun id -> id <> root) interior in
  List.iter
    (fun id ->
      if not (Netlist.is_comb (Netlist.node net id)) then
        invalid_arg "Withhold.absorb: cone must be combinational")
    cone;
  let in_cone = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace in_cone id ()) cone;
  (* Interior nodes must be private to the cone. *)
  let fanouts = Netlist.fanout_table net in
  List.iter
    (fun id ->
      if id <> root then
        List.iter
          (fun (c, _) ->
            if not (Hashtbl.mem in_cone c) then
              invalid_arg
                (Printf.sprintf
                   "Withhold.absorb: node %s escapes the cone"
                   (Netlist.node net id).Netlist.name))
          fanouts.(id))
    cone;
  (* Boundary: fanins of cone nodes that are outside the cone. *)
  let boundary = ref [] in
  List.iter
    (fun id ->
      Array.iter
        (fun f ->
          if (not (Hashtbl.mem in_cone f)) && not (List.mem f !boundary) then
            boundary := f :: !boundary)
        (Netlist.node net id).Netlist.fanins)
    cone;
  let leaves = List.rev !boundary in
  let k = List.length leaves in
  if k = 0 || k > 6 then
    invalid_arg (Printf.sprintf "Withhold.absorb: boundary of %d inputs" k);
  (* Tabulate the cone's stable function over the boundary. *)
  let truth =
    Array.init (1 lsl k) (fun row ->
        let values = Hashtbl.create 16 in
        List.iteri
          (fun i leaf -> Hashtbl.replace values leaf (row land (1 lsl i) <> 0))
          leaves;
        let rec eval id =
          match Hashtbl.find_opt values id with
          | Some v -> v
          | None ->
            let nd = Netlist.node net id in
            let v =
              match nd.Netlist.kind with
              | Netlist.Gate fn -> Cell.eval fn (Array.map eval nd.Netlist.fanins)
              | Netlist.Lut tt ->
                let idx = ref 0 in
                Array.iteri
                  (fun i f -> if eval f then idx := !idx lor (1 lsl i))
                  nd.Netlist.fanins;
                tt.(!idx)
              | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead ->
                invalid_arg "Withhold.absorb: unreachable boundary"
            in
            Hashtbl.replace values id v;
            v
        in
        eval root)
  in
  let lut =
    Netlist.add_lut net
      ~name:((Netlist.node net root).Netlist.name ^ "_lut")
      ~truth (Array.of_list leaves)
  in
  Netlist.replace_uses net ~old_id:root ~new_id:lut;
  List.iter (fun id -> Netlist.kill net id) cone;
  { lut; lut_inputs = leaves; hidden_nodes = cone }
