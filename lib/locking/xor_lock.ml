let lock_on ?(seed = 1) ?(name_prefix = "xk") net ~wires =
  let rng = Random.State.make [| seed; 0x584f |] in
  let net = Netlist.copy net in
  let keyed =
    List.mapi
      (fun i target ->
        let key_name = Printf.sprintf "%s%d" name_prefix i in
        let bit = Random.State.bool rng in
        let k = Netlist.add_input net key_name in
        (* XNOR passes with bit=1, XOR with bit=0. *)
        let fn = if bit then Cell.Xnor else Cell.Xor in
        let _g =
          Locked.splice_all_fanouts net ~target ~build:(fun () ->
              Netlist.add_gate net
                ~name:(Printf.sprintf "%s%d_gate" name_prefix i)
                fn [| target; k |])
        in
        (key_name, bit))
      wires
  in
  {
    Locked.net;
    scheme = "xor";
    key_inputs = List.map fst keyed;
    correct_key = keyed;
  }

let lock ?(seed = 1) net ~n_keys =
  let rng = Random.State.make [| seed; 0x584e |] in
  let candidates =
    List.filter
      (fun id -> Netlist.is_comb (Netlist.node net id))
      (Locked.gate_wires net)
  in
  let wires = Locked.pick_distinct rng n_keys candidates in
  lock_on ~seed net ~wires
