(* Topological evaluation with one node forced to the complement of its
   fault-free value. *)
let eval_with_flip net order values_ref flipped =
  let values = Array.copy values_ref in
  values.(flipped) <- not values.(flipped);
  List.iter
    (fun id ->
      if id <> flipped then begin
        let nd = Netlist.node net id in
        let ins = Array.map (fun f -> values.(f)) nd.Netlist.fanins in
        match nd.Netlist.kind with
        | Netlist.Gate fn -> values.(id) <- Cell.eval fn ins
        | Netlist.Lut truth ->
          let idx = ref 0 in
          Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) ins;
          values.(id) <- truth.(!idx)
        | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead -> ()
      end)
    order;
  values

let fault_impact ?(samples = 64) ?(seed = 13) net =
  let rng = Random.State.make [| seed; 0x464c |] in
  let n = Netlist.num_nodes net in
  let impact = Array.make n 0 in
  let order = Netlist.comb_topo_order net in
  let candidates = List.filter (fun id -> Netlist.is_comb (Netlist.node net id)) order in
  let pos = Netlist.outputs net in
  let sources =
    List.filter
      (fun id ->
        match (Netlist.node net id).Netlist.kind with
        | Netlist.Input | Netlist.Ff -> true
        | Netlist.Const _ | Netlist.Gate _ | Netlist.Lut _ | Netlist.Dead ->
          false)
      (List.init n Fun.id)
  in
  for _ = 1 to samples do
    let draw = Hashtbl.create 32 in
    List.iter (fun s -> Hashtbl.replace draw s (Random.State.bool rng)) sources;
    let base = Netlist.eval_comb net (Hashtbl.find draw) in
    (* restrict the per-wire re-evaluation to the wire's fanout cone by
       simply re-running the (small) circuits; netlists here are modest *)
    List.iter
      (fun w ->
        let flipped = eval_with_flip net order base w in
        List.iter
          (fun (_, d) -> if base.(d) <> flipped.(d) then impact.(w) <- impact.(w) + 1)
          pos)
      candidates
  done;
  Array.map (fun c -> float_of_int c /. float_of_int samples) impact

let rank_wires ?samples ?seed net =
  let impact = fault_impact ?samples ?seed net in
  List.filter
    (fun id -> Netlist.is_comb (Netlist.node net id))
    (List.init (Netlist.num_nodes net) Fun.id)
  |> List.map (fun id -> (id, impact.(id)))
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let lock ?(seed = 1) ?samples net ~n_keys =
  let ranked = rank_wires ?samples ~seed net in
  if List.length ranked < n_keys then
    invalid_arg "Fault_lock.lock: not enough candidate wires";
  let wires =
    List.filteri (fun i _ -> i < n_keys) ranked |> List.map fst
  in
  let lk = Xor_lock.lock_on ~seed ~name_prefix:"fk" net ~wires in
  { lk with Locked.scheme = "fault-xor" }
