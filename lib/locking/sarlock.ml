let and_tree net ~prefix ids =
  match ids with
  | [] -> invalid_arg "Sarlock.and_tree: empty"
  | [ x ] -> x
  | _ ->
    let rec build i = function
      | [ x ] -> x
      | xs ->
        let rec pair acc j = function
          | a :: b :: rest ->
            let g =
              Netlist.add_gate net
                ~name:(Printf.sprintf "%s_and%d_%d" prefix i j)
                Cell.And [| a; b |]
            in
            pair (g :: acc) (j + 1) rest
          | [ a ] -> pair (a :: acc) j []
          | [] -> List.rev acc
        in
        build (i + 1) (pair [] 0 xs)
    in
    build 0 ids

let lock ?(seed = 1) net ~n_keys =
  let rng = Random.State.make [| seed; 0x5352 |] in
  let net = Netlist.copy net in
  let pis = Netlist.inputs net in
  if List.length pis < n_keys then
    invalid_arg "Sarlock.lock: not enough primary inputs";
  if n_keys < 1 then invalid_arg "Sarlock.lock: need at least one key bit";
  let xs = Locked.pick_distinct rng n_keys pis in
  let correct = List.init n_keys (fun _ -> Random.State.bool rng) in
  let keys =
    List.init n_keys (fun i ->
        (Printf.sprintf "sk%d" i, Netlist.add_input net (Printf.sprintf "sk%d" i)))
  in
  (* eq = AND_i (x_i XNOR k_i): 1 iff the input pattern equals the key. *)
  let cmps =
    List.mapi
      (fun i (x, (_, k)) ->
        Netlist.add_gate net
          ~name:(Printf.sprintf "sar_cmp%d" i)
          Cell.Xnor [| x; k |])
      (List.combine xs keys)
  in
  let eq = and_tree net ~prefix:"sar_eq" cmps in
  (* maskeq = AND_i (k_i XNOR correct_i): 1 iff the correct key is applied. *)
  let masks =
    List.mapi
      (fun i ((_, k), c) ->
        let cn = Netlist.add_const net c in
        Netlist.add_gate net
          ~name:(Printf.sprintf "sar_mask%d" i)
          Cell.Xnor [| k; cn |])
      (List.combine keys correct)
  in
  let maskeq = and_tree net ~prefix:"sar_maskeq" masks in
  let not_correct =
    Netlist.add_gate net ~name:"sar_notcorrect" Cell.Not [| maskeq |]
  in
  let flip =
    Netlist.add_gate net ~name:"sar_flip" Cell.And [| eq; not_correct |]
  in
  (match Netlist.outputs net with
  | [] -> invalid_arg "Sarlock.lock: netlist has no outputs"
  | (po, driver) :: _ ->
    let g = Netlist.add_gate net ~name:"sar_out" Cell.Xor [| driver; flip |] in
    Netlist.set_output_driver net po g);
  {
    Locked.net;
    scheme = "sarlock";
    key_inputs = List.map fst keys;
    correct_key = List.combine (List.map fst keys) correct;
  }

let structure_names ~n_keys =
  let base = [ "sar_notcorrect"; "sar_flip"; "sar_out" ] in
  let per_bit =
    List.concat_map
      (fun i -> [ Printf.sprintf "sar_cmp%d" i; Printf.sprintf "sar_mask%d" i ])
      (List.init n_keys Fun.id)
  in
  base @ per_bit
