type assignment = (string * bool) list

let random ~seed names =
  let rng = Random.State.make [| seed; 0x4b45 |] in
  List.map (fun n -> (n, Random.State.bool rng)) names

let flip a name =
  if not (List.mem_assoc name a) then raise Not_found;
  List.map (fun (n, b) -> if n = name then (n, not b) else (n, b)) a

let random_wrong ~seed correct =
  match correct with
  | [] -> invalid_arg "Key.random_wrong: empty key"
  | _ ->
    let rng = Random.State.make [| seed; 0x77 |] in
    let names = List.map fst correct in
    let rec draw () =
      let a = List.map (fun n -> (n, Random.State.bool rng)) names in
      if List.for_all2 (fun (_, x) (_, y) -> x = y) a correct then draw ()
      else a
    in
    draw ()

let to_string a =
  String.concat " " (List.map (fun (n, b) -> Printf.sprintf "%s=%d" n (Bool.to_int b)) a)

let enumerate names =
  let n = List.length names in
  if n > 20 then invalid_arg "Key.enumerate: too many key bits";
  List.init (1 lsl n) (fun v ->
      List.mapi (fun i name -> (name, v land (1 lsl i) <> 0)) names)

let equal a b =
  List.length a = List.length b
  && List.for_all
       (fun (n, v) -> match List.assoc_opt n b with Some w -> v = w | None -> false)
       a
