(** Design withholding (Sec. V-D, Fig. 10).

    Withholding [5,6] stores the truth table of a subcircuit in a LUT whose
    contents are not part of the distributed netlist.  Combined with a GK —
    e.g. absorbing the GK together with a reused AND gate from the
    encrypted path — it hides the GK's structure, so the enhanced removal
    attack can no longer pattern-match it and must consider every function
    the LUT could hold. *)

type absorbed = {
  lut : int;                (** the new LUT node *)
  lut_inputs : int list;    (** boundary nodes feeding the LUT *)
  hidden_nodes : int list;  (** nodes replaced by the LUT *)
}

(** [absorb net ~root ~interior] replaces the cone rooted at [root] whose
    internal nodes are exactly [interior ∪ {root}] by a single LUT over
    the cone's boundary fanins (at most 6).  The stable-logic function is
    tabulated — which is precisely the attacker-visible view; the glitch
    behaviour is what withholding hides.

    @raise Invalid_argument if an interior node also feeds logic outside
    the cone, if the boundary exceeds 6 inputs, or if the cone is not
    combinational. *)
val absorb : Netlist.t -> root:int -> interior:int list -> absorbed

(** Attacker search space for a withheld [k]-input LUT: [2^(2^k)] candidate
    functions, as a float (Sec. V-D: "the possible combinations of the
    encrypted subcircuit even increase drastically"). *)
val candidate_functions : int -> float
