(* Combinational forward-reachability from one node: any node in this set
   would create a cycle if used as the decoy for [from_]. *)
let reachable_from net from_ =
  let seen = Array.make (Netlist.num_nodes net) false in
  let fanouts = Netlist.fanout_table net in
  let rec go id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter
        (fun (c, _) ->
          match (Netlist.node net c).Netlist.kind with
          | Netlist.Ff -> () (* a through-FF path is not combinational *)
          | Netlist.Gate _ | Netlist.Lut _ -> go c
          | Netlist.Input | Netlist.Const _ | Netlist.Dead -> ())
        fanouts.(id)
    end
  in
  go from_;
  seen

let lock ?(seed = 1) net ~n_keys =
  let rng = Random.State.make [| seed; 0x4d58 |] in
  let net = Netlist.copy net in
  let comb =
    List.filter
      (fun id -> Netlist.is_comb (Netlist.node net id))
      (Locked.gate_wires net)
  in
  let targets = Locked.pick_distinct rng n_keys comb in
  let keyed =
    List.mapi
      (fun i target ->
        let key_name = Printf.sprintf "mk%d" i in
        let k = Netlist.add_input net key_name in
        let blocked = reachable_from net target in
        let decoys = List.filter (fun d -> not blocked.(d)) comb in
        let decoy =
          match decoys with
          | [] -> target (* degenerate circuit; MUX becomes transparent *)
          | ds -> List.nth ds (Random.State.int rng (List.length ds))
        in
        let bit = Random.State.bool rng in
        (* MUX(sel; a; b) = sel ? b : a — put the true wire where the
           correct bit routes it. *)
        let a, b = if bit then (decoy, target) else (target, decoy) in
        let _g =
          Locked.splice_all_fanouts net ~target ~build:(fun () ->
              Netlist.add_gate net
                ~name:(Printf.sprintf "mk%d_gate" i)
                Cell.Mux [| k; a; b |])
        in
        (key_name, bit))
      targets
  in
  {
    Locked.net;
    scheme = "mux";
    key_inputs = List.map fst keyed;
    correct_key = keyed;
  }
