(* Combinational forward-reachability from one node: any node in this set
   would create a cycle if used as the decoy for [from_]. *)
let reachable_from net from_ =
  let seen = Array.make (Netlist.num_nodes net) false in
  let fanouts = Netlist.fanout_table net in
  let rec go id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter
        (fun (c, _) ->
          match (Netlist.node net c).Netlist.kind with
          | Netlist.Ff -> () (* a through-FF path is not combinational *)
          | Netlist.Gate _ | Netlist.Lut _ -> go c
          | Netlist.Input | Netlist.Const _ | Netlist.Dead -> ())
        fanouts.(id)
    end
  in
  go from_;
  seen

(* Re-evaluate [net] with [target]'s consumers seeing [value] instead of the
   fault-free value — the functional effect of a mis-keyed MUX, before it is
   inserted. *)
let eval_with_subst net order base ~target ~value =
  let values = Array.copy base in
  values.(target) <- value;
  List.iter
    (fun id ->
      if id <> target then begin
        let nd = Netlist.node net id in
        let ins = Array.map (fun f -> values.(f)) nd.Netlist.fanins in
        match nd.Netlist.kind with
        | Netlist.Gate fn -> values.(id) <- Cell.eval fn ins
        | Netlist.Lut truth ->
          let idx = ref 0 in
          Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) ins;
          values.(id) <- truth.(!idx)
        | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead -> ()
      end)
    order;
  values

(* Would routing [decoy] into [target]'s fanouts corrupt at least one primary
   output on a sampled vector?  [fixed] pins the key inputs of already
   inserted key-gates to their correct bits so those stay transparent; all
   other sources draw random values.  A pair that never corrupts is useless
   as a key-gate: the flipped key bit would be functionally unobservable. *)
let corrupts ?(samples = 32) ~rng ~fixed net ~target ~decoy =
  let order = Netlist.comb_topo_order net in
  let pos = Netlist.outputs net in
  let srcs = Netlist.Engine.sources (Netlist.Engine.get net) in
  let draw = Hashtbl.create 32 in
  let exception Found in
  try
    for _ = 1 to samples do
      Array.iter
        (fun s ->
          Hashtbl.replace draw s
            (match Hashtbl.find_opt fixed s with
            | Some b -> b
            | None -> Random.State.bool rng))
        srcs;
      let base = Netlist.eval_comb net (Hashtbl.find draw) in
      if base.(target) <> base.(decoy) then begin
        let sub = eval_with_subst net order base ~target ~value:base.(decoy) in
        if List.exists (fun (_, d) -> base.(d) <> sub.(d)) pos then raise Found
      end
    done;
    false
  with Found -> true

let max_decoy_tries = 8

let lock ?(seed = 1) net ~n_keys =
  let rng = Random.State.make [| seed; 0x4d58 |] in
  let net = Netlist.copy net in
  let comb =
    List.filter
      (fun id -> Netlist.is_comb (Netlist.node net id))
      (Locked.gate_wires net)
  in
  if List.length comb < n_keys then
    invalid_arg "Mux_lock.lock: not enough candidate wires";
  (* Candidate targets in random order; each key-gate consumes the first
     target for which some decoy demonstrably corrupts an output. *)
  let candidates = ref (Locked.pick_distinct rng (List.length comb) comb) in
  let fixed = Hashtbl.create 8 in
  let pick_pair () =
    let decoys_of target =
      let blocked = reachable_from net target in
      List.filter (fun d -> not blocked.(d)) comb
    in
    let rec scan tried = function
      | [] -> (
        (* No sampled-observable pair anywhere (heavily redundant circuit):
           fall back to the first untried target with an arbitrary decoy so
           the lock still has [n_keys] key inputs. *)
        match List.rev tried with
        | [] -> assert false (* length checked above *)
        | target :: rest ->
          candidates := rest;
          let decoy =
            match decoys_of target with
            | [] -> target (* degenerate circuit; MUX becomes transparent *)
            | ds -> List.nth ds (Random.State.int rng (List.length ds))
          in
          (target, decoy))
      | target :: rest -> (
        let ds =
          match decoys_of target with
          | [] -> []
          | ds -> Locked.pick_distinct rng (List.length ds) ds
        in
        let rec first_good k = function
          | d :: tl ->
            if corrupts ~rng ~fixed net ~target ~decoy:d then Some d
            else if k + 1 >= max_decoy_tries then None
            else first_good (k + 1) tl
          | [] -> None
        in
        match first_good 0 ds with
        | Some decoy ->
          candidates := List.rev_append tried rest;
          (target, decoy)
        | None -> scan (target :: tried) rest)
    in
    scan [] !candidates
  in
  let keyed =
    List.init n_keys (fun i ->
        let target, decoy = pick_pair () in
        let key_name = Printf.sprintf "mk%d" i in
        let k = Netlist.add_input net key_name in
        let bit = Random.State.bool rng in
        Hashtbl.replace fixed k bit;
        (* MUX(sel; a; b) = sel ? b : a — put the true wire where the
           correct bit routes it. *)
        let a, b = if bit then (decoy, target) else (target, decoy) in
        let _g =
          Locked.splice_all_fanouts net ~target ~build:(fun () ->
              Netlist.add_gate net
                ~name:(Printf.sprintf "mk%d_gate" i)
                Cell.Mux [| k; a; b |])
        in
        (key_name, bit))
  in
  {
    Locked.net;
    scheme = "mux";
    key_inputs = List.map fst keyed;
    correct_key = keyed;
  }
