type t = {
  net : Netlist.t;
  scheme : string;
  key_inputs : string list;
  correct_key : Key.assignment;
}

let key_pi_ids t =
  List.map
    (fun name ->
      match Netlist.find t.net name with
      | Some id -> id
      | None -> failwith ("Locked.key_pi_ids: missing key input " ^ name))
    t.key_inputs

let with_key_fixed t key =
  let net = Netlist.copy t.net in
  List.iter
    (fun name ->
      match (Netlist.find net name, List.assoc_opt name key) with
      | Some id, Some b ->
        let c = Netlist.add_const net b in
        Netlist.replace_uses net ~old_id:id ~new_id:c
      | Some _, None -> invalid_arg ("Locked.with_key_fixed: key misses " ^ name)
      | None, _ -> failwith ("Locked.with_key_fixed: missing key input " ^ name))
    t.key_inputs;
  net

let splice_all_fanouts net ~target ~build =
  let fanouts = (Netlist.fanout_table net).(target) in
  let pos =
    List.filter_map
      (fun (po, d) -> if d = target then Some po else None)
      (Netlist.outputs net)
  in
  (* When the target node carries a primary-output name, the splice
     would leave OUTPUT(po) driven by the new gate while a node named
     [po] still exists — two definitions of the same wire once printed
     as .bench.  Move the target to a fresh internal name first. *)
  let tname = (Netlist.node net target).Netlist.name in
  if List.mem tname pos then begin
    let rec fresh i =
      let n = Printf.sprintf "%s_pre%s" tname
          (if i = 0 then "" else string_of_int i) in
      match Netlist.rename net target n with
      | () -> ()
      | exception Invalid_argument _ -> fresh (i + 1)
    in
    fresh 0
  end;
  let g = build () in
  List.iter
    (fun (consumer, pin) ->
      if consumer <> g then Netlist.set_fanin net ~node_id:consumer ~pin ~driver:g)
    fanouts;
  List.iter (fun po -> Netlist.set_output_driver net po g) pos;
  g

let gate_wires net =
  List.filter
    (fun id ->
      match (Netlist.node net id).Netlist.kind with
      | Netlist.Gate _ | Netlist.Lut _ | Netlist.Ff -> true
      | Netlist.Input | Netlist.Const _ | Netlist.Dead -> false)
    (List.init (Netlist.num_nodes net) Fun.id)

let pick_distinct rng k xs =
  let n = List.length xs in
  if k > n then invalid_arg "Locked.pick_distinct: not enough candidates";
  let arr = Array.of_list xs in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 k)
