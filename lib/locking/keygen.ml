type instance = {
  kg_name : string;
  k1 : int;
  k2 : int;
  key_out : int;
  toggle_ff : int;
  adb_da_ps : int;
  adb_db_ps : int;
  mux_levels_ps : int;
  nodes : int list;
}

let mux_delay () = (Cell_lib.bind Cell.Mux 3).Cell.delay_ps

let trigger_time_a_ps i = Cell_lib.dff_clk2q_ps + i.adb_da_ps + i.mux_levels_ps
let trigger_time_b_ps i = Cell_lib.dff_clk2q_ps + i.adb_db_ps + i.mux_levels_ps

let chain_target_for ~t_trigger_ps =
  let fixed = Cell_lib.dff_clk2q_ps + (2 * mux_delay ()) in
  if t_trigger_ps < fixed then None else Some (t_trigger_ps - fixed)

type selection = Sel_const0 | Sel_delay_a | Sel_delay_b | Sel_const1

let selection_of ~k1 ~k2 =
  match (k1, k2) with
  | false, false -> Sel_const0
  | false, true -> Sel_delay_a
  | true, false -> Sel_delay_b
  | true, true -> Sel_const1

let key_for = function
  | Sel_const0 -> (false, false)
  | Sel_delay_a -> (false, true)
  | Sel_delay_b -> (true, false)
  | Sel_const1 -> (true, true)

let insert net ?(profile = `Standard) ~name ~k1 ~k2 ~adb_da_ps ~adb_db_ps () =
  let added = ref [] in
  let track id =
    added := id :: !added;
    id
  in
  (* Toggle flip-flop: D = NOT Q, one transition per cycle. *)
  let placeholder = Netlist.add_const net false in
  let ff = track (Netlist.add_ff net ~name:(name ^ "_tff") placeholder) in
  let inv = track (Netlist.add_gate net ~name:(name ^ "_tinv") Cell.Not [| ff |]) in
  Netlist.set_fanin net ~node_id:ff ~pin:0 ~driver:inv;
  let chain tag target =
    let last, achieved =
      Delay_synth.chain net profile ~from_:ff ~target_ps:target
        ~prefix:(Printf.sprintf "%s_%s" name tag)
    in
    let rec walk id =
      if id <> ff then begin
        added := id :: !added;
        walk (Netlist.node net id).Netlist.fanins.(0)
      end
    in
    walk last;
    (last, achieved)
  in
  let a_end, adb_da_ps = chain "adba" adb_da_ps in
  let b_end, adb_db_ps = chain "adbb" adb_db_ps in
  let c0 = Netlist.add_const net false in
  let c1 = Netlist.add_const net true in
  (* (k1,k2): 00 -> const0, 01 -> A, 10 -> B, 11 -> const1. *)
  let m0 =
    track (Netlist.add_gate net ~name:(name ^ "_m0") Cell.Mux [| k2; c0; a_end |])
  in
  let m1 =
    track (Netlist.add_gate net ~name:(name ^ "_m1") Cell.Mux [| k2; b_end; c1 |])
  in
  let key_out =
    track (Netlist.add_gate net ~name:(name ^ "_out") Cell.Mux [| k1; m0; m1 |])
  in
  {
    kg_name = name;
    k1;
    k2;
    key_out;
    toggle_ff = ff;
    adb_da_ps;
    adb_db_ps;
    mux_levels_ps = 2 * mux_delay ();
    nodes = List.rev !added;
  }
