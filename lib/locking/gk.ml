type variant = Invert_on_const | Buffer_on_const

type instance = {
  gk_name : string;
  variant : variant;
  x : int;
  key : int;
  out : int;
  d_path_a_ps : int;
  d_path_b_ps : int;
  d_mux_ps : int;
  nodes : int list;
}

let glitch_on_rise_ps i = i.d_path_b_ps + i.d_mux_ps
let glitch_on_fall_ps i = i.d_path_a_ps + i.d_mux_ps

let stable_function = function
  | Invert_on_const -> `Inverter
  | Buffer_on_const -> `Buffer

let insert net ?(profile = `Standard) ~name ~x ~key ~variant ~d_path_a_ps
    ~d_path_b_ps () =
  let xor2 = Cell_lib.bind Cell.Xor 2 and xnor2 = Cell_lib.bind Cell.Xnor 2 in
  let mux2 = Cell_lib.bind Cell.Mux 3 in
  let added = ref [] in
  let track id =
    added := id :: !added;
    id
  in
  let branch ~tag ~fn ~gate_delay ~target =
    let chain_target = target - gate_delay in
    if chain_target < 0 then
      invalid_arg
        (Printf.sprintf "Gk.insert: path target %dps below the gate delay"
           target);
    let chain_end, achieved =
      Delay_synth.chain net profile ~from_:key ~target_ps:chain_target
        ~prefix:(Printf.sprintf "%s_%s" name tag)
    in
    (* Track the chain nodes (they were appended contiguously). *)
    let rec walk id =
      if id <> key then begin
        added := id :: !added;
        walk (Netlist.node net id).Netlist.fanins.(0)
      end
    in
    walk chain_end;
    let g =
      track
        (Netlist.add_gate net
           ~name:(Printf.sprintf "%s_%s_gate" name tag)
           fn [| x; chain_end |])
    in
    (g, achieved + gate_delay)
  in
  (* Fig. 3(a): upper = XNOR on PathA, lower = XOR on PathB; the MUX's
     "key = 0" input is the upper branch.  Fig. 3(b) swaps the gates. *)
  let upper_fn, lower_fn =
    match variant with
    | Invert_on_const -> (Cell.Xnor, Cell.Xor)
    | Buffer_on_const -> (Cell.Xor, Cell.Xnor)
  in
  let gate_delay fn = if fn = Cell.Xor then xor2.Cell.delay_ps else xnor2.Cell.delay_ps in
  let upper, d_path_a_ps =
    branch ~tag:"pa" ~fn:upper_fn ~gate_delay:(gate_delay upper_fn)
      ~target:d_path_a_ps
  in
  let lower, d_path_b_ps =
    branch ~tag:"pb" ~fn:lower_fn ~gate_delay:(gate_delay lower_fn)
      ~target:d_path_b_ps
  in
  let out =
    track
      (Netlist.add_gate net ~name:(name ^ "_mux") Cell.Mux
         [| key; upper; lower |])
  in
  {
    gk_name = name;
    variant;
    x;
    key;
    out;
    d_path_a_ps;
    d_path_b_ps;
    d_mux_ps = mux2.Cell.delay_ps;
    nodes = List.rev !added;
  }
