type profile = {
  mean_ber : float;
  min_ber : float;
  max_ber : float;
  keys_sampled : int;
}

let eval_outputs net inputs =
  let values =
    Netlist.eval_comb net (fun id ->
        match List.assoc_opt (Netlist.node net id).Netlist.name inputs with
        | Some b -> b
        | None -> false)
  in
  List.map (fun (po, d) -> (po, values.(d))) (Netlist.outputs net)

let bit_error_rate ?(samples = 256) ?(seed = 17) ~reference locked key =
  let rng = Random.State.make [| seed; 0x4245 |] in
  let x_names =
    List.filter_map
      (fun pi ->
        let name = (Netlist.node locked.Locked.net pi).Netlist.name in
        if List.mem name locked.Locked.key_inputs then None else Some name)
      (Netlist.inputs locked.Locked.net)
  in
  let errors = ref 0 and total = ref 0 in
  for _ = 1 to samples do
    let vector = List.map (fun n -> (n, Random.State.bool rng)) x_names in
    let want = eval_outputs reference vector in
    let got = eval_outputs locked.Locked.net (vector @ key) in
    List.iter
      (fun (po, v) ->
        match List.assoc_opt po got with
        | Some w ->
          incr total;
          if v <> w then incr errors
        | None -> ())
      want
  done;
  if !total = 0 then 0.0 else float_of_int !errors /. float_of_int !total

let wrong_key_profile ?(samples = 256) ?(wrong_keys = 16) ?(seed = 17)
    ~reference locked =
  let bers =
    List.init wrong_keys (fun i ->
        let wrong =
          Key.random_wrong ~seed:(seed + i) locked.Locked.correct_key
        in
        bit_error_rate ~samples ~seed:(seed + (31 * i)) ~reference locked wrong)
  in
  match bers with
  | [] -> invalid_arg "Metrics.wrong_key_profile: need at least one key"
  | first :: _ ->
    {
      mean_ber = List.fold_left ( +. ) 0.0 bers /. float_of_int wrong_keys;
      min_ber = List.fold_left min first bers;
      max_ber = List.fold_left max first bers;
      keys_sampled = wrong_keys;
    }

let pp_profile ppf p =
  Format.fprintf ppf "BER mean %.4f (min %.4f, max %.4f) over %d wrong keys"
    p.mean_ber p.min_ber p.max_ber p.keys_sampled
