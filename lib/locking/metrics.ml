type profile = {
  mean_ber : float;
  min_ber : float;
  max_ber : float;
  keys_sampled : int;
}

let bit_error_rate ?(samples = 256) ?(seed = 17) ~reference locked key =
  let rng = Random.State.make [| seed; 0x4245 |] in
  let lnet = locked.Locked.net in
  let x_names =
    List.filter_map
      (fun pi ->
        let name = (Netlist.node lnet pi).Netlist.name in
        if List.mem name locked.Locked.key_inputs then None else Some name)
      (Netlist.inputs lnet)
  in
  (* Both netlists are driven by the same per-name stimulus words; outputs
     present in both are compared lane-wise, word_bits samples per engine
     pass. *)
  let ref_eng = Netlist.Engine.get reference in
  let lk_eng = Netlist.Engine.get lnet in
  let w = Netlist.Engine.word_bits in
  let stim = Hashtbl.create 64 in
  let key_word = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace key_word k (if v then -1 else 0)) key;
  let word_of net id =
    let name = (Netlist.node net id).Netlist.name in
    match Hashtbl.find_opt stim name with
    | Some word -> word
    | None -> Option.value (Hashtbl.find_opt key_word name) ~default:0
  in
  let ref_slot = Netlist.Engine.slot_of_id ref_eng in
  let lk_slot = Netlist.Engine.slot_of_id lk_eng in
  let ref_scratch = Netlist.Engine.create_scratch ref_eng in
  let lk_scratch = Netlist.Engine.create_scratch lk_eng in
  let po_pairs =
    List.filter_map
      (fun (po, want_d) ->
        Option.map
          (fun got_d -> (ref_slot.(want_d), lk_slot.(got_d)))
          (List.assoc_opt po (Netlist.outputs lnet)))
      (Netlist.outputs reference)
  in
  let errors = ref 0 and total = ref 0 in
  let remaining = ref samples in
  while !remaining > 0 do
    let lanes = min w !remaining in
    let mask = if lanes = w then -1 else (1 lsl lanes) - 1 in
    List.iter
      (fun n -> Hashtbl.replace stim n (Netlist.Engine.random_word rng))
      x_names;
    let want =
      Netlist.Engine.eval_words_into ~scratch:ref_scratch ref_eng
        (word_of reference)
    in
    let got =
      Netlist.Engine.eval_words_into ~scratch:lk_scratch lk_eng (word_of lnet)
    in
    List.iter
      (fun (want_s, got_s) ->
        total := !total + lanes;
        errors :=
          !errors
          + Netlist.Engine.popcount ((want.(want_s) lxor got.(got_s)) land mask))
      po_pairs;
    remaining := !remaining - lanes
  done;
  if !total = 0 then 0.0 else float_of_int !errors /. float_of_int !total

let wrong_key_profile ?(samples = 256) ?(wrong_keys = 16) ?(seed = 17)
    ~reference locked =
  let bers =
    List.init wrong_keys (fun i ->
        let wrong =
          Key.random_wrong ~seed:(seed + i) locked.Locked.correct_key
        in
        bit_error_rate ~samples ~seed:(seed + (31 * i)) ~reference locked wrong)
  in
  match bers with
  | [] -> invalid_arg "Metrics.wrong_key_profile: need at least one key"
  | first :: _ ->
    {
      mean_ber = List.fold_left ( +. ) 0.0 bers /. float_of_int wrong_keys;
      min_ber = List.fold_left min first bers;
      max_ber = List.fold_left max first bers;
      keys_sampled = wrong_keys;
    }

let pp_profile ppf p =
  Format.fprintf ppf "BER mean %.4f (min %.4f, max %.4f) over %d wrong keys"
    p.mean_ber p.min_ber p.max_ber p.keys_sampled
