(** Classic XOR/XNOR logic locking (Roy et al. [9], the paper's Fig. 1).

    Each key-gate is an XOR (passes when its key bit is 0) or an XNOR
    (passes when its key bit is 1) spliced into a randomly chosen internal
    wire; with the wrong bit the gate inverts.  The canonical SAT-attack
    victim: {!Sat_attack} recovers the key in a handful of DIPs. *)

(** [lock ?seed net ~n_keys] inserts [n_keys] key-gates on distinct wires.
    Key inputs are named [xk0], [xk1], ...  The input netlist is not
    modified. *)
val lock : ?seed:int -> Netlist.t -> n_keys:int -> Locked.t

(** [lock_on ?seed net ~wires] locks the given wires specifically (used by
    the hybrid scheme to protect the GK-encrypted paths).  One key-gate per
    wire. *)
val lock_on : ?seed:int -> ?name_prefix:string -> Netlist.t -> wires:int list -> Locked.t
