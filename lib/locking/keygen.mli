(** The key generator (Sec. II-B, Figs. 5–6).

    "If the predetermined behavior of a GK needs a transitional signal to
    trigger, a transitional signal generated and assigned to the key-input
    of the GK in every clock cycle is necessary."  The KEYGEN is a D
    flip-flop wired as a toggle (one transition per cycle, alternating
    direction) feeding a simplified Adjustable Delay Buffer: a 4:1 MUX
    (built from three 2:1 MUXes) whose selection bits [(k1, k2)] — the
    GK's two key-inputs — choose among

    - [(0,0)]: constant 0,
    - [(0,1)]: the transition shifted by delay A,
    - [(1,0)]: the transition shifted by delay B,
    - [(1,1)]: constant 1,

    matching Fig. 6 top to bottom.  A constant makes the downstream GK
    glitchless (its stable behaviour); the two delayed branches trigger the
    GK's glitch at different times — only one of which realises the
    designer's intended scenario. *)

type instance = {
  kg_name : string;
  k1 : int;            (** selection input node ids *)
  k2 : int;
  key_out : int;       (** connect to the GK's key pin *)
  toggle_ff : int;
  adb_da_ps : int;     (** achieved branch delays (chain only) *)
  adb_db_ps : int;
  mux_levels_ps : int; (** delay through the two MUX levels *)
  nodes : int list;
}

(** Trigger time within a cycle for each branch: the toggle flips at
    clk-to-Q, then traverses the branch chain and both MUX levels. *)
val trigger_time_a_ps : instance -> int

val trigger_time_b_ps : instance -> int

(** [chain_target_for ~t_trigger_ps] converts a desired trigger time into
    the branch-chain delay target ([None] if unreachable, i.e. earlier
    than clk-to-Q plus the MUX levels). *)
val chain_target_for : t_trigger_ps:int -> int option

(** [insert net ~name ~k1 ~k2 ~adb_da_ps ~adb_db_ps ?profile] builds the
    KEYGEN.  [adb_*_ps] are chain-delay targets (use {!chain_target_for}).
    [k1]/[k2] are existing nodes (normally fresh primary inputs). *)
val insert :
  Netlist.t ->
  ?profile:Delay_synth.profile ->
  name:string ->
  k1:int ->
  k2:int ->
  adb_da_ps:int ->
  adb_db_ps:int ->
  unit ->
  instance

(** What each [(k1, k2)] assignment puts on [key_out]. *)
type selection = Sel_const0 | Sel_delay_a | Sel_delay_b | Sel_const1

val selection_of : k1:bool -> k2:bool -> selection

(** The key bits that select a given branch. *)
val key_for : selection -> bool * bool
