(** Key vectors.

    A key assignment binds each key-input name to a Boolean.  For
    conventional key-gates the bit directly configures the gate; for a GK
    the two bits select the KEYGEN's output among {i constant 0},
    {i transition delayed by DA}, {i transition delayed by DB} and
    {i constant 1} (Fig. 6) — so "wrong key" can mean either a constant
    (the GK degenerates to its stable behaviour) or a mistimed
    transition. *)

type assignment = (string * bool) list

(** [random ~seed names] draws a uniformly random assignment. *)
val random : seed:int -> string list -> assignment

(** [flip a name] toggles one bit.  @raise Not_found. *)
val flip : assignment -> string -> assignment

(** [random_wrong ~seed correct] is an assignment over the same names that
    differs from [correct] in at least one bit. *)
val random_wrong : seed:int -> assignment -> assignment

(** [to_string a] is e.g. ["k0=1 k1=0"], in the assignment's order. *)
val to_string : assignment -> string

(** [enumerate names] lists all 2^n assignments (n ≤ 20). *)
val enumerate : string list -> assignment list

val equal : assignment -> assignment -> bool
