(** The result of a combinational locking transform, and shared splicing
    helpers. *)

type t = {
  net : Netlist.t;
  scheme : string;
  key_inputs : string list;      (** key-input PI names, in insertion order *)
  correct_key : Key.assignment;
}

(** [key_pi_ids t] resolves the key inputs to node ids. *)
val key_pi_ids : t -> int list

(** [with_key_fixed t key] is a copy of the locked netlist with the key
    inputs replaced by constants — the "decrypted" netlist an attacker
    ships after recovering [key]. *)
val with_key_fixed : t -> Key.assignment -> Netlist.t

(** [splice_all_fanouts net ~target ~build] inserts the node returned by
    [build ()] between [target] and {i all} of its current consumers
    (fanin pins and primary outputs).  [build] must create a node that
    reads [target].  Returns the new node's id. *)
val splice_all_fanouts : Netlist.t -> target:int -> build:(unit -> int) -> int

(** [gate_wires net] lists nodes usable as key-gate insertion points:
    combinational gates and flip-flop outputs (not inputs, so locking
    stays inside the design). *)
val gate_wires : Netlist.t -> int list

(** [pick_distinct rng k xs] samples [k] distinct elements
    (@raise Invalid_argument if [k > List.length xs]). *)
val pick_distinct : Random.State.t -> int -> 'a list -> 'a list
