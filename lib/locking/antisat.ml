let lock ?(seed = 1) net ~n =
  let rng = Random.State.make [| seed; 0x4153 |] in
  let net = Netlist.copy net in
  let pis = Netlist.inputs net in
  if List.length pis < n then invalid_arg "Antisat.lock: not enough inputs";
  if n < 2 then invalid_arg "Antisat.lock: need n >= 2";
  let xs = Locked.pick_distinct rng n pis in
  let shared = List.init n (fun _ -> Random.State.bool rng) in
  let mk_keys tag =
    List.init n (fun i ->
        let name = Printf.sprintf "ak%s%d" tag i in
        (name, Netlist.add_input net name))
  in
  let keys_a = mk_keys "A" and keys_b = mk_keys "B" in
  let xor_stage tag keys =
    List.mapi
      (fun i (x, (_, k)) ->
        Netlist.add_gate net
          ~name:(Printf.sprintf "as_x%s%d" tag i)
          Cell.Xor [| x; k |])
      (List.combine xs keys)
  in
  let ins_a = xor_stage "A" keys_a and ins_b = xor_stage "B" keys_b in
  let g1 = Netlist.add_gate net ~name:"as_g1" Cell.And (Array.of_list ins_a) in
  let g2 = Netlist.add_gate net ~name:"as_g2" Cell.Nand (Array.of_list ins_b) in
  let flip = Netlist.add_gate net ~name:"as_flip" Cell.And [| g1; g2 |] in
  (match Netlist.outputs net with
  | [] -> invalid_arg "Antisat.lock: netlist has no outputs"
  | (po, driver) :: _ ->
    let g = Netlist.add_gate net ~name:"as_out" Cell.Xor [| driver; flip |] in
    Netlist.set_output_driver net po g);
  let named keys = List.map fst keys in
  let correct =
    List.map2 (fun name b -> (name, b)) (named keys_a) shared
    @ List.map2 (fun name b -> (name, b)) (named keys_b) shared
  in
  {
    Locked.net;
    scheme = "antisat";
    key_inputs = named keys_a @ named keys_b;
    correct_key = correct;
  }

let structure_names ~n =
  [ "as_g1"; "as_g2"; "as_flip"; "as_out" ]
  @ List.concat_map
      (fun i -> [ Printf.sprintf "as_xA%d" i; Printf.sprintf "as_xB%d" i ])
      (List.init n Fun.id)
