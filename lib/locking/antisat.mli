(** Anti-SAT (Xie & Srivastava [13]).

    Two complementary blocks [g(X ⊕ K_A)] and [¬g(X ⊕ K_B)] (here [g] is a
    wide AND) feed an AND whose output flips a primary output.  When
    [K_A = K_B] the two terms are complementary so the flip never fires;
    any other key makes the flip fire on some inputs, but on an
    exponentially small fraction of them, starving the SAT attack of
    informative DIPs — while creating the signal-probability skew the
    removal attack exploits. *)

(** [lock ?seed net ~n] attaches an Anti-SAT block over [n] primary inputs
    and [2n] key bits named [akA0..], [akB0..].  The correct key sets
    [K_A = K_B] (a random vector). *)
val lock : ?seed:int -> Netlist.t -> n:int -> Locked.t

(** Names of the block's gates, for removal-attack evaluation. *)
val structure_names : n:int -> string list
