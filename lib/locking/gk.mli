(** The Glitch Key-gate (Sec. II, Fig. 3).

    A GK has a data input [x] and a key input; internally an XNOR and an
    XOR each combine [x] with a delayed copy of the key (delay elements A
    and B), and a MUX selected by the {i undelayed} key picks between them:

    {v
              +--[delay A]--+
              |             v
       key ---+          [XNOR]--a--+
              |             ^       |--[MUX]--> y   (sel = key)
       x -----+-------------+--+    |
              |             ^  |    |
              +--[delay B]--+  +-[XOR]--b--+
    v}

    With a constant key both branches reduce to the same function of [x]
    (variant (a): inverter; variant (b): buffer) — the stable-logic view a
    SAT solver sees.  On a key {i transition} the MUX switches immediately
    (after its own delay) while the newly selected branch still holds its
    pre-transition value for the branch delay, producing a glitch of
    length [D_path + D_mux] (Eq. 2) whose level is the {i complementary}
    behaviour.  Nothing here is simulation-special: the structure is plain
    cells, and {!Timing_sim} makes the glitch emerge. *)

type variant =
  | Invert_on_const  (** Fig. 3(a): inverter stably, buffer on the glitch *)
  | Buffer_on_const  (** Fig. 3(b): buffer stably, inverter on the glitch *)

type instance = {
  gk_name : string;
  variant : variant;
  x : int;             (** the encrypted signal *)
  key : int;           (** the key net (KEYGEN output or a free input) *)
  out : int;           (** the MUX output — splice this into the sink *)
  d_path_a_ps : int;   (** achieved PathA delay (chain + XNOR/XOR) *)
  d_path_b_ps : int;
  d_mux_ps : int;
  nodes : int list;    (** every node the insertion added *)
}

(** Glitch lengths for the two key-transition directions (Eq. 2): a rising
    key reveals PathB's stale value, a falling key PathA's. *)
val glitch_on_rise_ps : instance -> int

val glitch_on_fall_ps : instance -> int

(** [insert net ~name ~x ~key ~variant ~d_path_a_ps ~d_path_b_ps ?profile]
    builds the GK structure.  The chain delays are composed with
    {!Delay_synth} under [profile] (default [`Standard]); targets are the
    {i total} path delays (gate included).  The caller still has to rewire
    the consumer(s) of [x] to [out]. *)
val insert :
  Netlist.t ->
  ?profile:Delay_synth.profile ->
  name:string ->
  x:int ->
  key:int ->
  variant:variant ->
  d_path_a_ps:int ->
  d_path_b_ps:int ->
  unit ->
  instance

(** The stable-logic function of the GK: what a netlist-level attacker (or
    any zero-delay tool) concludes the gate computes, for either constant
    key. *)
val stable_function : variant -> [ `Inverter | `Buffer ]
