(** Fault-analysis-based key-gate insertion (Rajendran et al. [7]).

    Random placement (plain {!Xor_lock}) often wastes key-gates on wires
    whose corruption barely reaches the outputs.  The fault-analysis
    technique instead ranks candidate wires by {i fault impact} — how many
    output bits flip, over sampled input vectors, when the wire is forced
    to the complement of its fault-free value (a stuck-at-style
    measurement) — and spends the key-gates on the highest-impact wires,
    maximising wrong-key corruption.

    Used here as another conventional baseline, and by the hybrid
    experiments as a smarter way to choose which wires the XOR half of
    the key protects. *)

(** [fault_impact ?samples ?seed net] scores every combinational node:
    the average number of primary outputs corrupted per input vector when
    the node is complemented. *)
val fault_impact : ?samples:int -> ?seed:int -> Netlist.t -> float array

(** [rank_wires ?samples ?seed net] lists combinational node ids, highest
    impact first. *)
val rank_wires : ?samples:int -> ?seed:int -> Netlist.t -> (int * float) list

(** [lock ?seed ?samples net ~n_keys] inserts [n_keys] XOR/XNOR key-gates
    on the highest-impact wires.  Key inputs are named [fk0], ... *)
val lock : ?seed:int -> ?samples:int -> Netlist.t -> n_keys:int -> Locked.t
