type site_info = {
  si_ff : int;
  si_ff_name : string;
  si_site : Gk_timing.site;
  si_window : int * int;
}

type placement = {
  p_ff : int;
  p_gk : Gk.instance;
  p_keygen : Keygen.instance;
  p_k1_name : string;
  p_k2_name : string;
  p_correct : bool * bool;
  p_t_trigger : int;
  p_glitch : int * int;
}

type design = {
  lnet : Netlist.t;
  source : string;
  clock_ps : int;
  placements : placement list;
  key_inputs : string list;
  correct_key : Key.assignment;
  baseline : Stats.t;
  l_glitch_ps : int;
}

let d_mux_ps () = (Cell_lib.bind Cell.Mux 3).Cell.delay_ps

(* Room the delay composer needs inside a trigger window. *)
let window_margin_ps = 80

let available_sites net ~clock_ps ~l_glitch_ps =
  let sta = Sta.analyze net ~clock_ps in
  let d_mux = d_mux_ps () in
  let keygen_min = Cell_lib.dff_clk2q_ps + (2 * d_mux) in
  List.filter_map
    (fun ff ->
      let site = Gk_timing.site_of_sta sta ff in
      if not (Gk_timing.feasible_on_level site ~l_glitch:l_glitch_ps ~d_mux)
      then None
      else
        match
          Gk_timing.trigger_window_on_level site ~l_glitch:l_glitch_ps ~d_mux
        with
        | None -> None
        | Some (lo, hi) ->
          let lo = max lo keygen_min in
          if hi - lo <= window_margin_ps then None
          else
            Some
              {
                si_ff = ff;
                si_ff_name = (Netlist.node net ff).Netlist.name;
                si_site = site;
                si_window = (lo, hi);
              })
    (Netlist.ffs net)

let lock ?(seed = 1) ?(profile = `Standard) ?(l_glitch_ps = 1000)
    ?(prefer_ff4_groups = true) ?(exclude = []) net ~clock_ps ~n_gks =
  let sites =
    List.filter
      (fun s -> not (List.mem s.si_ff exclude))
      (available_sites net ~clock_ps ~l_glitch_ps)
  in
  if List.length sites < n_gks then
    invalid_arg
      (Printf.sprintf "Insertion.lock: only %d available sites for %d GKs"
         (List.length sites) n_gks);
  let rng = Random.State.make [| seed; 0x474b |] in
  let site_of = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace site_of s.si_ff s) sites;
  let candidates = List.map (fun s -> s.si_ff) sites in
  let chosen =
    if prefer_ff4_groups then Ff_select.pick net ~among:candidates ~n:n_gks ~seed
    else Locked.pick_distinct rng n_gks candidates
  in
  let lnet = Netlist.copy net in
  let baseline = Stats.of_netlist net in
  let d_mux = d_mux_ps () in
  let placements =
    List.mapi
      (fun i ff ->
        let si = Hashtbl.find site_of ff in
        let lo, hi = si.si_window in
        (* Trigger early inside the legal window: shorter ADB chains, less
           area — the window's low quarter still satisfies Eq. (5). *)
        let t_trigger = lo + ((hi - lo) / 4) + 1 in
        let k1_name = Printf.sprintf "gk%d_k1" i in
        let k2_name = Printf.sprintf "gk%d_k2" i in
        let k1 = Netlist.add_input lnet k1_name in
        let k2 = Netlist.add_input lnet k2_name in
        let correct_sel =
          if Random.State.bool rng then Keygen.Sel_delay_a else Keygen.Sel_delay_b
        in
        let adb_good =
          match Keygen.chain_target_for ~t_trigger_ps:t_trigger with
          | Some t -> t
          | None -> assert false (* window was clamped above keygen_min *)
        in
        (* The wrong branch ends its glitch exactly on the capture edge —
           a D transition inside the setup/hold window, i.e. a textbook
           violation — while keeping the chain short. *)
        let t_bad = si.si_site.Gk_timing.t_j - l_glitch_ps in
        let adb_bad =
          match Keygen.chain_target_for ~t_trigger_ps:t_bad with
          | Some t -> t
          | None -> 0
        in
        let adb_da_ps, adb_db_ps =
          match correct_sel with
          | Keygen.Sel_delay_a -> (adb_good, adb_bad)
          | Keygen.Sel_delay_b -> (adb_bad, adb_good)
          | Keygen.Sel_const0 | Keygen.Sel_const1 -> assert false
        in
        let kg =
          Keygen.insert lnet ~profile
            ~name:(Printf.sprintf "gk%d_kg" i)
            ~k1 ~k2 ~adb_da_ps ~adb_db_ps ()
        in
        let x = (Netlist.node lnet ff).Netlist.fanins.(0) in
        let gk =
          Gk.insert lnet ~profile
            ~name:(Printf.sprintf "gk%d" i)
            ~x ~key:kg.Keygen.key_out ~variant:Gk.Invert_on_const
            ~d_path_a_ps:(l_glitch_ps - d_mux)
            ~d_path_b_ps:(l_glitch_ps - d_mux) ()
        in
        Netlist.set_fanin lnet ~node_id:ff ~pin:0 ~driver:gk.Gk.out;
        let t_trig_actual =
          match correct_sel with
          | Keygen.Sel_delay_a -> Keygen.trigger_time_a_ps kg
          | Keygen.Sel_delay_b -> Keygen.trigger_time_b_ps kg
          | Keygen.Sel_const0 | Keygen.Sel_const1 -> assert false
        in
        (* The toggle alternates rising/falling; both branch delays of the
           GK are equal, so the glitch interval is direction-independent. *)
        let l_actual = Gk.glitch_on_rise_ps gk in
        let glitch =
          Gk_timing.glitch_interval ~t_trigger:t_trig_actual
            ~l_glitch:l_actual ~d_mux
        in
        {
          p_ff = ff;
          p_gk = gk;
          p_keygen = kg;
          p_k1_name = k1_name;
          p_k2_name = k2_name;
          p_correct = Keygen.key_for correct_sel;
          p_t_trigger = t_trig_actual;
          p_glitch = glitch;
        })
      chosen
  in
  Netlist.validate lnet;
  let key_inputs =
    List.concat_map (fun p -> [ p.p_k1_name; p.p_k2_name ]) placements
  in
  let correct_key =
    List.concat_map
      (fun p ->
        let b1, b2 = p.p_correct in
        [ (p.p_k1_name, b1); (p.p_k2_name, b2) ])
      placements
  in
  {
    lnet;
    source = Netlist.name net;
    clock_ps;
    placements;
    key_inputs;
    correct_key;
    baseline;
    l_glitch_ps;
  }

let overhead design =
  Stats.overhead ~baseline:design.baseline
    ~locked:(Stats.of_netlist design.lnet)

let intended_glitches design ff =
  List.find_map
    (fun p -> if p.p_ff = ff then Some p.p_glitch else None)
    design.placements

let strip_keygens design =
  let net = Netlist.copy design.lnet in
  let names =
    List.mapi
      (fun i p ->
        let name = Printf.sprintf "gkkey%d" i in
        let pi = Netlist.add_input net name in
        Netlist.replace_uses net ~old_id:p.p_keygen.Keygen.key_out ~new_id:pi;
        (* The KEYGEN (toggle FF, ADB chains, MUXes) and its selection
           inputs are now unreferenced. *)
        List.iter (fun id -> Netlist.kill net id) p.p_keygen.Keygen.nodes;
        (match Netlist.find net p.p_k1_name with
        | Some id -> Netlist.kill net id
        | None -> ());
        (match Netlist.find net p.p_k2_name with
        | Some id -> Netlist.kill net id
        | None -> ());
        name)
      design.placements
  in
  let net, _ = Netlist.compact net in
  Netlist.validate net;
  (net, names)

let capture_policy design =
  let toggles = Hashtbl.create 8 in
  List.iter
    (fun p -> Hashtbl.replace toggles p.p_keygen.Keygen.toggle_ff ())
    design.placements;
  fun ff -> if Hashtbl.mem toggles ff then 0 else 1

let timing_drive ?(other = fun _ -> Timing_sim.Const false) design key =
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun (name, b) ->
      match Netlist.find design.lnet name with
      | Some id -> Hashtbl.replace by_id id b
      | None -> ())
    key;
  fun pi ->
    match Hashtbl.find_opt by_id pi with
    | Some b -> Timing_sim.Const b
    | None -> other pi
