(** Corruptibility metrics for locked designs.

    Sec. I of the paper criticises SARLock/Anti-SAT for causing "little
    differences between the POs of encrypted circuit assigned with
    incorrect key-vector and the POs of original circuit" — low
    corruptibility is what makes approximate attacks (AppSAT) viable and
    what the GK is designed to restore.  This module measures it:

    - {!bit_error_rate}: over sampled input vectors, the fraction of
      output bits that differ between the locked design under a given key
      and the reference function.
    - {!wrong_key_profile}: BER statistics over sampled wrong keys — the
      standard corruptibility figure of merit. *)

type profile = {
  mean_ber : float;
  min_ber : float;
  max_ber : float;
  keys_sampled : int;
}

(** [bit_error_rate ?samples ?seed ~reference locked key] compares the
    locked combinational netlist under [key] against [reference] (same
    PO names) on random input vectors.  Returns the per-output-bit error
    fraction in [0, 1]. *)
val bit_error_rate :
  ?samples:int ->
  ?seed:int ->
  reference:Netlist.t ->
  Locked.t ->
  Key.assignment ->
  float

(** [wrong_key_profile ?samples ?wrong_keys ?seed ~reference locked] —
    BER over [wrong_keys] (default 16) random wrong keys. *)
val wrong_key_profile :
  ?samples:int ->
  ?wrong_keys:int ->
  ?seed:int ->
  reference:Netlist.t ->
  Locked.t ->
  profile

val pp_profile : Format.formatter -> profile -> unit
