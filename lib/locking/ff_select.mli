(** Flip-flop selection against scan-based attacks — the Encrypt-Flip-Flop
    heuristic of Karmakar et al. [4], producing Table I's last column.

    The algorithm groups flip-flops by the set of primary outputs their Q
    pins (transitively) fan out to; encrypting flip-flops drawn from one
    group whose cone covers many outputs makes the locked state bits
    mutually indistinguishable to a scan-chain observer. *)

(** [groups net ~among] buckets the flip-flops in [among] by primary-output
    cone signature, largest bucket first. *)
val groups : Netlist.t -> among:int list -> int list list

(** [selected_count net ~among] is the size of the largest group — the
    "Ava. FF [4]" column of Table I. *)
val selected_count : Netlist.t -> among:int list -> int

(** [pick net ~among ~n ~seed] chooses [n] flip-flops for encryption,
    preferring the largest groups and drawing deterministically within a
    group.  @raise Invalid_argument when [n] exceeds [List.length among]. *)
val pick : Netlist.t -> among:int list -> n:int -> seed:int -> int list
