type site = {
  ff : int;
  func_key : string;
  delay_key : string;
  tdb_mux : int;
  tdb_nodes : int list;
  tdb_delay_ps : int;
}

type t = { locked : Locked.t; sites : site list; clock_ps : int }

let lock ?(seed = 1) ?(profile = `Standard) net ~clock_ps ~n_sites =
  let rng = Random.State.make [| seed; 0x544b |] in
  let net = Netlist.copy net in
  let sta = Sta.analyze net ~clock_ps in
  let ranked =
    Netlist.ffs net
    |> List.map (fun ff -> (ff, Sta.setup_slack sta ff))
    |> List.filter (fun (_, s) -> s > 400)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  if List.length ranked < n_sites then
    invalid_arg "Tdk.lock: not enough slack-positive flip-flops";
  let chosen = List.filteri (fun i _ -> i < n_sites) ranked in
  let keyed_sites =
    List.mapi
      (fun i (ff, slack) ->
        let func_key = Printf.sprintf "tdkf%d" i in
        let delay_key = Printf.sprintf "tdkd%d" i in
        let kf = Netlist.add_input net func_key in
        let kd = Netlist.add_input net delay_key in
        let d = (Netlist.node net ff).Netlist.fanins.(0) in
        let fbit = Random.State.bool rng in
        let fn = if fbit then Cell.Xnor else Cell.Xor in
        let xg =
          Netlist.add_gate net ~name:(Printf.sprintf "tdk%d_fgate" i) fn
            [| d; kf |]
        in
        (* TDB: wrong k2 routes through a chain longer than the slack. *)
        let tdb_target = slack + 400 in
        let chain_end, tdb_delay_ps =
          Delay_synth.chain net profile ~from_:xg ~target_ps:tdb_target
            ~prefix:(Printf.sprintf "tdk%d_tdb" i)
        in
        let tdb_nodes =
          let rec walk acc id =
            if id = xg then acc
            else walk (id :: acc) (Netlist.node net id).Netlist.fanins.(0)
          in
          walk [] chain_end
        in
        let dbit = Random.State.bool rng in
        (* correct kd routes the direct path *)
        let a, b = if dbit then (chain_end, xg) else (xg, chain_end) in
        let tdb_mux =
          Netlist.add_gate net
            ~name:(Printf.sprintf "tdk%d_tdb_mux" i)
            Cell.Mux [| kd; a; b |]
        in
        Netlist.set_fanin net ~node_id:ff ~pin:0 ~driver:tdb_mux;
        let site = { ff; func_key; delay_key; tdb_mux; tdb_nodes; tdb_delay_ps } in
        (site, [ (func_key, fbit); (delay_key, dbit) ]))
      chosen
  in
  let sites = List.map fst keyed_sites in
  let correct_key = List.concat_map snd keyed_sites in
  {
    locked =
      {
        Locked.net;
        scheme = "tdk";
        key_inputs = List.map fst correct_key;
        correct_key;
      };
    sites;
    clock_ps;
  }
