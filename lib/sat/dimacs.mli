(** DIMACS CNF interchange. *)

(** [to_string cnf] renders the standard [p cnf V C] format. *)
val to_string : Cnf.t -> string

(** [of_string text] parses DIMACS.  @raise Failure on malformed input. *)
val of_string : string -> Cnf.t

(** [write_file cnf path] / [read_file path]. *)
val write_file : Cnf.t -> string -> unit

val read_file : string -> Cnf.t
