(** CNF formula container.

    A passive clause database used for DIMACS interchange and for tests that
    cross-check the CDCL solver against brute force; the solver itself
    ({!Solver}) owns its clauses. *)

type t

val create : unit -> t

(** [new_var f] allocates the next variable index. *)
val new_var : t -> int

(** [ensure_vars f n] grows the variable count to at least [n]. *)
val ensure_vars : t -> int -> unit

val add_clause : t -> Lit.t list -> unit

val num_vars : t -> int
val num_clauses : t -> int

val iter_clauses : (Lit.t array -> unit) -> t -> unit
val clauses : t -> Lit.t array list

(** [eval f assignment] evaluates under [assignment v] per variable. *)
val eval : t -> (int -> bool) -> bool

(** Exhaustive satisfiability check, for testing (≤ 20 variables). *)
val brute_force : t -> bool array option
