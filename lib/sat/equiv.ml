type verdict = Equivalent | Different of (string * bool) list

let po_names net = List.map fst (Netlist.outputs net) |> List.sort compare

let check ?(fixed_a = []) ?(fixed_b = []) a b =
  if po_names a <> po_names b then
    invalid_arg "Equiv.check: primary-output name sets differ";
  let solver = Solver.create () in
  (* Shared PI variables by name. *)
  let shared_vars = Hashtbl.create 32 in
  let shared_names =
    List.filter_map
      (fun pi ->
        let name = (Netlist.node a pi).Netlist.name in
        match Netlist.find b name with
        | Some _ -> Some name
        | None -> None)
      (Netlist.inputs a)
  in
  List.iter
    (fun name -> Hashtbl.replace shared_vars name (Solver.new_var solver))
    shared_names;
  let shared_for net id =
    let nd = Netlist.node net id in
    if nd.Netlist.kind = Netlist.Input then
      Hashtbl.find_opt shared_vars nd.Netlist.name
    else None
  in
  let vars_a = Tseitin.encode solver a ~shared:(shared_for a) in
  let vars_b = Tseitin.encode solver b ~shared:(shared_for b) in
  let pin net vars (name, value) =
    match Netlist.find net name with
    | Some id when (Netlist.node net id).Netlist.kind = Netlist.Input ->
      ignore (Solver.add_clause solver [ Lit.make vars.(id) value ])
    | Some _ -> invalid_arg ("Equiv.check: " ^ name ^ " is not an input")
    | None -> invalid_arg ("Equiv.check: no input named " ^ name)
  in
  List.iter (pin a vars_a) fixed_a;
  List.iter (pin b vars_b) fixed_b;
  (* diff_o <-> po_a xor po_b, for each output; assert OR of diffs. *)
  let diffs =
    List.map
      (fun (po, da) ->
        let db = List.assoc po (Netlist.outputs b) in
        let d = Solver.new_var solver in
        let o = Lit.pos d
        and x = Lit.pos vars_a.(da)
        and y = Lit.pos vars_b.(db) in
        ignore (Solver.add_clause solver [ Lit.negate o; x; y ]);
        ignore
          (Solver.add_clause solver [ Lit.negate o; Lit.negate x; Lit.negate y ]);
        ignore (Solver.add_clause solver [ o; Lit.negate x; y ]);
        ignore (Solver.add_clause solver [ o; x; Lit.negate y ]);
        Lit.pos d)
      (Netlist.outputs a)
  in
  ignore (Solver.add_clause solver diffs);
  match Solver.solve solver with
  | Solver.Unsat -> Equivalent
  | Solver.Sat ->
    let witness =
      List.map
        (fun name -> (name, Solver.value solver (Hashtbl.find shared_vars name)))
        shared_names
    in
    Different witness
