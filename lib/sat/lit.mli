(** Propositional literals.

    MiniSat encoding: variable [v ≥ 0] yields literals [2v] (positive) and
    [2v+1] (negated), so a literal's variable is [lit / 2] and its sign is
    [lit land 1]. *)

type t = int

(** [make v positive] is the literal for variable [v]. *)
val make : int -> bool -> t

(** [pos v] / [neg v] are the two literals of variable [v]. *)
val pos : int -> t

val neg : int -> t

val var : t -> int
val is_pos : t -> bool
val negate : t -> t

(** DIMACS form: [±(var+1)]. *)
val to_dimacs : t -> int

(** Inverse of {!to_dimacs}.  @raise Invalid_argument on 0. *)
val of_dimacs : int -> t

val pp : Format.formatter -> t -> unit
