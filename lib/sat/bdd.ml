(* Nodes are integers: 0 = false, 1 = true, and k >= 2 indexes the
   (var, lo, hi) triple arrays.  Complement edges are not used; the
   structure stays textbook-simple.  Reduction invariants: hi <> lo for
   every stored node, and the unique table guarantees sharing. *)

type t = int

type man = {
  n : int;
  mutable var_ : int array;   (* per node *)
  mutable lo : int array;
  mutable hi : int array;
  mutable next : int;         (* next free node index *)
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
  count_cache : (int, float) Hashtbl.t;
}

let manager ~nvars =
  if nvars < 0 then invalid_arg "Bdd.manager: negative nvars";
  let cap = 1024 in
  let m =
    {
      n = nvars;
      var_ = Array.make cap 0;
      lo = Array.make cap 0;
      hi = Array.make cap 0;
      next = 2;
      unique = Hashtbl.create 1024;
      ite_cache = Hashtbl.create 1024;
      count_cache = Hashtbl.create 256;
    }
  in
  (* terminals get a pseudo-variable beyond every real one so the
     variable-order comparisons below stay uniform *)
  m.var_.(0) <- nvars;
  m.var_.(1) <- nvars;
  m

let nvars m = m.n

let bfalse _ = 0
let btrue _ = 1

let grow m =
  let cap = Array.length m.var_ in
  if m.next >= cap then begin
    let cap' = 2 * cap in
    let extend a =
      let a' = Array.make cap' 0 in
      Array.blit a 0 a' 0 cap;
      a'
    in
    m.var_ <- extend m.var_;
    m.lo <- extend m.lo;
    m.hi <- extend m.hi
  end

let mk m v lo hi =
  if lo = hi then lo
  else
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      grow m;
      let id = m.next in
      m.next <- id + 1;
      m.var_.(id) <- v;
      m.lo.(id) <- lo;
      m.hi.(id) <- hi;
      Hashtbl.replace m.unique key id;
      id

let var m i =
  if i < 0 || i >= m.n then invalid_arg "Bdd.var: out of range";
  mk m i 0 1

let rec ite m f g h =
  (* terminal cases *)
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else begin
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
      let top = min m.var_.(f) (min m.var_.(g) m.var_.(h)) in
      let branch x b =
        if m.var_.(x) = top then if b then m.hi.(x) else m.lo.(x) else x
      in
      let t = ite m (branch f true) (branch g true) (branch h true) in
      let e = ite m (branch f false) (branch g false) (branch h false) in
      let r = mk m top e t in
      Hashtbl.replace m.ite_cache key r;
      r
  end

let bnot m f = ite m f 0 1
let band m f g = ite m f g 0
let bor m f g = ite m f 1 g
let bxor m f g = ite m f (bnot m g) g
let bxnor m f g = ite m f g (bnot m g)
let bnand m f g = bnot m (band m f g)
let bnor m f g = bnot m (bor m f g)

let equal (a : t) (b : t) = a = b

let rec eval m f assignment =
  if f = 0 then false
  else if f = 1 then true
  else if assignment m.var_.(f) then eval m m.hi.(f) assignment
  else eval m m.lo.(f) assignment

let sat_count m f =
  Hashtbl.reset m.count_cache;
  (* count over the variables strictly below [v_from] is rescaled at the
     call sites; here: count assignments of variables var(f)..n-1, then
     scale by 2^var(f) at the top *)
  let rec go f =
    if f = 0 then 0.0
    else if f = 1 then 1.0
    else
      match Hashtbl.find_opt m.count_cache f with
      | Some c -> c
      | None ->
        let v = m.var_.(f) in
        let side g =
          (* weight for variables skipped between v+1 and var(g) *)
          go g *. (2.0 ** float_of_int (m.var_.(g) - v - 1))
        in
        let c = side m.lo.(f) +. side m.hi.(f) in
        Hashtbl.replace m.count_cache f c;
        c
  in
  go f *. (2.0 ** float_of_int m.var_.(f))

let prob m f =
  if m.n = 0 then if f = 1 then 1.0 else 0.0
  else sat_count m f /. (2.0 ** float_of_int m.n)

let any_sat m f =
  if f = 0 then None
  else begin
    let rec walk f acc =
      if f = 1 then List.rev acc
      else if m.hi.(f) <> 0 then walk m.hi.(f) ((m.var_.(f), true) :: acc)
      else walk m.lo.(f) ((m.var_.(f), false) :: acc)
    in
    Some (walk f [])
  end

let node_count m = m.next - 2

let of_netlist m net ~var_of_input =
  if Netlist.ffs net <> [] then
    invalid_arg "Bdd.of_netlist: netlist has flip-flops";
  let bdds = Array.make (Netlist.num_nodes net) 0 in
  for id = 0 to Netlist.num_nodes net - 1 do
    let nd = Netlist.node net id in
    match nd.Netlist.kind with
    | Netlist.Input -> bdds.(id) <- var m (var_of_input id)
    | Netlist.Const b -> bdds.(id) <- (if b then 1 else 0)
    | Netlist.Gate _ | Netlist.Lut _ | Netlist.Ff | Netlist.Dead -> ()
  done;
  List.iter
    (fun id ->
      let nd = Netlist.node net id in
      let ins = Array.map (fun f -> bdds.(f)) nd.Netlist.fanins in
      let fold op seed = Array.fold_left (op m) seed ins in
      bdds.(id) <-
        (match nd.Netlist.kind with
        | Netlist.Gate Cell.Not -> bnot m ins.(0)
        | Netlist.Gate Cell.Buf -> ins.(0)
        | Netlist.Gate Cell.And -> fold band 1
        | Netlist.Gate Cell.Nand -> bnot m (fold band 1)
        | Netlist.Gate Cell.Or -> fold bor 0
        | Netlist.Gate Cell.Nor -> bnot m (fold bor 0)
        | Netlist.Gate Cell.Xor -> fold bxor 0
        | Netlist.Gate Cell.Xnor -> bnot m (fold bxor 0)
        | Netlist.Gate Cell.Mux -> ite m ins.(0) ins.(2) ins.(1)
        | Netlist.Lut truth ->
          (* Shannon expansion over the rows *)
          let r = ref 0 in
          Array.iteri
            (fun row out ->
              if out then begin
                let minterm = ref 1 in
                Array.iteri
                  (fun i f ->
                    let lit =
                      if row land (1 lsl i) <> 0 then f else bnot m f
                    in
                    minterm := band m !minterm lit)
                  ins;
                r := bor m !r !minterm
              end)
            truth;
          !r
        | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead ->
          assert false))
    (Netlist.comb_topo_order net);
  bdds
