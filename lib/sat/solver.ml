type result = Sat | Unsat

type clause = { mutable lits : Lit.t array }

(* Variable order: binary max-heap on activity with position tracking. *)
module Heap = struct
  type t = {
    mutable data : int array;  (* variable indices *)
    mutable len : int;
    mutable pos : int array;   (* var -> index in data, -1 if absent *)
    activity : float array ref;
  }

  let create activity = { data = [||]; len = 0; pos = [||]; activity }

  let ensure h nvars =
    let old = Array.length h.pos in
    if nvars > old then begin
      let pos' = Array.make (max nvars (2 * max old 16)) (-1) in
      Array.blit h.pos 0 pos' 0 old;
      h.pos <- pos';
      let data' = Array.make (Array.length h.pos) 0 in
      Array.blit h.data 0 data' 0 h.len;
      h.data <- data'
    end

  let better h a b = !(h.activity).(a) > !(h.activity).(b)

  let swap h i j =
    let a = h.data.(i) and b = h.data.(j) in
    h.data.(i) <- b;
    h.data.(j) <- a;
    h.pos.(b) <- i;
    h.pos.(a) <- j

  let rec sift_up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if better h h.data.(i) h.data.(p) then begin
        swap h i p;
        sift_up h p
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let best = ref i in
    if l < h.len && better h h.data.(l) h.data.(!best) then best := l;
    if r < h.len && better h h.data.(r) h.data.(!best) then best := r;
    if !best <> i then begin
      swap h i !best;
      sift_down h !best
    end

  let mem h v = v < Array.length h.pos && h.pos.(v) >= 0

  let insert h v =
    if not (mem h v) then begin
      h.data.(h.len) <- v;
      h.pos.(v) <- h.len;
      h.len <- h.len + 1;
      sift_up h (h.len - 1)
    end

  let decrease h v = if mem h v then sift_up h h.pos.(v)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      h.pos.(top) <- -1;
      if h.len > 0 then begin
        h.data.(0) <- h.data.(h.len);
        h.pos.(h.data.(0)) <- 0;
        sift_down h 0
      end;
      Some top
    end
end

type t = {
  mutable nvars : int;
  clauses : clause Vec.t;
  mutable watches : int Vec.t array;  (* per literal: indices into clauses *)
  mutable assigns : int array;        (* per var: -1 undef, 0 false, 1 true *)
  mutable level : int array;
  mutable reason : int array;         (* clause index or -1 *)
  mutable polarity : bool array;      (* saved phases *)
  activity : float array ref;
  mutable var_inc : float;
  order : Heap.t;
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable unsat : bool;
  units : Lit.t Vec.t;                (* level-0 facts added via add_clause *)
  mutable n_conflicts : int;
  mutable n_propagations : int;
  mutable model : bool array;
  mutable have_model : bool;
  mutable seen : bool array;          (* scratch for analyze *)
}

let create () =
  let activity = ref [||] in
  {
    nvars = 0;
    clauses = Vec.create ();
    watches = [||];
    assigns = [||];
    level = [||];
    reason = [||];
    polarity = [||];
    activity;
    var_inc = 1.0;
    order = Heap.create activity;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    unsat = false;
    units = Vec.create ();
    n_conflicts = 0;
    n_propagations = 0;
    model = [||];
    have_model = false;
    seen = [||];
  }

let grow_arrays s =
  let cap = Array.length s.assigns in
  if s.nvars > cap then begin
    let cap' = max s.nvars (max 16 (2 * cap)) in
    let grow_int a def =
      let a' = Array.make cap' def in
      Array.blit a 0 a' 0 cap;
      a'
    in
    s.assigns <- grow_int s.assigns (-1);
    s.level <- grow_int s.level 0;
    s.reason <- grow_int s.reason (-1);
    let pol' = Array.make cap' false in
    Array.blit s.polarity 0 pol' 0 cap;
    s.polarity <- pol';
    let act' = Array.make cap' 0.0 in
    Array.blit !(s.activity) 0 act' 0 cap;
    s.activity := act';
    let seen' = Array.make cap' false in
    Array.blit s.seen 0 seen' 0 cap;
    s.seen <- seen';
    let w' = Array.init (2 * cap') (fun i ->
        if i < 2 * cap then s.watches.(i) else Vec.create ())
    in
    s.watches <- w'
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  grow_arrays s;
  Heap.ensure s.order s.nvars;
  Heap.insert s.order v;
  v

let num_vars s = s.nvars
let num_clauses s = Vec.length s.clauses

let lit_value s l =
  let v = s.assigns.(Lit.var l) in
  if v < 0 then -1 else v lxor (l land 1)

let decision_level s = Vec.length s.trail_lim

let enqueue s l reason =
  (* Precondition: l is unassigned. *)
  let v = Lit.var l in
  s.assigns.(v) <- (if Lit.is_pos l then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.polarity.(v) <- Lit.is_pos l;
  Vec.push s.trail l

let var_bump s v =
  let a = !(s.activity) in
  a.(v) <- a.(v) +. s.var_inc;
  if a.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      a.(i) <- a.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Heap.decrease s.order v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* Attach a clause (index ci) by watching its first two literals. *)
let attach s ci =
  let c = Vec.get s.clauses ci in
  Vec.push s.watches.(Lit.negate c.lits.(0)) ci;
  Vec.push s.watches.(Lit.negate c.lits.(1)) ci

exception Conflict of int

let propagate s =
  try
    while s.qhead < Vec.length s.trail do
      let p = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.n_propagations <- s.n_propagations + 1;
      (* p became true; visit clauses watching ~p *)
      let ws = s.watches.(p) in
      let n = Vec.length ws in
      let keep = ref [] in
      let i = ref 0 in
      (try
         while !i < n do
           let ci = Vec.get ws !i in
           incr i;
           let c = Vec.get s.clauses ci in
           let lits = c.lits in
           (* Ensure the false literal (~p ... i.e. the one equal to
              negate p) is at position 1. *)
           let false_lit = Lit.negate p in
           if lits.(0) = false_lit then begin
             lits.(0) <- lits.(1);
             lits.(1) <- false_lit
           end;
           if lit_value s lits.(0) = 1 then keep := ci :: !keep
           else begin
             (* Look for a new watch. *)
             let len = Array.length lits in
             let found = ref false in
             let k = ref 2 in
             while (not !found) && !k < len do
               if lit_value s lits.(!k) <> 0 then begin
                 lits.(1) <- lits.(!k);
                 lits.(!k) <- false_lit;
                 Vec.push s.watches.(Lit.negate lits.(1)) ci;
                 found := true
               end;
               incr k
             done;
             if not !found then begin
               keep := ci :: !keep;
               match lit_value s lits.(0) with
               | 0 ->
                 (* Conflict: restore remaining watches before raising. *)
                 while !i < n do
                   keep := Vec.get ws !i :: !keep;
                   incr i
                 done;
                 raise (Conflict ci)
               | -1 -> enqueue s lits.(0) ci
               | _ -> ()
             end
           end
         done
       with Conflict _ as e ->
         Vec.clear ws;
         List.iter (Vec.push ws) (List.rev !keep);
         raise e);
      Vec.clear ws;
      List.iter (Vec.push ws) (List.rev !keep)
    done;
    None
  with Conflict ci -> Some ci

let backtrack s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.length s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = Lit.var l in
      s.assigns.(v) <- -1;
      s.reason.(v) <- -1;
      Heap.insert s.order v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.length s.trail
  end

(* First-UIP conflict analysis.  Returns the learnt clause (asserting
   literal first) and the backjump level. *)
let analyze s confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let ci = ref confl in
  let trail_idx = ref (Vec.length s.trail - 1) in
  let continue = ref true in
  while !continue do
    let c = Vec.get s.clauses !ci in
    Array.iter
      (fun q ->
        if !p >= 0 && q = !p then ()
        else begin
          let v = Lit.var q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            var_bump s v;
            if s.level.(v) >= decision_level s then incr counter
            else learnt := q :: !learnt
          end
        end)
      c.lits;
    (* Walk the trail back to the next marked literal. *)
    let rec next_marked i =
      let l = Vec.get s.trail i in
      if s.seen.(Lit.var l) then (i, l) else next_marked (i - 1)
    in
    let i, l = next_marked !trail_idx in
    trail_idx := i - 1;
    s.seen.(Lit.var l) <- false;
    decr counter;
    if !counter = 0 then begin
      p := Lit.negate l;
      continue := false
    end
    else begin
      p := l;
      ci := s.reason.(Lit.var l)
    end
  done;
  let lits = !p :: !learnt in
  List.iter (fun l -> s.seen.(Lit.var l) <- false) !learnt;
  (* Backjump to the second-highest decision level in the clause. *)
  let rest = !learnt in
  let bj =
    List.fold_left (fun acc l -> max acc s.level.(Lit.var l)) 0 rest
  in
  (* Put a literal of the backjump level second, so watches are sound. *)
  let arr = Array.of_list lits in
  if Array.length arr > 1 then begin
    let best = ref 1 in
    for k = 2 to Array.length arr - 1 do
      if s.level.(Lit.var arr.(k)) > s.level.(Lit.var arr.(!best)) then best := k
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp
  end;
  (arr, bj)

let record_learnt s arr =
  if Array.length arr = 1 then begin
    Vec.push s.units arr.(0);
    enqueue s arr.(0) (-1)
  end
  else begin
    let ci = Vec.length s.clauses in
    Vec.push s.clauses { lits = arr };
    attach s ci;
    enqueue s arr.(0) ci
  end

let add_clause s lits =
  if s.unsat then false
  else begin
    (* Deduplicate; drop tautologies. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (Lit.negate l) lits) lits
    in
    if tautology then true
    else begin
      List.iter
        (fun l ->
          if Lit.var l >= s.nvars then
            invalid_arg "Solver.add_clause: unknown variable")
        lits;
      backtrack s 0;
      (* Remove literals already false at level 0; satisfied clause is a
         no-op. *)
      let satisfied =
        List.exists (fun l -> lit_value s l = 1 && s.level.(Lit.var l) = 0) lits
      in
      if satisfied then true
      else begin
        let lits =
          List.filter
            (fun l -> not (lit_value s l = 0 && s.level.(Lit.var l) = 0))
            lits
        in
        match lits with
        | [] ->
          s.unsat <- true;
          false
        | [ l ] ->
          Vec.push s.units l;
          if lit_value s l = 0 then begin
            s.unsat <- true;
            false
          end
          else begin
            if lit_value s l = -1 then begin
              enqueue s l (-1);
              if propagate s <> None then begin
                s.unsat <- true;
                false
              end
              else true
            end
            else true
          end
        | lits ->
          let ci = Vec.length s.clauses in
          Vec.push s.clauses { lits = Array.of_list lits };
          attach s ci;
          true
      end
    end
  end

(* Luby restart sequence. *)
let rec luby i =
  (* Find the finite subsequence containing i. *)
  let rec size k = if k >= i + 1 then k else size ((2 * k) + 1) in
  let k = size 1 in
  if k = i + 1 then (k + 1) / 2 else luby (i - (k / 2))

let decide s =
  let rec pick () =
    match Heap.pop s.order with
    | None -> None
    | Some v -> if s.assigns.(v) < 0 then Some v else pick ()
  in
  match pick () with
  | None -> None
  | Some v ->
    Vec.push s.trail_lim (Vec.length s.trail);
    enqueue s (Lit.make v s.polarity.(v)) (-1);
    Some v

let save_model s =
  s.model <- Array.init s.nvars (fun v -> s.assigns.(v) = 1);
  s.have_model <- true

let solve ?(assumptions = []) s =
  s.have_model <- false;
  if s.unsat then Unsat
  else begin
    backtrack s 0;
    s.qhead <- 0;  (* re-propagate everything, including new clauses *)
    (* Re-assert recorded facts: learnt units may have been retracted by
       backtracking below the level they were asserted at. *)
    let unit_conflict = ref false in
    Vec.iter
      (fun l ->
        if not !unit_conflict then
          match lit_value s l with
          | 0 -> unit_conflict := true
          | -1 -> enqueue s l (-1)
          | _ -> ())
      s.units;
    if !unit_conflict then begin
      s.unsat <- true;
      Unsat
    end
    else if propagate s <> None then begin
      s.unsat <- true;
      Unsat
    end
    else begin
      let assumptions = Array.of_list assumptions in
      let restart_count = ref 0 in
      let conflict_budget = ref (100 * luby !restart_count) in
      let rec loop () =
        match propagate s with
        | Some confl ->
          s.n_conflicts <- s.n_conflicts + 1;
          decr conflict_budget;
          if decision_level s <= Array.length assumptions then Unsat
          else begin
            let learnt, bj = analyze s confl in
            let bj = max bj (min (decision_level s - 1) (Array.length assumptions)) in
            backtrack s bj;
            record_learnt s learnt;
            var_decay s;
            loop ()
          end
        | None ->
          if !conflict_budget <= 0 && decision_level s > Array.length assumptions
          then begin
            incr restart_count;
            conflict_budget := 100 * luby !restart_count;
            backtrack s (Array.length assumptions);
            loop ()
          end
          else if decision_level s < Array.length assumptions then begin
            (* Apply the next assumption. *)
            let a = assumptions.(decision_level s) in
            match lit_value s a with
            | 1 ->
              (* Already true: open an empty decision level for it. *)
              Vec.push s.trail_lim (Vec.length s.trail);
              loop ()
            | 0 -> Unsat
            | _ ->
              Vec.push s.trail_lim (Vec.length s.trail);
              enqueue s a (-1);
              loop ()
          end
          else begin
            match decide s with
            | None ->
              save_model s;
              Sat
            | Some _ -> loop ()
          end
      in
      let r = loop () in
      backtrack s 0;
      r
    end
  end

let value s v =
  if not s.have_model then invalid_arg "Solver.value: no model";
  if v < 0 || v >= Array.length s.model then
    invalid_arg "Solver.value: unknown variable";
  s.model.(v)

let conflicts s = s.n_conflicts
let propagations s = s.n_propagations
