(** SAT-based combinational equivalence checking.

    Builds the classic miter: both netlists over shared primary-input
    variables, pairwise XOR of same-named primary outputs, and a constraint
    that at least one XOR is 1.  UNSAT means the circuits agree on every
    input.  Used to validate locking transforms (locked circuit with the
    correct stable key ≡ original) and by the removal attack to confirm a
    successful excision. *)

type verdict =
  | Equivalent
  | Different of (string * bool) list
      (** witness assignment of the shared primary inputs *)

(** [check ?fixed_a ?fixed_b a b] compares two combinational netlists.
    Inputs present in both circuits (by name) are shared; [fixed_a] /
    [fixed_b] pin named inputs of either circuit to constants (how a key
    vector is applied).  Inputs of one circuit that are neither shared nor
    fixed are free — a difference found over them still disproves
    equivalence of the compared functions.

    @raise Invalid_argument if the circuits' primary-output name sets
    differ, or if a netlist has flip-flops. *)
val check :
  ?fixed_a:(string * bool) list ->
  ?fixed_b:(string * bool) list ->
  Netlist.t ->
  Netlist.t ->
  verdict
