(** A CDCL SAT solver.

    Stand-in for the MiniSat-class solver inside the SAT-attack tool of
    Subramanyan et al. [11]: two-watched-literal propagation, first-UIP
    conflict learning, VSIDS branching with phase saving, and Luby
    restarts.  Clauses may be added between [solve] calls (the attack adds
    two circuit copies per DIP iteration), and [solve] accepts assumptions
    for one-off queries. *)

type t

type result = Sat | Unsat

val create : unit -> t

(** [new_var s] allocates a fresh variable. *)
val new_var : t -> int

val num_vars : t -> int
val num_clauses : t -> int

(** [add_clause s lits] adds a clause.  Returns [false] when the clause
    makes the formula trivially unsatisfiable (empty, or conflicting unit
    at level 0) — the solver is then permanently UNSAT. *)
val add_clause : t -> Lit.t list -> bool

(** [solve ?assumptions s] decides satisfiability of all clauses added so
    far, under the given assumption literals. *)
val solve : ?assumptions:Lit.t list -> t -> result

(** [value s v] is variable [v]'s value in the model of the last [Sat]
    answer.  @raise Invalid_argument if the last call was not [Sat]. *)
val value : t -> int -> bool

(** Number of conflicts encountered so far (for reporting). *)
val conflicts : t -> int

(** Number of unit propagations performed so far. *)
val propagations : t -> int
