(** Tseitin encoding of combinational netlists into a {!Solver}.

    Each node gets one solver variable; every gate contributes the standard
    constraint clauses.  Sharing is explicit: the [shared] callback lets the
    SAT attack put two copies of a locked netlist over the same primary
    input variables while keeping their key variables distinct. *)

(** [encode solver net ~shared] adds clauses for every live node of the
    combinational netlist [net] and returns the node-id → variable map.
    [shared id] may return an existing solver variable to use for node [id]
    (only sensible for [Input] nodes); otherwise fresh variables are
    allocated.  Constants are pinned with unit clauses.

    @raise Invalid_argument if [net] still contains flip-flops. *)
val encode : Solver.t -> Netlist.t -> shared:(int -> int option) -> int array

(** [encode_simple solver net] is {!encode} with no sharing. *)
val encode_simple : Solver.t -> Netlist.t -> int array

(** [to_cnf net] encodes into a fresh passive {!Cnf} (for DIMACS export and
    tests); returns the formula and the node → variable map. *)
val to_cnf : Netlist.t -> Cnf.t * int array
