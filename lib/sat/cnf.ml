type t = { mutable nvars : int; cls : Lit.t array Vec.t }

let create () = { nvars = 0; cls = Vec.create () }

let new_var f =
  let v = f.nvars in
  f.nvars <- v + 1;
  v

let ensure_vars f n = if n > f.nvars then f.nvars <- n

let add_clause f lits =
  List.iter
    (fun l ->
      if Lit.var l >= f.nvars then
        invalid_arg "Cnf.add_clause: literal over unknown variable")
    lits;
  Vec.push f.cls (Array.of_list lits)

let num_vars f = f.nvars
let num_clauses f = Vec.length f.cls

let iter_clauses g f = Vec.iter g f.cls
let clauses f = Vec.to_list f.cls

let eval f assignment =
  let clause_sat c =
    Array.exists (fun l -> assignment (Lit.var l) = Lit.is_pos l) c
  in
  let ok = ref true in
  iter_clauses (fun c -> if not (clause_sat c) then ok := false) f;
  !ok

let brute_force f =
  if f.nvars > 20 then invalid_arg "Cnf.brute_force: too many variables";
  let n = 1 lsl f.nvars in
  let rec go i =
    if i >= n then None
    else
      let assignment v = i land (1 lsl v) <> 0 in
      if eval f assignment then Some (Array.init f.nvars assignment)
      else go (i + 1)
  in
  go 0
