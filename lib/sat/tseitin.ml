(* The encoder is written once against an abstract sink so the Solver and
   Cnf backends share the gate clauses. *)
type sink = { fresh : unit -> int; clause : Lit.t list -> unit }

let encode_with sink net ~shared =
  if Netlist.ffs net <> [] then
    invalid_arg "Tseitin: netlist has flip-flops (combinationalize first)";
  let n = Netlist.num_nodes net in
  let vars = Array.make n (-1) in
  let var_of id =
    if vars.(id) >= 0 then vars.(id)
    else begin
      let v = match shared id with Some v -> v | None -> sink.fresh () in
      vars.(id) <- v;
      v
    end
  in
  (* Binary XOR/XNOR clause group: o <-> a xor b (xnor via sign flip). *)
  let xor_clauses o a b positive =
    let oo = if positive then o else Lit.negate o in
    sink.clause [ Lit.negate oo; a; b ];
    sink.clause [ Lit.negate oo; Lit.negate a; Lit.negate b ];
    sink.clause [ oo; Lit.negate a; b ];
    sink.clause [ oo; a; Lit.negate b ]
  in
  (* o <-> AND(ins) with optional output inversion (NAND). *)
  let and_clauses o ins positive =
    let oo = if positive then o else Lit.negate o in
    Array.iter (fun a -> sink.clause [ Lit.negate oo; a ]) ins;
    sink.clause (oo :: Array.to_list (Array.map Lit.negate ins))
  in
  let or_clauses o ins positive =
    let oo = if positive then o else Lit.negate o in
    Array.iter (fun a -> sink.clause [ oo; Lit.negate a ]) ins;
    sink.clause (Lit.negate oo :: Array.to_list ins)
  in
  let encode_node id =
    let nd = Netlist.node net id in
    let o = Lit.pos (var_of id) in
    let ins = Array.map (fun f -> Lit.pos (var_of f)) nd.Netlist.fanins in
    match nd.Netlist.kind with
    | Netlist.Input -> ()
    | Netlist.Dead -> ()
    | Netlist.Const b -> sink.clause [ (if b then o else Lit.negate o) ]
    | Netlist.Ff -> assert false
    | Netlist.Gate fn -> (
      match fn with
      | Cell.Buf ->
        sink.clause [ Lit.negate o; ins.(0) ];
        sink.clause [ o; Lit.negate ins.(0) ]
      | Cell.Not ->
        sink.clause [ Lit.negate o; Lit.negate ins.(0) ];
        sink.clause [ o; ins.(0) ]
      | Cell.And -> and_clauses o ins true
      | Cell.Nand -> and_clauses o ins false
      | Cell.Or -> or_clauses o ins true
      | Cell.Nor -> or_clauses o ins false
      | Cell.Xor | Cell.Xnor ->
        (* Chain wide parities through fresh intermediates. *)
        let rec chain acc k =
          if k = Array.length ins - 1 then acc
          else begin
            let t = Lit.pos (sink.fresh ()) in
            xor_clauses t acc ins.(k) true;
            chain t (k + 1)
          end
        in
        let last = Array.length ins - 1 in
        let acc = chain ins.(0) 1 in
        xor_clauses o acc ins.(last) (fn = Cell.Xor)
      | Cell.Mux ->
        let s = ins.(0) and a = ins.(1) and b = ins.(2) in
        sink.clause [ s; Lit.negate a; o ];
        sink.clause [ s; a; Lit.negate o ];
        sink.clause [ Lit.negate s; Lit.negate b; o ];
        sink.clause [ Lit.negate s; b; Lit.negate o ])
    | Netlist.Lut truth ->
      Array.iteri
        (fun row out_val ->
          let body =
            List.mapi
              (fun i l ->
                if row land (1 lsl i) <> 0 then Lit.negate l else l)
              (Array.to_list ins)
          in
          sink.clause ((if out_val then o else Lit.negate o) :: body))
        truth
  in
  (* Sources first (so shared vars bind), then gates in dependency order. *)
  for id = 0 to n - 1 do
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Input | Netlist.Const _ ->
      ignore (var_of id);
      encode_node id
    | Netlist.Gate _ | Netlist.Lut _ | Netlist.Ff | Netlist.Dead -> ()
  done;
  List.iter encode_node (Netlist.comb_topo_order net);
  vars

let encode solver net ~shared =
  let sink =
    {
      fresh = (fun () -> Solver.new_var solver);
      clause = (fun c -> ignore (Solver.add_clause solver c));
    }
  in
  encode_with sink net ~shared

let encode_simple solver net = encode solver net ~shared:(fun _ -> None)

let to_cnf net =
  let cnf = Cnf.create () in
  let sink =
    { fresh = (fun () -> Cnf.new_var cnf); clause = Cnf.add_clause cnf }
  in
  let vars = encode_with sink net ~shared:(fun _ -> None) in
  (cnf, vars)
