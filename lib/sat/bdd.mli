(** Reduced ordered binary decision diagrams.

    A compact exact representation of Boolean functions, used where
    Monte-Carlo estimation ({!Signal_prob}) is not enough: exact signal
    probabilities for the removal attack's skew analysis on small cones,
    exact corruptibility counts, and cross-checks of the Tseitin encoding
    in the test-suite.  Classic implementation: hash-consed nodes with a
    unique table and a memoized [ite]. *)

type man
(** a manager fixes the variable order [0 .. nvars-1] *)

type t
(** a function handle, valid within its manager *)

(** [manager ~nvars] creates a manager for [nvars] input variables. *)
val manager : nvars:int -> man

val nvars : man -> int

val bfalse : man -> t
val btrue : man -> t

(** [var m i] is the projection of variable [i]. *)
val var : man -> int -> t

val bnot : man -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val bxnor : man -> t -> t -> t
val bnand : man -> t -> t -> t
val bnor : man -> t -> t -> t

(** [ite m f g h] is if-then-else: [f·g + f'·h]. *)
val ite : man -> t -> t -> t -> t

val equal : t -> t -> bool

(** [eval m f assignment] evaluates [f] under [assignment i] per variable. *)
val eval : man -> t -> (int -> bool) -> bool

(** [sat_count m f] is the number of satisfying assignments over all
    [nvars] variables, as a float (exact for < 2^53). *)
val sat_count : man -> t -> float

(** [prob m f] is [sat_count / 2^nvars] — the exact one-probability under
    uniform inputs. *)
val prob : man -> t -> float

(** [any_sat m f] is a satisfying partial assignment (variable, value)
    list, or [None] for the constant-false function. *)
val any_sat : man -> t -> (int * bool) list option

(** Number of live unique nodes (diagnostics). *)
val node_count : man -> int

(** [of_netlist m net ~var_of_input] builds one BDD per node of a
    combinational netlist.  [var_of_input id] gives the BDD variable of
    each [Input] node.  Returns a per-node-id array ([bfalse] for dead
    nodes).  @raise Invalid_argument if the netlist has flip-flops. *)
val of_netlist : man -> Netlist.t -> var_of_input:(int -> int) -> t array
