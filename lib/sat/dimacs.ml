let to_string cnf =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "p cnf %d %d\n" (Cnf.num_vars cnf) (Cnf.num_clauses cnf);
  Cnf.iter_clauses
    (fun c ->
      Array.iter (fun l -> Printf.bprintf buf "%d " (Lit.to_dimacs l)) c;
      Buffer.add_string buf "0\n")
    cnf;
  Buffer.contents buf

let of_string text =
  let cnf = Cnf.create () in
  let lines = String.split_on_char '\n' text in
  let pending = ref [] in
  let handle line =
    let line = String.trim line in
    if line = "" || line.[0] = 'c' then ()
    else if line.[0] = 'p' then begin
      match
        String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
      with
      | [ "p"; "cnf"; v; _c ] -> Cnf.ensure_vars cnf (int_of_string v)
      | _ -> failwith ("Dimacs: bad problem line " ^ line)
    end
    else
      String.split_on_char ' ' line
      |> List.filter (fun s -> s <> "")
      |> List.iter (fun tok ->
             match int_of_string_opt tok with
             | None -> failwith ("Dimacs: bad token " ^ tok)
             | Some 0 ->
               Cnf.add_clause cnf (List.rev !pending);
               pending := []
             | Some i ->
               let l = Lit.of_dimacs i in
               Cnf.ensure_vars cnf (Lit.var l + 1);
               pending := l :: !pending)
  in
  List.iter handle lines;
  if !pending <> [] then Cnf.add_clause cnf (List.rev !pending);
  cnf

let write_file cnf path =
  let oc = open_out path in
  output_string oc (to_string cnf);
  close_out oc

let read_file path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  of_string text
