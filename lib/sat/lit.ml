type t = int

let make v positive =
  if v < 0 then invalid_arg "Lit.make: negative variable";
  (2 * v) + if positive then 0 else 1

let pos v = make v true
let neg v = make v false

let var l = l / 2
let is_pos l = l land 1 = 0
let negate l = l lxor 1

let to_dimacs l = if is_pos l then var l + 1 else -(var l + 1)

let of_dimacs i =
  if i = 0 then invalid_arg "Lit.of_dimacs: zero";
  if i > 0 then pos (i - 1) else neg (-i - 1)

let pp ppf l = Format.fprintf ppf "%s%d" (if is_pos l then "" else "~") (var l)
