(** Zero-dependency structured observability: tracing, metrics, probes.

    The paper's claims are quantitative — glitch windows (Eq. 2),
    slack-eligible FF percentages (Table I), SAT attacks terminating at
    iteration 1 — so a run has to be inspectable beyond its final
    verdict.  This module gives the rest of the system three tools:

    - {!Trace}: nested spans with monotonic timestamps, per-domain
      thread ids and key=value attributes, appended as JSONL whose
      records are Chrome Trace Event objects ([chrome://tracing] /
      Perfetto load them once wrapped in [\[...\]]; see README
      "Observability").
    - {!Metrics}: process-global counters, gauges and histograms with a
      registry and a JSON [dump] snapshot ([gklock attack
      --metrics-out]).
    - {!Probe}: the gate hot paths consult before paying any
      instrumentation cost.  When [GKLOCK_TRACE] is unset every probe
      site reduces to one boolean load, so BENCH_eval / BENCH_attacks
      throughput does not regress.

    Tracing activates either from the environment ([GKLOCK_TRACE=FILE],
    or [GKLOCK_TRACE=1] for [gklock_trace.jsonl]) at first use, or
    programmatically via {!Trace.enable} (what [gklock trace <cmd>]
    does).  All emission is mutex-serialized and safe from multiple
    domains; timestamps are forced monotonically non-decreasing in file
    order, which {!Trace.validate_file} (and [make trace-smoke])
    checks. *)

module Metrics : sig
  type counter
  type gauge
  type histogram

  (** [counter name] registers (or retrieves) the process-global counter
      [name].  Counters are atomic; safe from any domain. *)
  val counter : string -> counter

  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int

  val gauge : string -> gauge
  val set : gauge -> float -> unit

  (** Histograms record count / sum / min / max plus powers-of-two
      magnitude buckets — enough for time-to-exhaustion and span-length
      distributions without a fixed bucket layout. *)
  val histogram : string -> histogram

  val observe : histogram -> float -> unit

  (** [snapshot ()] is the whole registry as one JSON object, keys
      sorted: counters as ints, gauges as floats, histograms as
      [{count,sum,min,max,buckets}]. *)
  val snapshot : unit -> Cjson.t

  (** [dump ()] is [snapshot] rendered as a JSON string (one line). *)
  val dump : unit -> string

  (** [write_file path] writes [dump () ^ "\n"] to [path]. *)
  val write_file : string -> unit

  (** Zero every registered instrument (tests only — instruments stay
      registered so cached [counter] handles remain valid). *)
  val reset : unit -> unit
end

module Trace : sig
  (** Whether span/instant emission is active right now. *)
  val enabled : unit -> bool

  (** [enable ~file ()] starts writing trace events to [file],
      overriding the environment.  The file is truncated: one trace
      file holds one run (the validator requires globally monotone
      timestamps).  Idempotent per file. *)
  val enable : file:string -> unit -> unit

  (** Stop tracing and flush/close the sink. *)
  val disable : unit -> unit

  type span

  (** [span_begin ?args name] emits a "B" record and returns a handle;
      close it with {!span_end}, optionally attaching result
      attributes to the "E" record.  When tracing is disabled both are
      free and no record is emitted. *)
  val span_begin : ?args:(string * Cjson.t) list -> string -> span

  val span_end : ?args:(string * Cjson.t) list -> span -> unit

  (** [with_span ?args name f] wraps [f ()] in a span; the "E" record is
      emitted even when [f] raises. *)
  val with_span : ?args:(string * Cjson.t) list -> string -> (unit -> 'a) -> 'a

  (** A zero-duration "i" record (glitch pulses, budget trips, retry
      causes...). *)
  val instant : ?args:(string * Cjson.t) list -> string -> unit

  (** A "C" record: named counter series plotted by the trace viewer. *)
  val counter_event : string -> (string * float) list -> unit

  type check = {
    v_events : int;  (** records parsed *)
    v_spans : int;  (** matched B/E pairs *)
    v_max_depth : int;  (** deepest per-domain span nesting *)
  }

  (** [validate_file path] checks the JSONL schema [make trace-smoke]
      relies on: every line a JSON object with [name]/[ph]/[ts]/[pid]/
      [tid], phases one of B E X i C M, timestamps non-decreasing in
      file order, and every "B" closed by a matching "E" on the same
      [tid] with names pairing LIFO. *)
  val validate_file : string -> (check, string) result
end

module Probe : sig
  (** One boolean load: true iff tracing is (or has been) enabled.  Hot
      paths guard their accounting with this so the untraced build does
      no instrumentation work. *)
  val active : unit -> bool

  (** [add c n] / [incr c] bump [c] only when {!active}. *)
  val add : Metrics.counter -> int -> unit

  val incr : Metrics.counter -> unit
end
