(* Observability: structured tracing, a metrics registry and cheap
   probes.  See obs.mli for the contract; the implementation notes that
   matter are local:

   - Everything is domain-safe.  Counters are [Atomic.t]; histogram and
     sink state sit behind mutexes.
   - One mutex serializes timestamp assignment *and* the line write, so
     records land in the file in timestamp order even when campaign
     worker domains trace concurrently — the monotonicity the validator
     checks is by construction, not luck.
   - [Probe.active] is an [Atomic.t bool] read; hot paths pay one load
     when tracing is off. *)

(* ----- metrics ----- *)

module Metrics = struct
  type counter = int Atomic.t
  type gauge = float Atomic.t

  type hist_state = {
    h_mutex : Mutex.t;
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    (* log2-magnitude buckets: index = clamp (frexp exponent + 32),
       so ~1e-9 .. ~4e9 each get their own power-of-two bucket. *)
    h_buckets : int array;
  }

  type histogram = hist_state

  type instrument = Counter of counter | Gauge of gauge | Hist of histogram

  let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
  let reg_mutex = Mutex.create ()

  let with_registry f =
    Mutex.lock reg_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

  let register name make match_existing =
    with_registry (fun () ->
        match Hashtbl.find_opt registry name with
        | Some i -> (
          match match_existing i with
          | Some v -> v
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Obs.Metrics: %S already registered as a different kind" name))
        | None ->
          let v = make () in
          v)

  let counter name =
    register name
      (fun () ->
        let c = Atomic.make 0 in
        Hashtbl.replace registry name (Counter c);
        c)
      (function Counter c -> Some c | Gauge _ | Hist _ -> None)

  let incr c = ignore (Atomic.fetch_and_add c 1)
  let add c n = ignore (Atomic.fetch_and_add c n)
  let value c = Atomic.get c

  let gauge name =
    register name
      (fun () ->
        let g = Atomic.make 0.0 in
        Hashtbl.replace registry name (Gauge g);
        g)
      (function Gauge g -> Some g | Counter _ | Hist _ -> None)

  let set g v = Atomic.set g v

  let histogram name =
    register name
      (fun () ->
        let h =
          {
            h_mutex = Mutex.create ();
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
            h_buckets = Array.make 64 0;
          }
        in
        Hashtbl.replace registry name (Hist h);
        h)
      (function Hist h -> Some h | Counter _ | Gauge _ -> None)

  let bucket_of v =
    if v <= 0.0 || Float.is_nan v then 0
    else
      let _, e = Float.frexp v in
      max 0 (min 63 (e + 32))

  let observe h v =
    Mutex.lock h.h_mutex;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1;
    Mutex.unlock h.h_mutex

  let hist_json h =
    Mutex.lock h.h_mutex;
    let r =
      Cjson.Obj
        [
          ("count", Cjson.Int h.h_count);
          ("sum", Cjson.Float h.h_sum);
          ("min", Cjson.Float (if h.h_count = 0 then 0.0 else h.h_min));
          ("max", Cjson.Float (if h.h_count = 0 then 0.0 else h.h_max));
          ( "buckets",
            Cjson.List
              (Array.to_list h.h_buckets
              |> List.mapi (fun i n -> (i, n))
              |> List.filter (fun (_, n) -> n > 0)
              |> List.map (fun (i, n) ->
                     Cjson.List [ Cjson.Int (i - 32); Cjson.Int n ])) );
        ]
    in
    Mutex.unlock h.h_mutex;
    r

  let snapshot () =
    let entries =
      with_registry (fun () ->
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [])
    in
    Cjson.Obj
      (List.sort (fun (a, _) (b, _) -> compare a b) entries
      |> List.map (fun (name, i) ->
             ( name,
               match i with
               | Counter c -> Cjson.Int (Atomic.get c)
               | Gauge g -> Cjson.Float (Atomic.get g)
               | Hist h -> hist_json h )))

  let dump () = Cjson.to_string (snapshot ())

  let write_file path =
    let oc = open_out path in
    output_string oc (dump ());
    output_char oc '\n';
    close_out oc

  let reset () =
    with_registry (fun () ->
        Hashtbl.iter
          (fun _ -> function
            | Counter c -> Atomic.set c 0
            | Gauge g -> Atomic.set g 0.0
            | Hist h ->
              Mutex.lock h.h_mutex;
              h.h_count <- 0;
              h.h_sum <- 0.0;
              h.h_min <- infinity;
              h.h_max <- neg_infinity;
              Array.fill h.h_buckets 0 (Array.length h.h_buckets) 0;
              Mutex.unlock h.h_mutex)
          registry)
end

(* ----- trace sink ----- *)

let probe_flag = Atomic.make false

type sink = {
  s_mutex : Mutex.t;
  s_oc : out_channel;
  s_file : string;
  mutable s_last_us : int;
  s_t0 : float;
}

let sink : sink option Atomic.t = Atomic.make None
let env_read = Atomic.make false

(* Latch GKLOCK_TRACE once: unset/""/"0" leaves tracing off, "1" means
   the default file, anything else is the output path. *)
let init_from_env enable_to =
  if not (Atomic.get env_read) then begin
    Atomic.set env_read true;
    match Sys.getenv_opt "GKLOCK_TRACE" with
    | None | Some "" | Some "0" -> ()
    | Some "1" -> enable_to "gklock_trace.jsonl"
    | Some file -> enable_to file
  end

let rec enable_file file =
  match Atomic.get sink with
  | Some s when s.s_file = file -> ()
  | Some s ->
    disable_sink s;
    enable_file file
  | None ->
    Atomic.set env_read true;
    let oc =
      Unix.out_channel_of_descr
        (* Truncate: one trace file holds one run — the validator requires
           globally monotone timestamps, which a second appended run with a
           fresh epoch would break. *)
        (Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644)
    in
    let s =
      {
        s_mutex = Mutex.create ();
        s_oc = oc;
        s_file = file;
        s_last_us = 0;
        s_t0 = Unix.gettimeofday ();
      }
    in
    Atomic.set sink (Some s);
    Atomic.set probe_flag true

and disable_sink s =
  Atomic.set sink None;
  Atomic.set probe_flag false;
  Mutex.lock s.s_mutex;
  (try flush s.s_oc; close_out s.s_oc with Sys_error _ -> ());
  Mutex.unlock s.s_mutex

let current_sink () =
  init_from_env enable_file;
  Atomic.get sink

let () =
  at_exit (fun () ->
      match Atomic.get sink with
      | Some s -> ( try flush s.s_oc with Sys_error _ -> ())
      | None -> ())

(* ----- trace ----- *)

module Trace = struct
  let enabled () = current_sink () <> None
  let enable ~file () = enable_file file

  let disable () =
    match Atomic.get sink with Some s -> disable_sink s | None -> ()

  let tid () = (Domain.self () :> int)

  (* Timestamp (µs since enable) and write under one lock: file order is
     timestamp order. *)
  let emit s ~ph ~name ?dur args =
    Mutex.lock s.s_mutex;
    let us =
      let raw = int_of_float ((Unix.gettimeofday () -. s.s_t0) *. 1e6) in
      if raw > s.s_last_us then s.s_last_us <- raw;
      s.s_last_us
    in
    let fields =
      [
        ("name", Cjson.Str name);
        ("ph", Cjson.Str ph);
        ("ts", Cjson.Int us);
        ("pid", Cjson.Int (Unix.getpid ()));
        ("tid", Cjson.Int (tid ()));
      ]
      @ (match dur with Some d -> [ ("dur", Cjson.Int d) ] | None -> [])
      @ (match args with [] -> [] | a -> [ ("args", Cjson.Obj a) ])
    in
    (try
       output_string s.s_oc (Cjson.to_string (Cjson.Obj fields));
       output_char s.s_oc '\n';
       flush s.s_oc
     with Sys_error _ -> ());
    Mutex.unlock s.s_mutex

  type span = No_span | Span of { sp_name : string }

  let span_begin ?(args = []) name =
    match current_sink () with
    | None -> No_span
    | Some s ->
      emit s ~ph:"B" ~name args;
      Span { sp_name = name }

  let span_end ?(args = []) = function
    | No_span -> ()
    | Span { sp_name } -> (
      match Atomic.get sink with
      | None -> ()
      | Some s -> emit s ~ph:"E" ~name:sp_name args)

  let with_span ?args name f =
    match current_sink () with
    | None -> f ()
    | Some _ ->
      let sp = span_begin ?args name in
      Fun.protect ~finally:(fun () -> span_end sp) f

  let instant ?(args = []) name =
    match current_sink () with
    | None -> ()
    | Some s -> emit s ~ph:"i" ~name args

  let counter_event name series =
    match current_sink () with
    | None -> ()
    | Some s ->
      emit s ~ph:"C" ~name
        (List.map (fun (k, v) -> (k, Cjson.Float v)) series)

  (* ----- validation ----- *)

  type check = { v_events : int; v_spans : int; v_max_depth : int }

  let validate_file path =
    let ic = open_in path in
    let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
    let events = ref 0 and spans = ref 0 and max_depth = ref 0 in
    let last_ts = ref min_int in
    let err = ref None in
    let fail lineno msg =
      err := Some (Printf.sprintf "%s:%d: %s" path lineno msg)
    in
    let lineno = ref 0 in
    (try
       while !err = None do
         let line = input_line ic in
         incr lineno;
         if String.trim line <> "" then begin
           match Cjson.of_string line with
           | Error e -> fail !lineno ("bad JSON: " ^ e)
           | Ok j -> (
             incr events;
             let str k = Cjson.mem_str k j in
             let int k = Cjson.mem_int k j in
             match (str "name", str "ph", int "ts", int "pid", int "tid") with
             | None, _, _, _, _ -> fail !lineno "missing name"
             | _, None, _, _, _ -> fail !lineno "missing ph"
             | _, _, None, _, _ -> fail !lineno "missing ts"
             | _, _, _, None, _ -> fail !lineno "missing pid"
             | _, _, _, _, None -> fail !lineno "missing tid"
             | Some name, Some ph, Some ts, Some _, Some tid ->
               if ts < !last_ts then
                 fail !lineno
                   (Printf.sprintf "timestamp %d goes backwards (last %d)" ts
                      !last_ts)
               else begin
                 last_ts := ts;
                 let stack =
                   Option.value ~default:[] (Hashtbl.find_opt stacks tid)
                 in
                 match ph with
                 | "B" ->
                   let stack = name :: stack in
                   if List.length stack > !max_depth then
                     max_depth := List.length stack;
                   Hashtbl.replace stacks tid stack
                 | "E" -> (
                   match stack with
                   | [] ->
                     fail !lineno
                       (Printf.sprintf "E %S with no open span on tid %d" name
                          tid)
                   | top :: rest ->
                     if top <> name then
                       fail !lineno
                         (Printf.sprintf "E %S closes open span %S" name top)
                     else begin
                       incr spans;
                       Hashtbl.replace stacks tid rest
                     end)
                 | "X" -> (
                   match Cjson.mem_int "dur" j with
                   | Some d when d >= 0 -> ()
                   | Some _ -> fail !lineno "X with negative dur"
                   | None -> fail !lineno "X without dur")
                 | "i" | "C" | "M" -> ()
                 | other ->
                   fail !lineno (Printf.sprintf "unknown phase %S" other)
               end)
         end
       done
     with End_of_file -> ());
    close_in ic;
    match !err with
    | Some e -> Error e
    | None ->
      let open_spans =
        Hashtbl.fold
          (fun tid stack acc ->
            match stack with
            | [] -> acc
            | top :: _ ->
              Printf.sprintf "tid %d: span %S never closed" tid top :: acc)
          stacks []
      in
      (match open_spans with
      | [] ->
        Ok { v_events = !events; v_spans = !spans; v_max_depth = !max_depth }
      | e :: _ -> Error (path ^ ": " ^ e))
end

(* ----- probes ----- *)

module Probe = struct
  let active () = Atomic.get probe_flag
  let add c n = if Atomic.get probe_flag then Metrics.add c n
  let incr c = if Atomic.get probe_flag then Metrics.incr c
end
