(** The complete Sec. IV-B design flow.

    The paper's flow: synthesize the original Verilog (Design Compiler) →
    place and route (IC Compiler) → timing analysis (PrimeTime) → select
    feasible flip-flop locations → insert GKs/KEYGENs via design
    constraints → re-synthesize → re-run P&R → re-analyze timing →
    separate true from false violations → drop endpoints with true
    violations and retry until clean.  This module runs that loop on our
    substrate end-to-end and reports every stage. *)

type report = {
  clock_ps : int;
  baseline_stats : Stats.t;
  baseline_place : Placer.report;
  attempts : int;                 (** selection/insertion iterations *)
  dropped_ffs : string list;      (** endpoints dropped for true violations *)
  locked_stats : Stats.t;
  locked_place : Placer.report;
  cell_overhead_pct : float;
  area_overhead_pct : float;
  false_violations : int;         (** deliberate, glitch-explained flags *)
  timing_entries : Timing_report.entry list;
}

(** [run ?seed ?profile ?l_glitch_ps ?clock_margin net ~n_gks] executes the
    flow and returns the locked design plus the stage report.
    @raise Invalid_argument when sites run out even after retries. *)
val run :
  ?seed:int ->
  ?profile:Delay_synth.profile ->
  ?l_glitch_ps:int ->
  ?clock_margin:float ->
  Netlist.t ->
  n_gks:int ->
  Insertion.design * report

val pp_report : Format.formatter -> report -> unit
