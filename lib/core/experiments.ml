(* Seeds are fixed so every run regenerates identical tables. *)

type table1_row = {
  t1_bench : string;
  t1_cells : int;
  t1_ffs : int;
  t1_avail : int;
  t1_cov_pct : float;
  t1_avail4 : int;
  t1_clock_ps : int;
  t1_paper_avail : int;
  t1_paper_avail4 : int;
}

let table1_row spec =
  let net = Benchmarks.load spec in
  let st = Stats.of_netlist net in
  let clock = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
  let sites = Insertion.available_sites net ~clock_ps:clock ~l_glitch_ps:1000 in
  let avail = List.length sites in
  let avail4 =
    Ff_select.selected_count net
      ~among:(List.map (fun s -> s.Insertion.si_ff) sites)
  in
  {
    t1_bench = spec.Benchmarks.bname;
    t1_cells = st.Stats.cells;
    t1_ffs = st.Stats.ffs;
    t1_avail = avail;
    t1_cov_pct = 100.0 *. float_of_int avail /. float_of_int st.Stats.ffs;
    t1_avail4 = avail4;
    t1_clock_ps = clock;
    t1_paper_avail = spec.Benchmarks.paper_avail_ff;
    t1_paper_avail4 = spec.Benchmarks.paper_avail_ff4;
  }

(* Each row regenerates and analyzes its own benchmark, so rows are
   independent and run one-per-domain. *)
let table1 () = Parallel.map table1_row Benchmarks.specs

(* Delay-profile naming shared by the CLI and the campaign subsystem: a
   campaign job spec carries the profile as a string, and the job ID is a
   digest of that string — renaming a profile invalidates its jobs. *)
let profiles =
  [ ("standard", `Standard); ("buffers", `Buffers_only); ("custom", `Custom) ]

let profile_names = List.map fst profiles
let profile_of_name n = List.assoc_opt n profiles

let profile_name p =
  fst (List.find (fun (_, q) -> q = p) profiles)

type overhead_cell = { oh_cell_pct : float; oh_area_pct : float }

type table2_row = {
  t2_bench : string;
  t2_gk4 : overhead_cell option;
  t2_gk8 : overhead_cell option;
  t2_gk16 : overhead_cell option;
  t2_hybrid : overhead_cell option;
}

let table2_row ?(profile = `Standard) spec =
  let net = Benchmarks.load spec in
  let clock = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
  let seed = Hashtbl.hash spec.Benchmarks.bname land 0xffff in
  let gk n =
    try
      let d = Insertion.lock ~seed:(seed + n) ~profile net ~clock_ps:clock ~n_gks:n in
      let c, a = Insertion.overhead d in
      Some { oh_cell_pct = c; oh_area_pct = a }
    with Invalid_argument _ -> None
  in
  let hybrid =
    try
      let h = Hybrid.lock ~seed:(seed + 99) ~profile net ~clock_ps:clock ~n_gks:8 ~n_xors:16 in
      let c, a = Hybrid.overhead h in
      Some { oh_cell_pct = c; oh_area_pct = a }
    with Invalid_argument _ -> None
  in
  {
    t2_bench = spec.Benchmarks.bname;
    t2_gk4 = gk 4;
    t2_gk8 = gk 8;
    t2_gk16 = gk 16;
    t2_hybrid = hybrid;
  }

let table2 ?profile () = Parallel.map (table2_row ?profile) Benchmarks.specs

type attack_row = {
  at_bench : string;
  at_keys : int;
  at_unsat_at_first : bool;
  at_iterations : int;
  at_key_mismatches : int;
}

let sat_attack_on_gk spec ~n_gks =
  let net = Benchmarks.load spec in
  let clock = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
  let d = Insertion.lock ~seed:42 net ~clock_ps:clock ~n_gks in
  let stripped, gkkeys = Insertion.strip_keygens d in
  let locked_comb, _ = Combinationalize.run stripped in
  let oracle_comb, _ = Combinationalize.run net in
  let o =
    Attack.run ~name:"sat" ~locked:locked_comb ~key_inputs:gkkeys
      ~oracle:(Oracle.of_netlist oracle_comb)
      ()
  in
  {
    at_bench = spec.Benchmarks.bname;
    at_keys = List.length gkkeys;
    at_unsat_at_first =
      (match o.Attack.verdict with Attack.No_dip _ -> true | _ -> false);
    at_iterations = o.Attack.iterations;
    at_key_mismatches =
      Option.value
        (Attack.mismatches_of_verdict o.Attack.verdict)
        ~default:(-1);
  }

let sat_attack_table ?(n_gks = 8) () =
  List.filter_map
    (fun spec ->
      try Some (sat_attack_on_gk spec ~n_gks) with Invalid_argument _ -> None)
    Benchmarks.specs

type comparison_row = {
  cp_scheme : string;
  cp_keys : int;
  cp_outcome : string;
  cp_iterations : int;
  cp_decrypted : bool;
}

(* Medium circuit used by the attack comparison: large enough to be
   non-trivial, small enough for SARLock's exponential DIP count. *)
let comparison_circuit seed =
  Generator.generate
    {
      Generator.gen_name = "cmp";
      seed;
      n_pi = 16;
      n_po = 12;
      n_ff = 40;
      n_gates = 300;
      depth = 30;
      ff_depth_bias = 0.3;
    }

let attack_comparison ?(seed = 5) () =
  let net = comparison_circuit seed in
  let comb, _ = Combinationalize.run net in
  let oracle = Oracle.of_netlist comb in
  let clock = Sta.clock_for net ~margin:1.6 in
  let attack_on name (lk : Locked.t) =
    Attack.run
      ~budget:(Budget.create ~max_iterations:2048 ())
      ~name ~locked:lk.Locked.net ~key_inputs:lk.Locked.key_inputs ~oracle ()
  in
  let classify (o : Attack.outcome) =
    match o.Attack.verdict with
    | Attack.Key_recovered _ -> ("key recovered, functionally correct", true)
    | Attack.Wrong_key _ -> ("key recovered but wrong on the chip", false)
    | Attack.No_dip _ -> ("UNSAT at first DIP search: attack invalid", false)
    | Attack.Out_of_budget _ -> ("DIP budget exhausted", false)
    | Attack.Skipped | Attack.Approx_key _ | Attack.Partial_key _
    | Attack.Recovered_netlist _ | Attack.Gave_up _ ->
      ("unexpected outcome", false)
  in
  let xor_row =
    let o = attack_on "sat" (Xor_lock.lock ~seed comb ~n_keys:16) in
    let outcome, ok = classify o in
    {
      cp_scheme = "XOR/XNOR [9]";
      cp_keys = 16;
      cp_outcome = outcome;
      cp_iterations = o.Attack.iterations;
      cp_decrypted = ok;
    }
  in
  let mux_row =
    let o = attack_on "sat" (Mux_lock.lock ~seed comb ~n_keys:16) in
    let outcome, ok = classify o in
    {
      cp_scheme = "MUX";
      cp_keys = 16;
      cp_outcome = outcome;
      cp_iterations = o.Attack.iterations;
      cp_decrypted = ok;
    }
  in
  let sar_row =
    let lk = Sarlock.lock ~seed comb ~n_keys:8 in
    let o = attack_on "sat" lk in
    let outcome =
      Printf.sprintf "SAT needs %d DIPs (~2^8); removal strips it"
        o.Attack.iterations
    in
    let rm = attack_on "removal" lk in
    {
      cp_scheme = "SARLock [14]";
      cp_keys = 8;
      cp_outcome = outcome;
      cp_iterations = o.Attack.iterations;
      cp_decrypted = Attack.broken rm.Attack.verdict;
    }
  in
  let antisat_row =
    let rm = attack_on "removal" (Antisat.lock ~seed comb ~n:8) in
    let ok = Attack.broken rm.Attack.verdict in
    {
      cp_scheme = "Anti-SAT [13]";
      cp_keys = 16;
      cp_outcome =
        (if ok then
           Printf.sprintf "removal locates the block in %d tries"
             rm.Attack.iterations
         else "removal failed");
      cp_iterations = 0;
      cp_decrypted = ok;
    }
  in
  let tdk_row =
    let tdk = Tdk.lock ~seed net ~clock_ps:clock ~n_sites:8 in
    let strippedt = Removal_attack.strip_tdbs tdk in
    let tcomb, _ = Combinationalize.run strippedt.Locked.net in
    let o =
      Attack.run ~name:"sat" ~locked:tcomb
        ~key_inputs:strippedt.Locked.key_inputs ~oracle ()
    in
    {
      cp_scheme = "TDK [12]";
      cp_keys = 16;
      cp_outcome = "TDB removed + re-synthesized, then SAT succeeds";
      cp_iterations = o.Attack.iterations;
      cp_decrypted =
        (match o.Attack.verdict with
        | Attack.Key_recovered _ -> true
        | _ -> false);
    }
  in
  let gk_design =
    Insertion.lock ~seed net ~clock_ps:(Sta.clock_for net ~margin:2.2) ~n_gks:8
  in
  let gk_stripped, gkkeys = Insertion.strip_keygens gk_design in
  let gk_comb, _ = Combinationalize.run gk_stripped in
  let gk_row =
    let o =
      Attack.run ~name:"sat" ~locked:gk_comb ~key_inputs:gkkeys ~oracle ()
    in
    let outcome, ok =
      match o.Attack.verdict with
      | Attack.No_dip { mismatches; _ } ->
        ( Printf.sprintf
            "UNSAT at first DIP; arbitrary key wrong on %d/64 samples"
            mismatches,
          false )
      | Attack.Key_recovered _ -> ("unexpected recovery", true)
      | Attack.Out_of_budget _ -> ("budget exhausted", false)
      | _ -> ("unexpected outcome", false)
    in
    {
      cp_scheme = "GK (this paper)";
      cp_keys = List.length gkkeys;
      cp_outcome = outcome;
      cp_iterations = o.Attack.iterations;
      cp_decrypted = ok;
    }
  in
  let enhanced_row =
    let o =
      Attack.run ~name:"enhanced-removal" ~locked:gk_comb ~key_inputs:gkkeys
        ~oracle ()
    in
    {
      cp_scheme = "GK vs locate+remodel (V-D)";
      cp_keys = List.length (Enhanced_removal.locate gk_comb);
      cp_outcome = "GKs located and remodelled as XORs; SAT then succeeds";
      cp_iterations = o.Attack.iterations;
      cp_decrypted =
        (match o.Attack.verdict with
        | Attack.Key_recovered _ -> true
        | _ -> false);
    }
  in
  let withheld_row =
    (* Hide every GK MUX (plus branch gates) inside a withheld LUT; the
       structural locator then finds nothing. *)
    let hidden = Netlist.copy gk_comb in
    let located = Enhanced_removal.locate hidden in
    List.iter
      (fun gk ->
        let interior =
          List.filter
            (fun id -> id <> gk.Enhanced_removal.mux)
            (List.filter
               (fun id ->
                 (* keep only branch gates private to this GK *)
                 match (Netlist.node hidden id).Netlist.kind with
                 | Netlist.Gate (Cell.Xor | Cell.Xnor) -> true
                 | Netlist.Gate Cell.Buf -> true
                 | Netlist.Gate _ | Netlist.Lut _ | Netlist.Input
                 | Netlist.Const _ | Netlist.Ff | Netlist.Dead -> false)
               gk.Enhanced_removal.branch_nodes)
        in
        try
          ignore
            (Withhold.absorb hidden ~root:gk.Enhanced_removal.mux ~interior)
        with Invalid_argument _ -> ())
      located;
    let relocated = Enhanced_removal.locate hidden in
    let space =
      Enhanced_removal.withheld_search_space_log2
        ~n_gks:(List.length located) ~lut_inputs:2
    in
    {
      cp_scheme = "GK + withholding (V-D)";
      cp_keys = List.length gkkeys;
      cp_outcome =
        Printf.sprintf
          "locator finds %d GKs (was %d); modelling needs 2^%.0f functions"
          (List.length relocated) (List.length located) space;
      cp_iterations = 0;
      cp_decrypted = List.length relocated > 0;
    }
  in
  [ xor_row; mux_row; sar_row; antisat_row; tdk_row; gk_row; enhanced_row;
    withheld_row ]

(* ----- Figures ----- *)

let fig4 () =
  let net = Netlist.create "fig4" in
  let x = Netlist.add_input net "x" in
  let key = Netlist.add_input net "key" in
  let gk =
    Gk.insert net ~profile:`Custom ~name:"gk" ~x ~key
      ~variant:Gk.Invert_on_const ~d_path_a_ps:2000 ~d_path_b_ps:3000 ()
  in
  Netlist.add_output net "y" gk.Gk.out;
  let drive pi =
    if pi = x then Timing_sim.Const true
    else
      Timing_sim.Wave
        (Waveform.make ~initial:Logic.F [ (3000, Logic.T); (11000, Logic.F) ])
  in
  let r = Timing_sim.run ~drive net { Timing_sim.clock_ps = 20000; cycles = 1 } in
  let w name = Timing_sim.wave_of r net name in
  "Fig. 4 — GK of Fig. 3(a), x = 1, DA = 2 ns, DB = 3 ns; key rises @3 ns, falls @11 ns\n"
  ^ Waveform.render ~t0:0 ~t1:16000 ~step:250
      [
        ("x", w "x");
        ("key", w "key");
        ("Aout", w "gk_pa_gate");
        ("Bout", w "gk_pb_gate");
        ("y", w "gk_mux");
      ]
  ^ Printf.sprintf
      "glitches at y: rise-triggered length %d ps (DB+mux), fall-triggered %d ps (DA+mux)\n"
      (Gk.glitch_on_rise_ps gk) (Gk.glitch_on_fall_ps gk)

let fig6 () =
  let clock = 8000 and cycles = 3 in
  let render k1v k2v label =
    let net = Netlist.create "fig6" in
    let k1 = Netlist.add_input net "k1" in
    let k2 = Netlist.add_input net "k2" in
    let kg =
      Keygen.insert net ~profile:`Custom ~name:"kg" ~k1 ~k2 ~adb_da_ps:3000
        ~adb_db_ps:6000 ()
    in
    Netlist.add_output net "key_out" kg.Keygen.key_out;
    let drive pi =
      if pi = k1 then Timing_sim.Const k1v else Timing_sim.Const k2v
    in
    let r = Timing_sim.run ~drive net { Timing_sim.clock_ps = clock; cycles } in
    (label, Timing_sim.wave_of r net "kg_out")
  in
  "Fig. 6 — KEYGEN key_out for the four (k1,k2) assignments (DA = 3 ns, DB = 6 ns, T = 8 ns)\n"
  ^ Waveform.render ~t0:0 ~t1:(cycles * clock) ~step:250
      [
        render false false "(0,0) const0 ";
        render false true "(0,1) delayA ";
        render true false "(1,0) delayB ";
        render true true "(1,1) const1 ";
      ]

(* One GK feeding one FF, key driven directly with a chosen trigger. *)
let fig7_scenario ~clock ~t_trigger =
  let net = Netlist.create "fig7" in
  let x = Netlist.add_input net "x" in
  let key = Netlist.add_input net "key" in
  let gk =
    Gk.insert net ~profile:`Custom ~name:"gk" ~x ~key
      ~variant:Gk.Invert_on_const ~d_path_a_ps:910 ~d_path_b_ps:910 ()
  in
  let ff = Netlist.add_ff net ~name:"ff" gk.Gk.out in
  Netlist.add_output net "q" ff;
  let drive pi =
    if pi = x then Timing_sim.Const true
    else
      match t_trigger with
      | None -> Timing_sim.Const false
      | Some t ->
        Timing_sim.Wave
          (Waveform.toggle ~t0:t ~period:clock ~start:Logic.F
             ~until:(4 * clock))
  in
  let r = Timing_sim.run ~drive net { Timing_sim.clock_ps = clock; cycles = 3 } in
  (net, gk, r)

let fig7 () =
  let clock = 4000 in
  let d_mux = (Cell_lib.bind Cell.Mux 3).Cell.delay_ps in
  let l = 910 + d_mux in
  let site =
    {
      Gk_timing.t_arrival = 0;
      lb = Cell_lib.dff_hold_ps;
      ub = clock - Cell_lib.dff_setup_ps;
      t_j = clock;
      t_setup = Cell_lib.dff_setup_ps;
      t_hold = Cell_lib.dff_hold_ps;
    }
  in
  let show label t_trigger =
    let _, _, r = fig7_scenario ~clock ~t_trigger in
    let scen =
      match Gk_timing.classify site ~l_glitch:l ~d_mux ~t_trigger with
      | Some Gk_timing.On_level -> "on-level"
      | Some Gk_timing.Glitch_early -> "glitch-early"
      | Some Gk_timing.Glitch_late -> "glitch-late"
      | Some Gk_timing.Glitchless -> "glitchless"
      | None -> "VIOLATION"
    in
    let q = List.assoc "q" r.Timing_sim.po_samples in
    Printf.sprintf "%-32s classify=%-12s violations=%d q-samples=%s\n" label
      scen
      (List.length r.Timing_sim.violations)
      (String.concat ""
         (List.map (String.make 1)
            (Array.to_list (Array.map Logic.to_char q))))
  in
  "Fig. 7 — legal transmission scenarios (x = 1, L_glitch = 1 ns, T = 4 ns, variant (a))\n"
  ^ show "(a) data on the glitch level" (Some (clock - 800))
  ^ show "(b) glitch before the window" (Some 1200)
  ^ show "(c) glitch after the window (next cycle)" (Some (clock - 30))
  ^ show "(d) glitchless (constant key)" None
  ^ "scenario (a) captures x (the glitch acts as a buffer); (b)/(d) capture\n\
     x' (the stable inverter); a transition inside the window would be a\n\
     violation and is rejected by Eqs. (5)-(6).\n"

let fig9 () =
  let site =
    {
      Gk_timing.t_arrival = 1000;
      lb = 1000;
      ub = 7000;
      t_j = 8000;
      t_setup = 1000;
      t_hold = 1000;
    }
  in
  let l = 3000 and d_mux = 0 in
  let on = Gk_timing.trigger_window_on_level site ~l_glitch:l ~d_mux in
  let off = Gk_timing.trigger_window_off_level site ~l_glitch:l ~d_mux in
  let pr = function
    | Some (a, b) -> Printf.sprintf "(%d, %d) ps" a b
    | None -> "empty"
  in
  Printf.sprintf
    "Fig. 9 — trigger ranges for T_clk = 8 ns, setup = hold = 1 ns, L_glitch = 3 ns\n\
     (T_arrival = 1 ns, D_react ~ 0 as in the paper's sketch)\n\
     Eq. (5) on-level trigger window : %s\n\
     Eq. (6) off-level trigger window: %s\n\
     boundary glitches:\n\
     (a) latest on-level : trigger just before UB=7000, glitch (7000,10000) covers the 7000-9000 window edge\n\
     (b) earliest on-level: trigger at 6000, glitch (6000,9000) still satisfies hold at 9000\n\
     (c) latest early     : trigger at 4000, glitch (4000,7000) ends at the setup boundary\n\
     (d) earliest late    : trigger at 1000, glitch (1000,4000) clears the hold boundary\n"
    (pr on) (pr off)

(* ----- Ablations ----- *)

type ablation_glitch_row = {
  ag_l_glitch_ps : int;
  ag_avail : (string * int) list;
}

let ablation_glitch_length ?(lengths = [ 500; 1000; 2000; 3000 ]) () =
  List.map
    (fun l ->
      {
        ag_l_glitch_ps = l;
        ag_avail =
          List.map
            (fun spec ->
              let net = Benchmarks.load spec in
              let clock = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
              ( spec.Benchmarks.bname,
                List.length
                  (Insertion.available_sites net ~clock_ps:clock
                     ~l_glitch_ps:l) ))
            Benchmarks.specs;
      })
    lengths

type ablation_profile_row = {
  ap_profile : string;
  ap_cell_oh_pct : float;
  ap_area_oh_pct : float;
  ap_delay_cells : int;
}

let count_delay_cells net =
  let n = ref 0 in
  for id = 0 to Netlist.num_nodes net - 1 do
    match (Netlist.node net id).Netlist.cell with
    | Some c ->
      let name = c.Cell.cell_name in
      if
        String.length name >= 3
        && (String.sub name 0 3 = "DLY" || String.sub name 0 3 = "BUF")
        && (Netlist.node net id).Netlist.kind <> Netlist.Ff
      then incr n
    | None -> ()
  done;
  !n

let ablation_delay_profile ?(bench = "s5378") () =
  let spec = Option.get (Benchmarks.find_spec bench) in
  let net = Benchmarks.load spec in
  let clock = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
  let base_delay_cells = count_delay_cells net in
  List.map
    (fun (label, profile) ->
      let d = Insertion.lock ~seed:7 ~profile net ~clock_ps:clock ~n_gks:8 in
      let c, a = Insertion.overhead d in
      {
        ap_profile = label;
        ap_cell_oh_pct = c;
        ap_area_oh_pct = a;
        ap_delay_cells = count_delay_cells d.Insertion.lnet - base_delay_cells;
      })
    [
      ("X1 buffers only (naive mapping)", `Buffers_only);
      ("DLY library cells (Table II)", `Standard);
      ("customized delay cells (future work)", `Custom);
    ]

(* ----- Corruptibility ----- *)

type corruption_row = {
  co_key : string;
  co_po_mismatch_pct : float;
  co_violations : int;
}

let corruptibility ?(bench = "s5378") ?(n_gks = 8) () =
  let spec = Option.get (Benchmarks.find_spec bench) in
  let net = Benchmarks.load spec in
  let clock = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
  let d = Insertion.lock ~seed:11 net ~clock_ps:clock ~n_gks in
  let cycles = 24 in
  let cfg = { Timing_sim.clock_ps = clock; cycles } in
  let stim net2 = Stimuli.edge_aligned ~seed:23 net2 ~clock_ps:clock ~cycles in
  let base =
    Timing_sim.run ~drive:(stim net) ~captures_from:(fun _ -> 1) net cfg
  in
  let run key =
    Timing_sim.run
      ~drive:(Insertion.timing_drive ~other:(stim d.Insertion.lnet) d key)
      ~captures_from:(Insertion.capture_policy d) d.Insertion.lnet cfg
  in
  let row label key =
    let r = run key in
    let mism, total = Stimuli.po_agreement ~skip:2 base r in
    {
      co_key = label;
      co_po_mismatch_pct =
        (if total = 0 then 0.0
         else 100.0 *. float_of_int mism /. float_of_int total);
      co_violations = List.length r.Timing_sim.violations;
    }
  in
  let correct = d.Insertion.correct_key in
  let all_const b = List.map (fun (n, _) -> (n, b)) correct in
  let flipped =
    (* Select the other delayed branch on every GK: mistimed glitches. *)
    List.map (fun (n, b) -> (n, not b)) correct
  in
  [
    row "correct key" correct;
    row "all-zeros (constant 0: GK = stable inverter)" (all_const false);
    row "all-ones (constant 1: GK = stable inverter)" (all_const true);
    row "opposite branch (mistimed transitions)" flipped;
    row "random wrong key" (Key.random_wrong ~seed:3 correct);
  ]
