type report = {
  clock_ps : int;
  baseline_stats : Stats.t;
  baseline_place : Placer.report;
  attempts : int;
  dropped_ffs : string list;
  locked_stats : Stats.t;
  locked_place : Placer.report;
  cell_overhead_pct : float;
  area_overhead_pct : float;
  false_violations : int;
  timing_entries : Timing_report.entry list;
}

let run ?(seed = 1) ?(profile = `Standard) ?(l_glitch_ps = 1000)
    ?(clock_margin = 1.2) net ~n_gks =
  (* "synthesis" of the incoming netlist: the generator/benchmarks are
     already mapped, so this is the cleanup DC would do on re-read *)
  let net, _ = Synth.optimize net in
  let clock_ps = Sta.clock_for net ~margin:clock_margin in
  let baseline_stats = Stats.of_netlist net in
  let baseline_place = Placer.place ~seed net in
  (* insertion loop: drop endpoints whose violations turn out true *)
  let rec attempt n exclude =
    if n > 8 then invalid_arg "Design_flow.run: could not close timing";
    let design =
      Insertion.lock ~seed ~profile ~l_glitch_ps ~exclude net ~clock_ps ~n_gks
    in
    let sta = Sta.analyze design.Insertion.lnet ~clock_ps in
    let entries =
      Timing_report.discriminate sta
        ~intended:(Insertion.intended_glitches design)
    in
    let true_viol = Timing_report.true_violations entries in
    (* only endpoints we encrypted can be dropped; a pre-existing true
       violation would mean the clock choice itself is broken *)
    let droppable =
      List.filter
        (fun e ->
          List.exists
            (fun p -> p.Insertion.p_ff = e.Timing_report.ff)
            design.Insertion.placements)
        true_viol
    in
    if droppable = [] then (design, entries, n, exclude)
    else
      attempt (n + 1)
        (List.map (fun e -> e.Timing_report.ff) droppable @ exclude)
  in
  let design, entries, attempts, excluded = attempt 1 [] in
  let locked_stats = Stats.of_netlist design.Insertion.lnet in
  let locked_place = Placer.place ~seed design.Insertion.lnet in
  let cell_overhead_pct, area_overhead_pct = Insertion.overhead design in
  ( design,
    {
      clock_ps;
      baseline_stats;
      baseline_place;
      attempts;
      dropped_ffs =
        List.map (fun ff -> (Netlist.node net ff).Netlist.name) excluded;
      locked_stats;
      locked_place;
      cell_overhead_pct;
      area_overhead_pct;
      false_violations =
        List.length
          (List.filter
             (fun e -> e.Timing_report.verdict = Timing_report.False_violation)
             entries);
      timing_entries = entries;
    } )

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>clock %d ps; %d attempt(s); dropped [%s]@,\
     baseline: %a@,\
     baseline P&R: %a@,\
     locked:   %a@,\
     locked P&R:   %a@,\
     overhead: %.2f%% cells, %.2f%% area; %d false violations (intended glitches)@]"
    r.clock_ps r.attempts
    (String.concat ", " r.dropped_ffs)
    Stats.pp r.baseline_stats Placer.pp_report r.baseline_place Stats.pp
    r.locked_stats Placer.pp_report r.locked_place r.cell_overhead_pct
    r.area_overhead_pct r.false_violations
