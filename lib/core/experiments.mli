(** Drivers for every table and figure of the paper (see DESIGN.md §4).

    Each function computes one experiment and returns plain data; the
    rendering into paper-style tables lives in {!Report}.  The
    command-line tool and the benchmark harness both call these. *)

(** {1 Table I — available flip-flops} *)

type table1_row = {
  t1_bench : string;
  t1_cells : int;
  t1_ffs : int;
  t1_avail : int;
  t1_cov_pct : float;
  t1_avail4 : int;
  t1_clock_ps : int;
  t1_paper_avail : int;
  t1_paper_avail4 : int;
}

val table1_row : Benchmarks.spec -> table1_row
val table1 : unit -> table1_row list

(** {1 Table II — overhead} *)

(** Stable names for {!Delay_synth.profile} values — the form campaign
    job specs and the CLI use: ["standard"], ["buffers"], ["custom"]. *)
val profile_names : string list

val profile_of_name : string -> Delay_synth.profile option
val profile_name : Delay_synth.profile -> string

type overhead_cell = { oh_cell_pct : float; oh_area_pct : float }

type table2_row = {
  t2_bench : string;
  t2_gk4 : overhead_cell option;   (** [None] = "-" (not enough sites) *)
  t2_gk8 : overhead_cell option;
  t2_gk16 : overhead_cell option;
  t2_hybrid : overhead_cell option; (** 8 GKs + 16 XORs *)
}

val table2_row : ?profile:Delay_synth.profile -> Benchmarks.spec -> table2_row
val table2 : ?profile:Delay_synth.profile -> unit -> table2_row list

(** {1 SAT-attack experiment (Sec. VI)} *)

type attack_row = {
  at_bench : string;
  at_keys : int;                  (** key-inputs after KEYGEN stripping *)
  at_unsat_at_first : bool;       (** the paper's observed outcome *)
  at_iterations : int;
  at_key_mismatches : int;        (** recovered key vs the real chip, /64 *)
}

(** [sat_attack_on_gk spec ~n_gks] locks, strips KEYGENs,
    combinationalizes, attacks. *)
val sat_attack_on_gk : Benchmarks.spec -> n_gks:int -> attack_row

val sat_attack_table : ?n_gks:int -> unit -> attack_row list

(** {1 Baseline-attack comparison (Secs. I & V)} *)

type comparison_row = {
  cp_scheme : string;
  cp_keys : int;
  cp_outcome : string;            (** human-readable verdict *)
  cp_iterations : int;
  cp_decrypted : bool;            (** attacker ends with a working netlist *)
}

(** XOR / MUX / SARLock / Anti-SAT / TDK / GK, each attacked with its
    natural attack pipeline, on one benchmark-scale circuit. *)
val attack_comparison : ?seed:int -> unit -> comparison_row list

(** {1 Figures} *)

(** Fig. 4: GK internal waveforms (x = 1, DA = 2 ns, DB = 3 ns, rise @3 ns,
    fall @11 ns), as an ASCII timing diagram. *)
val fig4 : unit -> string

(** Fig. 6: KEYGEN output for the four (k1,k2) assignments
    (DA = 3 ns, DB = 6 ns). *)
val fig6 : unit -> string

(** Fig. 7: the four legal transmission scenarios, with the capture
    verdicts observed in simulation. *)
val fig7 : unit -> string

(** Fig. 9: trigger-range boundaries for the paper's example
    (T_clk = 8 ns, setup = hold = 1 ns, L_glitch = 3 ns). *)
val fig9 : unit -> string

(** {1 Ablations (DESIGN.md A1/A2)} *)

type ablation_glitch_row = {
  ag_l_glitch_ps : int;
  ag_avail : (string * int) list;  (** per benchmark *)
}

(** A1: available sites as the glitch-length requirement sweeps. *)
val ablation_glitch_length : ?lengths:int list -> unit -> ablation_glitch_row list

type ablation_profile_row = {
  ap_profile : string;
  ap_cell_oh_pct : float;
  ap_area_oh_pct : float;
  ap_delay_cells : int;           (** delay elements instantiated *)
}

(** A2: delay-composition regimes on one benchmark, 8 GKs. *)
val ablation_delay_profile : ?bench:string -> unit -> ablation_profile_row list

(** {1 Corruptibility} *)

type corruption_row = {
  co_key : string;                 (** key class *)
  co_po_mismatch_pct : float;      (** corrupted PO samples *)
  co_violations : int;
}

(** Timing-true corruption of wrong-key classes on one benchmark. *)
val corruptibility : ?bench:string -> ?n_gks:int -> unit -> corruption_row list
