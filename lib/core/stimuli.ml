let edge_aligned ?(seed = 1) net ~clock_ps ~cycles pi =
  let name = (Netlist.node net pi).Netlist.name in
  let rng = Random.State.make [| seed; Hashtbl.hash name; 0x5354 |] in
  let start = if Random.State.bool rng then Logic.T else Logic.F in
  let horizon = cycles * clock_ps in
  let rec transitions t v acc =
    if t > horizon then List.rev acc
    else begin
      let v' = if Random.State.bool rng then Logic.lnot v else v in
      let acc = if Logic.equal v v' then acc else (t, v') :: acc in
      transitions (t + clock_ps) v' acc
    end
  in
  let trans = transitions (clock_ps + Cell_lib.dff_clk2q_ps) start [] in
  Timing_sim.Wave (Waveform.make ~initial:start trans)

let cycle_inputs ?(seed = 1) net cycle pi =
  let name = (Netlist.node net pi).Netlist.name in
  Hashtbl.hash (seed, cycle, name) land 1 = 1

let po_agreement ~skip a b =
  let mismatches = ref 0 and comparisons = ref 0 in
  List.iter
    (fun (po, sa) ->
      match List.assoc_opt po b.Timing_sim.po_samples with
      | None -> ()
      | Some sb ->
        let n = min (Array.length sa) (Array.length sb) in
        for k = skip to n - 1 do
          incr comparisons;
          if not (Logic.equal sa.(k) sb.(k)) then incr mismatches
        done)
    a.Timing_sim.po_samples;
  (!mismatches, !comparisons)
