(** Paper-style rendering of {!Experiments} results. *)

val table1 : Experiments.table1_row list -> string
val table2 : Experiments.table2_row list -> string
val sat_attack : Experiments.attack_row list -> string
val comparison : Experiments.comparison_row list -> string
val ablation_glitch : Experiments.ablation_glitch_row list -> string
val ablation_profile : Experiments.ablation_profile_row list -> string
val corruptibility : Experiments.corruption_row list -> string

(** [kv_table ~title rows] renders labelled values two columns wide —
    used by maintenance views (store status, dedup) rather than paper
    tables. *)
val kv_table : title:string -> (string * string) list -> string
