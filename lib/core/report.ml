let pct = Printf.sprintf "%.2f"

let table1 rows =
  let t =
    Ascii_table.create
      ~title:"Table I — the number of available FFs for encryption"
      ~columns:
        [
          ("Bench.", Ascii_table.Left);
          ("Cell", Ascii_table.Right);
          ("FF", Ascii_table.Right);
          ("Ava. FF", Ascii_table.Right);
          ("Cov. (%)", Ascii_table.Right);
          ("Ava. FF [4]", Ascii_table.Right);
          ("paper Ava./Cov%/[4]", Ascii_table.Right);
        ]
  in
  let cov_sum = ref 0.0 in
  List.iter
    (fun (r : Experiments.table1_row) ->
      cov_sum := !cov_sum +. r.Experiments.t1_cov_pct;
      Ascii_table.add_row t
        [
          r.Experiments.t1_bench;
          string_of_int r.Experiments.t1_cells;
          string_of_int r.Experiments.t1_ffs;
          string_of_int r.Experiments.t1_avail;
          pct r.Experiments.t1_cov_pct;
          string_of_int r.Experiments.t1_avail4;
          Printf.sprintf "%d / %.2f / %d" r.Experiments.t1_paper_avail
            (100.0
            *. float_of_int r.Experiments.t1_paper_avail
            /. float_of_int r.Experiments.t1_ffs)
            r.Experiments.t1_paper_avail4;
        ])
    rows;
  let n = float_of_int (List.length rows) in
  Ascii_table.set_footer t
    [ "Avg."; ""; ""; ""; pct (!cov_sum /. n); ""; "paper avg 64.07" ];
  Ascii_table.render t

let oh_cell = function
  | None -> ("-", "-")
  | Some c ->
    (pct c.Experiments.oh_cell_pct, pct c.Experiments.oh_area_pct)

let table2 rows =
  let t =
    Ascii_table.create
      ~title:
        "Table II — overhead after inserting different numbers of GKs\n\
         (cell OH % / area OH %; paper averages: 9.48/10.68, 14.30/12.22,\n\
         27.63/26.11, 15.9/13.65)"
      ~columns:
        [
          ("Bench.", Ascii_table.Left);
          ("4 GKs cell", Ascii_table.Right);
          ("4 GKs area", Ascii_table.Right);
          ("8 GKs cell", Ascii_table.Right);
          ("8 GKs area", Ascii_table.Right);
          ("16 GKs cell", Ascii_table.Right);
          ("16 GKs area", Ascii_table.Right);
          ("8GK+16XOR cell", Ascii_table.Right);
          ("8GK+16XOR area", Ascii_table.Right);
        ]
  in
  let sums = Array.make 8 0.0 and counts = Array.make 8 0 in
  let track i = function
    | None -> ()
    | Some c ->
      sums.(i) <- sums.(i) +. c.Experiments.oh_cell_pct;
      sums.(i + 1) <- sums.(i + 1) +. c.Experiments.oh_area_pct;
      counts.(i) <- counts.(i) + 1;
      counts.(i + 1) <- counts.(i + 1) + 1
  in
  List.iter
    (fun (r : Experiments.table2_row) ->
      track 0 r.Experiments.t2_gk4;
      track 2 r.Experiments.t2_gk8;
      track 4 r.Experiments.t2_gk16;
      track 6 r.Experiments.t2_hybrid;
      let c4, a4 = oh_cell r.Experiments.t2_gk4 in
      let c8, a8 = oh_cell r.Experiments.t2_gk8 in
      let c16, a16 = oh_cell r.Experiments.t2_gk16 in
      let ch, ah = oh_cell r.Experiments.t2_hybrid in
      Ascii_table.add_row t
        [ r.Experiments.t2_bench; c4; a4; c8; a8; c16; a16; ch; ah ])
    rows;
  let avg i =
    if counts.(i) = 0 then "-" else pct (sums.(i) /. float_of_int counts.(i))
  in
  Ascii_table.set_footer t
    [ "Avg."; avg 0; avg 1; avg 2; avg 3; avg 4; avg 5; avg 6; avg 7 ];
  Ascii_table.render t

let sat_attack rows =
  let t =
    Ascii_table.create
      ~title:
        "SAT attack on GK-encrypted designs (KEYGENs stripped, FF boundaries\n\
         cut — the Sec. VI methodology)"
      ~columns:
        [
          ("Bench.", Ascii_table.Left);
          ("key-inputs", Ascii_table.Right);
          ("DIP iterations", Ascii_table.Right);
          ("first solve", Ascii_table.Left);
          ("recovered-key errors (64 samples)", Ascii_table.Right);
        ]
  in
  List.iter
    (fun (r : Experiments.attack_row) ->
      Ascii_table.add_row t
        [
          r.Experiments.at_bench;
          string_of_int r.Experiments.at_keys;
          string_of_int r.Experiments.at_iterations;
          (if r.Experiments.at_unsat_at_first then "unsatisfiable" else "sat");
          string_of_int r.Experiments.at_key_mismatches;
        ])
    rows;
  Ascii_table.render t

let comparison rows =
  let t =
    Ascii_table.create
      ~title:"Attack comparison across locking schemes (one 340-cell design)"
      ~columns:
        [
          ("Scheme", Ascii_table.Left);
          ("keys", Ascii_table.Right);
          ("DIPs", Ascii_table.Right);
          ("decrypted", Ascii_table.Left);
          ("outcome", Ascii_table.Left);
        ]
  in
  List.iter
    (fun (r : Experiments.comparison_row) ->
      Ascii_table.add_row t
        [
          r.Experiments.cp_scheme;
          string_of_int r.Experiments.cp_keys;
          string_of_int r.Experiments.cp_iterations;
          (if r.Experiments.cp_decrypted then "yes" else "NO");
          r.Experiments.cp_outcome;
        ])
    rows;
  Ascii_table.render t

let ablation_glitch rows =
  let benches =
    match rows with
    | [] -> []
    | r :: _ -> List.map fst r.Experiments.ag_avail
  in
  let t =
    Ascii_table.create
      ~title:"Ablation A1 — available FFs vs required glitch length"
      ~columns:
        (("L_glitch (ps)", Ascii_table.Right)
        :: List.map (fun b -> (b, Ascii_table.Right)) benches)
  in
  List.iter
    (fun (r : Experiments.ablation_glitch_row) ->
      Ascii_table.add_row t
        (string_of_int r.Experiments.ag_l_glitch_ps
        :: List.map (fun (_, n) -> string_of_int n) r.Experiments.ag_avail))
    rows;
  Ascii_table.render t

let ablation_profile rows =
  let t =
    Ascii_table.create
      ~title:"Ablation A2 — delay-element composition (s5378, 8 GKs)"
      ~columns:
        [
          ("Composition", Ascii_table.Left);
          ("cell OH (%)", Ascii_table.Right);
          ("area OH (%)", Ascii_table.Right);
          ("delay cells added", Ascii_table.Right);
        ]
  in
  List.iter
    (fun (r : Experiments.ablation_profile_row) ->
      Ascii_table.add_row t
        [
          r.Experiments.ap_profile;
          pct r.Experiments.ap_cell_oh_pct;
          pct r.Experiments.ap_area_oh_pct;
          string_of_int r.Experiments.ap_delay_cells;
        ])
    rows;
  Ascii_table.render t

let corruptibility rows =
  let t =
    Ascii_table.create
      ~title:"Corruptibility — timing-true PO corruption per key class (s5378, 8 GKs)"
      ~columns:
        [
          ("Key", Ascii_table.Left);
          ("PO sample mismatch (%)", Ascii_table.Right);
          ("setup/hold violations", Ascii_table.Right);
        ]
  in
  List.iter
    (fun (r : Experiments.corruption_row) ->
      Ascii_table.add_row t
        [
          r.Experiments.co_key;
          pct r.Experiments.co_po_mismatch_pct;
          string_of_int r.Experiments.co_violations;
        ])
    rows;
  Ascii_table.render t

let kv_table ~title rows =
  let t =
    Ascii_table.create ~title
      ~columns:[ ("", Ascii_table.Left); ("", Ascii_table.Right) ]
  in
  List.iter (fun (k, v) -> Ascii_table.add_row t [ k; v ]) rows;
  Ascii_table.render t
