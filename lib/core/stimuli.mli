(** Shared input stimuli for the experiments, examples and tests.

    Timing-true sequential simulation needs inputs that behave like real
    system inputs: they change right after the active clock edge (as if
    launched by upstream flip-flops).  An input toggling in the middle of
    a cycle would trip capture windows even in an unlocked design. *)

(** [edge_aligned ?seed net ~clock_ps ~cycles] drives every primary input
    with a deterministic pseudo-random waveform whose transitions occur at
    [k·clock + clk2q] — the launch instant of a flip-flop.  Different
    seeds give different patterns. *)
val edge_aligned :
  ?seed:int -> Netlist.t -> clock_ps:int -> cycles:int -> int -> Timing_sim.drive

(** [cycle_inputs ?seed net] is a stimulus for {!Cycle_sim.run}: a
    deterministic pseudo-random bit per (cycle, input). *)
val cycle_inputs : ?seed:int -> Netlist.t -> int -> int -> bool

(** [po_agreement ~skip a b] compares two {!Timing_sim} results'
    primary-output samples (matched by name), ignoring the first [skip]
    cycles (locked designs need one warm-up cycle for their KEYGEN
    toggles).  Returns (mismatches, comparisons). *)
val po_agreement :
  skip:int -> Timing_sim.result -> Timing_sim.result -> int * int
