(** The evaluation benchmarks.

    The paper uses seven sequential circuits from the IWLS2005 release of
    the ISCAS'89 suite, post-synthesis (Table I's cell and FF counts are
    after Design Compiler optimization).  We cannot redistribute those
    netlists, so each is reproduced by {!Generator} with the published cell
    and FF counts and a hand-tuned depth profile (DESIGN.md §2); the tiny
    public-domain s27 circuit is embedded verbatim for tests and examples. *)

type spec = {
  bname : string;          (** paper's benchmark name, e.g. ["s5378"] *)
  cells : int;             (** Table I column 2 *)
  ff_count : int;          (** Table I column 3 *)
  paper_avail_ff : int;    (** Table I column 4, for EXPERIMENTS.md *)
  paper_avail_ff4 : int;   (** Table I column 6 *)
  config : Generator.config;
  clk_margin : float;
      (** clock period = critical path × margin; tuned so the feasible-FF
          coverage lands near the paper's *)
}

(** The seven benchmarks of Tables I and II, in paper order. *)
val specs : spec list

val find_spec : string -> spec option

(** [load spec] generates the benchmark netlist (deterministic). *)
val load : spec -> Netlist.t

(** [by_name n] is [load (find_spec n)].  @raise Not_found. *)
val by_name : string -> Netlist.t

(** The ISCAS'89 s27 circuit, embedded verbatim. *)
val s27 : unit -> Netlist.t

(** A ~40-cell generated circuit used by examples and tests when s27 is too
    small (e.g. to host several GKs). *)
val tiny : unit -> Netlist.t
