type t = {
  cells : int;
  gates : int;
  ffs : int;
  pis : int;
  pos : int;
  area : float;
  depth : int;
}

let of_netlist net =
  let gates = ref 0 and ffs = ref 0 and pis = ref 0 in
  let area = ref 0.0 in
  for id = 0 to Netlist.num_nodes net - 1 do
    let n = Netlist.node net id in
    match n.Netlist.kind with
    | Netlist.Input -> incr pis
    | Netlist.Const _ | Netlist.Dead -> ()
    | Netlist.Gate _ ->
      incr gates;
      (match n.Netlist.cell with
      | Some c -> area := !area +. c.Cell.area
      | None -> ())
    | Netlist.Lut truth ->
      incr gates;
      let k =
        (* log2 of the table size *)
        let rec go k = if 1 lsl k >= Array.length truth then k else go (k + 1) in
        go 0
      in
      area := !area +. Cell_lib.lut_area k
    | Netlist.Ff ->
      incr ffs;
      area := !area +. Cell_lib.dff.Cell.area
  done;
  {
    cells = !gates + !ffs;
    gates = !gates;
    ffs = !ffs;
    pis = !pis;
    pos = List.length (Netlist.outputs net);
    area = !area;
    depth = Topo.depth net;
  }

let overhead ~baseline ~locked =
  let pct now base =
    if base = 0.0 then 0.0 else (now -. base) /. base *. 100.0
  in
  ( pct (float_of_int locked.cells) (float_of_int baseline.cells),
    pct locked.area baseline.area )

let pp ppf s =
  Format.fprintf ppf
    "cells=%d (gates=%d ffs=%d) pis=%d pos=%d area=%.1fum2 depth=%d" s.cells
    s.gates s.ffs s.pis s.pos s.area s.depth
