let levels = Netlist.levels

let depth t =
  let lv = levels t in
  let at id = if id >= 0 then max 0 lv.(id) else 0 in
  let from_pos =
    List.fold_left (fun acc (_, d) -> max acc (at d)) 0 (Netlist.outputs t)
  in
  List.fold_left
    (fun acc ff -> max acc (at (Netlist.node t ff).fanins.(0)))
    from_pos (Netlist.ffs t)

(* Generic forward reachability: which primary outputs does each node reach?
   [cross_ff] decides whether a flip-flop propagates its D reachability to
   its Q output. *)
let reach_outputs t ~cross_ff start =
  let n = Netlist.num_nodes t in
  let fanouts = Netlist.fanout_table t in
  let seen = Array.make n false in
  let queue = Queue.create () in
  Queue.push start queue;
  seen.(start) <- true;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    List.iter
      (fun (consumer, _pin) ->
        let c = Netlist.node t consumer in
        let propagate =
          match c.Netlist.kind with
          | Netlist.Ff -> cross_ff
          | Netlist.Gate _ | Netlist.Lut _ -> true
          | Netlist.Input | Netlist.Const _ | Netlist.Dead -> false
        in
        if propagate && not seen.(consumer) then begin
          seen.(consumer) <- true;
          Queue.push consumer queue
        end)
      fanouts.(id)
  done;
  List.filter_map
    (fun (po_name, driver) -> if seen.(driver) then Some po_name else None)
    (Netlist.outputs t)

let output_cone t id = reach_outputs t ~cross_ff:true id

let comb_output_cone t id = reach_outputs t ~cross_ff:false id

let fanin_cone t id =
  let seen = Hashtbl.create 64 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      let nd = Netlist.node t id in
      if Netlist.is_comb nd then Array.iter visit nd.fanins
    end
  in
  visit id;
  Hashtbl.fold (fun id () acc -> id :: acc) seen []
  |> List.sort compare

let group_ffs_by_cone t =
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun ff ->
      let signature =
        String.concat "\x00" (List.sort compare (comb_output_cone t ff))
      in
      let existing = Option.value (Hashtbl.find_opt buckets signature) ~default:[] in
      Hashtbl.replace buckets signature (ff :: existing))
    (Netlist.ffs t);
  Hashtbl.fold (fun _ ffs acc -> List.rev ffs :: acc) buckets []
  |> List.sort (fun a b -> compare (List.length b) (List.length a))
