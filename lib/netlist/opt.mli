(** Netlist optimization front-end: structural hashing, constant
    propagation, rewrite rules and a dead-node sweep.

    {!run} rebuilds a netlist bottom-up in topological order, applying
    AIG-strash-style local simplifications as each node is re-created:

    - {b constant folding} — And/Or/Nand/Nor absorb constant fanins,
      Xor/Xnor fold constants into an output inversion, Mux selectors
      and branches collapse, LUT truth tables shrink over constant or
      duplicated inputs.  Key inputs are primary inputs, so an unknown
      key stays fully symbolic: nothing keyed is ever folded away.
    - {b rewrite rules} — [Buf] forwarding, double-negation
      cancellation, duplicate/complement fanin absorption
      ([x ∧ ¬x → 0], [x ⊕ x → 0]), Mux-with-constant-branch to And/Or
      forms, Mux selector-polarity normalization, LUT constant /
      identity / complement detection.
    - {b structural hashing} — commutative gates are canonicalized
      (sorted fanins, inversion kept inside Nand/Nor/Xnor) and every
      (function, fanins) pair is built at most once, so equivalent
      subexpressions share one node.
    - {b dead sweep} — only logic reachable from a primary output or a
      flip-flop D pin is rebuilt.

    The result is a fresh netlist that computes the same function:
    primary inputs, flip-flops (names {e and} declaration order — so
    {!Netlist.Engine.sources} of the optimized netlist aligns
    source-for-source with the original) and primary-output names are
    all preserved.  Gate names are kept where the node survives 1:1.

    Semantics preservation is law-checked from the differential fuzzer
    ({!Diff_oracle}), per-scheme in {!Lock_props}, and by SAT miters in
    the tier-1 suite. *)

type stats = {
  st_iters : int;  (** rebuild passes executed (last one is a fixpoint) *)
  st_nodes_before : int;  (** non-dead nodes in the input *)
  st_nodes_after : int;
  st_gates_before : int;  (** combinational (Gate/Lut) nodes in the input *)
  st_gates_after : int;
  st_merged : int;  (** strash hits: nodes shared instead of duplicated *)
  st_folded : int;  (** constant-propagation simplifications *)
  st_rewritten : int;  (** local rewrite-rule applications *)
  st_swept : int;  (** unreachable combinational nodes dropped *)
}

(** Fraction of combinational nodes removed, in [0, 1] — the
    [strash_reduction] column of BENCH_eval.json. *)
val reduction : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** [run ?max_iters net] optimizes [net] (default [max_iters = 4];
    passes stop early at a fixpoint).  The input is not modified. *)
val run : ?max_iters:int -> Netlist.t -> Netlist.t * stats
