(** Reader and writer for the ISCAS-89 [.bench] netlist format.

    This is the interchange format of the IWLS2005/ISCAS benchmark suites
    the paper evaluates on, and the format the command-line tools accept:

    {v
    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G11 = DFF(G10)
    v}

    Supported primitives: [AND OR NAND NOR XOR XNOR NOT BUF/BUFF MUX DFF
    CONST0/GND CONST1/VCC].  Gate definitions may appear in any order,
    including through-flip-flop cycles. *)

exception Parse_error of int * string
(** line number (1-based) and message *)

(** [parse ~name text] builds a netlist from [.bench] source.
    @raise Parse_error on malformed input. *)
val parse : name:string -> string -> Netlist.t

(** [parse_file path] reads and parses a file; the netlist is named after
    the file's basename. *)
val parse_file : string -> Netlist.t

(** [print net] renders a netlist back to [.bench] source.  Withheld LUT
    nodes are emitted as [LUT 0xhh (a, b, ...)] — a common extension. *)
val print : Netlist.t -> string

(** [write_file net path] writes {!print}'s output to [path]. *)
val write_file : Netlist.t -> string -> unit
