(** Combinational gate functions and bound standard cells.

    A {!gate_fn} is the Boolean function a netlist node computes; a {!t} is a
    concrete standard cell from {!Cell_lib} bound to such a node, carrying
    physical area and a pin-to-pin delay.  Keeping function and cell separate
    mirrors the synthesis flow of the paper: locking transforms manipulate
    functions, then {i technology mapping} ({!Cell_lib.bind}) chooses cells,
    and only bound cells contribute to Table II's area numbers. *)

(** Supported gate functions.

    [And]/[Or]/[Nand]/[Nor] accept two or more inputs; [Xor]/[Xnor] are
    parity / complemented parity over two or more inputs; [Not]/[Buf] are
    unary.  [Mux] has exactly three inputs [[| sel; a; b |]] and computes
    [if sel then b else a]. *)
type gate_fn =
  | Not
  | Buf
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux

(** Minimum number of inputs the function accepts. *)
val min_arity : gate_fn -> int

(** Whether [n] inputs is a legal arity for the function. *)
val arity_ok : gate_fn -> int -> bool

(** Evaluate the function on Boolean inputs.
    @raise Invalid_argument on an illegal arity. *)
val eval : gate_fn -> bool array -> bool

(** Short upper-case name as used by the ISCAS [.bench] format
    (e.g. ["NAND"], ["BUFF"]). *)
val fn_name : gate_fn -> string

(** Inverse of {!fn_name} (case-insensitive); [None] for unknown names. *)
val fn_of_name : string -> gate_fn option

(** A concrete standard cell. *)
type t = {
  cell_name : string;  (** library name, e.g. ["NAND2X1"] *)
  fn : gate_fn;
  arity : int;
  area : float;        (** µm² *)
  delay_ps : int;      (** worst pin-to-pin propagation delay *)
}

val pp : Format.formatter -> t -> unit
