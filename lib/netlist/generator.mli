(** Seeded synthetic sequential-circuit generator.

    The paper evaluates on post-synthesis IWLS2005/ISCAS'89 netlists mapped
    to a proprietary TSMC library; we cannot ship those.  Table I counts
    feasible GK sites given per-FF slack, and Table II measures added
    cells/area relative to a baseline — both are functions of circuit
    {i statistics} (cell count, FF count, logic-depth distribution), not of
    the exact Boolean functions.  This generator synthesizes circuits that
    match those statistics deterministically from a seed (see DESIGN.md §2).

    Construction: gates are assigned to logic stages [1..depth] (triangular
    distribution, denser near shallow stages as in mapped designs), each
    picking fanins from strictly shallower stages so the result is acyclic
    by construction; flip-flop D pins and primary outputs then sample gates
    across the full stage range, giving the spread of arrival times that
    Table I's coverage percentages depend on. *)

type config = {
  gen_name : string;
  seed : int;
  n_pi : int;
  n_po : int;
  n_ff : int;
  n_gates : int;
  depth : int;
      (** target combinational depth (stages of gates between sources and
          sinks) *)
  ff_depth_bias : float;
      (** in [0,1]: 0 samples FF D pins uniformly over stages, 1 biases them
          toward deep stages.  Controls what fraction of FFs has slack for a
          1 ns glitch, i.e. Table I's coverage. *)
}

(** [generate cfg] builds the circuit.  The same [cfg] always yields the
    identical netlist.  The result is validated. *)
val generate : config -> Netlist.t
