(** Cell-count and area accounting — the quantities of Tables I and II.

    "Cell" follows the paper's convention: every mapped standard cell, i.e.
    combinational gates plus flip-flops, excluding primary inputs, outputs
    and constants.  Withheld LUTs count as one cell with the SRAM-table area
    of {!Cell_lib.lut_area}. *)

type t = {
  cells : int;          (** mapped cells: gates + LUTs + flip-flops *)
  gates : int;          (** combinational gates and LUTs only *)
  ffs : int;            (** flip-flops *)
  pis : int;
  pos : int;
  area : float;         (** total cell area, µm² *)
  depth : int;          (** combinational logic depth *)
}

val of_netlist : Netlist.t -> t

(** [overhead ~baseline ~locked] is the pair (cell overhead %, area
    overhead %) as reported in Table II. *)
val overhead : baseline:t -> locked:t -> float * float

val pp : Format.formatter -> t -> unit
