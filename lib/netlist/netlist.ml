

type kind =
  | Input
  | Const of bool
  | Gate of Cell.gate_fn
  | Lut of bool array
  | Ff
  | Dead

type node = {
  id : int;
  mutable name : string;
  mutable kind : kind;
  mutable fanins : int array;
  mutable cell : Cell.t option;
}

type po = { po_name : string; mutable driver : int }

type t = {
  net_name : string;
  nodes : node Vec.t;
  pos : po Vec.t;
  by_name : (string, int) Hashtbl.t;
  mutable const0 : int;
  mutable const1 : int;
}

let create net_name =
  {
    net_name;
    nodes = Vec.create ();
    pos = Vec.create ();
    by_name = Hashtbl.create 64;
    const0 = -1;
    const1 = -1;
  }

let name t = t.net_name

let num_nodes t = Vec.length t.nodes

let node t id =
  if id < 0 || id >= num_nodes t then
    invalid_arg (Printf.sprintf "Netlist.node: bad id %d" id);
  Vec.get t.nodes id

let fresh_name id = Printf.sprintf "n%d" id

let register_name t name id =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Netlist: duplicate node name %S" name);
  Hashtbl.replace t.by_name name id

let add_node t ?name kind fanins cell =
  let id = num_nodes t in
  let name =
    match name with
    | Some n -> n
    | None ->
      (* Auto names may collide with preserved names after renames or
         compaction; probe until free. *)
      let rec probe k =
        let candidate =
          if k = 0 then fresh_name id else Printf.sprintf "n%d_%d" id k
        in
        if Hashtbl.mem t.by_name candidate then probe (k + 1) else candidate
      in
      probe 0
  in
  register_name t name id;
  let n = { id; name; kind; fanins; cell } in
  Vec.push t.nodes n;
  id

let check_fanins t fanins =
  Array.iter
    (fun f ->
      if f < 0 || f >= num_nodes t then
        invalid_arg (Printf.sprintf "Netlist: unknown fanin id %d" f))
    fanins

let add_input t n = add_node t ~name:n Input [||] None

let add_const t b =
  let cached = if b then t.const1 else t.const0 in
  if cached >= 0 then cached
  else begin
    let id = add_node t (Const b) [||] None in
    if b then t.const1 <- id else t.const0 <- id;
    id
  end

let add_gate t ?name ?cell fn fanins =
  check_fanins t fanins;
  let arity = Array.length fanins in
  if not (Cell.arity_ok fn arity) then
    invalid_arg
      (Printf.sprintf "Netlist.add_gate: arity %d illegal for %s" arity
         (Cell.fn_name fn));
  let cell = match cell with Some c -> c | None -> Cell_lib.bind fn arity in
  add_node t ?name (Gate fn) fanins (Some cell)

let add_lut t ?name ~truth fanins =
  check_fanins t fanins;
  let arity = Array.length fanins in
  if Array.length truth <> 1 lsl arity then
    invalid_arg "Netlist.add_lut: truth table size mismatch";
  add_node t ?name (Lut truth) fanins None

let add_ff t ?name d =
  check_fanins t [| d |];
  add_node t ?name Ff [| d |] (Some Cell_lib.dff)

let add_output t n driver =
  check_fanins t [| driver |];
  if Vec.exists (fun po -> po.po_name = n) t.pos then
    invalid_arg (Printf.sprintf "Netlist: duplicate output %S" n);
  Vec.push t.pos { po_name = n; driver }

let find t n = Hashtbl.find_opt t.by_name n

let outputs t = Vec.fold (fun acc po -> (po.po_name, po.driver) :: acc) [] t.pos |> List.rev

let set_output_driver t po_name driver =
  check_fanins t [| driver |];
  let found = ref false in
  Vec.iter
    (fun po -> if po.po_name = po_name then begin po.driver <- driver; found := true end)
    t.pos;
  if not !found then
    invalid_arg (Printf.sprintf "Netlist: no output named %S" po_name)

let remove_output t po_name =
  if not (Vec.exists (fun po -> po.po_name = po_name) t.pos) then
    invalid_arg (Printf.sprintf "Netlist: no output named %S" po_name);
  let remaining = Vec.fold (fun acc po -> if po.po_name = po_name then acc else po :: acc) [] t.pos in
  Vec.clear t.pos;
  List.iter (Vec.push t.pos) (List.rev remaining)

let collect t pred =
  Vec.fold (fun acc n -> if pred n then n.id :: acc else acc) [] t.nodes
  |> List.rev

let inputs t = collect t (fun n -> n.kind = Input)

let ffs t = collect t (fun n -> n.kind = Ff)

let is_comb n = match n.kind with Gate _ | Lut _ -> true | Input | Const _ | Ff | Dead -> false

let set_fanin t ~node_id ~pin ~driver =
  check_fanins t [| driver |];
  let n = node t node_id in
  if pin < 0 || pin >= Array.length n.fanins then
    invalid_arg "Netlist.set_fanin: bad pin";
  n.fanins.(pin) <- driver

let widen_gate t ~node_id ~extra_driver =
  check_fanins t [| extra_driver |];
  let n = node t node_id in
  match n.kind with
  | Gate ((And | Or | Nand | Nor | Xor | Xnor) as fn) ->
    n.fanins <- Array.append n.fanins [| extra_driver |];
    n.cell <- Some (Cell_lib.bind fn (Array.length n.fanins))
  | Gate (Not | Buf | Mux) | Input | Const _ | Lut _ | Ff | Dead ->
    invalid_arg "Netlist.widen_gate: not a variadic gate"

let rename t id n =
  let nd = node t id in
  if nd.name = n then ()
  else begin
    register_name t n id;
    Hashtbl.remove t.by_name nd.name;
    nd.name <- n
  end

let kill t id =
  let n = node t id in
  Hashtbl.remove t.by_name n.name;
  n.kind <- Dead;
  n.fanins <- [||];
  n.cell <- None;
  if t.const0 = id then t.const0 <- -1;
  if t.const1 = id then t.const1 <- -1

let replace_uses t ~old_id ~new_id =
  check_fanins t [| old_id; new_id |];
  Vec.iter
    (fun n ->
      Array.iteri (fun pin f -> if f = old_id then n.fanins.(pin) <- new_id) n.fanins)
    t.nodes;
  Vec.iter (fun po -> if po.driver = old_id then po.driver <- new_id) t.pos

let copy t =
  let t' = create t.net_name in
  Vec.iter
    (fun n ->
      let kind =
        match n.kind with
        | Lut truth -> Lut (Array.copy truth)
        | (Input | Const _ | Gate _ | Ff | Dead) as k -> k
      in
      let id =
        add_node t' ~name:n.name kind (Array.copy n.fanins) n.cell
      in
      assert (id = n.id);
      (match n.kind with
      | Const false -> t'.const0 <- id
      | Const true -> t'.const1 <- id
      | Input | Gate _ | Lut _ | Ff | Dead -> ())
      )
    t.nodes;
  (* Dead nodes keep a registered name in the copy; drop it to mirror the
     original's table. *)
  Vec.iter
    (fun n -> if n.kind = Dead then Hashtbl.remove t'.by_name n.name)
    t'.nodes;
  Vec.iter (fun po -> Vec.push t'.pos { po_name = po.po_name; driver = po.driver }) t.pos;
  t'

let compact t =
  let remap = Array.make (num_nodes t) (-1) in
  let t' = create t.net_name in
  Vec.iter
    (fun n ->
      match n.kind with
      | Dead -> ()
      | Input -> remap.(n.id) <- add_input t' n.name
      | Const b ->
        let id = add_const t' b in
        (try rename t' id n.name with Invalid_argument _ -> ());
        remap.(n.id) <- id
      | Gate _ | Lut _ | Ff ->
        (* Fanins may point forward (splice insertions), so allocate a
           placeholder now and patch fanins in a second pass. *)
        remap.(n.id) <-
          add_node t' ~name:n.name
            (match n.kind with Lut tt -> Lut (Array.copy tt) | k -> k)
            (Array.copy n.fanins) n.cell)
    t.nodes;
  Vec.iter
    (fun n ->
      if n.kind <> Dead then begin
        let n' = node t' remap.(n.id) in
        Array.iteri
          (fun pin f ->
            if remap.(f) < 0 then
              failwith
                (Printf.sprintf "Netlist.compact: live node %s uses dead node %d"
                   n.name f);
            n'.fanins.(pin) <- remap.(f))
          n.fanins
      end)
    t.nodes;
  Vec.iter
    (fun po ->
      if remap.(po.driver) < 0 then
        failwith
          (Printf.sprintf "Netlist.compact: output %s driven by dead node"
             po.po_name);
      Vec.push t'.pos { po_name = po.po_name; driver = remap.(po.driver) })
    t.pos;
  (t', remap)

let fanout_table t =
  let table = Array.make (num_nodes t) [] in
  Vec.iter
    (fun n ->
      Array.iteri (fun pin f -> table.(f) <- (n.id, pin) :: table.(f)) n.fanins)
    t.nodes;
  table

(* Topological order of combinational nodes: sources (inputs, constants,
   flip-flop Q pins) are not listed; every Gate/Lut appears after all of its
   combinational fanins.  Flip-flop D pins are sinks, so sequential loops
   are legal; purely combinational cycles are an error. *)
let comb_topo_order t =
  let n = num_nodes t in
  let state = Array.make n 0 in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let order = ref [] in
  let rec visit id =
    let nd = node t id in
    if not (is_comb nd) then ()
    else
      match state.(id) with
      | 2 -> ()
      | 1 ->
        failwith
          (Printf.sprintf "Netlist: combinational cycle through node %s" nd.name)
      | _ ->
        state.(id) <- 1;
        Array.iter visit nd.fanins;
        state.(id) <- 2;
        order := id :: !order
  in
  for id = 0 to n - 1 do
    visit id
  done;
  List.rev !order

let validate t =
  Vec.iter
    (fun n ->
      let bad msg = failwith (Printf.sprintf "Netlist %s: node %s: %s" t.net_name n.name msg) in
      Array.iter
        (fun f ->
          if f < 0 || f >= num_nodes t then bad "fanin out of range"
          else if (node t f).kind = Dead then bad "fanin is dead")
        n.fanins;
      match n.kind with
      | Input | Const _ ->
        if Array.length n.fanins <> 0 then bad "source with fanins"
      | Gate fn ->
        if not (Cell.arity_ok fn (Array.length n.fanins)) then bad "bad arity"
      | Lut truth ->
        if Array.length truth <> 1 lsl Array.length n.fanins then
          bad "LUT truth-table size mismatch"
      | Ff -> if Array.length n.fanins <> 1 then bad "flip-flop needs exactly D"
      | Dead -> ())
    t.nodes;
  ignore (comb_topo_order t)

let eval_comb t assignment =
  let values = Array.make (num_nodes t) false in
  Vec.iter
    (fun n ->
      match n.kind with
      | Input | Ff -> values.(n.id) <- assignment n.id
      | Const b -> values.(n.id) <- b
      | Gate _ | Lut _ | Dead -> ())
    t.nodes;
  List.iter
    (fun id ->
      let n = node t id in
      let ins = Array.map (fun f -> values.(f)) n.fanins in
      match n.kind with
      | Gate fn -> values.(id) <- Cell.eval fn ins
      | Lut truth ->
        let idx = ref 0 in
        Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) ins;
        values.(id) <- truth.(!idx)
      | Input | Const _ | Ff | Dead -> assert false)
    (comb_topo_order t);
  values

let pp_kind ppf = function
  | Input -> Format.pp_print_string ppf "input"
  | Const b -> Format.fprintf ppf "const%d" (Bool.to_int b)
  | Gate fn -> Format.pp_print_string ppf (Cell.fn_name fn)
  | Lut tt -> Format.fprintf ppf "lut%d" (Array.length tt)
  | Ff -> Format.pp_print_string ppf "dff"
  | Dead -> Format.pp_print_string ppf "dead"

let pp_node ppf n =
  Format.fprintf ppf "%d:%s=%a(%s)" n.id n.name pp_kind n.kind
    (String.concat "," (Array.to_list (Array.map string_of_int n.fanins)))
