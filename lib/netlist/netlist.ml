

type kind =
  | Input
  | Const of bool
  | Gate of Cell.gate_fn
  | Lut of bool array
  | Ff
  | Dead

type node = {
  id : int;
  mutable name : string;
  mutable kind : kind;
  mutable fanins : int array;
  mutable cell : Cell.t option;
}

type po = { po_name : string; mutable driver : int }

(* A netlist compiled to a flat instruction stream: one instruction per
   combinational node in topological order, fanins flattened into a single
   array addressed by [offs].  Evaluation then needs no node records, no
   per-call fanin allocation and no hashing — just int arrays.

   Values live in *slots*, not node ids: sources take slots
   [0 .. n_srcs-1] in declaration order, constants the next few, and each
   instruction writes slot [n_srcs + n_consts + i] — so the hot loop walks
   the value array in the same order it walks the instruction stream, and
   a fanin read is always a lower slot.  Slot [n_slots] is a spare
   always-zero slot that dead fanins are wired to.  [slot_of_id] /
   [id_of_slot] translate for consumers that think in node ids. *)
type engine = {
  eng_gen : int;  (* generation of the netlist this was compiled from *)
  eng_nodes : int;
  n_srcs : int;  (* sources occupy slots 0..n_srcs-1, declaration order *)
  n_slots : int;  (* live slots; buffers carry one extra all-zero slot *)
  ops : int array;  (* opcode per instruction, see [opcode_of_fn] *)
  dst : int array;  (* destination slot per instruction *)
  offs : int array;  (* length = #instructions + 1; slice of [fan] *)
  fan : int array;  (* flattened fanin slots *)
  tabs : bool array array;  (* LUT truth table per instruction, [||] else *)
  srcs : int array;  (* Input and Ff node ids; source i lives in slot i *)
  one_slots : int array;  (* slots of Const-true nodes *)
  zero_slots : int array;  (* Const-false slots plus the spare zero slot *)
  slot_of_id : int array;  (* node id -> slot, -1 for Dead *)
  id_of_slot : int array;  (* slot -> node id, length n_slots *)
  mutable eng_scratch : scratch option;  (* lazily created owned scratch *)
}

(* Reusable evaluation buffers, all indexed by slot.  One scratch belongs
   to exactly one engine; the engine-owned one makes steady-state
   evaluation allocation-free, and independent scratches can be created
   per domain for parallel evaluation of the same engine. *)
and scratch = {
  sc_owner : engine;
  sc_bools : bool array;  (* n_slots + 1 *)
  sc_words : int array;  (* n_slots + 1 *)
  mutable sc_block : int array;  (* (n_slots + 1) * block words, grown *)
  mutable sc_block_words : int;
}

(* Graph analyses memoized behind the netlist's generation counter: any
   mutation bumps the generation, which lazily wipes every field. *)
type caches = {
  mutable c_gen : int;
  mutable c_topo_list : int list option;
  mutable c_topo_arr : int array option;
  mutable c_levels : int array option;
  mutable c_fanout : (int * int) list array option;
  mutable c_engine : engine option;
}

type t = {
  net_name : string;
  nodes : node Vec.t;
  pos : po Vec.t;
  by_name : (string, int) Hashtbl.t;
  mutable const0 : int;
  mutable const1 : int;
  mutable gen : int;
  caches : caches;
}

let create net_name =
  {
    net_name;
    nodes = Vec.create ();
    pos = Vec.create ();
    by_name = Hashtbl.create 64;
    const0 = -1;
    const1 = -1;
    gen = 0;
    caches =
      {
        c_gen = 0;
        c_topo_list = None;
        c_topo_arr = None;
        c_levels = None;
        c_fanout = None;
        c_engine = None;
      };
  }

let generation t = t.gen

(* Observability instruments (see DESIGN.md §6f).  Generation bumps and
   engine compiles are counted unconditionally — they happen at mutation
   and compile granularity, not per evaluation.  Per-eval accounting is
   gated behind [Obs.Probe] so the untraced hot path pays one boolean
   load per call. *)
let m_generation_bumps = Obs.Metrics.counter "netlist.generation_bumps"
let m_engine_compiles = Obs.Metrics.counter "engine.compiles"
let m_engine_instructions = Obs.Metrics.counter "engine.instructions_compiled"
let m_engine_evals = Obs.Metrics.counter "engine.evals"
let m_engine_word_evals = Obs.Metrics.counter "engine.word_evals"
let m_engine_block_evals = Obs.Metrics.counter "engine.block_evals"
let m_engine_block_words = Obs.Metrics.counter "engine.block_words"
let m_engine_instr_exec = Obs.Metrics.counter "engine.instructions_executed"
let m_plan_compiles = Obs.Metrics.counter "engine.plan_compiles"
let m_plan_evals = Obs.Metrics.counter "engine.plan_block_evals"

let touch t =
  Obs.Metrics.incr m_generation_bumps;
  t.gen <- t.gen + 1

let caches t =
  let c = t.caches in
  if c.c_gen <> t.gen then begin
    c.c_gen <- t.gen;
    c.c_topo_list <- None;
    c.c_topo_arr <- None;
    c.c_levels <- None;
    c.c_fanout <- None;
    c.c_engine <- None
  end;
  c

let name t = t.net_name

let num_nodes t = Vec.length t.nodes

let node t id =
  if id < 0 || id >= num_nodes t then
    invalid_arg (Printf.sprintf "Netlist.node: bad id %d" id);
  Vec.get t.nodes id

let fresh_name id = Printf.sprintf "n%d" id

let register_name t name id =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Netlist: duplicate node name %S" name);
  Hashtbl.replace t.by_name name id

let add_node t ?name kind fanins cell =
  let id = num_nodes t in
  let name =
    match name with
    | Some n -> n
    | None ->
      (* Auto names may collide with preserved names after renames or
         compaction; probe until free. *)
      let rec probe k =
        let candidate =
          if k = 0 then fresh_name id else Printf.sprintf "n%d_%d" id k
        in
        if Hashtbl.mem t.by_name candidate then probe (k + 1) else candidate
      in
      probe 0
  in
  register_name t name id;
  let n = { id; name; kind; fanins; cell } in
  Vec.push t.nodes n;
  touch t;
  id

let check_fanins t fanins =
  Array.iter
    (fun f ->
      if f < 0 || f >= num_nodes t then
        invalid_arg (Printf.sprintf "Netlist: unknown fanin id %d" f))
    fanins

let add_input t n = add_node t ~name:n Input [||] None

let add_const t b =
  let cached = if b then t.const1 else t.const0 in
  if cached >= 0 then cached
  else begin
    let id = add_node t (Const b) [||] None in
    if b then t.const1 <- id else t.const0 <- id;
    id
  end

let add_gate t ?name ?cell fn fanins =
  check_fanins t fanins;
  let arity = Array.length fanins in
  if not (Cell.arity_ok fn arity) then
    invalid_arg
      (Printf.sprintf "Netlist.add_gate: arity %d illegal for %s" arity
         (Cell.fn_name fn));
  let cell = match cell with Some c -> c | None -> Cell_lib.bind fn arity in
  add_node t ?name (Gate fn) fanins (Some cell)

let add_lut t ?name ~truth fanins =
  check_fanins t fanins;
  let arity = Array.length fanins in
  if Array.length truth <> 1 lsl arity then
    invalid_arg "Netlist.add_lut: truth table size mismatch";
  add_node t ?name (Lut truth) fanins None

let add_ff t ?name d =
  check_fanins t [| d |];
  add_node t ?name Ff [| d |] (Some Cell_lib.dff)

let add_output t n driver =
  check_fanins t [| driver |];
  if Vec.exists (fun po -> po.po_name = n) t.pos then
    invalid_arg (Printf.sprintf "Netlist: duplicate output %S" n);
  Vec.push t.pos { po_name = n; driver };
  touch t

let find t n = Hashtbl.find_opt t.by_name n

let outputs t = Vec.fold (fun acc po -> (po.po_name, po.driver) :: acc) [] t.pos |> List.rev

let set_output_driver t po_name driver =
  check_fanins t [| driver |];
  let found = ref false in
  Vec.iter
    (fun po -> if po.po_name = po_name then begin po.driver <- driver; found := true end)
    t.pos;
  if not !found then
    invalid_arg (Printf.sprintf "Netlist: no output named %S" po_name);
  touch t

let remove_output t po_name =
  if not (Vec.exists (fun po -> po.po_name = po_name) t.pos) then
    invalid_arg (Printf.sprintf "Netlist: no output named %S" po_name);
  let remaining = Vec.fold (fun acc po -> if po.po_name = po_name then acc else po :: acc) [] t.pos in
  Vec.clear t.pos;
  List.iter (Vec.push t.pos) (List.rev remaining);
  touch t

let collect t pred =
  Vec.fold (fun acc n -> if pred n then n.id :: acc else acc) [] t.nodes
  |> List.rev

let inputs t = collect t (fun n -> n.kind = Input)

let ffs t = collect t (fun n -> n.kind = Ff)

let is_comb n = match n.kind with Gate _ | Lut _ -> true | Input | Const _ | Ff | Dead -> false

let set_fanin t ~node_id ~pin ~driver =
  check_fanins t [| driver |];
  let n = node t node_id in
  if pin < 0 || pin >= Array.length n.fanins then
    invalid_arg "Netlist.set_fanin: bad pin";
  n.fanins.(pin) <- driver;
  touch t

let widen_gate t ~node_id ~extra_driver =
  check_fanins t [| extra_driver |];
  let n = node t node_id in
  match n.kind with
  | Gate ((And | Or | Nand | Nor | Xor | Xnor) as fn) ->
    n.fanins <- Array.append n.fanins [| extra_driver |];
    n.cell <- Some (Cell_lib.bind fn (Array.length n.fanins));
    touch t
  | Gate (Not | Buf | Mux) | Input | Const _ | Lut _ | Ff | Dead ->
    invalid_arg "Netlist.widen_gate: not a variadic gate"

let set_gate_fn t ~node_id fn =
  let n = node t node_id in
  match n.kind with
  | Gate _ ->
    let arity = Array.length n.fanins in
    if not (Cell.arity_ok fn arity) then
      invalid_arg
        (Printf.sprintf "Netlist.set_gate_fn: %s cannot take %d inputs"
           (Cell.fn_name fn) arity);
    n.kind <- Gate fn;
    n.cell <- Some (Cell_lib.bind fn arity);
    touch t
  | Input | Const _ | Lut _ | Ff | Dead ->
    invalid_arg "Netlist.set_gate_fn: not a gate"

let rename t id n =
  let nd = node t id in
  if nd.name = n then ()
  else begin
    register_name t n id;
    Hashtbl.remove t.by_name nd.name;
    nd.name <- n;
    touch t
  end

let kill t id =
  let n = node t id in
  Hashtbl.remove t.by_name n.name;
  n.kind <- Dead;
  n.fanins <- [||];
  n.cell <- None;
  if t.const0 = id then t.const0 <- -1;
  if t.const1 = id then t.const1 <- -1;
  touch t

let replace_uses t ~old_id ~new_id =
  check_fanins t [| old_id; new_id |];
  Vec.iter
    (fun n ->
      Array.iteri (fun pin f -> if f = old_id then n.fanins.(pin) <- new_id) n.fanins)
    t.nodes;
  Vec.iter (fun po -> if po.driver = old_id then po.driver <- new_id) t.pos;
  touch t

let copy t =
  let t' = create t.net_name in
  Vec.iter
    (fun n ->
      let kind =
        match n.kind with
        | Lut truth -> Lut (Array.copy truth)
        | (Input | Const _ | Gate _ | Ff | Dead) as k -> k
      in
      let id =
        add_node t' ~name:n.name kind (Array.copy n.fanins) n.cell
      in
      assert (id = n.id);
      (match n.kind with
      | Const false -> t'.const0 <- id
      | Const true -> t'.const1 <- id
      | Input | Gate _ | Lut _ | Ff | Dead -> ())
      )
    t.nodes;
  (* Dead nodes keep a registered name in the copy; drop it to mirror the
     original's table. *)
  Vec.iter
    (fun n -> if n.kind = Dead then Hashtbl.remove t'.by_name n.name)
    t'.nodes;
  Vec.iter (fun po -> Vec.push t'.pos { po_name = po.po_name; driver = po.driver }) t.pos;
  t'

let compact t =
  let remap = Array.make (num_nodes t) (-1) in
  let t' = create t.net_name in
  Vec.iter
    (fun n ->
      match n.kind with
      | Dead -> ()
      | Input -> remap.(n.id) <- add_input t' n.name
      | Const b ->
        let id = add_const t' b in
        (try rename t' id n.name with Invalid_argument _ -> ());
        remap.(n.id) <- id
      | Gate _ | Lut _ | Ff ->
        (* Fanins may point forward (splice insertions), so allocate a
           placeholder now and patch fanins in a second pass. *)
        remap.(n.id) <-
          add_node t' ~name:n.name
            (match n.kind with Lut tt -> Lut (Array.copy tt) | k -> k)
            (Array.copy n.fanins) n.cell)
    t.nodes;
  Vec.iter
    (fun n ->
      if n.kind <> Dead then begin
        let n' = node t' remap.(n.id) in
        Array.iteri
          (fun pin f ->
            if remap.(f) < 0 then
              failwith
                (Printf.sprintf "Netlist.compact: live node %s uses dead node %d"
                   n.name f);
            n'.fanins.(pin) <- remap.(f))
          n.fanins
      end)
    t.nodes;
  Vec.iter
    (fun po ->
      if remap.(po.driver) < 0 then
        failwith
          (Printf.sprintf "Netlist.compact: output %s driven by dead node"
             po.po_name);
      Vec.push t'.pos { po_name = po.po_name; driver = remap.(po.driver) })
    t.pos;
  (t', remap)

let fanout_table t =
  let c = caches t in
  match c.c_fanout with
  | Some table -> table
  | None ->
    let table = Array.make (num_nodes t) [] in
    Vec.iter
      (fun n ->
        Array.iteri (fun pin f -> table.(f) <- (n.id, pin) :: table.(f)) n.fanins)
      t.nodes;
    c.c_fanout <- Some table;
    table

(* Topological order of combinational nodes: sources (inputs, constants,
   flip-flop Q pins) are not listed; every Gate/Lut appears after all of its
   combinational fanins.  Flip-flop D pins are sinks, so sequential loops
   are legal; purely combinational cycles are an error. *)
let compute_topo t =
  let n = num_nodes t in
  let state = Array.make n 0 in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let order = ref [] in
  let rec visit id =
    let nd = node t id in
    if not (is_comb nd) then ()
    else
      match state.(id) with
      | 2 -> ()
      | 1 ->
        failwith
          (Printf.sprintf "Netlist: combinational cycle through node %s" nd.name)
      | _ ->
        state.(id) <- 1;
        Array.iter visit nd.fanins;
        state.(id) <- 2;
        order := id :: !order
  in
  for id = 0 to n - 1 do
    visit id
  done;
  List.rev !order

let comb_topo_order t =
  let c = caches t in
  match c.c_topo_list with
  | Some l -> l
  | None ->
    let l = compute_topo t in
    c.c_topo_list <- Some l;
    l

let comb_topo_array t =
  let c = caches t in
  match c.c_topo_arr with
  | Some a -> a
  | None ->
    let a = Array.of_list (comb_topo_order t) in
    (* comb_topo_order went through [caches] too, same generation *)
    c.c_topo_arr <- Some a;
    a

let levels t =
  let c = caches t in
  match c.c_levels with
  | Some lv -> lv
  | None ->
    let lv = Array.make (num_nodes t) 0 in
    Vec.iter (fun n -> if n.kind = Dead then lv.(n.id) <- -1) t.nodes;
    List.iter
      (fun id ->
        let nd = node t id in
        let deepest =
          Array.fold_left
            (fun acc f -> if is_comb (node t f) then max acc lv.(f) else acc)
            0 nd.fanins
        in
        lv.(id) <- deepest + 1)
      (comb_topo_order t);
    c.c_levels <- Some lv;
    lv

let validate t =
  Vec.iter
    (fun n ->
      let bad msg = failwith (Printf.sprintf "Netlist %s: node %s: %s" t.net_name n.name msg) in
      Array.iter
        (fun f ->
          if f < 0 || f >= num_nodes t then bad "fanin out of range"
          else if (node t f).kind = Dead then bad "fanin is dead")
        n.fanins;
      match n.kind with
      | Input | Const _ ->
        if Array.length n.fanins <> 0 then bad "source with fanins"
      | Gate fn ->
        if not (Cell.arity_ok fn (Array.length n.fanins)) then bad "bad arity"
      | Lut truth ->
        if Array.length truth <> 1 lsl Array.length n.fanins then
          bad "LUT truth-table size mismatch"
      | Ff -> if Array.length n.fanins <> 1 then bad "flip-flop needs exactly D"
      | Dead -> ())
    t.nodes;
  ignore (comb_topo_order t)

module Engine = struct
  type nonrec engine = engine
  type nonrec scratch = scratch

  let word_bits = Sys.int_size

  let opcode_of_fn : Cell.gate_fn -> int = function
    | Cell.Not -> 0
    | Cell.Buf -> 1
    | Cell.And -> 2
    | Cell.Or -> 3
    | Cell.Nand -> 4
    | Cell.Nor -> 5
    | Cell.Xor -> 6
    | Cell.Xnor -> 7
    | Cell.Mux -> 8

  let op_lut = 9

  let compile t =
    Obs.Trace.with_span
      ~args:[ ("netlist", Cjson.Str t.net_name); ("gen", Cjson.Int t.gen) ]
      "engine.compile"
    @@ fun () ->
    let order = comb_topo_array t in
    let n_instr = Array.length order in
    let n = num_nodes t in
    (* slot assignment: sources, then constants, then instructions in
       topological order — value writes are sequential in memory *)
    let slot_of_id = Array.make (max 1 n) (-1) in
    let srcs = ref [] and consts = ref [] in
    Vec.iter
      (fun nd ->
        match nd.kind with
        | Input | Ff -> srcs := nd.id :: !srcs
        | Const b -> consts := (nd.id, b) :: !consts
        | Gate _ | Lut _ | Dead -> ())
      t.nodes;
    let srcs = Array.of_list (List.rev !srcs) in
    let n_srcs = Array.length srcs in
    Array.iteri (fun i id -> slot_of_id.(id) <- i) srcs;
    let next = ref n_srcs in
    let one_slots = ref [] and zero_slots = ref [] in
    List.iter
      (fun (id, b) ->
        slot_of_id.(id) <- !next;
        if b then one_slots := !next :: !one_slots
        else zero_slots := !next :: !zero_slots;
        incr next)
      (List.rev !consts);
    Array.iter
      (fun id ->
        slot_of_id.(id) <- !next;
        incr next)
      order;
    let n_slots = !next in
    (* spare all-zero slot: anything a killed node still drives reads 0 *)
    let zero_slot = n_slots in
    zero_slots := zero_slot :: !zero_slots;
    let slot_of f = if slot_of_id.(f) < 0 then zero_slot else slot_of_id.(f) in
    let ops = Array.make n_instr 0 in
    let tabs = Array.make n_instr [||] in
    let offs = Array.make (n_instr + 1) 0 in
    let dst = Array.make (max 1 n_instr) 0 in
    let total = ref 0 in
    Array.iteri
      (fun i id ->
        offs.(i) <- !total;
        dst.(i) <- slot_of_id.(id);
        let nd = node t id in
        total := !total + Array.length nd.fanins;
        match nd.kind with
        | Gate fn -> ops.(i) <- opcode_of_fn fn
        | Lut truth ->
          ops.(i) <- op_lut;
          tabs.(i) <- truth
        | Input | Const _ | Ff | Dead -> assert false)
      order;
    offs.(n_instr) <- !total;
    Obs.Metrics.incr m_engine_compiles;
    Obs.Metrics.add m_engine_instructions n_instr;
    let fan = Array.make (max 1 !total) 0 in
    Array.iteri
      (fun i id ->
        let nd = node t id in
        Array.iteri (fun pin f -> fan.(offs.(i) + pin) <- slot_of f) nd.fanins)
      order;
    let id_of_slot = Array.make (max 1 n_slots) (-1) in
    Array.iteri
      (fun id s -> if s >= 0 then id_of_slot.(s) <- id)
      slot_of_id;
    {
      eng_gen = t.gen;
      eng_nodes = n;
      n_srcs;
      n_slots;
      ops;
      dst;
      offs;
      fan;
      tabs;
      srcs;
      one_slots = Array.of_list (List.rev !one_slots);
      zero_slots = Array.of_list (List.rev !zero_slots);
      slot_of_id;
      id_of_slot;
      eng_scratch = None;
    }

  let get t =
    let c = caches t in
    match c.c_engine with
    | Some e -> e
    | None ->
      let e = compile t in
      c.c_engine <- Some e;
      e

  let generation e = e.eng_gen

  let sources e = e.srcs
  let n_slots e = e.n_slots
  let slot_of_id e = e.slot_of_id

  let create_scratch e =
    {
      sc_owner = e;
      sc_bools = Array.make (e.n_slots + 1) false;
      sc_words = Array.make (e.n_slots + 1) 0;
      sc_block = [||];
      sc_block_words = 0;
    }

  let owned_scratch e =
    match e.eng_scratch with
    | Some s -> s
    | None ->
      let s = create_scratch e in
      e.eng_scratch <- Some s;
      s

  let scratch_for e = function
    | None -> owned_scratch e
    | Some s ->
      if s.sc_owner != e then
        invalid_arg "Netlist.Engine: scratch belongs to a different engine";
      s

  (* The three interpreter cores run over slot-dense buffers: writes are
     sequential (instruction i writes slot n_srcs + n_consts + i) and
     every fanin read is a lower slot, so big circuits stay cache-resident
     instead of hopping around an id-indexed array. *)

  let run_bools e (values : bool array) =
    let { ops; dst; offs; fan; tabs; _ } = e in
    for i = 0 to Array.length ops - 1 do
      let lo = offs.(i) and hi = offs.(i + 1) in
      let v =
        match ops.(i) with
        | 0 -> not values.(fan.(lo))
        | 1 -> values.(fan.(lo))
        | 2 | 4 ->
          let r = ref true in
          for j = lo to hi - 1 do
            r := !r && values.(fan.(j))
          done;
          if ops.(i) = 2 then !r else not !r
        | 3 | 5 ->
          let r = ref false in
          for j = lo to hi - 1 do
            r := !r || values.(fan.(j))
          done;
          if ops.(i) = 3 then !r else not !r
        | 6 | 7 ->
          let r = ref false in
          for j = lo to hi - 1 do
            r := !r <> values.(fan.(j))
          done;
          if ops.(i) = 6 then !r else not !r
        | 8 ->
          if values.(fan.(lo)) then values.(fan.(lo + 2))
          else values.(fan.(lo + 1))
        | _ ->
          let idx = ref 0 in
          for j = lo to hi - 1 do
            if values.(fan.(j)) then idx := !idx lor (1 lsl (j - lo))
          done;
          tabs.(i).(!idx)
      in
      values.(dst.(i)) <- v
    done

  let run_words e (values : int array) =
    let { ops; dst; offs; fan; tabs; _ } = e in
    for i = 0 to Array.length ops - 1 do
      let lo = offs.(i) and hi = offs.(i + 1) in
      let v =
        match ops.(i) with
        | 0 -> lnot values.(fan.(lo))
        | 1 -> values.(fan.(lo))
        | 2 | 4 ->
          let r = ref (-1) in
          for j = lo to hi - 1 do
            r := !r land values.(fan.(j))
          done;
          if ops.(i) = 2 then !r else lnot !r
        | 3 | 5 ->
          let r = ref 0 in
          for j = lo to hi - 1 do
            r := !r lor values.(fan.(j))
          done;
          if ops.(i) = 3 then !r else lnot !r
        | 6 | 7 ->
          let r = ref 0 in
          for j = lo to hi - 1 do
            r := !r lxor values.(fan.(j))
          done;
          if ops.(i) = 6 then !r else lnot !r
        | 8 ->
          let s = values.(fan.(lo)) in
          s land values.(fan.(lo + 2)) lor (lnot s land values.(fan.(lo + 1)))
        | _ ->
          (* Sum of products over the true rows of the truth table: for
             every lane the conjunction selects exactly the row indexed by
             that lane's fanin bits. *)
          let tab = tabs.(i) in
          let r = ref 0 in
          for row = 0 to Array.length tab - 1 do
            if tab.(row) then begin
              let term = ref (-1) in
              for j = lo to hi - 1 do
                let w = values.(fan.(j)) in
                term :=
                  !term land (if row land (1 lsl (j - lo)) <> 0 then w else lnot w)
              done;
              r := !r lor !term
            end
          done;
          !r
      in
      values.(dst.(i)) <- v
    done

  (* [nw] words per slot, word k of slot s at [blk.(s * nw + k)]: the
     instruction stream is walked once for nw * word_bits stimulus lanes,
     with contiguous per-slot word runs so the inner loops stream. *)
  let run_block e (blk : int array) nw =
    let { ops; dst; offs; fan; tabs; _ } = e in
    for i = 0 to Array.length ops - 1 do
      let lo = offs.(i) and hi = offs.(i + 1) in
      let db = dst.(i) * nw in
      match ops.(i) with
      | 0 ->
        let fb = fan.(lo) * nw in
        for k = 0 to nw - 1 do
          blk.(db + k) <- lnot blk.(fb + k)
        done
      | 1 ->
        let fb = fan.(lo) * nw in
        for k = 0 to nw - 1 do
          blk.(db + k) <- blk.(fb + k)
        done
      | (2 | 4) as op ->
        let fb = fan.(lo) * nw in
        for k = 0 to nw - 1 do
          blk.(db + k) <- blk.(fb + k)
        done;
        for j = lo + 1 to hi - 1 do
          let fb = fan.(j) * nw in
          for k = 0 to nw - 1 do
            blk.(db + k) <- blk.(db + k) land blk.(fb + k)
          done
        done;
        if op = 4 then
          for k = 0 to nw - 1 do
            blk.(db + k) <- lnot blk.(db + k)
          done
      | (3 | 5) as op ->
        let fb = fan.(lo) * nw in
        for k = 0 to nw - 1 do
          blk.(db + k) <- blk.(fb + k)
        done;
        for j = lo + 1 to hi - 1 do
          let fb = fan.(j) * nw in
          for k = 0 to nw - 1 do
            blk.(db + k) <- blk.(db + k) lor blk.(fb + k)
          done
        done;
        if op = 5 then
          for k = 0 to nw - 1 do
            blk.(db + k) <- lnot blk.(db + k)
          done
      | (6 | 7) as op ->
        let fb = fan.(lo) * nw in
        for k = 0 to nw - 1 do
          blk.(db + k) <- blk.(fb + k)
        done;
        for j = lo + 1 to hi - 1 do
          let fb = fan.(j) * nw in
          for k = 0 to nw - 1 do
            blk.(db + k) <- blk.(db + k) lxor blk.(fb + k)
          done
        done;
        if op = 7 then
          for k = 0 to nw - 1 do
            blk.(db + k) <- lnot blk.(db + k)
          done
      | 8 ->
        let sb = fan.(lo) * nw
        and bb = fan.(lo + 1) * nw
        and cb = fan.(lo + 2) * nw in
        for k = 0 to nw - 1 do
          let s = blk.(sb + k) in
          blk.(db + k) <- s land blk.(cb + k) lor (lnot s land blk.(bb + k))
        done
      | _ ->
        let tab = tabs.(i) in
        for k = 0 to nw - 1 do
          let r = ref 0 in
          for row = 0 to Array.length tab - 1 do
            if tab.(row) then begin
              let term = ref (-1) in
              for j = lo to hi - 1 do
                let w = blk.((fan.(j) * nw) + k) in
                term :=
                  !term land (if row land (1 lsl (j - lo)) <> 0 then w else lnot w)
              done;
              r := !r lor !term
            end
          done;
          blk.(db + k) <- !r
        done
    done

  let eval_into ?scratch e assignment =
    if Obs.Probe.active () then begin
      Obs.Metrics.incr m_engine_evals;
      Obs.Metrics.add m_engine_instr_exec (Array.length e.ops)
    end;
    let s = scratch_for e scratch in
    let values = s.sc_bools in
    Array.iteri (fun i id -> values.(i) <- assignment id) e.srcs;
    Array.iter (fun sl -> values.(sl) <- true) e.one_slots;
    run_bools e values;
    values

  let eval_words_into ?scratch e assignment =
    if Obs.Probe.active () then begin
      Obs.Metrics.incr m_engine_word_evals;
      Obs.Metrics.add m_engine_instr_exec (Array.length e.ops)
    end;
    let s = scratch_for e scratch in
    let values = s.sc_words in
    Array.iteri (fun i id -> values.(i) <- assignment id) e.srcs;
    Array.iter (fun sl -> values.(sl) <- -1) e.one_slots;
    run_words e values;
    values

  let eval_block ?scratch e ~n_words ~fill =
    if n_words < 1 then
      invalid_arg "Netlist.Engine.eval_block: n_words must be >= 1";
    if Obs.Probe.active () then begin
      Obs.Metrics.incr m_engine_block_evals;
      Obs.Metrics.add m_engine_block_words n_words;
      Obs.Metrics.add m_engine_instr_exec (Array.length e.ops)
    end;
    let s = scratch_for e scratch in
    if Array.length s.sc_block < (e.n_slots + 1) * n_words then begin
      s.sc_block <- Array.make ((e.n_slots + 1) * n_words) 0;
      s.sc_block_words <- n_words
    end;
    let blk = s.sc_block in
    (* source region zeroed so partially-filled blocks read 0, and
       constant/spare slots re-pinned: a previous call with a different
       n_words laid slots out at a different stride *)
    Array.fill blk 0 (e.n_srcs * n_words) 0;
    Array.iter
      (fun sl -> Array.fill blk (sl * n_words) n_words 0)
      e.zero_slots;
    fill blk;
    Array.iter
      (fun sl -> Array.fill blk (sl * n_words) n_words (-1))
      e.one_slots;
    run_block e blk n_words;
    blk

  (* ----- shard plans: fused kernels over output fanout cones -----

     A plan recompiles the instruction stream once more, per shard: the
     sinks (primary-output drivers and flip-flop D pins) are partitioned
     into K fanout cones, each cone's live instructions get a dense
     local slot space and a specialized opcode (NAND2 is one fused pass
     instead of copy + combine + invert), and shards evaluate
     independently — in parallel across the Parallel domain pool when
     more than one domain is available, and still faster than
     [run_block] on one domain because the fused kernels touch ~1/3 of
     the memory per gate and unreachable instructions are skipped
     entirely.  Cone duplication is the cost of independence: a sink
     assignment whose shards would together re-evaluate more than
     [dup_budget] times the live logic collapses to fewer shards (on
     dense circuits like s38417 every cone overlaps almost fully, so the
     auto plan degenerates to one shard and the win comes from the fused
     kernels + dead-code skip alone). *)

  type shard = {
    sp_ops : int array;  (* specialized opcodes, see [spec_op] *)
    sp_dst : int array;  (* local destination slot per instruction *)
    sp_offs : int array;
    sp_fan : int array;  (* local fanin slots *)
    sp_tabs : bool array array;
    sp_n_slots : int;
    sp_copy_src : int array;  (* coalesced copy-in ranges: global start... *)
    sp_copy_local : int array;  (* ...local start... *)
    sp_copy_len : int array;  (* ...and length, in slots *)
    sp_one_local : int array;
    sp_zero_local : int array;
    mutable sp_fanw : int array;  (* sp_fan pre-scaled by the word count *)
    mutable sp_dstw : int array;  (* sp_dst pre-scaled by the word count *)
    mutable sp_scaled_words : int;
    mutable sp_blk : int array;
    mutable sp_blk_words : int;
  }

  type plan = {
    pl_eng : engine;
    pl_shards : shard array;
    pl_direct : bool;  (* single shard wanting every source in order:
                          [fill] writes the shard block directly *)
    pl_shard_of : int array;  (* global slot -> owning shard, -1 otherwise *)
    pl_local_of : int array;  (* global slot -> local slot in owning shard *)
    pl_is_one : bool array;  (* global slot -> is a constant-one slot *)
    pl_dup : float;  (* sum of shard instructions / live instructions *)
    pl_live : int;  (* live (sink-reachable) instructions *)
    mutable pl_src : int array;  (* source block, same layout as eval_block *)
    mutable pl_words : int;
  }

  (* Fused opcode for engine opcode [op] at [arity]: 2-, 3- and 4-input
     variadic gates get single-pass kernels; wider ones fall back to the
     generic copy/combine/invert shape. *)
  let spec_op op arity =
    match (op, arity) with
    | 0, _ -> 0
    | 1, _ -> 1
    | 2, 2 -> 2
    | 3, 2 -> 3
    | 4, 2 -> 4
    | 5, 2 -> 5
    | 6, 2 -> 6
    | 7, 2 -> 7
    | 8, _ -> 8
    | 2, 3 -> 9
    | 3, 3 -> 10
    | 4, 3 -> 11
    | 5, 3 -> 12
    | 6, 3 -> 13
    | 7, 3 -> 14
    | 2, 4 -> 23
    | 3, 4 -> 24
    | 4, 4 -> 25
    | 5, 4 -> 26
    | 6, 4 -> 27
    | 7, 4 -> 28
    | 2, _ -> 16
    | 3, _ -> 17
    | 4, _ -> 18
    | 5, _ -> 19
    | 6, _ -> 20
    | 7, _ -> 21
    | _ -> 22 (* LUT *)

  let n_spec_ops = 29

  let plan ?shards ?(dup_budget = 1.25) t =
    let e = get t in
    let n_instr = Array.length e.ops in
    let first = e.n_slots - n_instr in
    (* sink instructions: primary-output drivers + flip-flop D pins *)
    let sink_of_id id =
      if id < 0 then -1
      else
        let s = e.slot_of_id.(id) in
        if s >= first && s < e.n_slots then s - first else -1
    in
    let is_sink = Array.make (max 1 n_instr) false in
    Vec.iter
      (fun po ->
        let i = sink_of_id po.driver in
        if i >= 0 then is_sink.(i) <- true)
      t.pos;
    Vec.iter
      (fun nd ->
        if nd.kind = Ff then begin
          let i = sink_of_id nd.fanins.(0) in
          if i >= 0 then is_sink.(i) <- true
        end)
      t.nodes;
    let sinks = ref [] in
    for i = n_instr - 1 downto 0 do
      if is_sink.(i) then sinks := i :: !sinks
    done;
    let sinks = Array.of_list !sinks in
    let n_sinks = Array.length sinks in
    (* live = reachable from some sink *)
    let live = Bytes.make (max 1 n_instr) '\000' in
    let stack = ref [] in
    Array.iter (fun i -> stack := i :: !stack) sinks;
    let n_live = ref 0 in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | i :: tl ->
        stack := tl;
        if Bytes.get live i = '\000' then begin
          Bytes.set live i '\001';
          incr n_live;
          for j = e.offs.(i) to e.offs.(i + 1) - 1 do
            let f = e.fan.(j) in
            if f >= first && f < e.n_slots then stack := (f - first) :: !stack
          done
        end
    done;
    (* cone DFS into [buf], stamped so visited state resets per sink *)
    let stamp = Array.make (max 1 n_instr) (-1) in
    let buf = ref (Array.make 1024 0) in
    let cone_of tag sink =
      let len = ref 0 in
      let push i =
        if Array.length !buf = !len then begin
          let b = Array.make (2 * !len) 0 in
          Array.blit !buf 0 b 0 !len;
          buf := b
        end;
        !buf.(!len) <- i;
        incr len
      in
      let st = ref [ sink ] in
      while !st <> [] do
        match !st with
        | [] -> ()
        | i :: tl ->
          st := tl;
          if stamp.(i) <> tag then begin
            stamp.(i) <- tag;
            push i;
            for j = e.offs.(i) to e.offs.(i + 1) - 1 do
              let f = e.fan.(j) in
              if f >= first && f < e.n_slots then st := (f - first) :: !st
            done
          end
      done;
      !len
    in
    (* greedy cone-affinity partition into [k] shards; big cones first *)
    let partition k =
      let order = Array.mapi (fun idx s -> (idx, s)) sinks in
      let sizes = Array.map (fun (idx, s) -> (cone_of idx s, s)) order in
      Array.sort (fun (a, _) (b, _) -> compare b a) sizes;
      let members = Array.init k (fun _ -> Bytes.make (max 1 n_instr) '\000') in
      let counts = Array.make k 0 in
      Array.iteri
        (fun rank (_, sink) ->
          let tag = n_sinks + rank in
          let len = cone_of tag sink in
          let cone = !buf in
          let best = ref 0 and best_score = ref min_int in
          for s = 0 to k - 1 do
            let m = members.(s) in
            let overlap = ref 0 in
            for c = 0 to len - 1 do
              if Bytes.get m cone.(c) = '\001' then incr overlap
            done;
            (* prefer the shard already holding most of this cone;
               tie-break toward the emptiest shard *)
            let score = (!overlap * 8) - (counts.(s) * 8 / max 1 !n_live) in
            if score > !best_score
               || (score = !best_score && counts.(s) < counts.(!best))
            then begin
              best := s;
              best_score := score
            end
          done;
          let m = members.(!best) in
          for c = 0 to len - 1 do
            if Bytes.get m cone.(c) = '\000' then begin
              Bytes.set m cone.(c) '\001';
              counts.(!best) <- counts.(!best) + 1
            end
          done)
        sizes;
      (members, counts)
    in
    let forced = shards <> None in
    let k0 =
      match shards with
      | Some k when k < 1 -> invalid_arg "Netlist.Engine.plan: shards < 1"
      | Some k -> min k (max 1 n_sinks)
      | None -> min (Parallel.default_domains ()) (max 1 n_sinks)
    in
    let rec choose k =
      if k <= 1 then ([| Bytes.copy live |], [| !n_live |])
      else begin
        let members, counts = partition k in
        let total = Array.fold_left ( + ) 0 counts in
        let dup = float_of_int total /. float_of_int (max 1 !n_live) in
        if forced || dup <= dup_budget then (members, counts)
        else choose (k / 2)
      end
    in
    let members, counts = choose k0 in
    let k = Array.length members in
    let shard_of = Array.make (e.n_slots + 1) (-1) in
    let local_of = Array.make (e.n_slots + 1) (-1) in
    let compile_shard s =
      let m = members.(s) in
      let needed = Array.make (e.n_slots + 1) false in
      let n_mine = counts.(s) in
      let total_fan = ref 0 in
      for i = 0 to n_instr - 1 do
        if Bytes.get m i = '\001' then begin
          needed.(first + i) <- true;
          total_fan := !total_fan + (e.offs.(i + 1) - e.offs.(i));
          for j = e.offs.(i) to e.offs.(i + 1) - 1 do
            needed.(e.fan.(j)) <- true
          done
        end
      done;
      (* Pinned local slots: sources and constants in ascending global
         order (so copy-in ranges coalesce) plus the spare zero slot,
         then sink destinations.  Interior destinations are allocated
         from a free list as values die, so the shard's working set
         stays close to the circuit's peak liveness instead of its
         total gate count. *)
      let loc = Array.make (e.n_slots + 1) (-1) in
      let next = ref 0 in
      let pin g =
        if needed.(g) && loc.(g) < 0 then begin
          loc.(g) <- !next;
          incr next
        end
      in
      for g = 0 to first - 1 do
        pin g
      done;
      pin e.n_slots;
      let copies = ref [] and ones = ref [] and zeros = ref [] in
      (* coalesce consecutive needed sources into ranged blits *)
      let g = ref 0 in
      while !g < e.n_srcs do
        if needed.(!g) then begin
          let g0 = !g in
          while !g < e.n_srcs && needed.(!g) do
            incr g
          done;
          copies := (g0, loc.(g0), !g - g0) :: !copies
        end
        else incr g
      done;
      let copies = Array.of_list (List.rev !copies) in
      Array.iter
        (fun g -> if needed.(g) then ones := loc.(g) :: !ones)
        e.one_slots;
      Array.iter
        (fun g -> if needed.(g) then zeros := loc.(g) :: !zeros)
        e.zero_slots;
      (* member table and intra-shard dependency edges *)
      let mine = Array.make (max 1 n_mine) 0 in
      let midx = Array.make (max 1 n_instr) (-1) in
      let mi = ref 0 in
      for i = 0 to n_instr - 1 do
        if Bytes.get m i = '\001' then begin
          mine.(!mi) <- i;
          midx.(i) <- !mi;
          if is_sink.(i) then pin (first + i);
          incr mi
        end
      done;
      let indeg = Array.make (max 1 n_mine) 0 in
      let succ_cnt = Array.make (max 1 n_mine) 0 in
      let n_edges = ref 0 in
      for t = 0 to n_mine - 1 do
        let i = mine.(t) in
        for j = e.offs.(i) to e.offs.(i + 1) - 1 do
          let f = e.fan.(j) in
          if f >= first && f < e.n_slots then begin
            indeg.(t) <- indeg.(t) + 1;
            let p = midx.(f - first) in
            succ_cnt.(p) <- succ_cnt.(p) + 1;
            incr n_edges
          end
        done
      done;
      let succ_off = Array.make (n_mine + 1) 0 in
      for t = 0 to n_mine - 1 do
        succ_off.(t + 1) <- succ_off.(t) + succ_cnt.(t)
      done;
      let succ = Array.make (max 1 !n_edges) 0 in
      let fill_at = Array.copy succ_off in
      for t = 0 to n_mine - 1 do
        let i = mine.(t) in
        for j = e.offs.(i) to e.offs.(i + 1) - 1 do
          let f = e.fan.(j) in
          if f >= first && f < e.n_slots then begin
            let p = midx.(f - first) in
            succ.(fill_at.(p)) <- t;
            fill_at.(p) <- fill_at.(p) + 1
          end
        done
      done;
      (* opcode-affinity list scheduling: among ready instructions,
         keep draining the current opcode's bucket so the interpreter
         dispatch branch stays predictable; when it runs dry, switch to
         the fullest bucket.  LIFO buckets keep producers and consumers
         close together, which also shrinks live ranges. *)
      let sop = Array.make (max 1 n_mine) 0 in
      for t = 0 to n_mine - 1 do
        let i = mine.(t) in
        sop.(t) <- spec_op e.ops.(i) (e.offs.(i + 1) - e.offs.(i))
      done;
      let buckets = Array.make n_spec_ops [] in
      let blen = Array.make n_spec_ops 0 in
      let push t =
        let b = sop.(t) in
        buckets.(b) <- t :: buckets.(b);
        blen.(b) <- blen.(b) + 1
      in
      for t = 0 to n_mine - 1 do
        if indeg.(t) = 0 then push t
      done;
      let sp_ops = Array.make (max 1 n_mine) 0 in
      let sp_dst = Array.make (max 1 n_mine) 0 in
      let sp_offs = Array.make (n_mine + 1) 0 in
      let sp_tabs = Array.make (max 1 n_mine) [||] in
      let sp_fan = Array.make (max 1 !total_fan) 0 in
      let remaining = succ_cnt in
      let free = ref [] and pending = ref [] in
      let alloc () =
        match !free with
        | sl :: tl ->
          free := tl;
          sl
        | [] ->
          let sl = !next in
          incr next;
          sl
      in
      let scheduled = ref 0 and fo = ref 0 and cur = ref 0 in
      while !scheduled < n_mine do
        if blen.(!cur) = 0 then begin
          let best = ref 0 in
          for b = 1 to n_spec_ops - 1 do
            if blen.(b) > blen.(!best) then best := b
          done;
          cur := !best
        end;
        (match buckets.(!cur) with
        | [] -> assert false
        | t :: tl ->
          buckets.(!cur) <- tl;
          blen.(!cur) <- blen.(!cur) - 1;
          (* slots freed by the previous instruction become allocatable
             only now, so multi-pass kernels never alias a fanin *)
          free := List.rev_append !pending !free;
          pending := [];
          let q = !scheduled in
          let i = mine.(t) in
          sp_offs.(q) <- !fo;
          sp_ops.(q) <- sop.(t);
          sp_tabs.(q) <- e.tabs.(i);
          for j = e.offs.(i) to e.offs.(i + 1) - 1 do
            sp_fan.(!fo) <- loc.(e.fan.(j));
            incr fo
          done;
          if loc.(first + i) < 0 then loc.(first + i) <- alloc ();
          sp_dst.(q) <- loc.(first + i);
          (* the first shard computing a sink owns it for plan reads *)
          if is_sink.(i) && shard_of.(first + i) < 0 then begin
            shard_of.(first + i) <- s;
            local_of.(first + i) <- loc.(first + i)
          end;
          for j = e.offs.(i) to e.offs.(i + 1) - 1 do
            let f = e.fan.(j) in
            if f >= first && f < e.n_slots then begin
              let p = midx.(f - first) in
              remaining.(p) <- remaining.(p) - 1;
              if remaining.(p) = 0 && not is_sink.(mine.(p)) then
                pending := loc.(f) :: !pending
            end
          done;
          incr scheduled;
          for x = succ_off.(t) to succ_off.(t + 1) - 1 do
            let u = succ.(x) in
            indeg.(u) <- indeg.(u) - 1;
            if indeg.(u) = 0 then push u
          done)
      done;
      sp_offs.(n_mine) <- !fo;
      {
        sp_ops;
        sp_dst;
        sp_offs;
        sp_fan;
        sp_tabs;
        sp_n_slots = !next;
        sp_copy_src = Array.map (fun (a, _, _) -> a) copies;
        sp_copy_local = Array.map (fun (_, b, _) -> b) copies;
        sp_copy_len = Array.map (fun (_, _, c) -> c) copies;
        sp_one_local = Array.of_list !ones;
        sp_zero_local = Array.of_list !zeros;
        sp_fanw = [||];
        sp_dstw = [||];
        sp_scaled_words = 0;
        sp_blk = [||];
        sp_blk_words = 0;
      }
    in
    let shards_a = Array.init k compile_shard in
    let is_one = Array.make (e.n_slots + 1) false in
    Array.iter (fun g -> is_one.(g) <- true) e.one_slots;
    let total = Array.fold_left ( + ) 0 counts in
    let direct =
      k = 1
      && e.n_srcs > 0
      && Array.length shards_a.(0).sp_copy_len = 1
      && shards_a.(0).sp_copy_src.(0) = 0
      && shards_a.(0).sp_copy_local.(0) = 0
      && shards_a.(0).sp_copy_len.(0) = e.n_srcs
    in
    Obs.Metrics.incr m_plan_compiles;
    {
      pl_eng = e;
      pl_shards = shards_a;
      pl_direct = direct;
      pl_shard_of = shard_of;
      pl_local_of = local_of;
      pl_is_one = is_one;
      pl_dup = float_of_int total /. float_of_int (max 1 !n_live);
      pl_live = !n_live;
      pl_src = [||];
      pl_words = 0;
    }

  let plan_shard_count p = Array.length p.pl_shards
  let plan_duplication p = p.pl_dup
  let plan_live_instructions p = p.pl_live
  let plan_generation p = p.pl_eng.eng_gen

  (* Fused single-pass kernels.  Bounds are established once per shard
     per call (buffer sized to sp_n_slots * nw and every slot index is
     < sp_n_slots by construction), so the inner loops use unchecked
     accesses — this is the difference between 3 and 7 memory touches
     per NAND2 per word. *)
  let run_shard sp (blk : int array) nw =
    let ops = sp.sp_ops
    and dstw = sp.sp_dstw
    and offs = sp.sp_offs
    and fanw = sp.sp_fanw
    and tabs = sp.sp_tabs in
    for i = 0 to Array.length ops - 1 do
      let lo = Array.unsafe_get offs i in
      let db = Array.unsafe_get dstw i in
      match Array.unsafe_get ops i with
      | 0 ->
        let a = Array.unsafe_get fanw lo in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k) (lnot (Array.unsafe_get blk (a + k)))
        done
      | 1 ->
        let a = Array.unsafe_get fanw lo in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k) (Array.unsafe_get blk (a + k))
        done
      | 2 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (Array.unsafe_get blk (a + k) land Array.unsafe_get blk (b + k))
        done
      | 3 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (Array.unsafe_get blk (a + k) lor Array.unsafe_get blk (b + k))
        done
      | 4 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (lnot
               (Array.unsafe_get blk (a + k) land Array.unsafe_get blk (b + k)))
        done
      | 5 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (lnot
               (Array.unsafe_get blk (a + k) lor Array.unsafe_get blk (b + k)))
        done
      | 6 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (Array.unsafe_get blk (a + k) lxor Array.unsafe_get blk (b + k))
        done
      | 7 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (lnot
               (Array.unsafe_get blk (a + k) lxor Array.unsafe_get blk (b + k)))
        done
      | 8 ->
        let s = Array.unsafe_get fanw lo
        and a = Array.unsafe_get fanw (lo + 1)
        and b = Array.unsafe_get fanw (lo + 2) in
        for k = 0 to nw - 1 do
          let sv = Array.unsafe_get blk (s + k) in
          Array.unsafe_set blk (db + k)
            (sv land Array.unsafe_get blk (b + k)
            lor (lnot sv land Array.unsafe_get blk (a + k)))
        done
      | 9 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1)
        and c = Array.unsafe_get fanw (lo + 2) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (Array.unsafe_get blk (a + k)
            land Array.unsafe_get blk (b + k)
            land Array.unsafe_get blk (c + k))
        done
      | 10 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1)
        and c = Array.unsafe_get fanw (lo + 2) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (Array.unsafe_get blk (a + k)
            lor Array.unsafe_get blk (b + k)
            lor Array.unsafe_get blk (c + k))
        done
      | 11 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1)
        and c = Array.unsafe_get fanw (lo + 2) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (lnot
               (Array.unsafe_get blk (a + k)
               land Array.unsafe_get blk (b + k)
               land Array.unsafe_get blk (c + k)))
        done
      | 12 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1)
        and c = Array.unsafe_get fanw (lo + 2) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (lnot
               (Array.unsafe_get blk (a + k)
               lor Array.unsafe_get blk (b + k)
               lor Array.unsafe_get blk (c + k)))
        done
      | 13 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1)
        and c = Array.unsafe_get fanw (lo + 2) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (Array.unsafe_get blk (a + k)
            lxor Array.unsafe_get blk (b + k)
            lxor Array.unsafe_get blk (c + k))
        done
      | 14 ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1)
        and c = Array.unsafe_get fanw (lo + 2) in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k)
            (lnot
               (Array.unsafe_get blk (a + k)
               lxor Array.unsafe_get blk (b + k)
               lxor Array.unsafe_get blk (c + k)))
        done
      | (23 | 25) as op ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1)
        and c = Array.unsafe_get fanw (lo + 2)
        and d = Array.unsafe_get fanw (lo + 3) in
        if op = 23 then
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k)
              (Array.unsafe_get blk (a + k)
              land Array.unsafe_get blk (b + k)
              land Array.unsafe_get blk (c + k)
              land Array.unsafe_get blk (d + k))
          done
        else
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k)
              (lnot
                 (Array.unsafe_get blk (a + k)
                 land Array.unsafe_get blk (b + k)
                 land Array.unsafe_get blk (c + k)
                 land Array.unsafe_get blk (d + k)))
          done
      | (24 | 26) as op ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1)
        and c = Array.unsafe_get fanw (lo + 2)
        and d = Array.unsafe_get fanw (lo + 3) in
        if op = 24 then
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k)
              (Array.unsafe_get blk (a + k)
              lor Array.unsafe_get blk (b + k)
              lor Array.unsafe_get blk (c + k)
              lor Array.unsafe_get blk (d + k))
          done
        else
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k)
              (lnot
                 (Array.unsafe_get blk (a + k)
                 lor Array.unsafe_get blk (b + k)
                 lor Array.unsafe_get blk (c + k)
                 lor Array.unsafe_get blk (d + k)))
          done
      | (27 | 28) as op ->
        let a = Array.unsafe_get fanw lo
        and b = Array.unsafe_get fanw (lo + 1)
        and c = Array.unsafe_get fanw (lo + 2)
        and d = Array.unsafe_get fanw (lo + 3) in
        if op = 27 then
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k)
              (Array.unsafe_get blk (a + k)
              lxor Array.unsafe_get blk (b + k)
              lxor Array.unsafe_get blk (c + k)
              lxor Array.unsafe_get blk (d + k))
          done
        else
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k)
              (lnot
                 (Array.unsafe_get blk (a + k)
                 lxor Array.unsafe_get blk (b + k)
                 lxor Array.unsafe_get blk (c + k)
                 lxor Array.unsafe_get blk (d + k)))
          done
      | (16 | 18) as op ->
        let hi = Array.unsafe_get offs (i + 1) in
        let a = Array.unsafe_get fanw lo in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k) (Array.unsafe_get blk (a + k))
        done;
        for j = lo + 1 to hi - 1 do
          let f = Array.unsafe_get fanw j in
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k)
              (Array.unsafe_get blk (db + k) land Array.unsafe_get blk (f + k))
          done
        done;
        if op = 18 then
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k) (lnot (Array.unsafe_get blk (db + k)))
          done
      | (17 | 19) as op ->
        let hi = Array.unsafe_get offs (i + 1) in
        let a = Array.unsafe_get fanw lo in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k) (Array.unsafe_get blk (a + k))
        done;
        for j = lo + 1 to hi - 1 do
          let f = Array.unsafe_get fanw j in
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k)
              (Array.unsafe_get blk (db + k) lor Array.unsafe_get blk (f + k))
          done
        done;
        if op = 19 then
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k) (lnot (Array.unsafe_get blk (db + k)))
          done
      | (20 | 21) as op ->
        let hi = Array.unsafe_get offs (i + 1) in
        let a = Array.unsafe_get fanw lo in
        for k = 0 to nw - 1 do
          Array.unsafe_set blk (db + k) (Array.unsafe_get blk (a + k))
        done;
        for j = lo + 1 to hi - 1 do
          let f = Array.unsafe_get fanw j in
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k)
              (Array.unsafe_get blk (db + k) lxor Array.unsafe_get blk (f + k))
          done
        done;
        if op = 21 then
          for k = 0 to nw - 1 do
            Array.unsafe_set blk (db + k) (lnot (Array.unsafe_get blk (db + k)))
          done
      | _ ->
        let hi = Array.unsafe_get offs (i + 1) in
        let tab = tabs.(i) in
        for k = 0 to nw - 1 do
          let r = ref 0 in
          for row = 0 to Array.length tab - 1 do
            if tab.(row) then begin
              let term = ref (-1) in
              for j = lo to hi - 1 do
                let w = blk.((Array.unsafe_get fanw j) + k) in
                term :=
                  !term
                  land (if row land (1 lsl (j - lo)) <> 0 then w else lnot w)
              done;
              r := !r lor !term
            end
          done;
          Array.unsafe_set blk (db + k) !r
        done
    done

  let shard_scale sp n_words =
    if sp.sp_scaled_words <> n_words then begin
      sp.sp_fanw <- Array.map (fun f -> f * n_words) sp.sp_fan;
      sp.sp_dstw <- Array.map (fun d -> d * n_words) sp.sp_dst;
      sp.sp_scaled_words <- n_words
    end;
    if Array.length sp.sp_blk < sp.sp_n_slots * n_words then
      sp.sp_blk <- Array.make (max 1 (sp.sp_n_slots * n_words)) 0;
    sp.sp_blk_words <- n_words;
    let blk = sp.sp_blk in
    Array.iter
      (fun l -> Array.fill blk (l * n_words) n_words 0)
      sp.sp_zero_local;
    Array.iter
      (fun l -> Array.fill blk (l * n_words) n_words (-1))
      sp.sp_one_local;
    blk

  let eval_block_sharded p ~n_words ~fill =
    if n_words < 1 then
      invalid_arg "Netlist.Engine.eval_block_sharded: n_words must be >= 1";
    let e = p.pl_eng in
    if Obs.Probe.active () then begin
      Obs.Metrics.incr m_plan_evals;
      Obs.Metrics.add m_engine_block_words n_words
    end;
    p.pl_words <- n_words;
    if p.pl_direct then begin
      (* sole shard wants every source at its global offset: [fill]
         writes the shard block directly, no staging copy *)
      let sp = p.pl_shards.(0) in
      let blk = shard_scale sp n_words in
      Array.fill blk 0 (e.n_srcs * n_words) 0;
      fill blk;
      run_shard sp blk n_words
    end
    else begin
      if Array.length p.pl_src < e.n_srcs * n_words then
        p.pl_src <- Array.make (max 1 (e.n_srcs * n_words)) 0
      else Array.fill p.pl_src 0 (e.n_srcs * n_words) 0;
      fill p.pl_src;
      let run_one sp =
        let blk = shard_scale sp n_words in
        let src = p.pl_src in
        for c = 0 to Array.length sp.sp_copy_len - 1 do
          Array.blit src
            (sp.sp_copy_src.(c) * n_words)
            blk
            (sp.sp_copy_local.(c) * n_words)
            (sp.sp_copy_len.(c) * n_words)
        done;
        run_shard sp blk n_words
      in
      if Array.length p.pl_shards > 1 && Parallel.default_domains () > 1 then
        ignore (Parallel.map run_one (Array.to_list p.pl_shards))
      else Array.iter run_one p.pl_shards
    end

  let plan_read p ~slot ~word =
    let e = p.pl_eng in
    if word < 0 || word >= p.pl_words then
      invalid_arg "Netlist.Engine.plan_read: word out of range";
    if slot < 0 || slot > e.n_slots then
      invalid_arg "Netlist.Engine.plan_read: bad slot";
    if slot < e.n_srcs then
      if p.pl_direct then p.pl_shards.(0).sp_blk.((slot * p.pl_words) + word)
      else p.pl_src.((slot * p.pl_words) + word)
    else
      match p.pl_shard_of.(slot) with
      | -1 ->
        if p.pl_is_one.(slot) then -1
        else if slot < e.n_slots - Array.length e.ops || slot = e.n_slots then 0
          (* constant-zero or the spare zero slot *)
        else
          invalid_arg
            "Netlist.Engine.plan_read: slot is not a sink (interior slots \
             are recycled)"
      | s ->
        p.pl_shards.(s).sp_blk.((p.pl_local_of.(slot) * p.pl_words) + word)

  (* Id-indexed compatibility paths: evaluate slot-dense into a fresh
     buffer (safe to call concurrently on a shared engine), then scatter
     to the node-id layout.  Dead nodes read false / 0. *)

  let eval e assignment =
    if Obs.Probe.active () then begin
      Obs.Metrics.incr m_engine_evals;
      Obs.Metrics.add m_engine_instr_exec (Array.length e.ops)
    end;
    let values = Array.make (e.n_slots + 1) false in
    Array.iteri (fun i id -> values.(i) <- assignment id) e.srcs;
    Array.iter (fun sl -> values.(sl) <- true) e.one_slots;
    run_bools e values;
    let out = Array.make e.eng_nodes false in
    for sl = 0 to e.n_slots - 1 do
      out.(e.id_of_slot.(sl)) <- values.(sl)
    done;
    out

  let eval_words e assignment =
    if Obs.Probe.active () then begin
      Obs.Metrics.incr m_engine_word_evals;
      Obs.Metrics.add m_engine_instr_exec (Array.length e.ops)
    end;
    let values = Array.make (e.n_slots + 1) 0 in
    Array.iteri (fun i id -> values.(i) <- assignment id) e.srcs;
    Array.iter (fun sl -> values.(sl) <- -1) e.one_slots;
    run_words e values;
    let out = Array.make e.eng_nodes 0 in
    for sl = 0 to e.n_slots - 1 do
      out.(e.id_of_slot.(sl)) <- values.(sl)
    done;
    out

  (* Branch-free SWAR popcount.  The familiar 64-bit masks do not fit in
     a 63-bit literal, so the wide ones are assembled by shifting; all
     the arithmetic is exact mod 2^63 because no step ever needs bit 63
     (byte-wise partial sums stay under 128).  On 32-bit hosts fall back
     to the loop. *)
  let m1 = (0x55555555 lsl 32) lor 0x55555555
  let m2 = (0x33333333 lsl 32) lor 0x33333333
  let m4 = 0x0F0F0F0F0F0F0F0F
  let h01 = 0x0101010101010101

  let popcount_loop w =
    let c = ref 0 and w = ref w in
    while !w <> 0 do
      w := !w land (!w - 1);
      incr c
    done;
    !c

  let popcount =
    if Sys.int_size <> 63 then popcount_loop
    else
      fun w ->
        let w = w - ((w lsr 1) land m1) in
        let w = (w land m2) + ((w lsr 2) land m2) in
        let w = (w + (w lsr 4)) land m4 in
        (w * h01) lsr 56

  (* [Random.State.bits] yields 30 bits per call; compose enough calls to
     fill every lane of a word. *)
  let random_word rng =
    let w = ref 0 and filled = ref 0 in
    while !filled < word_bits do
      let chunk = min 30 (word_bits - !filled) in
      let b = Random.State.bits rng land ((1 lsl chunk) - 1) in
      w := !w lor (b lsl !filled);
      filled := !filled + chunk
    done;
    !w
end

let eval_comb t assignment = Engine.eval (Engine.get t) assignment

let pp_kind ppf = function
  | Input -> Format.pp_print_string ppf "input"
  | Const b -> Format.fprintf ppf "const%d" (Bool.to_int b)
  | Gate fn -> Format.pp_print_string ppf (Cell.fn_name fn)
  | Lut tt -> Format.fprintf ppf "lut%d" (Array.length tt)
  | Ff -> Format.pp_print_string ppf "dff"
  | Dead -> Format.pp_print_string ppf "dead"

let pp_node ppf n =
  Format.fprintf ppf "%d:%s=%a(%s)" n.id n.name pp_kind n.kind
    (String.concat "," (Array.to_list (Array.map string_of_int n.fanins)))
