(** Time-frame expansion of sequential netlists.

    Unrolls a sequential circuit into [k] combinational frames: frame [i]'s
    flip-flop values are frame [i-1]'s D functions (frame 0 starts from
    the all-zero reset state or from free state inputs).  Inputs selected
    by [share] appear once and feed every frame — how key inputs stay
    common across time.

    This is the standard alternative to the scan-based threat model: an
    attacker without scan access can still SAT-attack the unrolled
    circuit against input/output {i sequences} of the working chip
    ({!Gklock_attacks.Seq_attack}).  It also generalizes the two-frame
    TCF construction of {!Gklock_attacks.Tcf}. *)

(** [frames net ~k ~share ~init] builds the unrolled combinational
    netlist.  Per-frame inputs and outputs are prefixed [f<i>_]; shared
    inputs keep their names; with [init = `Free] the initial state appears
    as inputs [s0_<ff>].
    @raise Invalid_argument if [k < 1]. *)
val frames :
  Netlist.t ->
  k:int ->
  share:(string -> bool) ->
  init:[ `Zero | `Free ] ->
  Netlist.t
