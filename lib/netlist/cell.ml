type gate_fn =
  | Not
  | Buf
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux

let min_arity = function
  | Not | Buf -> 1
  | Mux -> 3
  | And | Or | Nand | Nor | Xor | Xnor -> 2

let arity_ok fn n =
  match fn with
  | Not | Buf -> n = 1
  | Mux -> n = 3
  | And | Or | Nand | Nor | Xor | Xnor -> n >= 2

let eval fn ins =
  let n = Array.length ins in
  if not (arity_ok fn n) then
    invalid_arg
      (Printf.sprintf "Cell.eval: arity %d illegal for this function" n);
  let forall () = Array.for_all Fun.id ins
  and exists () = Array.exists Fun.id ins
  and parity () = Array.fold_left (fun acc b -> acc <> b) false ins in
  match fn with
  | Not -> not ins.(0)
  | Buf -> ins.(0)
  | And -> forall ()
  | Nand -> not (forall ())
  | Or -> exists ()
  | Nor -> not (exists ())
  | Xor -> parity ()
  | Xnor -> not (parity ())
  | Mux -> if ins.(0) then ins.(2) else ins.(1)

let fn_name = function
  | Not -> "NOT"
  | Buf -> "BUFF"
  | And -> "AND"
  | Or -> "OR"
  | Nand -> "NAND"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Mux -> "MUX"

let fn_of_name s =
  match String.uppercase_ascii s with
  | "NOT" | "INV" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | "AND" -> Some And
  | "OR" -> Some Or
  | "NAND" -> Some Nand
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "MUX" -> Some Mux
  | _ -> None

type t = {
  cell_name : string;
  fn : gate_fn;
  arity : int;
  area : float;
  delay_ps : int;
}

let pp ppf c =
  Format.fprintf ppf "%s(%s/%d, %.1fum2, %dps)" c.cell_name (fn_name c.fn)
    c.arity c.area c.delay_ps
