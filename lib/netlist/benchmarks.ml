type spec = {
  bname : string;
  cells : int;
  ff_count : int;
  paper_avail_ff : int;
  paper_avail_ff4 : int;
  config : Generator.config;
  clk_margin : float;
}

let mk bname ~cells ~ffs ~avail ~avail4 ~pis ~pos ~depth ~bias ~margin ~seed =
  {
    bname;
    cells;
    ff_count = ffs;
    paper_avail_ff = avail;
    paper_avail_ff4 = avail4;
    config =
      {
        Generator.gen_name = bname;
        seed;
        n_pi = pis;
        n_po = pos;
        n_ff = ffs;
        n_gates = cells - ffs;
        depth;
        ff_depth_bias = bias;
      };
    clk_margin = margin;
  }

(* Cell/FF counts are the paper's Table I (post-synthesis); PI/PO counts
   are the ISCAS'89 interface sizes; depth/bias/margin are tuned so the
   feasible-FF coverage tracks the paper's column 5. *)
let specs =
  [
    mk "s1238" ~cells:341 ~ffs:18 ~avail:16 ~avail4:4 ~pis:14 ~pos:14
      ~depth:34 ~bias:0.30 ~margin:1.14 ~seed:1238;
    mk "s5378" ~cells:775 ~ffs:163 ~avail:104 ~avail4:89 ~pis:35 ~pos:49
      ~depth:42 ~bias:0.42 ~margin:1.15 ~seed:5378;
    mk "s9234" ~cells:613 ~ffs:145 ~avail:74 ~avail4:59 ~pis:36 ~pos:39
      ~depth:50 ~bias:0.58 ~margin:1.02 ~seed:9234;
    mk "s13207" ~cells:901 ~ffs:330 ~avail:185 ~avail4:36 ~pis:62 ~pos:152
      ~depth:48 ~bias:0.45 ~margin:1.065 ~seed:13207;
    mk "s15850" ~cells:447 ~ffs:134 ~avail:58 ~avail4:51 ~pis:77 ~pos:150
      ~depth:55 ~bias:0.55 ~margin:1.07 ~seed:15850;
    mk "s38417" ~cells:5397 ~ffs:1564 ~avail:1037 ~avail4:920 ~pis:28
      ~pos:106 ~depth:50 ~bias:0.40 ~margin:1.015 ~seed:38417;
    mk "s38584" ~cells:5304 ~ffs:1168 ~avail:924 ~avail4:105 ~pis:38
      ~pos:304 ~depth:40 ~bias:0.25 ~margin:1.07 ~seed:38584;
  ]

let find_spec name = List.find_opt (fun s -> s.bname = name) specs

let load spec = Generator.generate spec.config

let by_name name =
  match find_spec name with
  | Some s -> load s
  | None -> raise Not_found

let s27_source =
  {|# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
|}

let s27 () = Bench_format.parse ~name:"s27" s27_source

let tiny () =
  Generator.generate
    {
      Generator.gen_name = "tiny";
      seed = 42;
      n_pi = 6;
      n_po = 4;
      n_ff = 8;
      n_gates = 32;
      depth = 6;
      ff_depth_bias = 0.2;
    }
