(** Gate-level sequential netlists.

    A netlist is a mutable graph of nodes identified by dense integer ids.
    Node kinds are primary inputs, constants, combinational gates, withheld
    LUTs (Sec. V-D of the paper), and D flip-flops.  A flip-flop node's
    single fanin is its D pin and the node's own value is its Q output; all
    flip-flops share one implicit clock.  Primary outputs are named pointers
    to driver nodes.

    The locking transforms of {!Gklock_locking} work by splicing nodes into
    fanin arrays ({!set_fanin}) and by redirecting outputs; they never need
    to delete nodes.  Optimization passes that do remove logic
    ({!Gklock_flow.Synth}) mark nodes [Dead] and then {!compact}. *)

type kind =
  | Input
  | Const of bool
  | Gate of Cell.gate_fn
  | Lut of bool array
      (** withheld lookup table; [Lut tt] with [n] fanins has
          [Array.length tt = 1 lsl n], indexed with fanin 0 as the least
          significant bit *)
  | Ff  (** D flip-flop: fanins = [[| d |]], value is Q *)
  | Dead  (** removed by an optimization pass; never referenced *)

type node = private {
  id : int;
  mutable name : string;
  mutable kind : kind;
  mutable fanins : int array;
  mutable cell : Cell.t option;
}

type t

(** {1 Construction} *)

(** [create name] is an empty netlist called [name]. *)
val create : string -> t

val name : t -> string

(** [add_input t n] adds primary input [n].
    @raise Invalid_argument if the name is taken. *)
val add_input : t -> string -> int

(** [add_const t b] adds (or reuses) the constant-[b] node. *)
val add_const : t -> bool -> int

(** [add_gate t ?name ?cell fn fanins] adds a combinational gate.  When
    [cell] is omitted the default library cell for [fn] and the arity is
    bound.  @raise Invalid_argument on an illegal arity or unknown fanin. *)
val add_gate : t -> ?name:string -> ?cell:Cell.t -> Cell.gate_fn -> int array -> int

(** [add_lut t ?name ~truth fanins] adds a withheld LUT node. *)
val add_lut : t -> ?name:string -> truth:bool array -> int array -> int

(** [add_ff t ?name d] adds a D flip-flop fed by node [d]. *)
val add_ff : t -> ?name:string -> int -> int

(** [add_output t n driver] declares primary output [n] driven by [driver]. *)
val add_output : t -> string -> int -> unit

(** {1 Access} *)

val node : t -> int -> node

(** Number of node slots, including dead ones; valid ids are
    [0 .. num_nodes - 1]. *)
val num_nodes : t -> int

(** [find t n] is the id of the node named [n]. *)
val find : t -> string -> int option

val outputs : t -> (string * int) list

(** [set_output_driver t po_name driver] redirects a primary output. *)
val set_output_driver : t -> string -> int -> unit

(** [remove_output t po_name] deletes a primary-output declaration (the
    driver node itself is untouched).  @raise Invalid_argument if no such
    output exists. *)
val remove_output : t -> string -> unit

val inputs : t -> int list
(** Primary-input ids in declaration order. *)

val ffs : t -> int list
(** Flip-flop ids in declaration order. *)

val is_comb : node -> bool
(** True for [Gate] and [Lut] nodes. *)

(** {1 Mutation} *)

(** [set_fanin t ~node_id ~pin ~driver] rewires one fanin pin. *)
val set_fanin : t -> node_id:int -> pin:int -> driver:int -> unit

(** [widen_gate t ~node_id ~extra_driver] appends one fanin to a variadic
    gate ([And]/[Or]/[Nand]/[Nor]/[Xor]/[Xnor]) and rebinds its cell for
    the new arity.  @raise Invalid_argument on fixed-arity kinds. *)
val widen_gate : t -> node_id:int -> extra_driver:int -> unit

(** [set_gate_fn t ~node_id fn] replaces a [Gate] node's function in place
    (same fanins) and rebinds its default library cell — the "swap cell
    type" mutation of the differential fuzzer.  @raise Invalid_argument on
    non-gates or an illegal arity for [fn]. *)
val set_gate_fn : t -> node_id:int -> Cell.gate_fn -> unit

(** [rename t id n] renames a node.  @raise Invalid_argument if taken. *)
val rename : t -> int -> string -> unit

(** [kill t id] marks a node [Dead].  The caller must have removed every
    reference first ({!fanout_table} helps). *)
val kill : t -> int -> unit

(** [replace_uses t ~old_id ~new_id] redirects every fanin pin and output
    that referenced [old_id] to [new_id]. *)
val replace_uses : t -> old_id:int -> new_id:int -> unit

(** {1 Whole-netlist operations} *)

(** Deep copy (ids preserved). *)
val copy : t -> t

(** [compact t] is a fresh netlist without [Dead] slots.  Returns the new
    netlist and the old-id → new-id mapping ([-1] for dead nodes). *)
val compact : t -> t * int array

(** [fanout_table t] maps each id to the list of (consumer id, pin)
    pairs; primary outputs are not included.  The array is memoized inside
    the netlist (see {!generation}) and shared between callers — treat it
    as read-only. *)
val fanout_table : t -> (int * int) list array

(** {1 Memoized analyses}

    Structural analyses ({!comb_topo_order}, {!fanout_table}, {!levels})
    and the compiled {!Engine} are cached inside the netlist record.  Every
    mutation (adding nodes or outputs, rewiring fanins or output drivers,
    renaming, killing) bumps a generation counter which lazily invalidates
    all caches, so repeated queries between mutations cost one array
    read. *)

(** [generation t] is the mutation counter; it increases on every
    structural change.  Snapshot it to detect staleness of derived data. *)
val generation : t -> int

(** [levels t] is the combinational depth per node id: 0 for sources
    (inputs, constants, flip-flop Q pins), [1 + max fanin level] for
    gates/LUTs, and [-1] for dead nodes.  Memoized; treat as read-only. *)
val levels : t -> int array

(** [validate t] checks arities, fanin references, LUT sizes, and
    combinational acyclicity.  @raise Failure with a diagnostic if broken. *)
val validate : t -> unit

(** [comb_topo_order t] lists every combinational node ([Gate]/[Lut]) such
    that each appears after all of its combinational fanins.  Sources
    (inputs, constants, flip-flop Q outputs) are omitted.  Sequential loops
    through flip-flops are legal; a purely combinational cycle raises
    [Failure].  Memoized. *)
val comb_topo_order : t -> int list

(** Same order as {!comb_topo_order}, as a memoized array — the form the
    inner evaluation loops want.  Treat as read-only. *)
val comb_topo_array : t -> int array

(** [eval_comb t assignment] evaluates every node given Boolean values for
    inputs, constants and flip-flop outputs: [assignment id] must be
    provided for [Input] and [Ff] nodes, and is the node's value.  The
    result array is indexed by id (dead nodes map to [false]).  Used as the
    zero-delay functional semantics and as the SAT-attack oracle.
    Implemented as the scalar path of {!Engine}, so the per-call cost is
    one pass over the compiled instruction stream. *)
val eval_comb : t -> (int -> bool) -> bool array

(** {1 Bit-parallel evaluation engine}

    The engine compiles a netlist once into a flat instruction stream
    (cached topological order, pre-resolved fanin offsets, LUT tables) and
    evaluates it either for a single Boolean pattern ({!Engine.eval}, the
    scalar fast path behind {!eval_comb}) or for {!Engine.word_bits}
    stimulus patterns at once ({!Engine.eval_words}), one pattern per bit
    of a native [int].  Compilation is memoized behind the netlist's
    {!generation} counter: {!Engine.get} recompiles only after a
    mutation.

    {2 Slot-dense layout (engine v2)}

    Values live in dense {e slots} ordered like the instruction stream,
    not in node-id order: sources take slots [0 .. n_srcs - 1] in
    declaration order (so source [i] of {!Engine.sources} is slot [i]),
    constants the next few, and instruction [i] writes the next slot
    after those — the hot loop writes memory sequentially and every
    fanin read is a lower slot.  {!Engine.eval} / {!Engine.eval_words}
    scatter the slots back to a node-id-indexed array for compatibility;
    the [_into] variants and {!Engine.eval_block} expose the slot-dense
    buffers directly (translate with {!Engine.slot_of_id}) and reuse
    {!Engine.scratch} buffers so steady-state evaluation allocates
    nothing. *)
module Engine : sig
  type engine

  (** Reusable slot-indexed evaluation buffers tied to one engine.  The
      engine lazily owns one (used when [?scratch] is omitted); create
      independent scratches with {!create_scratch} to evaluate the same
      engine from several domains at once.  Opaque: only the engine
      writes into it. *)
  type scratch

  (** Lanes per word = [Sys.int_size] (63 on 64-bit platforms). *)
  val word_bits : int

  (** [get t] is the compiled engine for [t], memoized until the next
      mutation of [t]. *)
  val get : t -> engine

  (** The netlist generation the engine was compiled at. *)
  val generation : engine -> int

  (** Ids of the [Input] and [Ff] nodes, in declaration order — exactly the
      ids the assignment functions below are consulted for.  Source [i]
      occupies slot [i]. *)
  val sources : engine -> int array

  (** Number of live value slots (sources + constants + instructions).
      Slot-indexed result buffers have this many meaningful entries. *)
  val n_slots : engine -> int

  (** [slot_of_id e] maps node id to slot ([-1] for dead nodes).
      Memoized inside the engine — treat as read-only. *)
  val slot_of_id : engine -> int array

  (** A fresh scratch for [e] — required when several domains evaluate
      the same engine concurrently (the engine-owned default scratch is
      not domain-safe).
      @raise Invalid_argument when passed to a different engine. *)
  val create_scratch : engine -> scratch

  (** [eval e assignment] is {!eval_comb} on the compiled form.  The
      result is node-id-indexed (dead nodes read [false]) and freshly
      allocated — safe on a shared engine. *)
  val eval : engine -> (int -> bool) -> bool array

  (** [eval_words e assignment] evaluates {!word_bits} patterns at once:
      [assignment id] packs one stimulus bit per lane for each source node,
      and the result word per node id packs the node's value per lane.
      Constants broadcast to every lane; dead nodes are 0. *)
  val eval_words : engine -> (int -> int) -> int array

  (** [eval_into ?scratch e assignment] is {!eval} but into reused
      buffers: the result is {e slot}-indexed (see {!slot_of_id}) and is
      the scratch's own buffer — valid until the next evaluation on that
      scratch. *)
  val eval_into : ?scratch:scratch -> engine -> (int -> bool) -> bool array

  (** Slot-indexed, allocation-free {!eval_words}; same aliasing rule as
      {!eval_into}. *)
  val eval_words_into : ?scratch:scratch -> engine -> (int -> int) -> int array

  (** [eval_block ?scratch e ~n_words ~fill] evaluates
      [n_words * word_bits] stimulus lanes in one pass over the
      instruction stream.  The block buffer packs [n_words] consecutive
      words per slot: word [k] of slot [s] lives at [s * n_words + k].
      [fill buf] must write the stimulus words for each source [i] of
      {!sources} at [i * n_words + k]; the source region is pre-zeroed,
      so unfilled words evaluate with all-false inputs.  Returns the
      scratch's block buffer (aliasing rule as {!eval_into}). *)
  val eval_block :
    ?scratch:scratch -> engine -> n_words:int -> fill:(int array -> unit) ->
    int array

  (** {2 Domain-sharded block evaluation}

      A {!plan} recompiles the instruction stream into K {e shards} —
      one per partition of the sinks (primary-output drivers and
      flip-flop D pins) into fanout cones — with fused single-pass
      kernels (a NAND2 is one combined read-read-write loop instead of
      copy + combine + invert) over dense per-shard slot spaces.
      Shards evaluate independently: across the {!Parallel} domain pool
      when more than one domain is available, and faster than
      {!eval_block} even on one domain because of the fused kernels and
      because instructions unreachable from any sink are skipped. *)
  type plan

  (** [plan ?shards ?dup_budget t] compiles a shard plan for [t]'s
      engine.  [shards] forces the shard count (clamped to the number of
      sinks); by default it starts at {!Parallel.default_domains} and is
      halved while the cone-duplication factor (total shard instructions
      / live instructions) exceeds [dup_budget] (default [1.25]) —
      overlapping cones re-evaluate shared logic in every shard, so a
      dense circuit degenerates to one shard rather than pay for
      duplicated work.  @raise Invalid_argument if [shards < 1]. *)
  val plan : ?shards:int -> ?dup_budget:float -> t -> plan

  val plan_shard_count : plan -> int

  (** Total shard instructions / live instructions, >= 1. *)
  val plan_duplication : plan -> float

  (** Instructions reachable from at least one sink. *)
  val plan_live_instructions : plan -> int

  (** The netlist generation the underlying engine was compiled at. *)
  val plan_generation : plan -> int

  (** [eval_block_sharded p ~n_words ~fill] evaluates
      [n_words * word_bits] lanes across the plan's shards.  [fill]
      writes the stimulus exactly as for {!eval_block} (source [i]'s
      word [k] at [i * n_words + k]; the region is pre-zeroed).  Read
      results back with {!plan_read}.  Buffers are owned by the plan
      and reused across calls — a plan must not be evaluated from two
      domains at once (shard-internal parallelism is the plan's own
      job). *)
  val eval_block_sharded :
    plan -> n_words:int -> fill:(int array -> unit) -> unit

  (** [plan_read p ~slot ~word] is word [word] of slot [slot] (the
      engine slot space, see {!slot_of_id}) after the last
      {!eval_block_sharded}.  Sources, constants and sink slots
      (primary-output drivers and flip-flop D pins) are readable.
      @raise Invalid_argument for an interior combinational slot —
      shards recycle interior slots as values die, so only sinks
      survive a run. *)
  val plan_read : plan -> slot:int -> word:int -> int

  (** Number of set bits in a word (lanes at 1).  Branch-free SWAR. *)
  val popcount : int -> int

  (** [random_word rng] draws {!word_bits} uniform stimulus bits. *)
  val random_word : Random.State.t -> int
end

val pp_kind : Format.formatter -> kind -> unit
val pp_node : Format.formatter -> node -> unit
