exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

type def =
  | Def_gate of string * string list  (* function name, argument names *)
  | Def_lut of bool array * string list

type parsed = {
  mutable p_inputs : (string * int) list;  (* name, line *)
  mutable p_outputs : (string * int) list;
  defs : (string, int * def) Hashtbl.t;    (* target -> line, def *)
  mutable order : string list;             (* targets in file order *)
}

let strip s = String.trim s

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '[' || c = ']' || c = '$' || c = '/'

let check_ident line s =
  if s = "" then fail line "empty identifier";
  String.iter
    (fun c -> if not (is_ident_char c) then fail line "bad character %C in identifier %S" c s)
    s;
  s

(* "NAND(a, b)" -> ("NAND", ["a"; "b"]) *)
let split_call line s =
  match String.index_opt s '(' with
  | None -> fail line "expected '(' in %S" s
  | Some i ->
    let head = strip (String.sub s 0 i) in
    if not (String.length s > 0 && s.[String.length s - 1] = ')') then
      fail line "expected ')' at end of %S" s;
    let args_str = String.sub s (i + 1) (String.length s - i - 2) in
    let args =
      if strip args_str = "" then []
      else List.map strip (String.split_on_char ',' args_str)
    in
    (head, args)

let parse_lut_truth line head =
  (* "LUT 0x8" style: hex truth table, LSB = all-zero input row *)
  match String.split_on_char ' ' head |> List.filter (fun s -> s <> "") with
  | [ _lut; hex ] ->
    let hex =
      if String.length hex > 2 && String.sub hex 0 2 = "0x" then
        String.sub hex 2 (String.length hex - 2)
      else hex
    in
    let bits = 4 * String.length hex in
    let value =
      try int_of_string ("0x" ^ hex)
      with Failure _ -> fail line "bad LUT truth table %S" hex
    in
    Array.init bits (fun i -> value land (1 lsl i) <> 0)
  | _ -> fail line "malformed LUT definition %S" head

let parse_lines text =
  let p =
    { p_inputs = []; p_outputs = []; defs = Hashtbl.create 64; order = [] }
  in
  let handle lineno raw =
    let line = strip raw in
    let line =
      match String.index_opt line '#' with
      | Some i -> strip (String.sub line 0 i)
      | None -> line
    in
    if line = "" then ()
    else
      let upper = String.uppercase_ascii line in
      if String.length upper >= 6 && String.sub upper 0 6 = "INPUT(" then begin
        let _, args = split_call lineno line in
        match args with
        | [ name ] -> p.p_inputs <- (check_ident lineno name, lineno) :: p.p_inputs
        | _ -> fail lineno "INPUT takes one name"
      end
      else if String.length upper >= 7 && String.sub upper 0 7 = "OUTPUT(" then begin
        let _, args = split_call lineno line in
        match args with
        | [ name ] -> p.p_outputs <- (check_ident lineno name, lineno) :: p.p_outputs
        | _ -> fail lineno "OUTPUT takes one name"
      end
      else
        match String.index_opt line '=' with
        | None -> fail lineno "cannot parse line %S" line
        | Some i ->
          let target = check_ident lineno (strip (String.sub line 0 i)) in
          let rhs = strip (String.sub line (i + 1) (String.length line - i - 1)) in
          let head, args = split_call lineno rhs in
          let def =
            if String.length head >= 3 && String.uppercase_ascii (String.sub head 0 3) = "LUT"
            then Def_lut (parse_lut_truth lineno head, args)
            else Def_gate (String.uppercase_ascii head, args)
          in
          if Hashtbl.mem p.defs target then fail lineno "duplicate definition of %S" target;
          Hashtbl.replace p.defs target (lineno, def);
          p.order <- target :: p.order
  in
  List.iteri (fun i l -> handle (i + 1) l) (String.split_on_char '\n' text);
  p.p_inputs <- List.rev p.p_inputs;
  p.p_outputs <- List.rev p.p_outputs;
  p.order <- List.rev p.order;
  p

let build ~name p =
  let net = Netlist.create name in
  let ids = Hashtbl.create 64 in
  List.iter
    (fun (n, line) ->
      if Hashtbl.mem ids n then fail line "duplicate input %S" n;
      Hashtbl.replace ids n (Netlist.add_input net n))
    p.p_inputs;
  (* Flip-flops first, with a placeholder D, so through-FF cycles resolve. *)
  let ff_patches = ref [] in
  List.iter
    (fun target ->
      match Hashtbl.find p.defs target with
      | line, Def_gate ("DFF", [ d ]) ->
        if Hashtbl.mem ids target then fail line "name %S already used" target;
        let placeholder = Netlist.add_const net false in
        let id = Netlist.add_ff net ~name:target placeholder in
        Hashtbl.replace ids target id;
        ff_patches := (id, d, line) :: !ff_patches
      | line, Def_gate ("DFF", _) -> fail line "DFF takes one argument"
      | _ -> ())
    p.order;
  let rec resolve ?(stack = []) line name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
      if List.mem name stack then
        fail line "combinational cycle through %S" name;
      (match Hashtbl.find_opt p.defs name with
      | None -> fail line "undefined signal %S" name
      | Some (dline, def) ->
        let stack = name :: stack in
        let id =
          match def with
          | Def_gate ("DFF", _) -> assert false (* handled above *)
          | Def_gate (("CONST0" | "GND"), []) -> Netlist.add_const net false
          | Def_gate (("CONST1" | "VCC"), []) -> Netlist.add_const net true
          | Def_gate (fn_name, args) ->
            (match Cell.fn_of_name fn_name with
            | None -> fail dline "unknown gate type %S" fn_name
            | Some fn ->
              let fanins =
                Array.of_list (List.map (resolve ~stack dline) args)
              in
              (try Netlist.add_gate net ~name fn fanins
               with Invalid_argument m -> fail dline "%s" m))
          | Def_lut (truth, args) ->
            let fanins = Array.of_list (List.map (resolve ~stack dline) args) in
            (* The hex form carries whole nibbles (and may drop leading
               zeros), so the decoded bit count rarely equals 2^arity:
               pad the high rows with zeros, or drop them when unset. *)
            let want = 1 lsl Array.length fanins in
            let have = Array.length truth in
            let truth =
              if have = want then truth
              else if have < want then
                Array.init want (fun i -> i < have && truth.(i))
              else begin
                for i = want to have - 1 do
                  if truth.(i) then
                    fail dline
                      "LUT truth table sets row %d but only %d inputs" i
                      (Array.length fanins)
                done;
                Array.sub truth 0 want
              end
            in
            (try Netlist.add_lut net ~name ~truth fanins
             with Invalid_argument m -> fail dline "%s" m)
        in
        (* CONST nodes may be shared and keep their canonical name; alias
           the target name when it is still free. *)
        if Netlist.find net name = None then Netlist.rename net id name;
        Hashtbl.replace ids name id;
        id)
  in
  List.iter (fun target -> ignore (resolve 0 target)) p.order;
  List.iter
    (fun (ff_id, d_name, line) ->
      Netlist.set_fanin net ~node_id:ff_id ~pin:0 ~driver:(resolve line d_name))
    !ff_patches;
  List.iter
    (fun (po, line) ->
      match Hashtbl.find_opt ids po with
      | Some id -> Netlist.add_output net po id
      | None -> fail line "output %S is never defined" po)
    p.p_outputs;
  Netlist.validate net;
  net

let parse ~name text = build ~name (parse_lines text)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let base = Filename.remove_extension (Filename.basename path) in
  parse ~name:base text

let print net =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "# %s\n" (Netlist.name net);
  List.iter
    (fun id -> Printf.bprintf buf "INPUT(%s)\n" (Netlist.node net id).Netlist.name)
    (Netlist.inputs net);
  List.iter (fun (po, _) -> Printf.bprintf buf "OUTPUT(%s)\n" po) (Netlist.outputs net);
  let node_name id = (Netlist.node net id).Netlist.name in
  (* .bench outputs refer to defined signals; alias a PO whose name is not
     a node name with a buffer. *)
  let po_aliases =
    List.filter (fun (po, d) -> node_name d <> po) (Netlist.outputs net)
  in
  List.iter
    (fun (po, d) -> Printf.bprintf buf "%s = BUFF(%s)\n" po (node_name d))
    po_aliases;
  let emit_gate id =
    let n = Netlist.node net id in
    let args =
      String.concat ", " (Array.to_list (Array.map node_name n.Netlist.fanins))
    in
    match n.Netlist.kind with
    | Netlist.Gate fn ->
      Printf.bprintf buf "%s = %s(%s)\n" n.Netlist.name (Cell.fn_name fn) args
    | Netlist.Lut truth ->
      let hex = Buffer.create 8 in
      let nyb = (Array.length truth + 3) / 4 in
      for i = nyb - 1 downto 0 do
        let v = ref 0 in
        for b = 0 to 3 do
          let idx = (4 * i) + b in
          if idx < Array.length truth && truth.(idx) then v := !v lor (1 lsl b)
        done;
        Buffer.add_string hex (Printf.sprintf "%x" !v)
      done;
      Printf.bprintf buf "%s = LUT 0x%s (%s)\n" n.Netlist.name (Buffer.contents hex) args
    | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead -> ()
  in
  (* Constants that are actually used *)
  for id = 0 to Netlist.num_nodes net - 1 do
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Const b ->
      Printf.bprintf buf "%s = CONST%d()\n" (node_name id) (Bool.to_int b)
    | _ -> ()
  done;
  List.iter
    (fun ff ->
      let n = Netlist.node net ff in
      Printf.bprintf buf "%s = DFF(%s)\n" n.Netlist.name (node_name n.Netlist.fanins.(0)))
    (Netlist.ffs net);
  List.iter emit_gate (Netlist.comb_topo_order net);
  Buffer.contents buf

let write_file net path =
  let oc = open_out path in
  output_string oc (print net);
  close_out oc
