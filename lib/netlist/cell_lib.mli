(** A synthetic 0.13 µm-class standard-cell library.

    The paper maps designs onto the TSMC 0.13 µm CL013G 1.2 V SAGE-X library,
    which we cannot redistribute.  This module provides a stand-in with the
    same {i structure}: a family of combinational cells with areas and delays
    in realistic ratios for that node, a D flip-flop with setup/hold/clk-to-Q
    parameters, and a family of delay buffers ("DLY" cells) from which
    {!Gklock_flow.Delay_synth} composes the delay elements of GKs and
    KEYGENs.  Absolute numbers differ from TSMC's; every experiment in the
    paper depends only on ratios (overhead percentages) or on slack
    structure, both of which are preserved.  See DESIGN.md §2. *)

(** All combinational cells, smallest-drive first within a function. *)
val cells : Cell.t list

(** [bind fn arity] picks the library cell implementing [fn] with [arity]
    inputs.  For arities above the widest stocked cell the result is a
    synthesized estimate (area and delay extrapolated), mirroring how a
    technology mapper would decompose wide gates.
    @raise Invalid_argument if [arity] is illegal for [fn]. *)
val bind : Cell.gate_fn -> int -> Cell.t

(** [find name] looks a cell up by library name. *)
val find : string -> Cell.t option

(** The D flip-flop cell: area and clock-to-Q delay are in [Cell.t];
    [dff_setup_ps]/[dff_hold_ps] complete its timing model. *)
val dff : Cell.t

val dff_setup_ps : int
val dff_hold_ps : int
val dff_clk2q_ps : int

(** Area charged for a withheld LUT of [k] inputs (Sec. V-D): an SRAM-based
    table grows as 2^k. *)
val lut_area : int -> float

(** Delay charged for a withheld LUT of [k] inputs. *)
val lut_delay_ps : int -> int

(** Cells usable as pure delay elements ([Buf]/[Not] function), largest
    delay first.  [`Standard] is the default mix the paper's flow would find
    in a commercial library (X1 buffer/inverter plus DLY cells);
    [`Buffers_only] restricts to plain X1 buffers/inverters (the pessimal
    composition); [`Custom] models the paper's future-work "customized delay
    elements" as single cells of arbitrary delay. *)
val delay_cells : [ `Standard | `Buffers_only ] -> Cell.t list

(** A one-off customized delay cell of exactly [ps] picoseconds, with area
    interpolated from the DLY family.  Models the paper's future-work
    scenario. *)
val custom_delay_cell : int -> Cell.t
