

type config = {
  gen_name : string;
  seed : int;
  n_pi : int;
  n_po : int;
  n_ff : int;
  n_gates : int;
  depth : int;
  ff_depth_bias : float;
}

(* Gate-function mix roughly matching a NAND-heavy mapped design. *)
let pick_fn rng =
  let r = Random.State.int rng 100 in
  if r < 28 then (Cell.Nand, 2)
  else if r < 42 then (Cell.Nor, 2)
  else if r < 52 then (Cell.And, 2)
  else if r < 60 then (Cell.Or, 2)
  else if r < 66 then (Cell.Xor, 2)
  else if r < 70 then (Cell.Xnor, 2)
  else if r < 84 then (Cell.Not, 1)
  else if r < 87 then (Cell.Buf, 1)
  else if r < 93 then (Cell.Nand, 3)
  else if r < 97 then (Cell.Nor, 3)
  else (Cell.And, 4)

(* Triangular-ish stage distribution: mapped circuits have more gates near
   the inputs than near the deep end. *)
let pick_stage rng depth =
  let a = Random.State.int rng depth and b = Random.State.int rng depth in
  1 + min a b

let generate cfg =
  if cfg.n_pi < 1 || cfg.n_gates < 1 || cfg.depth < 1 then
    invalid_arg "Generator.generate: need at least one input, gate and stage";
  let rng = Random.State.make [| cfg.seed; 0x6b67 |] in
  let net = Netlist.create cfg.gen_name in
  let sources = Vec.create () in
  for i = 0 to cfg.n_pi - 1 do
    Vec.push sources (Netlist.add_input net (Printf.sprintf "pi%d" i))
  done;
  (* Flip-flops are created up front with a placeholder D (patched below) so
     their Q outputs can feed the combinational cloud. *)
  let placeholder = if cfg.n_ff > 0 then Netlist.add_const net false else -1 in
  let ff_ids =
    Array.init cfg.n_ff (fun i ->
        let id = Netlist.add_ff net ~name:(Printf.sprintf "ff%d" i) placeholder in
        Vec.push sources id;
        id)
  in
  (* by_stage.(0) = sources; by_stage.(s) = gates at stage s *)
  let by_stage = Array.make (cfg.depth + 1) [] in
  by_stage.(0) <- Vec.to_list sources;
  let stage_counts = Array.make (cfg.depth + 1) 0 in
  stage_counts.(0) <- Vec.length sources;
  let pick_from_below rng stage =
    (* Prefer the immediately shallower stage so the depth target is
       actually reached; fall back to any shallower node. *)
    let s =
      if stage > 1 && Random.State.int rng 100 < 82 then stage - 1
      else Random.State.int rng stage
    in
    let s = if stage_counts.(s) = 0 then 0 else s in
    let bucket = by_stage.(s) in
    List.nth bucket (Random.State.int rng (List.length bucket))
  in
  let unused_sources = Queue.create () in
  Vec.iter (fun id -> Queue.push id unused_sources) sources;
  (* Draw every gate's stage up front and create shallow stages first, so
     a deep gate always finds its stage-(s-1) bucket populated and the
     depth target is actually realized. *)
  let plan =
    Array.init cfg.n_gates (fun _ ->
        let fn, arity = pick_fn rng in
        (pick_stage rng cfg.depth, fn, arity))
  in
  Array.sort (fun (a, _, _) (b, _, _) -> compare a b) plan;
  for g = 0 to cfg.n_gates - 1 do
    let stage, fn, arity = plan.(g) in
    let fanins =
      Array.init arity (fun pin ->
          (* Drain the pool of not-yet-used sources so no input or
             flip-flop output dangles; multi-input gates keep their other
             pins on the stage structure so depth is unaffected. *)
          if pin = 0 && arity > 1 && not (Queue.is_empty unused_sources) then
            Queue.pop unused_sources
          else pick_from_below rng stage)
    in
    (* Binary XOR/XNOR and wide gates must not repeat a fanin or the gate
       collapses to a constant/buffer; retry the duplicates. *)
    let rec dedup tries =
      let seen = Hashtbl.create 4 in
      let dup = ref false in
      Array.iteri
        (fun pin f ->
          if Hashtbl.mem seen f then begin
            dup := true;
            if tries < 8 then fanins.(pin) <- pick_from_below rng stage
          end
          else Hashtbl.replace seen f ())
        fanins;
      if !dup && tries < 8 then dedup (tries + 1)
    in
    if arity > 1 then dedup 0;
    let id = Netlist.add_gate net ~name:(Printf.sprintf "g%d" g) fn fanins in
    by_stage.(stage) <- id :: by_stage.(stage);
    stage_counts.(stage) <- stage_counts.(stage) + 1
  done;
  (* Sample a node at a stage drawn from [lo..hi] (clamped to non-empty). *)
  let sample_at_depth frac =
    let target = int_of_float (frac *. float_of_int cfg.depth) in
    let target = max 1 (min cfg.depth target) in
    let rec find s step =
      if s >= 1 && s <= cfg.depth && stage_counts.(s) > 0 then s
      else if step > cfg.depth then 0
      else
        let next = if step mod 2 = 0 then s + step else s - step in
        find next (step + 1)
    in
    let s = find target 1 in
    let bucket = by_stage.(s) in
    List.nth bucket (Random.State.int rng (List.length bucket))
  in
  (* Patch flip-flop D pins: depth of the sampled driver controls the FF's
     arrival time, hence its GK feasibility. *)
  Array.iter
    (fun ff ->
      let u = Random.State.float rng 1.0 in
      let frac = u +. (cfg.ff_depth_bias *. (1.0 -. u)) in
      let d = sample_at_depth frac in
      Netlist.set_fanin net ~node_id:ff ~pin:0 ~driver:d)
    ff_ids;
  (* Primary outputs sample the deeper half of the cloud. *)
  for i = 0 to cfg.n_po - 1 do
    let d = sample_at_depth (0.5 +. Random.State.float rng 0.5) in
    Netlist.add_output net (Printf.sprintf "po%d" i) d
  done;
  (* Liveness pass: mapped designs carry no dead logic, and dead gates
     would hide locking corruption from the outputs.  Attach every
     fanout-free gate as an extra fanin of a deeper variadic gate
     (deepest stages first, so one sweep converges); gates at the deep
     end with no consumer left become extra primary outputs. *)
  let widenable id =
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Gate (Cell.And | Cell.Or | Cell.Nand | Cell.Nor | Cell.Xor | Cell.Xnor)
      -> Array.length (Netlist.node net id).Netlist.fanins < 4
    | Netlist.Gate (Cell.Not | Cell.Buf | Cell.Mux)
    | Netlist.Input | Netlist.Const _ | Netlist.Lut _ | Netlist.Ff
    | Netlist.Dead -> false
  in
  let extra_pos = ref 0 in
  let fanout_count = Array.make (Netlist.num_nodes net) 0 in
  let recount () =
    Array.fill fanout_count 0 (Array.length fanout_count) 0;
    Array.iteri
      (fun id uses -> fanout_count.(id) <- List.length uses)
      (Netlist.fanout_table net);
    List.iter
      (fun (_, d) -> fanout_count.(d) <- fanout_count.(d) + 1)
      (Netlist.outputs net)
  in
  recount ();
  for s = cfg.depth downto 1 do
    List.iter
      (fun id ->
        if fanout_count.(id) = 0 then begin
          (* Only strictly deeper consumers are safe: two same-stage dead
             gates could otherwise adopt each other and form a cycle.
             Deep-end gates with no consumer left become extra POs. *)
          let candidates =
            List.concat_map
              (fun s' -> List.filter widenable by_stage.(s'))
              (List.init (cfg.depth - s) (fun k -> s + 1 + k))
          in
          match candidates with
          | [] ->
            incr extra_pos;
            Netlist.add_output net (Printf.sprintf "pox%d" !extra_pos) id;
            fanout_count.(id) <- 1
          | cs ->
            let c = List.nth cs (Random.State.int rng (List.length cs)) in
            Netlist.widen_gate net ~node_id:c ~extra_driver:id;
            fanout_count.(id) <- 1
        end)
      by_stage.(s)
  done;
  Netlist.validate net;
  net
