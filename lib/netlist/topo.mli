(** Structural analyses on netlists: levelization, cones, reachability.

    These are the graph queries the locking and attack code shares: logic
    levels feed the synthetic benchmark generator's depth control, output
    cones implement the Encrypt-Flip-Flop FF-grouping algorithm [4]
    (Table I's last column), and transitive fanin cones let the removal
    attack excise located security structures. *)

(** [levels t] assigns each node a logic level: sources (inputs, constants,
    flip-flop outputs) are level 0, a gate is one more than its deepest
    fanin.  Dead nodes get level [-1]. *)
val levels : Netlist.t -> int array

(** [depth t] is the largest level of any node feeding a primary output or a
    flip-flop D pin — the combinational depth of the circuit. *)
val depth : Netlist.t -> int

(** [output_cone t id] is the set of primary-output names transitively
    reachable from node [id], crossing flip-flop boundaries (a FF's Q
    output is reachable from its D fanin).  This is the "fanout PO set" of
    [4]. *)
val output_cone : Netlist.t -> int -> string list

(** [comb_output_cone t id] restricts {!output_cone} to combinational
    reachability: propagation stops at flip-flop D pins. *)
val comb_output_cone : Netlist.t -> int -> string list

(** [fanin_cone t id] is the set of node ids in the transitive combinational
    fanin of [id], including [id] itself, stopping at sources. *)
val fanin_cone : Netlist.t -> int -> int list

(** [group_ffs_by_cone t] buckets flip-flop ids by their {!output_cone}
    signature, largest bucket first — the FF grouping of [4]. *)
val group_ffs_by_cone : Netlist.t -> int list list
