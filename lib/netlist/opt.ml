(* Rebuild-with-remap optimization (see opt.mli).  One [pass] walks the
   original netlist in topological order and re-creates every live node
   through normalizing constructors over a fresh output netlist; [run]
   iterates passes to a fixpoint, because a rewrite can orphan a helper
   node that only the next pass's liveness walk removes. *)

type stats = {
  st_iters : int;
  st_nodes_before : int;
  st_nodes_after : int;
  st_gates_before : int;
  st_gates_after : int;
  st_merged : int;
  st_folded : int;
  st_rewritten : int;
  st_swept : int;
}

let reduction st =
  if st.st_gates_before = 0 then 0.
  else
    float_of_int (st.st_gates_before - st.st_gates_after)
    /. float_of_int st.st_gates_before

let pp_stats ppf st =
  Format.fprintf ppf
    "gates %d -> %d (%.1f%%), nodes %d -> %d, merged %d, folded %d, \
     rewritten %d, swept %d, %d pass%s"
    st.st_gates_before st.st_gates_after
    (100. *. reduction st)
    st.st_nodes_before st.st_nodes_after st.st_merged st.st_folded
    st.st_rewritten st.st_swept st.st_iters
    (if st.st_iters = 1 then "" else "es")

type builder = {
  o : Netlist.t;
  (* (tag, fanins, LUT truth) -> node id; commutative fanins are sorted
     before lookup, so equal subexpressions resolve to one node *)
  strash : (int * int array * string, int) Hashtbl.t;
  mutable merged : int;
  mutable folded : int;
  mutable rewritten : int;
}

let tag_of_fn : Cell.gate_fn -> int = function
  | Cell.Not -> 0
  | Cell.Buf -> 1
  | Cell.And -> 2
  | Cell.Or -> 3
  | Cell.Nand -> 4
  | Cell.Nor -> 5
  | Cell.Xor -> 6
  | Cell.Xnor -> 7
  | Cell.Mux -> 8

let lut_tag = 9

let const_val b id =
  match (Netlist.node b.o id).Netlist.kind with
  | Netlist.Const v -> Some v
  | _ -> None

let not_fanin b id =
  let nd = Netlist.node b.o id in
  match nd.Netlist.kind with
  | Netlist.Gate Cell.Not -> Some nd.Netlist.fanins.(0)
  | _ -> None

let mk_const b v = Netlist.add_const b.o v

let strash_gate b fn fanins =
  let key = (tag_of_fn fn, fanins, "") in
  match Hashtbl.find_opt b.strash key with
  | Some id ->
    b.merged <- b.merged + 1;
    id
  | None ->
    let id = Netlist.add_gate b.o fn fanins in
    Hashtbl.add b.strash key id;
    id

let mk_not b f =
  match const_val b f with
  | Some v ->
    b.folded <- b.folded + 1;
    mk_const b (not v)
  | None -> (
    match not_fanin b f with
    | Some g ->
      b.rewritten <- b.rewritten + 1;
      g
    | None -> strash_gate b Cell.Not [| f |])

(* And/Or with an optional output inversion (Nand/Nor): constant
   absorption, duplicate removal, complement detection, canonical fanin
   order. *)
let mk_andor b ~is_and ~inv fanins =
  let ident = is_and in
  (* And's identity element is 1, Or's is 0 *)
  let absorbed = ref false in
  let sigs =
    List.filter
      (fun f ->
        match const_val b f with
        | Some v ->
          b.folded <- b.folded + 1;
          if v <> ident then absorbed := true;
          false
        | None -> true)
      fanins
  in
  let finish id = if inv then mk_not b id else id in
  if !absorbed then finish (mk_const b (not ident))
  else begin
    let sorted = List.sort_uniq compare sigs in
    if List.length sorted < List.length sigs then
      b.rewritten <- b.rewritten + 1;
    let contradicts =
      List.exists
        (fun f ->
          match not_fanin b f with
          | Some g -> List.mem g sorted
          | None -> false)
        sorted
    in
    if contradicts then begin
      (* x together with (not x): And pins to 0, Or to 1 *)
      b.rewritten <- b.rewritten + 1;
      finish (mk_const b (not ident))
    end
    else
      match sorted with
      | [] -> finish (mk_const b ident)
      | [ f ] -> finish f
      | fs ->
        let fn =
          match (is_and, inv) with
          | true, false -> Cell.And
          | true, true -> Cell.Nand
          | false, false -> Cell.Or
          | false, true -> Cell.Nor
        in
        strash_gate b fn (Array.of_list fs)
  end

(* Xor with an optional output inversion (Xnor): constants fold into the
   inversion, even multiplicities cancel, and an (x, not x) pair
   contributes a constant 1. *)
let mk_xor b ~inv fanins =
  let inv = ref inv in
  let sigs =
    List.filter
      (fun f ->
        match const_val b f with
        | Some v ->
          b.folded <- b.folded + 1;
          if v then inv := not !inv;
          false
        | None -> true)
      fanins
  in
  let sorted = List.sort compare sigs in
  let rec parity acc = function
    | x :: y :: tl when x = y -> parity acc tl
    | x :: tl -> parity (x :: acc) tl
    | [] -> List.rev acc
  in
  let uniq = parity [] sorted in
  if List.length uniq < List.length sigs then b.rewritten <- b.rewritten + 1;
  let rec drop_compl fs =
    match
      List.find_opt
        (fun f ->
          match not_fanin b f with
          | Some g -> List.mem g fs
          | None -> false)
        fs
    with
    | Some f ->
      let g = match not_fanin b f with Some g -> g | None -> assert false in
      inv := not !inv;
      b.rewritten <- b.rewritten + 1;
      drop_compl (List.filter (fun x -> x <> f && x <> g) fs)
    | None -> fs
  in
  match drop_compl uniq with
  | [] -> mk_const b !inv
  | [ f ] -> if !inv then mk_not b f else f
  | fs -> strash_gate b (if !inv then Cell.Xnor else Cell.Xor) (Array.of_list fs)

(* Mux with fanins [sel; f0; f1], value = if sel then f1 else f0. *)
let rec mk_mux b ~sel ~f0 ~f1 =
  match const_val b sel with
  | Some v ->
    b.folded <- b.folded + 1;
    if v then f1 else f0
  | None ->
    if f0 = f1 then begin
      b.rewritten <- b.rewritten + 1;
      f0
    end
    else (
      match not_fanin b sel with
      | Some g ->
        (* normalize selector polarity: mux(not s, a, b) = mux(s, b, a) *)
        b.rewritten <- b.rewritten + 1;
        mk_mux b ~sel:g ~f0:f1 ~f1:f0
      | None -> (
        match (const_val b f0, const_val b f1) with
        | Some false, Some true ->
          b.rewritten <- b.rewritten + 1;
          sel
        | Some true, Some false ->
          b.rewritten <- b.rewritten + 1;
          mk_not b sel
        | Some false, None ->
          b.rewritten <- b.rewritten + 1;
          mk_andor b ~is_and:true ~inv:false [ sel; f1 ]
        | Some true, None ->
          b.rewritten <- b.rewritten + 1;
          mk_andor b ~is_and:false ~inv:false [ mk_not b sel; f1 ]
        | None, Some false ->
          b.rewritten <- b.rewritten + 1;
          mk_andor b ~is_and:true ~inv:false [ mk_not b sel; f0 ]
        | None, Some true ->
          b.rewritten <- b.rewritten + 1;
          mk_andor b ~is_and:false ~inv:false [ sel; f0 ]
        | Some _, Some _ ->
          (* equal constants are one shared node, caught by f0 = f1 *)
          assert false
        | None, None -> strash_gate b Cell.Mux [| sel; f0; f1 |]))

let truth_string truth =
  String.init (Array.length truth) (fun i -> if truth.(i) then '1' else '0')

let strash_lut b truth fanins =
  let key = (lut_tag, fanins, truth_string truth) in
  match Hashtbl.find_opt b.strash key with
  | Some id ->
    b.merged <- b.merged + 1;
    id
  | None ->
    let id = Netlist.add_lut b.o ~truth fanins in
    Hashtbl.add b.strash key id;
    id

(* [restrict truth i v] pins input [i] to [v]: the table over the
   remaining inputs, which keep their relative order. *)
let restrict truth i v =
  Array.init
    (Array.length truth lsr 1)
    (fun row ->
      let low = row land ((1 lsl i) - 1) in
      let high = (row lsr i) lsl (i + 1) in
      truth.(high lor (if v then 1 lsl i else 0) lor low))

(* [drop_dup truth j i] removes input [j] knowing it always equals input
   [i] (with [i < j]): only rows where bit j = bit i are reachable. *)
let drop_dup truth j i =
  Array.init
    (Array.length truth lsr 1)
    (fun row ->
      let low = row land ((1 lsl j) - 1) in
      let high = (row lsr j) lsl (j + 1) in
      let vi = (row lsr i) land 1 in
      truth.(high lor (vi lsl j) lor low))

let insensitive truth i =
  let half = 1 lsl i in
  let ok = ref true in
  for row = 0 to Array.length truth - 1 do
    if row land half = 0 && truth.(row) <> truth.(row lor half) then ok := false
  done;
  !ok

let rec mk_lut b truth fanins =
  let n = Array.length fanins in
  if n = 0 then begin
    b.folded <- b.folded + 1;
    mk_const b truth.(0)
  end
  else begin
    let remove i =
      Array.append (Array.sub fanins 0 i) (Array.sub fanins (i + 1) (n - 1 - i))
    in
    let ci = ref (-1) in
    Array.iteri (fun i f -> if !ci < 0 && const_val b f <> None then ci := i) fanins;
    if !ci >= 0 then begin
      let i = !ci in
      let v =
        match const_val b fanins.(i) with Some v -> v | None -> assert false
      in
      b.folded <- b.folded + 1;
      mk_lut b (restrict truth i v) (remove i)
    end
    else begin
      let di = ref (-1) and dj = ref (-1) in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if !dj < 0 && fanins.(i) = fanins.(j) then begin
            di := i;
            dj := j
          end
        done
      done;
      if !dj >= 0 then begin
        b.rewritten <- b.rewritten + 1;
        mk_lut b (drop_dup truth !dj !di) (remove !dj)
      end
      else begin
        let ii = ref (-1) in
        for i = 0 to n - 1 do
          if !ii < 0 && insensitive truth i then ii := i
        done;
        if !ii >= 0 then begin
          b.rewritten <- b.rewritten + 1;
          mk_lut b (restrict truth !ii false) (remove !ii)
        end
        else if n = 1 then begin
          (* a 1-input table that depends on its input is Buf or Not *)
          b.rewritten <- b.rewritten + 1;
          if truth.(1) then fanins.(0) else mk_not b fanins.(0)
        end
        else strash_lut b truth fanins
      end
    end
  end

let translate b net remap nd =
  let m f =
    (* engine semantics: a fanin left pointing at a Dead node reads 0 *)
    if (Netlist.node net f).Netlist.kind = Netlist.Dead then mk_const b false
    else begin
      assert (remap.(f) >= 0);
      remap.(f)
    end
  in
  match nd.Netlist.kind with
  | Netlist.Gate fn -> (
    let fs = Array.map m nd.Netlist.fanins in
    match fn with
    | Cell.Not -> mk_not b fs.(0)
    | Cell.Buf ->
      b.rewritten <- b.rewritten + 1;
      fs.(0)
    | Cell.And -> mk_andor b ~is_and:true ~inv:false (Array.to_list fs)
    | Cell.Nand -> mk_andor b ~is_and:true ~inv:true (Array.to_list fs)
    | Cell.Or -> mk_andor b ~is_and:false ~inv:false (Array.to_list fs)
    | Cell.Nor -> mk_andor b ~is_and:false ~inv:true (Array.to_list fs)
    | Cell.Xor -> mk_xor b ~inv:false (Array.to_list fs)
    | Cell.Xnor -> mk_xor b ~inv:true (Array.to_list fs)
    | Cell.Mux -> mk_mux b ~sel:fs.(0) ~f0:fs.(1) ~f1:fs.(2))
  | Netlist.Lut truth ->
    mk_lut b (Array.copy truth) (Array.map m nd.Netlist.fanins)
  | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead -> assert false

let pass net =
  let n = Netlist.num_nodes net in
  let live = Array.make (max 1 n) false in
  let rec mark id =
    if not live.(id) then begin
      live.(id) <- true;
      let nd = Netlist.node net id in
      if nd.Netlist.kind <> Netlist.Dead then Array.iter mark nd.Netlist.fanins
    end
  in
  List.iter (fun (_, d) -> mark d) (Netlist.outputs net);
  for id = 0 to n - 1 do
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Input | Netlist.Ff -> mark id
    | Netlist.Const _ | Netlist.Gate _ | Netlist.Lut _ | Netlist.Dead -> ()
  done;
  let b =
    {
      o = Netlist.create (Netlist.name net);
      strash = Hashtbl.create 257;
      merged = 0;
      folded = 0;
      rewritten = 0;
    }
  in
  let remap = Array.make (max 1 n) (-1) in
  (* sources first, in declaration order, so the optimized netlist's
     engine source space aligns index-for-index with the original's *)
  for id = 0 to n - 1 do
    let nd = Netlist.node net id in
    match nd.Netlist.kind with
    | Netlist.Input -> remap.(id) <- Netlist.add_input b.o nd.Netlist.name
    | Netlist.Ff ->
      (* the D pin is patched below, once its cone exists *)
      remap.(id) <-
        Netlist.add_ff b.o ~name:nd.Netlist.name (Netlist.add_const b.o false)
    | Netlist.Const v -> if live.(id) then remap.(id) <- Netlist.add_const b.o v
    | Netlist.Gate _ | Netlist.Lut _ | Netlist.Dead -> ()
  done;
  let swept = ref 0 in
  List.iter
    (fun id ->
      if live.(id) then begin
        let nd = Netlist.node net id in
        let pre = Netlist.num_nodes b.o in
        let nv = translate b net remap nd in
        remap.(id) <- nv;
        (* a node that survived 1:1 keeps its original name *)
        if nv >= pre && Netlist.find b.o nd.Netlist.name = None then
          try Netlist.rename b.o nv nd.Netlist.name
          with Invalid_argument _ -> ()
      end
      else incr swept)
    (Netlist.comb_topo_order net);
  let res f =
    if (Netlist.node net f).Netlist.kind = Netlist.Dead then mk_const b false
    else remap.(f)
  in
  for id = 0 to n - 1 do
    let nd = Netlist.node net id in
    match nd.Netlist.kind with
    | Netlist.Ff ->
      Netlist.set_fanin b.o ~node_id:remap.(id) ~pin:0
        ~driver:(res nd.Netlist.fanins.(0))
    | _ -> ()
  done;
  List.iter (fun (po, d) -> Netlist.add_output b.o po (res d)) (Netlist.outputs net);
  (b.o, b.merged, b.folded, b.rewritten, !swept)

let count_nodes net =
  let nodes = ref 0 and gates = ref 0 in
  for id = 0 to Netlist.num_nodes net - 1 do
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Dead -> ()
    | Netlist.Gate _ | Netlist.Lut _ ->
      incr nodes;
      incr gates
    | Netlist.Input | Netlist.Const _ | Netlist.Ff -> incr nodes
  done;
  (!nodes, !gates)

let run ?(max_iters = 4) net =
  if max_iters < 1 then invalid_arg "Opt.run: max_iters must be >= 1";
  let nodes_before, gates_before = count_nodes net in
  let merged = ref 0
  and folded = ref 0
  and rewritten = ref 0
  and swept = ref 0 in
  let cur = ref net and iters = ref 0 and again = ref true in
  while !again && !iters < max_iters do
    let next, m, f, r, s = pass !cur in
    incr iters;
    again :=
      m + f + r + s > 0 || Netlist.num_nodes next <> Netlist.num_nodes !cur;
    (* keep the fresh rebuild even at the fixpoint, so the result never
       aliases the input *)
    cur := next;
    merged := !merged + m;
    folded := !folded + f;
    rewritten := !rewritten + r;
    swept := !swept + s
  done;
  let out = !cur in
  Netlist.validate out;
  let nodes_after, gates_after = count_nodes out in
  ( out,
    {
      st_iters = !iters;
      st_nodes_before = nodes_before;
      st_nodes_after = nodes_after;
      st_gates_before = gates_before;
      st_gates_after = gates_after;
      st_merged = !merged;
      st_folded = !folded;
      st_rewritten = !rewritten;
      st_swept = !swept;
    } )
