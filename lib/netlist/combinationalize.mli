(** The FF-boundary cut used before SAT attack (Sec. VI of the paper).

    "Before SAT attack decrypts sequential circuits, it will first extract
    the combinational part [...] by treating the inputs and outputs of FFs
    as pseudo primary outputs and inputs, respectively."  This module
    performs that transform: every flip-flop's Q output becomes a pseudo
    primary input [ppi_<ff>] and its D pin drives a pseudo primary output
    [ppo_<ff>]. *)

type mapping = {
  ff_name : string;
  ppi : string;  (** pseudo-PI that replaced the FF's Q *)
  ppo : string;  (** pseudo-PO fed by the FF's old D *)
}

(** [run net] is the combinational netlist and the per-FF correspondence.
    The input is not modified.  The result has no flip-flops and is
    validated. *)
val run : Netlist.t -> Netlist.t * mapping list
