(** Structural-Verilog interchange.

    The paper's flow starts from "the original design described in
    Verilog"; this module reads and writes the structural subset every
    gate-level tool speaks: one module, [input]/[output]/[wire]
    declarations, cell instances of the {!Cell_lib} library with named
    pin connections, Verilog gate primitives, and [assign] aliases.

    Pin conventions (what the writer emits and the reader accepts):
    combinational cells drive [Y] and read [A], [B], [C], ... in fanin
    order; the MUX reads its select on [S], its select-0 input on [A]
    and select-1 on [B]; the flip-flop is [DFFX1 (.Q(q), .D(d), .CK(clk))]
    with the single implicit clock net [clk].  Withheld LUTs are expanded
    into sum-of-products gates on output (their contents are not meant to
    survive an interchange anyway). *)

exception Parse_error of int * string

(** [print net] renders one Verilog module named after the netlist. *)
val print : Netlist.t -> string

(** [parse ~name text] reads one structural module.  Gate primitives
    ([and], [nand], [or], [nor], [xor], [xnor], [not], [buf]) and library
    cell instances are both accepted; [assign x = y], [assign x = ~y],
    [assign x = 1'b0/1'b1] create buffers/inverters/constants.
    @raise Parse_error with a line number on malformed input. *)
val parse : name:string -> string -> Netlist.t

val write_file : Netlist.t -> string -> unit
val parse_file : string -> Netlist.t
