let mk cell_name fn arity area delay_ps =
  { Cell.cell_name; fn; arity; area; delay_ps }

(* Areas in um^2 and delays in ps chosen with the ratios typical of a
   0.13um/1.2V library: an X1 inverter near 5 um^2 and 40 ps, two-input
   gates 30-60% larger, XOR/MUX roughly twice an inverter's delay, and a
   D flip-flop costing about seven inverters of area. *)
let invx1 = mk "INVX1" Not 1 5.0 40
let invx2 = mk "INVX2" Not 1 6.7 30
let bufx1 = mk "BUFX1" Buf 1 6.7 70
let bufx2 = mk "BUFX2" Buf 1 8.4 55
let nand2 = mk "NAND2X1" Nand 2 6.7 50
let nand3 = mk "NAND3X1" Nand 3 8.4 65
let nand4 = mk "NAND4X1" Nand 4 10.0 80
let nor2 = mk "NOR2X1" Nor 2 6.7 60
let nor3 = mk "NOR3X1" Nor 3 8.4 80
let nor4 = mk "NOR4X1" Nor 4 10.0 100
let and2 = mk "AND2X1" And 2 8.4 75
let and3 = mk "AND3X1" And 3 10.0 90
let and4 = mk "AND4X1" And 4 11.7 105
let or2 = mk "OR2X1" Or 2 8.4 85
let or3 = mk "OR3X1" Or 3 10.0 100
let or4 = mk "OR4X1" Or 4 11.7 115
let xor2 = mk "XOR2X1" Xor 2 13.4 95
let xor3 = mk "XOR3X1" Xor 3 21.8 150
let xnor2 = mk "XNOR2X1" Xnor 2 13.4 95
let xnor3 = mk "XNOR3X1" Xnor 3 21.8 150
let mux2 = mk "MX2X1" Mux 3 13.4 90

(* Delay buffers: the DLY family a commercial library stocks for hold
   fixing.  These are what keeps a GK's overhead near the paper's numbers;
   composing the same delays from BUFX1 alone (the `Buffers_only` ablation)
   inflates the cell count by roughly 4x, which is the reduction the paper
   predicts for "customized delay elements". *)
let dly1 = mk "DLY1X1" Buf 1 10.0 200
let dly2 = mk "DLY2X1" Buf 1 13.4 400
let dly4 = mk "DLY4X1" Buf 1 20.1 800
let dly8 = mk "DLY8X1" Buf 1 31.7 1600

let dff = mk "DFFX1" Buf 1 33.6 150

let dff_setup_ps = 100
let dff_hold_ps = 50
let dff_clk2q_ps = 150

let cells =
  [
    invx1; invx2; bufx1; bufx2; nand2; nand3; nand4; nor2; nor3; nor4; and2;
    and3; and4; or2; or3; or4; xor2; xor3; xnor2; xnor3; mux2; dly1; dly2;
    dly4; dly8; dff;
  ]

let find name =
  List.find_opt (fun c -> c.Cell.cell_name = name) cells

let families =
  [
    (Cell.Not, [ invx1 ]);
    (Cell.Buf, [ bufx1 ]);
    (Cell.Nand, [ nand2; nand3; nand4 ]);
    (Cell.Nor, [ nor2; nor3; nor4 ]);
    (Cell.And, [ and2; and3; and4 ]);
    (Cell.Or, [ or2; or3; or4 ]);
    (Cell.Xor, [ xor2; xor3 ]);
    (Cell.Xnor, [ xnor2; xnor3 ]);
    (Cell.Mux, [ mux2 ]);
  ]

(* Wide gates beyond the stocked arities are estimated as the widest cell
   plus one two-input stage per extra fanin, which is what a mapper's
   decomposition would cost. *)
let extrapolate widest arity =
  let extra = arity - widest.Cell.arity in
  {
    widest with
    Cell.cell_name = Printf.sprintf "%s_W%d" widest.Cell.cell_name arity;
    arity;
    area = widest.Cell.area +. (6.7 *. float_of_int extra);
    delay_ps = widest.Cell.delay_ps + (35 * extra);
  }

let bind fn arity =
  if not (Cell.arity_ok fn arity) then
    invalid_arg
      (Printf.sprintf "Cell_lib.bind: arity %d illegal for %s" arity
         (Cell.fn_name fn));
  let family = List.assoc fn families in
  match List.find_opt (fun c -> c.Cell.arity = arity) family with
  | Some c -> c
  | None ->
    let widest = List.nth family (List.length family - 1) in
    extrapolate widest arity

let lut_area k = 20.0 +. (6.0 *. float_of_int (1 lsl k))

let lut_delay_ps k = 180 + (20 * k)

let delay_cells = function
  | `Standard -> [ dly8; dly4; dly2; dly1; bufx1; invx1 ]
  | `Buffers_only -> [ bufx1; invx1 ]

let custom_delay_cell ps =
  {
    Cell.cell_name = Printf.sprintf "DLYCUST_%dPS" ps;
    fn = Cell.Buf;
    arity = 1;
    (* Area interpolated from the DLY family: ~10 um^2 per 200 ps plus a
       fixed driver. *)
    area = 6.7 +. (float_of_int ps /. 200.0 *. 10.0);
    delay_ps = ps;
  }
