type mapping = { ff_name : string; ppi : string; ppo : string }

let run net =
  let comb = Netlist.copy net in
  let ffs = Netlist.ffs comb in
  (* First give every FF's Q a pseudo-PI and redirect all consumers —
     including other FFs' D pins and the FF's own D on a self-loop. *)
  let with_ppis =
    List.map
      (fun ff ->
        let ff_name = (Netlist.node comb ff).Netlist.name in
        let ppi = "ppi_" ^ ff_name in
        let pi = Netlist.add_input comb ppi in
        Netlist.replace_uses comb ~old_id:ff ~new_id:pi;
        (ff, ff_name, ppi))
      ffs
  in
  (* Now every FF's D fanin already points past FF boundaries; expose it. *)
  let mappings =
    List.map
      (fun (ff, ff_name, ppi) ->
        let d = (Netlist.node comb ff).Netlist.fanins.(0) in
        let ppo = "ppo_" ^ ff_name in
        Netlist.add_output comb ppo d;
        { ff_name; ppi; ppo })
      with_ppis
  in
  List.iter (fun ff -> Netlist.kill comb ff) ffs;
  let comb, _remap = Netlist.compact comb in
  Netlist.validate comb;
  (comb, mappings)
