let frames src ~k ~share ~init =
  if k < 1 then invalid_arg "Unroll.frames: need at least one frame";
  let out = Netlist.create (Netlist.name src ^ Printf.sprintf "_x%d" k) in
  let shared_ids = Hashtbl.create 8 in
  (* state value feeding each FF's Q in the current frame *)
  let state : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (match init with
  | `Zero ->
    List.iter
      (fun ff -> Hashtbl.replace state ff (Netlist.add_const out false))
      (Netlist.ffs src)
  | `Free ->
    List.iter
      (fun ff ->
        let name = "s0_" ^ (Netlist.node src ff).Netlist.name in
        Hashtbl.replace state ff (Netlist.add_input out name))
      (Netlist.ffs src));
  for frame = 0 to k - 1 do
    let tag = Printf.sprintf "f%d_" frame in
    let map = Hashtbl.create 64 in
    let rec import id =
      match Hashtbl.find_opt map id with
      | Some id' -> id'
      | None ->
        let nd = Netlist.node src id in
        let id' =
          match nd.Netlist.kind with
          | Netlist.Input ->
            if share nd.Netlist.name then begin
              match Hashtbl.find_opt shared_ids nd.Netlist.name with
              | Some v -> v
              | None ->
                let v = Netlist.add_input out nd.Netlist.name in
                Hashtbl.replace shared_ids nd.Netlist.name v;
                v
            end
            else Netlist.add_input out (tag ^ nd.Netlist.name)
          | Netlist.Const b -> Netlist.add_const out b
          | Netlist.Ff -> Hashtbl.find state id
          | Netlist.Gate fn ->
            Netlist.add_gate out ?cell:nd.Netlist.cell fn
              (Array.map import nd.Netlist.fanins)
          | Netlist.Lut truth ->
            Netlist.add_lut out ~truth:(Array.copy truth)
              (Array.map import nd.Netlist.fanins)
          | Netlist.Dead -> invalid_arg "Unroll.frames: dead node referenced"
        in
        Hashtbl.replace map id id';
        id'
    in
    List.iter
      (fun (po, d) -> Netlist.add_output out (tag ^ po) (import d))
      (Netlist.outputs src);
    (* next state: D functions of this frame *)
    let next =
      List.map
        (fun ff -> (ff, import (Netlist.node src ff).Netlist.fanins.(0)))
        (Netlist.ffs src)
    in
    List.iter (fun (ff, v) -> Hashtbl.replace state ff v) next
  done;
  Netlist.validate out;
  out
