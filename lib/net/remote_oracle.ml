exception Remote_error of Wire.error_code * string

type t = {
  r_fd : Unix.file_descr;
  mutable r_design : string;
  mutable r_server : string;
  mutable r_designs : Wire.design_info list;
  mutable r_oracle : Oracle.t option;  (* Some after connect returns *)
  mutable r_next_id : int;
  mutable r_closed : bool;
}

let transport_error detail = raise (Remote_error (Wire.Server_error, detail))

let fresh_id t =
  let id = t.r_next_id in
  (* request ids are a u32 on the wire *)
  t.r_next_id <- (id + 1) land 0xFFFFFFFF;
  id

(* One request, one reply.  The stream is strictly request/reply per
   connection, so a mismatched id means the transport is out of sync —
   fail loudly rather than guess. *)
let roundtrip t msg =
  if t.r_closed then transport_error "connection already closed";
  let id = fresh_id t in
  (try Frame_io.write_frame t.r_fd ~id msg
   with Unix.Unix_error (e, _, _) ->
     transport_error ("write failed: " ^ Unix.error_message e));
  match Frame_io.read_frame t.r_fd with
  | Error e -> transport_error (Frame_io.read_error_message e)
  | Ok { Wire.id = rid; msg = reply } ->
    if rid <> id && rid <> 0 then
      transport_error
        (Printf.sprintf "reply id %d does not match request id %d" rid id);
    reply

(* Map structured error frames to the exception the attack layer
   already understands: over-quota becomes [Budget.Exhausted], so a
   remote quota trip yields the same [Out_of_budget] verdict as a local
   budget. *)
let fail_on_error = function
  | Wire.Error { code = Wire.Over_quota_queries; _ } ->
    raise (Budget.Exhausted Budget.Queries)
  | Wire.Error { code = Wire.Over_quota_deadline; _ } ->
    raise (Budget.Exhausted Budget.Deadline)
  | Wire.Error { code; detail } -> raise (Remote_error (code, detail))
  | m -> m

let query_remote t assignment =
  match fail_on_error (roundtrip t (Wire.Query { design = t.r_design; assignment })) with
  | Wire.Result r -> r
  | m ->
    transport_error ("expected a result frame, got " ^ Wire.msg_type_name m)

let query_batch_frame t assignments =
  match
    fail_on_error
      (roundtrip t (Wire.Query_batch { design = t.r_design; assignments }))
  with
  | Wire.Batch_result rs ->
    if List.length rs <> List.length assignments then
      transport_error "batch result size mismatch";
    rs
  | m ->
    transport_error ("expected a batch result frame, got " ^ Wire.msg_type_name m)

(* A [Query_batch] frame must fit [Wire.max_payload], and a wide design
   can blow past that (1k queries x 1.7k pins on s38417 is ~20 MB), so
   oversized query sets are split across several frames.  The split is
   invisible to the attack layer: chunks stay in order and the results
   are concatenated.  [assignment_bytes] mirrors the wire encoding —
   u16 pin count, then per pin a u16-length string and a bool byte. *)
let assignment_bytes q =
  List.fold_left (fun acc (name, _) -> acc + 3 + String.length name) 2 q

let batch_chunks t assignments =
  (* Both the request and its single reply must fit a frame, and the
     reply can be the larger one (a chip reports every output pin).
     The design listing gives the exact output names, so size the
     request budget down by the reply/query byte ratio with 2x slack. *)
  let ratio =
    match List.find_opt (fun i -> i.Wire.d_name = t.r_design) t.r_designs with
    | Some { Wire.d_inputs = _ :: _ as ins; d_outputs = outs; _ } ->
      let bytes pins =
        List.fold_left (fun acc p -> acc + 3 + String.length p) 2 pins
      in
      Float.max 1.0 (float_of_int (bytes outs) /. float_of_int (bytes ins))
    | _ -> 1.0
  in
  (* No floor beyond 1: flooring the budget at a few KiB re-creates the
     overflow it exists to prevent when the reply/query ratio is huge
     (few inputs, thousands of long-named outputs).  A single oversized
     query still ships alone — the server rejects it with a clean error
     rather than the client mis-framing. *)
  let budget =
    Stdlib.max 1
      (int_of_float (float_of_int (Wire.max_payload / 2) /. ratio))
  in
  let rec split acc cur cur_bytes = function
    | [] -> List.rev (List.rev cur :: acc)
    | q :: rest ->
      let b = assignment_bytes q in
      if cur <> [] && cur_bytes + b > budget then
        split (List.rev cur :: acc) [ q ] b rest
      else split acc (q :: cur) (cur_bytes + b) rest
  in
  split [] [] 0 assignments

let query_batch_remote t assignments =
  if assignments = [] then []
  else
    List.concat_map (fun chunk -> query_batch_frame t chunk)
      (batch_chunks t assignments)

let connect ?(client = "gklock") ?design ?(memo = true) ?memo_cap addr =
  let fd = Frame_io.connect addr in
  let fail detail =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    transport_error detail
  in
  let t =
    {
      r_fd = fd;
      r_design = "";
      r_server = "";
      r_designs = [];
      r_oracle = None;
      r_next_id = 1;
      r_closed = false;
    }
  in
  let server =
    match
      roundtrip t (Wire.Hello { client; proto = Wire.protocol_version })
    with
    | Wire.Hello_ack { server; proto } ->
      if proto <> Wire.protocol_version then
        fail (Printf.sprintf "server negotiated unsupported protocol %d" proto)
      else server
    | Wire.Error { code; detail } ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (Remote_error (code, detail))
    | m -> fail ("expected hello_ack, got " ^ Wire.msg_type_name m)
  in
  let designs =
    match roundtrip t Wire.List_designs with
    | Wire.Designs ds -> ds
    | Wire.Error { code; detail } ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (Remote_error (code, detail))
    | m -> fail ("expected designs frame, got " ^ Wire.msg_type_name m)
  in
  let design =
    match (design, designs) with
    | Some d, _ ->
      if List.exists (fun i -> i.Wire.d_name = d) designs then d
      else
        fail
          (Printf.sprintf "design %S not hosted (server has: %s)" d
             (String.concat ", "
                (List.map (fun i -> i.Wire.d_name) designs)))
    | None, [ only ] -> only.Wire.d_name
    | None, [] -> fail "server hosts no designs"
    | None, _ ->
      fail
        (Printf.sprintf "server hosts %d designs; pick one with ~design"
           (List.length designs))
  in
  t.r_design <- design;
  t.r_server <- server;
  t.r_designs <- designs;
  t.r_oracle <-
    Some
      (Oracle.of_fn ~memo ?memo_cap
         ~batch:(fun qs -> query_batch_remote t qs)
         (fun q -> query_remote t q));
  t

let oracle t =
  match t.r_oracle with Some o -> o | None -> assert false
let design t = t.r_design
let server_name t = t.r_server
let designs t = t.r_designs

let ping t =
  let t0 = Unix.gettimeofday () in
  (match fail_on_error (roundtrip t Wire.Ping) with
  | Wire.Pong -> ()
  | m -> transport_error ("expected pong, got " ^ Wire.msg_type_name m));
  Unix.gettimeofday () -. t0

let close t =
  if not t.r_closed then begin
    t.r_closed <- true;
    try Unix.close t.r_fd with Unix.Unix_error _ -> ()
  end

let shutdown_server t =
  (match fail_on_error (roundtrip t Wire.Shutdown) with
  | Wire.Shutdown_ack -> ()
  | m -> transport_error ("expected shutdown_ack, got " ^ Wire.msg_type_name m));
  close t
