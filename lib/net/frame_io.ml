type addr = Unix_path of string | Tcp of string * int

let parse_addr s =
  let prefix p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefix "unix:" then Ok (Unix_path (after "unix:"))
  else if prefix "tcp:" then
    match String.rindex_opt (after "tcp:") ':' with
    | None -> Error (Printf.sprintf "%S: expected tcp:HOST:PORT" s)
    | Some i ->
      let hp = after "tcp:" in
      let host = String.sub hp 0 i in
      let port = String.sub hp (i + 1) (String.length hp - i - 1) in
      (* port 0 is legal on the listen side: the kernel assigns an
         ephemeral port, which Gkd_server.address reads back — the only
         race-free way for tests and scripts to share a TCP daemon *)
      (match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "%S: bad port %S" s port))
  else if String.length s > 0 then Ok (Unix_path s)
  else Error "empty oracle address"

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

(* Writing to a peer that closed first must surface as EPIPE, not kill
   the process: both the daemon (answering a client that gave up) and
   the fuzz tests depend on it. *)
let ignore_sigpipe =
  lazy
    (if Sys.os_type = "Unix" then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
    let ip =
      try Unix.inet_addr_of_string host
      with _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
        | _ -> raise (Unix.Unix_error (Unix.EHOSTUNREACH, "getaddrinfo", host)))
    in
    Unix.ADDR_INET (ip, port)

let listen ?(backlog = 64) addr =
  Lazy.force ignore_sigpipe;
  let domain = match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Unix_path p when Sys.file_exists p -> Unix.unlink p
     | _ -> ());
     (match addr with Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true | _ -> ());
     Unix.bind fd (sockaddr_of addr);
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

let connect addr =
  Lazy.force ignore_sigpipe;
  let domain = match addr with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of addr)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

type read_error = [ `Eof | `Wire of Wire.wire_error | `Unix of Unix.error ]

let read_error_message = function
  | `Eof -> "connection closed"
  | `Wire w -> Wire.wire_error_message w
  | `Unix e -> Unix.error_message e

(* [really_read fd buf len] fills [buf.[0,len)]; [`Short n] reports how
   many bytes arrived before EOF. *)
let really_read fd buf len =
  let rec go pos =
    if pos >= len then `Ok
    else
      match Unix.read fd buf pos (len - pos) with
      | 0 -> `Short pos
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error (e, _, _) -> `Unix e
  in
  go 0

let read_frame fd =
  let hdr = Bytes.create Wire.header_bytes in
  match really_read fd hdr Wire.header_bytes with
  | `Short 0 -> Error `Eof
  | `Short have -> Error (`Wire (Wire.Truncated { have; need = Wire.header_bytes }))
  | `Unix e -> Error (`Unix e)
  | `Ok -> (
    match Wire.decode_header hdr with
    | Error w -> Error (`Wire w)
    | Ok h -> (
      let payload = Bytes.create h.Wire.h_len in
      match really_read fd payload h.Wire.h_len with
      | `Short have ->
        Error
          (`Wire
            (Wire.Truncated
               {
                 have = Wire.header_bytes + have;
                 need = Wire.header_bytes + h.Wire.h_len;
               }))
      | `Unix e -> Error (`Unix e)
      | `Ok -> (
        match Wire.decode_payload h payload with
        | Ok f -> Ok f
        | Error w -> Error (`Wire w))))

let write_frame fd ~id msg =
  let b = Wire.encode ~id msg in
  let len = Bytes.length b in
  let rec go pos =
    if pos < len then
      match Unix.write fd b pos (len - pos) with
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0
