(** The gklockd wire protocol: pure [Bytes] codecs, no sockets.

    Every message on a gklockd connection is one length-prefixed binary
    frame:

    {v
      offset  size  field
      0       2     magic "GK"
      2       1     protocol version (currently 1)
      3       1     message type
      4       4     request id (big-endian u32; echoed in the response)
      8       4     payload length (big-endian u32; <= max_payload)
      12      4     CRC-32 (IEEE) of the payload bytes (big-endian u32)
      16      len   payload (per-type encoding, see DESIGN.md §6h)
    v}

    Encoding and decoding are pure functions over [Bytes] so the whole
    protocol is unit-testable without a socket.  {!decode} never raises
    on hostile input: truncated, oversized, mis-versioned, mis-typed and
    corrupted frames all come back as a structured {!wire_error}, which
    {!error_code_of_wire_error} maps to the {!error_code} the server
    puts in the {!Error} frame it answers with.

    Version negotiation: the client opens with {!Hello} carrying its
    protocol version; the server answers {!Hello_ack} with its own, or
    an {!Error} with [`Unsupported_version] when it cannot speak the
    client's.  Frames whose header version differs from
    {!protocol_version} are rejected at decode time. *)

val protocol_version : int

(** Frame header size in bytes (16). *)
val header_bytes : int

(** Maximum payload length accepted by {!decode_header} (16 MiB) —
    a length field beyond this is rejected as [Oversized] before any
    allocation. *)
val max_payload : int

(** CRC-32 (IEEE 802.3 polynomial) of [len] bytes of [b] at [pos] —
    exposed for tests. *)
val crc32 : Bytes.t -> pos:int -> len:int -> int32

(** Structured error codes carried by {!Error} frames. *)
type error_code =
  | Bad_frame  (** unparsable header: magic / CRC / truncation *)
  | Bad_payload  (** header fine, payload malformed for its type *)
  | Unsupported_version
  | Unknown_type
  | Unknown_design  (** the named design is not hosted by this server *)
  | Over_quota_queries  (** per-client query quota exhausted *)
  | Over_quota_deadline  (** per-client deadline passed *)
  | Bad_query  (** the design rejected the assignment (strict mode) *)
  | Not_permitted
      (** the request is valid but this server refuses it (e.g. a
          [Shutdown] frame on a TCP listener without
          [allow_tcp_shutdown]) *)
  | Shutting_down
  | Server_error

val error_code_name : error_code -> string

(** A design as advertised by [List_designs]. *)
type design_info = {
  d_name : string;
  d_inputs : string list;  (** source (PI + FF pseudo-input) names *)
  d_outputs : string list;
  d_cells : int;
}

type msg =
  | Hello of { client : string; proto : int }  (** first client frame *)
  | Hello_ack of { server : string; proto : int }
  | List_designs
  | Designs of design_info list
  | Query of { design : string; assignment : (string * bool) list }
      (** one scalar chip query; coalesced server-side into 63-lane
          words *)
  | Result of (string * bool) list
  | Query_batch of {
      design : string;
      assignments : (string * bool) list list;
    }  (** an explicit batch, evaluated in one engine pass *)
  | Batch_result of (string * bool) list list
  | Ping
  | Pong
  | Shutdown  (** ask the daemon to stop; answered by [Shutdown_ack] *)
  | Shutdown_ack
  | Error of { code : error_code; detail : string }

val msg_type_name : msg -> string

(** One decoded frame: the request id and its message. *)
type frame = { id : int; msg : msg }

(** Everything that can be wrong with incoming bytes.  [Truncated]
    carries how many bytes were present and how many the frame needs, so
    stream readers can distinguish "short read, keep reading" from
    "corrupt". *)
type wire_error =
  | Truncated of { have : int; need : int }
  | Bad_magic
  | Bad_version of int
  | Unknown_msg_type of int
  | Oversized of int
  | Crc_mismatch
  | Malformed of string  (** payload structure violation, with detail *)

val wire_error_message : wire_error -> string

(** The {!error_code} a server should answer with for a given decode
    failure. *)
val error_code_of_wire_error : wire_error -> error_code

(** [encode ~id msg] is the complete frame (header + payload).
    @raise Invalid_argument when [id] is outside [0, 2^32)], a string
    exceeds 65535 bytes, a pin list exceeds 65535 entries, or the
    payload would exceed {!max_payload}. *)
val encode : id:int -> msg -> Bytes.t

type header = {
  h_version : int;
  h_type : int;
  h_id : int;
  h_len : int;  (** payload length *)
  h_crc : int32;
}

(** [decode_header b] parses the first {!header_bytes} bytes of [b].
    Checks magic, version and the length bound — not the CRC (the
    payload is not in hand yet). *)
val decode_header : Bytes.t -> (header, wire_error) result

(** [decode_payload h payload] checks [payload] against [h] (length,
    CRC) and decodes the message.  Never raises. *)
val decode_payload : header -> Bytes.t -> (frame, wire_error) result

(** [decode b] parses one complete frame from [b] (header + payload,
    trailing bytes rejected as [Malformed]).  Never raises. *)
val decode : Bytes.t -> (frame, wire_error) result
