(** [gklockd] — the oracle-as-a-service daemon.

    The server owns a fleet of locked-design oracles: each hosted design
    is combinationalized once, compiled to a {!Netlist.Engine} and
    wrapped in one shared {!Oracle.t}.  Clients speak the {!Wire}
    protocol over a Unix-domain or TCP socket; the accept loop hands
    each connection to a reader thread, and evaluation happens on
    per-design flusher threads:

    - {b scalar coalescing}: [Query] frames from {e all} clients of a
      design land in one pending queue.  The flusher drains a word as
      soon as {!config.flush_lanes} lanes are pending, or after
      {!config.flush_delay_s} from the oldest entry — so a lone client
      pays at most the flush delay while a busy server packs full
      63-lane words into every engine pass.
    - {b per-client quotas}: every connection gets its own {!Budget.t}
      ({!config.max_queries_per_client} / {!config.client_deadline_s}).
      Lanes are charged at {e flush} time: a client whose quota expired
      while its queries sat in the queue receives structured
      [over_quota] error frames and its lanes never reach the engine;
      other clients' lanes in the same word are unaffected.
    - {b explicit batches}: [Query_batch] bypasses the queue, is charged
      up front, and runs through {!Oracle.query_batch} in one pass.

    Evaluation is serialized per design: explicit [Query_batch] frames
    (reader threads) and coalesced words (the flusher) take the same
    per-design oracle mutex, because the shared {!Oracle.t}'s engine
    scratch and memo are not safe under concurrent use.

    Instrumentation (all via {!Obs}): [gklockd.connections] /
    [gklockd.queries] / [gklockd.bad_frames] / [gklockd.over_quota]
    counters, a per-client [gklockd.client_queries.<name>] counter
    (capped at 256 distinct names; further names — and clients that
    never send a [Hello] — share [gklockd.client_queries.other]), the
    [gklockd.queue_depth] gauge, the [gklockd.batch_fill] histogram
    (observed {e once per flush} with the number of coalesced lanes) and
    [gklockd.flush] / [gklockd.request] trace spans.  With
    {!config.metrics_out} set, the whole metrics registry — including
    the oracle's [oracle.memo_evictions] and batch-fill counters — is
    dumped periodically and once more on shutdown.

    Shutdown: a [Shutdown] frame (honored on Unix-socket listeners
    always, on TCP only with {!config.allow_tcp_shutdown}) or {!stop}
    closes the listener,
    drains and joins every thread, closes every connection, unlinks the
    Unix socket file and writes the final metrics dump.  {!wait} returns
    only after all of that, so "no orphaned threads, no socket file" is
    testable. *)

type config = {
  flush_lanes : int;
      (** coalesced lanes that force a flush (default 63 = one engine
          word) *)
  flush_delay_s : float;
      (** max time a pending scalar query waits for lane-mates (default
          2 ms) *)
  max_queries_per_client : int option;  (** per-connection query quota *)
  client_deadline_s : float option;
      (** per-connection wall-clock quota, from accept time *)
  oracle_memo : bool;  (** memoize server-side (default true) *)
  oracle_memo_cap : int option;
      (** bound resident memo entries per design (default 65536) *)
  strict_queries : bool;
      (** reject assignments naming unknown pins instead of ignoring
          them (default false: a remote chip reads undriven pins as 0) *)
  allow_tcp_shutdown : bool;
      (** honor [Shutdown] frames on a TCP listener (default false:
          anyone who can reach the port could otherwise kill the
          daemon; a denied request gets a structured [not_permitted]
          error).  Unix-socket listeners always honor [Shutdown] — the
          socket path is in the process's own trust domain. *)
  metrics_out : string option;  (** periodic metrics dump target *)
  metrics_interval_s : float;  (** dump period (default 5 s) *)
  server_name : string;  (** advertised in [Hello_ack] *)
}

val default_config : config

type t

(** [create ~config ~listen designs] binds the socket and compiles an
    oracle per design ([(name, netlist)]; sequential netlists are
    combinationalized).  No thread runs yet.
    @raise Invalid_argument on duplicate or empty design names, or a
    non-positive [flush_lanes]/[flush_delay_s].
    @raise Unix.Unix_error if the address cannot be bound. *)
val create :
  config:config -> listen:Frame_io.addr -> (string * Netlist.t) list -> t

(** The bound address ([Tcp] with the real port when port 0 was asked). *)
val address : t -> Frame_io.addr

(** Start the accept loop, per-design flushers and the metrics dumper.
    Returns immediately. *)
val start : t -> unit

(** Block until the server has fully shut down (via a client [Shutdown]
    frame or {!stop}): all threads joined, connections closed, socket
    file removed, final metrics written.  Idempotent. *)
val wait : t -> unit

(** Initiate shutdown from this process (equivalent to a [Shutdown]
    frame) and {!wait}. *)
val stop : t -> unit

(** [run ~config ~listen designs] is [create] + [start] + [wait] — the
    daemon main loop. *)
val run :
  config:config -> listen:Frame_io.addr -> (string * Netlist.t) list -> unit

(** Currently open client connections (0 after {!wait}) — used by tests
    to prove the malformed-frame fuzz leaks nothing. *)
val live_connections : t -> int

(** The shared server-side oracle of a hosted design, for tests that
    assert on real evaluation counts. *)
val design_oracle : t -> string -> Oracle.t option
