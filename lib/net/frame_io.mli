(** Blocking frame transport over Unix file descriptors.

    One frame at a time, length-prefixed per {!Wire}: the reader pulls
    exactly one header, then exactly the advertised payload.  Short
    reads, interrupted syscalls and mid-frame EOF are all handled here;
    a {!read_frame} result is the only thing the caller's loop has to
    match on — no exception escapes for hostile bytes (genuine
    [Unix_error]s on the descriptor surface as [`Unix]). *)

(** A server or client endpoint address. *)
type addr =
  | Unix_path of string  (** Unix domain socket path *)
  | Tcp of string * int  (** host, port *)

(** [parse_addr s] accepts ["unix:PATH"], ["tcp:HOST:PORT"], and a bare
    path (treated as a Unix socket).  Port 0 is accepted for the listen
    side: the kernel picks an ephemeral port and {!Gkd_server.address}
    reports the real one (the daemon prints it in its "listening on"
    line) — bind-then-read-back, never pick-and-hope. *)
val parse_addr : string -> (addr, string) result

val addr_to_string : addr -> string

(** [listen ?backlog addr] binds and listens.  A stale Unix socket file
    left by a dead process is unlinked first.
    @raise Unix.Unix_error on bind/listen failure. *)
val listen : ?backlog:int -> addr -> Unix.file_descr

(** [connect addr] is a connected client descriptor.
    @raise Unix.Unix_error when nothing is listening. *)
val connect : addr -> Unix.file_descr

type read_error =
  [ `Eof  (** clean EOF at a frame boundary *)
  | `Wire of Wire.wire_error  (** bad header/payload (or mid-frame EOF) *)
  | `Unix of Unix.error ]

val read_error_message : read_error -> string

(** [read_frame fd] blocks for one complete frame. *)
val read_frame : Unix.file_descr -> (Wire.frame, read_error) result

(** [write_frame fd ~id msg] writes one complete frame, retrying short
    writes.  @raise Unix.Unix_error (e.g. [EPIPE]) on a dead peer. *)
val write_frame : Unix.file_descr -> id:int -> Wire.msg -> unit
