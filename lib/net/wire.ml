let protocol_version = 1
let header_bytes = 16
let max_payload = 1 lsl 24

(* ----- CRC-32 (IEEE 802.3), table-driven ----- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 b ~pos ~len =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.unsafe_get b i)))) 0xFFl)
    in
    c := Int32.logxor (Int32.shift_right_logical !c 8) t.(idx)
  done;
  Int32.logxor !c 0xFFFFFFFFl

(* ----- error codes ----- *)

type error_code =
  | Bad_frame
  | Bad_payload
  | Unsupported_version
  | Unknown_type
  | Unknown_design
  | Over_quota_queries
  | Over_quota_deadline
  | Bad_query
  | Not_permitted
  | Shutting_down
  | Server_error

let error_codes =
  [
    (Bad_frame, 0x01, "bad_frame");
    (Bad_payload, 0x02, "bad_payload");
    (Unsupported_version, 0x03, "unsupported_version");
    (Unknown_type, 0x04, "unknown_type");
    (Unknown_design, 0x10, "unknown_design");
    (Over_quota_queries, 0x11, "over_quota_queries");
    (Over_quota_deadline, 0x12, "over_quota_deadline");
    (Bad_query, 0x13, "bad_query");
    (Not_permitted, 0x14, "not_permitted");
    (Shutting_down, 0x20, "shutting_down");
    (Server_error, 0x21, "server_error");
  ]

let error_code_byte c =
  let _, b, _ = List.find (fun (c', _, _) -> c' = c) error_codes in
  b

let error_code_of_byte b =
  List.find_map (fun (c, b', _) -> if b = b' then Some c else None) error_codes

let error_code_name c =
  let _, _, n = List.find (fun (c', _, _) -> c' = c) error_codes in
  n

(* ----- messages ----- *)

type design_info = {
  d_name : string;
  d_inputs : string list;
  d_outputs : string list;
  d_cells : int;
}

type msg =
  | Hello of { client : string; proto : int }
  | Hello_ack of { server : string; proto : int }
  | List_designs
  | Designs of design_info list
  | Query of { design : string; assignment : (string * bool) list }
  | Result of (string * bool) list
  | Query_batch of {
      design : string;
      assignments : (string * bool) list list;
    }
  | Batch_result of (string * bool) list list
  | Ping
  | Pong
  | Shutdown
  | Shutdown_ack
  | Error of { code : error_code; detail : string }

let msg_type = function
  | Hello _ -> 0x01
  | List_designs -> 0x02
  | Query _ -> 0x03
  | Query_batch _ -> 0x04
  | Ping -> 0x05
  | Shutdown -> 0x06
  | Hello_ack _ -> 0x81
  | Designs _ -> 0x82
  | Result _ -> 0x83
  | Batch_result _ -> 0x84
  | Pong -> 0x85
  | Shutdown_ack -> 0x86
  | Error _ -> 0xFF

let msg_type_name = function
  | Hello _ -> "hello"
  | Hello_ack _ -> "hello_ack"
  | List_designs -> "list_designs"
  | Designs _ -> "designs"
  | Query _ -> "query"
  | Result _ -> "result"
  | Query_batch _ -> "query_batch"
  | Batch_result _ -> "batch_result"
  | Ping -> "ping"
  | Pong -> "pong"
  | Shutdown -> "shutdown"
  | Shutdown_ack -> "shutdown_ack"
  | Error _ -> "error"

type frame = { id : int; msg : msg }

type wire_error =
  | Truncated of { have : int; need : int }
  | Bad_magic
  | Bad_version of int
  | Unknown_msg_type of int
  | Oversized of int
  | Crc_mismatch
  | Malformed of string

let wire_error_message = function
  | Truncated { have; need } ->
    Printf.sprintf "truncated frame: have %d bytes, need %d" have need
  | Bad_magic -> "bad magic (expected \"GK\")"
  | Bad_version v ->
    Printf.sprintf "unsupported protocol version %d (speaking %d)" v
      protocol_version
  | Unknown_msg_type t -> Printf.sprintf "unknown message type 0x%02x" t
  | Oversized n ->
    Printf.sprintf "payload length %d exceeds the %d-byte cap" n max_payload
  | Crc_mismatch -> "payload CRC mismatch"
  | Malformed d -> "malformed payload: " ^ d

let error_code_of_wire_error = function
  | Truncated _ | Bad_magic | Crc_mismatch -> Bad_frame
  | Bad_version _ -> Unsupported_version
  | Unknown_msg_type _ -> Unknown_type
  | Oversized _ | Malformed _ -> Bad_payload

(* ----- encoding ----- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  if v < 0 || v > 0xffff then invalid_arg "Wire.encode: u16 out of range";
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.encode: u32 out of range";
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_str b s =
  put_u16 b (String.length s);
  Buffer.add_string b s

let put_assignment b a =
  put_u16 b (List.length a);
  List.iter
    (fun (name, v) ->
      put_str b name;
      put_u8 b (if v then 1 else 0))
    a

let encode_payload msg =
  let b = Buffer.create 64 in
  (match msg with
  | Hello { client; proto } ->
    put_str b client;
    put_u8 b proto
  | Hello_ack { server; proto } ->
    put_str b server;
    put_u8 b proto
  | List_designs | Ping | Pong | Shutdown | Shutdown_ack -> ()
  | Designs ds ->
    put_u16 b (List.length ds);
    List.iter
      (fun d ->
        put_str b d.d_name;
        put_u32 b d.d_cells;
        put_u16 b (List.length d.d_inputs);
        List.iter (put_str b) d.d_inputs;
        put_u16 b (List.length d.d_outputs);
        List.iter (put_str b) d.d_outputs)
      ds
  | Query { design; assignment } ->
    put_str b design;
    put_assignment b assignment
  | Result a -> put_assignment b a
  | Query_batch { design; assignments } ->
    put_str b design;
    put_u32 b (List.length assignments);
    List.iter (put_assignment b) assignments
  | Batch_result rs ->
    put_u32 b (List.length rs);
    List.iter (put_assignment b) rs
  | Error { code; detail } ->
    put_u8 b (error_code_byte code);
    put_str b detail);
  Buffer.to_bytes b

let encode ~id msg =
  if id < 0 || id > 0xFFFFFFFF then
    invalid_arg "Wire.encode: request id out of u32 range";
  let payload = encode_payload msg in
  let len = Bytes.length payload in
  if len > max_payload then
    invalid_arg
      (Printf.sprintf "Wire.encode: payload %d exceeds max_payload" len);
  let crc = crc32 payload ~pos:0 ~len in
  let f = Bytes.create (header_bytes + len) in
  Bytes.set f 0 'G';
  Bytes.set f 1 'K';
  Bytes.set f 2 (Char.chr protocol_version);
  Bytes.set f 3 (Char.chr (msg_type msg));
  Bytes.set_int32_be f 4 (Int32.of_int id);
  Bytes.set_int32_be f 8 (Int32.of_int len);
  Bytes.set_int32_be f 12 crc;
  Bytes.blit payload 0 f header_bytes len;
  f

(* ----- decoding -----

   Payload parsing runs inside a cursor whose reads raise a local
   [Bad] exception on any bounds or structure violation; the single
   [catch] in [decode_payload] converts that to [Malformed] so no
   exception ever escapes to the read loop. *)

type header = {
  h_version : int;
  h_type : int;
  h_id : int;
  h_len : int;
  h_crc : int32;
}

let u32_be b pos = Int32.to_int (Bytes.get_int32_be b pos) land 0xFFFFFFFF

let decode_header b =
  let have = Bytes.length b in
  if have < header_bytes then
    Stdlib.Error (Truncated { have; need = header_bytes })
  else if not (Bytes.get b 0 = 'G' && Bytes.get b 1 = 'K') then
    Stdlib.Error Bad_magic
  else
    let v = Char.code (Bytes.get b 2) in
    if v <> protocol_version then Stdlib.Error (Bad_version v)
    else
      let len = u32_be b 8 in
      if len > max_payload then Stdlib.Error (Oversized len)
      else
        Stdlib.Ok
          {
            h_version = v;
            h_type = Char.code (Bytes.get b 3);
            h_id = u32_be b 4;
            h_len = len;
            h_crc = Bytes.get_int32_be b 12;
          }

exception Bad of string

type cursor = { buf : Bytes.t; mutable pos : int; stop : int }

let need c n =
  if c.stop - c.pos < n then
    raise (Bad (Printf.sprintf "need %d bytes at offset %d" n c.pos))

let get_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  need c 2;
  let v = (Char.code (Bytes.get c.buf c.pos) lsl 8) lor Char.code (Bytes.get c.buf (c.pos + 1)) in
  c.pos <- c.pos + 2;
  v

let get_u32 c =
  need c 4;
  let v = u32_be c.buf c.pos in
  c.pos <- c.pos + 4;
  v

let get_str c =
  let n = get_u16 c in
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | v -> raise (Bad (Printf.sprintf "pin value byte 0x%02x (want 0/1)" v))

(* [List.init]'s argument-evaluation order is unspecified; cursor reads
   must happen left-to-right, so build lists with an explicit loop. *)
let read_list n f =
  let rec go acc i = if i = 0 then List.rev acc else go (f () :: acc) (i - 1) in
  go [] n

let get_assignment c =
  let n = get_u16 c in
  read_list n (fun () ->
      let name = get_str c in
      let v = get_bool c in
      (name, v))

let decode_msg mtype c =
  match mtype with
  | 0x01 ->
    let client = get_str c in
    let proto = get_u8 c in
    Hello { client; proto }
  | 0x81 ->
    let server = get_str c in
    let proto = get_u8 c in
    Hello_ack { server; proto }
  | 0x02 -> List_designs
  | 0x82 ->
    let n = get_u16 c in
    Designs
      (read_list n (fun () ->
           let d_name = get_str c in
           let d_cells = get_u32 c in
           let ni = get_u16 c in
           let d_inputs = read_list ni (fun () -> get_str c) in
           let no = get_u16 c in
           let d_outputs = read_list no (fun () -> get_str c) in
           { d_name; d_inputs; d_outputs; d_cells }))
  | 0x03 ->
    let design = get_str c in
    let assignment = get_assignment c in
    Query { design; assignment }
  | 0x83 -> Result (get_assignment c)
  | 0x04 ->
    let design = get_str c in
    let n = get_u32 c in
    (* the count field is attacker-controlled: bound it by what the
       payload could possibly hold before allocating the list *)
    if n > c.stop - c.pos then raise (Bad "batch count exceeds payload");
    Query_batch { design; assignments = read_list n (fun () -> get_assignment c) }
  | 0x84 ->
    let n = get_u32 c in
    if n > c.stop - c.pos then raise (Bad "batch count exceeds payload");
    Batch_result (read_list n (fun () -> get_assignment c))
  | 0x05 -> Ping
  | 0x85 -> Pong
  | 0x06 -> Shutdown
  | 0x86 -> Shutdown_ack
  | 0xFF ->
    let cb = get_u8 c in
    let code =
      match error_code_of_byte cb with
      | Some code -> code
      | None -> raise (Bad (Printf.sprintf "unknown error code 0x%02x" cb))
    in
    let detail = get_str c in
    Error { code; detail }
  | t -> raise (Bad (Printf.sprintf "type 0x%02x" t))

let known_type t =
  List.mem t [ 0x01; 0x02; 0x03; 0x04; 0x05; 0x06; 0x81; 0x82; 0x83; 0x84; 0x85; 0x86; 0xFF ]

let decode_payload h payload =
  let have = Bytes.length payload in
  if have < h.h_len then
    Stdlib.Error (Truncated { have = header_bytes + have; need = header_bytes + h.h_len })
  else if have > h.h_len then
    Stdlib.Error (Malformed "trailing bytes after payload")
  else if not (known_type h.h_type) then Stdlib.Error (Unknown_msg_type h.h_type)
  else if crc32 payload ~pos:0 ~len:h.h_len <> h.h_crc then
    Stdlib.Error Crc_mismatch
  else
    let c = { buf = payload; pos = 0; stop = h.h_len } in
    match decode_msg h.h_type c with
    | msg ->
      if c.pos <> c.stop then Stdlib.Error (Malformed "trailing bytes in payload")
      else Stdlib.Ok { id = h.h_id; msg }
    | exception Bad d -> Stdlib.Error (Malformed d)

let decode b =
  match decode_header b with
  | Stdlib.Error e -> Stdlib.Error e
  | Ok h ->
    let have = Bytes.length b - header_bytes in
    if have < h.h_len then
      Stdlib.Error (Truncated { have = Bytes.length b; need = header_bytes + h.h_len })
    else decode_payload h (Bytes.sub b header_bytes (Bytes.length b - header_bytes))
