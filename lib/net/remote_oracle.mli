(** Client side of the oracle service: an {!Oracle.t} whose chip lives
    behind a [gklockd] socket.

    {!connect} performs the [Hello] version handshake, picks a design
    (explicitly, or the sole hosted one) and returns a handle whose
    {!oracle} is a black-box {!Oracle.of_fn} — so every attack in
    {!Attack.registry} runs against the daemon unmodified.  Scalar
    queries map to [Query] frames; {!Oracle.query_batch} ships memo
    misses as one [Query_batch] frame, keeping 63-lane words full across
    the wire.

    Budget semantics survive the network: a structured [over_quota]
    error frame from the server raises {!Budget.Exhausted} with the
    corresponding reason, which {!Attack.run} already converts to an
    [Out_of_budget] verdict.  Every other error frame raises
    {!Remote_error}.

    The client-side memo (on by default) means a memo hit never crosses
    the wire; pass [~memo:false] to benchmark raw round trips.

    Handles are not thread-safe: one connection, one in-flight request. *)

(** A structured error frame from the server (or a broken transport,
    reported as {!Wire.Server_error} with a detail string). *)
exception Remote_error of Wire.error_code * string

type t

(** [connect ?client ?design ?memo ?memo_cap addr] dials [addr], runs
    the [Hello] handshake, and binds to [design].  When [design] is
    omitted the server must host exactly one design.
    @raise Remote_error on a version mismatch or unknown design.
    @raise Unix.Unix_error when nothing is listening at [addr]. *)
val connect :
  ?client:string -> ?design:string -> ?memo:bool -> ?memo_cap:int ->
  Frame_io.addr -> t

(** The oracle view of the connection.  Black-box: [input_names] is [[]]
    and queries are always partial, exactly like any {!Oracle.of_fn}. *)
val oracle : t -> Oracle.t

(** The design this handle is bound to. *)
val design : t -> string

(** What the server advertised in [Hello_ack]. *)
val server_name : t -> string

(** Designs hosted by the server (fetched during {!connect}). *)
val designs : t -> Wire.design_info list

(** Round-trip a [Ping]; returns the elapsed seconds. *)
val ping : t -> float

(** Ask the server to shut down ([Shutdown] frame, awaits the ack). *)
val shutdown_server : t -> unit

(** Close the connection.  Idempotent; the handle is dead afterwards
    (further queries raise {!Remote_error}). *)
val close : t -> unit
