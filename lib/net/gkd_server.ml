let m_connections = Obs.Metrics.counter "gklockd.connections"
let m_queries = Obs.Metrics.counter "gklockd.queries"
let m_bad_frames = Obs.Metrics.counter "gklockd.bad_frames"
let m_over_quota = Obs.Metrics.counter "gklockd.over_quota"
let m_flushes = Obs.Metrics.counter "gklockd.flushes"
let g_queue_depth = Obs.Metrics.gauge "gklockd.queue_depth"
let h_batch_fill = Obs.Metrics.histogram "gklockd.batch_fill"
let h_queue_wait = Obs.Metrics.histogram "gklockd.queue_wait_s"

(* Per-client query counters are keyed by the client-chosen [Hello]
   name, which is attacker-controlled: cap how many distinct counters a
   long-running daemon will ever register, and fold the rest (and
   clients that never send a [Hello]) into one shared counter. *)
let max_client_counters = 256
let m_other_queries = Obs.Metrics.counter "gklockd.client_queries.other"

type config = {
  flush_lanes : int;
  flush_delay_s : float;
  max_queries_per_client : int option;
  client_deadline_s : float option;
  oracle_memo : bool;
  oracle_memo_cap : int option;
  strict_queries : bool;
  allow_tcp_shutdown : bool;
  metrics_out : string option;
  metrics_interval_s : float;
  server_name : string;
}

let default_config =
  {
    flush_lanes = Netlist.Engine.word_bits;
    flush_delay_s = 0.002;
    max_queries_per_client = None;
    client_deadline_s = None;
    oracle_memo = true;
    oracle_memo_cap = Some 65536;
    strict_queries = false;
    allow_tcp_shutdown = false;
    metrics_out = None;
    metrics_interval_s = 5.0;
    server_name = "gklockd/1";
  }

type conn = {
  c_fd : Unix.file_descr;
  mutable c_name : string;
  c_budget : Budget.t;
  c_wmu : Mutex.t;  (* serializes frame writes; guards c_closed *)
  mutable c_closed : bool;
  mutable c_counter : Obs.Metrics.counter;
}

type pending = {
  p_conn : conn;
  p_id : int;
  p_q : (string * bool) list;
  p_t : float;  (* arrival time, for queue-wait accounting *)
}

type design = {
  ds_name : string;
  ds_oracle : Oracle.t;
  ds_omu : Mutex.t;
      (* serializes every [Oracle.query_batch] on [ds_oracle]: the
         oracle's engine scratch and memo table are shared mutable
         state, and evaluations run both on reader threads (explicit
         [Query_batch] frames) and on the design's flusher thread *)
  ds_info : Wire.design_info;
  ds_mu : Mutex.t;
  ds_nonempty : Condition.t;
  ds_q : pending Queue.t;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Frame_io.addr;
  designs : design list;
  by_name : (string, design) Hashtbl.t;
  client_counters : (string, Obs.Metrics.counter) Hashtbl.t;
      (* client-name -> counter, bounded by [max_client_counters] *)
  mu : Mutex.t;  (* conns / readers / lifecycle state *)
  stop_cond : Condition.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable listener_closed : bool;
  mutable acceptor : Thread.t option;
  mutable flushers : Thread.t list;
  mutable dumper : Thread.t option;
  mutable next_conn : int;
}

(* ----- creation ----- *)

let combinational net =
  if Netlist.ffs net = [] then net else fst (Combinationalize.run net)

let mk_design cfg (name, net) =
  if name = "" then invalid_arg "Gkd_server.create: empty design name";
  let comb = combinational net in
  let oracle =
    Oracle.of_netlist ~partial:(not cfg.strict_queries) ~memo:cfg.oracle_memo
      ?memo_cap:cfg.oracle_memo_cap comb
  in
  {
    ds_name = name;
    ds_oracle = oracle;
    ds_omu = Mutex.create ();
    ds_info =
      {
        Wire.d_name = name;
        d_inputs = Oracle.input_names oracle;
        d_outputs = List.map fst (Netlist.outputs comb);
        d_cells = Netlist.num_nodes comb;
      };
    ds_mu = Mutex.create ();
    ds_nonempty = Condition.create ();
    ds_q = Queue.create ();
  }

let create ~config ~listen designs =
  if config.flush_lanes < 1 then
    invalid_arg "Gkd_server.create: flush_lanes must be >= 1";
  if config.flush_delay_s <= 0.0 then
    invalid_arg "Gkd_server.create: flush_delay_s must be > 0";
  let by_name = Hashtbl.create 8 in
  let designs =
    List.map
      (fun d ->
        let ds = mk_design config d in
        if Hashtbl.mem by_name ds.ds_name then
          invalid_arg
            (Printf.sprintf "Gkd_server.create: duplicate design %S" ds.ds_name);
        Hashtbl.replace by_name ds.ds_name ds;
        ds)
      designs
  in
  let listen_fd = Frame_io.listen listen in
  let bound =
    match listen with
    | Frame_io.Tcp (host, 0) -> (
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, port) -> Frame_io.Tcp (host, port)
      | _ -> listen)
    | a -> a
  in
  {
    cfg = config;
    listen_fd;
    bound;
    designs;
    by_name;
    client_counters = Hashtbl.create 16;
    mu = Mutex.create ();
    stop_cond = Condition.create ();
    conns = [];
    readers = [];
    stopping = false;
    stopped = false;
    listener_closed = false;
    acceptor = None;
    flushers = [];
    dumper = None;
    next_conn = 0;
  }

let address t = t.bound

let live_connections t =
  Mutex.lock t.mu;
  let n = List.length t.conns in
  Mutex.unlock t.mu;
  n

let design_oracle t name =
  Option.map (fun ds -> ds.ds_oracle) (Hashtbl.find_opt t.by_name name)

(* ----- replies -----

   Writes to a connection come from its reader thread and from flusher
   threads, so they serialize on [c_wmu]; the same mutex guards
   [c_closed], which the close path sets before releasing the fd, so a
   late reply to a dead client is a silent no-op instead of a write to a
   recycled descriptor.

   [reply] must never raise: it runs on flusher threads, where an
   escaping exception would kill the flusher and permanently hang every
   scalar client of the design.  Beyond socket errors, [Wire.encode]
   raises [Invalid_argument] when the reply itself cannot be framed — a
   [Batch_result] can exceed [Wire.max_payload] even though the request
   fit (designs with more/longer output names than inputs) — so that
   case degrades to a structured [Server_error] frame telling the
   client to split its batch. *)

let reply conn ~id msg =
  Mutex.lock conn.c_wmu;
  (try
     if not conn.c_closed then
       try Frame_io.write_frame conn.c_fd ~id msg
       with Invalid_argument _ -> (
         match msg with
         | Wire.Error _ -> ()  (* unencodable error frame: give up *)
         | _ ->
           Frame_io.write_frame conn.c_fd ~id
             (Wire.Error
                {
                  code = Wire.Server_error;
                  detail =
                    Printf.sprintf
                      "reply (%s) exceeds the %d-byte frame cap; split the \
                       batch into smaller chunks"
                      (Wire.msg_type_name msg) Wire.max_payload;
                }))
   with Unix.Unix_error _ | Sys_error _ -> ());
  Mutex.unlock conn.c_wmu

let reply_error conn ~id code detail =
  reply conn ~id (Wire.Error { code; detail })

let quota_code = function
  | Budget.Queries | Budget.Iterations -> Wire.Over_quota_queries
  | Budget.Deadline -> Wire.Over_quota_deadline

(* ----- shutdown plumbing ----- *)

(* Only ever close the listener once; the acceptor thread normally does
   it on exit (closing the fd under a blocked [accept] in another thread
   would not wake it and risks fd reuse). *)
let close_listener t =
  Mutex.lock t.mu;
  if not t.listener_closed then begin
    t.listener_closed <- true;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock t.mu

let initiate_stop t =
  Mutex.lock t.mu;
  let first = not t.stopping in
  if first then begin
    t.stopping <- true;
    Condition.broadcast t.stop_cond
  end;
  Mutex.unlock t.mu;
  if first then begin
    (* wake the acceptor: shutdown unblocks a pending [accept] on
       Linux, and the nudge connection covers platforms where it does
       not — the acceptor sees [stopping] either way and exits *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close (Frame_io.connect t.bound) with
    | Unix.Unix_error _ | Sys_error _ -> ());
    List.iter
      (fun ds ->
        Mutex.lock ds.ds_mu;
        Condition.broadcast ds.ds_nonempty;
        Mutex.unlock ds.ds_mu)
      t.designs
  end

(* Reader-side connection teardown.  Membership in [t.conns] is the
   invariant "fd is open": both close (here) and the shutdown wake-up in
   [wait] run under [t.mu], so neither ever touches a recycled fd. *)
let close_conn t conn =
  Mutex.lock t.mu;
  if List.memq conn t.conns then begin
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    Mutex.lock conn.c_wmu;
    conn.c_closed <- true;
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    Mutex.unlock conn.c_wmu
  end;
  Mutex.unlock t.mu

(* ----- request handling (reader threads) ----- *)

let sanitize_name s =
  let s = if String.length s > 64 then String.sub s 0 64 else s in
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ch
      | _ -> '_')
    s

let find_design t name = Hashtbl.find_opt t.by_name name

(* All engine work on a design funnels through here: reader threads
   (explicit batches) and the design's flusher contend on [ds_omu], so
   the oracle's scratch buffers and memo are only ever touched by one
   thread at a time. *)
let oracle_batch ds qs =
  Mutex.lock ds.ds_omu;
  match Oracle.query_batch ds.ds_oracle qs with
  | rs ->
    Mutex.unlock ds.ds_omu;
    rs
  | exception e ->
    Mutex.unlock ds.ds_omu;
    raise e

let client_counter t name =
  Mutex.lock t.mu;
  let c =
    match Hashtbl.find_opt t.client_counters name with
    | Some c -> c
    | None ->
      if Hashtbl.length t.client_counters >= max_client_counters then
        m_other_queries
      else begin
        let c = Obs.Metrics.counter ("gklockd.client_queries." ^ name) in
        Hashtbl.replace t.client_counters name c;
        c
      end
  in
  Mutex.unlock t.mu;
  c

(* Returns [false] when the reader loop should stop. *)
let handle t conn ~id msg =
  Obs.Trace.with_span
    ~args:
      [
        ("type", Cjson.Str (Wire.msg_type_name msg));
        ("client", Cjson.Str conn.c_name);
      ]
    "gklockd.request"
    (fun () ->
      match msg with
      | Wire.Hello { client; proto } ->
        if proto <> Wire.protocol_version then begin
          reply_error conn ~id Wire.Unsupported_version
            (Printf.sprintf "server speaks protocol %d, client asked for %d"
               Wire.protocol_version proto);
          true
        end
        else begin
          conn.c_name <- sanitize_name client;
          conn.c_counter <- client_counter t conn.c_name;
          reply conn ~id
            (Wire.Hello_ack
               { server = t.cfg.server_name; proto = Wire.protocol_version });
          true
        end
      | Wire.List_designs ->
        reply conn ~id (Wire.Designs (List.map (fun d -> d.ds_info) t.designs));
        true
      | Wire.Ping ->
        reply conn ~id Wire.Pong;
        true
      | Wire.Shutdown -> (
        (* on a unix: socket, anyone who can open the path may stop the
           daemon (same trust domain as the process); on tcp: any
           reachable host could, so remote shutdown is opt-in there *)
        match t.bound with
        | Frame_io.Tcp _ when not t.cfg.allow_tcp_shutdown ->
          reply_error conn ~id Wire.Not_permitted
            "shutdown over tcp is disabled (start the server with \
             allow_tcp_shutdown / --allow-tcp-shutdown to enable it)";
          true
        | Frame_io.Unix_path _ | Frame_io.Tcp _ ->
          reply conn ~id Wire.Shutdown_ack;
          initiate_stop t;
          false)
      | Wire.Query { design; assignment } -> (
        match find_design t design with
        | None ->
          reply_error conn ~id Wire.Unknown_design
            (Printf.sprintf "design %S is not hosted here" design);
          true
        | Some ds ->
          if t.stopping then begin
            reply_error conn ~id Wire.Shutting_down "server is shutting down";
            true
          end
          else begin
            Mutex.lock ds.ds_mu;
            Queue.push
              { p_conn = conn; p_id = id; p_q = assignment;
                p_t = Unix.gettimeofday () }
              ds.ds_q;
            let depth = Queue.length ds.ds_q in
            Condition.signal ds.ds_nonempty;
            Mutex.unlock ds.ds_mu;
            Obs.Metrics.set g_queue_depth (float_of_int depth);
            true
          end)
      | Wire.Query_batch { design; assignments } -> (
        match find_design t design with
        | None ->
          reply_error conn ~id Wire.Unknown_design
            (Printf.sprintf "design %S is not hosted here" design);
          true
        | Some ds -> (
          let n = List.length assignments in
          match Budget.note_queries conn.c_budget n with
          | exception Budget.Exhausted r ->
            Obs.Metrics.incr m_over_quota;
            reply_error conn ~id (quota_code r)
              (Printf.sprintf "batch of %d refused: client %s quota exhausted"
                 n (Budget.reason_name r));
            true
          | () -> (
            Obs.Metrics.add m_queries n;
            Obs.Metrics.add conn.c_counter n;
            match oracle_batch ds assignments with
            | rs ->
              reply conn ~id (Wire.Batch_result rs);
              true
            | exception Invalid_argument m ->
              reply_error conn ~id Wire.Bad_query m;
              true
            | exception e ->
              reply_error conn ~id Wire.Server_error (Printexc.to_string e);
              true)))
      | Wire.Hello_ack _ | Wire.Designs _ | Wire.Result _
      | Wire.Batch_result _ | Wire.Pong | Wire.Shutdown_ack | Wire.Error _ ->
        (* server-to-client messages arriving at the server *)
        reply_error conn ~id Wire.Bad_payload
          (Printf.sprintf "unexpected %s frame from a client"
             (Wire.msg_type_name msg));
        true)

let reader t conn () =
  let rec loop () =
    match Frame_io.read_frame conn.c_fd with
    | Ok { Wire.id; msg } -> if handle t conn ~id msg then loop ()
    | Error `Eof -> ()
    | Error (`Wire w) ->
      (* hostile or corrupt bytes: answer with a structured error frame
         and drop the connection — a byte stream cannot be resynced *)
      Obs.Metrics.incr m_bad_frames;
      reply_error conn ~id:0
        (Wire.error_code_of_wire_error w)
        (Wire.wire_error_message w)
    | Error (`Unix _) -> ()
  in
  (try loop () with _ -> ());
  close_conn t conn

(* ----- the coalescing flusher (one thread per design) ----- *)

let flush ds lanes =
  let n_lanes = List.length lanes in
  Obs.Metrics.incr m_flushes;
  Obs.Metrics.observe h_batch_fill (float_of_int n_lanes);
  Obs.Trace.with_span
    ~args:
      [ ("design", Cjson.Str ds.ds_name); ("lanes", Cjson.Int n_lanes) ]
    "gklockd.flush"
    (fun () ->
      let now = Unix.gettimeofday () in
      (* charge each lane against its client's own budget; a quota that
         expired while the query sat in the queue drops the lane here,
         before any engine work, without disturbing its word-mates *)
      let survivors =
        List.filter
          (fun p ->
            Obs.Metrics.observe h_queue_wait (now -. p.p_t);
            match Budget.note_queries p.p_conn.c_budget 1 with
            | () -> true
            | exception Budget.Exhausted r ->
              Obs.Metrics.incr m_over_quota;
              reply_error p.p_conn ~id:p.p_id (quota_code r)
                (Printf.sprintf
                   "query dropped at flush: client %s quota exhausted"
                   (Budget.reason_name r));
              false)
          lanes
      in
      if survivors <> [] then begin
        Obs.Metrics.add m_queries (List.length survivors);
        List.iter
          (fun p -> Obs.Metrics.incr p.p_conn.c_counter)
          survivors;
        match oracle_batch ds (List.map (fun p -> p.p_q) survivors) with
        | rs ->
          List.iter2
            (fun p r -> reply p.p_conn ~id:p.p_id (Wire.Result r))
            survivors rs
        | exception Invalid_argument m ->
          List.iter
            (fun p -> reply_error p.p_conn ~id:p.p_id Wire.Bad_query m)
            survivors
        | exception e ->
          let m = Printexc.to_string e in
          List.iter
            (fun p -> reply_error p.p_conn ~id:p.p_id Wire.Server_error m)
            survivors
      end)

let flusher t ds () =
  let rec loop () =
    Mutex.lock ds.ds_mu;
    while Queue.is_empty ds.ds_q && not t.stopping do
      Condition.wait ds.ds_nonempty ds.ds_mu
    done;
    if Queue.is_empty ds.ds_q then (* stopping, nothing left *)
      Mutex.unlock ds.ds_mu
    else begin
      (* flush policy: a full word flushes immediately; otherwise wait
         out the remainder of flush_delay_s from the oldest arrival.
         [Condition] has no timed wait, so the delay is slept in small
         slices with the queue re-checked between them. *)
      let oldest = (Queue.peek ds.ds_q).p_t in
      let rec settle () =
        if
          Queue.length ds.ds_q < t.cfg.flush_lanes
          && (not t.stopping)
          && Unix.gettimeofday () -. oldest < t.cfg.flush_delay_s
        then begin
          Mutex.unlock ds.ds_mu;
          Thread.delay (min 0.0005 t.cfg.flush_delay_s);
          Mutex.lock ds.ds_mu;
          settle ()
        end
      in
      settle ();
      let lanes = ref [] in
      let k = ref 0 in
      while !k < t.cfg.flush_lanes && not (Queue.is_empty ds.ds_q) do
        lanes := Queue.pop ds.ds_q :: !lanes;
        incr k
      done;
      let depth = Queue.length ds.ds_q in
      Mutex.unlock ds.ds_mu;
      Obs.Metrics.set g_queue_depth (float_of_int depth);
      let lanes = List.rev !lanes in
      (* the flusher must outlive any single bad word: [flush] handles
         engine and reply errors itself, so anything escaping is a bug —
         answer the word's lanes with a structured error rather than
         dying and hanging every future scalar query on this design *)
      (try flush ds lanes
       with e ->
         let m = Printexc.to_string e in
         List.iter
           (fun p -> reply_error p.p_conn ~id:p.p_id Wire.Server_error m)
           lanes);
      loop ()
    end
  in
  loop ()

(* ----- accept loop / metrics dumper ----- *)

let acceptor t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      if t.stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        close_listener t
      end
      else begin
        Obs.Metrics.incr m_connections;
        Mutex.lock t.mu;
        let num = t.next_conn in
        t.next_conn <- num + 1;
        let name = Printf.sprintf "client-%d" num in
        let conn =
          {
            c_fd = fd;
            c_name = name;
            c_budget =
              Budget.create ?max_queries:t.cfg.max_queries_per_client
                ?deadline_s:t.cfg.client_deadline_s ();
            c_wmu = Mutex.create ();
            c_closed = false;
            (* shared until a [Hello] names the client: a fresh counter
               per connection would grow the registry without bound *)
            c_counter = m_other_queries;
          }
        in
        t.conns <- conn :: t.conns;
        t.readers <- Thread.create (reader t conn) () :: t.readers;
        Mutex.unlock t.mu;
        loop ()
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ ->
      (* listener shut down by [initiate_stop] (or died): stop accepting *)
      close_listener t;
      if not t.stopping then initiate_stop t
  in
  loop ()

let write_metrics t =
  match t.cfg.metrics_out with
  | None -> ()
  | Some path -> ( try Obs.Metrics.write_file path with Sys_error _ -> ())

let dumper t () =
  let rec loop () =
    if not t.stopping then begin
      (* sliced sleep so shutdown is not delayed by a long interval *)
      let slept = ref 0.0 in
      while (not t.stopping) && !slept < t.cfg.metrics_interval_s do
        Thread.delay 0.05;
        slept := !slept +. 0.05
      done;
      write_metrics t;
      loop ()
    end
  in
  loop ()

let start t =
  Mutex.lock t.mu;
  if t.acceptor = None && not t.stopping then begin
    t.acceptor <- Some (Thread.create (acceptor t) ());
    t.flushers <- List.map (fun ds -> Thread.create (flusher t ds) ()) t.designs;
    if t.cfg.metrics_out <> None then
      t.dumper <- Some (Thread.create (dumper t) ())
  end;
  Mutex.unlock t.mu

let wait t =
  Mutex.lock t.mu;
  while not t.stopping do
    Condition.wait t.stop_cond t.mu
  done;
  if t.stopped then Mutex.unlock t.mu
  else begin
    Mutex.unlock t.mu;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    close_listener t;
    List.iter Thread.join t.flushers;
    (* wake readers blocked in [read]: shutdown their sockets under
       [t.mu] (fd still open — the conn is still in [t.conns]) *)
    Mutex.lock t.mu;
    List.iter
      (fun c ->
        try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      t.conns;
    let readers = t.readers in
    Mutex.unlock t.mu;
    List.iter Thread.join readers;
    (match t.dumper with Some th -> Thread.join th | None -> ());
    (match t.bound with
    | Frame_io.Unix_path p -> (
      try if Sys.file_exists p then Sys.remove p with Sys_error _ -> ())
    | Frame_io.Tcp _ -> ());
    write_metrics t;
    Mutex.lock t.mu;
    t.stopped <- true;
    Mutex.unlock t.mu
  end

let stop t =
  initiate_stop t;
  wait t

let run ~config ~listen designs =
  let t = create ~config ~listen designs in
  start t;
  wait t
