(** Scan-chain insertion (design-for-test).

    Sec. VI of the paper warns that GKs "may have a weakness when there
    are built-in self-test (BIST) structures such as scan-chain in the
    circuit", because scan access lets a tester drive and observe the
    paths between flip-flops directly.  This module builds the standard
    mux-scan structure so that weakness — and the hybrid counter-measure —
    can be demonstrated: every flip-flop's D input is replaced by
    [MUX(scan_enable; D; previous stage)], the chain head reads a new
    [scan_in] input and the tail drives a new [scan_out] output. *)

type chain = {
  scan_in : string;
  scan_enable : string;
  scan_out : string;
  order : int list;  (** flip-flop ids, head first *)
  scan_muxes : int list;
}

(** [insert net] returns a scan-equipped copy and the chain descriptor.
    Flip-flop order follows declaration order.
    @raise Invalid_argument if the netlist has no flip-flops. *)
val insert : Netlist.t -> Netlist.t * chain

(** [functional_view net chain] is the scan-equipped netlist with
    [scan_enable] tied to 0 and the scan path removed — it must be
    functionally identical to the pre-scan design (used by tests). *)
val functional_view : Netlist.t -> chain -> Netlist.t
