type report = {
  const_folded : int;
  buffers_collapsed : int;
  dead_removed : int;
}

(* Constant-fold one gate given the constant values of some fanins.
   Returns [`Const v], [`Wire id] (the gate degenerates to a fanin or its
   complement is not expressible, so only pure forwarding counts), or
   [`Keep fanins'] with neutral constant inputs dropped. *)
let fold_gate fn fanins const_of =
  let consts = Array.map const_of fanins in
  let dominated value = Array.exists (fun c -> c = Some value) consts in
  let live =
    Array.to_list fanins
    |> List.filteri (fun i _ -> consts.(i) = None)
  in
  let all_const =
    Array.for_all (fun c -> c <> None) consts
  in
  if all_const then begin
    let ins = Array.map (fun c -> Option.get c) consts in
    `Const (Cell.eval fn ins)
  end
  else
    match fn with
    | Cell.And when dominated false -> `Const false
    | Cell.Nand when dominated false -> `Const true
    | Cell.Or when dominated true -> `Const true
    | Cell.Nor when dominated true -> `Const false
    | Cell.And | Cell.Or -> (
      match live with
      | [ single ] when List.length live < Array.length fanins -> `Wire single
      | _ when List.length live < Array.length fanins ->
        `Keep (Array.of_list live)
      | _ -> `Unchanged)
    | Cell.Nand | Cell.Nor ->
      if List.length live < Array.length fanins && List.length live >= 2 then
        `Keep (Array.of_list live)
      else `Unchanged
    | Cell.Mux -> (
      match const_of fanins.(0) with
      | Some false -> `Wire fanins.(1)
      | Some true -> `Wire fanins.(2)
      | None ->
        if fanins.(1) = fanins.(2) then `Wire fanins.(1)
        else `Unchanged)
    | Cell.Buf -> (
      match const_of fanins.(0) with
      | Some v -> `Const v
      | None -> `Wire fanins.(0))
    | Cell.Not -> (
      match const_of fanins.(0) with
      | Some v -> `Const (not v)
      | None -> `Unchanged)
    | Cell.Xor | Cell.Xnor ->
      (* Constant inputs flip or keep the parity; drop them. *)
      let flips =
        Array.fold_left
          (fun acc c -> if c = Some true then not acc else acc)
          false consts
      in
      if List.length live < Array.length fanins then
        match live with
        | [] -> `Const (Cell.eval fn (Array.map Option.get consts))
        | _ when List.length live = 1 && not flips && fn = Cell.Xor ->
          `Wire (List.hd live)
        | _ -> `Unchanged (* polarity-changing folds need a NOT; skip *)
      else `Unchanged

let optimize ?(preserve = fun _ -> false) net =
  let net = Netlist.copy net in
  let const_folded = ref 0 and buffers_collapsed = ref 0 in
  let const_of id =
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Const b -> Some b
    | Netlist.Input | Netlist.Gate _ | Netlist.Lut _ | Netlist.Ff
    | Netlist.Dead -> None
  in
  (* One forward pass in dependency order is enough to propagate constants
     all the way (fold results are visible to later nodes). *)
  List.iter
    (fun id ->
      if not (preserve id) then begin
        let nd = Netlist.node net id in
        match nd.Netlist.kind with
        | Netlist.Gate fn -> (
          match fold_gate fn nd.Netlist.fanins const_of with
          | `Const v ->
            let c = Netlist.add_const net v in
            Netlist.replace_uses net ~old_id:id ~new_id:c;
            incr const_folded
          | `Wire w ->
            Netlist.replace_uses net ~old_id:id ~new_id:w;
            incr buffers_collapsed
          | `Keep fanins' ->
            let cell = Cell_lib.bind fn (Array.length fanins') in
            let g =
              Netlist.add_gate net ~cell fn fanins'
            in
            Netlist.replace_uses net ~old_id:id ~new_id:g;
            incr const_folded
          | `Unchanged -> ())
        | Netlist.Input | Netlist.Const _ | Netlist.Lut _ | Netlist.Ff
        | Netlist.Dead -> ()
      end)
    (Netlist.comb_topo_order net);
  (* Dead sweep: anything unreachable from a PO or a FF D pin dies. *)
  let reachable = Array.make (Netlist.num_nodes net) false in
  let rec mark id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      Array.iter mark (Netlist.node net id).Netlist.fanins
    end
  in
  List.iter (fun (_, d) -> mark d) (Netlist.outputs net);
  List.iter mark (Netlist.ffs net);
  List.iter mark (Netlist.inputs net);
  let dead_removed = ref 0 in
  for id = 0 to Netlist.num_nodes net - 1 do
    let nd = Netlist.node net id in
    if
      (not reachable.(id))
      && (match nd.Netlist.kind with
         | Netlist.Gate _ | Netlist.Lut _ | Netlist.Ff -> true
         | Netlist.Input | Netlist.Const _ | Netlist.Dead -> false)
      && not (preserve id)
    then begin
      Netlist.kill net id;
      incr dead_removed
    end
  done;
  let net, _ = Netlist.compact net in
  Netlist.validate net;
  ( net,
    {
      const_folded = !const_folded;
      buffers_collapsed = !buffers_collapsed;
      dead_removed = !dead_removed;
    } )

let pp_report ppf r =
  Format.fprintf ppf "folded=%d collapsed=%d dead=%d" r.const_folded
    r.buffers_collapsed r.dead_removed
