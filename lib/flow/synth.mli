(** Netlist cleanup optimizations — the re-synthesis step of the flow.

    Plays Design Compiler's role at the points the paper needs it: after a
    removal attack excises a security structure (constants get propagated,
    dangling logic swept) and after TDK removal ("the netlist after this
    removal can be re-synthesized to fix the timing violations, then SAT
    attack can be applied further").

    The [preserve] predicate protects intentional structures — GK/KEYGEN
    delay chains are buffers that a naive optimizer would happily collapse,
    which is exactly why the paper re-synthesizes {i with design
    constraints}; [preserve] models those constraints. *)

type report = {
  const_folded : int;   (** gates replaced by constants *)
  buffers_collapsed : int;
  dead_removed : int;
}

(** [optimize ?preserve net] returns an optimized copy plus a report.
    Passes: constant folding (dominating/neutral inputs), buffer
    collapsing, dead-logic sweep.  Nodes for which [preserve id] holds are
    never folded, collapsed or swept. *)
val optimize : ?preserve:(int -> bool) -> Netlist.t -> Netlist.t * report

val pp_report : Format.formatter -> report -> unit
