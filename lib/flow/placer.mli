(** Toy placement — the IC Compiler stand-in.

    The paper's flow runs P&R after every (re-)synthesis; what the rest of
    the methodology consumes from it is a sanity signal that the encrypted
    layout still closes (relative wirelength, congestion-free growth).
    This placer assigns cells to a near-square grid by logic level with a
    few force-directed refinement sweeps, and reports half-perimeter
    wirelength — enough to compare a baseline against its locked variant,
    which is all the experiments need. *)

type report = {
  grid_w : int;
  grid_h : int;
  hpwl_um : float;        (** total half-perimeter wirelength estimate *)
  avg_net_um : float;
  rows_used : int;
}

(** [place ?seed net] produces a deterministic placement report. *)
val place : ?seed:int -> Netlist.t -> report

val pp_report : Format.formatter -> report -> unit
