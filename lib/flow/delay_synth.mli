(** Constraint-driven delay-element composition.

    The paper inserts its GK/KEYGEN delay elements by "setting design
    constraints on the path" and letting Design Compiler "map delay
    elements from the library": the tool builds a chain of buffers and
    inverters whose total delay meets the constraint.  The paper observes
    this is the dominant source of area overhead ("the number of these
    delay elements is often larger than that of logic gates we used") and
    predicts that "customized delay elements" would reduce it
    substantially.  This module reproduces all three regimes:

    - [`Standard]: greedy composition over the DLY buffer family plus X1
      buffers — what a commercial library offers (the paper's Table II).
    - [`Buffers_only]: X1 buffers/inverter-pairs only — the pessimal
      composition, showing how bad naive mapping gets (ablation A2).
    - [`Custom]: one bespoke cell of exactly the requested delay — the
      paper's future-work scenario (ablation A2). *)

type profile = [ `Standard | `Buffers_only | `Custom ]

(** [compose profile ~target_ps] picks cells whose delays sum as close to
    [target_ps] as the profile allows (never empty for a positive target;
    polarity is preserved — only [Buf]-function cells are used).
    Returns the cells and the achieved total delay. *)
val compose : profile -> target_ps:int -> Cell.t list * int

(** [chain net profile ~from_ ~target_ps ~prefix] instantiates the
    composed cells as a buffer chain driven by node [from_], naming nodes
    [prefix ^ "_d0"], ...  Returns the chain's last node (= [from_] when
    the target is ≤ 0) and the achieved delay. *)
val chain :
  Netlist.t -> profile -> from_:int -> target_ps:int -> prefix:string -> int * int

(** Worst-case absolute error of a profile, in ps (half the smallest
    composable step). *)
val tolerance_ps : profile -> int
