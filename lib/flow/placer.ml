type report = {
  grid_w : int;
  grid_h : int;
  hpwl_um : float;
  avg_net_um : float;
  rows_used : int;
}

(* Cell pitch of the synthetic 0.13um library, in um. *)
let pitch = 2.4

let place ?(seed = 1) net =
  let rng = Random.State.make [| seed; 0x9c |] in
  let placeable =
    List.filter
      (fun id ->
        match (Netlist.node net id).Netlist.kind with
        | Netlist.Gate _ | Netlist.Lut _ | Netlist.Ff -> true
        | Netlist.Input | Netlist.Const _ | Netlist.Dead -> false)
      (List.init (Netlist.num_nodes net) Fun.id)
  in
  let n = List.length placeable in
  let grid_w = max 1 (int_of_float (ceil (sqrt (float_of_int (max n 1))))) in
  let grid_h = max 1 ((n + grid_w - 1) / grid_w) in
  let xs = Array.make (Netlist.num_nodes net) 0.0 in
  let ys = Array.make (Netlist.num_nodes net) 0.0 in
  (* Initial placement: order by logic level (levelized columns), with a
     random row shuffle inside each column. *)
  let levels = Topo.levels net in
  let sorted =
    List.stable_sort
      (fun a b ->
        compare (levels.(a), Random.State.bits rng) (levels.(b), Random.State.bits rng))
      placeable
  in
  List.iteri
    (fun i id ->
      xs.(id) <- float_of_int (i / grid_h) *. pitch;
      ys.(id) <- float_of_int (i mod grid_h) *. pitch)
    sorted;
  (* A few force-directed sweeps: move each cell toward the centroid of its
     neighbours (fanins + fanouts), keeping columns roughly intact. *)
  let fanouts = Netlist.fanout_table net in
  for _sweep = 1 to 3 do
    List.iter
      (fun id ->
        let nd = Netlist.node net id in
        let sx = ref 0.0 and sy = ref 0.0 and k = ref 0 in
        let consider other =
          sx := !sx +. xs.(other);
          sy := !sy +. ys.(other);
          incr k
        in
        Array.iter consider nd.Netlist.fanins;
        List.iter (fun (c, _) -> consider c) fanouts.(id);
        if !k > 0 then begin
          xs.(id) <- (xs.(id) +. (!sx /. float_of_int !k)) /. 2.0;
          ys.(id) <- (ys.(id) +. (!sy /. float_of_int !k)) /. 2.0
        end)
      placeable
  done;
  (* HPWL per driven net: bounding box of driver + sinks. *)
  let hpwl = ref 0.0 and nets = ref 0 in
  List.iter
    (fun id ->
      match fanouts.(id) with
      | [] -> ()
      | sinks ->
        let x0 = ref xs.(id) and x1 = ref xs.(id) in
        let y0 = ref ys.(id) and y1 = ref ys.(id) in
        List.iter
          (fun (c, _) ->
            x0 := min !x0 xs.(c);
            x1 := max !x1 xs.(c);
            y0 := min !y0 ys.(c);
            y1 := max !y1 ys.(c))
          sinks;
        hpwl := !hpwl +. (!x1 -. !x0) +. (!y1 -. !y0);
        incr nets)
    placeable;
  {
    grid_w;
    grid_h;
    hpwl_um = !hpwl;
    avg_net_um = (if !nets = 0 then 0.0 else !hpwl /. float_of_int !nets);
    rows_used = grid_h;
  }

let pp_report ppf r =
  Format.fprintf ppf "grid=%dx%d hpwl=%.1fum avg-net=%.2fum" r.grid_w r.grid_h
    r.hpwl_um r.avg_net_um
