type chain = {
  scan_in : string;
  scan_enable : string;
  scan_out : string;
  order : int list;
  scan_muxes : int list;
}

let insert src =
  let net = Netlist.copy src in
  let ffs = Netlist.ffs net in
  if ffs = [] then invalid_arg "Scan.insert: netlist has no flip-flops";
  let scan_in = Netlist.add_input net "scan_in" in
  let scan_enable = Netlist.add_input net "scan_enable" in
  let muxes = ref [] in
  let last =
    List.fold_left
      (fun prev ff ->
        let d = (Netlist.node net ff).Netlist.fanins.(0) in
        let m =
          Netlist.add_gate net
            ~name:(Printf.sprintf "scan_mux_%s" (Netlist.node net ff).Netlist.name)
            Cell.Mux
            [| scan_enable; d; prev |]
        in
        muxes := m :: !muxes;
        Netlist.set_fanin net ~node_id:ff ~pin:0 ~driver:m;
        ff)
      scan_in ffs
  in
  Netlist.add_output net "scan_out" last;
  Netlist.validate net;
  ( net,
    {
      scan_in = "scan_in";
      scan_enable = "scan_enable";
      scan_out = "scan_out";
      order = ffs;
      scan_muxes = List.rev !muxes;
    } )

let functional_view net chain =
  let view = Netlist.copy net in
  (match Netlist.find view chain.scan_enable with
  | Some se ->
    let c0 = Netlist.add_const view false in
    Netlist.replace_uses view ~old_id:se ~new_id:c0
  | None -> invalid_arg "Scan.functional_view: no scan_enable");
  Netlist.remove_output view chain.scan_out;
  let cleaned, _ = Synth.optimize view in
  cleaned
