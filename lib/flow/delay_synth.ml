type profile = [ `Standard | `Buffers_only | `Custom ]

let tolerance_ps = function
  | `Standard | `Buffers_only ->
    (match Cell_lib.delay_cells `Buffers_only with
    | smallest :: _ -> (smallest.Cell.delay_ps + 1) / 2
    | [] -> assert false)
  | `Custom -> 0

let compose profile ~target_ps =
  if target_ps <= 0 then ([], 0)
  else
    match profile with
    | `Custom ->
      let c = Cell_lib.custom_delay_cell target_ps in
      ([ c ], target_ps)
    | (`Standard | `Buffers_only) as p ->
      let available =
        Cell_lib.delay_cells p
        |> List.filter (fun c -> c.Cell.fn = Cell.Buf)
        |> List.sort (fun a b -> compare b.Cell.delay_ps a.Cell.delay_ps)
      in
      let smallest = List.nth available (List.length available - 1) in
      (* Greedy largest-first while it does not overshoot, then round the
         remainder to the nearest count of the smallest cell. *)
      let rec greedy cells total remaining = function
        | [] -> (cells, total, remaining)
        | c :: rest ->
          if c.Cell.delay_ps <= remaining && c.Cell.delay_ps > smallest.Cell.delay_ps
          then greedy (c :: cells) (total + c.Cell.delay_ps) (remaining - c.Cell.delay_ps) (c :: rest)
          else greedy cells total remaining rest
      in
      let cells, total, remaining = greedy [] 0 target_ps available in
      let d = smallest.Cell.delay_ps in
      let count = (remaining + (d / 2)) / d in
      let cells = List.rev_append cells (List.init count (fun _ -> smallest)) in
      (cells, total + (count * d))

let chain net profile ~from_ ~target_ps ~prefix =
  let cells, achieved = compose profile ~target_ps in
  let last =
    List.fold_left
      (fun (driver, i) cell ->
        let id =
          Netlist.add_gate net
            ~name:(Printf.sprintf "%s_d%d" prefix i)
            ~cell cell.Cell.fn [| driver |]
        in
        (id, i + 1))
      (from_, 0) cells
    |> fst
  in
  (last, achieved)
