type align = Left | Right | Center

type t = {
  title : string;
  columns : (string * align) array;
  rows : string list Vec.t;
  mutable footer : string list option;
}

let create ~title ~columns =
  { title; columns = Array.of_list columns; rows = Vec.create (); footer = None }

let check t cells =
  if List.length cells <> Array.length t.columns then
    invalid_arg
      (Printf.sprintf "Ascii_table: row has %d cells, table has %d columns"
         (List.length cells) (Array.length t.columns))

let add_row t cells =
  check t cells;
  Vec.push t.rows cells

let set_footer t cells =
  check t cells;
  t.footer <- Some cells

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let l = (width - n) / 2 in
      String.make l ' ' ^ s ^ String.make (width - n - l) ' '

let render t =
  let ncols = Array.length t.columns in
  let widths = Array.map (fun (h, _) -> String.length h) t.columns in
  let consider cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  Vec.iter consider t.rows;
  Option.iter consider t.footer;
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let row ?(align_override = None) cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let _, a = t.columns.(i) in
        let a = Option.value align_override ~default:a in
        Buffer.add_string buf (" " ^ pad a widths.(i) c ^ " ");
        Buffer.add_char buf '|')
      cells;
    Buffer.add_char buf '\n'
  in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  rule ();
  row ~align_override:(Some Center)
    (Array.to_list (Array.map fst t.columns));
  rule ();
  Vec.iter (fun cells -> row cells) t.rows;
  (match t.footer with
  | None -> ()
  | Some cells ->
    rule ();
    row cells);
  rule ();
  ignore ncols;
  Buffer.contents buf

let print t = print_string (render t)
