let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fold_lines path f init =
  if not (Sys.file_exists path) then init
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (f acc line)
          | exception End_of_file -> acc
        in
        go init)
  end

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Unique per process: two writers racing the same target each rename
   their own complete temp file, so the survivor is whole either way. *)
let tmp_counter = Atomic.make 0

let write_atomic ?(sync = true) ~path contents =
  let dir = Filename.dirname path in
  mkdir_p dir;
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (match
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
       (fun () ->
         let oc = Unix.out_channel_of_descr fd in
         output_string oc contents;
         flush oc;
         if sync then Unix.fsync fd)
   with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path;
  if sync then fsync_dir dir
