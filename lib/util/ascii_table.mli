(** Plain-text table rendering in the style of the paper's tables.

    Columns are sized to their widest entry; a header row is separated from
    the body by a rule, and an optional footer row (used for the "Avg." rows
    of Tables I and II) is separated by another rule. *)

type align = Left | Right | Center

type t

(** [create ~title ~columns] starts a table.  Each column is a header label
    with an alignment applied to body cells. *)
val create : title:string -> columns:(string * align) list -> t

(** [add_row t cells] appends a body row.  @raise Invalid_argument if the
    number of cells differs from the number of columns. *)
val add_row : t -> string list -> unit

(** [set_footer t cells] installs the footer row (e.g. averages). *)
val set_footer : t -> string list -> unit

(** [render t] is the complete table as a string, trailing newline
    included. *)
val render : t -> string

(** [print t] renders to stdout. *)
val print : t -> unit
