(** Growable arrays.

    A minimal dynamic-array container (OCaml 5.1's stdlib does not yet ship
    [Dynarray]).  Used throughout the code base for netlist node tables,
    clause databases, and event buffers. *)

type 'a t

(** [create ()] is an empty vector. *)
val create : unit -> 'a t

(** [make n x] is a vector of length [n] filled with [x]. *)
val make : int -> 'a -> 'a t

(** Number of elements currently stored. *)
val length : 'a t -> int

(** [get v i] is the [i]-th element.  @raise Invalid_argument when out of
    bounds. *)
val get : 'a t -> int -> 'a

(** [set v i x] replaces the [i]-th element. *)
val set : 'a t -> int -> 'a -> unit

(** [push v x] appends [x] at the end, growing the backing store as needed. *)
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)
val pop : 'a t -> 'a

(** [top v] is the last element without removing it. *)
val top : 'a t -> 'a

(** [clear v] removes every element (O(1), keeps the backing store). *)
val clear : 'a t -> unit

(** [shrink v n] truncates to the first [n] elements. *)
val shrink : 'a t -> int -> unit

(** [iter f v] applies [f] to every element in index order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [iteri f v] is [iter] with the index. *)
val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** [fold f acc v] folds over elements in index order. *)
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** [exists p v] tests whether some element satisfies [p]. *)
val exists : ('a -> bool) -> 'a t -> bool

(** [to_list v] is the list of elements in index order. *)
val to_list : 'a t -> 'a list

(** [to_array v] is a fresh array of the elements in index order. *)
val to_array : 'a t -> 'a array

(** [of_list xs] is a vector with the elements of [xs]. *)
val of_list : 'a list -> 'a t
