(** The one explicit seed behind every randomized test and fuzz run.

    All property-based tests and the differential fuzzer derive their
    randomness from a single integer seed so that any failure is
    replayable: the seed comes from the [GKLOCK_SEED] environment
    variable when set, and otherwise defaults to a fixed value — test
    runs are deterministic unless the user asks for variation.

    Derived states ({!state}, {!derive}) split the master seed so that
    independent consumers (one qcheck suite, one fuzz case) do not share
    a stream — perturbing one test cannot silently change the inputs of
    another. *)

(** The fixed default ([42]) used when [GKLOCK_SEED] is unset or
    unparsable. *)
val default : int

(** The effective seed: [GKLOCK_SEED] or {!default}.  Read once per
    process. *)
val value : unit -> int

(** [replay_hint ()] is the shell fragment to reproduce the current run,
    e.g. ["GKLOCK_SEED=42"].  Test names embed it so that an alcotest
    failure line tells the user how to replay. *)
val replay_hint : unit -> string

(** [state ()] is a fresh PRNG state seeded from {!value}. *)
val state : unit -> Random.State.t

(** [derive tag] is a fresh PRNG state for the independent stream
    [tag] — e.g. one per fuzz case index. *)
val derive : int -> Random.State.t
