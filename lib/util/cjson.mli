(** Minimal JSON values for the campaign subsystem.

    The job store, telemetry trace and campaign specs are all JSONL /
    JSON files; the toolchain ships no JSON library, so this is a small
    self-contained codec.  Emission is {e canonical}: object fields keep
    construction order and floats print with a fixed format, so the same
    value always serializes to the same bytes — job IDs are digests of
    this canonical form (see {!Campaign_job.id}). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Canonical single-line rendering (no insignificant whitespace). *)
val to_string : t -> string

(** Parse one JSON value; trailing whitespace is allowed, trailing
    garbage is an error.  Handles the subset {!to_string} emits plus
    standard escapes (including [\uXXXX], decoded to UTF-8). *)
val of_string : string -> (t, string) result

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

(** [member name j] is the value of field [name] when [j] is an object. *)
val member : string -> t -> t option

val to_str : t -> string option
val to_int : t -> int option

(** [to_float] accepts both [Float] and [Int]. *)
val to_float : t -> float option

val to_bool : t -> bool option
val to_list : t -> t list option

(** [mem_str name j] = [Option.bind (member name j) to_str], and
    friends — the common "field of an object" reads. *)
val mem_str : string -> t -> string option

val mem_int : string -> t -> int option
val mem_float : string -> t -> float option
val mem_bool : string -> t -> bool option
val mem_list : string -> t -> t list option
