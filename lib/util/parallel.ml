let default_domains () =
  match Sys.getenv_opt "GKLOCK_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some d when d > 0 -> d | _ -> 1)
  | None -> Domain.recommended_domain_count ()

(* True while the current domain is executing a task on behalf of a pool
   (one of [map]'s workers, or a [run_sequentially] caller): nested [map]
   calls must not spawn another layer of domains. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let run_sequentially f =
  let prev = Domain.DLS.get in_worker in
  Domain.DLS.set in_worker true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker prev) f

let map ?domains f xs =
  (match domains with
  | Some d when d < 1 ->
    invalid_arg (Printf.sprintf "Parallel.map: domains must be >= 1 (got %d)" d)
  | _ -> ());
  let nested = Domain.DLS.get in_worker in
  let items = Array.of_list xs in
  let n = Array.length items in
  let d =
    max 1 (min n (match domains with Some d -> d | None -> default_domains ()))
  in
  if d <= 1 || nested then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             match f items.(i) with
             | r -> Some (Ok r)
             | exception e -> Some (Error e));
          go ()
        end
      in
      go ()
    in
    let marked_worker () = run_sequentially worker in
    let doms = List.init (d - 1) (fun _ -> Domain.spawn marked_worker) in
    marked_worker ();
    List.iter Domain.join doms;
    Array.to_list results
    |> List.map (function
         | Some (Ok r) -> r
         | Some (Error e) -> raise e
         | None -> assert false)
  end
