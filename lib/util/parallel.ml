let default_domains () =
  match Sys.getenv_opt "GKLOCK_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some d when d > 0 -> d | _ -> 1)
  | None -> Domain.recommended_domain_count ()

let map ?domains f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let d =
    max 1 (min n (match domains with Some d -> d | None -> default_domains ()))
  in
  if d <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             match f items.(i) with
             | r -> Some (Ok r)
             | exception e -> Some (Error e));
          go ()
        end
      in
      go ()
    in
    let doms = List.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join doms;
    Array.to_list results
    |> List.map (function
         | Some (Ok r) -> r
         | Some (Error e) -> raise e
         | None -> assert false)
  end
