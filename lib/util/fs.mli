(** Shared filesystem helpers.

    One home for the idioms the subsystems used to each reimplement:
    recursive mkdir, whole-file reads, leak-safe line folds, recursive
    removal, and crash-safe atomic writes.

    Durability contract of {!write_atomic}: the temp file is fsynced
    before the rename and the parent directory is fsynced after it, so
    after a crash readers see either the old contents or the complete
    new contents — never a truncated file, and never a rename that the
    directory forgot. *)

(** [mkdir_p dir] creates [dir] and its parents (idempotent). *)
val mkdir_p : string -> unit

(** [read_file path] is the whole contents of [path]. *)
val read_file : string -> string

(** [fold_lines path f init] folds [f] over the lines of [path] in
    order; a missing file yields [init].  The channel is closed even
    when [f] raises. *)
val fold_lines : string -> ('a -> string -> 'a) -> 'a -> 'a

(** [rm_rf path] removes [path] recursively; missing paths are fine. *)
val rm_rf : string -> unit

(** [fsync_dir dir] flushes [dir]'s directory entry metadata (best
    effort: errors from filesystems that cannot fsync directories are
    swallowed). *)
val fsync_dir : string -> unit

(** [write_atomic ?sync ~path contents] writes [contents] to a unique
    temp file in [path]'s directory, fsyncs it (unless [sync] is
    [false]), renames it over [path] and fsyncs the directory.  Readers
    see the old or the new file, never a partial one; with [sync] (the
    default) the new contents also survive a crash. *)
val write_atomic : ?sync:bool -> path:string -> string -> unit
