let default = 42

let value =
  let v =
    lazy
      (match Sys.getenv_opt "GKLOCK_SEED" with
      | None -> default
      | Some s -> ( match int_of_string_opt (String.trim s) with
        | Some n -> n
        | None -> default))
  in
  fun () -> Lazy.force v

let replay_hint () = Printf.sprintf "GKLOCK_SEED=%d" (value ())

let state () = Random.State.make [| value (); 0x6b6c6f; 0x636b |]

let derive tag = Random.State.make [| value (); tag; 0xd1f7; 0x7e57 |]
