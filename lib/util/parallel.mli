(** Work-stealing parallel map over OCaml 5 domains.

    Used to spread independent per-benchmark experiment rows across cores.
    Tasks must not share mutable state: each worker domain pulls the next
    list element off an atomic counter, so sibling tasks run concurrently
    in separate domains. *)

(** [map ?domains f xs] is [List.map f xs] with elements evaluated in up to
    [domains] domains (default: [Domain.recommended_domain_count], or the
    [GKLOCK_DOMAINS] environment variable when set; [GKLOCK_DOMAINS=1]
    forces sequential execution).  Order is preserved.  If any [f x]
    raises, the first such exception (in list order) is re-raised after all
    workers finish. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
