(** Work-stealing parallel map over OCaml 5 domains.

    Used to spread independent per-benchmark experiment rows across cores.
    Tasks must not share mutable state: each worker domain pulls the next
    list element off an atomic counter, so sibling tasks run concurrently
    in separate domains. *)

(** The default domain count: [GKLOCK_DOMAINS] when set to a positive
    integer, else [Domain.recommended_domain_count ()]. *)
val default_domains : unit -> int

(** [map ?domains f xs] is [List.map f xs] with elements evaluated in up to
    [domains] domains (default: {!default_domains}; [GKLOCK_DOMAINS=1]
    forces sequential execution).  Order is preserved.  If any [f x]
    raises, the first such exception (in list order) is re-raised after all
    workers finish.

    Nested use is safe but not parallel: when [map] is called from inside
    a task already running under [map] (or under {!run_sequentially}),
    it degrades to a plain [List.map] instead of spawning domains from a
    worker domain — nested fan-out would oversubscribe the machine with
    [domains²] domains and, on OCaml 5.1, risks exceeding the runtime's
    domain limit.

    @raise Invalid_argument if [domains] is given and is [< 1]. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [run_sequentially f] runs [f ()] with this domain marked as a worker:
    any {!map} call made (transitively) by [f] runs sequentially.  Used
    by pools that manage their own domains (e.g. the campaign runner) to
    keep library parallelism from multiplying with theirs. *)
val run_sequentially : (unit -> 'a) -> 'a
