type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ----- emission ----- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Fixed float format: enough digits to round-trip the metrics we store,
   and — more importantly — always the same bytes for the same value. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f then Buffer.add_string buf "null"
    else if f = Float.infinity then Buffer.add_string buf "1e999"
    else if f = Float.neg_infinity then Buffer.add_string buf "-1e999"
    else Buffer.add_string buf (float_repr f)
  | Str s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 128 in
  emit buf j;
  Buffer.contents buf

(* ----- parsing ----- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let fail p msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance p;
    skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | _ -> fail p (Printf.sprintf "expected %C" c)

let parse_literal p lit value =
  let n = String.length lit in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = lit then begin
    p.pos <- p.pos + n;
    value
  end
  else fail p (Printf.sprintf "expected %s" lit)

(* Encode a Unicode code point as UTF-8 into [buf]. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' ->
      advance p;
      (match peek p with
      | Some '"' -> Buffer.add_char buf '"'; advance p
      | Some '\\' -> Buffer.add_char buf '\\'; advance p
      | Some '/' -> Buffer.add_char buf '/'; advance p
      | Some 'b' -> Buffer.add_char buf '\b'; advance p
      | Some 'f' -> Buffer.add_char buf '\012'; advance p
      | Some 'n' -> Buffer.add_char buf '\n'; advance p
      | Some 'r' -> Buffer.add_char buf '\r'; advance p
      | Some 't' -> Buffer.add_char buf '\t'; advance p
      | Some 'u' ->
        advance p;
        if p.pos + 4 > String.length p.src then fail p "truncated \\u escape";
        let hex = String.sub p.src p.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some cp ->
          p.pos <- p.pos + 4;
          add_utf8 buf cp
        | None -> fail p "bad \\u escape")
      | _ -> fail p "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance p;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  let rec go () =
    match peek p with
    | Some ('0' .. '9' | '-' | '+') ->
      advance p;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance p;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub p.src start (p.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail p "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* out-of-range integer literal: fall back to float *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail p "bad number")

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some 'n' -> parse_literal p "null" Null
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some '"' -> Str (parse_string p)
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value p in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          elems (v :: acc)
        | Some ']' ->
          advance p;
          List.rev (v :: acc)
        | _ -> fail p "expected ',' or ']'"
      in
      List (elems [])
    end
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else begin
      let field () =
        skip_ws p;
        let k = parse_string p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          fields (kv :: acc)
        | Some '}' ->
          advance p;
          List.rev (kv :: acc)
        | _ -> fail p "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail p (Printf.sprintf "unexpected %C" c)

let of_string s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | v ->
    skip_ws p;
    if p.pos = String.length s then Ok v
    else Error (Printf.sprintf "trailing garbage at offset %d" p.pos)
  | exception Parse_error msg -> Error msg

(* ----- accessors ----- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None

let mem_str name j = Option.bind (member name j) to_str
let mem_int name j = Option.bind (member name j) to_int
let mem_float name j = Option.bind (member name j) to_float
let mem_bool name j = Option.bind (member name j) to_bool
let mem_list name j = Option.bind (member name j) to_list
