(** Content-addressed result store shared by every campaign under one
    root (in the spirit of Tezos [lib_context]).

    {v
    <root>/objects/ab/cdef…      immutable objects, named by the MD5 of
                                 their bytes (tmp + fsync + rename)
    <root>/index.bin             binary id→object index: 8-byte magic,
                                 then fixed 32-byte entries
                                 (16-byte raw job id MD5 ‖ 16-byte raw
                                 object MD5); append-only, last wins
    <root>/manifests/<name>.idx  one campaign's result roots, same
                                 binary entry format
    <root>/manifests/<name>.json sidecar naming the campaign directory
                                 (GC drops manifests whose directory is
                                 gone)
    <root>/quarantine/…          objects fsck moved aside
    v}

    Objects are immutable and idempotent to write: storing the same
    bytes twice stores them once.  Records are canonical {!Cjson}
    values whose large string fields (locked netlists, stimuli, …) are
    externalized as [{"$blob": digest}] references, so a blob shared by
    many jobs lives on disk exactly once.  The binary index makes
    id→object lookup O(1) after an O(entries) binary load — no JSON is
    parsed until a specific record is read.

    A torn index tail (crash mid-append) is ignored on load and
    repaired by {!fsck}; a corrupt object is detected by digest
    verification on read and quarantined by {!fsck}.  Readers never
    crash on a corrupt store — they see the affected records as
    absent. *)

type t

(** [open_ ?sync root] opens (creating if needed) the store rooted at
    [root].  [sync] (default [true]) controls whether object and index
    writes are fsynced; tests building huge throwaway stores turn it
    off. *)
val open_ : ?sync:bool -> string -> t

val root : t -> string
val close : t -> unit

(** {1 Objects} *)

(** [put t bytes] stores [bytes] (if new) and returns its digest. *)
val put : t -> string -> string

(** [get t digest] is the object's bytes, verified against [digest];
    missing or corrupt objects are [None]. *)
val get : t -> string -> string option

val mem : t -> string -> bool

(** Strings at or above this many bytes are externalized as blob
    references by {!put_record}. *)
val blob_threshold : int

(** [put_record t json] externalizes large strings as blobs, stores the
    canonical rendering as an object and returns its digest. *)
val put_record : t -> Cjson.t -> string

(** [get_record t digest] reads an object written by {!put_record} and
    resolves its blob references back to inline strings.  Digests are
    verified; a missing/corrupt record or blob is an [Error]. *)
val get_record : t -> string -> (Cjson.t, string) result

(** {1 Index} *)

val index_lookup : t -> string -> string option
val index_add : t -> id:string -> digest:string -> unit
val index_size : t -> int

(** {1 Manifests} *)

type manifest

(** [manifest t ~name ~dir] opens (creating if needed) the manifest
    [name] for the campaign living in directory [dir], for appending. *)
val manifest : t -> name:string -> dir:string -> manifest

(** Read-only open of an existing manifest; [None] if absent. *)
val manifest_ro : t -> name:string -> manifest option

val manifest_lookup : manifest -> string -> string option
val manifest_add : manifest -> id:string -> digest:string -> unit

(** Entries as [(id, digest)], first-added order, last digest wins. *)
val manifest_entries : manifest -> (string * string) list

val manifest_size : manifest -> int
val manifest_close : manifest -> unit
val manifest_names : t -> string list

(** {1 Maintenance} *)

type gc_stats = {
  gc_live_objects : int;
  gc_swept_objects : int;
  gc_swept_bytes : int;
  gc_dropped_manifests : string list;
      (** manifests whose campaign directory no longer exists *)
  gc_index_entries : int;  (** index entries after the rebuild *)
}

(** [gc t] drops manifests whose campaign directory is gone, rebuilds
    the index from the surviving manifests, and sweeps every object not
    reachable from a surviving manifest (records and the blobs they
    reference).  Must not run concurrently with a campaign writing to
    the same store. *)
val gc : t -> gc_stats

type fsck_report = {
  f_objects : int;          (** objects scanned *)
  f_corrupt : (string * string) list;  (** (path, reason) quarantined *)
  f_index_dropped : int;    (** index entries whose object is gone *)
  f_index_torn_bytes : int; (** trailing bytes from a torn append *)
  f_manifest_dropped : (string * int) list;
      (** per-manifest entries whose object is gone *)
  f_ok : bool;              (** nothing was wrong *)
}

(** [fsck t] verifies every object against its digest (corrupt ones are
    moved to [quarantine/]), repairs a torn or headerless index, and
    drops index/manifest entries pointing at missing objects.  The
    store is valid after fsck; affected jobs simply become pending
    again. *)
val fsck : t -> fsck_report

type stats = {
  st_objects : int;
  st_bytes : int;
  st_index_entries : int;
  st_manifests : (string * int) list;  (** (name, entries) *)
  st_blobs : int;        (** distinct blobs referenced by records *)
  st_blob_refs : int;    (** total references to blobs *)
  st_shared_blobs : int; (** blobs referenced by more than one record *)
  st_saved_bytes : int;
      (** bytes structural sharing avoided writing: Σ (refs−1)·size *)
}

val stats : t -> stats
