(** Campaign orchestration: tie the matrix, store, pool and views
    together under one directory.

    A campaign directory holds everything about one experiment matrix:

    {v
    <dir>/matrix.json     the declarative job matrix (written by run)
    <dir>/store.json      pointer to the shared content-addressed store
                          and this campaign's manifest (see {!Cas};
                          records live in <parent>/store, shared by all
                          sibling campaigns)
    <dir>/trace.jsonl     telemetry events (timestamps, wall times)
    <dir>/summary.json    aggregate telemetry checkpoint
    <dir>/report.txt      the deterministic report (same bytes whether
                          the campaign ran once or was interrupted and
                          resumed any number of times)
    v}

    {!run} is idempotent: it expands the matrix, skips every job already
    recorded (adopting results any sibling campaign computed), executes
    the rest, and rewrites the report. *)

(** Default campaign root directory, ["campaigns"] (gitignored). *)
val default_root : string

(** [dir_for ?root name] = [<root>/<name>]. *)
val dir_for : ?root:string -> string -> string

(** [run ?workers ?timeout_s ?retries ?exec ~dir matrix] executes (or
    resumes) the campaign in [dir].  [exec] defaults to
    {!Campaign_exec.run} on the job's spec; tests inject their own.
    [should_abort] is the cooperative stop hook (see
    {!Campaign_runner.run}) — the report and summary are still written
    on an aborted run, so interrupt → resume converges on the same
    bytes as an uninterrupted run.  Writes [matrix.json] before and
    [summary.json] / [report.txt] after (also on
    {!Campaign_runner.Abort}). *)
val run :
  ?workers:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?exec:(Campaign_job.t -> Cjson.t) ->
  ?should_abort:(unit -> bool) ->
  dir:string ->
  Campaign_job.matrix ->
  Campaign_runner.stats

(** The matrix a previous {!run} recorded in [dir/matrix.json]. *)
val load_matrix : dir:string -> (Campaign_job.matrix, string) result

(** Progress summary: job counts by state plus stored telemetry totals.
    Informational — may include wall-clock figures. *)
val status : dir:string -> Campaign_job.matrix -> string

(** The deterministic campaign report: Tables I/II rendered from table
    jobs ({!Campaign_exec.table1_row_of_payload} views over the store)
    and one row per attack job, in {!Campaign_job.compare_spec} order.
    Contains no timestamps or wall times, so an interrupted-and-resumed
    campaign reports byte-identically to an uninterrupted one. *)
val report : dir:string -> Campaign_job.matrix -> string

(** {1 Table views}

    Tables I and II as views over a campaign store: the completed table
    jobs in [dir], decoded back to {!Experiments} rows in paper order.
    [gklock tables --campaign DIR] renders these instead of recomputing
    the analyses. *)

val table1_view : string -> Experiments.table1_row list

val table2_view : ?profile:string -> string -> Experiments.table2_row list
