(** The campaign worker pool: domains, timeouts, retries, checkpointing.

    Jobs already present in the campaign manifest are skipped (resume),
    results computed by a sibling campaign in the shared store are
    adopted; the rest are
    dispatched to up to [workers] concurrent OCaml 5 domains, one domain
    per job execution.  The scheduler polls the in-flight slots:

    - a finished job is recorded in the store as [Done] (payload) or
      [Failed] ([Exception] with the printed exception);
    - a job that raises {!Transient} is re-queued up to [max_retries]
      extra attempts before it is recorded as failed;
    - a job still running past [timeout_s] is recorded as [Failed]
      ([Timeout]) and its domain {e abandoned} — domains cannot be
      killed, so the stray computation keeps its core until it returns
      (its eventual result is discarded) but the campaign moves on.

    One crashing, hanging or sleeping job therefore never poisons its
    siblings or the campaign: every outcome lands in the store as data.

    Each job execution runs under {!Parallel.run_sequentially}, so
    library code that calls {!Parallel.map} does not oversubscribe the
    machine with nested domain fan-out. *)

(** Raised by an executor to stop the whole campaign gracefully: nothing
    is recorded for the raising job, queued jobs stay queued, other
    in-flight jobs drain normally.  This is how tests (and a SIGINT
    handler) model killing a campaign mid-run. *)
exception Abort

(** [Transient msg]: the attempt failed for a reason worth retrying
    (flaky I/O, resource exhaustion...).  Any other exception fails the
    job immediately. *)
exception Transient of string

type config = {
  workers : int;     (** concurrent job domains, >= 1 *)
  timeout_s : float; (** per-job wall-clock budget; <= 0 = no timeout *)
  max_retries : int; (** extra attempts for {!Transient} failures *)
}

val default_config : config

type stats = {
  ran : int;        (** jobs that reached a recorded outcome this run *)
  ok : int;
  failed : int;     (** recorded exception failures *)
  timed_out : int;  (** recorded timeouts *)
  skipped : int;    (** already in the store (own records + adopted) *)
  retries : int;    (** re-queued transient attempts *)
  aborted : bool;   (** an executor raised {!Abort} *)
  abandoned : int;  (** domains left running past their timeout *)
}

(** [run ~store ?telemetry ?should_abort config ~jobs ~exec] drives the
    pool until every job has an outcome (or {!Abort}).  [should_abort]
    is polled by the scheduler between dispatches; once it returns true
    the run behaves as if an executor raised {!Abort} — no new jobs
    start, in-flight jobs drain and checkpoint normally, and the stats
    report [aborted = true].  This is how `gklock campaign run` turns a
    SIGINT into a graceful, resumable stop: the handler only flips a
    flag, the scheduler does the shutdown at a safe point.
    @raise Invalid_argument on [workers < 1] or [max_retries < 0]. *)
val run :
  store:Job_store.t ->
  ?telemetry:Telemetry.t ->
  ?should_abort:(unit -> bool) ->
  config ->
  jobs:Campaign_job.t list ->
  exec:(Campaign_job.t -> Cjson.t) ->
  stats
