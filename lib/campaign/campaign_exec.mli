(** The real job executor: maps a {!Campaign_job.spec} onto the locking
    and attack stack and returns the metrics payload stored for it.

    Everything here is deterministic in the job spec (benchmarks are
    generated from fixed seeds, attacks are seeded), which is what makes
    job IDs honest cache keys: same spec, same payload.

    Unknown benchmarks, schemes, attacks, or infeasible combinations
    (e.g. more GKs than available sites) raise [Invalid_argument], which
    the runner records as a structured [Failed] result — a bad matrix
    cell never takes the campaign down. *)

(** [run spec] computes the job.  See DESIGN.md §7 for the payload
    fields per job kind. *)
val run : Campaign_job.spec -> Cjson.t

(** [table1_row_of_payload j] / [table2_row_of_payload j] rebuild the
    {!Experiments} row a table job stored — the campaign views behind
    Tables I and II. *)
val table1_row_of_payload : Cjson.t -> Experiments.table1_row option

val table2_row_of_payload : Cjson.t -> Experiments.table2_row option
