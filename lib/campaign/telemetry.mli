(** Campaign telemetry: a JSONL event trace plus aggregate counters.

    Every job emits lifecycle events — [queued], [started], [retried],
    [finished], [failed], [timeout], [skipped], [adopted] — to
    [dir/trace.jsonl],
    each stamped with a wall-clock timestamp and free-form metric fields
    (wall seconds, attack iterations, DIP counts, ...).  The sink also
    keeps per-event counters and total/maximum job wall time; {!summary}
    renders those as JSON and {!write_summary} checkpoints them to
    [dir/summary.json] atomically.

    The trace records {e how} a campaign ran; the job store records
    {e what} it computed.  Reports read only the store, so traces can
    carry timestamps without breaking resume determinism. *)

type t

(** [create ~dir] opens (appends to) [dir/trace.jsonl]. *)
val create : dir:string -> t

(** [null ()] swallows events — for library callers that do not want a
    trace on disk. *)
val null : unit -> t

(** [emit t ~job ~event fields] appends one trace line.  [attempt] is
    1-based; [wall_s], when given, also feeds the aggregate timers.
    Thread-safe. *)
val emit :
  t ->
  job:string ->
  ?attempt:int ->
  ?wall_s:float ->
  event:string ->
  (string * Cjson.t) list ->
  unit

(** Aggregate counters as JSON (event counts, jobs timed, total and max
    wall seconds). *)
val summary : t -> Cjson.t

(** Atomically write {!summary} to [dir/summary.json] (no-op for
    {!null} sinks). *)
val write_summary : t -> unit

val close : t -> unit
