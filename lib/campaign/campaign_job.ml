type spec =
  | Table1 of { bench : string }
  | Table2 of { bench : string; profile : string }
  | Attack of {
      bench : string;
      scheme : string;
      width : int;
      attack : string;
      seed : int;
    }

type t = { id : string; spec : spec }

let spec_to_json = function
  | Table1 { bench } ->
    Cjson.Obj [ ("kind", Cjson.Str "table1"); ("bench", Cjson.Str bench) ]
  | Table2 { bench; profile } ->
    Cjson.Obj
      [
        ("kind", Cjson.Str "table2");
        ("bench", Cjson.Str bench);
        ("profile", Cjson.Str profile);
      ]
  | Attack { bench; scheme; width; attack; seed } ->
    Cjson.Obj
      [
        ("kind", Cjson.Str "attack");
        ("bench", Cjson.Str bench);
        ("scheme", Cjson.Str scheme);
        ("width", Cjson.Int width);
        ("attack", Cjson.Str attack);
        ("seed", Cjson.Int seed);
      ]

let spec_of_json j =
  let need f name =
    match f name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "job spec: missing or ill-typed %S" name)
  in
  let ( let* ) = Result.bind in
  let* kind = need Cjson.mem_str "kind" in
  match kind with
  | "table1" ->
    let* bench = need Cjson.mem_str "bench" in
    Ok (Table1 { bench })
  | "table2" ->
    let* bench = need Cjson.mem_str "bench" in
    let* profile = need Cjson.mem_str "profile" in
    Ok (Table2 { bench; profile })
  | "attack" ->
    let* bench = need Cjson.mem_str "bench" in
    let* scheme = need Cjson.mem_str "scheme" in
    let* width = need Cjson.mem_int "width" in
    let* attack = need Cjson.mem_str "attack" in
    let* seed = need Cjson.mem_int "seed" in
    Ok (Attack { bench; scheme; width; attack; seed })
  | k -> Error (Printf.sprintf "job spec: unknown kind %S" k)

(* Bump the prefix whenever the spec encoding or the executor's meaning of
   a spec changes incompatibly: every job ID changes, so stale store
   entries are ignored rather than misread. *)
let id_format = "gklock-job-v2:"

let id spec = Digest.to_hex (Digest.string (id_format ^ Cjson.to_string (spec_to_json spec)))

let make spec = { id = id spec; spec }

let describe = function
  | Table1 { bench } -> Printf.sprintf "table1 %s" bench
  | Table2 { bench; profile } -> Printf.sprintf "table2 %s (%s)" bench profile
  | Attack { bench; scheme; width; attack; seed } ->
    Printf.sprintf "attack %s %s/%d %s #%d" bench scheme width attack seed

(* Benchmarks in paper order, for report-stable sorting of table rows. *)
let bench_rank b =
  let rec go i = function
    | [] -> max_int
    | s :: rest -> if s.Benchmarks.bname = b then i else go (i + 1) rest
  in
  go 0 Benchmarks.specs

let rank = function Table1 _ -> 0 | Table2 _ -> 1 | Attack _ -> 2

let compare_spec a b =
  match (a, b) with
  | Table1 { bench = x }, Table1 { bench = y } ->
    compare (bench_rank x, x) (bench_rank y, y)
  | Table2 { bench = x; profile = p }, Table2 { bench = y; profile = q } ->
    compare (p, bench_rank x, x) (q, bench_rank y, y)
  | Attack x, Attack y ->
    compare
      (bench_rank x.bench, x.bench, x.scheme, x.width, x.attack, x.seed)
      (bench_rank y.bench, y.bench, y.scheme, y.width, y.attack, y.seed)
  | _ -> compare (rank a) (rank b)

(* ----- matrices ----- *)

type matrix = {
  m_name : string;
  m_tables : string list;
  m_benches : string list;
  m_schemes : string list;
  m_widths : int list;
  m_attacks : string list;
  m_seeds : int list;
}

let table_jobs table =
  let benches = List.map (fun s -> s.Benchmarks.bname) Benchmarks.specs in
  match String.split_on_char ':' table with
  | [ "table1" ] -> List.map (fun bench -> Table1 { bench }) benches
  | [ "table2" ] ->
    List.map (fun bench -> Table2 { bench; profile = "standard" }) benches
  | [ "table2"; profile ] ->
    List.map (fun bench -> Table2 { bench; profile }) benches
  | _ -> invalid_arg (Printf.sprintf "Campaign_job.expand: unknown table %S" table)

let expand m =
  let tables = List.concat_map table_jobs m.m_tables in
  let attacks =
    List.concat_map
      (fun bench ->
        List.concat_map
          (fun scheme ->
            List.concat_map
              (fun width ->
                List.concat_map
                  (fun attack ->
                    List.map
                      (fun seed ->
                        Attack { bench; scheme; width; attack; seed })
                      m.m_seeds)
                  m.m_attacks)
              m.m_widths)
          m.m_schemes)
      m.m_benches
  in
  let seen = Hashtbl.create 64 in
  List.sort compare_spec (tables @ attacks)
  |> List.filter_map (fun spec ->
         let j = make spec in
         if Hashtbl.mem seen j.id then None
         else begin
           Hashtbl.add seen j.id ();
           Some j
         end)

let matrix_to_json m =
  let strs xs = Cjson.List (List.map (fun s -> Cjson.Str s) xs) in
  let ints xs = Cjson.List (List.map (fun i -> Cjson.Int i) xs) in
  Cjson.Obj
    [
      ("name", Cjson.Str m.m_name);
      ("tables", strs m.m_tables);
      ("benches", strs m.m_benches);
      ("schemes", strs m.m_schemes);
      ("widths", ints m.m_widths);
      ("attacks", strs m.m_attacks);
      ("seeds", ints m.m_seeds);
    ]

let matrix_of_json j =
  let ( let* ) = Result.bind in
  let str_list name =
    match Cjson.mem_list name j with
    | None -> Ok [] (* absent list = empty dimension *)
    | Some xs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
          match Cjson.to_str x with
          | Some s -> go (s :: acc) rest
          | None -> Error (Printf.sprintf "matrix: %S must hold strings" name))
      in
      go [] xs
  in
  let int_list name =
    match Cjson.mem_list name j with
    | None -> Ok []
    | Some xs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
          match Cjson.to_int x with
          | Some i -> go (i :: acc) rest
          | None -> Error (Printf.sprintf "matrix: %S must hold integers" name))
      in
      go [] xs
  in
  let* m_name =
    match Cjson.mem_str "name" j with
    | Some s -> Ok s
    | None -> Error "matrix: missing \"name\""
  in
  let* m_tables = str_list "tables" in
  let* m_benches = str_list "benches" in
  let* m_schemes = str_list "schemes" in
  let* m_widths = int_list "widths" in
  let* m_attacks = str_list "attacks" in
  let* m_seeds = int_list "seeds" in
  Ok { m_name; m_tables; m_benches; m_schemes; m_widths; m_attacks; m_seeds }

(* ----- built-in campaigns ----- *)

let all_benches () = List.map (fun s -> s.Benchmarks.bname) Benchmarks.specs

let empty name =
  {
    m_name = name;
    m_tables = [];
    m_benches = [];
    m_schemes = [];
    m_widths = [];
    m_attacks = [];
    m_seeds = [];
  }

let builtin = function
  | "smoke" ->
    (* Tiny circuits, conventional schemes, exact SAT attack: the whole
       matrix finishes in seconds, exercising every subsystem layer. *)
    Some
      {
        (empty "smoke") with
        m_benches = [ "s27"; "tiny" ];
        m_schemes = [ "xor"; "mux" ];
        m_widths = [ 4 ];
        m_attacks = [ "sat" ];
        m_seeds = [ 1; 2 ];
      }
  | "table1" -> Some { (empty "table1") with m_tables = [ "table1" ] }
  | "table2" -> Some { (empty "table2") with m_tables = [ "table2" ] }
  | "sat" ->
    Some
      {
        (empty "sat") with
        m_benches = all_benches ();
        m_schemes = [ "gk" ];
        m_widths = [ 8 ];
        m_attacks = [ "sat" ];
        m_seeds = [ 42 ];
      }
  | "paper" ->
    Some
      {
        (empty "paper") with
        m_tables = [ "table1"; "table2" ];
        m_benches = all_benches ();
        m_schemes = [ "gk" ];
        m_widths = [ 8 ];
        m_attacks = [ "sat" ];
        m_seeds = [ 42 ];
      }
  | _ -> None

let builtin_names = [ "smoke"; "table1"; "table2"; "sat"; "paper" ]
