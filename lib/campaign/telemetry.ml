type t = {
  t_dir : string option;
  t_oc : out_channel option;
  t_mutex : Mutex.t;
  t_counts : (string, int) Hashtbl.t;
  mutable t_jobs_timed : int;
  mutable t_total_wall_s : float;
  mutable t_max_wall_s : float;
}

let make dir oc =
  {
    t_dir = dir;
    t_oc = oc;
    t_mutex = Mutex.create ();
    t_counts = Hashtbl.create 16;
    t_jobs_timed = 0;
    t_total_wall_s = 0.0;
    t_max_wall_s = 0.0;
  }

let create ~dir =
  Fs.mkdir_p dir;
  let fd =
    Unix.openfile
      (Filename.concat dir "trace.jsonl")
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  make (Some dir) (Some (Unix.out_channel_of_descr fd))

let null () = make None None

let emit t ~job ?attempt ?wall_s ~event fields =
  Mutex.lock t.t_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.t_mutex)
    (fun () ->
      Hashtbl.replace t.t_counts event
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.t_counts event));
      (match wall_s with
      | Some w ->
        t.t_jobs_timed <- t.t_jobs_timed + 1;
        t.t_total_wall_s <- t.t_total_wall_s +. w;
        if w > t.t_max_wall_s then t.t_max_wall_s <- w
      | None -> ());
      match t.t_oc with
      | None -> ()
      | Some oc ->
        let base =
          [ ("ts", Cjson.Float (Unix.gettimeofday ()));
            ("event", Cjson.Str event); ("job", Cjson.Str job) ]
        in
        let opt name = function
          | Some (v : Cjson.t) -> [ (name, v) ]
          | None -> []
        in
        let line =
          Cjson.to_string
            (Cjson.Obj
               (base
               @ opt "attempt" (Option.map (fun a -> Cjson.Int a) attempt)
               @ opt "wall_s" (Option.map (fun w -> Cjson.Float w) wall_s)
               @ fields))
        in
        output_string oc (line ^ "\n");
        flush oc)

let summary t =
  Mutex.lock t.t_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.t_mutex)
    (fun () ->
      let counts =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.t_counts []
        |> List.sort compare
        |> List.map (fun (k, v) -> (k, Cjson.Int v))
      in
      Cjson.Obj
        [
          ("events", Cjson.Obj counts);
          ("jobs_timed", Cjson.Int t.t_jobs_timed);
          ("total_wall_s", Cjson.Float t.t_total_wall_s);
          ("max_wall_s", Cjson.Float t.t_max_wall_s);
        ])

let write_summary t =
  match t.t_dir with
  | None -> ()
  | Some dir ->
    Fs.write_atomic
      ~path:(Filename.concat dir "summary.json")
      (Cjson.to_string (summary t) ^ "\n")

let close t =
  Mutex.lock t.t_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.t_mutex)
    (fun () -> match t.t_oc with Some oc -> close_out oc | None -> ())
