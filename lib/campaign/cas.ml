let magic = "GKCASIX1"
let entry_size = 32
let blob_threshold = 256

let is_digest s =
  String.length s = 32
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

(* ----- binary id→digest entry files (the index and the manifests) ----- *)

(* 8-byte magic, then fixed 32-byte entries: 16 raw bytes of the id MD5
   followed by 16 raw bytes of the object MD5.  Append-only; duplicate
   ids resolve last-wins; a trailing partial entry (a torn append) is
   ignored on load and repaired by fsck. *)
type entries = {
  e_path : string;
  e_tbl : (string, string) Hashtbl.t;
  mutable e_rev_order : string list;  (* ids, first-seen order, reversed *)
  mutable e_oc : out_channel option;
}

let parse_entries bytes tbl rev_order =
  let n = String.length bytes in
  if n >= 8 && String.sub bytes 0 8 = magic then begin
    let count = (n - 8) / entry_size in
    for i = 0 to count - 1 do
      let off = 8 + (i * entry_size) in
      let id = Digest.to_hex (String.sub bytes off 16) in
      let dg = Digest.to_hex (String.sub bytes (off + 16) 16) in
      if not (Hashtbl.mem tbl id) then rev_order := id :: !rev_order;
      Hashtbl.replace tbl id dg
    done
  end

(* Exclusive create with the magic already in place, so a reader that
   races the creation sees either no file or a well-formed empty one. *)
let ensure_entry_file path =
  if not (Sys.file_exists path) then begin
    Fs.mkdir_p (Filename.dirname path);
    match
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    with
    | fd ->
      let oc = Unix.out_channel_of_descr fd in
      output_string oc magic;
      flush oc;
      Unix.close fd
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_entries ~rw path =
  if rw then ensure_entry_file path;
  let tbl = Hashtbl.create 64 in
  let rev_order = ref [] in
  if Sys.file_exists path then parse_entries (Fs.read_file path) tbl rev_order;
  let oc =
    if rw then
      Some
        (Unix.out_channel_of_descr
           (Unix.openfile path
              [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
              0o644))
    else None
  in
  { e_path = path; e_tbl = tbl; e_rev_order = !rev_order; e_oc = oc }

let entries_add ~sync e ~id ~digest =
  let oc =
    match e.e_oc with
    | Some oc -> oc
    | None -> invalid_arg "Cas: append to a read-only entry file"
  in
  let raw = Digest.from_hex id ^ Digest.from_hex digest in
  output_string oc raw;
  flush oc;
  if sync then Unix.fsync (Unix.descr_of_out_channel oc);
  if not (Hashtbl.mem e.e_tbl id) then e.e_rev_order <- id :: e.e_rev_order;
  Hashtbl.replace e.e_tbl id digest

let entries_list e =
  (* e_rev_order is newest-first; rev_map restores first-added order *)
  List.rev_map (fun id -> (id, Hashtbl.find e.e_tbl id)) e.e_rev_order

let entries_close e =
  match e.e_oc with
  | Some oc ->
    close_out_noerr oc;
    e.e_oc <- None
  | None -> ()

(* Atomically replace the file with exactly [kept] (in order) and reset
   the in-memory view; the append channel is reopened because the old
   one points at the renamed-over inode. *)
let entries_rewrite ~sync e kept =
  let buf = Buffer.create (8 + (List.length kept * entry_size)) in
  Buffer.add_string buf magic;
  List.iter
    (fun (id, dg) ->
      Buffer.add_string buf (Digest.from_hex id);
      Buffer.add_string buf (Digest.from_hex dg))
    kept;
  Fs.write_atomic ~sync ~path:e.e_path (Buffer.contents buf);
  Hashtbl.reset e.e_tbl;
  e.e_rev_order <- [];
  List.iter
    (fun (id, dg) ->
      if not (Hashtbl.mem e.e_tbl id) then e.e_rev_order <- id :: e.e_rev_order;
      Hashtbl.replace e.e_tbl id dg)
    kept;
  if e.e_oc <> None then begin
    entries_close e;
    e.e_oc <-
      Some
        (Unix.out_channel_of_descr
           (Unix.openfile e.e_path
              [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
              0o644))
  end

(* ----- store ----- *)

type t = {
  c_root : string;
  c_sync : bool;
  c_mutex : Mutex.t;
  c_index : entries;
}

let objects_dir t = Filename.concat t.c_root "objects"
let manifests_dir t = Filename.concat t.c_root "manifests"
let quarantine_dir t = Filename.concat t.c_root "quarantine"
let index_path root = Filename.concat root "index.bin"

let object_path t digest =
  Filename.concat (objects_dir t)
    (Filename.concat (String.sub digest 0 2)
       (String.sub digest 2 (String.length digest - 2)))

let open_ ?(sync = true) root =
  Fs.mkdir_p root;
  Fs.mkdir_p (Filename.concat root "objects");
  Fs.mkdir_p (Filename.concat root "manifests");
  {
    c_root = root;
    c_sync = sync;
    c_mutex = Mutex.create ();
    c_index = open_entries ~rw:true (index_path root);
  }

let root t = t.c_root
let close t = entries_close t.c_index

let locked t f =
  Mutex.lock t.c_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.c_mutex) f

(* ----- objects ----- *)

let put t bytes =
  let digest = Digest.to_hex (Digest.string bytes) in
  let path = object_path t digest in
  if not (Sys.file_exists path) then
    Fs.write_atomic ~sync:t.c_sync ~path bytes;
  digest

let get t digest =
  if not (is_digest digest) then None
  else begin
    let path = object_path t digest in
    match Fs.read_file path with
    | bytes ->
      if Digest.to_hex (Digest.string bytes) = digest then Some bytes
      else None (* corrupt: report as absent, fsck quarantines *)
    | exception Sys_error _ -> None
  end

let mem t digest = is_digest digest && Sys.file_exists (object_path t digest)

(* ----- records with blob externalization ----- *)

let rec externalize t j =
  match j with
  | Cjson.Str s when String.length s >= blob_threshold ->
    Cjson.Obj [ ("$blob", Cjson.Str (put t s)) ]
  | Cjson.List l -> Cjson.List (List.map (externalize t) l)
  | Cjson.Obj kvs -> Cjson.Obj (List.map (fun (k, v) -> (k, externalize t v)) kvs)
  | j -> j

exception Missing_blob of string

let rec internalize t j =
  match j with
  | Cjson.Obj [ ("$blob", Cjson.Str d) ] -> (
    match get t d with
    | Some bytes -> Cjson.Str bytes
    | None -> raise (Missing_blob d))
  | Cjson.List l -> Cjson.List (List.map (internalize t) l)
  | Cjson.Obj kvs -> Cjson.Obj (List.map (fun (k, v) -> (k, internalize t v)) kvs)
  | j -> j

let rec blob_refs acc j =
  match j with
  | Cjson.Obj [ ("$blob", Cjson.Str d) ] -> d :: acc
  | Cjson.List l -> List.fold_left blob_refs acc l
  | Cjson.Obj kvs -> List.fold_left (fun acc (_, v) -> blob_refs acc v) acc kvs
  | _ -> acc

let put_record t json = put t (Cjson.to_string (externalize t json))

let get_record t digest =
  match get t digest with
  | None -> Error (Printf.sprintf "record %s: missing or corrupt object" digest)
  | Some bytes -> (
    match Cjson.of_string bytes with
    | Error e -> Error (Printf.sprintf "record %s: %s" digest e)
    | Ok json -> (
      match internalize t json with
      | json -> Ok json
      | exception Missing_blob d ->
        Error (Printf.sprintf "record %s: missing blob %s" digest d)))

(* ----- index ----- *)

let index_lookup t id = locked t (fun () -> Hashtbl.find_opt t.c_index.e_tbl id)

let index_add t ~id ~digest =
  locked t (fun () -> entries_add ~sync:t.c_sync t.c_index ~id ~digest)

let index_size t = locked t (fun () -> Hashtbl.length t.c_index.e_tbl)

(* ----- manifests ----- *)

type manifest = { m_store : t; m_entries : entries }

let manifest_idx_path t name =
  Filename.concat (manifests_dir t) (name ^ ".idx")

let manifest_meta_path t name =
  Filename.concat (manifests_dir t) (name ^ ".json")

let manifest t ~name ~dir =
  let meta = manifest_meta_path t name in
  if not (Sys.file_exists meta) then
    Fs.write_atomic ~sync:t.c_sync ~path:meta
      (Cjson.to_string (Cjson.Obj [ ("dir", Cjson.Str dir) ]) ^ "\n");
  { m_store = t; m_entries = open_entries ~rw:true (manifest_idx_path t name) }

let manifest_ro t ~name =
  let path = manifest_idx_path t name in
  if Sys.file_exists path then
    Some { m_store = t; m_entries = open_entries ~rw:false path }
  else None

let manifest_lookup m id = Hashtbl.find_opt m.m_entries.e_tbl id

let manifest_add m ~id ~digest =
  entries_add ~sync:m.m_store.c_sync m.m_entries ~id ~digest

let manifest_entries m = entries_list m.m_entries
let manifest_size m = Hashtbl.length m.m_entries.e_tbl
let manifest_close m = entries_close m.m_entries

let manifest_names t =
  let dir = manifests_dir t in
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".idx" f)
    |> List.sort compare

let manifest_dir t name =
  match Fs.read_file (manifest_meta_path t name) with
  | contents -> (
    match Cjson.of_string (String.trim contents) with
    | Ok j -> Cjson.mem_str "dir" j
    | Error _ -> None)
  | exception Sys_error _ -> None

(* ----- walking the object tree ----- *)

let fold_objects t f init =
  let dir = objects_dir t in
  if not (Sys.file_exists dir) then init
  else begin
    let subs = Sys.readdir dir in
    Array.sort compare subs;
    Array.fold_left
      (fun acc sub ->
        let sub_path = Filename.concat dir sub in
        if not (Sys.is_directory sub_path) then acc
        else begin
          let files = Sys.readdir sub_path in
          Array.sort compare files;
          Array.fold_left
            (fun acc file ->
              f acc ~digest:(sub ^ file) ~path:(Filename.concat sub_path file))
            acc files
        end)
      init subs
  end

(* Reachability: every manifest root record plus every blob those
   records reference. *)
let live_digests t names =
  let live = Hashtbl.create 256 in
  List.iter
    (fun name ->
      match manifest_ro t ~name with
      | None -> ()
      | Some m ->
        List.iter
          (fun (_, digest) ->
            Hashtbl.replace live digest ();
            match get t digest with
            | None -> ()
            | Some bytes -> (
              match Cjson.of_string bytes with
              | Ok json ->
                List.iter
                  (fun d -> Hashtbl.replace live d ())
                  (blob_refs [] json)
              | Error _ -> ()))
          (manifest_entries m))
    names;
  live

(* ----- gc ----- *)

type gc_stats = {
  gc_live_objects : int;
  gc_swept_objects : int;
  gc_swept_bytes : int;
  gc_dropped_manifests : string list;
  gc_index_entries : int;
}

let gc t =
  locked t (fun () ->
      (* 1. manifests whose campaign directory vanished are dead *)
      let dropped, kept =
        List.partition
          (fun name ->
            match manifest_dir t name with
            | Some dir -> not (Sys.file_exists dir)
            | None -> false (* no sidecar: keep, cannot verify *))
          (manifest_names t)
      in
      List.iter
        (fun name ->
          (try Sys.remove (manifest_idx_path t name) with Sys_error _ -> ());
          try Sys.remove (manifest_meta_path t name) with Sys_error _ -> ())
        dropped;
      (* 2. the index is exactly the union of the surviving manifests *)
      let index_entries =
        List.concat_map
          (fun name ->
            match manifest_ro t ~name with
            | Some m -> manifest_entries m
            | None -> [])
          kept
      in
      let seen = Hashtbl.create 256 in
      let index_entries =
        (* last manifest wins per id, like append order would *)
        List.rev
          (List.fold_left
             (fun acc (id, dg) ->
               if Hashtbl.mem seen id then
                 List.map (fun (i, d) -> if i = id then (i, dg) else (i, d)) acc
               else begin
                 Hashtbl.add seen id ();
                 (id, dg) :: acc
               end)
             [] index_entries)
      in
      entries_rewrite ~sync:t.c_sync t.c_index index_entries;
      (* 3. sweep unreachable objects *)
      let live = live_digests t kept in
      let swept, swept_bytes =
        fold_objects t
          (fun (n, bytes) ~digest ~path ->
            if Hashtbl.mem live digest then (n, bytes)
            else begin
              let sz =
                match Unix.stat path with
                | { Unix.st_size; _ } -> st_size
                | exception Unix.Unix_error _ -> 0
              in
              (try Sys.remove path with Sys_error _ -> ());
              (n + 1, bytes + sz)
            end)
          (0, 0)
      in
      (* prune now-empty fan-out directories *)
      (match Sys.readdir (objects_dir t) with
      | subs ->
        Array.iter
          (fun sub ->
            let p = Filename.concat (objects_dir t) sub in
            if Sys.is_directory p && Sys.readdir p = [||] then
              try Unix.rmdir p with Unix.Unix_error _ -> ())
          subs
      | exception Sys_error _ -> ());
      {
        gc_live_objects = Hashtbl.length live;
        gc_swept_objects = swept;
        gc_swept_bytes = swept_bytes;
        gc_dropped_manifests = dropped;
        gc_index_entries = List.length index_entries;
      })

(* ----- fsck ----- *)

type fsck_report = {
  f_objects : int;
  f_corrupt : (string * string) list;
  f_index_dropped : int;
  f_index_torn_bytes : int;
  f_manifest_dropped : (string * int) list;
  f_ok : bool;
}

let quarantine t ~digest ~path =
  Fs.mkdir_p (quarantine_dir t);
  let base = Filename.concat (quarantine_dir t) digest in
  let dest =
    if not (Sys.file_exists base) then base
    else begin
      let rec free i =
        let p = Printf.sprintf "%s.%d" base i in
        if Sys.file_exists p then free (i + 1) else p
      in
      free 1
    end
  in
  Sys.rename path dest

let fsck t =
  locked t (fun () ->
      (* 1. every object must hash to its name *)
      let objects, corrupt =
        fold_objects t
          (fun (n, bad) ~digest ~path ->
            if not (is_digest digest) then begin
              quarantine t ~digest ~path;
              (n + 1, (path, "malformed object name") :: bad)
            end
            else begin
              match Fs.read_file path with
              | bytes ->
                if Digest.to_hex (Digest.string bytes) = digest then (n + 1, bad)
                else begin
                  quarantine t ~digest ~path;
                  (n + 1, (path, "digest mismatch") :: bad)
                end
              | exception Sys_error e -> (n + 1, (path, e) :: bad)
            end)
          (0, [])
      in
      let corrupt = List.rev corrupt in
      (* 2. index: torn tail, bad header, entries without objects *)
      let raw =
        match Fs.read_file t.c_index.e_path with
        | s -> s
        | exception Sys_error _ -> ""
      in
      let headerless =
        String.length raw < 8 || String.sub raw 0 8 <> magic
      in
      let torn_bytes =
        if headerless then String.length raw
        else (String.length raw - 8) mod entry_size
      in
      let tbl = Hashtbl.create 64 and rev_order = ref [] in
      if not headerless then parse_entries raw tbl rev_order;
      let all =
        List.rev_map (fun id -> (id, Hashtbl.find tbl id)) !rev_order
      in
      let kept, index_dropped =
        List.fold_left
          (fun (kept, dropped) (id, dg) ->
            if mem t dg then ((id, dg) :: kept, dropped)
            else (kept, dropped + 1))
          ([], 0) all
      in
      let kept = List.rev kept in
      if headerless || torn_bytes > 0 || index_dropped > 0 then
        entries_rewrite ~sync:t.c_sync t.c_index kept;
      (* 3. manifests: drop entries whose record object is gone *)
      let manifest_dropped =
        List.filter_map
          (fun name ->
            match manifest_ro t ~name with
            | None -> None
            | Some m ->
              let entries = manifest_entries m in
              let kept, dropped =
                List.partition (fun (_, dg) -> mem t dg) entries
              in
              if dropped = [] then None
              else begin
                entries_rewrite ~sync:t.c_sync m.m_entries kept;
                Some (name, List.length dropped)
              end)
          (manifest_names t)
      in
      {
        f_objects = objects;
        f_corrupt = corrupt;
        f_index_dropped = index_dropped;
        f_index_torn_bytes = torn_bytes;
        f_manifest_dropped = manifest_dropped;
        f_ok =
          corrupt = [] && index_dropped = 0 && torn_bytes = 0
          && not headerless && manifest_dropped = [];
      })

(* ----- stats ----- *)

type stats = {
  st_objects : int;
  st_bytes : int;
  st_index_entries : int;
  st_manifests : (string * int) list;
  st_blobs : int;
  st_blob_refs : int;
  st_shared_blobs : int;
  st_saved_bytes : int;
}

let stats t =
  locked t (fun () ->
      let objects, bytes =
        fold_objects t
          (fun (n, b) ~digest:_ ~path ->
            let sz =
              match Unix.stat path with
              | { Unix.st_size; _ } -> st_size
              | exception Unix.Unix_error _ -> 0
            in
            (n + 1, b + sz))
          (0, 0)
      in
      let names = manifest_names t in
      let manifests =
        List.map
          (fun name ->
            ( name,
              match manifest_ro t ~name with
              | Some m -> manifest_size m
              | None -> 0 ))
          names
      in
      (* blob sharing: reference counts across every manifest's records *)
      let refs = Hashtbl.create 64 in
      List.iter
        (fun name ->
          match manifest_ro t ~name with
          | None -> ()
          | Some m ->
            List.iter
              (fun (_, digest) ->
                match get t digest with
                | None -> ()
                | Some record_bytes -> (
                  match Cjson.of_string record_bytes with
                  | Ok json ->
                    List.iter
                      (fun d ->
                        Hashtbl.replace refs d
                          (1 + Option.value ~default:0 (Hashtbl.find_opt refs d)))
                      (blob_refs [] json)
                  | Error _ -> ()))
              (manifest_entries m))
        names;
      let blobs, blob_refs_total, shared, saved =
        Hashtbl.fold
          (fun d n (blobs, total, shared, saved) ->
            let sz =
              match Unix.stat (object_path t d) with
              | { Unix.st_size; _ } -> st_size
              | exception Unix.Unix_error _ -> 0
            in
            ( blobs + 1,
              total + n,
              (if n > 1 then shared + 1 else shared),
              saved + ((n - 1) * sz) ))
          refs (0, 0, 0, 0)
      in
      {
        st_objects = objects;
        st_bytes = bytes;
        st_index_entries = Hashtbl.length t.c_index.e_tbl;
        st_manifests = manifests;
        st_blobs = blobs;
        st_blob_refs = blob_refs_total;
        st_shared_blobs = shared;
        st_saved_bytes = saved;
      })
