let default_root = "campaigns"

let dir_for ?(root = default_root) name = Filename.concat root name

let matrix_file = "matrix.json"
let report_file = "report.txt"

let load_matrix ~dir =
  let path = Filename.concat dir matrix_file in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no %s in %s (not a campaign directory?)" matrix_file dir)
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    Result.bind (Cjson.of_string contents) Campaign_job.matrix_of_json
  end

(* ----- job states against the store ----- *)

type state =
  | S_done of Cjson.t
  | S_failed of Job_store.failure_kind * string * int
  | S_pending

let states ~dir matrix =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Job_store.record) -> Hashtbl.replace tbl r.Job_store.r_id r)
    (Job_store.load ~dir);
  List.map
    (fun (j : Campaign_job.t) ->
      let st =
        match Hashtbl.find_opt tbl j.Campaign_job.id with
        | Some { Job_store.r_outcome = Job_store.Done p; _ } -> S_done p
        | Some
            { Job_store.r_outcome = Job_store.Failed { kind; message; attempts };
              _ } ->
          S_failed (kind, message, attempts)
        | None -> S_pending
      in
      (j, st))
    (Campaign_job.expand matrix)

let count_states sts =
  List.fold_left
    (fun (d, f, t, p) (_, st) ->
      match st with
      | S_done _ -> (d + 1, f, t, p)
      | S_failed (Job_store.Timeout, _, _) -> (d, f, t + 1, p)
      | S_failed (Job_store.Exception, _, _) -> (d, f + 1, t, p)
      | S_pending -> (d, f, t, p + 1))
    (0, 0, 0, 0) sts

let header (m : Campaign_job.matrix) sts =
  let done_, failed, timeout, pending = count_states sts in
  Printf.sprintf
    "campaign %s: %d jobs — %d done, %d failed, %d timed out, %d pending\n"
    m.Campaign_job.m_name (List.length sts) done_ failed timeout pending

(* ----- status ----- *)

let status ~dir matrix =
  let sts = states ~dir matrix in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header matrix sts);
  List.iter
    (fun ((j : Campaign_job.t), st) ->
      match st with
      | S_done _ -> ()
      | S_failed (kind, msg, attempts) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-40s %s after %d attempt%s: %s\n"
             (Campaign_job.describe j.Campaign_job.spec)
             (match kind with
             | Job_store.Timeout -> "TIMEOUT"
             | Job_store.Exception -> "FAILED")
             attempts
             (if attempts = 1 then "" else "s")
             msg)
      | S_pending ->
        Buffer.add_string buf
          (Printf.sprintf "  %-40s pending\n"
             (Campaign_job.describe j.Campaign_job.spec)))
    sts;
  let summary_path = Filename.concat dir "summary.json" in
  if Sys.file_exists summary_path then begin
    let ic = open_in_bin summary_path in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    Buffer.add_string buf ("telemetry: " ^ String.trim contents ^ "\n")
  end;
  (* where this campaign's results live in the shared store *)
  let pointer = Filename.concat dir "store.json" in
  (if Sys.file_exists pointer then
     match Cjson.of_string (String.trim (Fs.read_file pointer)) with
     | Ok j ->
       let field name = Option.value ~default:"?" (Cjson.mem_str name j) in
       Buffer.add_string buf
         (Printf.sprintf "store: %s (manifest %s)\n" (field "store")
            (field "manifest"))
     | Error _ -> ());
  Buffer.contents buf

(* ----- report ----- *)

(* Registry payloads are uniform: verdict / iterations / queries /
   broken.  The "status"/"dips"/"candidates_tried" fallbacks read the
   pre-registry (v1) payload shape so old result stores still render. *)
let attack_outcome payload =
  match Cjson.mem_str "verdict" payload with
  | Some s -> (
    (* a gave_up row carries its structural reason since payload v2 *)
    match Cjson.mem_str "gave_up_reason" payload with
    | Some r -> s ^ "(" ^ r ^ ")"
    | None -> s)
  | None -> (
    match Cjson.mem_str "status" payload with
    | Some s -> s
    | None -> (
      match Cjson.mem_bool "exact" payload with
      | Some true -> "exact_key"
      | Some false -> "approx_key"
      | None -> "done"))

let attack_iters payload =
  match Cjson.mem_int "iterations" payload with
  | Some i -> string_of_int i
  | None -> (
    match Cjson.mem_int "dips" payload with
    | Some i -> string_of_int i
    | None -> (
      match Cjson.mem_int "candidates_tried" payload with
      | Some i -> string_of_int i
      | None -> "-"))

let attack_queries payload =
  match Cjson.mem_int "queries" payload with
  | Some q -> string_of_int q
  | None -> "-"

let attack_verdict payload =
  match Cjson.mem_bool "broken" payload with
  | Some true -> "broken"
  | Some false -> "resists"
  | None -> "-"

let report ~dir matrix =
  let sts = states ~dir matrix in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header matrix sts);
  (* Table I view *)
  let t1_rows =
    List.filter_map
      (fun ((j : Campaign_job.t), st) ->
        match (j.Campaign_job.spec, st) with
        | Campaign_job.Table1 _, S_done p ->
          Campaign_exec.table1_row_of_payload p
        | _ -> None)
      sts
  in
  if t1_rows <> [] then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Report.table1 t1_rows)
  end;
  (* Table II views, one per profile *)
  let t2_profiles =
    List.fold_left
      (fun acc ((j : Campaign_job.t), _) ->
        match j.Campaign_job.spec with
        | Campaign_job.Table2 { profile; _ } when not (List.mem profile acc) ->
          profile :: acc
        | _ -> acc)
      [] sts
    |> List.rev
  in
  List.iter
    (fun prof ->
      let rows =
        List.filter_map
          (fun ((j : Campaign_job.t), st) ->
            match (j.Campaign_job.spec, st) with
            | Campaign_job.Table2 { profile; _ }, S_done p when profile = prof
              ->
              Campaign_exec.table2_row_of_payload p
            | _ -> None)
          sts
      in
      if rows <> [] then begin
        Buffer.add_char buf '\n';
        if prof <> "standard" then
          Buffer.add_string buf
            (Printf.sprintf "(delay profile: %s)\n" prof);
        Buffer.add_string buf (Report.table2 rows)
      end)
    t2_profiles;
  (* Attack matrix *)
  let attacks =
    List.filter_map
      (fun ((j : Campaign_job.t), st) ->
        match j.Campaign_job.spec with
        | Campaign_job.Attack { bench; scheme; width; attack; seed } ->
          Some ((bench, scheme, width, attack, seed), st)
        | _ -> None)
      sts
  in
  if attacks <> [] then begin
    let t =
      Ascii_table.create ~title:"Attack matrix"
        ~columns:
          [
            ("bench", Ascii_table.Left);
            ("scheme", Ascii_table.Left);
            ("n", Ascii_table.Right);
            ("attack", Ascii_table.Left);
            ("seed", Ascii_table.Right);
            ("keys", Ascii_table.Right);
            ("outcome", Ascii_table.Left);
            ("iters", Ascii_table.Right);
            ("queries", Ascii_table.Right);
            ("verdict", Ascii_table.Left);
          ]
    in
    List.iter
      (fun ((bench, scheme, width, attack, seed), st) ->
        let keys, outcome, iters, queries, verdict =
          match st with
          | S_done p ->
            ( (match Cjson.mem_int "keys" p with
              | Some k -> string_of_int k
              | None -> "-"),
              attack_outcome p,
              attack_iters p,
              attack_queries p,
              attack_verdict p )
          | S_failed (Job_store.Timeout, _, _) ->
            ("-", "TIMEOUT", "-", "-", "-")
          | S_failed (Job_store.Exception, msg, _) ->
            let msg =
              if String.length msg > 32 then String.sub msg 0 32 ^ "…" else msg
            in
            ("-", "FAILED: " ^ msg, "-", "-", "-")
          | S_pending -> ("-", "pending", "-", "-", "-")
        in
        Ascii_table.add_row t
          [
            bench; scheme; string_of_int width; attack; string_of_int seed;
            keys; outcome; iters; queries; verdict;
          ])
      attacks;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Ascii_table.render t)
  end;
  Buffer.contents buf

(* ----- table views over a raw store (no matrix needed) ----- *)

let done_specs ~dir =
  List.filter_map
    (fun (r : Job_store.record) ->
      match r.Job_store.r_outcome with
      | Job_store.Done p -> (
        match Campaign_job.spec_of_json r.Job_store.r_spec with
        | Ok spec -> Some (spec, p)
        | Error _ -> None)
      | Job_store.Failed _ -> None)
    (Job_store.load ~dir)
  |> List.sort (fun (a, _) (b, _) -> Campaign_job.compare_spec a b)

let table1_view dir =
  List.filter_map
    (fun (spec, p) ->
      match spec with
      | Campaign_job.Table1 _ -> Campaign_exec.table1_row_of_payload p
      | _ -> None)
    (done_specs ~dir)

let table2_view ?(profile = "standard") dir =
  List.filter_map
    (fun (spec, p) ->
      match spec with
      | Campaign_job.Table2 { profile = pr; _ } when pr = profile ->
        Campaign_exec.table2_row_of_payload p
      | _ -> None)
    (done_specs ~dir)

(* ----- run ----- *)

let run ?workers ?timeout_s ?retries ?exec ?should_abort ~dir matrix =
  Fs.mkdir_p dir;
  Fs.write_atomic
    ~path:(Filename.concat dir matrix_file)
    (Cjson.to_string (Campaign_job.matrix_to_json matrix) ^ "\n");
  let config =
    {
      Campaign_runner.workers =
        Option.value workers
          ~default:Campaign_runner.default_config.Campaign_runner.workers;
      timeout_s =
        Option.value timeout_s
          ~default:Campaign_runner.default_config.Campaign_runner.timeout_s;
      max_retries =
        Option.value retries
          ~default:Campaign_runner.default_config.Campaign_runner.max_retries;
    }
  in
  let exec =
    match exec with
    | Some f -> f
    | None -> fun (j : Campaign_job.t) -> Campaign_exec.run j.Campaign_job.spec
  in
  let store = Job_store.open_ dir in
  let telemetry = Telemetry.create ~dir in
  let jobs = Campaign_job.expand matrix in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.write_summary telemetry;
      Job_store.close store;
      Telemetry.close telemetry;
      Fs.write_atomic
        ~path:(Filename.concat dir report_file)
        (report ~dir matrix))
    (fun () ->
      Campaign_runner.run ~store ~telemetry ?should_abort config ~jobs ~exec)
