(** Campaign jobs: the unit of work of the experiment matrix.

    A campaign is declared as a {!matrix} — benchmarks × schemes × key
    widths × attacks × seeds, plus the paper's table rows — and
    {!expand}ed into concrete jobs.  Every job carries a deterministic
    {e content-derived ID}: the MD5 digest of its canonical JSON spec
    under a format-version prefix.  The ID is the job store's key, so

    - re-running a campaign finds completed jobs by ID and skips them;
    - changing any input (seed, width, scheme parameters, or the spec
      format itself) changes the ID and thus invalidates exactly the
      affected jobs, never the rest of the store. *)

(** What one job computes. *)
type spec =
  | Table1 of { bench : string }
      (** one Table I row: available-FF analysis of [bench] *)
  | Table2 of { bench : string; profile : string }
      (** one Table II row under a delay-composition profile
          ("standard" / "buffers" / "custom") *)
  | Attack of {
      bench : string;  (** benchmark name, or "s27" / "tiny" *)
      scheme : string; (** gk / xor / mux / sarlock / antisat / fault / hybrid *)
      width : int;     (** scheme size: GK count, key-bit count, ... *)
      attack : string; (** sat / appsat / sensitization / removal / none *)
      seed : int;
    }

type t = { id : string; spec : spec }

(** Canonical JSON of a spec — the bytes that get digested. *)
val spec_to_json : spec -> Cjson.t

val spec_of_json : Cjson.t -> (spec, string) result

(** The format-version prefix digested into every ID.  Bumping it
    invalidates every stored record at once (a spec-format change). *)
val id_format : string

(** [id spec] is the content-derived job ID (32 hex chars). *)
val id : spec -> string

(** [make spec] pairs the spec with its ID. *)
val make : spec -> t

(** Short human-readable label, e.g. ["attack s5378 gk/8 sat #1"]. *)
val describe : spec -> string

(** Deterministic total order used by reports (table rows in paper
    order first, then attack jobs by bench/scheme/width/attack/seed). *)
val compare_spec : spec -> spec -> int

(** {1 Matrices} *)

type matrix = {
  m_name : string;
  m_tables : string list;
      (** table campaigns to include: ["table1"], ["table2"],
          ["table2:buffers"], ["table2:custom"] *)
  m_benches : string list;
  m_schemes : string list;
  m_widths : int list;
  m_attacks : string list;
  m_seeds : int list;
}

(** [expand m] is the full job list: every table row plus the cartesian
    product benches × schemes × widths × attacks × seeds, deduplicated
    by ID, in {!compare_spec} order. *)
val expand : matrix -> t list

val matrix_to_json : matrix -> Cjson.t
val matrix_of_json : Cjson.t -> (matrix, string) result

(** Built-in campaigns: ["smoke"] (tiny, seconds), ["table1"],
    ["table2"], ["sat"] (the Sec. VI SAT-attack matrix), ["paper"]
    (tables + SAT matrix). *)
val builtin : string -> matrix option

val builtin_names : string list
