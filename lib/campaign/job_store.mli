(** Campaign result store, backed by the content-addressed {!Cas}.

    Each finished job attempt chain is one record — either [Done] with
    the executor's payload or [Failed] with a structured failure.  A
    record is stored once as an immutable CAS object (large payload
    strings are shared between jobs as blobs) and referenced from two
    places: the campaign's own manifest (its GC roots, in append order)
    and the store-wide index (id→object, O(1) lookup).  Sibling
    campaigns under one root share a store, so a job already computed by
    {e any} campaign is found by {!find} and adopted instead of re-run.

    Durability: appends go object-first (tmp + fsync + rename), then
    manifest, then index, so a crash can lose at most the entry being
    written and never leaves a reader-visible torn record; a corrupt
    object reads as absent ({!Cas.fsck} quarantines it) and the job
    simply becomes pending again.  For duplicate IDs the last entry wins
    (a forced re-run supersedes the old record).

    Legacy migration: a store directory holding a pre-CAS
    [results.jsonl] is imported on {!open_} (the file is renamed
    [results.jsonl.migrated]); {!load} also merges any un-imported
    legacy lines, so reports stay byte-identical across the
    migration. *)

type failure_kind = Timeout | Exception

type outcome =
  | Done of Cjson.t  (** executor payload (metrics) *)
  | Failed of { kind : failure_kind; message : string; attempts : int }
      (** [attempts] = executions consumed, retries included *)

type record = {
  r_id : string;       (** {!Campaign_job.id} of the spec *)
  r_spec : Cjson.t;    (** canonical spec JSON, for self-contained files *)
  r_outcome : outcome;
  r_wall_s : float;    (** wall time of the last attempt; not reported *)
}

type t

(** [store_root ~dir] is the CAS root campaign directory [dir] uses:
    [$GKLOCK_STORE] when set, else a [store/] sibling of [dir] — so
    every campaign under one parent (e.g. [campaigns/]) shares one
    store. *)
val store_root : dir:string -> string

(** Stable manifest name for campaign directory [dir]: its sanitized
    basename plus a short digest of the absolute path, so same-named
    campaigns under different parents do not collide. *)
val manifest_name : dir:string -> string

(** [open_ ?sync dir] creates campaign directory [dir] if needed, opens
    (creating if needed) its shared store and manifest for appending,
    and imports a legacy [dir/results.jsonl] if one is present.  [sync]
    (default [true]) is passed to {!Cas.open_}. *)
val open_ : ?sync:bool -> string -> t

val dir : t -> string

(** The underlying store (for maintenance and tests). *)
val cas : t -> Cas.t

(** [lookup t id] is this campaign's record for [id], if any. *)
val lookup : t -> string -> record option

(** [find t id] also consults the store-wide index: a record computed by
    a sibling campaign is adopted into this campaign's manifest (so
    reports include it and GC keeps it) and returned as [`Adopted]. *)
val find : t -> string -> (record * [ `Own | `Adopted ]) option

(** Number of distinct job IDs with a record in this campaign. *)
val size : t -> int

(** [append t r] records [r] durably (object, then manifest, then
    index) and in memory. *)
val append : t -> record -> unit

val close : t -> unit

(** Read-only load of a campaign directory; missing stores and files
    yield [[]].  Distinct IDs only, last record per ID, in first-seen
    append order; corrupt entries are skipped.  Works on both CAS-backed
    and legacy (pure [results.jsonl]) directories. *)
val load : dir:string -> record list

val record_to_json : record -> Cjson.t
val record_of_json : Cjson.t -> (record, string) result
