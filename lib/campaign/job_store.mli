(** On-disk campaign result store: append-only JSONL, keyed by job ID.

    One line per finished job attempt chain — either [Done] with the
    executor's payload or [Failed] with a structured failure.  Lines are
    appended with a single [O_APPEND] write and flushed, so concurrent
    readers never see a torn record and a crash loses at most the line
    being written; {!load} skips corrupt or truncated lines, which is
    what makes interrupt/resume safe.  For duplicate IDs the last line
    wins (a forced re-run supersedes the old record). *)

type failure_kind = Timeout | Exception

type outcome =
  | Done of Cjson.t  (** executor payload (metrics) *)
  | Failed of { kind : failure_kind; message : string; attempts : int }
      (** [attempts] = executions consumed, retries included *)

type record = {
  r_id : string;       (** {!Campaign_job.id} of the spec *)
  r_spec : Cjson.t;    (** canonical spec JSON, for self-contained files *)
  r_outcome : outcome;
  r_wall_s : float;    (** wall time of the last attempt; not reported *)
}

type t

(** [open_ ~dir] creates [dir] if needed and loads [dir/results.jsonl]
    (if any) for appending. *)
val open_ : dir:string -> t

val dir : t -> string

(** [lookup t id] is the stored record for [id], if any. *)
val lookup : t -> string -> record option

(** Number of distinct job IDs with a record. *)
val size : t -> int

(** [append t r] records [r] durably (single-line append + flush) and in
    memory. *)
val append : t -> record -> unit

val close : t -> unit

(** Read-only load of a store directory; missing file = empty list.
    Distinct IDs only, last record per ID, in first-seen file order. *)
val load : dir:string -> record list

val record_to_json : record -> Cjson.t
val record_of_json : Cjson.t -> (record, string) result

(** [write_atomic ~path contents] writes via a temp file + rename, so
    readers see either the old or the new file, never a partial one. *)
val write_atomic : path:string -> string -> unit

(** [mkdir_p dir] creates [dir] and its parents (idempotent). *)
val mkdir_p : string -> unit
