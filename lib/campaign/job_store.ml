type failure_kind = Timeout | Exception

type outcome =
  | Done of Cjson.t
  | Failed of { kind : failure_kind; message : string; attempts : int }

type record = {
  r_id : string;
  r_spec : Cjson.t;
  r_outcome : outcome;
  r_wall_s : float;
}

let results_file = "results.jsonl"
let migrated_file = results_file ^ ".migrated"
let pointer_file = "store.json"

let record_to_json r =
  let outcome =
    match r.r_outcome with
    | Done payload ->
      Cjson.Obj [ ("status", Cjson.Str "done"); ("payload", payload) ]
    | Failed { kind; message; attempts } ->
      Cjson.Obj
        [
          ("status", Cjson.Str "failed");
          ( "kind",
            Cjson.Str
              (match kind with Timeout -> "timeout" | Exception -> "exception")
          );
          ("message", Cjson.Str message);
          ("attempts", Cjson.Int attempts);
        ]
  in
  Cjson.Obj
    [
      ("id", Cjson.Str r.r_id);
      ("spec", r.r_spec);
      ("outcome", outcome);
      ("wall_s", Cjson.Float r.r_wall_s);
    ]

let record_of_json j =
  let ( let* ) = Result.bind in
  let* r_id =
    match Cjson.mem_str "id" j with
    | Some s -> Ok s
    | None -> Error "record: missing \"id\""
  in
  let* r_spec =
    match Cjson.member "spec" j with
    | Some s -> Ok s
    | None -> Error "record: missing \"spec\""
  in
  let* o =
    match Cjson.member "outcome" j with
    | Some o -> Ok o
    | None -> Error "record: missing \"outcome\""
  in
  let* r_outcome =
    match Cjson.mem_str "status" o with
    | Some "done" -> (
      match Cjson.member "payload" o with
      | Some p -> Ok (Done p)
      | None -> Error "record: done without payload")
    | Some "failed" ->
      let* kind =
        match Cjson.mem_str "kind" o with
        | Some "timeout" -> Ok Timeout
        | Some "exception" -> Ok Exception
        | _ -> Error "record: bad failure kind"
      in
      let message = Option.value ~default:"" (Cjson.mem_str "message" o) in
      let attempts = Option.value ~default:1 (Cjson.mem_int "attempts" o) in
      Ok (Failed { kind; message; attempts })
    | _ -> Error "record: bad outcome status"
  in
  let r_wall_s = Option.value ~default:0.0 (Cjson.mem_float "wall_s" j) in
  Ok { r_id; r_spec; r_outcome; r_wall_s }

let parse_record line =
  if String.trim line = "" then None
  else
    match Cjson.of_string line with
    | Ok j -> ( match record_of_json j with Ok r -> Some r | Error _ -> None)
    | Error _ -> None (* torn/corrupt line (e.g. a crash mid-write): skip *)

(* ----- store location ----- *)

let absolutize p =
  if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p

let store_root ~dir =
  match Sys.getenv_opt "GKLOCK_STORE" with
  | Some s when s <> "" -> s
  | _ -> Filename.concat (Filename.dirname (absolutize dir)) "store"

let manifest_name ~dir =
  let base =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
        | _ -> '_')
      (Filename.basename (absolutize dir))
  in
  let short = String.sub (Digest.to_hex (Digest.string (absolutize dir))) 0 8 in
  base ^ "-" ^ short

(* ----- open store ----- *)

type t = {
  s_dir : string;
  s_cas : Cas.t;
  s_manifest : Cas.manifest;
  s_mutex : Mutex.t;
  s_cache : (string, record) Hashtbl.t;  (* parsed-record read cache *)
}

let read_record cas digest =
  match Cas.get_record cas digest with
  | Error _ -> None (* corrupt/missing: absent, the job goes pending again *)
  | Ok json -> (
    match record_of_json json with Ok r -> Some r | Error _ -> None)

(* Import a pre-CAS results.jsonl into the store, then move it aside so
   reports (and a second open) do not double-count it. *)
let import_legacy cas manifest dir =
  let path = Filename.concat dir results_file in
  if Sys.file_exists path then begin
    Fs.fold_lines path
      (fun () line ->
        match parse_record line with
        | None -> ()
        | Some r ->
          let digest = Cas.put_record cas (record_to_json r) in
          Cas.manifest_add manifest ~id:r.r_id ~digest;
          Cas.index_add cas ~id:r.r_id ~digest)
      ();
    let migrated = Filename.concat dir migrated_file in
    (try Sys.remove migrated with Sys_error _ -> ());
    Sys.rename path migrated
  end

let open_ ?(sync = true) dir =
  Fs.mkdir_p dir;
  let root = store_root ~dir in
  let name = manifest_name ~dir in
  let cas = Cas.open_ ~sync root in
  let manifest = Cas.manifest cas ~name ~dir:(absolutize dir) in
  import_legacy cas manifest dir;
  (* breadcrumb for read-only tooling: which store + manifest is ours *)
  Fs.write_atomic ~sync
    ~path:(Filename.concat dir pointer_file)
    (Cjson.to_string
       (Cjson.Obj [ ("store", Cjson.Str root); ("manifest", Cjson.Str name) ])
    ^ "\n");
  {
    s_dir = dir;
    s_cas = cas;
    s_manifest = manifest;
    s_mutex = Mutex.create ();
    s_cache = Hashtbl.create 64;
  }

let dir t = t.s_dir
let cas t = t.s_cas

let locked t f =
  Mutex.lock t.s_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.s_mutex) f

let lookup t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.s_cache id with
      | Some r -> Some r
      | None -> (
        match Cas.manifest_lookup t.s_manifest id with
        | None -> None
        | Some digest -> (
          match read_record t.s_cas digest with
          | None -> None
          | Some r ->
            Hashtbl.replace t.s_cache id r;
            Some r)))

let find t id =
  match lookup t id with
  | Some r -> Some (r, `Own)
  | None ->
    locked t (fun () ->
        match Cas.index_lookup t.s_cas id with
        | None -> None
        | Some digest -> (
          match read_record t.s_cas digest with
          | None -> None
          | Some r ->
            (* adopt the sibling campaign's result as one of our roots *)
            Cas.manifest_add t.s_manifest ~id ~digest;
            Hashtbl.replace t.s_cache id r;
            Some (r, `Adopted)))

let size t = Cas.manifest_size t.s_manifest

let append t r =
  locked t (fun () ->
      let digest = Cas.put_record t.s_cas (record_to_json r) in
      Cas.manifest_add t.s_manifest ~id:r.r_id ~digest;
      Cas.index_add t.s_cas ~id:r.r_id ~digest;
      Hashtbl.replace t.s_cache r.r_id r)

let close t =
  locked t (fun () ->
      Cas.manifest_close t.s_manifest;
      Cas.close t.s_cas)

(* ----- read-only load ----- *)

let load ~dir =
  let tbl = Hashtbl.create 64 in
  let rev_order = ref [] in
  let pointer = Filename.concat dir pointer_file in
  (if Sys.file_exists pointer then begin
     let name, root =
       match Cjson.of_string (String.trim (Fs.read_file pointer)) with
       | Ok j -> (Cjson.mem_str "manifest" j, Cjson.mem_str "store" j)
       | Error _ -> (None, None)
     in
     let name = Option.value ~default:(manifest_name ~dir) name in
     let root = Option.value ~default:(store_root ~dir) root in
     if Sys.file_exists root then begin
       let cas = Cas.open_ root in
       Fun.protect
         ~finally:(fun () -> Cas.close cas)
         (fun () ->
           match Cas.manifest_ro cas ~name with
           | None -> ()
           | Some m ->
             List.iter
               (fun (id, digest) ->
                 match read_record cas digest with
                 | None -> ()
                 | Some r ->
                   if not (Hashtbl.mem tbl id) then rev_order := id :: !rev_order;
                   Hashtbl.replace tbl id r)
               (Cas.manifest_entries m))
     end
   end);
  (* any legacy lines not yet imported (manifest wins for duplicate ids) *)
  let legacy = Filename.concat dir results_file in
  let rev_order =
    Fs.fold_lines legacy
      (fun order line ->
        match parse_record line with
        | None -> order
        | Some r ->
          if Hashtbl.mem tbl r.r_id then order
          else begin
            Hashtbl.replace tbl r.r_id r;
            r.r_id :: order
          end)
      !rev_order
  in
  List.rev_map (fun id -> Hashtbl.find tbl id) rev_order
