type failure_kind = Timeout | Exception

type outcome =
  | Done of Cjson.t
  | Failed of { kind : failure_kind; message : string; attempts : int }

type record = {
  r_id : string;
  r_spec : Cjson.t;
  r_outcome : outcome;
  r_wall_s : float;
}

let results_file = "results.jsonl"

let record_to_json r =
  let outcome =
    match r.r_outcome with
    | Done payload ->
      Cjson.Obj [ ("status", Cjson.Str "done"); ("payload", payload) ]
    | Failed { kind; message; attempts } ->
      Cjson.Obj
        [
          ("status", Cjson.Str "failed");
          ( "kind",
            Cjson.Str
              (match kind with Timeout -> "timeout" | Exception -> "exception")
          );
          ("message", Cjson.Str message);
          ("attempts", Cjson.Int attempts);
        ]
  in
  Cjson.Obj
    [
      ("id", Cjson.Str r.r_id);
      ("spec", r.r_spec);
      ("outcome", outcome);
      ("wall_s", Cjson.Float r.r_wall_s);
    ]

let record_of_json j =
  let ( let* ) = Result.bind in
  let* r_id =
    match Cjson.mem_str "id" j with
    | Some s -> Ok s
    | None -> Error "record: missing \"id\""
  in
  let* r_spec =
    match Cjson.member "spec" j with
    | Some s -> Ok s
    | None -> Error "record: missing \"spec\""
  in
  let* o =
    match Cjson.member "outcome" j with
    | Some o -> Ok o
    | None -> Error "record: missing \"outcome\""
  in
  let* r_outcome =
    match Cjson.mem_str "status" o with
    | Some "done" -> (
      match Cjson.member "payload" o with
      | Some p -> Ok (Done p)
      | None -> Error "record: done without payload")
    | Some "failed" ->
      let* kind =
        match Cjson.mem_str "kind" o with
        | Some "timeout" -> Ok Timeout
        | Some "exception" -> Ok Exception
        | _ -> Error "record: bad failure kind"
      in
      let message = Option.value ~default:"" (Cjson.mem_str "message" o) in
      let attempts = Option.value ~default:1 (Cjson.mem_int "attempts" o) in
      Ok (Failed { kind; message; attempts })
    | _ -> Error "record: bad outcome status"
  in
  let r_wall_s = Option.value ~default:0.0 (Cjson.mem_float "wall_s" j) in
  Ok { r_id; r_spec; r_outcome; r_wall_s }

(* ----- loading ----- *)

let fold_lines path f init =
  if not (Sys.file_exists path) then init
  else begin
    let ic = open_in_bin path in
    let rec go acc =
      match input_line ic with
      | line -> go (f acc line)
      | exception End_of_file -> acc
    in
    let r = go init in
    close_in ic;
    r
  end

let parse_record line =
  if String.trim line = "" then None
  else
    match Cjson.of_string line with
    | Ok j -> ( match record_of_json j with Ok r -> Some r | Error _ -> None)
    | Error _ -> None (* torn/corrupt line (e.g. a crash mid-write): skip *)

let load ~dir =
  let path = Filename.concat dir results_file in
  let tbl = Hashtbl.create 64 in
  let order =
    fold_lines path
      (fun order line ->
        match parse_record line with
        | None -> order
        | Some r ->
          let fresh = not (Hashtbl.mem tbl r.r_id) in
          Hashtbl.replace tbl r.r_id r;
          if fresh then r.r_id :: order else order)
      []
  in
  List.rev_map (fun id -> Hashtbl.find tbl id) order

(* ----- open store ----- *)

type t = {
  s_dir : string;
  s_oc : out_channel;
  s_mutex : Mutex.t;
  s_tbl : (string, record) Hashtbl.t;
}

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~dir =
  mkdir_p dir;
  let tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace tbl r.r_id r) (load ~dir);
  let fd =
    Unix.openfile
      (Filename.concat dir results_file)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  {
    s_dir = dir;
    s_oc = Unix.out_channel_of_descr fd;
    s_mutex = Mutex.create ();
    s_tbl = tbl;
  }

let dir t = t.s_dir
let lookup t id = Hashtbl.find_opt t.s_tbl id
let size t = Hashtbl.length t.s_tbl

let append t r =
  let line = Cjson.to_string (record_to_json r) ^ "\n" in
  Mutex.lock t.s_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.s_mutex)
    (fun () ->
      output_string t.s_oc line;
      flush t.s_oc;
      Hashtbl.replace t.s_tbl r.r_id r)

let close t =
  Mutex.lock t.s_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.s_mutex)
    (fun () -> close_out t.s_oc)

let write_atomic ~path contents =
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path
