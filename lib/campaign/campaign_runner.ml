exception Abort
exception Transient of string

type config = { workers : int; timeout_s : float; max_retries : int }

let default_config =
  { workers = Parallel.default_domains (); timeout_s = 300.0; max_retries = 1 }

type stats = {
  ran : int;
  ok : int;
  failed : int;
  timed_out : int;
  skipped : int;
  retries : int;
  aborted : bool;
  abandoned : int;
}

type worker_outcome =
  | W_ok of Cjson.t
  | W_transient of string
  | W_abort
  | W_exn of string

type slot = {
  sl_job : Campaign_job.t;
  sl_attempt : int;
  sl_started : float;
  sl_deadline : float;
  sl_cell : worker_outcome option Atomic.t;
  sl_domain : unit Domain.t;
}

let now () = Unix.gettimeofday ()

let m_jobs_ok = Obs.Metrics.counter "campaign.jobs_ok"
let m_jobs_failed = Obs.Metrics.counter "campaign.jobs_failed"
let m_jobs_timed_out = Obs.Metrics.counter "campaign.jobs_timed_out"
let m_jobs_retried = Obs.Metrics.counter "campaign.jobs_retried"
let m_jobs_skipped = Obs.Metrics.counter "campaign.jobs_skipped"
let m_jobs_adopted = Obs.Metrics.counter "campaign.jobs_adopted"
let h_job_wall = Obs.Metrics.histogram "campaign.job_wall_s"

(* Integer metrics worth surfacing in the telemetry trace alongside the
   lifecycle event (attack iterations, DIP counts, ...). *)
let lift_metrics payload =
  List.filter_map
    (fun name ->
      match Cjson.mem_int name payload with
      | Some v -> Some (name, Cjson.Int v)
      | None -> None)
    [ "iterations"; "dips"; "mismatches"; "conflicts" ]

let run ~store ?(telemetry = Telemetry.null ()) ?(should_abort = fun () -> false)
    config ~jobs ~exec =
  if config.workers < 1 then
    invalid_arg "Campaign_runner.run: workers must be >= 1";
  if config.max_retries < 0 then
    invalid_arg "Campaign_runner.run: max_retries must be >= 0";
  let pending = Queue.create () in
  let skipped = ref 0 in
  List.iter
    (fun (j : Campaign_job.t) ->
      (* consult the whole store, not just this campaign: a result
         computed by any sibling campaign is adopted instead of re-run *)
      match Job_store.find store j.Campaign_job.id with
      | Some (_, `Own) ->
        incr skipped;
        Obs.Metrics.incr m_jobs_skipped;
        Telemetry.emit telemetry ~job:j.Campaign_job.id ~event:"skipped" []
      | Some (_, `Adopted) ->
        incr skipped;
        Obs.Metrics.incr m_jobs_adopted;
        Telemetry.emit telemetry ~job:j.Campaign_job.id ~event:"adopted" []
      | None ->
        Telemetry.emit telemetry ~job:j.Campaign_job.id ~event:"queued"
          [ ("spec", Campaign_job.spec_to_json j.Campaign_job.spec) ];
        Queue.add (j, 1) pending)
    jobs;
  let ran = ref 0 and ok = ref 0 and failed = ref 0 in
  let timed_out = ref 0 and retries = ref 0 and abandoned = ref 0 in
  let aborted = ref false in
  let in_flight = ref [] in
  let spawn ((job : Campaign_job.t), attempt) =
    let cell = Atomic.make None in
    let dom =
      Domain.spawn (fun () ->
          (* One span per job attempt, emitted from the worker domain, so
             a trace shows per-worker lanes with job occupancy. *)
          let r =
            match
              Obs.Trace.with_span
                ~args:
                  [
                    ("job", Cjson.Str job.Campaign_job.id);
                    ("attempt", Cjson.Int attempt);
                  ]
                "campaign.job"
                (fun () -> Parallel.run_sequentially (fun () -> exec job))
            with
            | payload -> W_ok payload
            | exception Abort -> W_abort
            | exception Transient msg -> W_transient msg
            | exception e -> W_exn (Printexc.to_string e)
          in
          Atomic.set cell (Some r))
    in
    Telemetry.emit telemetry ~job:job.Campaign_job.id ~attempt ~event:"started"
      [];
    let t0 = now () in
    {
      sl_job = job;
      sl_attempt = attempt;
      sl_started = t0;
      sl_deadline =
        (if config.timeout_s > 0.0 then t0 +. config.timeout_s else infinity);
      sl_cell = cell;
      sl_domain = dom;
    }
  in
  let record sl outcome =
    incr ran;
    Job_store.append store
      {
        Job_store.r_id = sl.sl_job.Campaign_job.id;
        r_spec = Campaign_job.spec_to_json sl.sl_job.Campaign_job.spec;
        r_outcome = outcome;
        r_wall_s = now () -. sl.sl_started;
      }
  in
  let handle sl r =
    let wall_s = now () -. sl.sl_started in
    let job = sl.sl_job.Campaign_job.id in
    Obs.Metrics.observe h_job_wall wall_s;
    match r with
    | W_ok payload ->
      incr ok;
      Obs.Metrics.incr m_jobs_ok;
      record sl (Job_store.Done payload);
      Telemetry.emit telemetry ~job ~attempt:sl.sl_attempt ~wall_s
        ~event:"finished" (lift_metrics payload)
    | W_transient msg when sl.sl_attempt <= config.max_retries ->
      incr retries;
      Obs.Metrics.incr m_jobs_retried;
      Obs.Trace.instant
        ~args:
          [
            ("job", Cjson.Str job);
            ("attempt", Cjson.Int sl.sl_attempt);
            ("cause", Cjson.Str msg);
          ]
        "campaign.retry";
      Telemetry.emit telemetry ~job ~attempt:sl.sl_attempt ~wall_s
        ~event:"retried"
        [ ("message", Cjson.Str msg) ];
      Queue.add (sl.sl_job, sl.sl_attempt + 1) pending
    | W_transient msg | W_exn msg ->
      incr failed;
      Obs.Metrics.incr m_jobs_failed;
      Obs.Trace.instant
        ~args:
          [
            ("job", Cjson.Str job);
            ("attempt", Cjson.Int sl.sl_attempt);
            ("cause", Cjson.Str msg);
          ]
        "campaign.failed";
      record sl
        (Job_store.Failed
           {
             kind = Job_store.Exception;
             message = msg;
             attempts = sl.sl_attempt;
           });
      Telemetry.emit telemetry ~job ~attempt:sl.sl_attempt ~wall_s
        ~event:"failed"
        [ ("message", Cjson.Str msg) ]
    | W_abort ->
      aborted := true;
      Telemetry.emit telemetry ~job ~attempt:sl.sl_attempt ~wall_s
        ~event:"aborted" []
  in
  while (not (Queue.is_empty pending)) || !in_flight <> [] do
    (* the cooperative abort (a SIGINT handler's flag): stop dispatching,
       let in-flight jobs drain and checkpoint, report aborted — same
       semantics as an executor raising Abort, but checked here on the
       scheduler so it is safe from an asynchronous signal context *)
    if (not !aborted) && should_abort () then begin
      aborted := true;
      Obs.Trace.instant "campaign.abort_requested";
      Telemetry.emit telemetry ~job:"-" ~event:"abort_requested" []
    end;
    if !aborted then Queue.clear pending;
    while
      (not !aborted)
      && List.length !in_flight < config.workers
      && not (Queue.is_empty pending)
    do
      in_flight := spawn (Queue.pop pending) :: !in_flight
    done;
    let progressed = ref false in
    in_flight :=
      List.filter
        (fun sl ->
          match Atomic.get sl.sl_cell with
          | Some r ->
            progressed := true;
            Domain.join sl.sl_domain;
            handle sl r;
            false
          | None ->
            if now () > sl.sl_deadline then begin
              (* The domain cannot be killed; leave it running detached
                 and record the job as timed out. *)
              progressed := true;
              incr abandoned;
              incr timed_out;
              Obs.Metrics.incr m_jobs_timed_out;
              Obs.Trace.instant
                ~args:
                  [
                    ("job", Cjson.Str sl.sl_job.Campaign_job.id);
                    ("attempt", Cjson.Int sl.sl_attempt);
                    ("timeout_s", Cjson.Float config.timeout_s);
                  ]
                "campaign.timeout";
              record sl
                (Job_store.Failed
                   {
                     kind = Job_store.Timeout;
                     message =
                       Printf.sprintf "timed out after %.1fs" config.timeout_s;
                     attempts = sl.sl_attempt;
                   });
              Telemetry.emit telemetry ~job:sl.sl_job.Campaign_job.id
                ~attempt:sl.sl_attempt
                ~wall_s:(now () -. sl.sl_started)
                ~event:"timeout" [];
              false
            end
            else true)
        !in_flight;
    if not !progressed then Unix.sleepf 0.002
  done;
  {
    ran = !ran;
    ok = !ok;
    failed = !failed;
    timed_out = !timed_out;
    skipped = !skipped;
    retries = !retries;
    aborted = !aborted;
    abandoned = !abandoned;
  }
