let load_bench name =
  match Benchmarks.find_spec name with
  | Some spec -> Benchmarks.load spec
  | None ->
    if name = "s27" then Benchmarks.s27 ()
    else if name = "tiny" then Benchmarks.tiny ()
    else invalid_arg (Printf.sprintf "unknown benchmark %S" name)

(* The generated s27/tiny circuits are too shallow for the benchmark
   margins; match the CLI flow's small-circuit fallback. *)
let margin_for name =
  match Benchmarks.find_spec name with
  | Some spec -> spec.Benchmarks.clk_margin
  | None -> 4.5

(* ----- table rows ↔ payloads ----- *)

let table1_payload (r : Experiments.table1_row) =
  Cjson.Obj
    [
      ("bench", Cjson.Str r.Experiments.t1_bench);
      ("cells", Cjson.Int r.Experiments.t1_cells);
      ("ffs", Cjson.Int r.Experiments.t1_ffs);
      ("avail", Cjson.Int r.Experiments.t1_avail);
      ("cov_pct", Cjson.Float r.Experiments.t1_cov_pct);
      ("avail4", Cjson.Int r.Experiments.t1_avail4);
      ("clock_ps", Cjson.Int r.Experiments.t1_clock_ps);
      ("paper_avail", Cjson.Int r.Experiments.t1_paper_avail);
      ("paper_avail4", Cjson.Int r.Experiments.t1_paper_avail4);
    ]

let table1_row_of_payload j =
  match
    ( Cjson.mem_str "bench" j,
      Cjson.mem_int "cells" j,
      Cjson.mem_int "ffs" j,
      Cjson.mem_int "avail" j,
      Cjson.mem_float "cov_pct" j,
      Cjson.mem_int "avail4" j,
      Cjson.mem_int "clock_ps" j,
      Cjson.mem_int "paper_avail" j,
      Cjson.mem_int "paper_avail4" j )
  with
  | ( Some t1_bench,
      Some t1_cells,
      Some t1_ffs,
      Some t1_avail,
      Some t1_cov_pct,
      Some t1_avail4,
      Some t1_clock_ps,
      Some t1_paper_avail,
      Some t1_paper_avail4 ) ->
    Some
      {
        Experiments.t1_bench;
        t1_cells;
        t1_ffs;
        t1_avail;
        t1_cov_pct;
        t1_avail4;
        t1_clock_ps;
        t1_paper_avail;
        t1_paper_avail4;
      }
  | _ -> None

let overhead_cell_json = function
  | None -> Cjson.Null
  | Some c ->
    Cjson.Obj
      [
        ("cell_pct", Cjson.Float c.Experiments.oh_cell_pct);
        ("area_pct", Cjson.Float c.Experiments.oh_area_pct);
      ]

let overhead_cell_of_json j =
  match (Cjson.mem_float "cell_pct" j, Cjson.mem_float "area_pct" j) with
  | Some oh_cell_pct, Some oh_area_pct ->
    Some { Experiments.oh_cell_pct; oh_area_pct }
  | _ -> None

let table2_payload (r : Experiments.table2_row) =
  Cjson.Obj
    [
      ("bench", Cjson.Str r.Experiments.t2_bench);
      ("gk4", overhead_cell_json r.Experiments.t2_gk4);
      ("gk8", overhead_cell_json r.Experiments.t2_gk8);
      ("gk16", overhead_cell_json r.Experiments.t2_gk16);
      ("hybrid", overhead_cell_json r.Experiments.t2_hybrid);
    ]

let table2_row_of_payload j =
  match Cjson.mem_str "bench" j with
  | None -> None
  | Some t2_bench ->
    let cell name = Option.bind (Cjson.member name j) overhead_cell_of_json in
    Some
      {
        Experiments.t2_bench;
        t2_gk4 = cell "gk4";
        t2_gk8 = cell "gk8";
        t2_gk16 = cell "gk16";
        t2_hybrid = cell "hybrid";
      }

(* ----- attack jobs ----- *)

(* Lock [net] with [scheme] at size [width]; [width] is the scheme's
   natural size knob: GK count for gk, key-bit count for XOR-class
   schemes, TDK site count, total key bits for hybrid (width/4 GKs +
   width/2 XORs, the paper's half-and-half split). *)
let build_locked net ~bench ~scheme ~width ~seed =
  let clock () = Sta.clock_for net ~margin:(margin_for bench) in
  match scheme with
  | "gk" ->
    let d = Insertion.lock ~seed net ~clock_ps:(clock ()) ~n_gks:width in
    let stripped, keys = Insertion.strip_keygens d in
    let comb, _ = Combinationalize.run stripped in
    let c, a = Insertion.overhead d in
    ( comb,
      keys,
      [
        ("overhead_cell_pct", Cjson.Float c);
        ("overhead_area_pct", Cjson.Float a);
      ] )
  | "hybrid" ->
    let n_gks = max 1 (width / 4) and n_xors = max 1 (width / 2) in
    let h =
      Hybrid.lock ~seed net ~clock_ps:(clock ()) ~n_gks ~n_xors
    in
    let stripped, gk_keys = Insertion.strip_keygens h.Hybrid.design in
    let comb, _ = Combinationalize.run stripped in
    let c, a = Hybrid.overhead h in
    ( comb,
      gk_keys @ h.Hybrid.xor_key_inputs,
      [
        ("overhead_cell_pct", Cjson.Float c);
        ("overhead_area_pct", Cjson.Float a);
      ] )
  | "tdk" ->
    (* The paper's critique path: the attacker strips the TDBs first. *)
    let t = Tdk.lock ~seed net ~clock_ps:(clock ()) ~n_sites:width in
    let stripped = Removal_attack.strip_tdbs t in
    let comb, _ = Combinationalize.run stripped.Locked.net in
    (comb, stripped.Locked.key_inputs, [])
  | "xor" | "mux" | "sarlock" | "antisat" | "fault" ->
    let comb, _ = Combinationalize.run net in
    let lk =
      match scheme with
      | "xor" -> Xor_lock.lock ~seed comb ~n_keys:width
      | "mux" -> Mux_lock.lock ~seed comb ~n_keys:width
      | "sarlock" -> Sarlock.lock ~seed comb ~n_keys:width
      | "antisat" -> Antisat.lock ~seed comb ~n:width
      | _ -> Fault_lock.lock ~seed comb ~n_keys:width
    in
    (lk.Locked.net, lk.Locked.key_inputs, [])
  | s -> invalid_arg (Printf.sprintf "unknown scheme %S" s)

let run_attack ~bench ~scheme ~width ~attack ~seed =
  let net = load_bench bench in
  let oracle_comb, _ = Combinationalize.run net in
  let locked, key_inputs, extra =
    build_locked net ~bench ~scheme ~width ~seed
  in
  (* Every attack dispatches through the one registry; the payload is the
     registry's uniform outcome.  [elapsed_s] is deliberately excluded —
     payloads must be deterministic so resumed campaigns reproduce
     byte-identical results. *)
  let o =
    Attack.run
      ~budget:(Budget.create ~max_iterations:4096 ())
      ~seed ~name:attack ~locked ~key_inputs
      ~oracle:(Oracle.of_netlist oracle_comb)
      ()
  in
  let fields =
    [
      (* the full locked netlist, for artifact extraction; identical
         across attacks on the same (bench, scheme, width, seed), so the
         store's blob sharing keeps one copy on disk *)
      ("locked_bench", Cjson.Str (Bench_format.print locked));
      ("keys", Cjson.Int (List.length key_inputs));
      ("verdict", Cjson.Str (Attack.verdict_name o.Attack.verdict));
      ("broken", Cjson.Bool (Attack.broken o.Attack.verdict));
      ("iterations", Cjson.Int o.Attack.iterations);
      ("queries", Cjson.Int o.Attack.queries);
      ("conflicts", Cjson.Int o.Attack.conflicts);
    ]
    @ (match Attack.mismatches_of_verdict o.Attack.verdict with
      | Some m -> [ ("mismatches", Cjson.Int m) ]
      | None -> [])
    (* deterministic, unlike elapsed_s: says WHICH structural bail-out a
       gave_up row was, so campaign reports can distinguish "no GKs to
       excise" from "reconstruction refuted" without re-running *)
    @ (match Attack.gave_up_reason_of_verdict o.Attack.verdict with
      | Some r -> [ ("gave_up_reason", Cjson.Str r) ]
      | None -> [])
  in
  Cjson.Obj (fields @ extra)

let run = function
  | Campaign_job.Table1 { bench } -> (
    match Benchmarks.find_spec bench with
    | Some spec -> table1_payload (Experiments.table1_row spec)
    | None -> invalid_arg (Printf.sprintf "unknown benchmark %S" bench))
  | Campaign_job.Table2 { bench; profile } -> (
    match (Benchmarks.find_spec bench, Experiments.profile_of_name profile) with
    | Some spec, Some profile ->
      table2_payload (Experiments.table2_row ~profile spec)
    | None, _ -> invalid_arg (Printf.sprintf "unknown benchmark %S" bench)
    | _, None -> invalid_arg (Printf.sprintf "unknown profile %S" profile))
  | Campaign_job.Attack { bench; scheme; width; attack; seed } ->
    run_attack ~bench ~scheme ~width ~attack ~seed
