type oracle =
  | Engine_scalar
  | Engine_lanes
  | Engine_block
  | Timing
  | Sat_roundtrip
  | Bdd_probe
  | Opt_equiv

let all_oracles =
  [
    Engine_scalar; Engine_lanes; Engine_block; Timing; Sat_roundtrip;
    Bdd_probe; Opt_equiv;
  ]

let oracle_name = function
  | Engine_scalar -> "engine-scalar"
  | Engine_lanes -> "engine-lanes"
  | Engine_block -> "engine-block"
  | Timing -> "timing"
  | Sat_roundtrip -> "sat-roundtrip"
  | Bdd_probe -> "bdd-probe"
  | Opt_equiv -> "opt-equiv"

let oracle_of_name s =
  List.find_opt (fun o -> oracle_name o = s) all_oracles

type mismatch = {
  mm_oracle : string;
  mm_cycle : int;
  mm_signal : string;
  mm_lane : int;
  mm_detail : string;
}

let pp_mismatch ppf m =
  Format.fprintf ppf "[%s] signal %s" m.mm_oracle m.mm_signal;
  if m.mm_cycle >= 0 then Format.fprintf ppf " cycle %d" m.mm_cycle;
  if m.mm_lane >= 0 then Format.fprintf ppf " lane %d" m.mm_lane;
  if m.mm_detail <> "" then Format.fprintf ppf ": %s" m.mm_detail

let mismatch_to_string m = Format.asprintf "%a" pp_mismatch m

let mismatch ~oracle ?(cycle = -1) ?(lane = -1) ?(detail = "") signal =
  {
    mm_oracle = oracle;
    mm_cycle = cycle;
    mm_signal = signal;
    mm_lane = lane;
    mm_detail = detail;
  }

let mk ?(cycle = -1) ?(lane = -1) ?(detail = "") oracle signal =
  {
    mm_oracle = oracle_name oracle;
    mm_cycle = cycle;
    mm_signal = signal;
    mm_lane = lane;
    mm_detail = detail;
  }

let ff_name net id = (Netlist.node net id).Netlist.name

(* ----- oracle 1: compiled scalar engine vs the naive reference ----- *)

let check_engine_scalar ?fault (c : Fuzz_case.t) =
  let net = c.Fuzz_case.net in
  let reference = Ref_sim.run ?fault c in
  let sim = Cycle_sim.create ~init:(Fuzz_case.init_fn c) net in
  let out = ref [] in
  (try
     for k = 0 to c.Fuzz_case.cycles - 1 do
       let values = Cycle_sim.step sim ~inputs:(Fuzz_case.input_fn c k) in
       let ref_pos, ref_ffs = reference.(k) in
       List.iter
         (fun (po, drv) ->
           let v = values.(drv) in
           let rv = List.assoc po ref_pos in
           if v <> rv && !out = [] then
             out :=
               [
                 mk Engine_scalar po ~cycle:k
                   ~detail:
                     (Printf.sprintf "engine=%b reference=%b" v rv);
               ])
         (Netlist.outputs net);
       List.iter
         (fun (ff, rv) ->
           let v = List.assoc ff (Cycle_sim.state sim) in
           if v <> rv && !out = [] then
             out :=
               [
                 mk Engine_scalar (ff_name net ff) ~cycle:k
                   ~detail:
                     (Printf.sprintf "ff state engine=%b reference=%b" v rv);
               ])
         ref_ffs
     done
   with e ->
     out :=
       [
         mk Engine_scalar "<exception>"
           ~detail:(Printexc.to_string e);
       ]);
  !out

(* ----- oracle 2: bit-parallel lanes vs the scalar engine ----- *)

let check_engine_lanes ~rng (c : Fuzz_case.t) =
  let net = c.Fuzz_case.net in
  if c.Fuzz_case.cycles = 0 then []
  else begin
    let w = Netlist.Engine.word_bits in
    let n_pi = List.length (Netlist.inputs net) in
    let n_ff = List.length (Netlist.ffs net) in
    (* lane 0 carries the case stimulus; every other lane an independent
       random stream, so the packing is exercised across the full word *)
    let lane_stim =
      Array.init w (fun l ->
          if l = 0 then c.Fuzz_case.stim
          else
            Array.init c.Fuzz_case.cycles (fun _ ->
                Array.init n_pi (fun _ -> Random.State.bool rng)))
    in
    let lane_init =
      Array.init w (fun l ->
          if l = 0 then c.Fuzz_case.init
          else Array.init n_ff (fun _ -> Random.State.bool rng))
    in
    let pi_index = Hashtbl.create 16 and ff_index = Hashtbl.create 16 in
    List.iteri (fun i id -> Hashtbl.replace pi_index id i) (Netlist.inputs net);
    List.iteri (fun i id -> Hashtbl.replace ff_index id i) (Netlist.ffs net);
    let pack per_lane id =
      match Hashtbl.find_opt pi_index id with
      | Some i ->
        let word = ref 0 in
        for l = 0 to w - 1 do
          if per_lane l i then word := !word lor (1 lsl l)
        done;
        !word
      | None -> 0
    in
    let batch =
      Cycle_sim.run_batch net
        ~init:(fun id ->
          match Hashtbl.find_opt ff_index id with
          | Some i ->
            let word = ref 0 in
            for l = 0 to w - 1 do
              if lane_init.(l).(i) then word := !word lor (1 lsl l)
            done;
            !word
          | None -> 0)
        ~cycles:c.Fuzz_case.cycles
        ~stimulus:(fun cy id -> pack (fun l i -> lane_stim.(l).(cy).(i)) id)
    in
    (* compare a handful of lanes scalar-side: the case lane, the word
       edges, and a few random interior lanes *)
    let lanes =
      List.sort_uniq compare
        (0 :: (w - 1) :: (w / 2)
        :: List.init 4 (fun _ -> Random.State.int rng w))
    in
    let out = ref [] in
    List.iter
      (fun l ->
        if !out = [] then
          let scalar =
            Cycle_sim.run net
              ~init:(fun id ->
                match Hashtbl.find_opt ff_index id with
                | Some i -> lane_init.(l).(i)
                | None -> false)
              ~cycles:c.Fuzz_case.cycles
              ~stimulus:(fun cy id ->
                match Hashtbl.find_opt pi_index id with
                | Some i -> lane_stim.(l).(cy).(i)
                | None -> false)
          in
          Array.iteri
            (fun k pos ->
              List.iter
                (fun (po, v) ->
                  let word = List.assoc po batch.(k) in
                  let lane_v = word land (1 lsl l) <> 0 in
                  if lane_v <> v && !out = [] then
                    out :=
                      [
                        mk Engine_lanes po ~cycle:k ~lane:l
                          ~detail:
                            (Printf.sprintf "lane=%b scalar=%b" lane_v v);
                      ])
                pos)
            scalar)
      lanes;
    !out
  end

(* ----- oracle 2b: multi-word block evaluation vs words / scalar /
   reference.  One combinational frame (inputs and FF outputs driven
   freely), random block geometry with a partial final word, checked
   three ways: every word against eval_words, and sampled lanes against
   the scalar engine and the naive reference walk. ----- *)

let check_engine_block ~rng (c : Fuzz_case.t) =
  let net = c.Fuzz_case.net in
  let eng = Netlist.Engine.get net in
  let w = Netlist.Engine.word_bits in
  let srcs = Netlist.Engine.sources eng in
  let n_src = Array.length srcs in
  let n_slots = Netlist.Engine.n_slots eng in
  let slot_of = Netlist.Engine.slot_of_id eng in
  let name_of_slot s =
    let found = ref "<slot>" in
    Array.iteri (fun id sl -> if sl = s then found := ff_name net id) slot_of;
    !found
  in
  let src_index = Hashtbl.create 16 in
  Array.iteri (fun i id -> Hashtbl.replace src_index id i) srcs;
  (* random geometry, biased toward a partial final word; lanes beyond
     [lanes] are left unfilled and must evaluate as all-false stimulus *)
  let n_words = 1 + Random.State.int rng 3 in
  let lanes = 1 + Random.State.int rng (n_words * w) in
  let stim = Array.make (max 1 (n_src * n_words)) 0 in
  for si = 0 to n_src - 1 do
    for wi = 0 to n_words - 1 do
      let live = max 0 (min w (lanes - (wi * w))) in
      let mask = if live = w then -1 else (1 lsl live) - 1 in
      stim.((si * n_words) + wi) <-
        Netlist.Engine.random_word rng land mask
    done
  done;
  let block_scratch = Netlist.Engine.create_scratch eng in
  let word_scratch = Netlist.Engine.create_scratch eng in
  let blk =
    Netlist.Engine.eval_block ~scratch:block_scratch eng ~n_words
      ~fill:(fun buf -> Array.blit stim 0 buf 0 (n_src * n_words))
  in
  let out = ref [] in
  (* law 1: each word of the block agrees with a plain eval_words pass *)
  for wi = 0 to n_words - 1 do
    if !out = [] then begin
      let values =
        Netlist.Engine.eval_words_into ~scratch:word_scratch eng (fun id ->
            stim.((Hashtbl.find src_index id * n_words) + wi))
      in
      for s = 0 to n_slots - 1 do
        if values.(s) <> blk.((s * n_words) + wi) && !out = [] then
          out :=
            [
              mk Engine_block (name_of_slot s)
                ~detail:
                  (Printf.sprintf "word %d: block=%x eval_words=%x" wi
                     blk.((s * n_words) + wi)
                     values.(s));
            ]
      done
    end
  done;
  (* law 2: sampled lanes agree with the scalar engine and Ref_sim *)
  let sample_lanes =
    List.sort_uniq compare
      (0 :: (lanes - 1) :: List.init 2 (fun _ -> Random.State.int rng lanes))
  in
  List.iter
    (fun l ->
      if !out = [] then begin
        let assignment id =
          let si = Hashtbl.find src_index id in
          (stim.((si * n_words) + (l / w)) lsr (l mod w)) land 1 = 1
        in
        let scalar = Netlist.Engine.eval eng assignment in
        let reference = Ref_sim.eval_comb net assignment in
        for id = 0 to Array.length slot_of - 1 do
          let s = slot_of.(id) in
          if s >= 0 && !out = [] then begin
            let bv = (blk.((s * n_words) + (l / w)) lsr (l mod w)) land 1 = 1 in
            if bv <> scalar.(id) || bv <> reference.(id) then
              out :=
                [
                  mk Engine_block (ff_name net id) ~lane:l
                    ~detail:
                      (Printf.sprintf "block=%b scalar=%b reference=%b" bv
                         scalar.(id) reference.(id));
                ]
          end
        done
      end)
    sample_lanes;
  !out

(* ----- oracle 3: timing simulator vs cycle-accurate sim ----- *)

(* Constant primary inputs (stimulus row 0): no input-induced hazards, so
   every capture must agree with the zero-delay semantics.  Convention
   (see test_sim's law): with captures from edge 0, recorded timing
   sample [k] equals the cycle-sim state after [k+2] steps. *)
let check_timing (c : Fuzz_case.t) =
  let net = c.Fuzz_case.net in
  if c.Fuzz_case.cycles = 0 || Netlist.ffs net = [] then []
  else begin
    let floor_ps =
      Cell_lib.dff_setup_ps + Cell_lib.dff_hold_ps + Cell_lib.dff_clk2q_ps + 10
    in
    let clock_ps = max floor_ps (Sta.clock_for net ~margin:1.5) in
    let cycles = min c.Fuzz_case.cycles 8 in
    let pi_vals = Fuzz_case.input_fn c 0 in
    let r =
      Timing_sim.run
        ~init:(Fuzz_case.init_fn c)
        ~drive:(fun pi -> Timing_sim.Const (pi_vals pi))
        net
        { Timing_sim.clock_ps; cycles }
    in
    if r.Timing_sim.violations <> [] then
      (* constant inputs can never legally trip a capture window *)
      [
        mk Timing
          (match r.Timing_sim.violations with
          | v :: _ -> v.Timing_sim.v_ff_name
          | [] -> "?")
          ~detail:"capture violation under constant inputs";
      ]
    else begin
      let sim = Cycle_sim.create ~init:(Fuzz_case.init_fn c) net in
      ignore (Cycle_sim.step sim ~inputs:pi_vals);
      let out = ref [] in
      for k = 0 to cycles - 1 do
        ignore (Cycle_sim.step sim ~inputs:pi_vals);
        let state = Cycle_sim.state sim in
        Array.iteri
          (fun i ff ->
            let expected = Logic.of_bool (List.assoc ff state) in
            let got = r.Timing_sim.ff_samples.(i).(k) in
            if (not (Logic.equal got expected)) && !out = [] then
              out :=
                [
                  mk Timing (ff_name net ff) ~cycle:k
                    ~detail:
                      (Printf.sprintf "timing=%c cycle-sim=%c"
                         (Logic.to_char got)
                         (Logic.to_char expected));
                ])
          r.Timing_sim.ff_ids
      done;
      !out
    end
  end

(* ----- oracle 4: SAT miter against the bench round-trip ----- *)

let unrolled net =
  if Netlist.ffs net = [] then net
  else Unroll.frames net ~k:2 ~share:(fun _ -> false) ~init:`Free

let check_sat_roundtrip (c : Fuzz_case.t) =
  let net = c.Fuzz_case.net in
  match Bench_format.parse ~name:(Netlist.name net) (Bench_format.print net) with
  | exception e ->
    [ mk Sat_roundtrip "<parse>" ~detail:(Printexc.to_string e) ]
  | round_tripped -> (
    match Equiv.check (unrolled net) (unrolled round_tripped) with
    | Equiv.Equivalent -> []
    | Equiv.Different witness ->
      [
        mk Sat_roundtrip "<miter>"
          ~detail:
            ("bench round-trip changed the function at "
            ^ String.concat ","
                (List.map
                   (fun (n, v) -> Printf.sprintf "%s=%b" n v)
                   witness));
      ]
    | exception Invalid_argument msg ->
      [ mk Sat_roundtrip "<outputs>" ~detail:msg ])

(* ----- oracle 5: BDD build vs the reference walk, sampled ----- *)

let check_bdd ~rng (c : Fuzz_case.t) =
  let net = unrolled c.Fuzz_case.net in
  let inputs = Netlist.inputs net in
  let nvars = List.length inputs in
  if nvars = 0 || nvars > 18 || Netlist.num_nodes net > 600 then []
  else begin
    let var_index = Hashtbl.create 16 in
    List.iteri (fun i id -> Hashtbl.replace var_index id i) inputs;
    let man = Bdd.manager ~nvars in
    match Bdd.of_netlist man net ~var_of_input:(Hashtbl.find var_index) with
    | exception e -> [ mk Bdd_probe "<build>" ~detail:(Printexc.to_string e) ]
    | bdds ->
      let out = ref [] in
      for _probe = 1 to 32 do
        if !out = [] then begin
          let bits = Array.init nvars (fun _ -> Random.State.bool rng) in
          let assignment id = bits.(Hashtbl.find var_index id) in
          let reference = Ref_sim.eval_comb net assignment in
          List.iter
            (fun (po, drv) ->
              let bv = Bdd.eval man bdds.(drv) (Array.get bits) in
              if bv <> reference.(drv) && !out = [] then
                out :=
                  [
                    mk Bdd_probe po
                      ~detail:
                        (Printf.sprintf "bdd=%b reference=%b" bv
                           reference.(drv));
                  ])
            (Netlist.outputs net)
        end
      done;
      !out
  end

(* ----- oracle 6: the Opt front-end's twin is the same function ----- *)

(* [Opt.run] promises a fresh netlist with the identical pin interface
   (input / FF / output names and order) computing the same function.
   Both halves are checked: the interface syntactically, the function by
   a SAT miter over the 2-frame unrolling plus a few concrete vectors
   through the reference walk (matched by input name — catching an
   interface bug a name-matching miter would mask). *)
let check_opt_equiv ~rng (c : Fuzz_case.t) =
  let net = c.Fuzz_case.net in
  match Opt.run net with
  | exception e -> [ mk Opt_equiv "<run>" ~detail:(Printexc.to_string e) ]
  | opt, _stats ->
    let names f n = List.map (ff_name n) (f n) in
    if names Netlist.inputs opt <> names Netlist.inputs net then
      [ mk Opt_equiv "<inputs>" ~detail:"primary inputs renamed or reordered" ]
    else if names Netlist.ffs opt <> names Netlist.ffs net then
      [ mk Opt_equiv "<ffs>" ~detail:"flip-flops renamed or reordered" ]
    else if
      List.map fst (Netlist.outputs opt) <> List.map fst (Netlist.outputs net)
    then
      [
        mk Opt_equiv "<outputs>" ~detail:"primary outputs renamed or reordered";
      ]
    else begin
      let a = unrolled net and b = unrolled opt in
      match Equiv.check a b with
      | Equiv.Different witness ->
        [
          mk Opt_equiv "<miter>"
            ~detail:
              ("opt changed the function at "
              ^ String.concat ","
                  (List.map
                     (fun (n, v) -> Printf.sprintf "%s=%b" n v)
                     witness));
        ]
      | exception Invalid_argument msg -> [ mk Opt_equiv "<miter>" ~detail:msg ]
      | Equiv.Equivalent ->
        let vals = Hashtbl.create 16 in
        let assignment n id =
          let name = ff_name n id in
          match Hashtbl.find_opt vals name with
          | Some v -> v
          | None ->
            let v = Random.State.bool rng in
            Hashtbl.replace vals name v;
            v
        in
        let out = ref [] in
        for _probe = 1 to 8 do
          if !out = [] then begin
            Hashtbl.reset vals;
            let ra = Ref_sim.eval_comb a (assignment a) in
            let rb = Ref_sim.eval_comb b (assignment b) in
            List.iter
              (fun (po, drv_b) ->
                if !out = [] then
                  let va = ra.(List.assoc po (Netlist.outputs a)) in
                  let vb = rb.(drv_b) in
                  if va <> vb then
                    out :=
                      [
                        mk Opt_equiv po
                          ~detail:
                            (Printf.sprintf "original=%b optimized=%b" va vb);
                      ])
              (Netlist.outputs b)
          end
        done;
        !out
    end

let check ?(oracles = all_oracles) ?fault ~seed (c : Fuzz_case.t) =
  let rng = Random.State.make [| seed; 0x0_5ac1e |] in
  List.concat_map
    (fun o ->
      match o with
      | Engine_scalar -> check_engine_scalar ?fault c
      | Engine_lanes -> check_engine_lanes ~rng c
      | Engine_block -> check_engine_block ~rng c
      | Timing -> check_timing c
      | Sat_roundtrip -> check_sat_roundtrip c
      | Bdd_probe -> check_bdd ~rng c
      | Opt_equiv -> check_opt_equiv ~rng c)
    oracles
