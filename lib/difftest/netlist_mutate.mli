(** Structural netlist mutations for adversarial fuzz inputs.

    A mutation produces a {e different but still valid} netlist: the
    oracle stack must agree with itself on any well-formed circuit, so
    mutating a case explores shapes neither generator family reaches —
    rewired fanins that create reconvergence, function swaps that turn a
    gate into its dual, flipped initial flip-flop states.

    Mutations are applied to a deep copy; the input case is never
    modified.  Rewiring picks the new driver from strictly shallower
    {!Netlist.levels}, so combinational acyclicity is preserved by
    construction (flip-flop D pins may rewire anywhere). *)

type mutation =
  | Rewire of { node : int; pin : int; old_driver : int; new_driver : int }
  | Swap_fn of { node : int; old_fn : Cell.gate_fn; new_fn : Cell.gate_fn }
  | Toggle_ff_init of { ff_index : int }

val describe : mutation -> string

(** [random rng case] applies one random mutation to a copy of [case].
    Returns [None] when the netlist offers no mutable site (e.g. no
    gates and no flip-flops).  The result is validated. *)
val random : Random.State.t -> Fuzz_case.t -> (Fuzz_case.t * mutation) option

(** [burst rng n case] applies up to [n] random mutations in sequence. *)
val burst : Random.State.t -> int -> Fuzz_case.t -> Fuzz_case.t * mutation list
