(** Metamorphic properties of the locking schemes.

    Every scheme in [lib/locking] carries the same functional contract —
    the oracle structure SAT attacks exploit, and exactly what a bug in
    a transform or an evaluation engine would silently corrupt:

    - {e transparency}: under the correct key the locked circuit is
      equivalent to the original (combinational schemes: a SAT miter;
      sequential schemes: timing-true simulation agreement with zero
      capture violations);
    - {e corruption}: for the non-SAT-resilient schemes (XOR, MUX,
      fault-guided), some wrong key produces a nonzero
      {!Metrics.bit_error_rate}; for the point-function schemes
      (SARLock, Anti-SAT) and TDK's functional half, a wrong key is
      SAT-distinguishable from the original;
    - {e GK timing}: a glitch key-gate's measured pulse width under
      {!Timing_sim} equals Eq. 2's [D_path + D_mux] for both transition
      directions, and a wrong constant key inverts the very first
      captured value of the locked flip-flop;
    - {e opt transparency}: the {!Opt} strash/rewrite front-end keeps
      every key input a symbolic primary input and leaves the locked
      function SAT-identical (checked per scheme on the combinational
      view the attacks consume).

    Each check builds a fresh seeded circuit, locks it, and reports
    violations as {!Diff_oracle.mismatch} records (oracle field
    ["prop:<scheme>"]).  Circuits too small to host a scheme (e.g. no
    feasible GK site) are skipped, not failed. *)

type scheme = Xor | Mux | Fault | Sarlock | Antisat | Tdk | Gk | Hybrid

val all : scheme list
val scheme_name : scheme -> string
val scheme_of_name : string -> scheme option

(** [check ~seed scheme] runs the scheme's property set on a seeded
    circuit.  Empty list = all properties hold (or the case was
    skipped). *)
val check : seed:int -> scheme -> Diff_oracle.mismatch list
