(** Greedy counterexample minimization.

    Given a failing case and the predicate that witnesses the failure
    (usually "the oracle stack still disagrees"), the shrinker applies
    reduction passes and keeps any transformation under which the
    predicate still fails:

    + truncate the stimulus (fewer cycles);
    + drop primary outputs;
    + replace a combinational node by a constant (rerouting its uses);
    + sweep logic no longer reachable from an output or a flip-flop, and
      compact the node table;
    + zero surviving stimulus bits.

    Passes repeat to a fixpoint (bounded by [rounds]).  The result is a
    small, replayable case — the form persisted into the corpus.  The
    predicate is always re-evaluated on a candidate before it is kept, so
    the shrinker cannot invent failures; it can only keep smaller
    witnesses of the one it was given. *)

(** [minimize ?rounds ~failing case] shrinks [case] while [failing]
    keeps returning [true].  [failing case] itself is assumed true (if
    not, the case is returned unchanged).  Default [rounds] = 8. *)
val minimize :
  ?rounds:int -> failing:(Fuzz_case.t -> bool) -> Fuzz_case.t -> Fuzz_case.t

(** [size case] is a rough cost measure (live nodes + stimulus bits) —
    what {!minimize} drives down; exposed for tests. *)
val size : Fuzz_case.t -> int
