let config rng =
  let seed = Random.State.int rng 1_000_000 in
  {
    Generator.gen_name = Printf.sprintf "fz%d" seed;
    seed;
    n_pi = 4 + Random.State.int rng 7;
    n_po = 2 + Random.State.int rng 4;
    n_ff = Random.State.int rng 9;
    n_gates = 20 + Random.State.int rng 61;
    depth = 3 + Random.State.int rng 6;
    ff_depth_bias = float_of_int (Random.State.int rng 11) /. 10.;
  }

let generated rng = Generator.generate (config rng)

let adversarial rng =
  let net = Netlist.create (Printf.sprintf "adv%d" (Random.State.bits rng)) in
  let pool = ref [] in
  for i = 0 to 2 + Random.State.int rng 5 do
    pool := Netlist.add_input net (Printf.sprintf "i%d" i) :: !pool
  done;
  pool := Netlist.add_const net true :: Netlist.add_const net false :: !pool;
  let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
  let comb = ref [] in
  for _ = 1 to 20 + Random.State.int rng 40 do
    let id =
      match Random.State.int rng 8 with
      | 0 ->
        let k = 1 + Random.State.int rng 4 in
        let truth = Array.init (1 lsl k) (fun _ -> Random.State.bool rng) in
        Netlist.add_lut net ~truth (Array.init k (fun _ -> pick ()))
      | 1 -> Netlist.add_gate net Cell.Mux [| pick (); pick (); pick () |]
      | 2 -> Netlist.add_gate net Cell.Not [| pick () |]
      | 3 | 4 ->
        let fn =
          List.nth [ Cell.And; Cell.Or; Cell.Nand; Cell.Nor ]
            (Random.State.int rng 4)
        in
        let k = 2 + Random.State.int rng 4 in
        (* fanin repetition is deliberate: pick () may repeat a driver *)
        Netlist.add_gate net fn (Array.init k (fun _ -> pick ()))
      | 5 ->
        let fn = if Random.State.bool rng then Cell.Xor else Cell.Xnor in
        Netlist.add_gate net fn [| pick (); pick () |]
      | 6 -> Netlist.add_gate net Cell.Buf [| pick () |]
      | _ ->
        (* a flip-flop mid-stream: later gates read its Q, and its D may
           come from anywhere built so far — including itself via the
           pool once registered *)
        Netlist.add_ff net (pick ())
    in
    pool := id :: !pool;
    (match (Netlist.node net id).Netlist.kind with
    | Netlist.Gate _ | Netlist.Lut _ -> comb := id :: !comb
    | _ -> ());
    ()
  done;
  (* close a sequential loop now and then: rewire one flip-flop's D pin
     to a node built after it (legal — only combinational cycles are) *)
  (match Netlist.ffs net with
  | ff :: _ when Random.State.int rng 3 = 0 ->
    Netlist.set_fanin net ~node_id:ff ~pin:0 ~driver:(pick ())
  | _ -> ());
  (* several outputs, possibly sharing a driver *)
  let n_po = 1 + Random.State.int rng 3 in
  for i = 0 to n_po - 1 do
    Netlist.add_output net (Printf.sprintf "y%d" i) (pick ())
  done;
  Netlist.validate net;
  net

let net rng = if Random.State.bool rng then generated rng else adversarial rng

let case rng =
  let n = net rng in
  Fuzz_case.random rng n ~cycles:(1 + Random.State.int rng 8)

let pp_config c =
  Printf.sprintf
    "{seed=%d; pi=%d; po=%d; ff=%d; gates=%d; depth=%d; bias=%.1f}"
    c.Generator.seed c.Generator.n_pi c.Generator.n_po c.Generator.n_ff
    c.Generator.n_gates c.Generator.depth c.Generator.ff_depth_bias

let arb_config =
  QCheck.make ~print:pp_config
    (fun rand -> config rand)

let arb_seed =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "seed %d" s)
    QCheck.Gen.(int_bound 1_000_000)
