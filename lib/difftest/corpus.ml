let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let save ~dir ~name (c : Fuzz_case.t) =
  ensure_dir dir;
  let bench = Filename.concat dir (name ^ ".bench") in
  let stim = Filename.concat dir (name ^ ".stim") in
  write_file bench (Bench_format.print c.Fuzz_case.net);
  write_file stim (Fuzz_case.print_stim c);
  (bench, stim)

let load ~bench ~stim =
  let name = Filename.remove_extension (Filename.basename bench) in
  let net = Bench_format.parse ~name (read_file bench) in
  Fuzz_case.parse_stim ~net (read_file stim)

let load_all dir =
  if not (Sys.file_exists dir) then []
  else begin
    let entries = Array.to_list (Sys.readdir dir) in
    let stem ext f =
      if Filename.check_suffix f ext then Some (Filename.chop_suffix f ext)
      else None
    in
    let benches = List.filter_map (stem ".bench") entries in
    let stims = List.filter_map (stem ".stim") entries in
    List.iter
      (fun s ->
        if not (List.mem s stims) then
          failwith (Printf.sprintf "corpus: %s/%s.bench has no .stim" dir s))
      benches;
    List.iter
      (fun s ->
        if not (List.mem s benches) then
          failwith (Printf.sprintf "corpus: %s/%s.stim has no .bench" dir s))
      stims;
    List.sort compare benches
    |> List.map (fun s ->
           ( s,
             load
               ~bench:(Filename.concat dir (s ^ ".bench"))
               ~stim:(Filename.concat dir (s ^ ".stim")) ))
  end

let replay ?oracles ~seed case = Diff_oracle.check ?oracles ~seed case
