(** The differential fuzzing driver.

    Each case index is hashed with the run seed into an independent
    per-case seed, so a run is fully reproducible from [(seed, cases)]
    and any failure can be replayed by rerunning the same seed with at
    least [index + 1] cases.  Cases rotate through four families:

    - {e generated} — well-behaved random netlists from
      {!Netlist_gen.generated} configs;
    - {e adversarial} — edge-case shapes (LUTs, MUXes, wide gates,
      repeated fanins, sequential loops);
    - {e mutated} — a generated netlist after a burst of
      {!Netlist_mutate} rewrites;
    - {e lock-property} — {!Lock_props.check} on a rotating scheme.

    The first three run the full {!Diff_oracle} stack.  Failing cases
    are shrunk with {!Shrinker.minimize} (against the same oracle
    predicate) and, when [corpus_dir] is given, persisted as replayable
    [.bench]/[.stim] pairs.

    Work fans out over the {!Parallel} domain pool in deadline-checked
    batches; a [time_budget_s] stops between batches, so a run is bounded
    by both budgets. *)

type family = Generated | Adversarial | Mutated | Lock_property

val family_name : family -> string
val all_families : family list

type failure = {
  f_index : int;  (** case index within the run *)
  f_seed : int;  (** derived per-case seed *)
  f_family : family;
  f_scheme : Lock_props.scheme option;  (** for [Lock_property] cases *)
  f_mismatches : Diff_oracle.mismatch list;
  f_case : Fuzz_case.t option;  (** shrunk witness, when the family has one *)
  f_saved : (string * string) option;  (** corpus paths, when persisted *)
}

type report = {
  r_seed : int;
  r_cases_run : int;
  r_failures : failure list;
  r_elapsed_s : float;
}

(** [run ~seed ~cases ()] executes up to [cases] fuzz cases.

    @param oracles oracle subset (default: the full stack).
    @param fault reference-interpreter fault to inject — the
      mutation-testing mode; the fuzzer must then report failures.
    @param families case families to draw from (default: all four).
    @param corpus_dir where to persist shrunk failures.
    @param workers domain count for {!Parallel.map}.
    @param time_budget_s wall-clock bound, checked between batches.
    @param progress called after each batch with cases run so far. *)
val run :
  ?oracles:Diff_oracle.oracle list ->
  ?fault:Ref_sim.fault ->
  ?families:family list ->
  ?corpus_dir:string ->
  ?workers:int ->
  ?time_budget_s:float ->
  ?progress:(int -> unit) ->
  seed:int ->
  cases:int ->
  unit ->
  report

(** [pp_failure ppf f] prints one failure: family, per-case seed, the
    first mismatches, and the replay command hint. *)
val pp_failure : Format.formatter -> failure -> unit

(** [replay_command report f] is the shell command that deterministically
    reproduces failure [f] (same seed, enough cases). *)
val replay_command : report -> failure -> string
