(* Greedy minimization: each pass proposes candidates strictly smaller
   than the current case; a candidate is adopted iff the failure
   predicate still holds on it.  The predicate is treated as a black box
   and any exception it raises counts as "no longer failing", so the
   shrinker can only ever weaken the case, never invent a failure. *)

let live_nodes net =
  let n = ref 0 in
  for id = 0 to Netlist.num_nodes net - 1 do
    if (Netlist.node net id).Netlist.kind <> Netlist.Dead then incr n
  done;
  !n

let size (c : Fuzz_case.t) =
  let n_pi = List.length (Netlist.inputs c.Fuzz_case.net) in
  live_nodes c.Fuzz_case.net + Array.length c.Fuzz_case.init
  + (c.Fuzz_case.cycles * n_pi)

let still_fails failing candidate =
  match failing candidate with v -> v | exception _ -> false

(* ----- pass: fewer cycles ----- *)

let truncate (c : Fuzz_case.t) n =
  Fuzz_case.make c.Fuzz_case.net ~cycles:n ~init:c.Fuzz_case.init
    ~stim:(Array.sub c.Fuzz_case.stim 0 n)

let shrink_cycles ~failing (c : Fuzz_case.t) =
  let cur = ref c in
  let progress = ref true in
  while !progress do
    progress := false;
    let n = !cur.Fuzz_case.cycles in
    let candidates = List.filter (fun k -> k >= 1 && k < n) [ n / 2; n - 1 ] in
    List.iter
      (fun k ->
        if (not !progress) && still_fails failing (truncate !cur k) then begin
          cur := truncate !cur k;
          progress := true
        end)
      candidates
  done;
  !cur

(* ----- pass: fewer primary outputs ----- *)

let drop_output (c : Fuzz_case.t) po =
  let net = Netlist.copy c.Fuzz_case.net in
  Netlist.remove_output net po;
  Fuzz_case.with_net c net

let shrink_outputs ~failing (c : Fuzz_case.t) =
  let cur = ref c in
  List.iter
    (fun (po, _) ->
      if List.length (Netlist.outputs !cur.Fuzz_case.net) > 1 then
        let candidate = drop_output !cur po in
        if still_fails failing candidate then cur := candidate)
    (Netlist.outputs c.Fuzz_case.net);
  !cur

(* ----- pass: constant-fold combinational nodes ----- *)

let const_out (c : Fuzz_case.t) id b =
  let net = Netlist.copy c.Fuzz_case.net in
  let cst = Netlist.add_const net b in
  if cst <> id then begin
    Netlist.replace_uses net ~old_id:id ~new_id:cst;
    Netlist.kill net id
  end;
  Netlist.validate net;
  Fuzz_case.with_net c net

let shrink_consts ~failing (c : Fuzz_case.t) =
  let cur = ref c in
  let n = Netlist.num_nodes c.Fuzz_case.net in
  for id = 0 to n - 1 do
    if
      id < Netlist.num_nodes !cur.Fuzz_case.net
      && Netlist.is_comb (Netlist.node !cur.Fuzz_case.net id)
    then
      List.iter
        (fun b ->
          if Netlist.is_comb (Netlist.node !cur.Fuzz_case.net id) then
            match const_out !cur id b with
            | candidate -> if still_fails failing candidate then cur := candidate
            | exception _ -> ())
        [ false; true ]
  done;
  !cur

(* ----- pass: sweep unreachable logic and compact ----- *)

(* Everything not reachable from a primary output (walking fanins,
   through flip-flop D pins) is killed, including inputs and flip-flops;
   the stimulus and init arrays are re-projected onto the survivors. *)
let sweep (c : Fuzz_case.t) =
  let net = Netlist.copy c.Fuzz_case.net in
  let n = Netlist.num_nodes net in
  let reach = Array.make n false in
  let rec mark id =
    if not reach.(id) then begin
      reach.(id) <- true;
      Array.iter mark (Netlist.node net id).Netlist.fanins
    end
  in
  List.iter (fun (_, drv) -> mark drv) (Netlist.outputs net);
  let old_inputs = Netlist.inputs net and old_ffs = Netlist.ffs net in
  let killed = ref false in
  for id = 0 to n - 1 do
    if (not reach.(id)) && (Netlist.node net id).Netlist.kind <> Netlist.Dead
    then begin
      Netlist.kill net id;
      killed := true
    end
  done;
  if not !killed then None
  else begin
    let net', _remap = Netlist.compact net in
    Netlist.validate net';
    let project old_ids row =
      let bits = ref [] in
      List.iteri
        (fun i id -> if reach.(id) then bits := row.(i) :: !bits)
        old_ids;
      Array.of_list (List.rev !bits)
    in
    let init = project old_ffs c.Fuzz_case.init in
    let stim = Array.map (project old_inputs) c.Fuzz_case.stim in
    Some (Fuzz_case.make net' ~cycles:c.Fuzz_case.cycles ~init ~stim)
  end

let shrink_sweep ~failing (c : Fuzz_case.t) =
  match sweep c with
  | None -> c
  | Some candidate -> if still_fails failing candidate then candidate else c
  | exception _ -> c

(* ----- pass: zero stimulus and init bits ----- *)

let with_bit (c : Fuzz_case.t) which =
  let init = Array.copy c.Fuzz_case.init in
  let stim = Array.map Array.copy c.Fuzz_case.stim in
  (match which with
  | `Init i -> init.(i) <- false
  | `Stim (k, i) -> stim.(k).(i) <- false);
  Fuzz_case.make c.Fuzz_case.net ~cycles:c.Fuzz_case.cycles ~init ~stim

let shrink_bits ~failing (c : Fuzz_case.t) =
  let cur = ref c in
  Array.iteri
    (fun i b ->
      if b then
        let candidate = with_bit !cur (`Init i) in
        if still_fails failing candidate then cur := candidate)
    c.Fuzz_case.init;
  Array.iteri
    (fun k row ->
      Array.iteri
        (fun i _ ->
          if !cur.Fuzz_case.stim.(k).(i) then
            let candidate = with_bit !cur (`Stim (k, i)) in
            if still_fails failing candidate then cur := candidate)
        row)
    c.Fuzz_case.stim;
  !cur

(* ----- driver ----- *)

let minimize ?(rounds = 8) ~failing (c : Fuzz_case.t) =
  if not (still_fails failing c) then c
  else begin
    let cur = ref c in
    let continue_ = ref true in
    let round = ref 0 in
    while !continue_ && !round < rounds do
      incr round;
      let before = size !cur in
      cur := shrink_cycles ~failing !cur;
      cur := shrink_outputs ~failing !cur;
      cur := shrink_consts ~failing !cur;
      cur := shrink_sweep ~failing !cur;
      cur := shrink_bits ~failing !cur;
      if size !cur >= before then continue_ := false
    done;
    !cur
  end
