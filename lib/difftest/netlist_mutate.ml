type mutation =
  | Rewire of { node : int; pin : int; old_driver : int; new_driver : int }
  | Swap_fn of { node : int; old_fn : Cell.gate_fn; new_fn : Cell.gate_fn }
  | Toggle_ff_init of { ff_index : int }

let describe = function
  | Rewire r ->
    Printf.sprintf "rewire node %d pin %d: %d -> %d" r.node r.pin r.old_driver
      r.new_driver
  | Swap_fn s ->
    Printf.sprintf "swap node %d: %s -> %s" s.node (Cell.fn_name s.old_fn)
      (Cell.fn_name s.new_fn)
  | Toggle_ff_init t -> Printf.sprintf "toggle init of ff #%d" t.ff_index

let choose rng xs =
  match xs with
  | [] -> None
  | _ -> Some (List.nth xs (Random.State.int rng (List.length xs)))

(* Functions interchangeable at a given arity, the mutation that turns a
   gate into its dual or parity twin. *)
let swaps_for fn arity =
  List.filter
    (fun fn' -> fn' <> fn && Cell.arity_ok fn' arity)
    (match fn with
    | Cell.Not | Cell.Buf -> [ Cell.Not; Cell.Buf ]
    | Cell.Mux -> []
    | _ -> [ Cell.And; Cell.Or; Cell.Nand; Cell.Nor; Cell.Xor; Cell.Xnor ])

let live_nodes net =
  List.init (Netlist.num_nodes net) Fun.id
  |> List.filter (fun id ->
         match (Netlist.node net id).Netlist.kind with
         | Netlist.Dead -> false
         | _ -> true)

let try_rewire rng net =
  let levels = Netlist.levels net in
  let candidates =
    live_nodes net
    |> List.filter (fun id ->
           let nd = Netlist.node net id in
           Netlist.is_comb nd || nd.Netlist.kind = Netlist.Ff)
  in
  match choose rng candidates with
  | None -> None
  | Some node_id ->
    let nd = Netlist.node net node_id in
    let pin = Random.State.int rng (Array.length nd.Netlist.fanins) in
    let legal =
      live_nodes net
      |> List.filter (fun d ->
             if nd.Netlist.kind = Netlist.Ff then true
             else levels.(d) >= 0 && levels.(d) < levels.(node_id))
    in
    let legal = List.filter (fun d -> d <> nd.Netlist.fanins.(pin)) legal in
    (match choose rng legal with
    | None -> None
    | Some new_driver ->
      let old_driver = nd.Netlist.fanins.(pin) in
      Netlist.set_fanin net ~node_id ~pin ~driver:new_driver;
      Some (Rewire { node = node_id; pin; old_driver; new_driver }))

let try_swap rng net =
  let gates =
    live_nodes net
    |> List.filter_map (fun id ->
           match (Netlist.node net id).Netlist.kind with
           | Netlist.Gate fn ->
             let arity = Array.length (Netlist.node net id).Netlist.fanins in
             (match swaps_for fn arity with
             | [] -> None
             | alts -> Some (id, fn, alts))
           | _ -> None)
  in
  match choose rng gates with
  | None -> None
  | Some (node, old_fn, alts) ->
    let new_fn = Option.get (choose rng alts) in
    Netlist.set_gate_fn net ~node_id:node new_fn;
    Some (Swap_fn { node; old_fn; new_fn })

let random rng (c : Fuzz_case.t) =
  let attempt () =
    let net = Netlist.copy c.Fuzz_case.net in
    let init = Array.copy c.Fuzz_case.init in
    let m =
      match Random.State.int rng 3 with
      | 0 -> try_rewire rng net
      | 1 -> try_swap rng net
      | _ ->
        if Array.length init = 0 then None
        else begin
          let i = Random.State.int rng (Array.length init) in
          init.(i) <- not init.(i);
          Some (Toggle_ff_init { ff_index = i })
        end
    in
    match m with
    | None -> None
    | Some m ->
      Netlist.validate net;
      Some
        ( Fuzz_case.make net ~cycles:c.Fuzz_case.cycles ~init
            ~stim:(Array.map Array.copy c.Fuzz_case.stim),
          m )
  in
  (* a kind may have no site in this netlist; retry a few times *)
  let rec go n = if n = 0 then None else
      match attempt () with Some r -> Some r | None -> go (n - 1)
  in
  go 6

let burst rng n c =
  let rec go k c acc =
    if k = 0 then (c, List.rev acc)
    else
      match random rng c with
      | None -> (c, List.rev acc)
      | Some (c', m) -> go (k - 1) c' (m :: acc)
  in
  go n c []
