type fault = Nor_as_or | Lut_reversed | Ff_stuck_init

let fault_name = function
  | Nor_as_or -> "nor-as-or"
  | Lut_reversed -> "lut-reversed"
  | Ff_stuck_init -> "ff-stuck-init"

let all_faults = [ Nor_as_or; Lut_reversed; Ff_stuck_init ]

let fault_of_string s =
  List.find_opt (fun f -> fault_name f = s) all_faults

let eval_comb ?fault net assignment =
  let n = Netlist.num_nodes net in
  (* fresh DFS per call: 0 = unvisited, 1 = on stack, 2 = done *)
  let state = Array.make n 0 in
  let order = ref [] in
  let rec visit id =
    let nd = Netlist.node net id in
    if Netlist.is_comb nd then
      match state.(id) with
      | 2 -> ()
      | 1 -> failwith "Ref_sim: combinational cycle"
      | _ ->
        state.(id) <- 1;
        Array.iter visit nd.Netlist.fanins;
        state.(id) <- 2;
        order := id :: !order
  in
  for id = 0 to n - 1 do
    visit id
  done;
  let values = Array.make n false in
  for id = 0 to n - 1 do
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Input | Netlist.Ff -> values.(id) <- assignment id
    | Netlist.Const b -> values.(id) <- b
    | Netlist.Gate _ | Netlist.Lut _ | Netlist.Dead -> ()
  done;
  List.iter
    (fun id ->
      let nd = Netlist.node net id in
      let ins = Array.map (fun f -> values.(f)) nd.Netlist.fanins in
      match nd.Netlist.kind with
      | Netlist.Gate fn ->
        let fn = if fault = Some Nor_as_or && fn = Cell.Nor then Cell.Or else fn in
        values.(id) <- Cell.eval fn ins
      | Netlist.Lut truth ->
        let k = Array.length ins in
        let idx = ref 0 in
        Array.iteri
          (fun i b ->
            let bit = if fault = Some Lut_reversed then k - 1 - i else i in
            if b then idx := !idx lor (1 lsl bit))
          ins;
        values.(id) <- truth.(!idx)
      | _ -> assert false)
    (List.rev !order);
  values

let run ?fault (c : Fuzz_case.t) =
  let net = c.Fuzz_case.net in
  let ffs = Netlist.ffs net in
  let state = Hashtbl.create 16 in
  List.iteri
    (fun i ff -> Hashtbl.replace state ff c.Fuzz_case.init.(i))
    ffs;
  Array.init c.Fuzz_case.cycles (fun k ->
      let inputs = Fuzz_case.input_fn c k in
      let assignment id =
        match Hashtbl.find_opt state id with
        | Some v -> v
        | None -> inputs id
      in
      let values = eval_comb ?fault net assignment in
      let pos =
        List.map (fun (po, drv) -> (po, values.(drv))) (Netlist.outputs net)
      in
      List.iter
        (fun ff ->
          if fault <> Some Ff_stuck_init then
            let d = (Netlist.node net ff).Netlist.fanins.(0) in
            Hashtbl.replace state ff values.(d))
        ffs;
      let ff_states = List.map (fun ff -> (ff, Hashtbl.find state ff)) ffs in
      (pos, ff_states))
