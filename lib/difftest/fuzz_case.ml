type t = {
  net : Netlist.t;
  cycles : int;
  init : bool array;
  stim : bool array array;
}

let make net ~cycles ~init ~stim =
  let n_pi = List.length (Netlist.inputs net) in
  let n_ff = List.length (Netlist.ffs net) in
  if cycles < 0 then invalid_arg "Fuzz_case.make: negative cycle count";
  if Array.length init <> n_ff then
    invalid_arg "Fuzz_case.make: init length <> flip-flop count";
  if Array.length stim <> cycles then
    invalid_arg "Fuzz_case.make: stimulus rows <> cycles";
  Array.iter
    (fun row ->
      if Array.length row <> n_pi then
        invalid_arg "Fuzz_case.make: stimulus row length <> input count")
    stim;
  { net; cycles; init; stim }

let random rng net ~cycles =
  let n_pi = List.length (Netlist.inputs net) in
  let n_ff = List.length (Netlist.ffs net) in
  {
    net;
    cycles;
    init = Array.init n_ff (fun _ -> Random.State.bool rng);
    stim =
      Array.init cycles (fun _ ->
          Array.init n_pi (fun _ -> Random.State.bool rng));
  }

(* Dense id → position tables, rebuilt on demand; cases are small. *)
let index_of ids =
  let tbl = Hashtbl.create (List.length ids * 2) in
  List.iteri (fun i id -> Hashtbl.replace tbl id i) ids;
  tbl

let input_fn c k =
  let idx = index_of (Netlist.inputs c.net) in
  fun id ->
    match Hashtbl.find_opt idx id with
    | Some i -> c.stim.(k).(i)
    | None -> false

let init_fn c =
  let idx = index_of (Netlist.ffs c.net) in
  fun id ->
    match Hashtbl.find_opt idx id with
    | Some i -> c.init.(i)
    | None -> false

let with_net c net' =
  make net' ~cycles:c.cycles ~init:c.init ~stim:c.stim

let node_name net id = (Netlist.node net id).Netlist.name

let bits_to_string bits =
  String.init (Array.length bits) (fun i -> if bits.(i) then '1' else '0')

let print_stim c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# gklock stimulus v1\n";
  Printf.bprintf buf "cycles %d\n" c.cycles;
  Printf.bprintf buf "inputs %s\n"
    (String.concat " " (List.map (node_name c.net) (Netlist.inputs c.net)));
  Printf.bprintf buf "ffs %s\n"
    (String.concat " " (List.map (node_name c.net) (Netlist.ffs c.net)));
  Printf.bprintf buf "init %s\n" (bits_to_string c.init);
  Array.iter (fun row -> Printf.bprintf buf "%s\n" (bits_to_string row)) c.stim;
  Buffer.contents buf

let parse_bits line expected what =
  if String.length line <> expected then
    failwith
      (Printf.sprintf "stimulus: %s has %d bits, expected %d" what
         (String.length line) expected);
  Array.init expected (fun i ->
      match line.[i] with
      | '0' -> false
      | '1' -> true
      | ch -> failwith (Printf.sprintf "stimulus: bad bit %C in %s" ch what))

let parse_stim ~net text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let field prefix line =
    let plen = String.length prefix in
    if String.length line >= plen && String.sub line 0 plen = prefix then
      String.trim (String.sub line plen (String.length line - plen))
    else failwith (Printf.sprintf "stimulus: expected %S line" prefix)
  in
  match lines with
  | cyc :: inp :: ffl :: ini :: rows ->
    let cycles =
      match int_of_string_opt (field "cycles" cyc) with
      | Some n when n >= 0 -> n
      | _ -> failwith "stimulus: bad cycle count"
    in
    let names s = if s = "" then [] else String.split_on_char ' ' s in
    let in_names = names (field "inputs" inp) in
    let ff_names = names (field "ffs" ffl) in
    let resolve what name =
      match Netlist.find net name with
      | Some id -> id
      | None -> failwith (Printf.sprintf "stimulus: unknown %s %S" what name)
    in
    let rec_inputs = List.map (resolve "input") in_names in
    let rec_ffs = List.map (resolve "flip-flop") ff_names in
    (* Reorder the recorded columns into the netlist's declaration order. *)
    let reorder recorded declared bits what =
      let pos = Hashtbl.create 16 in
      List.iteri (fun i id -> Hashtbl.replace pos id i) recorded;
      List.map
        (fun id ->
          match Hashtbl.find_opt pos id with
          | Some i -> bits.(i)
          | None ->
            failwith
              (Printf.sprintf "stimulus: %s %S not covered" what
                 (node_name net id)))
        declared
      |> Array.of_list
    in
    let init_bits = parse_bits (field "init" ini) (List.length ff_names) "init" in
    let init = reorder rec_ffs (Netlist.ffs net) init_bits "flip-flop" in
    (* A zero-input netlist has empty bit rows, which line filtering
       drops — synthesize them instead of demanding blank lines. *)
    if in_names = [] then
      make net ~cycles ~init ~stim:(Array.make cycles [||])
    else begin
      if List.length rows <> cycles then
        failwith
          (Printf.sprintf "stimulus: %d rows for %d cycles" (List.length rows)
             cycles);
      let stim =
        List.mapi
          (fun k row ->
            let bits =
              parse_bits row (List.length in_names)
                (Printf.sprintf "cycle %d" k)
            in
            reorder rec_inputs (Netlist.inputs net) bits "input")
          rows
        |> Array.of_list
      in
      make net ~cycles ~init ~stim
    end
  | _ -> failwith "stimulus: truncated header"
