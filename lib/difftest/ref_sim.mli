(** The reference semantics of the differential oracle: a deliberately
    naive, engine-independent sequential interpreter.

    Per cycle it does a fresh DFS topological walk and evaluates each
    gate with {!Cell.eval} — exactly the seed implementation that
    {!Netlist.Engine} replaced, kept slow on purpose so a bug in the
    compiled instruction stream, the lane packing, or the memoized
    analyses cannot also be present here.

    {!fault} is the mutation-testing hook: injecting a fault makes this
    reference wrong in a known way, and the oracle stack must catch and
    shrink the resulting disagreement — that is how the fuzzer's own
    detection power is tested without planting bugs in shipped code. *)

(** An intentional bug, for mutation-testing the oracles.

    - [Nor_as_or]: NOR gates evaluate as OR.
    - [Lut_reversed]: LUT rows are indexed with the fanin bits reversed.
    - [Ff_stuck_init]: flip-flops never leave their initial state. *)
type fault = Nor_as_or | Lut_reversed | Ff_stuck_init

val fault_of_string : string -> fault option
val fault_name : fault -> string
val all_faults : fault list

(** [run ?fault case] simulates the case and returns, per cycle, the
    primary-output values (name, value) and the flip-flop states after
    the cycle's capture, as [(po_values, ff_states)] — cycle [k] uses
    stimulus row [k], matching {!Cycle_sim.run}. *)
val run :
  ?fault:fault ->
  Fuzz_case.t ->
  ((string * bool) list * (int * bool) list) array

(** [eval_comb ?fault net assignment] is the combinational reference:
    like {!Netlist.eval_comb} but via the naive walk. *)
val eval_comb : ?fault:fault -> Netlist.t -> (int -> bool) -> bool array
