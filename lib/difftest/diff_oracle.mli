(** The differential oracle stack.

    The repo carries several independent implementations of "what does
    this netlist compute": the naive reference walk ({!Ref_sim}), the
    compiled scalar engine ({!Netlist.eval_comb} via {!Cycle_sim}), the
    bit-parallel lane engine ({!Cycle_sim.run_batch}), the event-driven
    timing simulator ({!Timing_sim}), SAT equivalence over a miter
    ({!Equiv}) and BDDs ({!Bdd}).  Each oracle here cross-checks two of
    them on one {!Fuzz_case.t} and reports any disagreement as a
    structured {!mismatch} — first divergent cycle, signal, lane — the
    raw material the shrinker minimizes and the corpus replays.

    All oracles are expected to agree on every valid netlist; a mismatch
    is always a bug in one of the engines (or in a transform such as the
    bench printer that oracle 4 routes the circuit through). *)

type oracle =
  | Engine_scalar  (** compiled scalar engine vs naive reference walk *)
  | Engine_lanes   (** bit-parallel lanes vs scalar engine, per lane *)
  | Engine_block
      (** multi-word [eval_block] vs [eval_words] per word, plus sampled
          lanes vs scalar engine and reference walk — covers partial
          final words *)
  | Timing         (** timing simulator's captures vs cycle accurate sim *)
  | Sat_roundtrip  (** SAT miter: netlist ≡ its bench round-trip, unrolled *)
  | Bdd_probe      (** BDD build vs reference walk on sampled vectors *)
  | Opt_equiv
      (** the {!Opt} strash/rewrite twin keeps the pin interface and the
          function: interface checked syntactically, function by a SAT
          miter over the unrolling plus name-matched concrete vectors *)

val all_oracles : oracle list
val oracle_name : oracle -> string
val oracle_of_name : string -> oracle option

type mismatch = {
  mm_oracle : string;
  mm_cycle : int;   (** first divergent cycle; [-1] when combinational *)
  mm_signal : string;  (** PO name or flip-flop name that diverged *)
  mm_lane : int;    (** diverging stimulus lane; [-1] when not lane-level *)
  mm_detail : string;
}

val pp_mismatch : Format.formatter -> mismatch -> unit
val mismatch_to_string : mismatch -> string

(** [mismatch ~oracle signal] builds a mismatch record — for property
    layers ({!Lock_props}) that report through the same channel. *)
val mismatch :
  oracle:string -> ?cycle:int -> ?lane:int -> ?detail:string -> string ->
  mismatch

(** [check ?oracles ?fault ~seed case] runs the oracle stack and returns
    every disagreement (empty = all engines agree).  [seed] fixes the
    auxiliary randomness (extra stimulus lanes, BDD probe vectors).
    [fault] injects a deliberate bug into the reference walk —
    mutation-testing hook; see {!Ref_sim.fault}.  Oracles that do not
    apply to a case (e.g. timing on a zero-cycle case) are skipped. *)
val check :
  ?oracles:oracle list ->
  ?fault:Ref_sim.fault ->
  seed:int ->
  Fuzz_case.t ->
  mismatch list
