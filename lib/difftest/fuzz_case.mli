(** One differential-fuzzing test case: a netlist plus the sequential
    stimulus it is exercised under.

    A case is the unit the oracle stack ({!Diff_oracle}) checks, the
    shrinker minimizes, and the corpus persists.  The stimulus is stored
    positionally against the netlist's declaration order
    ({!Netlist.inputs} / {!Netlist.ffs}); the textual stimulus format is
    self-describing (it names the inputs and flip-flops), so a corpus
    entry survives node-id renumbering in its [.bench] twin. *)

type t = {
  net : Netlist.t;
  cycles : int;
  init : bool array;  (** initial flip-flop states, {!Netlist.ffs} order *)
  stim : bool array array;
      (** [stim.(k).(i)]: cycle [k]'s value of the [i]-th primary input in
          {!Netlist.inputs} order; length {!cycles} *)
}

(** [make net ~cycles ~init ~stim] validates dimensions.
    @raise Invalid_argument on a shape mismatch. *)
val make : Netlist.t -> cycles:int -> init:bool array -> stim:bool array array -> t

(** [random rng net ~cycles] draws a uniformly random stimulus and initial
    state. *)
val random : Random.State.t -> Netlist.t -> cycles:int -> t

(** [input_fn c k] is the per-PI-id assignment for cycle [k]. *)
val input_fn : t -> int -> int -> bool

(** [init_fn c] is the per-FF-id initial-state assignment. *)
val init_fn : t -> int -> bool

(** [with_net c net'] re-binds the stimulus to [net'] (same input/FF
    counts; used after compaction). @raise Invalid_argument on mismatch. *)
val with_net : t -> Netlist.t -> t

(** {1 Stimulus file format}

    {v
    # gklock stimulus v1
    cycles 3
    inputs a b c
    ffs q0 q1
    init 10
    011
    110
    000
    v} *)

(** [print_stim c] renders the stimulus (not the netlist). *)
val print_stim : t -> string

(** [parse_stim ~net text] re-attaches a stimulus to [net], reordering by
    the recorded input/FF names.  @raise Failure on malformed text or
    names absent from [net]. *)
val parse_stim : net:Netlist.t -> string -> t
