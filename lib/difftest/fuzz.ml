type family = Generated | Adversarial | Mutated | Lock_property

let all_families = [ Generated; Adversarial; Mutated; Lock_property ]

let family_name = function
  | Generated -> "generated"
  | Adversarial -> "adversarial"
  | Mutated -> "mutated"
  | Lock_property -> "lock-property"

type failure = {
  f_index : int;
  f_seed : int;
  f_family : family;
  f_scheme : Lock_props.scheme option;
  f_mismatches : Diff_oracle.mismatch list;
  f_case : Fuzz_case.t option;
  f_saved : (string * string) option;
}

type report = {
  r_seed : int;
  r_cases_run : int;
  r_failures : failure list;
  r_elapsed_s : float;
}

(* Mix the run seed with the case index into an independent per-case
   seed — a splitmix-style finalizer, cheap and well spread. *)
let case_seed ~seed index =
  let z = ref (seed + (index * 0x9e3779b9)) in
  z := (!z lxor (!z lsr 16)) * 0x85ebca6b land max_int;
  z := (!z lxor (!z lsr 13)) * 0xc2b2ae35 land max_int;
  !z lxor (!z lsr 16)

let build_case family cs =
  let rng = Random.State.make [| cs; 0xca5e |] in
  let fresh net = Fuzz_case.random rng net ~cycles:(1 + Random.State.int rng 8) in
  match family with
  | Generated -> fresh (Netlist_gen.generated rng)
  | Adversarial -> fresh (Netlist_gen.adversarial rng)
  | Mutated ->
    let base = fresh (Netlist_gen.net rng) in
    let n = 1 + Random.State.int rng 3 in
    fst (Netlist_mutate.burst rng n base)
  | Lock_property -> assert false

let run_one ?oracles ?fault ~families index cs =
  let family = List.nth families (index mod List.length families) in
  match family with
  | Lock_property ->
    let schemes = Lock_props.all in
    let scheme =
      List.nth schemes (index / List.length families mod List.length schemes)
    in
    let mismatches = Lock_props.check ~seed:cs scheme in
    if mismatches = [] then None
    else
      Some
        {
          f_index = index;
          f_seed = cs;
          f_family = family;
          f_scheme = Some scheme;
          f_mismatches = mismatches;
          f_case = None;
          f_saved = None;
        }
  | Generated | Adversarial | Mutated ->
    let case = build_case family cs in
    let mismatches = Diff_oracle.check ?oracles ?fault ~seed:cs case in
    if mismatches = [] then None
    else
      let failing c = Diff_oracle.check ?oracles ?fault ~seed:cs c <> [] in
      let shrunk = Shrinker.minimize ~failing case in
      Some
        {
          f_index = index;
          f_seed = cs;
          f_family = family;
          f_scheme = None;
          f_mismatches = Diff_oracle.check ?oracles ?fault ~seed:cs shrunk;
          f_case = Some shrunk;
          f_saved = None;
        }

let persist corpus_dir run_seed f =
  match (corpus_dir, f.f_case) with
  | Some dir, Some case ->
    let name = Printf.sprintf "fuzz_s%d_c%d" run_seed f.f_index in
    { f with f_saved = Some (Corpus.save ~dir ~name case) }
  | _ -> f

let run ?oracles ?fault ?(families = all_families) ?corpus_dir ?workers
    ?time_budget_s ?(progress = fun _ -> ()) ~seed ~cases () =
  if families = [] then invalid_arg "Fuzz.run: empty family list";
  let t0 = Unix.gettimeofday () in
  let deadline =
    match time_budget_s with Some s -> Some (t0 +. s) | None -> None
  in
  let domains =
    match workers with Some w -> w | None -> Parallel.default_domains ()
  in
  let batch_size = max domains (domains * 4) in
  let failures = ref [] in
  let ran = ref 0 in
  let next = ref 0 in
  let timed_out () =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  while !next < cases && not (timed_out ()) do
    let n = min batch_size (cases - !next) in
    let indices = List.init n (fun i -> !next + i) in
    let batch =
      Parallel.map ~domains
        (fun index ->
          run_one ?oracles ?fault ~families index (case_seed ~seed index))
        indices
    in
    List.iter
      (function
        | Some f -> failures := persist corpus_dir seed f :: !failures
        | None -> ())
      batch;
    next := !next + n;
    ran := !ran + n;
    progress !ran
  done;
  {
    r_seed = seed;
    r_cases_run = !ran;
    r_failures = List.rev !failures;
    r_elapsed_s = Unix.gettimeofday () -. t0;
  }

let replay_command report f =
  Printf.sprintf "GKLOCK_SEED=%d gklock fuzz --cases %d" report.r_seed
    (f.f_index + 1)

let pp_failure ppf f =
  Format.fprintf ppf "case #%d (family %s%s, case seed %d):" f.f_index
    (family_name f.f_family)
    (match f.f_scheme with
    | Some s -> ", scheme " ^ Lock_props.scheme_name s
    | None -> "")
    f.f_seed;
  List.iteri
    (fun i m ->
      if i < 4 then Format.fprintf ppf "@,  %a" Diff_oracle.pp_mismatch m)
    f.f_mismatches;
  (match f.f_case with
  | Some c ->
    Format.fprintf ppf "@,  shrunk witness: %d nodes, %d cycles"
      (Netlist.num_nodes c.Fuzz_case.net)
      c.Fuzz_case.cycles
  | None -> ());
  match f.f_saved with
  | Some (bench, stim) ->
    Format.fprintf ppf "@,  saved: %s + %s" bench stim
  | None -> ()
