(** Random netlists and cases for the differential fuzzer.

    Two families, mirroring the split in [test/test_engine.ml]:

    - {e generated}: a random {!Generator.config}, so the circuits match
      the statistics of mapped designs (staged DAG, FFs, realistic
      depth) — this is also the qcheck generator over [Generator.config]
      itself;
    - {e adversarial}: free-form construction biased toward the node
      kinds and corner shapes the staged generator avoids — LUTs of
      every arity, MUXes, constants, wide variadic gates, fanin
      repetition (the same driver on several pins), flip-flop
      self-loops, and multiple outputs naming the same driver.

    Everything is driven by an explicit [Random.State.t] so a fuzz case
    is replayable from its seed; QCheck wrappers expose the same
    distributions to property tests. *)

(** [config rng] draws a small {!Generator.config} (4–10 PIs, up to ~8
    FFs, 20–80 gates). *)
val config : Random.State.t -> Generator.config

(** [generated rng] is [Generator.generate (config rng)]. *)
val generated : Random.State.t -> Netlist.t

(** [adversarial rng] builds a free-form combinational-plus-FF netlist
    exercising LUT/MUX/constant/wide-gate corners.  Validated. *)
val adversarial : Random.State.t -> Netlist.t

(** [net rng] draws from either family (biased ~half/half). *)
val net : Random.State.t -> Netlist.t

(** [case rng] is a random netlist with a random stimulus of 1–8
    cycles. *)
val case : Random.State.t -> Fuzz_case.t

(** {1 QCheck wrappers} — for property tests; shrinking is left to
    {!Shrinker}, which understands netlists. *)

val arb_config : Generator.config QCheck.arbitrary

(** A printable arbitrary over generator seeds; combine with {!generated}
    or {!adversarial} inside the law. *)
val arb_seed : int QCheck.arbitrary
