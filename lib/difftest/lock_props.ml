type scheme = Xor | Mux | Fault | Sarlock | Antisat | Tdk | Gk | Hybrid

let all = [ Xor; Mux; Fault; Sarlock; Antisat; Tdk; Gk; Hybrid ]

let scheme_name = function
  | Xor -> "xor"
  | Mux -> "mux"
  | Fault -> "fault"
  | Sarlock -> "sarlock"
  | Antisat -> "antisat"
  | Tdk -> "tdk"
  | Gk -> "gk"
  | Hybrid -> "hybrid"

let scheme_of_name s = List.find_opt (fun x -> scheme_name x = s) all

let prop scheme = "prop:" ^ scheme_name scheme

let fail scheme signal detail =
  [ Diff_oracle.mismatch ~oracle:(prop scheme) ~detail signal ]

(* ----- shared circuits ----- *)

let seq_circuit ?(n_ff = 6) seed =
  Generator.generate
    {
      Generator.gen_name = Printf.sprintf "lp%d" seed;
      seed;
      n_pi = 6;
      n_po = 4;
      n_ff;
      n_gates = 30;
      depth = 5;
      ff_depth_bias = 0.2;
    }

let comb_circuit seed = fst (Combinationalize.run (seq_circuit seed))

(* ----- combinational schemes ----- *)

(* Correct key: SAT-equivalent to the original.  Wrong key: for the
   corrupting schemes, some single-bit flip shows a nonzero bit error
   rate; for the point-function schemes, a random wrong key is
   SAT-distinguishable. *)
let check_comb scheme ~seed =
  let comb = comb_circuit seed in
  let lk =
    match scheme with
    | Xor -> Xor_lock.lock ~seed comb ~n_keys:5
    | Mux -> Mux_lock.lock ~seed comb ~n_keys:5
    | Fault -> Fault_lock.lock ~seed ~samples:64 comb ~n_keys:5
    | Sarlock -> Sarlock.lock ~seed comb ~n_keys:4
    | Antisat -> Antisat.lock ~seed comb ~n:4
    | Tdk | Gk | Hybrid -> assert false
  in
  let transparent =
    match Equiv.check ~fixed_b:lk.Locked.correct_key comb lk.Locked.net with
    | Equiv.Equivalent -> []
    | Equiv.Different w ->
      fail scheme "<correct-key>"
        (Printf.sprintf "correct key not transparent (witness %s)"
           (String.concat ","
              (List.map (fun (n, v) -> Printf.sprintf "%s=%b" n v) w)))
  in
  let corrupting =
    match scheme with
    | Xor | Mux | Fault ->
      let corrupts =
        List.exists
          (fun name ->
            Metrics.bit_error_rate ~samples:128 ~seed ~reference:comb lk
              (Key.flip lk.Locked.correct_key name)
            > 0.)
          lk.Locked.key_inputs
      in
      if corrupts then []
      else
        fail scheme "<wrong-key>"
          "no single-bit key flip corrupts any output (BER = 0 for all)"
    | Sarlock | Antisat ->
      (* Anti-SAT's correct class is every key with KA = KB, so a
         uniformly wrong key is often still functionally correct; a
         single A-half flip is always distinguishable.  SARLock's
         correct key is unique, so any wrong key flips one pattern. *)
      let wrong =
        match scheme with
        | Antisat ->
          Key.flip lk.Locked.correct_key (List.hd lk.Locked.key_inputs)
        | _ -> Key.random_wrong ~seed lk.Locked.correct_key
      in
      (match Equiv.check ~fixed_b:wrong comb lk.Locked.net with
      | Equiv.Different _ -> []
      | Equiv.Equivalent ->
        fail scheme "<wrong-key>"
          "a wrong key is functionally transparent")
    | _ -> assert false
  in
  transparent @ corrupting

(* ----- TDK ----- *)

let check_tdk ~seed =
  let net = seq_circuit seed in
  let clock_ps = max (Sta.clock_for net ~margin:1.3) 2000 in
  match Tdk.lock ~seed net ~clock_ps ~n_sites:2 with
  | exception Invalid_argument _ -> [] (* no feasible site: skip *)
  | t ->
    let lk = t.Tdk.locked in
    (* zero-delay transparency with the correct key: the TDB reduces to
       a buffer chain, the functional XOR passes *)
    let fixed = Locked.with_key_fixed lk lk.Locked.correct_key in
    let comb_ref = fst (Combinationalize.run net) in
    let comb_fixed = fst (Combinationalize.run fixed) in
    let transparent =
      match Equiv.check comb_ref comb_fixed with
      | Equiv.Equivalent -> []
      | Equiv.Different _ ->
        fail Tdk "<correct-key>" "correct key not transparent (zero-delay)"
      | exception Invalid_argument msg -> fail Tdk "<correct-key>" msg
    in
    (* flipping a functional key bit is SAT-visible *)
    let func_corrupts =
      match t.Tdk.sites with
      | [] -> fail Tdk "<sites>" "lock returned no sites"
      | s :: _ -> (
        let wrong = Key.flip lk.Locked.correct_key s.Tdk.func_key in
        let comb_wrong =
          fst (Combinationalize.run (Locked.with_key_fixed lk wrong))
        in
        match Equiv.check comb_ref comb_wrong with
        | Equiv.Different _ -> []
        | Equiv.Equivalent ->
          fail Tdk "<wrong-key>" "functional key flip is transparent"
        | exception Invalid_argument msg -> fail Tdk "<wrong-key>" msg)
    in
    transparent @ func_corrupts

(* ----- GK ----- *)

(* Eq. 2 in isolation: a GK with random branch delays, its key driven by
   one rising or falling transition, must emit a pulse of exactly
   D_path + D_mux. *)
let check_gk_eq2 ~seed =
  let rng = Random.State.make [| seed; 0xe92 |] in
  let d_path_a_ps = 300 + Random.State.int rng 1200 in
  let d_path_b_ps = 300 + Random.State.int rng 1200 in
  let variant =
    if Random.State.bool rng then Gk.Invert_on_const else Gk.Buffer_on_const
  in
  let rising = Random.State.bool rng in
  let x_val = Random.State.bool rng in
  let net = Netlist.create "eq2" in
  let x = Netlist.add_input net "x" in
  let key = Netlist.add_input net "key" in
  let gk =
    Gk.insert net ~profile:`Custom ~name:"gk" ~x ~key ~variant ~d_path_a_ps
      ~d_path_b_ps ()
  in
  Netlist.add_output net "y" gk.Gk.out;
  let t0 = 4000 in
  let clock_ps = 16000 in
  let drive pi =
    if pi = x then Timing_sim.Const x_val
    else
      Timing_sim.Wave
        (Waveform.make
           ~initial:(if rising then Logic.F else Logic.T)
           [ (t0, if rising then Logic.T else Logic.F) ])
  in
  let r = Timing_sim.run ~drive net { Timing_sim.clock_ps; cycles = 1 } in
  let wave = r.Timing_sim.waves.(gk.Gk.out) in
  (* Eq. 2 counts the glitch from the key transition to the settled
     output: the pulse must open when the select flips (t0 + Dmux) and
     close at t0 + D_path + D_mux exactly. *)
  let expected =
    if rising then Gk.glitch_on_rise_ps gk else Gk.glitch_on_fall_ps gk
  in
  let pulses = Waveform.pulses ~max_width:(clock_ps / 2) wave ~until:clock_ps in
  let matches =
    List.exists
      (fun p ->
        p.Waveform.start_ps = t0 + gk.Gk.d_mux_ps
        && p.Waveform.stop_ps = t0 + expected)
      pulses
  in
  if matches then []
  else
    fail Gk "gk_mux"
      (Printf.sprintf
         "Eq.2 violated: expected a glitch over [%d,%d] ps on a %s key \
          (DA=%d DB=%d Dmux=%d), saw pulses [%s]"
         (t0 + gk.Gk.d_mux_ps) (t0 + expected)
         (if rising then "rising" else "falling")
         gk.Gk.d_path_a_ps gk.Gk.d_path_b_ps gk.Gk.d_mux_ps
         (String.concat ";"
            (List.map
               (fun p ->
                 Printf.sprintf "%d-%d" p.Waveform.start_ps p.Waveform.stop_ps)
               pulses)))

let gk_circuit seed =
  Generator.generate
    {
      Generator.gen_name = Printf.sprintf "gkp%d" seed;
      seed = seed + 1000;
      n_pi = 5;
      n_po = 4;
      n_ff = 6;
      n_gates = 30;
      depth = 6;
      ff_depth_bias = 0.2;
    }

let check_gk_design ~seed =
  let net = gk_circuit seed in
  let clock_ps = max (Sta.clock_for net ~margin:1.2) 2600 in
  match Insertion.lock ~seed net ~clock_ps ~n_gks:2 with
  | exception Invalid_argument _ -> [] (* no feasible sites: skip *)
  | d ->
    let cycles = 8 in
    let cfg = { Timing_sim.clock_ps; cycles } in
    let stim n = Stimuli.edge_aligned ~seed:(seed + 7) n ~clock_ps ~cycles in
    let base =
      Timing_sim.run ~drive:(stim net) ~captures_from:(fun _ -> 1) net cfg
    in
    let run_locked key =
      Timing_sim.run
        ~drive:(Insertion.timing_drive ~other:(stim d.Insertion.lnet) d key)
        ~captures_from:(Insertion.capture_policy d) d.Insertion.lnet cfg
    in
    let locked = run_locked d.Insertion.correct_key in
    let transparent =
      let mism, _ = Stimuli.po_agreement ~skip:0 base locked in
      if mism = 0 && locked.Timing_sim.violations = [] then []
      else
        fail Gk "<correct-key>"
          (Printf.sprintf
             "correct key: %d PO sample mismatches, %d capture violations"
             mism
             (List.length locked.Timing_sim.violations))
    in
    (* a wrong constant key degenerates the GK to its stable inverter:
       the locked flip-flop's first captured value must be the complement
       of the baseline's *)
    let sample_of sample_net r ff_name k =
      let rec go i =
        if i >= Array.length r.Timing_sim.ff_ids then None
        else
          let id = r.Timing_sim.ff_ids.(i) in
          if (Netlist.node sample_net id).Netlist.name = ff_name then
            Some r.Timing_sim.ff_samples.(i).(k)
          else go (i + 1)
      in
      go 0
    in
    let inversion =
      List.concat_map
        (fun p ->
          if p.Insertion.p_gk.Gk.variant <> Gk.Invert_on_const then []
          else
          let const_key =
            List.map
              (fun (name, b) ->
                if name = p.Insertion.p_k1_name || name = p.Insertion.p_k2_name
                then (name, false)
                else (name, b))
              d.Insertion.correct_key
          in
          let wrong = run_locked const_key in
          let ff_name =
            (Netlist.node d.Insertion.lnet p.Insertion.p_ff).Netlist.name
          in
          (* recorded sample k is edge k+1, and data FFs hold through
             edge 0, so the first real capture is recorded sample 0 —
             later samples already mix the corrupted state back in *)
          match
            ( sample_of net base ff_name 0,
              sample_of d.Insertion.lnet wrong ff_name 0 )
          with
          | Some bv, Some wv
            when (bv = Logic.T || bv = Logic.F) && (wv = Logic.T || wv = Logic.F)
            ->
            if Logic.equal wv (Logic.lnot bv) then []
            else
              fail Gk ff_name
                (Printf.sprintf
                   "constant wrong key should invert the first capture \
                    (base=%c locked=%c)"
                   (Logic.to_char bv) (Logic.to_char wv))
          | _ -> [])
        d.Insertion.placements
    in
    transparent @ inversion

let check_gk ~seed = check_gk_eq2 ~seed @ check_gk_design ~seed

(* ----- Hybrid ----- *)

let check_hybrid ~seed =
  let net = gk_circuit (seed + 5000) in
  let clock_ps = max (Sta.clock_for net ~margin:1.2) 2600 in
  match Hybrid.lock ~seed net ~clock_ps ~n_gks:1 ~n_xors:2 with
  | exception Invalid_argument _ -> []
  | h ->
    let d = h.Hybrid.design in
    let cycles = 8 in
    let cfg = { Timing_sim.clock_ps; cycles } in
    let stim n = Stimuli.edge_aligned ~seed:(seed + 9) n ~clock_ps ~cycles in
    let base =
      Timing_sim.run ~drive:(stim net) ~captures_from:(fun _ -> 1) net cfg
    in
    let locked =
      Timing_sim.run
        ~drive:
          (Insertion.timing_drive ~other:(stim d.Insertion.lnet) d
             h.Hybrid.all_correct_key)
        ~captures_from:(Insertion.capture_policy d) d.Insertion.lnet cfg
    in
    let mism, _ = Stimuli.po_agreement ~skip:0 base locked in
    if mism = 0 && locked.Timing_sim.violations = [] then []
    else
      fail Hybrid "<correct-key>"
        (Printf.sprintf
           "correct key: %d PO sample mismatches, %d capture violations" mism
           (List.length locked.Timing_sim.violations))

(* ----- opt transparency, per scheme ----- *)

(* The strash/rewrite front-end must be invisible to every locking
   scheme: the optimized locked netlist keeps every key input as a
   symbolic primary input (an unknown key is never folded away) and is
   SAT-equivalent to the original over all inputs, keys included.
   Sequential schemes are checked on the combinationalized view the
   attacks actually consume. *)
let locked_for_opt scheme ~seed =
  match scheme with
  | Xor | Mux | Fault | Sarlock | Antisat ->
    let comb = comb_circuit seed in
    let lk =
      match scheme with
      | Xor -> Xor_lock.lock ~seed comb ~n_keys:5
      | Mux -> Mux_lock.lock ~seed comb ~n_keys:5
      | Fault -> Fault_lock.lock ~seed ~samples:64 comb ~n_keys:5
      | Sarlock -> Sarlock.lock ~seed comb ~n_keys:4
      | _ -> Antisat.lock ~seed comb ~n:4
    in
    Some (lk.Locked.net, lk.Locked.key_inputs)
  | Tdk -> (
    let net = seq_circuit seed in
    let clock_ps = max (Sta.clock_for net ~margin:1.3) 2000 in
    match Tdk.lock ~seed net ~clock_ps ~n_sites:2 with
    | exception Invalid_argument _ -> None (* no feasible site: skip *)
    | t ->
      let lk = t.Tdk.locked in
      Some (fst (Combinationalize.run lk.Locked.net), lk.Locked.key_inputs))
  | Gk -> (
    let net = gk_circuit seed in
    let clock_ps = max (Sta.clock_for net ~margin:1.2) 2600 in
    match Insertion.lock ~seed net ~clock_ps ~n_gks:2 with
    | exception Invalid_argument _ -> None
    | d ->
      let stripped, keys = Insertion.strip_keygens d in
      Some (fst (Combinationalize.run stripped), keys))
  | Hybrid -> (
    let net = gk_circuit (seed + 5000) in
    let clock_ps = max (Sta.clock_for net ~margin:1.2) 2600 in
    match Hybrid.lock ~seed net ~clock_ps ~n_gks:1 ~n_xors:2 with
    | exception Invalid_argument _ -> None
    | h ->
      let stripped, _ = Insertion.strip_keygens h.Hybrid.design in
      let comb = fst (Combinationalize.run stripped) in
      let pis =
        List.map (fun id -> (Netlist.node comb id).Netlist.name)
          (Netlist.inputs comb)
      in
      (* GK keys surface as PIs only after the strip; take every key of
         the combined assignment that is a PI of the stripped view *)
      let keys =
        List.filter (fun k -> List.mem k pis)
          (List.map fst h.Hybrid.all_correct_key)
      in
      Some (comb, keys))

let check_opt scheme ~seed =
  match locked_for_opt scheme ~seed with
  | None -> []
  | Some (locked, key_inputs) -> (
    let opt, _stats = Opt.run locked in
    let pis =
      List.map (fun id -> (Netlist.node opt id).Netlist.name)
        (Netlist.inputs opt)
    in
    match List.filter (fun k -> not (List.mem k pis)) key_inputs with
    | _ :: _ as missing ->
      fail scheme "<opt>"
        ("opt folded away key inputs: " ^ String.concat "," missing)
    | [] -> (
      match Equiv.check locked opt with
      | Equiv.Equivalent -> []
      | Equiv.Different w ->
        fail scheme "<opt>"
          (Printf.sprintf "opt changed the locked function (witness %s)"
             (String.concat ","
                (List.map (fun (n, v) -> Printf.sprintf "%s=%b" n v) w)))
      | exception Invalid_argument msg -> fail scheme "<opt>" msg))

(* ----- attack resistance through the registry ----- *)

(* The attack side of each scheme's contract, driven through the one
   {!Attack} registry: conventional XOR/MUX locking must fall to the
   budgeted SAT attack (and report nonzero oracle telemetry), a stripped
   GK netlist must leave the very first DIP search UNSAT. *)
let check_attack scheme ~seed =
  match scheme with
  | Xor | Mux ->
    let comb = comb_circuit seed in
    let lk =
      match scheme with
      | Xor -> Xor_lock.lock ~seed comb ~n_keys:5
      | _ -> Mux_lock.lock ~seed comb ~n_keys:5
    in
    let o =
      Attack.run
        ~budget:(Budget.create ~max_iterations:256 ~deadline_s:60. ())
        ~seed ~name:"sat" ~locked:lk.Locked.net
        ~key_inputs:lk.Locked.key_inputs
        ~oracle:(Oracle.of_netlist comb)
        ()
    in
    if not (Attack.broken o.Attack.verdict) then
      fail scheme "<sat-attack>"
        (Printf.sprintf "budgeted SAT attack should break %s locking (%s)"
           (scheme_name scheme)
           (Attack.verdict_name o.Attack.verdict))
    else if o.Attack.queries <= 0 then
      fail scheme "<sat-attack>"
        "attack succeeded but reported zero oracle queries"
    else []
  | Gk -> (
    let net = gk_circuit seed in
    let clock_ps = max (Sta.clock_for net ~margin:1.2) 2600 in
    match Insertion.lock ~seed net ~clock_ps ~n_gks:2 with
    | exception Invalid_argument _ -> [] (* no feasible sites: skip *)
    | d -> (
      let stripped, keys = Insertion.strip_keygens d in
      let locked_comb, _ = Combinationalize.run stripped in
      let oracle_comb, _ = Combinationalize.run net in
      let o =
        Attack.run ~seed ~name:"sat" ~locked:locked_comb ~key_inputs:keys
          ~oracle:(Oracle.of_netlist oracle_comb)
          ()
      in
      match o.Attack.verdict with
      | Attack.No_dip _ -> []
      | v ->
        fail Gk "<sat-attack>"
          (Printf.sprintf
             "stripped GK netlist should be UNSAT at the first DIP (got %s)"
             (Attack.verdict_name v))))
  | Fault | Sarlock | Antisat | Tdk | Hybrid -> []

let check ~seed = function
  | (Xor | Mux | Fault | Sarlock | Antisat) as s ->
    check_comb s ~seed @ check_attack s ~seed @ check_opt s ~seed
  | Tdk -> check_tdk ~seed @ check_opt Tdk ~seed
  | Gk -> check_gk ~seed @ check_attack Gk ~seed @ check_opt Gk ~seed
  | Hybrid -> check_hybrid ~seed @ check_opt Hybrid ~seed
