(** Persistent counterexample corpus.

    Every failure the fuzzer finds is shrunk and saved as a pair of
    plain-text files under a corpus directory:

    - [<name>.bench] — the netlist, in the same BENCH dialect the rest
      of the toolchain reads;
    - [<name>.stim] — the stimulus (cycle count, input/flip-flop name
      order, initial state, one bit row per cycle; see
      {!Fuzz_case.print_stim}).

    Committed corpus entries are regression tests: tier-1 replays every
    pair through the full oracle stack, so a once-found engine bug can
    never silently return. *)

(** [save ~dir ~name case] writes [<dir>/<name>.bench] and
    [<dir>/<name>.stim], creating [dir] if needed.  Returns the two
    paths written. *)
val save : dir:string -> name:string -> Fuzz_case.t -> string * string

(** [load ~bench ~stim] reads one saved pair.
    @raise Failure (or [Sys_error]) on unreadable or inconsistent
    files. *)
val load : bench:string -> stim:string -> Fuzz_case.t

(** [load_all dir] loads every [.bench]/[.stim] pair in [dir], sorted by
    name.  A [.bench] without its [.stim] (or vice versa) is an error;
    an absent directory is an empty corpus. *)
val load_all : string -> (string * Fuzz_case.t) list

(** [replay ?oracles ~seed case] runs the differential oracle stack on a
    loaded case — {!Diff_oracle.check} with no fault injected. *)
val replay :
  ?oracles:Diff_oracle.oracle list ->
  seed:int ->
  Fuzz_case.t ->
  Diff_oracle.mismatch list
