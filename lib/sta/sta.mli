(** Static timing analysis.

    Plays the role PrimeTime plays in the paper's flow (Sec. IV-B): computes
    per-node earliest/latest arrival times and per-flip-flop path bounds.
    Launch model: primary inputs change at the active edge (time 0 within
    the cycle), flip-flop Q outputs at clk-to-Q; each gate adds its bound
    cell's pin-to-pin delay.  The bounds [LB]/[UB] of the paper's Eq. (1)
    come out as [LB = T_hold] and [UB = T_clk − T_setup] (no clock skew —
    [T_i = T_j = 0], the configuration of the paper's experiments). *)

type arrival = {
  amin : int;  (** earliest possible transition at the node's output, ps *)
  amax : int;  (** latest settling time at the node's output, ps *)
}

type t

(** [analyze net ~clock_ps] runs the analysis. *)
val analyze : Netlist.t -> clock_ps:int -> t

val netlist : t -> Netlist.t
val clock_ps : t -> int

(** Arrival window at a node's output. *)
val arrival : t -> int -> arrival

(** Arrival window at a flip-flop's D pin (its fanin's output). *)
val ff_d_arrival : t -> int -> arrival

(** [lb_ub t ff] is Eq. (1)'s (LB, UB) for paths ending at [ff]. *)
val lb_ub : t -> int -> int * int

(** [setup_slack t ff] is [UB − amax(D)]: negative means a setup violation
    at the paper's clock. *)
val setup_slack : t -> int -> int

(** [hold_slack t ff] is [amin(D) − LB]: negative means a hold violation. *)
val hold_slack : t -> int -> int

(** Latest arrival at any flip-flop D pin or primary output — the critical
    path delay of the circuit (includes the launching clk-to-Q). *)
val critical_path_ps : Netlist.t -> int

(** Smallest legal clock period: critical path plus setup. *)
val min_clock_ps : Netlist.t -> int

(** [clock_for net ~margin] is [min_clock_ps] scaled by [margin] and
    rounded up to 10 ps — how the experiments pick each benchmark's
    period. *)
val clock_for : Netlist.t -> margin:float -> int
