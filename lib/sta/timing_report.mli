(** True-vs-false timing-violation discrimination (Sec. IV-B).

    After GK insertion the STA tool "will report that the FF at the output
    of the GK is violated [...] In fact, this delay is intentionally
    inserted for generating glitches."  The design flow therefore checks,
    for each endpoint the STA flags, whether the flag is explained by an
    intentional glitch whose start and end respect the capture window; only
    unexplained flags are {i true} violations that send the flow back to
    site selection. *)

type verdict =
  | Clean              (** no violation reported *)
  | False_violation    (** reported, but explained by an intended glitch *)
  | True_violation     (** reported and not explained — must be fixed *)

type entry = {
  ff : int;
  ff_name : string;
  slack_ps : int;       (** setup slack the STA reports *)
  verdict : verdict;
}

(** [discriminate sta ~intended] examines every flip-flop.  [intended ff]
    returns the planned glitch interval (start, stop) within the cycle for
    endpoints that host a GK, and [None] elsewhere.  A negative-slack
    endpoint with an intended glitch is a false violation when the glitch
    covers the capture window ([t_j − setup], [t_j + hold]) or lies wholly
    outside it. *)
val discriminate : Sta.t -> intended:(int -> (int * int) option) -> entry list

(** True violations only — what the paper's flow loops on. *)
val true_violations : entry list -> entry list

val pp_entry : Format.formatter -> entry -> unit
