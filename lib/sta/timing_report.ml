type verdict = Clean | False_violation | True_violation

type entry = { ff : int; ff_name : string; slack_ps : int; verdict : verdict }

let covers_window ~t_j ~setup ~hold (start, stop) =
  start <= t_j - setup && stop >= t_j + hold

let outside_window ~t_j ~setup ~hold (start, stop) =
  stop < t_j - setup || start > t_j + hold

let discriminate sta ~intended =
  let t_j = Sta.clock_ps sta in
  let setup = Cell_lib.dff_setup_ps and hold = Cell_lib.dff_hold_ps in
  List.map
    (fun ff ->
      let slack_ps = Sta.setup_slack sta ff in
      let verdict =
        if slack_ps >= 0 then Clean
        else
          match intended ff with
          | Some interval
            when covers_window ~t_j ~setup ~hold interval
                 || outside_window ~t_j ~setup ~hold interval ->
            False_violation
          | Some _ | None -> True_violation
      in
      {
        ff;
        ff_name = (Netlist.node (Sta.netlist sta) ff).Netlist.name;
        slack_ps;
        verdict;
      })
    (Netlist.ffs (Sta.netlist sta))

let true_violations entries =
  List.filter (fun e -> e.verdict = True_violation) entries

let pp_entry ppf e =
  let verdict =
    match e.verdict with
    | Clean -> "clean"
    | False_violation -> "false-violation(glitch)"
    | True_violation -> "TRUE-violation"
  in
  Format.fprintf ppf "%s: slack=%dps %s" e.ff_name e.slack_ps verdict
