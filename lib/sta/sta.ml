type arrival = { amin : int; amax : int }

type t = { net : Netlist.t; clock : int; arr : arrival array }

let node_delay net id =
  let n = Netlist.node net id in
  match n.Netlist.kind with
  | Netlist.Gate _ -> (
    match n.Netlist.cell with Some c -> c.Cell.delay_ps | None -> 0)
  | Netlist.Lut truth ->
    let rec log2 k = if 1 lsl k >= Array.length truth then k else log2 (k + 1) in
    Cell_lib.lut_delay_ps (log2 0)
  | Netlist.Input | Netlist.Const _ | Netlist.Ff | Netlist.Dead -> 0

let compute_arrivals net =
  let n = Netlist.num_nodes net in
  let arr = Array.make n { amin = 0; amax = 0 } in
  for id = 0 to n - 1 do
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Ff ->
      arr.(id) <- { amin = Cell_lib.dff_clk2q_ps; amax = Cell_lib.dff_clk2q_ps }
    | Netlist.Input | Netlist.Const _ | Netlist.Gate _ | Netlist.Lut _
    | Netlist.Dead -> ()
  done;
  List.iter
    (fun id ->
      let nd = Netlist.node net id in
      let d = node_delay net id in
      let lo, hi =
        Array.fold_left
          (fun (lo, hi) f -> (min lo arr.(f).amin, max hi arr.(f).amax))
          (max_int, min_int) nd.Netlist.fanins
      in
      arr.(id) <- { amin = lo + d; amax = hi + d })
    (Netlist.comb_topo_order net);
  arr

let analyze net ~clock_ps =
  if clock_ps <= 0 then invalid_arg "Sta.analyze: clock must be positive";
  { net; clock = clock_ps; arr = compute_arrivals net }

let netlist t = t.net
let clock_ps t = t.clock

let arrival t id =
  if id < 0 || id >= Array.length t.arr then invalid_arg "Sta.arrival: bad id";
  t.arr.(id)

let ff_d_arrival t ff =
  let n = Netlist.node t.net ff in
  if n.Netlist.kind <> Netlist.Ff then invalid_arg "Sta.ff_d_arrival: not a FF";
  arrival t n.Netlist.fanins.(0)

let lb_ub t _ff = (Cell_lib.dff_hold_ps, t.clock - Cell_lib.dff_setup_ps)

let setup_slack t ff =
  let _, ub = lb_ub t ff in
  ub - (ff_d_arrival t ff).amax

let hold_slack t ff =
  let lb, _ = lb_ub t ff in
  (ff_d_arrival t ff).amin - lb

let critical_path_ps net =
  let arr = compute_arrivals net in
  let from_pos =
    List.fold_left
      (fun acc (_, d) -> max acc arr.(d).amax)
      0 (Netlist.outputs net)
  in
  List.fold_left
    (fun acc ff -> max acc arr.((Netlist.node net ff).Netlist.fanins.(0)).amax)
    from_pos (Netlist.ffs net)

let min_clock_ps net = critical_path_ps net + Cell_lib.dff_setup_ps

let clock_for net ~margin =
  if margin < 1.0 then invalid_arg "Sta.clock_for: margin below 1.0";
  let raw = float_of_int (min_clock_ps net) *. margin in
  let ps = int_of_float (ceil (raw /. 10.0)) * 10 in
  ps
