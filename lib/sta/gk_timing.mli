(** The GK timing rules: Eqs. (2)–(6) and the Fig. 7 scenarios.

    All quantities are picoseconds within one clock cycle, with the cycle's
    launching edge at time 0 and the capturing edge of flip-flop [j] at
    [t_j] (the clock period when there is no skew).  Conventions follow the
    paper:

    - [l_glitch = d_path + d_mux]                                 (Eq. 2)
    - on-level insertion feasible iff
      [lb ≤ t_arrival + d_ready + d_react ≤ ub]                   (Eq. 3)
    - off-level insertion feasible iff
      [lb ≤ t_arrival + max_d_path + d_mux ≤ ub]                  (Eq. 4)
    - on-level trigger window                                      (Eq. 5):
      [max(t_j + t_hold − l_glitch − d_react, t_arrival + d_ready)
         < t_trigger < ub − d_react]
    - off-level trigger window                                     (Eq. 6):
      [lb − d_react < t_trigger < ub − l_glitch − d_react]

    where [d_ready] is the delay of the path (A or B) whose glitch the
    transition triggers, and [d_react = d_mux]. *)

(** The timing context of one candidate flip-flop endpoint. *)
type site = {
  t_arrival : int;  (** latest arrival at the GK's x input *)
  lb : int;         (** Eq. (1) lower bound *)
  ub : int;         (** Eq. (1) upper bound *)
  t_j : int;        (** capturing-edge time (clock period, no skew) *)
  t_setup : int;
  t_hold : int;
}

(** GK internal delays. *)
type gk_delays = {
  d_path_a : int;  (** delay element A plus its XNOR *)
  d_path_b : int;  (** delay element B plus its XOR *)
  d_mux : int;
}

(** Eq. (2). *)
val l_glitch : d_path:int -> d_mux:int -> int

(** Minimum glitch length able to carry data "on the level": it must cover
    the capture window, [t_setup + t_hold]. *)
val min_on_level_glitch : t_setup:int -> t_hold:int -> int

(** Eq. (3): can a glitch of [l_glitch] deliver data on its level? *)
val feasible_on_level : site -> l_glitch:int -> d_mux:int -> bool

(** Eq. (4): can the GK be inserted for off-level transmission? *)
val feasible_off_level : site -> gk_delays -> bool

(** Eq. (5): the open interval of legal on-level trigger times
    ([None] when empty). *)
val trigger_window_on_level :
  site -> l_glitch:int -> d_mux:int -> (int * int) option

(** Eq. (6): the open interval of legal off-level trigger times. *)
val trigger_window_off_level :
  site -> l_glitch:int -> d_mux:int -> (int * int) option

(** The four legal scenarios of Fig. 7. *)
type scenario =
  | On_level      (** data rides the glitch across the capture window (a) *)
  | Glitch_early  (** complete glitch before the setup window (b/c) *)
  | Glitch_late   (** complete glitch after the hold window (b/c) *)
  | Glitchless    (** constant key, no glitch (d) *)

(** [classify site ~l_glitch ~d_mux ~t_trigger] determines which scenario a
    transition at [t_trigger] realises, or [None] if it violates timing.
    [t_trigger = None] means a constant key. *)
val classify :
  site -> l_glitch:int -> d_mux:int -> t_trigger:int option -> scenario option

(** [glitch_interval ~t_trigger ~l_glitch ~d_mux] is the (start, stop) of
    the glitch a transition at [t_trigger] produces: it starts [d_react]
    after the trigger and lasts [l_glitch]. *)
val glitch_interval : t_trigger:int -> l_glitch:int -> d_mux:int -> int * int

(** [site_of_sta sta ff] packages {!Sta} results for flip-flop [ff]. *)
val site_of_sta : Sta.t -> int -> site
