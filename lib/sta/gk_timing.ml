type site = {
  t_arrival : int;
  lb : int;
  ub : int;
  t_j : int;
  t_setup : int;
  t_hold : int;
}

type gk_delays = { d_path_a : int; d_path_b : int; d_mux : int }

let l_glitch ~d_path ~d_mux = d_path + d_mux

let min_on_level_glitch ~t_setup ~t_hold = t_setup + t_hold

(* The glitch whose level carries the data is triggered by the transition on
   the key; the path that must be "ready" is the one whose old value the MUX
   keeps reporting, i.e. the path with delay l_glitch - d_mux. *)
let d_ready ~l_glitch ~d_mux = l_glitch - d_mux

let feasible_on_level s ~l_glitch ~d_mux =
  let t = s.t_arrival + d_ready ~l_glitch ~d_mux + d_mux in
  s.lb <= t && t <= s.ub

let feasible_off_level s d =
  let t = s.t_arrival + max d.d_path_a d.d_path_b + d.d_mux in
  s.lb <= t && t <= s.ub

let window lo hi = if lo < hi - 1 then Some (lo, hi) else None
(* open interval (lo, hi): needs at least one integer strictly inside *)

(* The glitch as the transport-delay simulation realises it: the MUX
   switches D_react = D_mux after the key transition (glitch start), and
   the newly selected branch updates D_path later, crossing the MUX at
   t + D_path + D_mux = t + L_glitch (glitch end).  The paper's Eq. (5)
   carries an extra -D_react on the hold bound because its sketch measures
   the glitch from the trigger instant; we use the simulator's ground
   truth so boundary placements behave exactly as analysed. *)
let trigger_window_on_level s ~l_glitch ~d_mux =
  let d_react = d_mux in
  let lo_hold = s.t_j + s.t_hold - l_glitch in
  let lo_ready = s.t_arrival + d_ready ~l_glitch ~d_mux in
  window (max lo_hold lo_ready) (s.ub - d_react)

let trigger_window_off_level s ~l_glitch ~d_mux =
  let d_react = d_mux in
  window (s.lb - d_react) (s.ub - l_glitch)

type scenario = On_level | Glitch_early | Glitch_late | Glitchless

let glitch_interval ~t_trigger ~l_glitch ~d_mux =
  (t_trigger + d_mux, t_trigger + l_glitch)

let classify s ~l_glitch ~d_mux ~t_trigger =
  match t_trigger with
  | None -> Some Glitchless
  | Some tt ->
    let start, stop = glitch_interval ~t_trigger:tt ~l_glitch ~d_mux in
    let window_open = s.t_j - s.t_setup and window_close = s.t_j + s.t_hold in
    let ready = tt > s.t_arrival + d_ready ~l_glitch ~d_mux in
    if not ready then None
    else if start < window_open && stop > window_close then Some On_level
    else if stop < window_open then Some Glitch_early
    else if start > window_close then
      (* The glitch must die out before the next capture window opens
         (t_j + ub, since ub = t_clk − t_setup) or it corrupts the next
         cycle. *)
      if stop < s.t_j + s.ub then Some Glitch_late else None
    else None

let site_of_sta sta ff =
  let lb, ub = Sta.lb_ub sta ff in
  {
    t_arrival = (Sta.ff_d_arrival sta ff).Sta.amax;
    lb;
    ub;
    t_j = Sta.clock_ps sta;
    t_setup = Cell_lib.dff_setup_ps;
    t_hold = Cell_lib.dff_hold_ps;
  }
