(** The SAT attack of Subramanyan et al. [11].

    Threat model: the attacker holds (1) the locked combinational netlist
    (sequential designs are first cut at FF boundaries, see
    {!Combinationalize}) and (2) an unlocked, functionally correct chip
    usable as an input→output oracle.  The attack builds a miter of two
    copies of the locked netlist sharing primary inputs but with
    independent key vectors, constrained to disagree on some output.  Each
    SAT solution yields a {i distinguishing input pattern} (DIP); querying
    the oracle on the DIP and asserting the correct I/O relation on both
    copies prunes wrong keys.  When the miter goes UNSAT, every remaining
    key is functionally correct and one is extracted.

    On a GK-locked netlist the gate's output is the same function of [x]
    for {i both} key values, so no DIP exists: the very first solve
    returns UNSAT (the paper's Sec. VI result), the attack learns nothing,
    and the "recovered" key is an unconstrained guess that the timing-true
    chip refutes. *)

(** The oracle: primary-input assignment (by name) → primary-output values. *)
type oracle = (string * bool) list -> (string * bool) list

type status =
  | Key_recovered of Key.assignment
  | Unsat_at_first_iteration of Key.assignment
      (** no DIP ever existed; the attached key is the arbitrary model the
          final extraction produces — reported so its wrongness can be
          demonstrated *)
  | Budget_exhausted

type outcome = {
  status : status;
  iterations : int;              (** DIPs consumed *)
  dips : (string * bool) list list;  (** in discovery order *)
  conflicts : int;               (** CDCL conflicts over the whole attack *)
}

(** [oracle_of_netlist net] wraps a combinational netlist as the oracle
    (simulating the unlocked chip).  Unmentioned inputs read false. *)
val oracle_of_netlist : Netlist.t -> oracle

(** [run ?max_iterations ~locked ~key_inputs ~oracle ()] executes the
    attack.  [locked] must be combinational; [key_inputs] are the names of
    its key PIs; all other PIs are the X inputs presented to the oracle.
    Default budget: 4096 DIPs. *)
val run :
  ?max_iterations:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:oracle ->
  unit ->
  outcome

(** [verify_key ?samples ~locked ~key_inputs ~oracle key] samples random
    input vectors and checks the locked netlist under [key] against the
    oracle; returns the number of mismatching vectors (0 = consistent). *)
val verify_key :
  ?samples:int ->
  ?seed:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:oracle ->
  Key.assignment ->
  int
