(** The SAT attack of Subramanyan et al. [11].

    Threat model: the attacker holds (1) the locked combinational netlist
    (sequential designs are first cut at FF boundaries, see
    {!Combinationalize}) and (2) an unlocked, functionally correct chip
    usable as an input→output oracle.  The attack builds a miter of two
    copies of the locked netlist sharing primary inputs but with
    independent key vectors, constrained to disagree on some output.  Each
    SAT solution yields a {i distinguishing input pattern} (DIP); querying
    the oracle on the DIP and asserting the correct I/O relation on both
    copies prunes wrong keys.  When the miter goes UNSAT, every remaining
    key is functionally correct and one is extracted.

    On a GK-locked netlist the gate's output is the same function of [x]
    for {i both} key values, so no DIP exists: the very first solve
    returns UNSAT (the paper's Sec. VI result), the attack learns nothing,
    and the "recovered" key is an unconstrained guess that the timing-true
    chip refutes. *)

(** The oracle: primary-input assignment (by name) → primary-output values. *)
type oracle = (string * bool) list -> (string * bool) list

type status =
  | Key_recovered of Key.assignment
  | Unsat_at_first_iteration of Key.assignment
      (** no DIP ever existed; the attached key is the arbitrary model the
          final extraction produces — reported so its wrongness can be
          demonstrated *)
  | Budget_exhausted

type outcome = {
  status : status;
  iterations : int;              (** DIPs consumed *)
  dips : (string * bool) list list;  (** in discovery order *)
  conflicts : int;               (** CDCL conflicts over the whole attack *)
}

(** [oracle_of_netlist net] wraps a combinational netlist as the oracle
    (simulating the unlocked chip), via a memoizing {!Oracle.t}.  A
    query naming an unknown input, or leaving an input unassigned,
    raises [Invalid_argument]; [~partial:true] restores the old
    permissive read-as-false semantics for attacks that cannot name
    every pin. *)
val oracle_of_netlist : ?partial:bool -> Netlist.t -> oracle

(** [exec ~budget ~locked ~key_inputs ~oracle ()] is the framework entry
    point: the DIP loop charges one {!Budget.tick} per iteration and
    every oracle query against [budget]; exhaustion (from this function
    or the oracle) returns [Budget_exhausted] instead of raising.
    [locked] must be combinational; [key_inputs] are the names of its
    key PIs; all other PIs are the X inputs presented to the oracle. *)
val exec :
  budget:Budget.t ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Oracle.t ->
  unit ->
  outcome

(** [run ?max_iterations ~locked ~key_inputs ~oracle ()] — legacy entry:
    {!exec} under a DIP-count-only budget (default 4096). *)
val run :
  ?max_iterations:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:oracle ->
  unit ->
  outcome

(** [verify_key_o ?samples ?seed ~locked ~key_inputs ~oracle key]
    samples random input vectors and checks the locked netlist under
    [key] against the chip; returns the number of mismatching vectors
    (0 = consistent).  Both sides are evaluated through the batched
    63-lane oracle path.  [seed] defaults to {!Fuzz_seed.value}. *)
val verify_key_o :
  ?samples:int ->
  ?seed:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Oracle.t ->
  Key.assignment ->
  int

(** Legacy {!verify_key_o} over a bare oracle closure. *)
val verify_key :
  ?samples:int ->
  ?seed:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:oracle ->
  Key.assignment ->
  int
