(** AppSAT — approximate SAT attack (Shamsi et al. [10]).

    The paper cites AppSAT as the attack that "exploited the dependence on
    other encryption techniques" of SARLock/Anti-SAT-style compound
    locking: instead of pruning every wrong key (exponential against
    point functions), AppSAT runs the DIP loop but periodically extracts
    the current candidate key and estimates its error rate on random
    oracle queries, stopping as soon as the candidate is almost-correct.
    Against SARLock + conventional locking this recovers the conventional
    part in a handful of iterations, reducing the compound scheme to its
    point-function rump.

    Failing random queries are added to the constraint store (the AppSAT
    refinement), so the candidate improves monotonically. *)

type outcome = {
  key : Key.assignment;          (** the approximate key *)
  error_rate : float;            (** estimated on fresh random queries *)
  dips : int;
  random_queries : int;
  exact : bool;                  (** the miter went UNSAT: key is exact *)
}

(** [exec ~budget ~locked ~key_inputs ~oracle ()] — framework entry:
    stops when the candidate key's estimated error rate is at most
    [error_threshold] (default 0.01), on exact convergence, or when
    [budget] runs out (one {!Budget.tick} per DIP; queries charged by
    the oracle).  Checks every [check_every] DIPs (default 4) with
    [queries_per_check] random queries (default 50), batched through the
    63-lane engine path.  [seed] defaults to {!Fuzz_seed.value}. *)
val exec :
  ?check_every:int ->
  ?error_threshold:float ->
  ?queries_per_check:int ->
  ?seed:int ->
  budget:Budget.t ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Oracle.t ->
  unit ->
  outcome

(** Legacy entry: {!exec} under a DIP-count-only budget (default 512). *)
val run :
  ?max_iterations:int ->
  ?check_every:int ->
  ?error_threshold:float ->
  ?queries_per_check:int ->
  ?seed:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Sat_attack.oracle ->
  unit ->
  outcome
