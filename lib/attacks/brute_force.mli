(** Exhaustive oracle-guided key search, for validating the smarter
    attacks on small keys (≤ 20 bits). *)

type outcome = {
  keys_tested : int;
  found : Key.assignment option;  (** first key consistent on all samples *)
}

(** [exec ~budget ~locked ~key_inputs ~oracle ()] tests every key vector
    against the chip on [samples] random input vectors each (batched
    through the 63-lane engine path), charging one {!Budget.tick} per
    key.  [seed] defaults to {!Fuzz_seed.value}. *)
val exec :
  ?samples:int ->
  ?seed:int ->
  budget:Budget.t ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Oracle.t ->
  unit ->
  outcome

(** Legacy entry: {!exec} with an unlimited budget. *)
val run :
  ?samples:int ->
  ?seed:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Sat_attack.oracle ->
  unit ->
  outcome
