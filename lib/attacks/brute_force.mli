(** Exhaustive oracle-guided key search, for validating the smarter
    attacks on small keys (≤ 20 bits). *)

type outcome = {
  keys_tested : int;
  found : Key.assignment option;  (** first key consistent on all samples *)
}

(** [run ?samples ~locked ~key_inputs ~oracle ()] tests every key vector
    against the oracle on random input samples. *)
val run :
  ?samples:int ->
  ?seed:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Sat_attack.oracle ->
  unit ->
  outcome
