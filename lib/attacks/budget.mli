(** Cooperative attack budgets: DIP-iteration caps, oracle-query caps
    and wall-clock deadlines shared by every attack in the framework.

    A budget is a mutable counter bundle checked at the attack's natural
    boundaries (one DIP, one candidate key, one key bit...).  Exceeding
    any limit raises {!Exhausted}; the framework's {!Attack.run} wrapper
    converts that into a structured [Out_of_budget] verdict, so a
    budgeted attack never hangs and never dies with an unstructured
    exception.

    The SAT core has no interrupt hook, so enforcement is cooperative:
    one solver call can overshoot the deadline, but every loop re-checks
    before starting more work.  Oracle queries are charged by
    {!Oracle.query} through {!note_queries}; memo hits are free. *)

type reason = Iterations | Queries | Deadline

val reason_name : reason -> string

exception Exhausted of reason

type t

(** [create ?max_iterations ?max_queries ?deadline_s ()] — omitted
    limits are unlimited.  [deadline_s] is a relative wall-clock budget
    in seconds starting now.  A zero or negative [deadline_s] is an
    {e already-expired} budget: the first {!check} (and hence the first
    {!tick} or {!note_queries}) raises {!Exhausted}[ Deadline], so an
    attack given such a budget performs no solver or oracle work and
    reports a structured [Out_of_budget] verdict.  @raise
    Invalid_argument on negative integer limits. *)
val create :
  ?max_iterations:int -> ?max_queries:int -> ?deadline_s:float -> unit -> t

(** A budget with no limits (still counts iterations and queries). *)
val unlimited : unit -> t

(** [tick t] charges one iteration.  @raise Exhausted when the iteration
    cap was already reached or the deadline has passed. *)
val tick : t -> unit

(** [check t] re-checks only the deadline (for loops whose unit of work
    is not an iteration). *)
val check : t -> unit

(** [note_queries t n] charges [n] oracle queries.
    @raise Exhausted past the query cap or deadline. *)
val note_queries : t -> int -> unit

val iterations : t -> int
val queries : t -> int
val elapsed_s : t -> float

(** The reason this budget raised {!Exhausted}, if it ever did — how a
    caller that caught the exception elsewhere recovers the cause. *)
val tripped : t -> reason option
