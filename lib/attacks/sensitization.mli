(** Key-sensitization attack (Rajendran et al., the pre-SAT classic).

    For each key bit in isolation, search for an input pattern that
    propagates that bit's value to a primary output while the remaining
    key bits cannot interfere; apply the pattern to the working chip and
    read the bit off the response.  Implemented SAT-style: a candidate
    pattern must make the outputs differ under the two values of the
    target bit for several sampled assignments of the other keys
    {i simultaneously} (approximating the ∀ with sampling), and the
    inferred value must be consistent across those samples.

    Conventional XOR/XNOR locking with isolated key-gates falls bit by
    bit.  GK locking is immune at a more basic level than SAT resistance:
    no output depends on the key at all in stable logic, so no pattern
    sensitizes anything — every bit comes back [unresolved]. *)

type outcome = {
  recovered : Key.assignment;    (** bits read off the chip *)
  unresolved : string list;      (** bits with no sensitizing pattern *)
  patterns_used : int;
}

(** [exec ~budget ~locked ~key_inputs ~oracle ()] — framework entry: one
    {!Budget.tick} per key bit; chip queries are charged by the oracle
    (attacker-side simulations of the locked netlist are free).  [seed]
    defaults to {!Fuzz_seed.value}. *)
val exec :
  ?samples_other:int ->
  ?seed:int ->
  budget:Budget.t ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Oracle.t ->
  unit ->
  outcome

(** Legacy entry: {!exec} with an unlimited budget. *)
val run :
  ?samples_other:int ->
  ?seed:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Sat_attack.oracle ->
  unit ->
  outcome
