(** Timed-characteristic-function style two-pattern SAT (Sec. V-B).

    Ho et al. [3] extend SAT-based test generation to delay defects by
    modelling two consecutive input patterns (the launch and capture
    frames) so rising/falling transitions become visible to the solver.
    The paper's Sec. V-B argues even this cannot model a glitch: the value
    "on the level of the glitch" exists in neither stable frame.

    We reproduce the argument constructively: {!two_frame_attack} runs the
    SAT attack on a two-frame unrolling of the locked netlist — every
    primary input appears as a launch-frame and a capture-frame copy
    sharing one key vector, and outputs of both frames are observable.
    This gives the attacker strictly more distinguishing power than the
    single-frame attack (it can see transitions); on XOR/MUX-locked
    circuits it recovers keys just as well, and on GK-locked circuits it
    still finds no DIP, because both frames see the same stable inverter. *)

type outcome = {
  sat : Sat_attack.outcome;
  frame_inputs : int;  (** PIs of the unrolled netlist (2× the original) *)
}

(** [exec ~budget ~locked ~key_inputs ~oracle ()] — framework entry:
    the DIP loop runs under [budget]; each unrolled query fans out into
    one (counted, memoized) chip query per frame. *)
val exec :
  budget:Budget.t ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Oracle.t ->
  unit ->
  outcome

(** [two_frame_attack ?max_iterations ~locked ~key_inputs ~oracle ()] —
    [oracle] is the single-frame chip oracle; the two-frame oracle is
    derived by querying it on each frame. *)
val two_frame_attack :
  ?max_iterations:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Sat_attack.oracle ->
  unit ->
  outcome

(** [unroll locked ~key_inputs] is the two-frame netlist: inputs
    [f0_<pi>] / [f1_<pi>], outputs [f0_<po>] / [f1_<po>], key inputs
    shared under their original names. *)
val unroll : Netlist.t -> key_inputs:string list -> Netlist.t
