type ctx = {
  locked : Netlist.t;
  key_inputs : string list;
  oracle : Oracle.t;
  budget : Budget.t;
  seed : int;
}

type gave_up_reason =
  | No_key_found
  | Not_applicable
  | Verification_failed

type verdict =
  | Skipped
  | Key_recovered of Key.assignment
  | Wrong_key of { key : Key.assignment; mismatches : int }
  | No_dip of { key : Key.assignment; mismatches : int }
  | Approx_key of { key : Key.assignment; error_rate : float }
  | Partial_key of { recovered : Key.assignment; unresolved : int }
  | Recovered_netlist of Netlist.t
  | Gave_up of gave_up_reason
  | Out_of_budget of Budget.reason

let gave_up_reason_name = function
  | No_key_found -> "no_key_found"
  | Not_applicable -> "not_applicable"
  | Verification_failed -> "verification_failed"

type outcome = {
  verdict : verdict;
  iterations : int;
  queries : int;
  conflicts : int;
  elapsed_s : float;
}

let verdict_name = function
  | Skipped -> "skipped"
  | Key_recovered _ -> "key_recovered"
  | Wrong_key _ -> "wrong_key"
  | No_dip _ -> "no_dip"
  | Approx_key _ -> "approx_key"
  | Partial_key _ -> "partial_key"
  | Recovered_netlist _ -> "recovered_netlist"
  | Gave_up _ -> "gave_up"
  | Out_of_budget r -> "out_of_budget_" ^ Budget.reason_name r

let gave_up_reason_of_verdict = function
  | Gave_up r -> Some (gave_up_reason_name r)
  | Skipped | Key_recovered _ | Wrong_key _ | No_dip _ | Approx_key _
  | Partial_key _ | Recovered_netlist _ | Out_of_budget _ -> None

let broken = function
  | Key_recovered _ | Approx_key _ | Recovered_netlist _ -> true
  | Skipped | Wrong_key _ | No_dip _ | Partial_key _ | Gave_up _
  | Out_of_budget _ -> false

let key_of_verdict = function
  | Key_recovered k
  | Wrong_key { key = k; _ }
  | No_dip { key = k; _ }
  | Approx_key { key = k; _ }
  | Partial_key { recovered = k; _ } -> Some k
  | Skipped | Recovered_netlist _ | Gave_up _ | Out_of_budget _ -> None

let mismatches_of_verdict = function
  | Key_recovered _ -> Some 0
  | Wrong_key { mismatches; _ } | No_dip { mismatches; _ } -> Some mismatches
  | Skipped | Approx_key _ | Partial_key _ | Recovered_netlist _ | Gave_up _
  | Out_of_budget _ -> None

type entry = {
  name : string;
  threat_model : string;
  budget_unit : string;
  runner : ctx -> verdict * int;
}

(* Exhaustion inside the extracted-key verification is still exhaustion:
   the wrapper turns the raise into [Out_of_budget]. *)
let verify ctx ~locked ~key_inputs key =
  Sat_attack.verify_key_o ~seed:ctx.seed ~locked ~key_inputs
    ~oracle:ctx.oracle key

let of_sat ctx ?(locked = None) ?(key_inputs = None) (o : Sat_attack.outcome)
    =
  let locked = Option.value locked ~default:ctx.locked in
  let key_inputs = Option.value key_inputs ~default:ctx.key_inputs in
  let v =
    match o.Sat_attack.status with
    | Sat_attack.Key_recovered key ->
      let mismatches = verify ctx ~locked ~key_inputs key in
      if mismatches = 0 then Key_recovered key
      else Wrong_key { key; mismatches }
    | Sat_attack.Unsat_at_first_iteration key ->
      No_dip { key; mismatches = verify ctx ~locked ~key_inputs key }
    | Sat_attack.Budget_exhausted ->
      Out_of_budget
        (Option.value (Budget.tripped ctx.budget) ~default:Budget.Iterations)
  in
  (v, o.Sat_attack.conflicts)

let run_none _ctx = (Skipped, 0)

let run_sat ctx =
  of_sat ctx
    (Sat_attack.exec ~budget:ctx.budget ~locked:ctx.locked
       ~key_inputs:ctx.key_inputs ~oracle:ctx.oracle ())

let run_appsat ctx =
  let o =
    Appsat.exec ~seed:ctx.seed ~budget:ctx.budget ~locked:ctx.locked
      ~key_inputs:ctx.key_inputs ~oracle:ctx.oracle ()
  in
  let v =
    if o.Appsat.exact then begin
      let mismatches =
        verify ctx ~locked:ctx.locked ~key_inputs:ctx.key_inputs o.Appsat.key
      in
      if mismatches = 0 then Key_recovered o.Appsat.key
      else Wrong_key { key = o.Appsat.key; mismatches }
    end
    else
      match Budget.tripped ctx.budget with
      | Some r when o.Appsat.error_rate > 0.01 -> Out_of_budget r
      | Some _ | None ->
        Approx_key { key = o.Appsat.key; error_rate = o.Appsat.error_rate }
  in
  (v, 0)

let run_brute ctx =
  let o =
    Brute_force.exec ~seed:ctx.seed ~budget:ctx.budget ~locked:ctx.locked
      ~key_inputs:ctx.key_inputs ~oracle:ctx.oracle ()
  in
  ( (match o.Brute_force.found with
    | Some key -> Key_recovered key
    | None -> Gave_up No_key_found),
    0 )

let run_sensitization ctx =
  let o =
    Sensitization.exec ~seed:ctx.seed ~budget:ctx.budget ~locked:ctx.locked
      ~key_inputs:ctx.key_inputs ~oracle:ctx.oracle ()
  in
  ( (match o.Sensitization.unresolved with
    | [] -> Key_recovered o.Sensitization.recovered
    | u ->
      Partial_key
        { recovered = o.Sensitization.recovered; unresolved = List.length u }),
    0 )

let run_removal ctx =
  let o =
    Removal_attack.exec ~seed:ctx.seed ~budget:ctx.budget ctx.locked
      ~oracle:ctx.oracle
  in
  ( (match o.Removal_attack.restored with
    | Some net when o.Removal_attack.success -> Recovered_netlist net
    | Some _ -> Gave_up Verification_failed
    | None -> Gave_up Not_applicable),
    0 )

let run_enhanced_removal ctx =
  let rm, o =
    Enhanced_removal.exec ~budget:ctx.budget ctx.locked ~oracle:ctx.oracle ()
  in
  of_sat ctx
    ~locked:(Some rm.Enhanced_removal.net)
    ~key_inputs:(Some rm.Enhanced_removal.new_key_inputs)
    o

let run_tcf2 ctx =
  let o =
    Tcf.exec ~budget:ctx.budget ~locked:ctx.locked ~key_inputs:ctx.key_inputs
      ~oracle:ctx.oracle ()
  in
  (* the two-frame key must also explain the single-frame chip *)
  of_sat ctx o.Tcf.sat

let run_scan ctx =
  let verdicts =
    Scan_attack.exec ~seed:ctx.seed ~unknown:ctx.key_inputs ~budget:ctx.budget
      ~stripped_comb:ctx.locked ~oracle:ctx.oracle ()
  in
  ( (if verdicts = [] then Gave_up Not_applicable
     else
       match Scan_attack.decrypt ~stripped_comb:ctx.locked verdicts with
       | Some net -> Recovered_netlist net
       | None -> Gave_up Verification_failed),
    0 )

let registry =
  [
    {
      name = "none";
      threat_model = "baseline: locked netlist only, no oracle use";
      budget_unit = "-";
      runner = run_none;
    };
    {
      name = "sat";
      threat_model = "netlist + I/O oracle (Subramanyan et al.)";
      budget_unit = "DIP iterations";
      runner = run_sat;
    };
    {
      name = "appsat";
      threat_model = "netlist + I/O oracle, approximate key accepted";
      budget_unit = "DIP iterations";
      runner = run_appsat;
    };
    {
      name = "brute";
      threat_model = "netlist + I/O oracle, exhaustive key search";
      budget_unit = "candidate keys";
      runner = run_brute;
    };
    {
      name = "sensitization";
      threat_model = "netlist + I/O oracle, per-bit propagation";
      budget_unit = "key bits";
      runner = run_sensitization;
    };
    {
      name = "removal";
      threat_model = "netlist + I/O oracle, skew-guided excision";
      budget_unit = "candidate signals";
      runner = run_removal;
    };
    {
      name = "enhanced-removal";
      threat_model = "netlist + I/O oracle, GK located and remodelled";
      budget_unit = "DIP iterations";
      runner = run_enhanced_removal;
    };
    {
      name = "tcf2";
      threat_model = "netlist + I/O oracle, two-frame (launch/capture) SAT";
      budget_unit = "DIP iterations";
      runner = run_tcf2;
    };
    {
      name = "scan";
      threat_model = "stripped netlist + scan-chain capture oracle";
      budget_unit = "located GKs";
      runner = run_scan;
    };
  ]

let names () = List.map (fun e -> e.name) registry
let find name = List.find_opt (fun e -> e.name = name) registry

let find_exn name =
  match find name with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Attack.run: unknown attack %S (known: %s)" name
         (String.concat ", " (names ())))

let m_runs = Obs.Metrics.counter "attack.runs"
let h_elapsed = Obs.Metrics.histogram "attack.elapsed_s"

let run ?budget ?seed ?(optimize = false) ~name ~locked ~key_inputs ~oracle ()
    =
  let e = find_exn name in
  let budget =
    match budget with
    | Some b -> b
    | None -> Budget.create ~max_iterations:4096 ()
  in
  let seed = match seed with Some s -> s | None -> Fuzz_seed.value () in
  (* The strash/rewrite front-end preserves primary-input names (key
     inputs included), flip-flops and output names, so the attack sees
     the same pin interface over a smaller instruction stream.  It must
     never change a verdict — asserted registry-wide in the tier-1
     suite. *)
  let locked = if optimize then fst (Opt.run locked) else locked in
  let ctx = { locked; key_inputs; oracle; budget; seed } in
  Obs.Metrics.incr m_runs;
  let sp =
    Obs.Trace.span_begin
      ~args:
        [
          ("attack", Cjson.Str name);
          ("netlist", Cjson.Str (Netlist.name locked));
          ("key_inputs", Cjson.Int (List.length key_inputs));
          ("seed", Cjson.Int seed);
          ("optimize", Cjson.Bool optimize);
        ]
      "attack.run"
  in
  let t0 = Unix.gettimeofday () in
  let q0 = Oracle.queries oracle in
  match (try e.runner ctx with Budget.Exhausted r -> (Out_of_budget r, 0)) with
  | verdict, conflicts ->
    let outcome =
      {
        verdict;
        iterations = Budget.iterations budget;
        queries = Oracle.queries oracle - q0;
        conflicts;
        (* clamped so an attack that bails before its first iteration
           (e.g. scan on a lock without glitch key-gates) still records
           a positive wall-clock instead of a 0.0 that reads like a
           missing measurement *)
        elapsed_s = Float.max 1e-6 (Unix.gettimeofday () -. t0);
      }
    in
    Obs.Metrics.observe h_elapsed outcome.elapsed_s;
    Obs.Trace.span_end
      ~args:
        [
          ("verdict", Cjson.Str (verdict_name outcome.verdict));
          ("iterations", Cjson.Int outcome.iterations);
          ("queries", Cjson.Int outcome.queries);
          ("conflicts", Cjson.Int outcome.conflicts);
          ("elapsed_s", Cjson.Float outcome.elapsed_s);
        ]
      sp;
    outcome
  | exception ex ->
    (* non-budget exception (Invalid_argument and friends): close the
       span so a trace of a failing run still validates *)
    Obs.Trace.span_end ~args:[ ("verdict", Cjson.Str "exception") ] sp;
    raise ex

let markdown_table () =
  let b = Buffer.create 512 in
  Buffer.add_string b "| Attack | Threat model | Budget unit |\n";
  Buffer.add_string b "|---|---|---|\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "| `%s` | %s | %s |\n" e.name e.threat_model
           e.budget_unit))
    registry;
  Buffer.contents b
