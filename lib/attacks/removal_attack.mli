(** Removal attacks (Sec. V-C and the TDK critique of Sec. I).

    Three attack pieces:

    - {!run}: the skew-guided removal of [15,16] against SARLock/Anti-SAT
      class defenses.  Locate the most probability-skewed signal, replace
      it with its dominant constant, re-synthesize, and check the restored
      netlist against the oracle.
    - {!strip_tdbs}: the paper's TDK critique — delete the tunable delay
      buffers, re-synthesize "to fix the timing violations", leaving plain
      XOR locking for the SAT attack.
    - {!guess_gk}: removal against GKs.  A located GK still acts as either
      a buffer or an inverter (its real, glitch-time behaviour), so the
      attacker must guess one of 2^n replacement vectors and check each
      against the chip — the exponential cost the paper claims. *)

type removal_outcome = {
  removed : int list;          (** node ids excised *)
  restored : Netlist.t option; (** cleaned netlist when the check passed *)
  candidates_tried : int;
  success : bool;
}

(** [exec ~budget locked ~oracle] attacks a locked {i combinational}
    netlist: key inputs are left free (the structure is bypassed, not
    decoded).  Equivalence with the chip is checked on [samples] random
    vectors per candidate, batched through the 63-lane engine path; one
    {!Budget.tick} is charged per candidate.  [seed] defaults to
    {!Fuzz_seed.value}. *)
val exec :
  ?samples:int ->
  ?eps:float ->
  ?max_candidates:int ->
  ?seed:int ->
  budget:Budget.t ->
  Netlist.t ->
  oracle:Oracle.t ->
  removal_outcome

(** Legacy entry: {!exec} with an unlimited budget. *)
val run :
  ?samples:int ->
  ?eps:float ->
  ?max_candidates:int ->
  Netlist.t ->
  oracle:Sat_attack.oracle ->
  removal_outcome

(** [strip_tdbs tdk] removes every TDB MUX and delay chain from a
    TDK-locked design, reconnecting the functional key-gate directly, and
    re-synthesizes.  The result is XOR-locked only; attack it with
    {!Sat_attack}. *)
val strip_tdbs : Tdk.t -> Locked.t

type gk_guess_outcome = {
  guesses_tried : int;
  total_guesses : int;      (** 2^n for n located GKs *)
  recovered : Netlist.t option;
}

(** [guess_gk_o ~budget stripped ~gks ~oracle] enumerates
    buffer/inverter replacements for each located GK output (given by
    node id and its [x] fanin) and tests each candidate against the chip
    on random samples (batched); one {!Budget.tick} per guess.
    Deterministic enumeration order — expected cost half the space.
    [seed] defaults to {!Fuzz_seed.value}. *)
val guess_gk_o :
  ?samples:int ->
  ?seed:int ->
  budget:Budget.t ->
  Netlist.t ->
  gks:(int * int) list ->
  oracle:Oracle.t ->
  gk_guess_outcome

(** Legacy entry: {!guess_gk_o} with an unlimited budget. *)
val guess_gk :
  ?samples:int ->
  ?seed:int ->
  Netlist.t ->
  gks:(int * int) list ->
  oracle:Sat_attack.oracle ->
  gk_guess_outcome
