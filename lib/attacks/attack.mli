(** The attack registry — one table from names to instrumented runners.

    Every oracle-guided attack in the library is registered here under a
    stable name, with a uniform calling convention: a combinational
    locked netlist, its key-input names, a counted {!Oracle.t} for the
    functioning chip, a shared {!Budget.t} and one replayable seed.
    {!run} dispatches by name and returns a uniform {!outcome} — a
    structured {!verdict} plus telemetry (budget iterations consumed,
    chip queries charged, CDCL conflicts, wall time) — so the campaign
    runner, the CLI, the paper-table experiments and the differential
    fuzzer all drive attacks through this single table instead of
    per-attack [match]es.

    Attacks that extract a key verify it against the chip (batched
    random samples via {!Sat_attack.verify_key_o}) before claiming
    {!Key_recovered}; a refuted extraction is reported as {!Wrong_key}
    (or carried inside {!No_dip} — the paper's GK headline: the miter is
    UNSAT at the first iteration and the arbitrary extracted key is
    wrong on the timing-true chip). *)

type ctx = {
  locked : Netlist.t;  (** combinational locked netlist (keys as PIs) *)
  key_inputs : string list;
  oracle : Oracle.t;   (** the functioning chip, counted and memoized *)
  budget : Budget.t;
  seed : int;          (** replay seed for all randomized sampling *)
}

(** Why an attack stopped without a result or a budget trip — recorded
    so a [gave_up] row in a bench table or campaign report says which of
    the structurally different bail-outs happened. *)
type gave_up_reason =
  | No_key_found  (** the search space was exhausted (brute force) *)
  | Not_applicable
      (** the attack's structural precondition is absent — e.g. the scan
          or removal attack found no glitch key-gates to excise *)
  | Verification_failed
      (** a candidate reconstruction was found but refuted against the
          chip *)

type verdict =
  | Skipped  (** the ["none"] baseline entry *)
  | Key_recovered of Key.assignment
      (** extracted key verified consistent with the chip *)
  | Wrong_key of { key : Key.assignment; mismatches : int }
      (** the attack claimed a key the chip refutes *)
  | No_dip of { key : Key.assignment; mismatches : int }
      (** miter UNSAT at the first iteration; the attached key is the
          unconstrained extraction, with its chip mismatch count *)
  | Approx_key of { key : Key.assignment; error_rate : float }
  | Partial_key of { recovered : Key.assignment; unresolved : int }
  | Recovered_netlist of Netlist.t
      (** structural attacks that rebuild the design without a key *)
  | Gave_up of gave_up_reason
  | Out_of_budget of Budget.reason

type outcome = {
  verdict : verdict;
  iterations : int;  (** budget iterations consumed (attack-defined unit) *)
  queries : int;     (** chip queries charged during this run *)
  conflicts : int;   (** CDCL conflicts (0 for non-SAT attacks) *)
  elapsed_s : float;
      (** wall clock, clamped to a minimum of [1e-6] so an attack that
          bails before its first iteration still records a positive
          duration *)
}

val verdict_name : verdict -> string
val gave_up_reason_name : gave_up_reason -> string

(** [Some reason] for [Gave_up], [None] otherwise. *)
val gave_up_reason_of_verdict : verdict -> string option

(** Did the attacker win?  True for [Key_recovered], [Approx_key] and
    [Recovered_netlist]. *)
val broken : verdict -> bool

val key_of_verdict : verdict -> Key.assignment option

(** [Some 0] for a verified key, the refutation count for [Wrong_key] /
    [No_dip], [None] when no key was extracted. *)
val mismatches_of_verdict : verdict -> int option

type entry = {
  name : string;
  threat_model : string;
  budget_unit : string;  (** what one {!Budget.tick} counts *)
  runner : ctx -> verdict * int;  (** returns (verdict, conflicts) *)
}

val registry : entry list
val names : unit -> string list
val find : string -> entry option

(** @raise Invalid_argument listing the known names. *)
val find_exn : string -> entry

(** [run ?budget ?seed ?optimize ~name ~locked ~key_inputs ~oracle ()] —
    the one entry point.  [budget] defaults to 4096 iterations (no query
    or deadline limit); [seed] defaults to {!Fuzz_seed.value}.
    [optimize] (default false) runs the {!Opt} strash/rewrite front-end
    on [locked] first — the pin interface (key inputs included) is
    preserved, only the instruction stream the attack reasons over
    shrinks; it must never change a verdict (asserted registry-wide in
    the tier-1 suite).  {!Budget.Exhausted} raised anywhere inside the
    attack (including key verification) is caught and reported as
    [Out_of_budget]; [queries] counts only this run's charges even when
    [oracle] is shared. *)
val run :
  ?budget:Budget.t ->
  ?seed:int ->
  ?optimize:bool ->
  name:string ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle:Oracle.t ->
  unit ->
  outcome

(** The registry rendered as a GitHub-flavoured markdown table (the
    README "Attacks" section is generated from this). *)
val markdown_table : unit -> string
