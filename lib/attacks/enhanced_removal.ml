type located_gk = {
  mux : int;
  key_net : int;
  x : int;
  branch_nodes : int list;
}

(* Follow a pure buffer/delay chain upstream; returns the chain's source
   and the nodes traversed. *)
let rec chase_buffers net id acc =
  let nd = Netlist.node net id in
  match nd.Netlist.kind with
  | Netlist.Gate Cell.Buf -> chase_buffers net nd.Netlist.fanins.(0) (id :: acc)
  | Netlist.Gate _ | Netlist.Lut _ | Netlist.Input | Netlist.Const _
  | Netlist.Ff | Netlist.Dead -> (id, acc)

let locate net =
  let found = ref [] in
  for id = 0 to Netlist.num_nodes net - 1 do
    let nd = Netlist.node net id in
    match nd.Netlist.kind with
    | Netlist.Gate Cell.Mux ->
      let sel = nd.Netlist.fanins.(0) in
      let upper = Netlist.node net nd.Netlist.fanins.(1) in
      let lower = Netlist.node net nd.Netlist.fanins.(2) in
      let branch node =
        (* An XNOR/XOR whose second input chases back to [sel]. *)
        match node.Netlist.kind with
        | Netlist.Gate (Cell.Xor | Cell.Xnor)
          when Array.length node.Netlist.fanins = 2 ->
          let a = node.Netlist.fanins.(0) and b = node.Netlist.fanins.(1) in
          let try_order x kd =
            let src, chain = chase_buffers net kd [] in
            if src = sel then Some (x, chain) else None
          in
          (match try_order a b with Some r -> Some r | None -> try_order b a)
        | Netlist.Gate _ | Netlist.Lut _ | Netlist.Input | Netlist.Const _
        | Netlist.Ff | Netlist.Dead -> None
      in
      (match (branch upper, branch lower) with
      | Some (x1, chain1), Some (x2, chain2) when x1 = x2 ->
        let kinds a =
          match (Netlist.node net a).Netlist.kind with
          | Netlist.Gate fn -> fn
          | Netlist.Input | Netlist.Const _ | Netlist.Lut _ | Netlist.Ff
          | Netlist.Dead -> Cell.Buf
        in
        let fns = (kinds upper.Netlist.id, kinds lower.Netlist.id) in
        if
          fns = (Cell.Xnor, Cell.Xor) || fns = (Cell.Xor, Cell.Xnor)
        then
          found :=
            {
              mux = id;
              key_net = sel;
              x = x1;
              branch_nodes =
                (upper.Netlist.id :: chain1) @ (lower.Netlist.id :: chain2);
            }
            :: !found
      | _, _ -> ())
    | Netlist.Input | Netlist.Const _ | Netlist.Gate _ | Netlist.Lut _
    | Netlist.Ff | Netlist.Dead -> ()
  done;
  List.rev !found

type remodelled = { net : Netlist.t; new_key_inputs : string list }

let remodel src located =
  let net = Netlist.copy src in
  let names =
    List.mapi
      (fun i gk ->
        let name = Printf.sprintf "erk%d" i in
        let k = Netlist.add_input net name in
        let repl =
          Netlist.add_gate net ~name:(Printf.sprintf "erk%d_gate" i) Cell.Xor
            [| gk.x; k |]
        in
        Netlist.replace_uses net ~old_id:gk.mux ~new_id:repl;
        Netlist.kill net gk.mux;
        (* The branches may be shared with nothing else; sweep what
           dangles. *)
        name)
      located
  in
  let swept, _ = Synth.optimize net in
  { net = swept; new_key_inputs = names }

let exec ~budget src ~oracle () =
  let located = locate src in
  let rm = remodel src located in
  let outcome =
    Sat_attack.exec ~budget ~locked:rm.net ~key_inputs:rm.new_key_inputs
      ~oracle ()
  in
  (rm, outcome)

let attack ?(max_iterations = 4096) src ~oracle =
  exec
    ~budget:(Budget.create ~max_iterations ())
    src
    ~oracle:(Oracle.of_fn oracle)
    ()

let withheld_search_space_log2 ~n_gks ~lut_inputs =
  float_of_int n_gks *. (2.0 ** float_of_int lut_inputs)
