(** Sequential SAT attack — no scan access required.

    The classic SAT attack assumes scan access (load/observe flip-flop
    state).  Without it, the attacker can still unroll the locked design
    over [k] time frames ({!Unroll}) and run the same DIP loop against
    {i input/output sequences} of the working chip started from reset.
    This is the standard "sequential SAT" / model-checking-flavoured
    variant; its power grows with [k].

    Against GK locking the conclusion is unchanged: every frame sees the
    same stable inverter whatever the key, so the unrolled miter is
    unsatisfiable at the first DIP search for every [k]. *)

type outcome = {
  sat : Sat_attack.outcome;
  frames : int;
  unrolled_inputs : int;
}

(** [run ?max_iterations ~k ~locked ~key_inputs ~oracle_step ()] attacks a
    {i sequential} locked netlist unrolled over [k] frames from reset.
    [oracle_step inputs_per_frame] must return the chip's output sequence:
    it is handed, for each frame, the primary-input assignment, and
    returns the per-frame outputs (a cycle-accurate black box — use
    {!oracle_of_netlist}). *)
val run :
  ?max_iterations:int ->
  k:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle_step:((string * bool) list list -> (string * bool) list list) ->
  unit ->
  outcome

(** Framework variant of {!run}: the unrolled DIP loop runs under
    [budget] (sequence queries are counted through the wrapping
    oracle). *)
val exec :
  budget:Budget.t ->
  k:int ->
  locked:Netlist.t ->
  key_inputs:string list ->
  oracle_step:((string * bool) list list -> (string * bool) list list) ->
  unit ->
  outcome

(** [oracle_of_netlist net] wraps the original sequential design as the
    sequence oracle: cycle-simulate from the all-zero state. *)
val oracle_of_netlist :
  Netlist.t -> (string * bool) list list -> (string * bool) list list
