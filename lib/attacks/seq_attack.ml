type outcome = {
  sat : Sat_attack.outcome;
  frames : int;
  unrolled_inputs : int;
}

let oracle_of_netlist net per_frame_inputs =
  let sim = Cycle_sim.create net in
  List.map
    (fun inputs ->
      let values =
        Cycle_sim.step sim ~inputs:(fun id ->
            match
              List.assoc_opt (Netlist.node net id).Netlist.name inputs
            with
            | Some b -> b
            | None -> false)
      in
      List.map (fun (po, d) -> (po, values.(d))) (Netlist.outputs net))
    per_frame_inputs

let frame_prefix i = Printf.sprintf "f%d_" i

let strip_prefix p s =
  let lp = String.length p in
  if String.length s > lp && String.sub s 0 lp = p then
    Some (String.sub s lp (String.length s - lp))
  else None

let exec ~budget ~k ~locked ~key_inputs ~oracle_step () =
  let is_key name = List.mem name key_inputs in
  let unrolled = Unroll.frames locked ~k ~share:is_key ~init:`Zero in
  let oracle flat_inputs =
    (* regroup the unrolled input assignment into per-frame assignments *)
    let per_frame =
      List.init k (fun i ->
          List.filter_map
            (fun (n, v) ->
              match strip_prefix (frame_prefix i) n with
              | Some base -> Some (base, v)
              | None -> None)
            flat_inputs)
    in
    let outs = oracle_step per_frame in
    List.concat
      (List.mapi
         (fun i frame_outs ->
           List.map (fun (po, v) -> (frame_prefix i ^ po, v)) frame_outs)
         outs)
  in
  let sat =
    Sat_attack.exec ~budget ~locked:unrolled ~key_inputs
      ~oracle:(Oracle.of_fn oracle) ()
  in
  {
    sat;
    frames = k;
    unrolled_inputs = List.length (Netlist.inputs unrolled);
  }

let run ?(max_iterations = 4096) ~k ~locked ~key_inputs ~oracle_step () =
  exec
    ~budget:(Budget.create ~max_iterations ())
    ~k ~locked ~key_inputs ~oracle_step ()
