(** The enhanced removal attack of Sec. V-D: locate → remodel → SAT.

    1. {!locate} pattern-matches the GK structure in the stripped locked
       netlist: a MUX whose select also reaches both data inputs — one an
       XNOR, one an XOR — through pure delay (buffer) chains, both gates
       sharing a second common fanin [x].
    2. {!remodel} replaces each located GK by a conventional XOR key-gate
       with a fresh key input (the "MUX having multiple encryption
       behavior" modelling of the paper, specialised to the two stable
       behaviours a GK exhibits).
    3. {!attack} runs the SAT attack on the remodelled netlist.

    Against bare GKs this works — which is exactly the paper's claim
    ("this attacking method is effective to decrypt circuits when the
    security structures are located") and its motivation for the
    withholding countermeasure: once the GK is absorbed into a LUT
    ({!Withhold}), {!locate} finds nothing, and remodelling must consider
    [2^(2^k)] candidate functions per LUT ({!withheld_search_space}). *)

type located_gk = {
  mux : int;
  key_net : int;     (** the select / delayed-branch source *)
  x : int;           (** the shared data fanin *)
  branch_nodes : int list;  (** XNOR/XOR gates and delay chains *)
}

(** Find GK structures in a combinational or sequential netlist. *)
val locate : Netlist.t -> located_gk list

type remodelled = {
  net : Netlist.t;
  new_key_inputs : string list;  (** one per located GK, [erk<i>] *)
}

(** Replace each located GK with [XOR(x, erk<i>)]; the old structure is
    swept. *)
val remodel : Netlist.t -> located_gk list -> remodelled

(** Locate, remodel and SAT-attack in one call; the oracle speaks for the
    functionally correct chip. *)
val attack :
  ?max_iterations:int ->
  Netlist.t ->
  oracle:Sat_attack.oracle ->
  remodelled * Sat_attack.outcome

(** Framework variant of {!attack}: the remodelled DIP loop runs under
    [budget] against a counted, memoized {!Oracle.t}. *)
val exec :
  budget:Budget.t ->
  Netlist.t ->
  oracle:Oracle.t ->
  unit ->
  remodelled * Sat_attack.outcome

(** Search-space size (log2) an attacker faces when [n] GKs are hidden in
    withheld [k]-input LUTs: [n × 2^k] unknown truth-table bits. *)
val withheld_search_space_log2 : n_gks:int -> lut_inputs:int -> float
