let m_queries = Obs.Metrics.counter "oracle.queries"
let m_memo_hits = Obs.Metrics.counter "oracle.memo_hits"
let m_memo_evictions = Obs.Metrics.counter "oracle.memo_evictions"
let m_batch_words = Obs.Metrics.counter "oracle.batch_words"
let m_batch_lanes = Obs.Metrics.counter "oracle.batch_lanes"
let m_batch_blocks = Obs.Metrics.counter "oracle.batch_blocks"
let m_shard_batches = Obs.Metrics.counter "oracle.shard_batches"
let m_shard_jobs = Obs.Metrics.counter "oracle.shard_jobs"
let m_partial_defaults = Obs.Metrics.counter "oracle.partial_defaults"

type stats = {
  mutable evals : int;
  mutable hits : int;
  mutable evictions : int;
}

(* Bounded memo: FIFO eviction (oldest inserted entry goes first) once
   [cap] entries are resident.  [fifo] mirrors the table's keys in
   insertion order exactly — a key is queued when inserted and dequeued
   only when evicted — so eviction is O(1). *)
type memo = {
  tbl : (string, (string * bool) list) Hashtbl.t;
  fifo : string Queue.t;
  cap : int;  (* max_int = unbounded *)
}

type net_backend = {
  net : Netlist.t;
  eng : Netlist.Engine.engine;
  sc : Netlist.Engine.scratch;  (* scalar-path + sequential-batch scratch *)
  srcs : int array;
  src_names : string array;
  idx_of_name : (string, int) Hashtbl.t;
  src_idx_of_id : int array;  (* node id -> source index, -1 elsewhere *)
  outs : (string * int) list;  (* po name, driver node id *)
  out_slots : int array;  (* driver slot per output, engine slot space *)
  (* the only two possible response entries per output, preallocated and
     shared by every response list — responses are immutable, so a query
     allocates cons cells only, halving the per-query garbage *)
  out_t : (string * bool) array;
  out_f : (string * bool) array;
  block_words : int;  (* words per eval_block pass *)
  shards : int option;  (* forced shard count; None = size-gated auto *)
  pln : Netlist.Engine.plan option;
      (* fused shard plan, built under ~optimize; used on the
         single-domain batch path (plan buffers are not domain-safe) *)
}

(* Canonical-key state for black-box oracles: the distinct sorted name
   sets seen so far, each with a prebuilt name -> position index.  A
   query is resolved against a known set in O(n) lookups instead of the
   per-query sort + string concatenation the old fn_key paid. *)
type fn_set = {
  fs_id : int;
  fs_size : int;
  fs_idx : (string, int) Hashtbl.t;
}

type fn_backend = {
  fn : (string * bool) list -> (string * bool) list;
  fn_batch :
    ((string * bool) list list -> (string * bool) list list) option;
  mutable fn_sets : fn_set list;
  mutable fn_next_id : int;
}

type backend =
  | Net of net_backend
  | Fn of fn_backend

type t = {
  backend : backend;
  partial : bool;
  budget : Budget.t option;
  memo : memo option;
  stats : stats;
}

(* Words per eval_block pass: 8 * 63 = 504 lanes per instruction-stream
   walk — deep enough to amortize the walk, shallow enough that the block
   buffer of a multi-thousand-slot engine stays cache-resident. *)
let default_block_words = 8

(* Auto-sharding engages when (miss lanes x engine slots) is big enough
   that per-lane work dwarfs the domain spawns. *)
let shard_work_min = 1 lsl 18

let mk_memo memo memo_cap =
  (match memo_cap with
  | Some c when c < 1 ->
    invalid_arg "Oracle: memo_cap must be >= 1 (use ~memo:false to disable)"
  | _ -> ());
  if not memo then None
  else
    Some
      {
        tbl = Hashtbl.create 256;
        fifo = Queue.create ();
        cap = (match memo_cap with Some c -> c | None -> max_int);
      }

let of_netlist ?(partial = false) ?budget ?(memo = true) ?memo_cap
    ?(block_words = default_block_words) ?shards ?(optimize = false) net =
  if block_words < 1 then
    invalid_arg "Oracle.of_netlist: block_words must be >= 1";
  (match shards with
  | Some s when s < 1 -> invalid_arg "Oracle.of_netlist: shards must be >= 1"
  | _ -> ());
  (* The optimized twin preserves source names and declaration order, so
     swapping it in is invisible to callers: same pins, same outputs,
     same semantics, fewer instructions. *)
  let net = if optimize then fst (Opt.run net) else net in
  let eng = Netlist.Engine.get net in
  let srcs = Netlist.Engine.sources eng in
  let src_names =
    Array.map (fun id -> (Netlist.node net id).Netlist.name) srcs
  in
  let idx_of_name = Hashtbl.create (2 * Array.length srcs) in
  Array.iteri (fun i n -> Hashtbl.replace idx_of_name n i) src_names;
  let src_idx_of_id = Array.make (max 1 (Netlist.num_nodes net)) (-1) in
  Array.iteri (fun i id -> src_idx_of_id.(id) <- i) srcs;
  let outs = Netlist.outputs net in
  let slot_of_id = Netlist.Engine.slot_of_id eng in
  let out_names = Array.of_list (List.map fst outs) in
  let out_slots =
    Array.of_list (List.map (fun (_, d) -> slot_of_id.(d)) outs)
  in
  {
    backend =
      Net
        {
          net;
          eng;
          sc = Netlist.Engine.create_scratch eng;
          srcs;
          src_names;
          idx_of_name;
          src_idx_of_id;
          outs;
          out_slots;
          out_t = Array.map (fun n -> (n, true)) out_names;
          out_f = Array.map (fun n -> (n, false)) out_names;
          block_words;
          shards;
          pln = (if optimize then Some (Netlist.Engine.plan net) else None);
        };
    partial;
    budget;
    memo = mk_memo memo memo_cap;
    stats = { evals = 0; hits = 0; evictions = 0 };
  }

let of_fn ?budget ?(memo = true) ?memo_cap ?batch fn =
  {
    backend = Fn { fn; fn_batch = batch; fn_sets = []; fn_next_id = 0 };
    partial = true;
    budget;
    memo = mk_memo memo memo_cap;
    stats = { evals = 0; hits = 0; evictions = 0 };
  }

let relax t = { t with partial = true }
let queries t = t.stats.evals
let memo_hits t = t.stats.hits
let memo_evictions t = t.stats.evictions

let input_names t =
  match t.backend with
  | Net b -> Array.to_list b.src_names
  | Fn _ -> []

(* Canonical memo key: one char per source in id order, so two queries
   that resolve to the same effective assignment share an entry whatever
   order (or duplicates) the caller listed the pins in. *)
let resolve t b q =
  let n = Array.length b.srcs in
  let vals = Bytes.make n '0' in
  (* [seen] is tracked even in partial mode so defaulted reads are
     counted rather than silently folded into the key: a relaxed query
     that omits an FF pseudo-input (whose init is undefined in the
     source netlist) still reads a deterministic false, but every such
     read now shows up in oracle.partial_defaults. *)
  let seen = Bytes.make n '\000' in
  (* positional fast path: queries are usually built by mapping over
     {!input_names}, i.e. pins arrive in declaration order — check the
     next expected source before paying a hash lookup *)
  let next = ref 0 in
  List.iter
    (fun (name, v) ->
      let i =
        let g = !next in
        if g < n && String.equal (Array.unsafe_get b.src_names g) name then g
        else
          match Hashtbl.find_opt b.idx_of_name name with
          | Some i -> i
          | None -> -1
      in
      if i >= 0 then begin
        next := i + 1;
        Bytes.unsafe_set vals i (if v then '1' else '0');
        Bytes.unsafe_set seen i '\001'
      end
      else if not t.partial then
        invalid_arg
          (Printf.sprintf
             "Oracle.query: unknown input %S for netlist %s (use \
              ~partial:true to ignore stray names)"
             name (Netlist.name b.net)))
    q;
  if t.partial then begin
    let defaulted = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.get seen i = '\000' then incr defaulted
    done;
    if !defaulted > 0 then Obs.Metrics.add m_partial_defaults !defaulted
  end
  else
    for i = 0 to n - 1 do
      if Bytes.get seen i = '\000' then
        invalid_arg
          (Printf.sprintf
             "Oracle.query: no value for input %S of netlist %s (use \
              ~partial:true to read missing inputs as false)"
             b.src_names.(i) (Netlist.name b.net))
    done;
  Bytes.unsafe_to_string vals

(* Canonical key for a black-box oracle: the query's effective
   assignment in sorted-name order (duplicates last-wins), prefixed by
   the id of its name set.  The sorted order is computed once per
   distinct name set and reused, so the steady state is O(n) hash
   lookups per query instead of a sort + concatenation. *)
let fn_key_with set q =
  let n = set.fs_size in
  let vals = Bytes.make n '0' in
  let seen = Bytes.make n '\000' in
  let ok = ref true in
  List.iter
    (fun (name, v) ->
      if !ok then
        match Hashtbl.find_opt set.fs_idx name with
        | Some i ->
          Bytes.set vals i (if v then '1' else '0');
          Bytes.set seen i '\001'
        | None -> ok := false)
    q;
  if !ok then begin
    for i = 0 to n - 1 do
      if Bytes.get seen i = '\000' then ok := false
    done;
    if !ok then
      Some (string_of_int set.fs_id ^ ":" ^ Bytes.unsafe_to_string vals)
    else None
  end
  else None

let fn_key fb q =
  let rec try_sets = function
    | [] -> None
    | s :: rest -> (
      match fn_key_with s q with Some k -> Some k | None -> try_sets rest)
  in
  match try_sets fb.fn_sets with
  | Some k -> k
  | None ->
    let names = List.sort_uniq compare (List.map fst q) in
    let idx = Hashtbl.create (2 * List.length names) in
    List.iteri (fun i n -> Hashtbl.replace idx n i) names;
    let set =
      { fs_id = fb.fn_next_id; fs_size = List.length names; fs_idx = idx }
    in
    fb.fn_next_id <- fb.fn_next_id + 1;
    fb.fn_sets <- set :: fb.fn_sets;
    (match fn_key_with set q with
    | Some k -> k
    | None -> assert false (* the set was built from exactly q's names *))

let charge t n =
  t.stats.evals <- t.stats.evals + n;
  Obs.Metrics.add m_queries n;
  match t.budget with Some b -> Budget.note_queries b n | None -> ()

let memo_find t key =
  match t.memo with
  | None -> None
  | Some m ->
    let r = Hashtbl.find_opt m.tbl key in
    if r <> None then begin
      t.stats.hits <- t.stats.hits + 1;
      Obs.Metrics.incr m_memo_hits
    end;
    r

let memo_add t key r =
  match t.memo with
  | None -> ()
  | Some m ->
    if not (Hashtbl.mem m.tbl key) then begin
      if m.cap < max_int then begin
        while Hashtbl.length m.tbl >= m.cap && not (Queue.is_empty m.fifo) do
          Hashtbl.remove m.tbl (Queue.pop m.fifo);
          t.stats.evictions <- t.stats.evictions + 1;
          Obs.Metrics.incr m_memo_evictions
        done;
        Queue.push key m.fifo
      end;
      Hashtbl.replace m.tbl key r
    end

let outs_of_slots b (values : bool array) =
  let r = ref [] in
  for oi = Array.length b.out_slots - 1 downto 0 do
    r :=
      (if values.(b.out_slots.(oi)) then b.out_t.(oi) else b.out_f.(oi)) :: !r
  done;
  !r

let eval_key b key =
  (* sources are engine slots 0..n_src-1 in the same order as [srcs] *)
  let values =
    Netlist.Engine.eval_into ~scratch:b.sc b.eng (fun id ->
        key.[b.src_idx_of_id.(id)] = '1')
  in
  outs_of_slots b values

let query t q =
  match t.backend with
  | Net b -> (
    let key = resolve t b q in
    match memo_find t key with
    | Some r -> r
    | None ->
      charge t 1;
      let r = eval_key b key in
      memo_add t key r;
      r)
  | Fn fb -> (
    let key = fn_key fb q in
    match memo_find t key with
    | Some r -> r
    | None ->
      charge t 1;
      let r = fb.fn q in
      memo_add t key r;
      r)

(* ----- batched path -----

   Distinct memo misses are bit-transposed into multi-word blocks
   (block_words * 63 lanes per pass over the compiled instruction
   stream).  When the batch is big enough, every per-lane stage —
   canonical-key resolution, block evaluation, and response-list
   construction, which dominates on many-output circuits — is sharded
   across a bounded domain pool; each shard evaluates with its own
   engine scratch and allocates responses in its own minor heap, and
   all memo / stat mutation stays on the calling domain. *)

(* Evaluate miss lanes [lane_lo, lane_hi) in blocks of at most
   [block_words] words each, writing each lane's response list into
   [computed].  [scratch] must be private to the caller; [computed]
   writes are race-free because lane ranges are disjoint. *)
(* Bit-transpose repack, lane-major: each key string is read
   sequentially once (no per-character re-indexing of the miss array),
   and bit j of word wi of source si accumulates at buf.(si * nw + wi). *)
let transpose_fill (misses : string array) ~b0 ~lanes ~nw ~n_src buf =
  let w = Netlist.Engine.word_bits in
  for wi = 0 to nw - 1 do
    let j0 = wi * w in
    let jn = min w (lanes - j0) in
    for j = 0 to jn - 1 do
      let key = misses.(b0 + j0 + j) in
      let bit = 1 lsl j in
      for si = 0 to n_src - 1 do
        if String.unsafe_get key si = '1' then
          Array.unsafe_set buf
            ((si * nw) + wi)
            (Array.unsafe_get buf ((si * nw) + wi) lor bit)
      done
    done
  done

let process_lanes b scratch (misses : string array) ~lane_lo ~lane_hi computed
    =
  let w = Netlist.Engine.word_bits in
  let n_src = Array.length b.srcs in
  let n_outs = Array.length b.out_slots in
  let lanes_per_block = b.block_words * w in
  let base = ref lane_lo in
  while !base < lane_hi do
    let b0 = !base in
    let lanes = min lanes_per_block (lane_hi - b0) in
    let nw = (lanes + w - 1) / w in
    let blk =
      Netlist.Engine.eval_block ~scratch b.eng ~n_words:nw
        ~fill:(transpose_fill misses ~b0 ~lanes ~nw ~n_src)
    in
    for j = 0 to lanes - 1 do
      let wi = j / w and bit = j mod w in
      let r = ref [] in
      for oi = n_outs - 1 downto 0 do
        let word =
          Array.unsafe_get blk ((Array.unsafe_get b.out_slots oi * nw) + wi)
        in
        r :=
          (if (word lsr bit) land 1 = 1 then Array.unsafe_get b.out_t oi
           else Array.unsafe_get b.out_f oi)
          :: !r
      done;
      computed.(b0 + j) <- !r
    done;
    Obs.Metrics.incr m_batch_blocks;
    Obs.Metrics.add m_batch_words nw;
    Obs.Metrics.add m_batch_lanes lanes;
    base := b0 + lanes
  done

(* Same as {!process_lanes} but through a fused shard plan (built under
   [~optimize]): single-pass kernels over the optimized instruction
   stream.  Only the single-domain batch path uses this — plan buffers
   are owned by the plan and not domain-safe. *)
let process_lanes_plan b p (misses : string array) ~lane_lo ~lane_hi computed
    =
  let w = Netlist.Engine.word_bits in
  let n_src = Array.length b.srcs in
  let n_outs = Array.length b.out_slots in
  let lanes_per_block = b.block_words * w in
  let base = ref lane_lo in
  while !base < lane_hi do
    let b0 = !base in
    let lanes = min lanes_per_block (lane_hi - b0) in
    let nw = (lanes + w - 1) / w in
    Netlist.Engine.eval_block_sharded p ~n_words:nw
      ~fill:(transpose_fill misses ~b0 ~lanes ~nw ~n_src);
    for j = 0 to lanes - 1 do
      let wi = j / w and bit = j mod w in
      let r = ref [] in
      for oi = n_outs - 1 downto 0 do
        let word =
          Netlist.Engine.plan_read p ~slot:(Array.unsafe_get b.out_slots oi)
            ~word:wi
        in
        r :=
          (if (word lsr bit) land 1 = 1 then Array.unsafe_get b.out_t oi
           else Array.unsafe_get b.out_f oi)
          :: !r
      done;
      computed.(b0 + j) <- !r
    done;
    Obs.Metrics.incr m_batch_blocks;
    Obs.Metrics.add m_batch_words nw;
    Obs.Metrics.add m_batch_lanes lanes;
    base := b0 + lanes
  done

(* Batched path for black-box oracles that advertise a bulk transport
   (e.g. a remote oracle packing a whole word per round trip): dedup
   memo misses on their canonical keys, ship the distinct queries in one
   [fn_batch] call, then reassemble in request order. *)
let fn_query_batch t fb bf qs =
  match t.memo with
  | None ->
    let n = List.length qs in
    if n = 0 then []
    else begin
      charge t n;
      let rs = bf qs in
      if List.length rs <> n then
        invalid_arg "Oracle: batch backend returned a result list of wrong size";
      rs
    end
  | Some _ ->
    (* each entry keeps its query alongside its key so the miss list and
       the eviction fallback never have to search for it again (remote
       chunks run to thousands of queries, so an assoc scan per miss
       would be quadratic in batch size) *)
    let cached =
      List.map
        (fun q ->
          let key = fn_key fb q in
          (key, q, memo_find t key))
        qs
    in
    let miss_tbl = Hashtbl.create 64 in
    let misses =
      (* first occurrence of each distinct missing key, in order *)
      List.filter
        (fun (key, _, r) ->
          r = None
          && (not (Hashtbl.mem miss_tbl key))
          && (Hashtbl.replace miss_tbl key ();
              true))
        cached
    in
    if misses <> [] then begin
      charge t (List.length misses);
      let rs = bf (List.map (fun (_, q, _) -> q) misses) in
      if List.length rs <> List.length misses then
        invalid_arg "Oracle: batch backend returned a result list of wrong size";
      List.iter2 (fun (key, _, _) r -> memo_add t key r) misses rs
    end;
    (* all keys are resident now (memo_add just ran with room for each:
       cap evictions can push *older* entries out, so re-query misses
       via the memo and fall back to a direct call if one was evicted) *)
    List.map
      (fun (key, q, cached_r) ->
        match cached_r with
        | Some r -> r
        | None -> (
          match t.memo with
          | Some m -> (
            match Hashtbl.find_opt m.tbl key with
            | Some r -> r
            | None ->
              (* evicted within this very batch (tiny cap): recompute *)
              charge t 1;
              let r = fb.fn q in
              memo_add t key r;
              r)
          | None -> assert false))
      cached

let query_batch t qs =
  match t.backend with
  | Fn ({ fn_batch = Some bf; _ } as fb) -> fn_query_batch t fb bf qs
  | Fn { fn_batch = None; _ } -> List.map (query t) qs
  | Net b ->
    let qarr = Array.of_list qs in
    let nq = Array.length qarr in
    if nq = 0 then []
    else begin
      (* domain pool width for a stage over [n_items] lanes: forced by
         [~shards] if given, otherwise engaged only when lanes x engine
         size is big enough to amortize the domain spawns *)
      let domains_for n_items =
        let wanted =
          match b.shards with
          | Some s -> s
          | None ->
            if n_items * Netlist.Engine.n_slots b.eng >= shard_work_min then
              Parallel.default_domains ()
            else 1
        in
        max 1 (min wanted n_items)
      in
      (* 1. canonical keys (validation + Bytes packing), sharded *)
      let keys = Array.make nq "" in
      let resolve_range (lo, hi) =
        for i = lo to hi - 1 do
          keys.(i) <- resolve t b qarr.(i)
        done
      in
      let rd = domains_for nq in
      if rd <= 1 then resolve_range (0, nq)
      else
        ignore
          (Parallel.map ~domains:rd resolve_range
             (List.init rd (fun s -> (s * nq / rd, (s + 1) * nq / rd))));
      (* 2. memo lookup + dedup, on the calling domain only.  Each query
         records the miss slot it maps to ([miss_of_query]) so the final
         fill needs no second round of string hashing. *)
      let hits = Array.make nq None in
      let miss_of_query = Array.make nq (-1) in
      let miss_index = Hashtbl.create (2 * nq) in
      let order = ref [] in
      let count = ref 0 in
      Array.iteri
        (fun i key ->
          match memo_find t key with
          | Some r -> hits.(i) <- Some r
          | None -> (
            match Hashtbl.find_opt miss_index key with
            | Some mi -> miss_of_query.(i) <- mi
            | None ->
              Hashtbl.replace miss_index key !count;
              miss_of_query.(i) <- !count;
              order := key :: !order;
              incr count))
        keys;
      let misses = Array.of_list (List.rev !order) in
      let n_miss = Array.length misses in
      let computed = Array.make (max 1 n_miss) [] in
      if n_miss > 0 then begin
        (* 3. every real evaluation is charged before any engine work, so
           a budget cap trips without wasting a partial parallel pass *)
        charge t n_miss;
        (* 4. evaluate + build responses, sharded over lane ranges *)
        let ed = domains_for n_miss in
        if ed <= 1 then (
          match b.pln with
          | Some p ->
            process_lanes_plan b p misses ~lane_lo:0 ~lane_hi:n_miss computed
          | None ->
            process_lanes b b.sc misses ~lane_lo:0 ~lane_hi:n_miss computed)
        else begin
          Obs.Metrics.incr m_shard_batches;
          Obs.Metrics.add m_shard_jobs ed;
          ignore
            (Parallel.map ~domains:ed
               (fun (lo, hi) ->
                 let scratch = Netlist.Engine.create_scratch b.eng in
                 process_lanes b scratch misses ~lane_lo:lo ~lane_hi:hi
                   computed)
               (List.init ed (fun s ->
                    (s * n_miss / ed, (s + 1) * n_miss / ed))))
        end;
        (* 5. memo writes, on the calling domain only *)
        if t.memo <> None then
          Array.iteri (fun mi r -> memo_add t misses.(mi) r) computed
      end;
      List.init nq (fun i ->
          match hits.(i) with
          | Some r -> r
          | None -> computed.(miss_of_query.(i)))
    end

let as_fn t q = query t q
