let m_queries = Obs.Metrics.counter "oracle.queries"
let m_memo_hits = Obs.Metrics.counter "oracle.memo_hits"
let m_batch_words = Obs.Metrics.counter "oracle.batch_words"
let m_batch_lanes = Obs.Metrics.counter "oracle.batch_lanes"
let m_partial_defaults = Obs.Metrics.counter "oracle.partial_defaults"

type stats = { mutable evals : int; mutable hits : int }

type net_backend = {
  net : Netlist.t;
  eng : Netlist.Engine.engine;
  srcs : int array;
  src_names : string array;
  idx_of_name : (string, int) Hashtbl.t;
  idx_of_id : (int, int) Hashtbl.t;
  outs : (string * int) list;
}

type backend =
  | Net of net_backend
  | Fn of ((string * bool) list -> (string * bool) list)

type t = {
  backend : backend;
  partial : bool;
  budget : Budget.t option;
  memo : (string, (string * bool) list) Hashtbl.t option;
  stats : stats;
}

let of_netlist ?(partial = false) ?budget ?(memo = true) net =
  let eng = Netlist.Engine.get net in
  let srcs = Netlist.Engine.sources eng in
  let src_names =
    Array.map (fun id -> (Netlist.node net id).Netlist.name) srcs
  in
  let idx_of_name = Hashtbl.create (2 * Array.length srcs) in
  Array.iteri (fun i n -> Hashtbl.replace idx_of_name n i) src_names;
  let idx_of_id = Hashtbl.create (2 * Array.length srcs) in
  Array.iteri (fun i id -> Hashtbl.replace idx_of_id id i) srcs;
  {
    backend =
      Net
        {
          net;
          eng;
          srcs;
          src_names;
          idx_of_name;
          idx_of_id;
          outs = Netlist.outputs net;
        };
    partial;
    budget;
    memo = (if memo then Some (Hashtbl.create 256) else None);
    stats = { evals = 0; hits = 0 };
  }

let of_fn ?budget ?(memo = true) fn =
  {
    backend = Fn fn;
    partial = true;
    budget;
    memo = (if memo then Some (Hashtbl.create 256) else None);
    stats = { evals = 0; hits = 0 };
  }

let relax t = { t with partial = true }
let queries t = t.stats.evals
let memo_hits t = t.stats.hits

let input_names t =
  match t.backend with
  | Net b -> Array.to_list b.src_names
  | Fn _ -> []

(* Canonical memo key: one char per source in id order, so two queries
   that resolve to the same effective assignment share an entry whatever
   order (or duplicates) the caller listed the pins in. *)
let resolve t b q =
  let n = Array.length b.srcs in
  let vals = Bytes.make n '0' in
  (* [seen] is tracked even in partial mode so defaulted reads are
     counted rather than silently folded into the key: a relaxed query
     that omits an FF pseudo-input (whose init is undefined in the
     source netlist) still reads a deterministic false, but every such
     read now shows up in oracle.partial_defaults. *)
  let seen = Bytes.make n '\000' in
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt b.idx_of_name name with
      | Some i ->
        Bytes.set vals i (if v then '1' else '0');
        Bytes.set seen i '\001'
      | None ->
        if not t.partial then
          invalid_arg
            (Printf.sprintf
               "Oracle.query: unknown input %S for netlist %s (use \
                ~partial:true to ignore stray names)"
               name (Netlist.name b.net)))
    q;
  if t.partial then begin
    let defaulted = ref 0 in
    for i = 0 to n - 1 do
      if Bytes.get seen i = '\000' then incr defaulted
    done;
    if !defaulted > 0 then Obs.Metrics.add m_partial_defaults !defaulted
  end
  else
    for i = 0 to n - 1 do
      if Bytes.get seen i = '\000' then
        invalid_arg
          (Printf.sprintf
             "Oracle.query: no value for input %S of netlist %s (use \
              ~partial:true to read missing inputs as false)"
             b.src_names.(i) (Netlist.name b.net))
    done;
  Bytes.unsafe_to_string vals

(* Canonical key for a black-box oracle: sorted, last-wins. *)
let fn_key q =
  let tbl = Hashtbl.create (2 * List.length q) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) q;
  let kvs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let kvs = List.sort (fun (a, _) (b, _) -> compare a b) kvs in
  String.concat ";"
    (List.map (fun (k, v) -> k ^ (if v then "=1" else "=0")) kvs)

let charge t n =
  t.stats.evals <- t.stats.evals + n;
  Obs.Metrics.add m_queries n;
  match t.budget with Some b -> Budget.note_queries b n | None -> ()

let memo_find t key =
  match t.memo with
  | None -> None
  | Some m ->
    let r = Hashtbl.find_opt m key in
    if r <> None then begin
      t.stats.hits <- t.stats.hits + 1;
      Obs.Metrics.incr m_memo_hits
    end;
    r

let memo_add t key r =
  match t.memo with None -> () | Some m -> Hashtbl.replace m key r

let eval_key b key =
  let values =
    (* [eng] consults only source ids, each of which has a slot *)
    Netlist.Engine.eval b.eng (fun id -> key.[Hashtbl.find b.idx_of_id id] = '1')
  in
  List.map (fun (po, d) -> (po, values.(d))) b.outs

let query t q =
  match t.backend with
  | Net b -> (
    let key = resolve t b q in
    match memo_find t key with
    | Some r -> r
    | None ->
      charge t 1;
      let r = eval_key b key in
      memo_add t key r;
      r)
  | Fn fn -> (
    let key = fn_key q in
    match memo_find t key with
    | Some r -> r
    | None ->
      charge t 1;
      let r = fn q in
      memo_add t key r;
      r)

let query_batch t qs =
  match t.backend with
  | Fn _ -> List.map (query t) qs
  | Net b ->
    let w = Netlist.Engine.word_bits in
    let n_src = Array.length b.srcs in
    let keys = Array.of_list (List.map (resolve t b) qs) in
    let results = Array.make (Array.length keys) None in
    (* distinct keys not in the memo, preserving first-seen order *)
    let pending = Hashtbl.create 64 in
    let order = ref [] in
    Array.iteri
      (fun i key ->
        match memo_find t key with
        | Some r -> results.(i) <- Some r
        | None ->
          if not (Hashtbl.mem pending key) then begin
            Hashtbl.replace pending key ();
            order := key :: !order
          end)
      keys;
    let misses = Array.of_list (List.rev !order) in
    let computed = Hashtbl.create (2 * Array.length misses) in
    let words = Array.make (Netlist.num_nodes b.net) 0 in
    let chunk_start = ref 0 in
    while !chunk_start < Array.length misses do
      let lanes = min w (Array.length misses - !chunk_start) in
      charge t lanes;
      (* Batch fill ratio = batch_lanes / (batch_words * word_bits). *)
      Obs.Metrics.incr m_batch_words;
      Obs.Metrics.add m_batch_lanes lanes;
      for si = 0 to n_src - 1 do
        let word = ref 0 in
        for j = 0 to lanes - 1 do
          if misses.(!chunk_start + j).[si] = '1' then
            word := !word lor (1 lsl j)
        done;
        words.(b.srcs.(si)) <- !word
      done;
      let values = Netlist.Engine.eval_words b.eng (Array.get words) in
      for j = 0 to lanes - 1 do
        let key = misses.(!chunk_start + j) in
        let r =
          List.map
            (fun (po, d) -> (po, (values.(d) lsr j) land 1 = 1))
            b.outs
        in
        memo_add t key r;
        Hashtbl.replace computed key r
      done;
      chunk_start := !chunk_start + lanes
    done;
    Array.iteri
      (fun i key ->
        if results.(i) = None then
          results.(i) <- Some (Hashtbl.find computed key))
      keys;
    Array.to_list (Array.map Option.get results)

let as_fn t q = query t q
