type outcome = {
  key : Key.assignment;
  error_rate : float;
  dips : int;
  random_queries : int;
  exact : bool;
}

(* A self-contained DIP engine: one miter solver plus a parallel
   "candidate" solver holding only the accumulated I/O constraints, from
   which the current best key is extracted between iterations. *)
let exec ?(check_every = 4) ?(error_threshold = 0.01) ?(queries_per_check = 50)
    ?seed ~budget ~locked ~key_inputs ~oracle () =
  if Netlist.ffs locked <> [] then
    invalid_arg "Appsat.run: locked netlist must be combinational";
  (* An already-expired budget (deadline_s <= 0) yields a structured
     pessimistic outcome before any encoding, solving or oracle work. *)
  match Budget.check budget with
  | exception Budget.Exhausted _ ->
    {
      key = List.map (fun k -> (k, false)) key_inputs;
      error_rate = 1.0;
      dips = 0;
      random_queries = 0;
      exact = false;
    }
  | () ->
  let seed = match seed with Some s -> s | None -> Fuzz_seed.value () in
  let rng = Random.State.make [| seed; 0x4150 |] in
  let x_pis =
    List.filter
      (fun pi ->
        not (List.mem (Netlist.node locked pi).Netlist.name key_inputs))
      (Netlist.inputs locked)
  in
  let x_names =
    List.map (fun pi -> (Netlist.node locked pi).Netlist.name) x_pis
  in
  (* miter solver *)
  let solver = Solver.create () in
  let x_vars = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace x_vars n (Solver.new_var solver)) x_names;
  let k1 = Hashtbl.create 16 and k2 = Hashtbl.create 16 in
  List.iter
    (fun k ->
      Hashtbl.replace k1 k (Solver.new_var solver);
      Hashtbl.replace k2 k (Solver.new_var solver))
    key_inputs;
  let shared tbl ~with_x id =
    let nd = Netlist.node locked id in
    if nd.Netlist.kind <> Netlist.Input then None
    else
      match Hashtbl.find_opt tbl nd.Netlist.name with
      | Some v -> Some v
      | None -> if with_x then Hashtbl.find_opt x_vars nd.Netlist.name else None
  in
  let vars1 = Tseitin.encode solver locked ~shared:(shared k1 ~with_x:true) in
  let vars2 = Tseitin.encode solver locked ~shared:(shared k2 ~with_x:true) in
  let diffs =
    List.map
      (fun (_, d) ->
        let o = Solver.new_var solver in
        let ol = Lit.pos o and x = Lit.pos vars1.(d) and y = Lit.pos vars2.(d) in
        ignore (Solver.add_clause solver [ Lit.negate ol; x; y ]);
        ignore (Solver.add_clause solver [ Lit.negate ol; Lit.negate x; Lit.negate y ]);
        ignore (Solver.add_clause solver [ ol; Lit.negate x; y ]);
        ignore (Solver.add_clause solver [ ol; x; Lit.negate y ]);
        ol)
      (Netlist.outputs locked)
  in
  ignore (Solver.add_clause solver diffs);
  (* candidate solver: constraints only *)
  let cand = Solver.create () in
  let kc = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace kc k (Solver.new_var cand)) key_inputs;
  let add_io_constraint dip outs =
    let pin s vars =
      List.iter
        (fun pi ->
          let name = (Netlist.node locked pi).Netlist.name in
          ignore (Solver.add_clause s [ Lit.make vars.(pi) (List.assoc name dip) ]))
        x_pis;
      List.iter
        (fun (po, d) ->
          ignore (Solver.add_clause s [ Lit.make vars.(d) (List.assoc po outs) ]))
        (Netlist.outputs locked)
    in
    (* both key copies of the miter, and the candidate store *)
    pin solver (Tseitin.encode solver locked ~shared:(shared k1 ~with_x:false));
    pin solver (Tseitin.encode solver locked ~shared:(shared k2 ~with_x:false));
    pin cand (Tseitin.encode cand locked ~shared:(shared kc ~with_x:false))
  in
  let extract_candidate () =
    match Solver.solve cand with
    | Solver.Sat ->
      Some
        (List.map
           (fun k -> (k, Solver.value cand (Hashtbl.find kc k)))
           key_inputs)
    | Solver.Unsat -> None
  in
  let random_dip () = List.map (fun n -> (n, Random.State.bool rng)) x_names in
  let locked_o = Oracle.of_netlist locked in
  let queries = ref 0 in
  (* estimate the error on a batch of random queries (one 63-lane engine
     pass per word on each side) and feed failing queries back as
     constraints *)
  let estimate key =
    Obs.Trace.with_span
      ~args:[ ("queries", Cjson.Int queries_per_check) ]
      "appsat.estimate"
    @@ fun () ->
    let dips = ref [] in
    for _ = 1 to queries_per_check do
      dips := random_dip () :: !dips
    done;
    let dips = List.rev !dips in
    queries := !queries + queries_per_check;
    let expected = Oracle.query_batch oracle dips in
    let got = Oracle.query_batch locked_o (List.map (fun d -> d @ key) dips) in
    let errors = ref 0 in
    List.iter2
      (fun (dip, exp) g ->
        let fails =
          List.exists
            (fun (po, v) ->
              match List.assoc_opt po g with Some w -> v <> w | None -> false)
            exp
        in
        if fails then begin
          incr errors;
          add_io_constraint dip exp
        end)
      (List.combine dips expected)
      got;
    float_of_int !errors /. float_of_int queries_per_check
  in
  let fallback = List.map (fun k -> (k, false)) key_inputs in
  let exhausted dips =
    let key = Option.value (extract_candidate ()) ~default:fallback in
    let error_rate =
      (* a deadline or query cap may already be spent: report the
         pessimistic bound rather than burn more budget *)
      match estimate key with
      | e -> e
      | exception Budget.Exhausted _ -> 1.0
    in
    { key; error_rate; dips; random_queries = !queries; exact = false }
  in
  let rec loop dips =
    Budget.check budget;
    let verdict =
      Obs.Trace.with_span
        ~args:[ ("iter", Cjson.Int dips) ]
        "attack.solve"
        (fun () -> Solver.solve solver)
    in
    match verdict with
    | Solver.Unsat ->
      let key = Option.value (extract_candidate ()) ~default:fallback in
      { key; error_rate = 0.0; dips; random_queries = !queries; exact = true }
    | Solver.Sat ->
      (* charge the iteration only once a DIP exists (see Sat_attack);
         the span opens after a successful tick and closes before any
         recursion, so attack.iteration spans count charged iterations
         exactly *)
      Budget.tick budget;
      (Obs.Trace.with_span
         ~args:[ ("iter", Cjson.Int dips); ("dips", Cjson.Int dips) ]
         "attack.iteration"
       @@ fun () ->
       let dip =
         List.map
           (fun n -> (n, Solver.value solver (Hashtbl.find x_vars n)))
           x_names
       in
       let outs = Oracle.query oracle dip in
       add_io_constraint dip outs);
      let dips = dips + 1 in
      if dips mod check_every = 0 then begin
        match extract_candidate () with
        | None -> loop dips
        | Some key ->
          let err = estimate key in
          if err <= error_threshold then
            { key; error_rate = err; dips; random_queries = !queries; exact = false }
          else loop dips
      end
      else loop dips
  in
  let start = Budget.iterations budget in
  try loop 0
  with Budget.Exhausted _ -> exhausted (Budget.iterations budget - start)

let run ?(max_iterations = 512) ?check_every ?error_threshold
    ?queries_per_check ?seed ~locked ~key_inputs ~oracle () =
  exec ?check_every ?error_threshold ?queries_per_check ?seed
    ~budget:(Budget.create ~max_iterations ())
    ~locked ~key_inputs
    ~oracle:(Oracle.of_fn oracle)
    ()
