type oracle = (string * bool) list -> (string * bool) list

type status =
  | Key_recovered of Key.assignment
  | Unsat_at_first_iteration of Key.assignment
  | Budget_exhausted

type outcome = {
  status : status;
  iterations : int;
  dips : (string * bool) list list;
  conflicts : int;
}

let oracle_of_netlist ?(partial = false) net =
  Oracle.as_fn (Oracle.of_netlist ~partial net)

(* Split the locked netlist's inputs into X inputs and key inputs. *)
let classify_inputs locked key_inputs =
  let is_key = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace is_key k ()) key_inputs;
  List.partition
    (fun pi -> not (Hashtbl.mem is_key (Netlist.node locked pi).Netlist.name))
    (Netlist.inputs locked)

let exec ~budget ~locked ~key_inputs ~oracle () =
  if Netlist.ffs locked <> [] then
    invalid_arg "Sat_attack.run: locked netlist must be combinational";
  List.iter
    (fun k ->
      match Netlist.find locked k with
      | Some id when (Netlist.node locked id).Netlist.kind = Netlist.Input -> ()
      | Some _ -> invalid_arg ("Sat_attack.run: " ^ k ^ " is not an input")
      | None -> invalid_arg ("Sat_attack.run: no key input " ^ k))
    key_inputs;
  (* An already-expired budget (deadline_s <= 0) yields a structured
     Budget_exhausted before any encoding, solving or oracle work. *)
  match Budget.check budget with
  | exception Budget.Exhausted _ ->
    { status = Budget_exhausted; iterations = 0; dips = []; conflicts = 0 }
  | () ->
  let x_pis, _key_pis = classify_inputs locked key_inputs in
  let x_names = List.map (fun pi -> (Netlist.node locked pi).Netlist.name) x_pis in
  let solver = Solver.create () in
  (* Shared X variables and the two key vectors. *)
  let x_vars = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace x_vars n (Solver.new_var solver)) x_names;
  let k1_vars = Hashtbl.create 16 and k2_vars = Hashtbl.create 16 in
  List.iter
    (fun k ->
      Hashtbl.replace k1_vars k (Solver.new_var solver);
      Hashtbl.replace k2_vars k (Solver.new_var solver))
    key_inputs;
  let shared_map key_tbl ?fix_x () id =
    let nd = Netlist.node locked id in
    if nd.Netlist.kind <> Netlist.Input then None
    else
      match Hashtbl.find_opt key_tbl nd.Netlist.name with
      | Some v -> Some v
      | None -> (
        match fix_x with
        | None -> Hashtbl.find_opt x_vars nd.Netlist.name
        | Some _ -> None (* fresh var, pinned below *))
  in
  let encode_copy key_tbl = Tseitin.encode solver locked ~shared:(shared_map key_tbl ()) in
  let vars1 = encode_copy k1_vars in
  let vars2 = encode_copy k2_vars in
  (* Miter output: OR over per-output XORs. *)
  let diffs =
    List.map
      (fun (_, d) ->
        let o = Solver.new_var solver in
        let ol = Lit.pos o
        and x = Lit.pos vars1.(d)
        and y = Lit.pos vars2.(d) in
        ignore (Solver.add_clause solver [ Lit.negate ol; x; y ]);
        ignore (Solver.add_clause solver [ Lit.negate ol; Lit.negate x; Lit.negate y ]);
        ignore (Solver.add_clause solver [ ol; Lit.negate x; y ]);
        ignore (Solver.add_clause solver [ ol; x; Lit.negate y ]);
        ol)
      (Netlist.outputs locked)
  in
  ignore (Solver.add_clause solver diffs);
  (* Add one I/O constraint copy (circuit at DIP X with key K forced to output Y) for a key vector. *)
  let add_constraint key_tbl dip outs =
    let vars =
      Tseitin.encode solver locked
        ~shared:(shared_map key_tbl ~fix_x:() ())
    in
    List.iter
      (fun pi ->
        let name = (Netlist.node locked pi).Netlist.name in
        let v = List.assoc name dip in
        ignore (Solver.add_clause solver [ Lit.make vars.(pi) v ]))
      x_pis;
    List.iter
      (fun (po, d) ->
        let v = List.assoc po outs in
        ignore (Solver.add_clause solver [ Lit.make vars.(d) v ]))
      (Netlist.outputs locked)
  in
  let dips = ref [] in
  let extract_key () =
    (* The K1 vector of a model of all accumulated constraints.  Build a
       fresh solver holding only the constraint copies. *)
    let s2 = Solver.create () in
    let k_vars = Hashtbl.create 16 in
    List.iter (fun k -> Hashtbl.replace k_vars k (Solver.new_var s2)) key_inputs;
    List.iter
      (fun (dip, outs) ->
        let shared id =
          let nd = Netlist.node locked id in
          if nd.Netlist.kind = Netlist.Input then
            Hashtbl.find_opt k_vars nd.Netlist.name
          else None
        in
        let vars = Tseitin.encode s2 locked ~shared in
        List.iter
          (fun pi ->
            let name = (Netlist.node locked pi).Netlist.name in
            ignore (Solver.add_clause s2 [ Lit.make vars.(pi) (List.assoc name dip) ]))
          x_pis;
        List.iter
          (fun (po, d) ->
            ignore (Solver.add_clause s2 [ Lit.make vars.(d) (List.assoc po outs) ]))
          (Netlist.outputs locked))
      (List.rev !dips);
    match Solver.solve s2 with
    | Solver.Sat ->
      List.map (fun k -> (k, Solver.value s2 (Hashtbl.find k_vars k))) key_inputs
    | Solver.Unsat ->
      (* Impossible unless the oracle is inconsistent with the netlist. *)
      List.map (fun k -> (k, false)) key_inputs
  in
  let finish status iter =
    {
      status;
      iterations = iter;
      dips = List.rev_map fst !dips;
      conflicts = Solver.conflicts solver;
    }
  in
  let rec loop iter =
    Budget.check budget;
    let verdict =
      Obs.Trace.with_span
        ~args:[ ("iter", Cjson.Int iter) ]
        "attack.solve"
        (fun () -> Solver.solve solver)
    in
    match verdict with
    | Solver.Unsat ->
      let key = extract_key () in
      let status =
        if iter = 0 then Unsat_at_first_iteration key else Key_recovered key
      in
      finish status iter
    | Solver.Sat ->
      (* charge the iteration only once a DIP exists, so the iteration
         count always equals the number of DIPs consumed.  The span is
         opened only after a successful tick and closed before the
         recursive call, so attack.iteration spans in a trace count the
         charged iterations exactly (no nesting, no span for a tick
         that tripped the budget). *)
      Budget.tick budget;
      (Obs.Trace.with_span
         ~args:
           [ ("iter", Cjson.Int iter); ("dips", Cjson.Int (List.length !dips)) ]
         "attack.iteration"
       @@ fun () ->
       let dip =
         List.map
           (fun n -> (n, Solver.value solver (Hashtbl.find x_vars n)))
           x_names
       in
       let outs = Oracle.query oracle dip in
       dips := (dip, outs) :: !dips;
       add_constraint k1_vars dip outs;
       add_constraint k2_vars dip outs);
      loop (iter + 1)
  in
  (* On mid-iteration exhaustion the iteration was already charged
     (ticked) and its span emitted, so report Budget.iterations — keeps
     the outcome's count equal to both the budget telemetry and the
     number of attack.iteration spans in a trace. *)
  try loop 0
  with Budget.Exhausted _ -> finish Budget_exhausted (Budget.iterations budget)

let run ?(max_iterations = 4096) ~locked ~key_inputs ~oracle () =
  exec
    ~budget:(Budget.create ~max_iterations ())
    ~locked ~key_inputs
    ~oracle:(Oracle.of_fn oracle)
    ()

let verify_key_o ?(samples = 64) ?seed ~locked ~key_inputs ~oracle key =
  let seed = match seed with Some s -> s | None -> Fuzz_seed.value () in
  let rng = Random.State.make [| seed; 0x5646 |] in
  let x_pis, _ = classify_inputs locked key_inputs in
  let x_names = List.map (fun pi -> (Netlist.node locked pi).Netlist.name) x_pis in
  let dips = ref [] in
  for _ = 1 to samples do
    dips := List.map (fun n -> (n, Random.State.bool rng)) x_names :: !dips
  done;
  let dips = List.rev !dips in
  (* the chip may expose pins the locked view lacks (and vice versa) —
     verification drives the pins it can name *)
  let expected = Oracle.query_batch (Oracle.relax oracle) dips in
  let locked_o = Oracle.of_netlist ~partial:true locked in
  let got = Oracle.query_batch locked_o (List.map (fun d -> d @ key) dips) in
  List.fold_left2
    (fun mismatches exp g ->
      let differs =
        List.exists
          (fun (po, v) ->
            match List.assoc_opt po g with Some w -> v <> w | None -> true)
          exp
      in
      if differs then mismatches + 1 else mismatches)
    0 expected got

let verify_key ?samples ?seed ~locked ~key_inputs ~oracle key =
  verify_key_o ?samples ?seed ~locked ~key_inputs ~oracle:(Oracle.of_fn oracle)
    key
