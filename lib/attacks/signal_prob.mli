(** Signal-probability estimation.

    The removal attacks of Yasin et al. [15,16] locate SAT-resistant
    security blocks by their statistical signature: SARLock's and
    Anti-SAT's flip signals are 1 on an exponentially small fraction of
    the input space.  This module estimates per-node one-probabilities by
    seeded Monte-Carlo simulation of a combinational netlist. *)

(** [estimate ?samples ?seed ?fixed net] returns P(node = 1) per node id,
    drawing primary inputs uniformly (except those pinned by [fixed],
    keyed by input name).  Default 2048 samples.  Runs on the bit-parallel
    {!Netlist.Engine}, {!Netlist.Engine.word_bits} samples per pass. *)
val estimate :
  ?samples:int ->
  ?seed:int ->
  ?fixed:(string * bool) list ->
  Netlist.t ->
  float array

(** [exact net] computes exact one-probabilities with {!Bdd} — every
    primary input uniform and independent.  Exponential in the worst case;
    guarded to netlists with at most [max_inputs] (default 24) primary
    inputs.  @raise Invalid_argument beyond the guard or on sequential
    netlists. *)
val exact : ?max_inputs:int -> Netlist.t -> float array

(** [skewed ?eps net probs] lists (node id, probability) of combinational
    nodes with P ≤ eps or P ≥ 1−eps (default eps 0.02), most skewed
    first.  Constants and fanout-free nodes are excluded. *)
val skewed : ?eps:float -> Netlist.t -> float array -> (int * float) list
