(** The instrumented chip oracle every attack in the framework queries.

    An [Oracle.t] wraps either a combinational netlist (the simulated
    unlocked chip) or an arbitrary query function, and adds the three
    things the attack literature measures and the ad-hoc closures lost:

    - {b query counting}: AppSAT and the SAT attack define their cost in
      oracle queries; {!queries} reports real evaluations, with memo
      hits tracked separately ({!memo_hits}).
    - {b memoization}: repeated queries (DIP re-checks, verify samples)
      hit a canonical-form cache instead of re-simulating — and do not
      recount.
    - {b budget charging}: when constructed with a {!Budget.t}, every
      real evaluation is charged, so a query cap or deadline stops the
      attack with [Budget.Exhausted] instead of letting it run away.

    Netlist-backed oracles also {b validate queries}: a name that is not
    one of the netlist's sources, or a source left unassigned, raises
    [Invalid_argument] — the silent read-as-false that used to hide
    mistyped key names is now an error.  [~partial:true] (or {!relax})
    restores the permissive semantics for attacks that genuinely cannot
    name every pin (e.g. the scan attack's undriveable key inputs).

    {b Partial-read rule.} Under [~partial:true] every source the query
    does not mention — ordinary primary inputs {e and} the [ppi_*]
    pseudo-inputs standing in for flip-flops whose initial state the
    source netlist leaves undefined — reads as a deterministic [false].
    The same rule applies on both the scalar ({!query}) and batched
    ({!query_batch}) paths, and a relaxed query therefore shares its
    memo entry with the equivalent strict query that names those pins
    [false] explicitly.  Defaulted reads are never silent: each one is
    counted in the [oracle.partial_defaults] metric (see [Obs.Metrics]),
    so a run that leaned on the default is distinguishable from one that
    pinned every pin.

    Batched queries ({!query_batch}) route through the multi-word
    {!Netlist.Engine.eval_block} path: distinct memo misses are
    bit-transposed into blocks of [block_words * 63] stimulus lanes, each
    block evaluated in one pass over the compiled instruction stream, and
    on large engines pending blocks are sharded across a bounded domain
    pool ({!Parallel.map} semantics — nested use degrades to sequential).
    This is the fast path for sampling workloads (brute force, AppSAT
    error estimation, removal-equivalence checks, [verify_key]). *)

type t

(** [of_netlist ?partial ?budget ?memo ?memo_cap ?block_words ?shards
    net] wraps [net] (combinational, or any netlist whose FF outputs are
    to be driven directly) as an oracle.

    [partial] (default false): read unmentioned sources as false instead
    of raising.  [memo] (default true): cache query results.  [memo_cap]
    (default unbounded): maximum resident memo entries; when full, the
    {e oldest inserted} entry is evicted (FIFO) and counted in
    {!memo_evictions} / the [oracle.memo_evictions] metric.  A capped
    memo keeps {!queries} monotone but can re-evaluate (and re-charge)
    a vector whose entry was evicted.

    [block_words] (default 8): words per {!Netlist.Engine.eval_block}
    pass on the batched path, i.e. [block_words * 63] lanes per
    instruction-stream walk.  [shards] forces the batch domain-pool
    width; by default sharding engages only on engines of a few thousand
    slots and uses [Parallel.default_domains ()].  [~shards:1] disables
    sharding.

    [optimize] (default false): run the {!Opt} strash/rewrite front-end
    on [net] and simulate the optimized twin instead.  The twin keeps
    source names, source order and output names, so queries and
    responses are byte-identical — only the instruction stream shrinks.
    Batched queries additionally route through a fused
    {!Netlist.Engine.plan} on the single-domain path.

    The netlist must not be mutated while wrapped.
    @raise Invalid_argument if [memo_cap], [block_words] or [shards]
    is [< 1]. *)
val of_netlist :
  ?partial:bool ->
  ?budget:Budget.t ->
  ?memo:bool ->
  ?memo_cap:int ->
  ?block_words:int ->
  ?shards:int ->
  ?optimize:bool ->
  Netlist.t ->
  t

(** [of_fn ?budget ?memo ?memo_cap ?batch fn] wraps a black-box query
    function (e.g. a frame-regrouping wrapper around another oracle, or
    a remote oracle speaking a wire protocol).  No validation is
    possible; [fn] must be deterministic if [memo] is on (default).
    [memo_cap] bounds the memo as in {!of_netlist}.

    When [batch] is given, {!query_batch} routes through it instead of
    falling back to scalar [fn] calls: memo misses are deduplicated on
    their canonical keys and shipped in one [batch] call (which must
    return exactly one result per query, in order), so a transport that
    can pack many queries per round trip — like {!Remote_oracle} — gets
    word-at-a-time batching end to end. *)
val of_fn :
  ?budget:Budget.t ->
  ?memo:bool ->
  ?memo_cap:int ->
  ?batch:((string * bool) list list -> (string * bool) list list) ->
  ((string * bool) list -> (string * bool) list) ->
  t

(** [query t inputs] is the chip's output assignment for [inputs].
    @raise Invalid_argument on unknown or missing input names (strict
    netlist-backed oracles only).
    @raise Budget.Exhausted past the attached budget. *)
val query : t -> (string * bool) list -> (string * bool) list

(** [query_batch t qs] evaluates all of [qs] — duplicate and memoized
    vectors cost nothing; distinct misses are packed [block_words * 63]
    per engine pass and sharded across domains on large engines.
    Results are in request order.  The whole batch of misses is charged
    to the budget {e before} evaluation starts, so [Budget.Exhausted]
    trips without a partial parallel pass. *)
val query_batch :
  t -> (string * bool) list list -> (string * bool) list list

(** [relax t] is [t] with permissive validation (shares counters, memo
    and budget with [t]). *)
val relax : t -> t

(** [as_fn t] is [query t] as a bare closure, for legacy signatures. *)
val as_fn : t -> (string * bool) list -> (string * bool) list

(** Real evaluations performed (memo hits excluded). *)
val queries : t -> int

(** Queries answered from the memo. *)
val memo_hits : t -> int

(** Memo entries evicted under [~memo_cap] (0 when unbounded). *)
val memo_evictions : t -> int

(** Source (input + FF) names of a netlist-backed oracle, in declaration
    order; [[]] for black-box oracles. *)
val input_names : t -> string list
