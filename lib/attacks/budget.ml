type reason = Iterations | Queries | Deadline

let reason_name = function
  | Iterations -> "iterations"
  | Queries -> "queries"
  | Deadline -> "deadline"

let m_exhausted_iterations = Obs.Metrics.counter "budget.exhausted.iterations"
let m_exhausted_queries = Obs.Metrics.counter "budget.exhausted.queries"
let m_exhausted_deadline = Obs.Metrics.counter "budget.exhausted.deadline"
let h_time_to_exhaustion = Obs.Metrics.histogram "budget.time_to_exhaustion_s"

let m_exhausted = function
  | Iterations -> m_exhausted_iterations
  | Queries -> m_exhausted_queries
  | Deadline -> m_exhausted_deadline

exception Exhausted of reason

type t = {
  max_iterations : int option;
  max_queries : int option;
  deadline : float option; (* absolute, Unix.gettimeofday scale *)
  started : float;
  mutable n_iterations : int;
  mutable n_queries : int;
  mutable tripped : reason option;
}

let create ?max_iterations ?max_queries ?deadline_s () =
  (match max_iterations with
  | Some n when n < 0 -> invalid_arg "Budget.create: max_iterations < 0"
  | _ -> ());
  (match max_queries with
  | Some n when n < 0 -> invalid_arg "Budget.create: max_queries < 0"
  | _ -> ());
  let now = Unix.gettimeofday () in
  {
    max_iterations;
    max_queries;
    deadline = Option.map (fun s -> now +. s) deadline_s;
    started = now;
    n_iterations = 0;
    n_queries = 0;
    tripped = None;
  }

let unlimited () = create ()

let iterations t = t.n_iterations
let queries t = t.n_queries
let tripped t = t.tripped
let elapsed_s t = Unix.gettimeofday () -. t.started

let trip t r =
  t.tripped <- Some r;
  Obs.Metrics.incr (m_exhausted r);
  Obs.Metrics.observe h_time_to_exhaustion (elapsed_s t);
  if Obs.Trace.enabled () then
    Obs.Trace.instant
      ~args:
        [
          ("reason", Cjson.Str (reason_name r));
          ("iterations", Cjson.Int t.n_iterations);
          ("queries", Cjson.Int t.n_queries);
          ("elapsed_s", Cjson.Float (elapsed_s t));
        ]
      "budget.exhausted";
  raise (Exhausted r)

(* [>=], not [>]: a deadline of exactly zero (or any negative budget)
   must already be expired at the first check, so a zero-deadline attack
   performs no solver or oracle work at all instead of sneaking in
   however many iterations fit inside the clock's resolution. *)
let check t =
  match t.deadline with
  | Some d when Unix.gettimeofday () >= d -> trip t Deadline
  | _ -> ()

let tick t =
  check t;
  (match t.max_iterations with
  | Some m when t.n_iterations >= m -> trip t Iterations
  | _ -> ());
  t.n_iterations <- t.n_iterations + 1

let note_queries t n =
  if n < 0 then invalid_arg "Budget.note_queries: n < 0";
  t.n_queries <- t.n_queries + n;
  (match t.max_queries with
  | Some m when t.n_queries > m -> trip t Queries
  | _ -> ());
  check t
