type outcome = {
  recovered : Key.assignment;
  unresolved : string list;
  patterns_used : int;
}

let exec ?(samples_other = 8) ?seed ~budget ~locked ~key_inputs ~oracle () =
  if Netlist.ffs locked <> [] then
    invalid_arg "Sensitization.run: locked netlist must be combinational";
  let seed = match seed with Some s -> s | None -> Fuzz_seed.value () in
  let rng = Random.State.make [| seed; 0x534e |] in
  let x_pis =
    List.filter
      (fun pi ->
        not (List.mem (Netlist.node locked pi).Netlist.name key_inputs))
      (Netlist.inputs locked)
  in
  let x_names =
    List.map (fun pi -> (Netlist.node locked pi).Netlist.name) x_pis
  in
  let patterns = ref 0 in
  (* attacker-side simulation of the locked netlist: free, not a chip
     query — it never counts against the oracle budget *)
  let locked_sim = Sat_attack.oracle_of_netlist locked in
  let attack_bit target =
    let others = List.filter (fun k -> k <> target) key_inputs in
    let samples =
      List.init samples_other (fun _ ->
          List.map (fun k -> (k, Random.State.bool rng)) others)
    in
    (* One solver: shared X; for each sample j, two circuit copies with
       target = 0 / 1, other keys pinned to the sample; each pair must
       disagree on at least one output. *)
    let solver = Solver.create () in
    let x_vars = Hashtbl.create 32 in
    List.iter (fun n -> Hashtbl.replace x_vars n (Solver.new_var solver)) x_names;
    let copy sample target_value =
      let shared id =
        let nd = Netlist.node locked id in
        if nd.Netlist.kind = Netlist.Input then
          Hashtbl.find_opt x_vars nd.Netlist.name
        else None
      in
      let vars = Tseitin.encode solver locked ~shared in
      List.iter
        (fun (k, b) ->
          match Netlist.find locked k with
          | Some id -> ignore (Solver.add_clause solver [ Lit.make vars.(id) b ])
          | None -> ())
        ((target, target_value) :: sample);
      vars
    in
    List.iter
      (fun sample ->
        let v0 = copy sample false and v1 = copy sample true in
        let diffs =
          List.map
            (fun (_, d) ->
              let o = Solver.new_var solver in
              let ol = Lit.pos o
              and x = Lit.pos v0.(d)
              and y = Lit.pos v1.(d) in
              ignore (Solver.add_clause solver [ Lit.negate ol; x; y ]);
              ignore
                (Solver.add_clause solver
                   [ Lit.negate ol; Lit.negate x; Lit.negate y ]);
              ignore (Solver.add_clause solver [ ol; Lit.negate x; y ]);
              ignore (Solver.add_clause solver [ ol; x; Lit.negate y ]);
              ol)
            (Netlist.outputs locked)
        in
        ignore (Solver.add_clause solver diffs))
      samples;
    match Solver.solve solver with
    | Solver.Unsat -> None
    | Solver.Sat ->
      incr patterns;
      let dip =
        List.map (fun n -> (n, Solver.value solver (Hashtbl.find x_vars n))) x_names
      in
      let chip = Oracle.query oracle dip in
      (* Infer the bit from properly sensitized outputs: an output is
         trustworthy only if, at this input pattern, it flips with the
         target and is *independent of the other key bits* (same value
         across every sampled other-key vector, for both target values) —
         the classic muting requirement.  Outputs that interfere with
         other key-gates are discarded; if none survives, the bit is
         genuinely not sensitizable in isolation. *)
      let sims =
        List.map
          (fun sample ->
            let sim v = locked_sim (dip @ ((target, v) :: sample)) in
            (sim false, sim true))
          samples
      in
      let muted_pos =
        List.filter_map
          (fun (po, _) ->
            let v0s = List.map (fun (s0, _) -> List.assoc po s0) sims in
            let v1s = List.map (fun (_, s1) -> List.assoc po s1) sims in
            match (v0s, v1s) with
            | v0 :: r0, v1 :: r1
              when v0 <> v1
                   && List.for_all (( = ) v0) r0
                   && List.for_all (( = ) v1) r1 ->
              Some (po, v0, v1)
            | _, _ -> None)
          (Netlist.outputs locked
          |> List.map (fun (po, _) -> (po, ())))
      in
      (match muted_pos with
      | [] -> None
      | _ ->
        let implied =
          List.map
            (fun (po, v0, _v1) ->
              match List.assoc_opt po chip with
              | Some w -> Some (w <> v0)  (* true: target = 1 *)
              | None -> None)
            muted_pos
        in
        match List.filter_map Fun.id implied with
        | [] -> None
        | b :: rest when List.for_all (( = ) b) rest -> Some (target, b)
        | _ -> None)
  in
  let recovered = ref [] and unresolved = ref [] in
  List.iter
    (fun k ->
      Budget.tick budget;
      match attack_bit k with
      | Some bit -> recovered := bit :: !recovered
      | None -> unresolved := k :: !unresolved)
    key_inputs;
  {
    recovered = List.rev !recovered;
    unresolved = List.rev !unresolved;
    patterns_used = !patterns;
  }

let run ?samples_other ?seed ~locked ~key_inputs ~oracle () =
  exec ?samples_other ?seed
    ~budget:(Budget.unlimited ())
    ~locked ~key_inputs
    ~oracle:(Oracle.of_fn oracle)
    ()
