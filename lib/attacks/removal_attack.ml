type removal_outcome = {
  removed : int list;
  restored : Netlist.t option;
  candidates_tried : int;
  success : bool;
}

(* Sample-based oracle check of a candidate netlist (key inputs, if any
   remain, read false).  The candidate is evaluated through its own
   batched engine oracle; the chip is queried relaxed, since a restored
   netlist need not expose exactly the chip's pin list. *)
let agrees_with_oracle ?(samples = 128) ?seed net ~oracle =
  let seed = match seed with Some s -> s | None -> Fuzz_seed.value () in
  let rng = Random.State.make [| seed; 0x524d |] in
  let names =
    List.map (fun pi -> (Netlist.node net pi).Netlist.name) (Netlist.inputs net)
  in
  let dips = ref [] in
  for _ = 1 to samples do
    dips := List.map (fun n -> (n, Random.State.bool rng)) names :: !dips
  done;
  let dips = List.rev !dips in
  let expected = Oracle.query_batch (Oracle.relax oracle) dips in
  let got = Oracle.query_batch (Oracle.of_netlist net) dips in
  List.for_all2
    (fun exp g ->
      not
        (List.exists
           (fun (po, v) ->
             match List.assoc_opt po g with Some w -> v <> w | None -> false)
           exp))
    expected got

let exec ?(samples = 128) ?(eps = 0.05) ?(max_candidates = 12) ?seed ~budget
    locked ~oracle =
  let probs = Signal_prob.estimate ?seed locked in
  let candidates = Signal_prob.skewed ~eps locked probs in
  let rec try_candidates tried = function
    | [] -> { removed = []; restored = None; candidates_tried = tried; success = false }
    | _ when tried >= max_candidates ->
      { removed = []; restored = None; candidates_tried = tried; success = false }
    | (id, p) :: rest ->
      Budget.tick budget;
      let attempt = Netlist.copy locked in
      let dominant = p >= 0.5 in
      let c = Netlist.add_const attempt dominant in
      Netlist.replace_uses attempt ~old_id:id ~new_id:c;
      Netlist.kill attempt id;
      let cleaned, _report = Synth.optimize attempt in
      if agrees_with_oracle ~samples ?seed cleaned ~oracle then
        {
          removed = [ id ];
          restored = Some cleaned;
          candidates_tried = tried + 1;
          success = true;
        }
      else try_candidates (tried + 1) rest
  in
  try_candidates 0 candidates

let run ?samples ?eps ?max_candidates locked ~oracle =
  exec ?samples ?eps ?max_candidates
    ~budget:(Budget.unlimited ())
    locked
    ~oracle:(Oracle.of_fn oracle)

let strip_tdbs (tdk : Tdk.t) =
  let net = Netlist.copy tdk.Tdk.locked.Locked.net in
  List.iter
    (fun site ->
      (* Reconnect the functional key-gate (the TDB MUX's non-chain input)
         straight to the flip-flop and drop the chain. *)
      let mux = Netlist.node net site.Tdk.tdb_mux in
      let chain_last =
        match List.rev site.Tdk.tdb_nodes with
        | last :: _ -> last
        | [] -> -1
      in
      let direct =
        if mux.Netlist.fanins.(1) = chain_last then mux.Netlist.fanins.(2)
        else mux.Netlist.fanins.(1)
      in
      Netlist.replace_uses net ~old_id:site.Tdk.tdb_mux ~new_id:direct;
      Netlist.kill net site.Tdk.tdb_mux;
      List.iter (fun id -> Netlist.kill net id) site.Tdk.tdb_nodes;
      (* The delay key now feeds nothing. *)
      match Netlist.find net site.Tdk.delay_key with
      | Some id -> Netlist.kill net id
      | None -> ())
    tdk.Tdk.sites;
  let net, _ = Netlist.compact net in
  Netlist.validate net;
  let func_keys = List.map (fun s -> s.Tdk.func_key) tdk.Tdk.sites in
  {
    Locked.net;
    scheme = "tdk-stripped";
    key_inputs = func_keys;
    correct_key =
      List.filter
        (fun (k, _) -> List.mem k func_keys)
        tdk.Tdk.locked.Locked.correct_key;
  }

type gk_guess_outcome = {
  guesses_tried : int;
  total_guesses : int;
  recovered : Netlist.t option;
}

let guess_gk_o ?(samples = 128) ?seed ~budget stripped ~gks ~oracle =
  let seed = match seed with Some s -> s | None -> Fuzz_seed.value () in
  let n = List.length gks in
  if n > 20 then invalid_arg "Removal_attack.guess_gk: too many GKs to enumerate";
  let total = 1 lsl n in
  let rec try_guess g =
    if g >= total then { guesses_tried = total; total_guesses = total; recovered = None }
    else begin
      Budget.tick budget;
      let attempt = Netlist.copy stripped in
      List.iteri
        (fun i (out, x) ->
          let as_buffer = g land (1 lsl i) <> 0 in
          let repl =
            if as_buffer then
              Netlist.add_gate attempt Cell.Buf [| x |]
            else Netlist.add_gate attempt Cell.Not [| x |]
          in
          Netlist.replace_uses attempt ~old_id:out ~new_id:repl)
        gks;
      let cleaned, _ = Synth.optimize attempt in
      if agrees_with_oracle ~samples ~seed:(seed + g) cleaned ~oracle then
        { guesses_tried = g + 1; total_guesses = total; recovered = Some cleaned }
      else try_guess (g + 1)
    end
  in
  try_guess 0

let guess_gk ?samples ?seed stripped ~gks ~oracle =
  guess_gk_o ?samples ?seed
    ~budget:(Budget.unlimited ())
    stripped ~gks
    ~oracle:(Oracle.of_fn oracle)
