type removal_outcome = {
  removed : int list;
  restored : Netlist.t option;
  candidates_tried : int;
  success : bool;
}

(* Sample-based oracle check of a candidate netlist (key inputs, if any
   remain, read false). *)
let agrees_with_oracle ?(samples = 128) ?(seed = 3) net ~oracle =
  let rng = Random.State.make [| seed; 0x524d |] in
  let names =
    List.map (fun pi -> (Netlist.node net pi).Netlist.name) (Netlist.inputs net)
  in
  let ok = ref true in
  for _ = 1 to samples do
    if !ok then begin
      let dip = List.map (fun n -> (n, Random.State.bool rng)) names in
      let expected = oracle dip in
      let got = Sat_attack.oracle_of_netlist net dip in
      if
        List.exists
          (fun (po, v) ->
            match List.assoc_opt po got with Some w -> v <> w | None -> false)
          expected
      then ok := false
    end
  done;
  !ok

let run ?(samples = 128) ?(eps = 0.05) ?(max_candidates = 12) locked ~oracle =
  let probs = Signal_prob.estimate locked in
  let candidates = Signal_prob.skewed ~eps locked probs in
  let rec try_candidates tried = function
    | [] -> { removed = []; restored = None; candidates_tried = tried; success = false }
    | _ when tried >= max_candidates ->
      { removed = []; restored = None; candidates_tried = tried; success = false }
    | (id, p) :: rest ->
      let attempt = Netlist.copy locked in
      let dominant = p >= 0.5 in
      let c = Netlist.add_const attempt dominant in
      Netlist.replace_uses attempt ~old_id:id ~new_id:c;
      Netlist.kill attempt id;
      let cleaned, _report = Synth.optimize attempt in
      if agrees_with_oracle ~samples cleaned ~oracle then
        {
          removed = [ id ];
          restored = Some cleaned;
          candidates_tried = tried + 1;
          success = true;
        }
      else try_candidates (tried + 1) rest
  in
  try_candidates 0 candidates

let strip_tdbs (tdk : Tdk.t) =
  let net = Netlist.copy tdk.Tdk.locked.Locked.net in
  List.iter
    (fun site ->
      (* Reconnect the functional key-gate (the TDB MUX's non-chain input)
         straight to the flip-flop and drop the chain. *)
      let mux = Netlist.node net site.Tdk.tdb_mux in
      let chain_last =
        match List.rev site.Tdk.tdb_nodes with
        | last :: _ -> last
        | [] -> -1
      in
      let direct =
        if mux.Netlist.fanins.(1) = chain_last then mux.Netlist.fanins.(2)
        else mux.Netlist.fanins.(1)
      in
      Netlist.replace_uses net ~old_id:site.Tdk.tdb_mux ~new_id:direct;
      Netlist.kill net site.Tdk.tdb_mux;
      List.iter (fun id -> Netlist.kill net id) site.Tdk.tdb_nodes;
      (* The delay key now feeds nothing. *)
      match Netlist.find net site.Tdk.delay_key with
      | Some id -> Netlist.kill net id
      | None -> ())
    tdk.Tdk.sites;
  let net, _ = Netlist.compact net in
  Netlist.validate net;
  let func_keys = List.map (fun s -> s.Tdk.func_key) tdk.Tdk.sites in
  {
    Locked.net;
    scheme = "tdk-stripped";
    key_inputs = func_keys;
    correct_key =
      List.filter
        (fun (k, _) -> List.mem k func_keys)
        tdk.Tdk.locked.Locked.correct_key;
  }

type gk_guess_outcome = {
  guesses_tried : int;
  total_guesses : int;
  recovered : Netlist.t option;
}

let guess_gk ?(samples = 128) stripped ~gks ~oracle =
  let n = List.length gks in
  if n > 20 then invalid_arg "Removal_attack.guess_gk: too many GKs to enumerate";
  let total = 1 lsl n in
  let rec try_guess g =
    if g >= total then { guesses_tried = total; total_guesses = total; recovered = None }
    else begin
      let attempt = Netlist.copy stripped in
      List.iteri
        (fun i (out, x) ->
          let as_buffer = g land (1 lsl i) <> 0 in
          let repl =
            if as_buffer then
              Netlist.add_gate attempt Cell.Buf [| x |]
            else Netlist.add_gate attempt Cell.Not [| x |]
          in
          Netlist.replace_uses attempt ~old_id:out ~new_id:repl)
        gks;
      let cleaned, _ = Synth.optimize attempt in
      if agrees_with_oracle ~samples ~seed:(17 + g) cleaned ~oracle then
        { guesses_tried = g + 1; total_guesses = total; recovered = Some cleaned }
      else try_guess (g + 1)
    end
  in
  try_guess 0
