type behaviour = [ `Buffer | `Inverter | `Unknown ]

type verdict = {
  v_mux : int;
  v_ppo : string;
  v_behaviour : behaviour;
  v_agree_buffer : int;
  v_agree_inverter : int;
  v_samples : int;
}

let exec ?(samples = 64) ?seed ?(unknown = []) ~budget ~stripped_comb ~oracle
    () =
  if Netlist.ffs stripped_comb <> [] then
    invalid_arg "Scan_attack.run: combinationalize the stripped netlist first";
  let seed = match seed with Some s -> s | None -> Fuzz_seed.value () in
  let located = Enhanced_removal.locate stripped_comb in
  let rng = Random.State.make [| seed; 0x5343 |] in
  let pis = Netlist.inputs stripped_comb in
  (* which pseudo-output each GK drives *)
  let ppo_of mux =
    List.find_map
      (fun (po, d) -> if d = mux then Some po else None)
      (Netlist.outputs stripped_comb)
  in
  let is_unknown = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace is_unknown n ()) unknown;
  let sample_inputs () =
    List.map
      (fun pi ->
        let name = (Netlist.node stripped_comb pi).Netlist.name in
        (* pins the attacker cannot drive on the chip are stuck at a
           guess; everything else (PIs, scan-loaded state) is exercised *)
        if Hashtbl.mem is_unknown name then (pi, name, false)
        else (pi, name, Random.State.bool rng))
      pis
  in
  let eng = Netlist.Engine.get stripped_comb in
  let w = Netlist.Engine.word_bits in
  let words = Array.make (Netlist.num_nodes stripped_comb) 0 in
  (* the chip cannot be asked about the stripped netlist's key pins —
     the undriveable-pin guess is exactly the partial-query escape *)
  let chip = Oracle.relax oracle in
  List.filter_map
    (fun gk ->
      match ppo_of gk.Enhanced_removal.mux with
      | None -> None
      | Some ppo ->
        Budget.tick budget;
        let assignments = ref [] in
        for _ = 1 to samples do
          assignments := sample_inputs () :: !assignments
        done;
        let assignments = Array.of_list (List.rev !assignments) in
        (* stripped-side x values: 63 sample lanes per engine pass *)
        let x_vals = Array.make samples false in
        let start = ref 0 in
        while !start < samples do
          let lanes = min w (samples - !start) in
          List.iter (fun pi -> words.(pi) <- 0) pis;
          for j = 0 to lanes - 1 do
            List.iter
              (fun (pi, _, v) ->
                if v then words.(pi) <- words.(pi) lor (1 lsl j))
              assignments.(!start + j)
          done;
          let values = Netlist.Engine.eval_words eng (Array.get words) in
          for j = 0 to lanes - 1 do
            x_vals.(!start + j) <-
              (values.(gk.Enhanced_removal.x) lsr j) land 1 = 1
          done;
          start := !start + lanes
        done;
        let chips =
          Oracle.query_batch chip
            (Array.to_list
               (Array.map
                  (fun a -> List.map (fun (_, name, v) -> (name, v)) a)
                  assignments))
        in
        let agree_buf = ref 0 and agree_inv = ref 0 in
        List.iteri
          (fun i resp ->
            match List.assoc_opt ppo resp with
            | Some captured ->
              let x = x_vals.(i) in
              if captured = x then incr agree_buf;
              if captured = not x then incr agree_inv
            | None -> ())
          chips;
        let v_behaviour =
          if !agree_buf = samples then `Buffer
          else if !agree_inv = samples then `Inverter
          else `Unknown
        in
        Some
          {
            v_mux = gk.Enhanced_removal.mux;
            v_ppo = ppo;
            v_behaviour;
            v_agree_buffer = !agree_buf;
            v_agree_inverter = !agree_inv;
            v_samples = samples;
          })
    located

let run ?samples ?(seed = 29) ?unknown ~stripped_comb ~oracle () =
  exec ?samples ~seed ?unknown
    ~budget:(Budget.unlimited ())
    ~stripped_comb
    ~oracle:(Oracle.of_fn oracle)
    ()

let decrypt ~stripped_comb verdicts =
  if
    verdicts = []
    || List.exists (fun v -> v.v_behaviour = `Unknown) verdicts
  then None
  else begin
    let net = Netlist.copy stripped_comb in
    let located = Enhanced_removal.locate net in
    List.iter
      (fun v ->
        match
          List.find_opt (fun g -> g.Enhanced_removal.mux = v.v_mux) located
        with
        | None -> ()
        | Some gk ->
          let repl =
            match v.v_behaviour with
            | `Buffer -> Netlist.add_gate net Cell.Buf [| gk.Enhanced_removal.x |]
            | `Inverter -> Netlist.add_gate net Cell.Not [| gk.Enhanced_removal.x |]
            | `Unknown -> assert false
          in
          Netlist.replace_uses net ~old_id:v.v_mux ~new_id:repl)
      verdicts;
    let cleaned, _ = Synth.optimize net in
    Some cleaned
  end
