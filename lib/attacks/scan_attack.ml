type behaviour = [ `Buffer | `Inverter | `Unknown ]

type verdict = {
  v_mux : int;
  v_ppo : string;
  v_behaviour : behaviour;
  v_agree_buffer : int;
  v_agree_inverter : int;
  v_samples : int;
}

let run ?(samples = 64) ?(seed = 29) ?(unknown = []) ~stripped_comb ~oracle
    () =
  if Netlist.ffs stripped_comb <> [] then
    invalid_arg "Scan_attack.run: combinationalize the stripped netlist first";
  let located = Enhanced_removal.locate stripped_comb in
  let rng = Random.State.make [| seed; 0x5343 |] in
  let pis = Netlist.inputs stripped_comb in
  (* which pseudo-output each GK drives *)
  let ppo_of mux =
    List.find_map
      (fun (po, d) -> if d = mux then Some po else None)
      (Netlist.outputs stripped_comb)
  in
  let is_unknown = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace is_unknown n ()) unknown;
  let sample_inputs () =
    List.map
      (fun pi ->
        let name = (Netlist.node stripped_comb pi).Netlist.name in
        (* pins the attacker cannot drive on the chip are stuck at a
           guess; everything else (PIs, scan-loaded state) is exercised *)
        if Hashtbl.mem is_unknown name then (pi, name, false)
        else (pi, name, Random.State.bool rng))
      pis
  in
  List.filter_map
    (fun gk ->
      match ppo_of gk.Enhanced_removal.mux with
      | None -> None
      | Some ppo ->
        let agree_buf = ref 0 and agree_inv = ref 0 in
        for _ = 1 to samples do
          let assignment = sample_inputs () in
          let values =
            Netlist.eval_comb stripped_comb (fun id ->
                let _, _, v =
                  List.find (fun (pi, _, _) -> pi = id) assignment
                in
                v)
          in
          let x = values.(gk.Enhanced_removal.x) in
          let chip =
            oracle (List.map (fun (_, name, v) -> (name, v)) assignment)
          in
          match List.assoc_opt ppo chip with
          | Some captured ->
            if captured = x then incr agree_buf;
            if captured = not x then incr agree_inv
          | None -> ()
        done;
        let v_behaviour =
          if !agree_buf = samples then `Buffer
          else if !agree_inv = samples then `Inverter
          else `Unknown
        in
        Some
          {
            v_mux = gk.Enhanced_removal.mux;
            v_ppo = ppo;
            v_behaviour;
            v_agree_buffer = !agree_buf;
            v_agree_inverter = !agree_inv;
            v_samples = samples;
          })
    located

let decrypt ~stripped_comb verdicts =
  if
    verdicts = []
    || List.exists (fun v -> v.v_behaviour = `Unknown) verdicts
  then None
  else begin
    let net = Netlist.copy stripped_comb in
    let located = Enhanced_removal.locate net in
    List.iter
      (fun v ->
        match
          List.find_opt (fun g -> g.Enhanced_removal.mux = v.v_mux) located
        with
        | None -> ()
        | Some gk ->
          let repl =
            match v.v_behaviour with
            | `Buffer -> Netlist.add_gate net Cell.Buf [| gk.Enhanced_removal.x |]
            | `Inverter -> Netlist.add_gate net Cell.Not [| gk.Enhanced_removal.x |]
            | `Unknown -> assert false
          in
          Netlist.replace_uses net ~old_id:v.v_mux ~new_id:repl)
      verdicts;
    let cleaned, _ = Synth.optimize net in
    Some cleaned
  end
