(** The scan-based attack of Sec. VI's BIST discussion.

    "Our GK may has a weakness when there are built-in self-test (BIST)
    structures such as scan-chain in the circuit [...] the GK that works
    solely to encrypt the input of FF at the end of the path can provide
    only limited security."

    With scan access the attacker can load an arbitrary flip-flop state,
    apply primary inputs, pulse the clock and shift the captured state
    out — a direct oracle for the chip's {i next-state function}.  Since
    the working chip operates with the correct (transitional) key, every
    GK behaves as its glitch-time function there.  The attacker then needs
    no SAT solver at all: for each located GK, evaluate its data cone [x]
    on the stolen netlist, compare the chip's captured bit against [x] and
    [x'], and read off buffer-vs-inverter directly.

    The hybrid counter-measure (Sec. VI): put conventional XOR key-gates
    {i inside the GK-encrypted cones}.  The attacker can no longer
    evaluate [x] without knowing those key bits, the hypothesis test loses
    its reference value, and the verdict degrades to [`Unknown] — while
    the SAT attack that would recover the XOR bits stays starved by the
    GKs. *)

type behaviour = [ `Buffer | `Inverter | `Unknown ]

type verdict = {
  v_mux : int;          (** the GK's output node in the stripped netlist *)
  v_ppo : string;       (** the pseudo-PO (FF D pin) the GK drives *)
  v_behaviour : behaviour;
  v_agree_buffer : int; (** samples agreeing with the buffer hypothesis *)
  v_agree_inverter : int;
  v_samples : int;
}

(** [run ?samples ?seed ?unknown ~stripped_comb ~oracle ()] locates the
    GKs in [stripped_comb] (the combinationalized, KEYGEN-stripped locked
    netlist) and tests each against the scan capture oracle.  Inputs
    listed in [unknown] are key pins the attacker cannot drive on the chip
    (a hybrid design's XOR keys); the attack has to guess them (constant
    false), which is what blinds it.  All other inputs — primary inputs
    and scan-loadable pseudo inputs — are sampled randomly.  [oracle]
    answers for the functioning chip (its pseudo-outputs are the real
    captures). *)
val run :
  ?samples:int ->
  ?seed:int ->
  ?unknown:string list ->
  stripped_comb:Netlist.t ->
  oracle:Sat_attack.oracle ->
  unit ->
  verdict list

(** Framework variant of {!run}: one budget iteration per located GK,
    chip captures are drawn through [oracle] in counted, memoized
    batches (the stripped-netlist side is evaluated on the bit-parallel
    engine, 63 samples per pass).  [seed] defaults to the session
    {!Fuzz_seed}. *)
val exec :
  ?samples:int ->
  ?seed:int ->
  ?unknown:string list ->
  budget:Budget.t ->
  stripped_comb:Netlist.t ->
  oracle:Oracle.t ->
  unit ->
  verdict list

(** [decrypt ~stripped_comb verdicts] replaces each decided GK by the
    revealed buffer/inverter and sweeps; [None] when any verdict is
    [`Unknown]. *)
val decrypt : stripped_comb:Netlist.t -> verdict list -> Netlist.t option
