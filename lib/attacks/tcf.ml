let unroll locked ~key_inputs =
  if Netlist.ffs locked <> [] then
    invalid_arg "Tcf.unroll: locked netlist must be combinational";
  let is_key k = List.mem k key_inputs in
  let out = Netlist.create (Netlist.name locked ^ "_2frame") in
  let key_ids = Hashtbl.create 8 in
  List.iter
    (fun k -> Hashtbl.replace key_ids k (Netlist.add_input out k))
    key_inputs;
  let copy_frame tag =
    let map = Hashtbl.create 64 in
    let rec import id =
      match Hashtbl.find_opt map id with
      | Some id' -> id'
      | None ->
        let nd = Netlist.node locked id in
        let id' =
          match nd.Netlist.kind with
          | Netlist.Input ->
            if is_key nd.Netlist.name then Hashtbl.find key_ids nd.Netlist.name
            else Netlist.add_input out (tag ^ "_" ^ nd.Netlist.name)
          | Netlist.Const b -> Netlist.add_const out b
          | Netlist.Gate fn ->
            Netlist.add_gate out ?cell:nd.Netlist.cell fn
              (Array.map import nd.Netlist.fanins)
          | Netlist.Lut truth ->
            Netlist.add_lut out ~truth:(Array.copy truth)
              (Array.map import nd.Netlist.fanins)
          | Netlist.Ff | Netlist.Dead ->
            invalid_arg "Tcf.unroll: unexpected node"
        in
        Hashtbl.replace map id id';
        id'
    in
    List.iter
      (fun (po, d) -> Netlist.add_output out (tag ^ "_" ^ po) (import d))
      (Netlist.outputs locked)
  in
  copy_frame "f0";
  copy_frame "f1";
  Netlist.validate out;
  out

type outcome = { sat : Sat_attack.outcome; frame_inputs : int }

(* One unrolled query fans out into one chip query per frame. *)
let frame_oracle oracle =
  let strip_tag name = String.sub name 3 (String.length name - 3) in
  fun inputs ->
    let frame tag =
      let sub =
        List.filter_map
          (fun (n, v) ->
            if String.length n > 3 && String.sub n 0 3 = tag ^ "_" then
              Some (strip_tag n, v)
            else None)
          inputs
      in
      List.map (fun (po, v) -> (tag ^ "_" ^ po, v)) (oracle sub)
    in
    frame "f0" @ frame "f1"

let exec ~budget ~locked ~key_inputs ~oracle () =
  let two = unroll locked ~key_inputs in
  let sat =
    Sat_attack.exec ~budget ~locked:two ~key_inputs
      ~oracle:(Oracle.of_fn (frame_oracle (Oracle.query oracle)))
      ()
  in
  { sat; frame_inputs = List.length (Netlist.inputs two) }

let two_frame_attack ?max_iterations ~locked ~key_inputs ~oracle () =
  let two = unroll locked ~key_inputs in
  let sat =
    Sat_attack.run ?max_iterations ~locked:two ~key_inputs
      ~oracle:(frame_oracle oracle) ()
  in
  { sat; frame_inputs = List.length (Netlist.inputs two) }
