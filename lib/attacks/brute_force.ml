type outcome = { keys_tested : int; found : Key.assignment option }

let exec ?(samples = 64) ?seed ~budget ~locked ~key_inputs ~oracle () =
  let keys = Key.enumerate key_inputs in
  let rec go tested = function
    | [] -> { keys_tested = tested; found = None }
    | key :: rest ->
      Budget.tick budget;
      if
        Sat_attack.verify_key_o ~samples ?seed ~locked ~key_inputs ~oracle key
        = 0
      then { keys_tested = tested + 1; found = Some key }
      else go (tested + 1) rest
  in
  go 0 keys

let run ?samples ?seed ~locked ~key_inputs ~oracle () =
  exec ?samples ?seed
    ~budget:(Budget.unlimited ())
    ~locked ~key_inputs
    ~oracle:(Oracle.of_fn oracle)
    ()
