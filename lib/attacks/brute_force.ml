type outcome = { keys_tested : int; found : Key.assignment option }

let run ?(samples = 64) ?(seed = 19) ~locked ~key_inputs ~oracle () =
  let keys = Key.enumerate key_inputs in
  let rec go tested = function
    | [] -> { keys_tested = tested; found = None }
    | key :: rest ->
      if
        Sat_attack.verify_key ~samples ~seed ~locked ~key_inputs ~oracle key = 0
      then { keys_tested = tested + 1; found = Some key }
      else go (tested + 1) rest
  in
  go 0 keys
