let estimate ?(samples = 2048) ?(seed = 11) ?(fixed = []) net =
  if Netlist.ffs net <> [] then
    invalid_arg "Signal_prob.estimate: netlist must be combinational";
  let rng = Random.State.make [| seed; 0x5350 |] in
  let n = Netlist.num_nodes net in
  let ones = Array.make n 0 in
  let fixed_of = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace fixed_of k v) fixed;
  let pis = Netlist.inputs net in
  for _ = 1 to samples do
    let draw = Hashtbl.create 32 in
    List.iter
      (fun pi ->
        let name = (Netlist.node net pi).Netlist.name in
        let v =
          match Hashtbl.find_opt fixed_of name with
          | Some b -> b
          | None -> Random.State.bool rng
        in
        Hashtbl.replace draw pi v)
      pis;
    let values = Netlist.eval_comb net (Hashtbl.find draw) in
    Array.iteri (fun id v -> if v then ones.(id) <- ones.(id) + 1) values
  done;
  Array.map (fun c -> float_of_int c /. float_of_int samples) ones

let exact ?(max_inputs = 24) net =
  if Netlist.ffs net <> [] then
    invalid_arg "Signal_prob.exact: netlist must be combinational";
  let pis = Netlist.inputs net in
  if List.length pis > max_inputs then
    invalid_arg "Signal_prob.exact: too many primary inputs for exact analysis";
  let man = Bdd.manager ~nvars:(List.length pis) in
  let index = Hashtbl.create 16 in
  List.iteri (fun i pi -> Hashtbl.replace index pi i) pis;
  let bdds = Bdd.of_netlist man net ~var_of_input:(Hashtbl.find index) in
  Array.map (Bdd.prob man) bdds

let skewed ?(eps = 0.02) net probs =
  let fanouts = Netlist.fanout_table net in
  let candidates = ref [] in
  Array.iteri
    (fun id p ->
      let nd = Netlist.node net id in
      if
        Netlist.is_comb nd
        && fanouts.(id) <> []
        && (p <= eps || p >= 1.0 -. eps)
      then candidates := (id, p) :: !candidates)
    probs;
  List.sort
    (fun (_, a) (_, b) ->
      compare (min a (1.0 -. a)) (min b (1.0 -. b)))
    !candidates
