let estimate ?(samples = 2048) ?seed ?(fixed = []) net =
  if Netlist.ffs net <> [] then
    invalid_arg "Signal_prob.estimate: netlist must be combinational";
  let seed = match seed with Some s -> s | None -> Fuzz_seed.value () in
  let rng = Random.State.make [| seed; 0x5350 |] in
  let n = Netlist.num_nodes net in
  let ones = Array.make n 0 in
  let fixed_of = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace fixed_of k v) fixed;
  let eng = Netlist.Engine.get net in
  let srcs = Netlist.Engine.sources eng in
  let w = Netlist.Engine.word_bits in
  (* One engine pass evaluates a word of independent samples; the trailing
     partial word is masked off so exactly [samples] lanes are counted.
     Counting runs over the dense slot buffer and is scattered back to
     node-id indexing only once at the end. *)
  let scratch = Netlist.Engine.create_scratch eng in
  let slot_of = Netlist.Engine.slot_of_id eng in
  let n_slots = Netlist.Engine.n_slots eng in
  let slot_ones = Array.make n_slots 0 in
  let words = Array.make n 0 in
  let remaining = ref samples in
  while !remaining > 0 do
    let lanes = min w !remaining in
    Array.iter
      (fun pi ->
        let word =
          match Hashtbl.find_opt fixed_of (Netlist.node net pi).Netlist.name with
          | Some true -> -1
          | Some false -> 0
          | None -> Netlist.Engine.random_word rng
        in
        words.(pi) <- word)
      srcs;
    let values = Netlist.Engine.eval_words_into ~scratch eng (Array.get words) in
    let mask = if lanes = w then -1 else (1 lsl lanes) - 1 in
    for s = 0 to n_slots - 1 do
      slot_ones.(s) <-
        slot_ones.(s) + Netlist.Engine.popcount (values.(s) land mask)
    done;
    remaining := !remaining - lanes
  done;
  for id = 0 to n - 1 do
    if slot_of.(id) >= 0 then ones.(id) <- slot_ones.(slot_of.(id))
  done;
  Array.map (fun c -> float_of_int c /. float_of_int samples) ones

let exact ?(max_inputs = 24) net =
  if Netlist.ffs net <> [] then
    invalid_arg "Signal_prob.exact: netlist must be combinational";
  let pis = Netlist.inputs net in
  if List.length pis > max_inputs then
    invalid_arg "Signal_prob.exact: too many primary inputs for exact analysis";
  let man = Bdd.manager ~nvars:(List.length pis) in
  let index = Hashtbl.create 16 in
  List.iteri (fun i pi -> Hashtbl.replace index pi i) pis;
  let bdds = Bdd.of_netlist man net ~var_of_input:(Hashtbl.find index) in
  Array.map (Bdd.prob man) bdds

let skewed ?(eps = 0.02) net probs =
  let fanouts = Netlist.fanout_table net in
  let candidates = ref [] in
  Array.iteri
    (fun id p ->
      let nd = Netlist.node net id in
      if
        Netlist.is_comb nd
        && fanouts.(id) <> []
        && (p <= eps || p >= 1.0 -. eps)
      then candidates := (id, p) :: !candidates)
    probs;
  List.sort
    (fun (_, a) (_, b) ->
      compare (min a (1.0 -. a)) (min b (1.0 -. b)))
    !candidates
