# Convenience targets; dune is the real build system.

.PHONY: all build test bench bench-quick bench-eval campaign-smoke fuzz fuzz-smoke check examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Evaluation-engine micro-benchmarks; verifies engine/seed-path equivalence
# on every benchmark and writes BENCH_eval.json.
bench-eval:
	dune exec bench/bench_eval.exe

# Tiny campaign matrix end-to-end with the real executor: run, resume,
# verify the resume skips everything.  Seconds, suitable for CI.
campaign-smoke:
	dune exec bench/campaign_smoke.exe

# Differential fuzzing: engine vs reference vs timing sim vs SAT/BDD,
# plus locking-scheme metamorphic properties.  Failures shrink to
# replayable .bench/.stim pairs; rerun with GKLOCK_SEED=<n> to replay.
fuzz:
	dune exec bin/gklock_cli.exe -- fuzz --cases 2000

# Time-boxed variant for CI: whatever fits in ~10 seconds.
fuzz-smoke:
	dune exec bin/gklock_cli.exe -- fuzz --cases 100000 --time 10 --quiet

# Everything a PR must keep green: full build (libs, CLI, examples,
# benches) plus the test suite, the campaign smoke and a fuzz smoke.
check: build test campaign-smoke fuzz-smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/attack_resilience.exe
	dune exec examples/timing_exploration.exe
	dune exec examples/hybrid_locking.exe
	dune exec examples/withholding.exe
	dune exec examples/scan_bist.exe

clean:
	dune clean
