# Convenience targets; dune is the real build system.

.PHONY: all build test bench bench-quick bench-eval bench-attacks bench-eval-smoke bench-attacks-smoke bench-smoke campaign-smoke fuzz fuzz-smoke trace-smoke serve-smoke check examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Evaluation-engine micro-benchmarks; verifies engine/seed-path equivalence
# on every benchmark and writes BENCH_eval.json.
bench-eval:
	dune exec bench/bench_eval.exe

# Attack-framework benchmarks: oracle throughput (batched engine path
# vs. the pre-framework assoc-list oracle, equivalence-checked, must be
# >= 10x) plus per-attack wall time; writes BENCH_attacks.json.
bench-attacks:
	dune exec bench/bench_attacks.exe

# CI-sized variants; they write outside the tree so the committed
# BENCH_*.json stay full-run artifacts.  Both self-check their emitted
# JSON against the repo parser; bench_eval asserts the block path never
# loses to the single-word path, bench_attacks asserts the batched
# oracle is >= 10x the assoc baseline and >= 1x scalar on the largest
# circuit in the run.
bench-eval-smoke:
	dune exec bench/bench_eval.exe -- --smoke /tmp/BENCH_eval_smoke.json

bench-attacks-smoke:
	dune exec bench/bench_attacks.exe -- --smoke /tmp/BENCH_attacks_smoke.json

bench-smoke: bench-eval-smoke bench-attacks-smoke

# Tiny campaign matrix end-to-end with the real executor: run, resume,
# verify the resume skips everything.  Seconds, suitable for CI.
campaign-smoke:
	dune exec bench/campaign_smoke.exe

# Differential fuzzing: engine vs reference vs timing sim vs SAT/BDD,
# plus locking-scheme metamorphic properties.  Failures shrink to
# replayable .bench/.stim pairs; rerun with GKLOCK_SEED=<n> to replay.
fuzz:
	dune exec bin/gklock_cli.exe -- fuzz --cases 2000

# Time-boxed variant for CI: whatever fits in ~10 seconds.
fuzz-smoke:
	dune exec bin/gklock_cli.exe -- fuzz --cases 100000 --time 10 --quiet

# Observability smoke: lock a benchmark, run the SAT attack under
# `gklock trace`, and validate the JSONL it wrote — every span closed,
# timestamps monotone (`gklock trace` exits non-zero otherwise).
trace-smoke:
	dune exec bin/gklock_cli.exe -- gen tiny -o /tmp/gklock_ts_oracle.bench
	dune exec bin/gklock_cli.exe -- encrypt tiny --scheme xor -n 4 -o /tmp/gklock_ts_locked.bench
	dune exec bin/gklock_cli.exe -- trace --out /tmp/gklock_ts.jsonl attack /tmp/gklock_ts_locked.bench --keys xk0,xk1,xk2,xk3 --oracle /tmp/gklock_ts_oracle.bench --method sat --metrics-out /tmp/gklock_ts_metrics.json
	dune exec bin/gklock_cli.exe -- trace --check /tmp/gklock_ts.jsonl

# Oracle-daemon smoke: spawn the real gklockd binary on an ephemeral
# unix socket, run the SAT attack through Remote_oracle, check the
# verdict/key match the in-process run, then verify a clean shutdown
# (exit 0, socket file removed).
serve-smoke: build
	dune exec bench/serve_smoke.exe

# Everything a PR must keep green: full build (libs, CLI, examples,
# benches) plus the test suite, the campaign smoke, a fuzz smoke, both
# bench smokes, the tracing smoke and the oracle-daemon smoke.
check: build test campaign-smoke fuzz-smoke bench-smoke trace-smoke serve-smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/attack_resilience.exe
	dune exec examples/timing_exploration.exe
	dune exec examples/hybrid_locking.exe
	dune exec examples/withholding.exe
	dune exec examples/scan_bist.exe

clean:
	dune clean
