# Convenience targets; dune is the real build system.

.PHONY: all build test bench bench-quick bench-eval campaign-smoke check examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Evaluation-engine micro-benchmarks; verifies engine/seed-path equivalence
# on every benchmark and writes BENCH_eval.json.
bench-eval:
	dune exec bench/bench_eval.exe

# Tiny campaign matrix end-to-end with the real executor: run, resume,
# verify the resume skips everything.  Seconds, suitable for CI.
campaign-smoke:
	dune exec bench/campaign_smoke.exe

# Everything a PR must keep green: full build (libs, CLI, examples,
# benches) plus the test suite and the campaign smoke.
check: build test campaign-smoke

examples:
	dune exec examples/quickstart.exe
	dune exec examples/attack_resilience.exe
	dune exec examples/timing_exploration.exe
	dune exec examples/hybrid_locking.exe
	dune exec examples/withholding.exe
	dune exec examples/scan_bist.exe

clean:
	dune clean
